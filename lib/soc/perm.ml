type t = {
  read : bool;
  write : bool;
  exec : bool;
  user : bool;
  present : bool;
}

let rwx = { read = true; write = true; exec = true; user = true; present = true }
let rw = { rwx with exec = false }
let rx = { rwx with write = false }
let ro = { rwx with write = false; exec = false }

let priv_only t = { t with user = false }

let absent = { rwx with present = false }

let none = { read = false; write = false; exec = false; user = false; present = true }
