(** Dynamic swappable memory (§3.2).

    The swapMem time-shares the swappable code region between instruction
    sequences with different semantics: training sequences run first, then
    the secret region's permissions are tightened, then the transient
    sequence runs.  Each sequence ends by trapping (the generators terminate
    blobs with [ebreak]); the trap handler — modelled by {!on_trap} — loads
    the next scheduled blob into the swappable region, flushes the
    instruction cache (via the caller's hook) and redirects execution to the
    blob's entry.

    The structure is pure bookkeeping over {!Phys_mem}; the DUT (golden
    model or microarchitectural core) executes against the same memory. *)

type blob = {
  name : string;
  words : int array;            (** assembled instruction words *)
  is_transient : bool;          (** true for the transient packet *)
}

type t

val create : blobs:blob list -> schedule:int list -> t
(** [create ~blobs ~schedule] prepares a swapMem whose schedule names blob
    indices in execution order.  Raises [Invalid_argument] on an index out
    of range or a blob too large for the swappable region. *)

val blobs : t -> blob list
val schedule : t -> int list

val reset : t -> unit
(** Rewinds the schedule to the beginning. *)

val current : t -> blob option
(** The blob currently loaded, if any. *)

val load_next : t -> Phys_mem.t -> blob option
(** Loads the next scheduled blob into the swappable region of the given
    memory (padding the rest of the region with [ebreak] words so runaway
    execution traps) and returns it; [None] when the schedule is
    exhausted. *)

val remaining : t -> int
(** Number of blobs not yet loaded. *)

val with_schedule : t -> int list -> t
(** A fresh swapMem over the same blobs with a different schedule — how the
    training reduction strategy re-simulates with a packet removed. *)
