open Dvz_isa

type t = { data : Bytes.t; perms : Perm.t array }

let page_of addr = addr / Layout.page_size

let create () =
  { data = Bytes.make Layout.mem_size '\000';
    perms = Array.make (Layout.mem_size / Layout.page_size) Perm.rwx }

let copy t = { data = Bytes.copy t.data; perms = Array.copy t.perms }

let clear t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\000';
  Array.fill t.perms 0 (Array.length t.perms) Perm.rwx

let in_range t addr = addr >= 0 && addr < Bytes.length t.data

let set_perm t addr p =
  if not (in_range t addr) then invalid_arg "Phys_mem.set_perm: out of range";
  t.perms.(page_of addr) <- p

let perm_of t addr = if in_range t addr then t.perms.(page_of addr) else Perm.none

let read_byte t addr =
  if in_range t addr then Char.code (Bytes.get t.data addr) else 0

let write_byte t addr v =
  if in_range t addr then Bytes.set t.data addr (Char.chr (v land 0xFF))

(* The byte loops below are the semantic reference: out-of-range bytes
   read as zero / drop silently, and int values are (de)composed through
   their low [8*size] bits — for [size = 8] that means the 63-bit native
   int pattern with bit 63 masked off.  The word-sized fast paths must
   reproduce those bit patterns exactly (simulated memory feeds
   [Core.state_hash] and the checkpoint stream, both byte-identity
   sensitive), hence the [land] masks around the [Bytes] primitives. *)

let read_slow t ~addr ~size =
  let rec go i acc =
    if i = size then acc else go (i + 1) (acc lor (read_byte t (addr + i) lsl (8 * i)))
  in
  go 0 0

let read t ~addr ~size =
  if addr >= 0 && size > 0 && addr + size <= Bytes.length t.data then
    match size with
    | 8 -> Int64.to_int (Bytes.get_int64_le t.data addr)
    | 4 -> Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF
    | 2 -> Bytes.get_uint16_le t.data addr
    | 1 -> Bytes.get_uint8 t.data addr
    | _ -> read_slow t ~addr ~size
  else read_slow t ~addr ~size

let write_slow t ~addr ~size v =
  for i = 0 to size - 1 do
    write_byte t (addr + i) ((v lsr (8 * i)) land 0xFF)
  done

let write t ~addr ~size v =
  if addr >= 0 && size > 0 && addr + size <= Bytes.length t.data then
    match size with
    | 8 ->
        (* byte 7's top bit is always written as 0: [v lsr 56] of a 63-bit
           int has no bit 7 *)
        Bytes.set_int64_le t.data addr
          (Int64.logand (Int64.of_int v) Int64.max_int)
    | 4 -> Bytes.set_int32_le t.data addr (Int32.of_int v)
    | 2 -> Bytes.set_uint16_le t.data addr (v land 0xFFFF)
    | 1 -> Bytes.set_uint8 t.data addr (v land 0xFF)
    | _ -> write_slow t ~addr ~size v
  else write_slow t ~addr ~size v

let write_words t addr ws =
  Array.iteri (fun i w -> write t ~addr:(addr + (4 * i)) ~size:4 w) ws

let check t ~priv ~addr ~size ~(kind : [ `Load | `Store | `Fetch ]) =
  let fault =
    match kind with
    | `Load -> Trap.Load_access_fault
    | `Store -> Trap.Store_access_fault
    | `Fetch -> Trap.Fetch_access_fault
  in
  let page_fault =
    match kind with
    | `Load -> Trap.Load_page_fault
    | `Store -> Trap.Store_page_fault
    | `Fetch -> Trap.Fetch_access_fault
  in
  if not (in_range t addr && in_range t (addr + size - 1)) then Error fault
  else
    let p = t.perms.(page_of addr) in
    if not p.Perm.present then Error page_fault
    else if priv = Golden.User && not p.Perm.user then
      (* Non-present pages fault above; a privilege violation is a fault of
         the access kind, as with PMP on the modelled cores. *)
      Error fault
    else
      let allowed =
        match kind with
        | `Load -> p.Perm.read
        | `Store -> p.Perm.write
        | `Fetch -> p.Perm.exec
      in
      if allowed then Ok () else Error fault

let checked_load t ~priv ~addr ~size =
  match check t ~priv ~addr ~size ~kind:`Load with
  | Error e -> Error e
  | Ok () -> Ok (read t ~addr ~size)

let checked_store t ~priv ~addr ~size ~value =
  match check t ~priv ~addr ~size ~kind:`Store with
  | Error e -> Error e
  | Ok () ->
      write t ~addr ~size value;
      Ok ()

let checked_fetch t ~priv ~addr =
  match check t ~priv ~addr ~size:4 ~kind:`Fetch with
  | Error e -> Error e
  | Ok () -> Ok (read t ~addr ~size:4)

let golden_memory t =
  { Golden.load = (fun ~priv ~addr ~size -> checked_load t ~priv ~addr ~size);
    Golden.store =
      (fun ~priv ~addr ~size ~value -> checked_store t ~priv ~addr ~size ~value);
    Golden.fetch = (fun ~priv ~addr -> checked_fetch t ~priv ~addr) }
