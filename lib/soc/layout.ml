let page_size = 0x1000

let shared_base = 0x0000
let shared_size = page_size

let swap_base = 0x1000
let swap_size = page_size

let dedicated_base = 0x4000
let dedicated_size = page_size

let secret_base = 0x5000
let secret_size = page_size
let secret_dwords = 16

let probe_base = 0x6000
let probe_size = 8 * page_size

let mem_size = 0x10000

let mtvec = shared_base

let swap_entry = swap_base
