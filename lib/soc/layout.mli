(** The swapMem address map (Figure 4, bottom).

    One 4 KiB page per region keeps permission handling page-granular:

    - the {e shared region} holds the execution environment every DUT
      instance sees: trap handler, state initialisation, and the runtime
      instruction-sequence scheduler;
    - the {e swappable region} is where instruction sequences (training and
      transient packets) are loaded one at a time;
    - the {e dedicated region} holds each DUT's mutable operands;
    - the {e secret region} holds the sensitive data (its permissions are
      flipped to machine-only before the transient packet runs);
    - the {e probe region} is an eight-page array transient payloads may
      touch (the classic flush+reload encoding surface, with page-granular
      strides for TLB-level encodings). *)

val page_size : int

val shared_base : int
val shared_size : int

val swap_base : int
val swap_size : int

val dedicated_base : int
val dedicated_size : int

val secret_base : int
val secret_size : int

val secret_dwords : int
(** Number of 64-bit secret words the harness initialises (and taints). *)

val probe_base : int
val probe_size : int

val mem_size : int
(** Total modelled physical memory. *)

val mtvec : int
(** Trap-handler entry, inside the shared region. *)

val swap_entry : int
(** Entry point of a freshly loaded swappable sequence ([swap_base]). *)
