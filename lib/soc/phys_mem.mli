(** Byte-addressed physical memory with page-granular permissions.

    Accesses outside the modelled range raise access faults; accesses to a
    page whose [present] bit is clear raise page faults; permission
    mismatches (user access to a machine-only page, store to a read-only
    page, fetch from a non-executable page) raise access faults.  This is
    the permission surface the Meltdown-class trigger types of Table 3
    exercise. *)

type t

val create : unit -> t
(** A zeroed memory of {!Layout.mem_size} bytes, all pages [Perm.rwx]. *)

val copy : t -> t

val clear : t -> unit
(** Return the memory to its {!create} state in place: all bytes zero, all
    pages [Perm.rwx].  Used by the executor instance pool to re-arm a core
    without reallocating the backing store. *)

val set_perm : t -> int -> Perm.t -> unit
(** [set_perm t addr p] sets the permission of the page containing [addr]. *)

val perm_of : t -> int -> Perm.t
(** Permission of the page containing [addr]; {!Perm.none} if out of range. *)

val read_byte : t -> int -> int
(** Backdoor read (no permission check).  Out-of-range reads return 0. *)

val write_byte : t -> int -> int -> unit
(** Backdoor write; out-of-range writes are ignored. *)

val read : t -> addr:int -> size:int -> int
(** Backdoor little-endian read of [size] (≤ 7) bytes. *)

val write : t -> addr:int -> size:int -> int -> unit
(** Backdoor little-endian write. *)

val write_words : t -> int -> int array -> unit
(** [write_words t addr ws] stores 32-bit words consecutively from [addr];
    the common way of loading assembled code. *)

val checked_load :
  t -> priv:Dvz_isa.Golden.priv -> addr:int -> size:int ->
  (int, Dvz_isa.Trap.cause) result

val checked_store :
  t -> priv:Dvz_isa.Golden.priv -> addr:int -> size:int -> value:int ->
  (unit, Dvz_isa.Trap.cause) result

val checked_fetch :
  t -> priv:Dvz_isa.Golden.priv -> addr:int -> (int, Dvz_isa.Trap.cause) result

val golden_memory : t -> Dvz_isa.Golden.memory
(** The checked accessors packaged for {!Dvz_isa.Golden.create}. *)
