type blob = { name : string; words : int array; is_transient : bool }

type t = {
  all : blob array;
  sched : int array;
  mutable pos : int;  (** index into [sched] of the next blob to load *)
}

(* ebreak padding: any runaway execution inside the swappable region traps
   back into the scheduler instead of running stale bytes. *)
let ebreak_word = Dvz_isa.Encode.encode Dvz_isa.Insn.Ebreak

let max_words = Layout.swap_size / 4

let create ~blobs ~schedule =
  let all = Array.of_list blobs in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length all then
        invalid_arg "Swapmem.create: schedule index out of range")
    schedule;
  Array.iter
    (fun b ->
      if Array.length b.words > max_words then
        invalid_arg ("Swapmem.create: blob too large: " ^ b.name))
    all;
  { all; sched = Array.of_list schedule; pos = 0 }

let blobs t = Array.to_list t.all
let schedule t = Array.to_list t.sched

let reset t = t.pos <- 0

let current t =
  if t.pos = 0 then None else Some t.all.(t.sched.(t.pos - 1))

let load_next t mem =
  if t.pos >= Array.length t.sched then None
  else begin
    let b = t.all.(t.sched.(t.pos)) in
    t.pos <- t.pos + 1;
    Phys_mem.write_words mem Layout.swap_base b.words;
    for i = Array.length b.words to max_words - 1 do
      Phys_mem.write mem ~addr:(Layout.swap_base + (4 * i)) ~size:4 ebreak_word
    done;
    Some b
  end

let remaining t = Array.length t.sched - t.pos

let with_schedule t schedule =
  create ~blobs:(Array.to_list t.all) ~schedule
