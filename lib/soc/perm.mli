(** Page permissions for the physical memory model. *)

type t = {
  read : bool;
  write : bool;
  exec : bool;
  user : bool;    (** accessible from user privilege *)
  present : bool; (** a cleared bit yields page faults instead of access faults *)
}

val rwx : t
(** Machine-and-user readable, writable, executable, present. *)

val rw : t
val rx : t
val ro : t

val priv_only : t -> t
(** Same rights but reserved to machine mode — the paper's "update sensitive
    data permissions" step marks the secret region this way. *)

val absent : t
(** Not present: all accesses page-fault. *)

val none : t
(** Unmapped: all accesses access-fault. *)
