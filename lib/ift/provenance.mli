(** Taint provenance recorder.

    An append-only log of {e taint-introduction edges}: every time a clean
    node becomes tainted, the layer driving the recorder appends one edge
    naming the destination, the already-tainted predecessors that caused
    it, the propagation kind and the current time/window context.  Nodes
    are plain strings so the recorder is shared between granularities —
    the cell-level {!Shadow} hooks use netlist signal labels, the
    element-level layer above uses [Elem.to_string] identifiers.

    Recording is two-pass by design: the fuzz loop runs with no recorder
    attached (zero overhead), and a flagged finding is deterministically
    replayed with one armed.  The propagation DAG and the backward slice
    from a sink to its secret sources are derived on demand with
    {!slice}. *)

type kind =
  | Source  (** a taint origin (secret word, tainted input) *)
  | Data  (** data-flow propagation through tainted operands *)
  | Ctrl of string  (** control-flow propagation, labelled by decision kind *)
  | Divergence  (** forced by instruction-stream divergence alone *)
  | Restore  (** re-established from a squash checkpoint *)
  | Cell of string  (** cell-level propagation, labelled by the cell op *)

type edge = {
  e_id : int;  (** global recording order, 0-based *)
  e_time : int;  (** slot / cycle the edge was recorded at *)
  e_in_window : bool;  (** inside a transient window *)
  e_kind : kind;
  e_dst : string;
  e_srcs : string list;  (** tainted predecessors; [[]] for origins *)
}

type t

val create : ?cap:int -> unit -> t
(** A fresh recorder.  [cap] (default 1M) bounds the number of edges kept;
    further recordings are counted in {!dropped} instead of stored.
    Raises [Invalid_argument] if [cap <= 0]. *)

val set_context : t -> time:int -> in_window:bool -> unit
(** Sets the timestamp and window flag stamped on subsequent edges. *)

val record : t -> dst:string -> srcs:string list -> kind -> unit
(** Appends one taint-introduction edge under the current context. *)

val source : t -> string -> unit
(** [source t n] records node [n] as a taint origin ([Source], no
    predecessors). *)

val num_edges : t -> int
val dropped : t -> int
(** Edges discarded because the recorder was at capacity. *)

val edges : t -> edge list
(** All recorded edges, oldest first. *)

val slice : t -> sink:string -> edge list
(** Backward slice: starting from [sink]'s most recent taint-introduction
    edge, recursively resolve each tainted predecessor to its own most
    recent introduction strictly before the consuming edge, terminating at
    [Source] edges.  Returned in recording order (chronological).  Empty
    when the sink was never recorded. *)

val kind_name : kind -> string
(** ["source"], ["data"], ["ctrl:<label>"], ["divergence"], ["restore"],
    ["cell:<label>"]. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}. *)

val render_edge : edge -> string
(** One fixed-width timeline line: time, window marker, destination, kind,
    sources. *)

val render_slice : ?header:bool -> t -> sink:string -> string
(** The text timeline of {!slice}, one {!render_edge} line per edge. *)

val dot_of_slices : t -> sinks:string list -> string
(** A Graphviz digraph of the union of the sinks' backward slices:
    sources are boxes, sinks double octagons, edges labelled with time and
    kind. *)
