(** Per-cycle taint logs.

    The fuzzer consumes the simulation's taint log twice: the total-taint
    series is the paper's Figure 6 y-axis, and the per-module tainted
    register counts feed the taint coverage matrix (§4.2.2). *)

type entry = {
  cycle : int;
  total : int;  (** tainted bits over registers and memories *)
  tainted_regs : int;  (** registers with non-zero taint *)
  per_module : (string * int) list;  (** tainted registers per module tag *)
}

type t

val create : unit -> t

val record : t -> Shadow.t -> unit
(** Snapshots the shadow state as the next cycle's entry. *)

val entries : t -> entry list
(** All entries in chronological order. *)

val totals : t -> int list
(** Total-taint series, one point per recorded cycle. *)

val length : t -> int

val max_total : t -> int
(** Peak of the total-taint series; 0 for an empty log. *)

val final : t -> entry option
(** The most recent entry. *)
