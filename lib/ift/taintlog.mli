(** Per-cycle taint logs.

    The fuzzer consumes the simulation's taint log twice: the total-taint
    series is the paper's Figure 6 y-axis, and the per-module tainted
    register counts feed the taint coverage matrix (§4.2.2). *)

type entry = {
  cycle : int;
  total : int;  (** tainted bits over registers and memories *)
  tainted_regs : int;  (** registers with non-zero taint *)
  per_module : (string * int) list;  (** tainted registers per module tag *)
}

type bound =
  | Unbounded
  | Keep_first of int  (** keep only the first [n] entries *)
  | Keep_last of int  (** keep a sliding window of the last [n] entries *)
  | Stride of int  (** keep every [k]-th entry (cycles [0, k, 2k, ...]) *)
(** Memory policy for long campaigns: the log otherwise grows without
    bound, one entry per simulated cycle. *)

type t

val create : ?bound:bound -> unit -> t
(** Defaults to [Unbounded].  Raises [Invalid_argument] on a non-positive
    bound parameter. *)

val record : t -> Shadow.t -> unit
(** Snapshots the shadow state as the next cycle's entry.  The cycle
    counter always advances; whether the entry is retained is up to the
    bound policy. *)

val entries : t -> entry list
(** Retained entries in chronological order. *)

val totals : t -> int list
(** Total-taint series, one point per retained cycle. *)

val length : t -> int
(** Cycles recorded (including entries a bound discarded). *)

val max_total : t -> int
(** Peak of the total-taint series; 0 for an empty log. *)

val final : t -> entry option
(** The most recent entry. *)
