(** Dual-DUT shadow co-simulation — the differential IFT testbench of §3.3.

    Two instances of the same netlist execute in lockstep; instance A and
    instance B receive the same stimulus except for the signals the caller
    drives with {!set_input_pair} (the secrets).  One shadow taint state is
    maintained alongside, updated per cell by {!Policy} in the selected
    mode.  The paper's diffIFT^FN variant (worst-case false negatives) is
    obtained simply by driving both instances with the same secret. *)

type t

type engine = Dvz_ir.Sim.engine
(** Evaluation strategy, same as the plain simulator's: the default
    [`Compiled] engine lowers the netlist once at {!create} into flat
    int-array programs covering both value instances and the taint plane
    (steady-state cycles allocate nothing); [`Interp] walks the cells
    directly and is the reference the compiled engine is differentially
    tested against. *)

val create :
  ?provenance:Provenance.t -> ?engine:engine -> Policy.mode ->
  Dvz_ir.Netlist.t -> t
(** Builds a shadow co-simulator with all taints clear.  [engine] defaults
    to [`Compiled].  Raises {!Dvz_ir.Netlist.Width_error} if a mux
    selector, register enable or memory write enable is not 1 bit wide.

    When [provenance] is given the co-simulator is {e armed}: tainted
    inputs and differing memory pokes are recorded as taint sources, and
    every 0→tainted transition of a signal or memory word appends a
    [Cell]-kind edge naming its tainted operands.  Armed evaluation runs
    on the interpretive cells (pinned bit-identical to the compiled
    engine by the differential tests); without [provenance] the selected
    engine runs unchanged, with no per-cell overhead. *)

val reset : t -> unit
(** Re-arms a built co-simulator without re-lowering the netlist: both
    value planes back to register-init/const state (inputs and
    combinational nets to 0), the taint plane and all three memory planes
    zeroed, tick counter cleared.  Bit-identical to a fresh [create]. *)

val mode : t -> Policy.mode

val engine : t -> engine
(** The engine this co-simulator was created with. *)

val netlist : t -> Dvz_ir.Netlist.t

val set_input : t -> Dvz_ir.Netlist.signal -> int -> unit
(** Drives both instances with the same value; input taint is cleared. *)

val set_input_pair : t -> Dvz_ir.Netlist.signal -> int -> int -> unit
(** [set_input_pair t s va vb] drives the instances with different values
    and marks the input fully tainted (it carries a secret). *)

val set_input_taint : t -> Dvz_ir.Netlist.signal -> int -> unit
(** Overrides the taint mask of an input. *)

val eval : t -> unit
(** Settles combinational values of both instances and all shadow taints. *)

val step : t -> unit
(** Clock edge for both instances and the shadow state. *)

val cycle : t -> unit

val ticks : t -> int
(** Clock edges stepped so far — the timestamp stamped on armed-mode
    provenance edges. *)

val peek_a : t -> Dvz_ir.Netlist.signal -> int
val peek_b : t -> Dvz_ir.Netlist.signal -> int
val taint_of : t -> Dvz_ir.Netlist.signal -> int
(** Taint mask of a signal (valid after {!eval} for combinational ones). *)

val poke_mem_pair : t -> Dvz_ir.Netlist.mem -> int -> int -> int -> unit
(** [poke_mem_pair t m i va vb] backdoor-writes a memory word in both
    instances, tainting it when the values differ. *)

val mem_taint : t -> Dvz_ir.Netlist.mem -> int -> int
(** Taint mask of memory word [i]. *)

val tainted_registers : t -> int
(** Number of register signals with a non-zero taint mask. *)

val taint_bit_sum : t -> int
(** Total tainted bits over registers and memory words — the y-axis of the
    paper's Figure 6. *)

val tainted_by_module : t -> (string * int) list
(** Tainted-register count per module tag, sorted by tag; memory words are
    attributed to the memory's module.  Drives the taint coverage matrix. *)

val clear_taints : t -> unit
(** Clears every shadow taint (registers, memories, inputs). *)
