(** Dual-DUT shadow co-simulation — the differential IFT testbench of §3.3.

    Two instances of the same netlist execute in lockstep; instance A and
    instance B receive the same stimulus except for the signals the caller
    drives with {!set_input_pair} (the secrets).  One shadow taint state is
    maintained alongside, updated per cell by {!Policy} in the selected
    mode.  The paper's diffIFT^FN variant (worst-case false negatives) is
    obtained simply by driving both instances with the same secret. *)

type t

type engine = Dvz_ir.Sim.engine
(** Evaluation strategy, same as the plain simulator's: the default
    [`Compiled] engine lowers the netlist once at {!create} into flat
    int-array programs covering both value instances and the taint plane
    (steady-state cycles allocate nothing); [`Interp] walks the cells
    directly and is the reference the compiled engine is differentially
    tested against. *)

val create :
  ?provenance:Provenance.t -> ?engine:engine -> ?opt:bool -> Policy.mode ->
  Dvz_ir.Netlist.t -> t
(** Builds a shadow co-simulator with all taints clear.  [engine] defaults
    to [`Compiled].  Raises {!Dvz_ir.Netlist.Width_error} if a mux
    selector, register enable or memory write enable is not 1 bit wide.

    [opt] (default [false]) runs the {!Dvz_ir.Passes} pipeline on a copy of
    the netlist first, exactly as in {!Dvz_ir.Sim.create} — every admitted
    rewrite preserves taints as well as values, in both {!Policy} modes.
    [opt] is ignored when [provenance] is attached: the replay pass reports
    per-cell flow edges through unnamed intermediates, which optimization
    would legitimately restructure.

    When [provenance] is given the co-simulator is {e armed}: tainted
    inputs and differing memory pokes are recorded as taint sources, and
    every 0→tainted transition of a signal or memory word appends a
    [Cell]-kind edge naming its tainted operands.  Armed evaluation runs
    on the interpretive cells (pinned bit-identical to the compiled
    engine by the differential tests); without [provenance] the selected
    engine runs unchanged, with no per-cell overhead. *)

val reset : t -> unit
(** Re-arms a built co-simulator without re-lowering the netlist: both
    value planes back to register-init/const state (inputs and
    combinational nets to 0), the taint plane and all three memory planes
    zeroed, tick counter cleared.  Bit-identical to a fresh [create]. *)

val mode : t -> Policy.mode

val engine : t -> engine
(** The engine this co-simulator was created with. *)

val netlist : t -> Dvz_ir.Netlist.t

val set_input : t -> Dvz_ir.Netlist.signal -> int -> unit
(** Drives both instances with the same value; input taint is cleared. *)

val set_input_pair : t -> Dvz_ir.Netlist.signal -> int -> int -> unit
(** [set_input_pair t s va vb] drives the instances with different values
    and marks the input fully tainted (it carries a secret). *)

val set_input_taint : t -> Dvz_ir.Netlist.signal -> int -> unit
(** Overrides the taint mask of an input. *)

val eval : t -> unit
(** Settles combinational values of both instances and all shadow taints. *)

val step : t -> unit
(** Clock edge for both instances and the shadow state. *)

val cycle : t -> unit

val ticks : t -> int
(** Clock edges stepped so far — the timestamp stamped on armed-mode
    provenance edges. *)

val peek_a : t -> Dvz_ir.Netlist.signal -> int
val peek_b : t -> Dvz_ir.Netlist.signal -> int
val taint_of : t -> Dvz_ir.Netlist.signal -> int
(** Taint mask of a signal (valid after {!eval} for combinational ones). *)

val poke_mem_pair : t -> Dvz_ir.Netlist.mem -> int -> int -> int -> unit
(** [poke_mem_pair t m i va vb] backdoor-writes a memory word in both
    instances, tainting it when the values differ. *)

val mem_taint : t -> Dvz_ir.Netlist.mem -> int -> int
(** Taint mask of memory word [i]. *)

val tainted_registers : t -> int
(** Number of register signals with a non-zero taint mask. *)

val taint_bit_sum : t -> int
(** Total tainted bits over registers and memory words — the y-axis of the
    paper's Figure 6. *)

val tainted_by_module : t -> (string * int) list
(** Tainted-register count per module tag, sorted by tag; memory words are
    attributed to the memory's module.  Drives the taint coverage matrix. *)

val clear_taints : t -> unit
(** Clears every shadow taint (registers, memories, inputs). *)

(** Lane-parallel shadow co-simulation: K independent dual-instance
    co-simulations of the same netlist advance in lockstep through one
    compiled program, in the same structure-of-arrays layout as
    {!Dvz_ir.Sim.Lanes} — over three planes (value A, value B, taint) plus
    three memory planes.  One opcode dispatch per cell is amortized over K
    lanes; each lane can carry its own stimulus, secret pair and taint
    state, which is what makes batched phase-1 candidate evaluation cheap.

    Lanes never interact and are pinned bit-identical per lane to a scalar
    {!t} driven with the same stimulus (values, taints, memories, tick
    counts, both {!Policy} modes) by differential property tests.  There is
    no provenance or [`Interp] variant here; the scalar engine remains the
    observability device. *)
module Lanes : sig
  type t

  val create : ?opt:bool -> k:int -> Policy.mode -> Dvz_ir.Netlist.t -> t
  (** [create ~k mode nl] builds a [k]-lane co-simulator.  [opt] as in
      {!Shadow.create} (no provenance here, so it is always honored).
      Raises [Invalid_argument] if [k <= 0]. *)

  val k : t -> int
  val mode : t -> Policy.mode
  val netlist : t -> Dvz_ir.Netlist.t

  val reset : t -> unit
  (** All lanes back to the post-[create] state. *)

  val set_input : t -> lane:int -> Dvz_ir.Netlist.signal -> int -> unit
  (** Drives both instances of one lane with the same value; clears the
      input's taint in that lane. *)

  val set_input_all : t -> Dvz_ir.Netlist.signal -> int -> unit
  (** {!set_input} for every lane at once. *)

  val set_input_pair : t -> lane:int -> Dvz_ir.Netlist.signal -> int -> int -> unit
  (** Per-lane secret: drives the two instances of [lane] with different
      values and marks the input fully tainted in that lane. *)

  val set_input_taint : t -> lane:int -> Dvz_ir.Netlist.signal -> int -> unit

  val eval : t -> unit
  val step : t -> unit
  val cycle : t -> unit
  val ticks : t -> int

  val peek_a : t -> lane:int -> Dvz_ir.Netlist.signal -> int
  val peek_b : t -> lane:int -> Dvz_ir.Netlist.signal -> int
  val taint_of : t -> lane:int -> Dvz_ir.Netlist.signal -> int

  val poke_mem_pair :
    t -> lane:int -> Dvz_ir.Netlist.mem -> int -> int -> int -> unit

  val mem_taint : t -> lane:int -> Dvz_ir.Netlist.mem -> int -> int

  val clear_taints : t -> unit
  (** Clears the taint plane and taint memories of every lane. *)
end
