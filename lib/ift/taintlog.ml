type entry = {
  cycle : int;
  total : int;
  tainted_regs : int;
  per_module : (string * int) list;
}

type t = { mutable rev_entries : entry list; mutable next_cycle : int }

let create () = { rev_entries = []; next_cycle = 0 }

let record t shadow =
  let e =
    { cycle = t.next_cycle;
      total = Shadow.taint_bit_sum shadow;
      tainted_regs = Shadow.tainted_registers shadow;
      per_module = Shadow.tainted_by_module shadow }
  in
  t.rev_entries <- e :: t.rev_entries;
  t.next_cycle <- t.next_cycle + 1

let entries t = List.rev t.rev_entries

let totals t = List.rev_map (fun e -> e.total) t.rev_entries

let length t = t.next_cycle

let max_total t =
  List.fold_left (fun acc e -> max acc e.total) 0 t.rev_entries

let final t = match t.rev_entries with [] -> None | e :: _ -> Some e
