type entry = {
  cycle : int;
  total : int;
  tainted_regs : int;
  per_module : (string * int) list;
}

type bound = Unbounded | Keep_first of int | Keep_last of int | Stride of int

type t = {
  bound : bound;
  mutable rev_entries : entry list;
  mutable kept : int;
  mutable next_cycle : int;
}

let create ?(bound = Unbounded) () =
  (match bound with
  | Unbounded -> ()
  | Keep_first n | Keep_last n | Stride n ->
      if n <= 0 then invalid_arg "Taintlog.create: bound must be positive");
  { bound; rev_entries = []; kept = 0; next_cycle = 0 }

let keep e t =
  t.rev_entries <- e :: t.rev_entries;
  t.kept <- t.kept + 1

let record t shadow =
  let e =
    { cycle = t.next_cycle;
      total = Shadow.taint_bit_sum shadow;
      tainted_regs = Shadow.tainted_registers shadow;
      per_module = Shadow.tainted_by_module shadow }
  in
  (match t.bound with
  | Unbounded -> keep e t
  | Keep_first n -> if t.kept < n then keep e t
  | Keep_last n ->
      keep e t;
      (* Amortised: trim back to [n] only once the kept list doubles, so
         recording stays O(1) per call. *)
      if t.kept >= 2 * n then begin
        t.rev_entries <- List.filteri (fun i _ -> i < n) t.rev_entries;
        t.kept <- n
      end
  | Stride k -> if t.next_cycle mod k = 0 then keep e t);
  t.next_cycle <- t.next_cycle + 1

(* Under [Keep_last] the amortised trim can leave up to [2n-1] entries in
   [rev_entries]; the accessors re-trim so observers never see more than
   the bound. *)
let rev_kept t =
  match t.bound with
  | Keep_last n when t.kept > n -> List.filteri (fun i _ -> i < n) t.rev_entries
  | _ -> t.rev_entries

let entries t = List.rev (rev_kept t)

let totals t = List.rev_map (fun e -> e.total) (rev_kept t)

let length t = t.next_cycle

let max_total t =
  List.fold_left (fun acc e -> max acc e.total) 0 (rev_kept t)

let final t = match t.rev_entries with [] -> None | e :: _ -> Some e
