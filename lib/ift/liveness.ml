open Dvz_ir
module N = Netlist

type binding =
  | Mem of N.mem * N.signal array
  | Regs of N.signal array * N.signal array

type t = { shadow : Shadow.t; mutable bindings : binding list }

let create shadow = { shadow; bindings = [] }

let bind_mem t m ~valid =
  if Array.length valid <> N.mem_depth m then
    invalid_arg "Liveness.bind_mem: one liveness signal per word required";
  t.bindings <- Mem (m, valid) :: t.bindings

let bind_regs t ~sinks ~valid =
  if Array.length valid <> Array.length sinks then
    invalid_arg "Liveness.bind_regs: arity mismatch";
  t.bindings <- Regs (sinks, valid) :: t.bindings

(* Fold over annotated slots: [f acc name tainted live]. *)
let fold t f init =
  let sh = t.shadow in
  List.fold_left
    (fun acc b ->
      match b with
      | Mem (m, valid) ->
          let acc = ref acc in
          for i = 0 to N.mem_depth m - 1 do
            let tainted = Shadow.mem_taint sh m i <> 0 in
            let live = Shadow.peek_a sh valid.(i) = 1 in
            acc :=
              f !acc (Printf.sprintf "%s[%d]" (N.mem_name m) i) tainted live
          done;
          !acc
      | Regs (sinks, valid) ->
          let acc = ref acc in
          Array.iteri
            (fun i q ->
              let tainted = Shadow.taint_of sh q <> 0 in
              let live = Shadow.peek_a sh valid.(i) = 1 in
              let nl = Shadow.netlist sh in
              acc := f !acc (N.module_of nl q ^ "." ^ N.name_of nl q) tainted live)
            sinks;
          !acc)
    init (List.rev t.bindings)

let live_tainted t =
  fold t (fun acc _ tainted live -> if tainted && live then acc + 1 else acc) 0

let dead_tainted t =
  fold t
    (fun acc _ tainted live -> if tainted && not live then acc + 1 else acc)
    0

let live_sinks t =
  List.rev
    (fold t
       (fun acc name tainted live -> if tainted && live then name :: acc else acc)
       [])

let annotation_count t =
  fold t (fun acc _ _ _ -> acc + 1) 0
