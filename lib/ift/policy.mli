(** Taint propagation policies.

    [Cellift] implements the state-of-the-art cell-level policies of §2.2
    (Policy 1 for AND, Policy 2 for MUX, and their analogues for the other
    cells); control taints propagate whenever a control signal is tainted.

    [Diffift] implements the paper's differential policies (Table 1):
    control taints additionally require the corresponding cross-instance
    comparison ([diff]) signal to be high, i.e. the two DUT instances —
    executing the same instructions with different secrets — must actually
    disagree on the concrete control value.  This under-approximates
    information flow but eliminates control-flow over-tainting. *)

type mode = Cellift | Diffift

val mode_name : mode -> string

val and_taint : a:int -> b:int -> at:int -> bt:int -> int
(** Policy 1: [ (A & Bt) | (B & At) | (At & Bt) ]. *)

val or_taint : a:int -> b:int -> at:int -> bt:int -> int
(** Dual of Policy 1: a 0 input masks the other operand's taint. *)

val mux_taint :
  mode -> width:int -> s:int -> s_diff:bool -> a:int -> b:int ->
  st:int -> at:int -> bt:int -> ab_xor:int -> int
(** Policy 2 / Table 1 row 1.  [s] is the selector value (instance A),
    [s_diff] whether the two instances' selectors differ, [ab_xor] the union
    of per-instance [A ^ B] values. *)

val cmp_taint : mode -> o_diff:bool -> at:int -> bt:int -> int
(** Comparison cells (Eq/Lt): Table 1 row 2 — in [Diffift] mode the 1-bit
    output is tainted only when the outputs differ across instances. *)

val arith_taint : width:int -> at:int -> bt:int -> int
(** Add/Sub: taints spread upward along the carry chain (both modes). *)

val reg_en_taint :
  mode -> width:int -> en:bool -> en_diff:bool -> ent:int ->
  dt:int -> qt:int -> dq_xor:int -> int
(** Register-with-enable: Table 1 row 3. *)

val mem_read_ctrl : mode -> width:int -> addrt:int -> addr_diff:bool -> int
(** Memory read: full-width control taint when the address is tainted
    (and, in [Diffift], differs across instances). *)

val mem_write_ctrl :
  mode -> width:int -> wen:bool -> went:int -> wen_diff:bool ->
  addrt:int -> addr_diff:bool -> int
(** Memory write: full-width control taint for the addressed slot when the
    write enable or address is tainted (gated on diffs in [Diffift]). *)
