(** Taint liveness annotations (§4.3.2).

    Buffers in a microarchitecture keep stale data after their managing
    state machine has invalidated them (the LFB/MSHR example of §3.1).
    A taint sitting in such a slot is unexploitable.  Developers bind the
    taint state of a sink (a memory or a register array) to per-slot
    liveness signals — the generic-vector interface of the paper's
    [liveness_mask] attribute — and the oracle then counts only taints whose
    liveness bit is high. *)

type t

val create : Shadow.t -> t

val bind_mem :
  t -> Dvz_ir.Netlist.mem -> valid:Dvz_ir.Netlist.signal array -> unit
(** [bind_mem t m ~valid] declares that memory word [i] of [m] is live only
    while [valid.(i)] evaluates to 1 (in instance A).  [valid] must have one
    signal per memory word. *)

val bind_regs :
  t ->
  sinks:Dvz_ir.Netlist.signal array ->
  valid:Dvz_ir.Netlist.signal array ->
  unit
(** Same for a register array: [sinks.(i)] is live while [valid.(i)] is 1. *)

val live_tainted : t -> int
(** Number of tainted annotated slots whose liveness signal is high. *)

val dead_tainted : t -> int
(** Number of tainted annotated slots whose liveness signal is low —
    residual, unexploitable taints that a liveness-unaware oracle would
    misreport. *)

val live_sinks : t -> string list
(** Names of the live tainted sinks, for bug reports. *)

val annotation_count : t -> int
(** Number of annotated slots (the paper's "Annotation LoC" analogue). *)
