open Dvz_ir
module N = Netlist

type t = {
  mode : Policy.mode;
  nl : N.t;
  va : int array;
  vb : int array;
  ta : int array;
  mem_a : (string, int array) Hashtbl.t;
  mem_b : (string, int array) Hashtbl.t;
  mem_t : (string, int array) Hashtbl.t;
  order : N.signal array;
}

let idx (s : N.signal) = (s :> int)

let create mode nl =
  let order = N.topo_order nl in
  let n = N.num_signals nl in
  let va = Array.make n 0 and vb = Array.make n 0 and ta = Array.make n 0 in
  for i = 0 to n - 1 do
    let s = N.signal_of_int nl i in
    match N.cell_of nl s with
    | N.Reg r ->
        va.(i) <- r.N.init;
        vb.(i) <- r.N.init
    | N.Const v ->
        va.(i) <- v;
        vb.(i) <- v
    | _ -> ()
  done;
  let mk () = Hashtbl.create 8 in
  let mem_a = mk () and mem_b = mk () and mem_t = mk () in
  List.iter
    (fun m ->
      let d = N.mem_depth m in
      Hashtbl.replace mem_a (N.mem_name m) (Array.make d 0);
      Hashtbl.replace mem_b (N.mem_name m) (Array.make d 0);
      Hashtbl.replace mem_t (N.mem_name m) (Array.make d 0))
    (N.mems nl);
  { mode; nl; va; vb; ta; mem_a; mem_b; mem_t; order }

let mode t = t.mode
let netlist t = t.nl

let set_input t s v =
  let v = Bits.trunc (N.width_of t.nl s) v in
  t.va.(idx s) <- v;
  t.vb.(idx s) <- v;
  t.ta.(idx s) <- 0

let set_input_pair t s va vb =
  let w = N.width_of t.nl s in
  t.va.(idx s) <- Bits.trunc w va;
  t.vb.(idx s) <- Bits.trunc w vb;
  t.ta.(idx s) <- Bits.mask w

let set_input_taint t s m = t.ta.(idx s) <- Bits.trunc (N.width_of t.nl s) m

let peek_a t s = t.va.(idx s)
let peek_b t s = t.vb.(idx s)
let taint_of t s = t.ta.(idx s)

let marr tbl m = Hashtbl.find tbl (N.mem_name m)

let poke_mem_pair t m i va vb =
  let w = N.mem_width m in
  (marr t.mem_a m).(i) <- Bits.trunc w va;
  (marr t.mem_b m).(i) <- Bits.trunc w vb;
  (marr t.mem_t m).(i) <- (if va <> vb then Bits.mask w else 0)

let mem_taint t m i = (marr t.mem_t m).(i)

(* Evaluate one combinational cell: both value instances plus the taint. *)
let eval_cell t s =
  let nl = t.nl in
  let w = N.width_of nl s in
  let va = t.va and vb = t.vb and ta = t.ta in
  let a_of x = va.(idx x) and b_of x = vb.(idx x) and t_of x = ta.(idx x) in
  let set ra rb rt =
    va.(idx s) <- Bits.trunc w ra;
    vb.(idx s) <- Bits.trunc w rb;
    ta.(idx s) <- Bits.trunc w rt
  in
  match N.cell_of nl s with
  | N.Input | N.Const _ | N.Reg _ -> ()
  | N.Not x -> set (lnot (a_of x)) (lnot (b_of x)) (t_of x)
  | N.And (x, y) ->
      let ta' =
        Policy.and_taint ~a:(a_of x) ~b:(a_of y) ~at:(t_of x) ~bt:(t_of y)
        lor Policy.and_taint ~a:(b_of x) ~b:(b_of y) ~at:(t_of x) ~bt:(t_of y)
      in
      set (a_of x land a_of y) (b_of x land b_of y) ta'
  | N.Or (x, y) ->
      let ta' =
        Policy.or_taint ~a:(a_of x) ~b:(a_of y) ~at:(t_of x) ~bt:(t_of y)
        lor Policy.or_taint ~a:(b_of x) ~b:(b_of y) ~at:(t_of x) ~bt:(t_of y)
      in
      set (a_of x lor a_of y) (b_of x lor b_of y) ta'
  | N.Xor (x, y) ->
      set (a_of x lxor a_of y) (b_of x lxor b_of y) (t_of x lor t_of y)
  | N.Mux (sel, x, y) ->
      let ra = if a_of sel = 1 then a_of y else a_of x in
      let rb = if b_of sel = 1 then b_of y else b_of x in
      let ab_xor = a_of x lxor a_of y lor (b_of x lxor b_of y) in
      let ta' =
        Policy.mux_taint t.mode ~width:w ~s:(a_of sel)
          ~s_diff:(a_of sel <> b_of sel) ~a:(a_of x) ~b:(a_of y)
          ~st:(t_of sel) ~at:(t_of x) ~bt:(t_of y) ~ab_xor
      in
      set ra rb ta'
  | N.Eq (x, y) ->
      let ra = if a_of x = a_of y then 1 else 0 in
      let rb = if b_of x = b_of y then 1 else 0 in
      let ta' =
        Policy.cmp_taint t.mode ~o_diff:(ra <> rb) ~at:(t_of x) ~bt:(t_of y)
      in
      set ra rb ta'
  | N.Lt (x, y) ->
      let ra = if a_of x < a_of y then 1 else 0 in
      let rb = if b_of x < b_of y then 1 else 0 in
      let ta' =
        Policy.cmp_taint t.mode ~o_diff:(ra <> rb) ~at:(t_of x) ~bt:(t_of y)
      in
      set ra rb ta'
  | N.Add (x, y) ->
      set (a_of x + a_of y) (b_of x + b_of y)
        (Policy.arith_taint ~width:w ~at:(t_of x) ~bt:(t_of y))
  | N.Sub (x, y) ->
      set (a_of x - a_of y) (b_of x - b_of y)
        (Policy.arith_taint ~width:w ~at:(t_of x) ~bt:(t_of y))
  | N.Shl (x, n) -> set (a_of x lsl n) (b_of x lsl n) (t_of x lsl n)
  | N.Shr (x, n) -> set (a_of x lsr n) (b_of x lsr n) (t_of x lsr n)
  | N.Slice (x, lo) -> set (a_of x lsr lo) (b_of x lsr lo) (t_of x lsr lo)
  | N.Concat (hi, lo) ->
      let wlo = N.width_of nl lo in
      set
        ((a_of hi lsl wlo) lor a_of lo)
        ((b_of hi lsl wlo) lor b_of lo)
        ((t_of hi lsl wlo) lor t_of lo)
  | N.Mem_read (m, addr) ->
      let aa = a_of addr and ab = b_of addr in
      let arr_a = marr t.mem_a m and arr_b = marr t.mem_b m in
      let arr_t = marr t.mem_t m in
      let rd arr i = if i < Array.length arr then arr.(i) else 0 in
      let data_taint = rd arr_t aa lor rd arr_t ab in
      let ctrl =
        Policy.mem_read_ctrl t.mode ~width:w ~addrt:(t_of addr)
          ~addr_diff:(aa <> ab)
      in
      set (rd arr_a aa) (rd arr_b ab) (data_taint lor ctrl)

let eval t = Array.iter (fun s -> eval_cell t s) t.order

let step t =
  let nl = t.nl in
  (* Compute all next-state values/taints before committing any of them. *)
  let reg_next =
    List.filter_map
      (fun q ->
        match N.cell_of nl q with
        | N.Reg { d = Some d; en; _ } ->
            let w = N.width_of nl q in
            let en_a, en_b, ent =
              match en with
              | None -> (true, true, 0)
              | Some e -> (t.va.(idx e) = 1, t.vb.(idx e) = 1, t.ta.(idx e))
            in
            let next_a = if en_a then t.va.(idx d) else t.va.(idx q) in
            let next_b = if en_b then t.vb.(idx d) else t.vb.(idx q) in
            let dq_xor =
              t.va.(idx d) lxor t.va.(idx q)
              lor (t.vb.(idx d) lxor t.vb.(idx q))
            in
            let next_t =
              Policy.reg_en_taint t.mode ~width:w ~en:en_a
                ~en_diff:(en_a <> en_b) ~ent ~dt:t.ta.(idx d)
                ~qt:t.ta.(idx q) ~dq_xor
            in
            Some (q, next_a, next_b, next_t)
        | _ -> None)
      (N.registers nl)
  in
  List.iter
    (fun ((q : N.signal), a, b, tt) ->
      t.va.(idx q) <- a;
      t.vb.(idx q) <- b;
      t.ta.(idx q) <- tt)
    reg_next;
  List.iter
    (fun m ->
      let w = N.mem_width m in
      let arr_a = marr t.mem_a m and arr_b = marr t.mem_b m in
      let arr_t = marr t.mem_t m in
      List.iter
        (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
          let wen_a = t.va.(idx wen) = 1 and wen_b = t.vb.(idx wen) = 1 in
          let aa = t.va.(idx addr) and ab = t.vb.(idx addr) in
          let ctrl =
            Policy.mem_write_ctrl t.mode ~width:w ~wen:(wen_a || wen_b)
              ~went:t.ta.(idx wen) ~wen_diff:(wen_a <> wen_b)
              ~addrt:t.ta.(idx addr) ~addr_diff:(aa <> ab)
          in
          let touch i =
            if i < Array.length arr_t then arr_t.(i) <- arr_t.(i) lor ctrl
          in
          if ctrl <> 0 then begin touch aa; touch ab end;
          if wen_a && aa < Array.length arr_a then begin
            arr_a.(aa) <- Bits.trunc w t.va.(idx data);
            arr_t.(aa) <- arr_t.(aa) lor t.ta.(idx data) lor ctrl
          end;
          if wen_b && ab < Array.length arr_b then begin
            arr_b.(ab) <- Bits.trunc w t.vb.(idx data);
            arr_t.(ab) <- arr_t.(ab) lor t.ta.(idx data) lor ctrl
          end)
        (N.mem_writes m))
    (N.mems nl)

let cycle t =
  eval t;
  step t

let tainted_registers t =
  List.fold_left
    (fun acc q -> if t.ta.(idx q) <> 0 then acc + 1 else acc)
    0
    (N.registers t.nl)

let taint_bit_sum t =
  let regs =
    List.fold_left
      (fun acc q -> acc + Bits.popcount t.ta.(idx q))
      0
      (N.registers t.nl)
  in
  let mems =
    List.fold_left
      (fun acc m ->
        Array.fold_left (fun a x -> a + Bits.popcount x) acc (marr t.mem_t m))
      0 (N.mems t.nl)
  in
  regs + mems

let tainted_by_module t =
  let tbl = Hashtbl.create 16 in
  let bump k n =
    let cur = try Hashtbl.find tbl k with Not_found -> 0 in
    Hashtbl.replace tbl k (cur + n)
  in
  List.iter
    (fun q ->
      if t.ta.(idx q) <> 0 then bump (N.module_of t.nl q) 1
      else bump (N.module_of t.nl q) 0)
    (N.registers t.nl);
  List.iter
    (fun m ->
      let tainted_words =
        Array.fold_left (fun a x -> if x <> 0 then a + 1 else a) 0 (marr t.mem_t m)
      in
      bump (N.mem_name m) tainted_words)
    (N.mems t.nl);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let clear_taints t =
  Array.fill t.ta 0 (Array.length t.ta) 0;
  List.iter
    (fun m ->
      let arr = marr t.mem_t m in
      Array.fill arr 0 (Array.length arr) 0)
    (N.mems t.nl)
