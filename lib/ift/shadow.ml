open Dvz_ir
module N = Netlist

type engine = Sim.engine

(* Compiled evaluation program over the dual instances plus the shadow
   taint plane.  Same lowering idea as {!Dvz_ir.Sim}: the topo order is
   flattened once at [create] into parallel int arrays (opcode,
   pre-resolved operand indices, per-cell width and mask, memory backing
   arrays), so the steady-state cycle does no variant dispatch, no width
   lookups, no Hashtbl finds and no allocation — the {!Policy} calls it
   makes are all int-in/int-out.  Opcode numbering matches [Sim]'s. *)
type prog = {
  p_op : int array;
  p_dst : int array;
  p_a : int array;
  p_b : int array;
  p_c : int array;
  p_w : int array;
  p_mask : int array;
  p_arr_a : int array array;
  p_arr_b : int array array;
  p_arr_t : int array array;
}

(* Register-latch plan with three staging planes (value A, value B, taint)
   so feedback between registers latches atomically, like the interpretive
   two-phase step.  [l_en] holds the enable signal index or -1. *)
type latch_plan = {
  l_q : int array;
  l_d : int array;
  l_en : int array;
  l_w : int array;
  l_na : int array;
  l_nb : int array;
  l_nt : int array;
}

(* Memory-commit plan: one entry per write port in declaration order. *)
type commit_plan = {
  c_wen : int array;
  c_addr : int array;
  c_data : int array;
  c_w : int array;
  c_mask : int array;
  c_arr_a : int array array;
  c_arr_b : int array array;
  c_arr_t : int array array;
}

type t = {
  mode : Policy.mode;
  engine : engine;
  nl : N.t;
  va : int array;
  vb : int array;
  ta : int array;
  mem_a : (string, int array) Hashtbl.t;
  mem_b : (string, int array) Hashtbl.t;
  mem_t : (string, int array) Hashtbl.t;
  order : N.signal array;
  prog : prog;
  latch : latch_plan;
  commit : commit_plan;
  prov : Provenance.t option;
  mutable ticks : int;
}

let idx (s : N.signal) = (s :> int)

let no_arr : int array = [||]

let compile_prog nl (order : N.signal array) arr_a arr_b arr_t =
  let n = Array.length order in
  let p =
    { p_op = Array.make n 0;
      p_dst = Array.make n 0;
      p_a = Array.make n 0;
      p_b = Array.make n 0;
      p_c = Array.make n 0;
      p_w = Array.make n 0;
      p_mask = Array.make n 0;
      p_arr_a = Array.make n no_arr;
      p_arr_b = Array.make n no_arr;
      p_arr_t = Array.make n no_arr }
  in
  Array.iteri
    (fun i (s : N.signal) ->
      let set op a b c =
        p.p_op.(i) <- op;
        p.p_a.(i) <- a;
        p.p_b.(i) <- b;
        p.p_c.(i) <- c
      in
      p.p_dst.(i) <- idx s;
      p.p_w.(i) <- N.width_of nl s;
      p.p_mask.(i) <- Bits.mask (N.width_of nl s);
      match N.cell_of nl s with
      | N.Input | N.Const _ | N.Reg _ -> assert false
      | N.Not a -> set 0 (idx a) 0 0
      | N.And (a, b) -> set 1 (idx a) (idx b) 0
      | N.Or (a, b) -> set 2 (idx a) (idx b) 0
      | N.Xor (a, b) -> set 3 (idx a) (idx b) 0
      | N.Add (a, b) -> set 4 (idx a) (idx b) 0
      | N.Sub (a, b) -> set 5 (idx a) (idx b) 0
      | N.Eq (a, b) -> set 6 (idx a) (idx b) 0
      | N.Lt (a, b) -> set 7 (idx a) (idx b) 0
      | N.Shl (a, k) -> set 8 (idx a) k 0
      | N.Shr (a, k) | N.Slice (a, k) -> set 9 (idx a) k 0
      | N.Concat (hi, lo) -> set 10 (idx hi) (N.width_of nl lo) (idx lo)
      | N.Mux (sel, a, b) -> set 11 (idx sel) (idx a) (idx b)
      | N.Mem_read (m, addr) ->
          set 12 (idx addr) 0 0;
          p.p_arr_a.(i) <- arr_a m;
          p.p_arr_b.(i) <- arr_b m;
          p.p_arr_t.(i) <- arr_t m)
    order;
  p

let compile_latch nl =
  let regs =
    List.filter_map
      (fun q ->
        match N.cell_of nl q with
        | N.Reg { N.d = Some d; en; _ } ->
            Some
              ( idx q, idx d,
                (match en with None -> -1 | Some e -> idx e),
                N.width_of nl q )
        | _ -> None)
      (N.registers nl)
  in
  let n = List.length regs in
  let l =
    { l_q = Array.make n 0;
      l_d = Array.make n 0;
      l_en = Array.make n (-1);
      l_w = Array.make n 0;
      l_na = Array.make n 0;
      l_nb = Array.make n 0;
      l_nt = Array.make n 0 }
  in
  List.iteri
    (fun i (q, d, en, w) ->
      l.l_q.(i) <- q;
      l.l_d.(i) <- d;
      l.l_en.(i) <- en;
      l.l_w.(i) <- w)
    regs;
  l

let compile_commit nl arr_a arr_b arr_t =
  let ports =
    List.concat_map
      (fun m ->
        List.map
          (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
            (idx wen, idx addr, idx data, N.mem_width m,
             arr_a m, arr_b m, arr_t m))
          (N.mem_writes m))
      (N.mems nl)
  in
  let n = List.length ports in
  let c =
    { c_wen = Array.make n 0;
      c_addr = Array.make n 0;
      c_data = Array.make n 0;
      c_w = Array.make n 0;
      c_mask = Array.make n 0;
      c_arr_a = Array.make n no_arr;
      c_arr_b = Array.make n no_arr;
      c_arr_t = Array.make n no_arr }
  in
  List.iteri
    (fun i (wen, addr, data, w, aa, ab, at) ->
      c.c_wen.(i) <- wen;
      c.c_addr.(i) <- addr;
      c.c_data.(i) <- data;
      c.c_w.(i) <- w;
      c.c_mask.(i) <- Bits.mask w;
      c.c_arr_a.(i) <- aa;
      c.c_arr_b.(i) <- ab;
      c.c_arr_t.(i) <- at)
    ports;
  c

let create ?provenance ?(engine : engine = `Compiled) ?(opt = false) mode nl =
  (* Provenance replay walks every cell, named or not; optimizing under an
     armed recorder would change the intermediate hops a slice reports, so
     [opt] is ignored when a recorder is attached (the correctness guard
     for `dejavuzz explain`). *)
  let opt = opt && provenance = None && Passes.enabled () in
  let nl = if opt then Passes.optimize nl else nl in
  N.validate nl;
  let order = N.topo_order nl in
  let n = N.num_signals nl in
  let va = Array.make n 0 and vb = Array.make n 0 and ta = Array.make n 0 in
  for i = 0 to n - 1 do
    let s = N.signal_of_int nl i in
    match N.cell_of nl s with
    | N.Reg r ->
        va.(i) <- r.N.init;
        vb.(i) <- r.N.init
    | N.Const v ->
        va.(i) <- v;
        vb.(i) <- v
    | _ -> ()
  done;
  let mk () = Hashtbl.create 8 in
  let mem_a = mk () and mem_b = mk () and mem_t = mk () in
  List.iter
    (fun m ->
      let d = N.mem_depth m in
      Hashtbl.replace mem_a (N.mem_name m) (Array.make d 0);
      Hashtbl.replace mem_b (N.mem_name m) (Array.make d 0);
      Hashtbl.replace mem_t (N.mem_name m) (Array.make d 0))
    (N.mems nl);
  let arr_a m = Hashtbl.find mem_a (N.mem_name m) in
  let arr_b m = Hashtbl.find mem_b (N.mem_name m) in
  let arr_t m = Hashtbl.find mem_t (N.mem_name m) in
  { mode; engine; nl; va; vb; ta; mem_a; mem_b; mem_t; order;
    prog = compile_prog nl order arr_a arr_b arr_t;
    latch = compile_latch nl;
    commit = compile_commit nl arr_a arr_b arr_t;
    prov = provenance; ticks = 0 }

(* Re-arm a built co-simulator without re-lowering the netlist: both value
   planes back to register-init/const state, the taint plane and all three
   memory planes zeroed, tick counter cleared.  Bit-identical to a fresh
   [create ?provenance ~engine mode nl]. *)
let reset t =
  let n = N.num_signals t.nl in
  for i = 0 to n - 1 do
    let s = N.signal_of_int t.nl i in
    (match N.cell_of t.nl s with
    | N.Reg r ->
        t.va.(i) <- r.N.init;
        t.vb.(i) <- r.N.init
    | N.Const v ->
        t.va.(i) <- v;
        t.vb.(i) <- v
    | _ ->
        t.va.(i) <- 0;
        t.vb.(i) <- 0);
    t.ta.(i) <- 0
  done;
  let zero tbl =
    Hashtbl.iter (fun _ arr -> Array.fill arr 0 (Array.length arr) 0) tbl
  in
  zero t.mem_a;
  zero t.mem_b;
  zero t.mem_t;
  t.ticks <- 0

let mode t = t.mode
let engine t = t.engine
let netlist t = t.nl
let ticks t = t.ticks

(* Provenance node labels.  [Netlist.name_of] defaults to "", so unnamed
   signals fall back to their index — still injective per netlist. *)
let sig_label t s =
  let m = N.module_of t.nl s and n = N.name_of t.nl s in
  if n = "" then Printf.sprintf "%s#%d" m (idx s)
  else Printf.sprintf "%s.%s" m n

let mem_label m i = Printf.sprintf "%s[%d]" (N.mem_name m) i

let set_input t s v =
  let v = Bits.trunc (N.width_of t.nl s) v in
  t.va.(idx s) <- v;
  t.vb.(idx s) <- v;
  t.ta.(idx s) <- 0

let set_input_pair t s va vb =
  let w = N.width_of t.nl s in
  (match t.prov with
  | Some p when t.ta.(idx s) = 0 && Bits.mask w <> 0 ->
      Provenance.source p (sig_label t s)
  | _ -> ());
  t.va.(idx s) <- Bits.trunc w va;
  t.vb.(idx s) <- Bits.trunc w vb;
  t.ta.(idx s) <- Bits.mask w

let set_input_taint t s m =
  let m = Bits.trunc (N.width_of t.nl s) m in
  (match t.prov with
  | Some p when t.ta.(idx s) = 0 && m <> 0 ->
      Provenance.source p (sig_label t s)
  | _ -> ());
  t.ta.(idx s) <- m

let peek_a t s = t.va.(idx s)
let peek_b t s = t.vb.(idx s)
let taint_of t s = t.ta.(idx s)

let marr tbl m = Hashtbl.find tbl (N.mem_name m)

let poke_mem_pair t m i va vb =
  let w = N.mem_width m in
  (match t.prov with
  | Some p when va <> vb && (marr t.mem_t m).(i) = 0 ->
      Provenance.source p (mem_label m i)
  | _ -> ());
  (marr t.mem_a m).(i) <- Bits.trunc w va;
  (marr t.mem_b m).(i) <- Bits.trunc w vb;
  (marr t.mem_t m).(i) <- (if va <> vb then Bits.mask w else 0)

let mem_taint t m i = (marr t.mem_t m).(i)

(* --- interpretive engine (reference semantics) ------------------------- *)

(* Evaluate one combinational cell: both value instances plus the taint. *)
let eval_cell t s =
  let nl = t.nl in
  let w = N.width_of nl s in
  let va = t.va and vb = t.vb and ta = t.ta in
  let a_of x = va.(idx x) and b_of x = vb.(idx x) and t_of x = ta.(idx x) in
  let set ra rb rt =
    va.(idx s) <- Bits.trunc w ra;
    vb.(idx s) <- Bits.trunc w rb;
    ta.(idx s) <- Bits.trunc w rt
  in
  match N.cell_of nl s with
  | N.Input | N.Const _ | N.Reg _ -> ()
  | N.Not x -> set (lnot (a_of x)) (lnot (b_of x)) (t_of x)
  | N.And (x, y) ->
      let ta' =
        Policy.and_taint ~a:(a_of x) ~b:(a_of y) ~at:(t_of x) ~bt:(t_of y)
        lor Policy.and_taint ~a:(b_of x) ~b:(b_of y) ~at:(t_of x) ~bt:(t_of y)
      in
      set (a_of x land a_of y) (b_of x land b_of y) ta'
  | N.Or (x, y) ->
      let ta' =
        Policy.or_taint ~a:(a_of x) ~b:(a_of y) ~at:(t_of x) ~bt:(t_of y)
        lor Policy.or_taint ~a:(b_of x) ~b:(b_of y) ~at:(t_of x) ~bt:(t_of y)
      in
      set (a_of x lor a_of y) (b_of x lor b_of y) ta'
  | N.Xor (x, y) ->
      set (a_of x lxor a_of y) (b_of x lxor b_of y) (t_of x lor t_of y)
  | N.Mux (sel, x, y) ->
      (* [<> 0] truthiness: a selector is boolean, not literally 1. *)
      let ra = if a_of sel <> 0 then a_of y else a_of x in
      let rb = if b_of sel <> 0 then b_of y else b_of x in
      let ab_xor = a_of x lxor a_of y lor (b_of x lxor b_of y) in
      let ta' =
        Policy.mux_taint t.mode ~width:w ~s:(a_of sel)
          ~s_diff:(a_of sel <> b_of sel) ~a:(a_of x) ~b:(a_of y)
          ~st:(t_of sel) ~at:(t_of x) ~bt:(t_of y) ~ab_xor
      in
      set ra rb ta'
  | N.Eq (x, y) ->
      let ra = if a_of x = a_of y then 1 else 0 in
      let rb = if b_of x = b_of y then 1 else 0 in
      let ta' =
        Policy.cmp_taint t.mode ~o_diff:(ra <> rb) ~at:(t_of x) ~bt:(t_of y)
      in
      set ra rb ta'
  | N.Lt (x, y) ->
      let ra = if a_of x < a_of y then 1 else 0 in
      let rb = if b_of x < b_of y then 1 else 0 in
      let ta' =
        Policy.cmp_taint t.mode ~o_diff:(ra <> rb) ~at:(t_of x) ~bt:(t_of y)
      in
      set ra rb ta'
  | N.Add (x, y) ->
      set (a_of x + a_of y) (b_of x + b_of y)
        (Policy.arith_taint ~width:w ~at:(t_of x) ~bt:(t_of y))
  | N.Sub (x, y) ->
      set (a_of x - a_of y) (b_of x - b_of y)
        (Policy.arith_taint ~width:w ~at:(t_of x) ~bt:(t_of y))
  | N.Shl (x, n) -> set (a_of x lsl n) (b_of x lsl n) (t_of x lsl n)
  | N.Shr (x, n) -> set (a_of x lsr n) (b_of x lsr n) (t_of x lsr n)
  | N.Slice (x, lo) -> set (a_of x lsr lo) (b_of x lsr lo) (t_of x lsr lo)
  | N.Concat (hi, lo) ->
      let wlo = N.width_of nl lo in
      set
        ((a_of hi lsl wlo) lor a_of lo)
        ((b_of hi lsl wlo) lor b_of lo)
        ((t_of hi lsl wlo) lor t_of lo)
  | N.Mem_read (m, addr) ->
      let aa = a_of addr and ab = b_of addr in
      let arr_a = marr t.mem_a m and arr_b = marr t.mem_b m in
      let arr_t = marr t.mem_t m in
      let rd arr i = if i < Array.length arr then arr.(i) else 0 in
      let data_taint = rd arr_t aa lor rd arr_t ab in
      let ctrl =
        Policy.mem_read_ctrl t.mode ~width:w ~addrt:(t_of addr)
          ~addr_diff:(aa <> ab)
      in
      set (rd arr_a aa) (rd arr_b ab) (data_taint lor ctrl)

let eval_interp t = Array.iter (fun s -> eval_cell t s) t.order

let step_interp t =
  let nl = t.nl in
  (* Compute all next-state values/taints before committing any of them. *)
  let reg_next =
    List.filter_map
      (fun q ->
        match N.cell_of nl q with
        | N.Reg { d = Some d; en; _ } ->
            let w = N.width_of nl q in
            let en_a, en_b, ent =
              match en with
              | None -> (true, true, 0)
              | Some e -> (t.va.(idx e) <> 0, t.vb.(idx e) <> 0, t.ta.(idx e))
            in
            let next_a = if en_a then t.va.(idx d) else t.va.(idx q) in
            let next_b = if en_b then t.vb.(idx d) else t.vb.(idx q) in
            let dq_xor =
              t.va.(idx d) lxor t.va.(idx q)
              lor (t.vb.(idx d) lxor t.vb.(idx q))
            in
            let next_t =
              Policy.reg_en_taint t.mode ~width:w ~en:en_a
                ~en_diff:(en_a <> en_b) ~ent ~dt:t.ta.(idx d)
                ~qt:t.ta.(idx q) ~dq_xor
            in
            Some (q, next_a, next_b, next_t)
        | _ -> None)
      (N.registers nl)
  in
  List.iter
    (fun ((q : N.signal), a, b, tt) ->
      t.va.(idx q) <- a;
      t.vb.(idx q) <- b;
      t.ta.(idx q) <- tt)
    reg_next;
  List.iter
    (fun m ->
      let w = N.mem_width m in
      let arr_a = marr t.mem_a m and arr_b = marr t.mem_b m in
      let arr_t = marr t.mem_t m in
      List.iter
        (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
          let wen_a = t.va.(idx wen) <> 0 and wen_b = t.vb.(idx wen) <> 0 in
          let aa = t.va.(idx addr) and ab = t.vb.(idx addr) in
          let ctrl =
            Policy.mem_write_ctrl t.mode ~width:w ~wen:(wen_a || wen_b)
              ~went:t.ta.(idx wen) ~wen_diff:(wen_a <> wen_b)
              ~addrt:t.ta.(idx addr) ~addr_diff:(aa <> ab)
          in
          let touch i =
            if i < Array.length arr_t then arr_t.(i) <- arr_t.(i) lor ctrl
          in
          if ctrl <> 0 then begin touch aa; touch ab end;
          if wen_a && aa < Array.length arr_a then begin
            arr_a.(aa) <- Bits.trunc w t.va.(idx data);
            arr_t.(aa) <- arr_t.(aa) lor t.ta.(idx data) lor ctrl
          end;
          if wen_b && ab < Array.length arr_b then begin
            arr_b.(ab) <- Bits.trunc w t.vb.(idx data);
            arr_t.(ab) <- arr_t.(ab) lor t.ta.(idx data) lor ctrl
          end)
        (N.mem_writes m))
    (N.mems nl)

(* --- compiled engine ---------------------------------------------------- *)

let exec_prog mode p va vb ta =
  let n = Array.length p.p_op in
  for i = 0 to n - 1 do
    let a = Array.unsafe_get p.p_a i in
    let b = Array.unsafe_get p.p_b i in
    let dst = Array.unsafe_get p.p_dst i in
    let mask = Array.unsafe_get p.p_mask i in
    let set ra rb rt =
      Array.unsafe_set va dst (ra land mask);
      Array.unsafe_set vb dst (rb land mask);
      Array.unsafe_set ta dst (rt land mask)
    in
    match Array.unsafe_get p.p_op i with
    | 0 ->
        set
          (lnot (Array.unsafe_get va a))
          (lnot (Array.unsafe_get vb a))
          (Array.unsafe_get ta a)
    | 1 ->
        let xa = Array.unsafe_get va a and ya = Array.unsafe_get va b in
        let xb = Array.unsafe_get vb a and yb = Array.unsafe_get vb b in
        let xt = Array.unsafe_get ta a and yt = Array.unsafe_get ta b in
        set (xa land ya) (xb land yb)
          (Policy.and_taint ~a:xa ~b:ya ~at:xt ~bt:yt
          lor Policy.and_taint ~a:xb ~b:yb ~at:xt ~bt:yt)
    | 2 ->
        let xa = Array.unsafe_get va a and ya = Array.unsafe_get va b in
        let xb = Array.unsafe_get vb a and yb = Array.unsafe_get vb b in
        let xt = Array.unsafe_get ta a and yt = Array.unsafe_get ta b in
        set (xa lor ya) (xb lor yb)
          (Policy.or_taint ~a:xa ~b:ya ~at:xt ~bt:yt
          lor Policy.or_taint ~a:xb ~b:yb ~at:xt ~bt:yt)
    | 3 ->
        set
          (Array.unsafe_get va a lxor Array.unsafe_get va b)
          (Array.unsafe_get vb a lxor Array.unsafe_get vb b)
          (Array.unsafe_get ta a lor Array.unsafe_get ta b)
    | 4 ->
        set
          (Array.unsafe_get va a + Array.unsafe_get va b)
          (Array.unsafe_get vb a + Array.unsafe_get vb b)
          (Policy.arith_taint ~width:(Array.unsafe_get p.p_w i)
             ~at:(Array.unsafe_get ta a) ~bt:(Array.unsafe_get ta b))
    | 5 ->
        set
          (Array.unsafe_get va a - Array.unsafe_get va b)
          (Array.unsafe_get vb a - Array.unsafe_get vb b)
          (Policy.arith_taint ~width:(Array.unsafe_get p.p_w i)
             ~at:(Array.unsafe_get ta a) ~bt:(Array.unsafe_get ta b))
    | 6 ->
        let ra = if Array.unsafe_get va a = Array.unsafe_get va b then 1 else 0 in
        let rb = if Array.unsafe_get vb a = Array.unsafe_get vb b then 1 else 0 in
        set ra rb
          (Policy.cmp_taint mode ~o_diff:(ra <> rb)
             ~at:(Array.unsafe_get ta a) ~bt:(Array.unsafe_get ta b))
    | 7 ->
        let ra = if Array.unsafe_get va a < Array.unsafe_get va b then 1 else 0 in
        let rb = if Array.unsafe_get vb a < Array.unsafe_get vb b then 1 else 0 in
        set ra rb
          (Policy.cmp_taint mode ~o_diff:(ra <> rb)
             ~at:(Array.unsafe_get ta a) ~bt:(Array.unsafe_get ta b))
    | 8 ->
        set
          (Array.unsafe_get va a lsl b)
          (Array.unsafe_get vb a lsl b)
          (Array.unsafe_get ta a lsl b)
    | 9 ->
        set
          (Array.unsafe_get va a lsr b)
          (Array.unsafe_get vb a lsr b)
          (Array.unsafe_get ta a lsr b)
    | 10 ->
        let lo = Array.unsafe_get p.p_c i in
        set
          ((Array.unsafe_get va a lsl b) lor Array.unsafe_get va lo)
          ((Array.unsafe_get vb a lsl b) lor Array.unsafe_get vb lo)
          ((Array.unsafe_get ta a lsl b) lor Array.unsafe_get ta lo)
    | 11 ->
        let y = Array.unsafe_get p.p_c i in
        let sa = Array.unsafe_get va a and sb = Array.unsafe_get vb a in
        let xa = Array.unsafe_get va b and ya = Array.unsafe_get va y in
        let xb = Array.unsafe_get vb b and yb = Array.unsafe_get vb y in
        let ra = if sa <> 0 then ya else xa in
        let rb = if sb <> 0 then yb else xb in
        let ab_xor = xa lxor ya lor (xb lxor yb) in
        set ra rb
          (Policy.mux_taint mode ~width:(Array.unsafe_get p.p_w i) ~s:sa
             ~s_diff:(sa <> sb) ~a:xa ~b:ya ~st:(Array.unsafe_get ta a)
             ~at:(Array.unsafe_get ta b) ~bt:(Array.unsafe_get ta y) ~ab_xor)
    | _ ->
        let arr_a = Array.unsafe_get p.p_arr_a i in
        let arr_b = Array.unsafe_get p.p_arr_b i in
        let arr_t = Array.unsafe_get p.p_arr_t i in
        let aa = Array.unsafe_get va a and ab = Array.unsafe_get vb a in
        let len = Array.length arr_a in
        let da = if aa < len then Array.unsafe_get arr_a aa else 0 in
        let db = if ab < len then Array.unsafe_get arr_b ab else 0 in
        let dt =
          (if aa < len then Array.unsafe_get arr_t aa else 0)
          lor if ab < len then Array.unsafe_get arr_t ab else 0
        in
        let ctrl =
          Policy.mem_read_ctrl mode ~width:(Array.unsafe_get p.p_w i)
            ~addrt:(Array.unsafe_get ta a) ~addr_diff:(aa <> ab)
        in
        set da db (dt lor ctrl)
  done

let step_compiled t =
  let va = t.va and vb = t.vb and ta = t.ta in
  let l = t.latch in
  let n = Array.length l.l_q in
  for i = 0 to n - 1 do
    let q = Array.unsafe_get l.l_q i in
    let d = Array.unsafe_get l.l_d i in
    let en = Array.unsafe_get l.l_en i in
    let en_a, en_b, ent =
      if en < 0 then (true, true, 0)
      else
        ( Array.unsafe_get va en <> 0,
          Array.unsafe_get vb en <> 0,
          Array.unsafe_get ta en )
    in
    let da = Array.unsafe_get va d and qa = Array.unsafe_get va q in
    let db = Array.unsafe_get vb d and qb = Array.unsafe_get vb q in
    Array.unsafe_set l.l_na i (if en_a then da else qa);
    Array.unsafe_set l.l_nb i (if en_b then db else qb);
    let dq_xor = da lxor qa lor (db lxor qb) in
    Array.unsafe_set l.l_nt i
      (Policy.reg_en_taint t.mode ~width:(Array.unsafe_get l.l_w i) ~en:en_a
         ~en_diff:(en_a <> en_b) ~ent ~dt:(Array.unsafe_get ta d)
         ~qt:(Array.unsafe_get ta q) ~dq_xor)
  done;
  for i = 0 to n - 1 do
    let q = Array.unsafe_get l.l_q i in
    Array.unsafe_set va q (Array.unsafe_get l.l_na i);
    Array.unsafe_set vb q (Array.unsafe_get l.l_nb i);
    Array.unsafe_set ta q (Array.unsafe_get l.l_nt i)
  done;
  let c = t.commit in
  let m = Array.length c.c_wen in
  for i = 0 to m - 1 do
    let wen = Array.unsafe_get c.c_wen i in
    let wen_a = Array.unsafe_get va wen <> 0 in
    let wen_b = Array.unsafe_get vb wen <> 0 in
    let addr = Array.unsafe_get c.c_addr i in
    let aa = Array.unsafe_get va addr and ab = Array.unsafe_get vb addr in
    let ctrl =
      Policy.mem_write_ctrl t.mode ~width:(Array.unsafe_get c.c_w i)
        ~wen:(wen_a || wen_b) ~went:(Array.unsafe_get ta wen)
        ~wen_diff:(wen_a <> wen_b) ~addrt:(Array.unsafe_get ta addr)
        ~addr_diff:(aa <> ab)
    in
    let arr_a = Array.unsafe_get c.c_arr_a i in
    let arr_b = Array.unsafe_get c.c_arr_b i in
    let arr_t = Array.unsafe_get c.c_arr_t i in
    let len = Array.length arr_t in
    if ctrl <> 0 then begin
      if aa < len then Array.unsafe_set arr_t aa (Array.unsafe_get arr_t aa lor ctrl);
      if ab < len then Array.unsafe_set arr_t ab (Array.unsafe_get arr_t ab lor ctrl)
    end;
    let data = Array.unsafe_get c.c_data i in
    let mask = Array.unsafe_get c.c_mask i in
    if wen_a && aa < len then begin
      Array.unsafe_set arr_a aa (Array.unsafe_get va data land mask);
      Array.unsafe_set arr_t aa
        (Array.unsafe_get arr_t aa lor Array.unsafe_get ta data lor ctrl)
    end;
    if wen_b && ab < len then begin
      Array.unsafe_set arr_b ab (Array.unsafe_get vb data land mask);
      Array.unsafe_set arr_t ab
        (Array.unsafe_get arr_t ab lor Array.unsafe_get ta data lor ctrl)
    end
  done

(* --- traced paths (provenance armed) ------------------------------------ *)

(* Armed evaluation always routes through the interpretive cells: the
   compiled engine is pinned bit-identical to them by the differential
   tests, so the replay pass observes the same taints while paying the
   instrumentation only when a recorder is attached. *)

let cell_op_srcs t s =
  match N.cell_of t.nl s with
  | N.Input | N.Const _ | N.Reg _ -> ("", [])
  | N.Not a -> ("not", [ a ])
  | N.And (a, b) -> ("and", [ a; b ])
  | N.Or (a, b) -> ("or", [ a; b ])
  | N.Xor (a, b) -> ("xor", [ a; b ])
  | N.Add (a, b) -> ("add", [ a; b ])
  | N.Sub (a, b) -> ("sub", [ a; b ])
  | N.Eq (a, b) -> ("eq", [ a; b ])
  | N.Lt (a, b) -> ("lt", [ a; b ])
  | N.Shl (a, _) -> ("shl", [ a ])
  | N.Shr (a, _) -> ("shr", [ a ])
  | N.Slice (a, _) -> ("slice", [ a ])
  | N.Concat (hi, lo) -> ("concat", [ hi; lo ])
  | N.Mux (sel, a, b) -> ("mux", [ sel; a; b ])
  | N.Mem_read (_, addr) -> ("mem_read", [ addr ])

let tainted_labels t sigs =
  List.filter_map
    (fun s -> if t.ta.(idx s) <> 0 then Some (sig_label t s) else None)
    sigs

let eval_traced t p =
  Provenance.set_context p ~time:t.ticks ~in_window:false;
  Array.iter
    (fun s ->
      let old = t.ta.(idx s) in
      eval_cell t s;
      if old = 0 && t.ta.(idx s) <> 0 then begin
        let op, operands = cell_op_srcs t s in
        let srcs = tainted_labels t operands in
        let srcs =
          match N.cell_of t.nl s with
          | N.Mem_read (m, addr) ->
              let arr_t = marr t.mem_t m in
              let word i =
                if i < Array.length arr_t && arr_t.(i) <> 0 then
                  Some (mem_label m i)
                else None
              in
              let aa = t.va.(idx addr) and ab = t.vb.(idx addr) in
              let words =
                match (word aa, word ab) with
                | Some x, Some y when x = y -> [ x ]
                | Some x, Some y -> [ x; y ]
                | Some x, None | None, Some x -> [ x ]
                | None, None -> []
              in
              srcs @ words
          | _ -> srcs
        in
        Provenance.record p ~dst:(sig_label t s) ~srcs (Provenance.Cell op)
      end)
    t.order

let step_traced t p =
  Provenance.set_context p ~time:t.ticks ~in_window:false;
  let pre = Array.copy t.ta in
  let pre_mem = Hashtbl.create 8 in
  List.iter
    (fun m ->
      Hashtbl.replace pre_mem (N.mem_name m) (Array.copy (marr t.mem_t m)))
    (N.mems t.nl);
  step_interp t;
  List.iter
    (fun q ->
      match N.cell_of t.nl q with
      | N.Reg { N.d = Some d; en; _ }
        when pre.(idx q) = 0 && t.ta.(idx q) <> 0 ->
          let operands = d :: (match en with None -> [] | Some e -> [ e ]) in
          let srcs =
            List.filter_map
              (fun s ->
                if pre.(idx s) <> 0 then Some (sig_label t s) else None)
              operands
          in
          Provenance.record p ~dst:(sig_label t q) ~srcs (Provenance.Cell "reg")
      | _ -> ())
    (N.registers t.nl);
  List.iter
    (fun m ->
      let old = Hashtbl.find pre_mem (N.mem_name m) in
      let cur = marr t.mem_t m in
      let port_srcs =
        List.concat_map
          (fun (wen, addr, data) ->
            List.filter_map
              (fun s ->
                if pre.(idx s) <> 0 then Some (sig_label t s) else None)
              [ wen; addr; data ])
          (N.mem_writes m)
      in
      Array.iteri
        (fun i tv ->
          if old.(i) = 0 && tv <> 0 then
            Provenance.record p ~dst:(mem_label m i) ~srcs:port_srcs
              (Provenance.Cell "mem"))
        cur)
    (N.mems t.nl)

let eval_impl t =
  match t.prov with
  | Some p -> eval_traced t p
  | None -> (
      match t.engine with
      | `Compiled -> exec_prog t.mode t.prog t.va t.vb t.ta
      | `Interp -> eval_interp t)

(* Armed-guarded like Sim.eval: disarmed shadow cycles stay
   allocation-free. *)
let eval t =
  if Dvz_obs.Profile.armed () then
    Dvz_obs.Profile.wrap "shadow/eval" (fun () -> eval_impl t)
  else eval_impl t

let step t =
  (match t.prov with
  | Some p -> step_traced t p
  | None -> (
      match t.engine with
      | `Compiled -> step_compiled t
      | `Interp -> step_interp t));
  t.ticks <- t.ticks + 1

let cycle t =
  eval t;
  step t

let tainted_registers t =
  List.fold_left
    (fun acc q -> if t.ta.(idx q) <> 0 then acc + 1 else acc)
    0
    (N.registers t.nl)

let taint_bit_sum t =
  let regs =
    List.fold_left
      (fun acc q -> acc + Bits.popcount t.ta.(idx q))
      0
      (N.registers t.nl)
  in
  let mems =
    List.fold_left
      (fun acc m ->
        Array.fold_left (fun a x -> a + Bits.popcount x) acc (marr t.mem_t m))
      0 (N.mems t.nl)
  in
  regs + mems

let tainted_by_module t =
  let tbl = Hashtbl.create 16 in
  let bump k n =
    let cur = try Hashtbl.find tbl k with Not_found -> 0 in
    Hashtbl.replace tbl k (cur + n)
  in
  List.iter
    (fun q ->
      if t.ta.(idx q) <> 0 then bump (N.module_of t.nl q) 1
      else bump (N.module_of t.nl q) 0)
    (N.registers t.nl);
  List.iter
    (fun m ->
      let tainted_words =
        Array.fold_left (fun a x -> if x <> 0 then a + 1 else a) 0 (marr t.mem_t m)
      in
      bump (N.mem_name m) tainted_words)
    (N.mems t.nl);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let clear_taints t =
  Array.fill t.ta 0 (Array.length t.ta) 0;
  List.iter
    (fun m ->
      let arr = marr t.mem_t m in
      Array.fill arr 0 (Array.length arr) 0)
    (N.mems t.nl)

(* --- lane-parallel compiled engine -------------------------------------

   Same structure-of-arrays layout as {!Dvz_ir.Sim.Lanes}, over the three
   shadow planes: value A, value B and taint of signal [s], lane [l] live
   at [s*k + l] of [va]/[vb]/[ta]; memory word [i], lane [l] at [i*k + l]
   of each of the three memory planes.  One opcode dispatch (and one load
   of the per-cell width/mask) is amortized over K independent co-simulated
   stimuli; the Policy calls remain int-in/int-out, so the lane loop does
   not allocate.  Pinned bit-identical per lane to the scalar engine
   (values, taints, memories, both Policy modes) by test_ift.ml. *)

module Lanes = struct
  type lanes = {
    mode : Policy.mode;
    nl : N.t;
    k : int;
    va : int array;
    vb : int array;
    ta : int array;
    mem_a : (string, int array) Hashtbl.t;
    mem_b : (string, int array) Hashtbl.t;
    mem_t : (string, int array) Hashtbl.t;
    prog : prog;         (* dst/a/c (and signal b's) pre-multiplied by k;
                            for Mem_read, p_b holds the memory depth *)
    latch : latch_plan;  (* q/d/en pre-multiplied; staging planes nregs*k *)
    commit : commit_plan;
    mutable ticks : int;
  }

  type t = lanes

  let lower nl k arr_a arr_b arr_t order =
    let p = compile_prog nl order arr_a arr_b arr_t in
    for i = 0 to Array.length p.p_op - 1 do
      p.p_dst.(i) <- p.p_dst.(i) * k;
      p.p_a.(i) <- p.p_a.(i) * k;
      p.p_c.(i) <- p.p_c.(i) * k;
      (match p.p_op.(i) with
      | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 11 -> p.p_b.(i) <- p.p_b.(i) * k
      | 12 -> p.p_b.(i) <- Array.length p.p_arr_a.(i) / k
      | _ -> ())
    done;
    let l = compile_latch nl in
    let nregs = Array.length l.l_q in
    for i = 0 to nregs - 1 do
      l.l_q.(i) <- l.l_q.(i) * k;
      l.l_d.(i) <- l.l_d.(i) * k;
      if l.l_en.(i) >= 0 then l.l_en.(i) <- l.l_en.(i) * k
    done;
    let l =
      { l with
        l_na = Array.make (nregs * k) 0;
        l_nb = Array.make (nregs * k) 0;
        l_nt = Array.make (nregs * k) 0 }
    in
    let c = compile_commit nl arr_a arr_b arr_t in
    for i = 0 to Array.length c.c_wen - 1 do
      c.c_wen.(i) <- c.c_wen.(i) * k;
      c.c_addr.(i) <- c.c_addr.(i) * k;
      c.c_data.(i) <- c.c_data.(i) * k
    done;
    (p, l, c)

  let init_values t =
    Array.fill t.va 0 (Array.length t.va) 0;
    Array.fill t.vb 0 (Array.length t.vb) 0;
    Array.fill t.ta 0 (Array.length t.ta) 0;
    for i = 0 to N.num_signals t.nl - 1 do
      let s = N.signal_of_int t.nl i in
      match N.cell_of t.nl s with
      | N.Reg r ->
          Array.fill t.va (i * t.k) t.k r.N.init;
          Array.fill t.vb (i * t.k) t.k r.N.init
      | N.Const v ->
          Array.fill t.va (i * t.k) t.k v;
          Array.fill t.vb (i * t.k) t.k v
      | _ -> ()
    done

  let create ?(opt = false) ~k mode nl =
    if k <= 0 then invalid_arg "Shadow.Lanes.create: k must be positive";
    let nl = if opt && Passes.enabled () then Passes.optimize nl else nl in
    N.validate nl;
    let order = N.topo_order nl in
    let n = N.num_signals nl in
    let mk () = Hashtbl.create 8 in
    let mem_a = mk () and mem_b = mk () and mem_t = mk () in
    List.iter
      (fun m ->
        let d = N.mem_depth m * k in
        Hashtbl.replace mem_a (N.mem_name m) (Array.make d 0);
        Hashtbl.replace mem_b (N.mem_name m) (Array.make d 0);
        Hashtbl.replace mem_t (N.mem_name m) (Array.make d 0))
      (N.mems nl);
    let arr_a m = Hashtbl.find mem_a (N.mem_name m) in
    let arr_b m = Hashtbl.find mem_b (N.mem_name m) in
    let arr_t m = Hashtbl.find mem_t (N.mem_name m) in
    let prog, latch, commit = lower nl k arr_a arr_b arr_t order in
    let t =
      { mode; nl; k;
        va = Array.make (n * k) 0;
        vb = Array.make (n * k) 0;
        ta = Array.make (n * k) 0;
        mem_a; mem_b; mem_t; prog; latch; commit; ticks = 0 }
    in
    init_values t;
    t

  let reset t =
    init_values t;
    let zero tbl =
      Hashtbl.iter (fun _ arr -> Array.fill arr 0 (Array.length arr) 0) tbl
    in
    zero t.mem_a;
    zero t.mem_b;
    zero t.mem_t;
    t.ticks <- 0

  let k t = t.k
  let mode t = t.mode
  let netlist t = t.nl
  let ticks t = t.ticks

  let check_lane t lane =
    if lane < 0 || lane >= t.k then
      invalid_arg "Shadow.Lanes: lane out of range"

  let slot t s lane = (idx s * t.k) + lane

  let set_input t ~lane s v =
    check_lane t lane;
    let v = Bits.trunc (N.width_of t.nl s) v in
    let i = slot t s lane in
    t.va.(i) <- v;
    t.vb.(i) <- v;
    t.ta.(i) <- 0

  let set_input_all t s v =
    let v = Bits.trunc (N.width_of t.nl s) v in
    let base = idx s * t.k in
    Array.fill t.va base t.k v;
    Array.fill t.vb base t.k v;
    Array.fill t.ta base t.k 0

  let set_input_pair t ~lane s va vb =
    check_lane t lane;
    let w = N.width_of t.nl s in
    let i = slot t s lane in
    t.va.(i) <- Bits.trunc w va;
    t.vb.(i) <- Bits.trunc w vb;
    t.ta.(i) <- Bits.mask w

  let set_input_taint t ~lane s m =
    check_lane t lane;
    t.ta.(slot t s lane) <- Bits.trunc (N.width_of t.nl s) m

  let peek_a t ~lane s = check_lane t lane; t.va.(slot t s lane)
  let peek_b t ~lane s = check_lane t lane; t.vb.(slot t s lane)
  let taint_of t ~lane s = check_lane t lane; t.ta.(slot t s lane)

  let lmarr tbl m = Hashtbl.find tbl (N.mem_name m)

  let poke_mem_pair t ~lane m i va vb =
    check_lane t lane;
    let w = N.mem_width m in
    let j = (i * t.k) + lane in
    (lmarr t.mem_a m).(j) <- Bits.trunc w va;
    (lmarr t.mem_b m).(j) <- Bits.trunc w vb;
    (lmarr t.mem_t m).(j) <- (if va <> vb then Bits.mask w else 0)

  let mem_taint t ~lane m i =
    check_lane t lane;
    (lmarr t.mem_t m).((i * t.k) + lane)

  (* Mirrors the scalar [exec_prog] arm for arm; any change there must land
     here too (the per-lane differential property in test_ift.ml enforces
     this). *)
  let eval_impl t =
    let p = t.prog and k = t.k in
    let mode = t.mode in
    let va = t.va and vb = t.vb and ta = t.ta in
    let n = Array.length p.p_op in
    for i = 0 to n - 1 do
      let dst = Array.unsafe_get p.p_dst i in
      let a = Array.unsafe_get p.p_a i in
      let b = Array.unsafe_get p.p_b i in
      let mask = Array.unsafe_get p.p_mask i in
      match Array.unsafe_get p.p_op i with
      | 0 ->
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              (lnot (Array.unsafe_get va (a + l)) land mask);
            Array.unsafe_set vb (dst + l)
              (lnot (Array.unsafe_get vb (a + l)) land mask);
            Array.unsafe_set ta (dst + l) (Array.unsafe_get ta (a + l))
          done
      | 1 ->
          for l = 0 to k - 1 do
            let xa = Array.unsafe_get va (a + l) in
            let ya = Array.unsafe_get va (b + l) in
            let xb = Array.unsafe_get vb (a + l) in
            let yb = Array.unsafe_get vb (b + l) in
            let xt = Array.unsafe_get ta (a + l) in
            let yt = Array.unsafe_get ta (b + l) in
            Array.unsafe_set va (dst + l) (xa land ya);
            Array.unsafe_set vb (dst + l) (xb land yb);
            Array.unsafe_set ta (dst + l)
              ((Policy.and_taint ~a:xa ~b:ya ~at:xt ~bt:yt
               lor Policy.and_taint ~a:xb ~b:yb ~at:xt ~bt:yt)
              land mask)
          done
      | 2 ->
          for l = 0 to k - 1 do
            let xa = Array.unsafe_get va (a + l) in
            let ya = Array.unsafe_get va (b + l) in
            let xb = Array.unsafe_get vb (a + l) in
            let yb = Array.unsafe_get vb (b + l) in
            let xt = Array.unsafe_get ta (a + l) in
            let yt = Array.unsafe_get ta (b + l) in
            Array.unsafe_set va (dst + l) (xa lor ya);
            Array.unsafe_set vb (dst + l) (xb lor yb);
            Array.unsafe_set ta (dst + l)
              ((Policy.or_taint ~a:xa ~b:ya ~at:xt ~bt:yt
               lor Policy.or_taint ~a:xb ~b:yb ~at:xt ~bt:yt)
              land mask)
          done
      | 3 ->
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              (Array.unsafe_get va (a + l) lxor Array.unsafe_get va (b + l));
            Array.unsafe_set vb (dst + l)
              (Array.unsafe_get vb (a + l) lxor Array.unsafe_get vb (b + l));
            Array.unsafe_set ta (dst + l)
              ((Array.unsafe_get ta (a + l) lor Array.unsafe_get ta (b + l))
              land mask)
          done
      | 4 ->
          let w = Array.unsafe_get p.p_w i in
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              ((Array.unsafe_get va (a + l) + Array.unsafe_get va (b + l))
              land mask);
            Array.unsafe_set vb (dst + l)
              ((Array.unsafe_get vb (a + l) + Array.unsafe_get vb (b + l))
              land mask);
            Array.unsafe_set ta (dst + l)
              (Policy.arith_taint ~width:w ~at:(Array.unsafe_get ta (a + l))
                 ~bt:(Array.unsafe_get ta (b + l)))
          done
      | 5 ->
          let w = Array.unsafe_get p.p_w i in
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              ((Array.unsafe_get va (a + l) - Array.unsafe_get va (b + l))
              land mask);
            Array.unsafe_set vb (dst + l)
              ((Array.unsafe_get vb (a + l) - Array.unsafe_get vb (b + l))
              land mask);
            Array.unsafe_set ta (dst + l)
              (Policy.arith_taint ~width:w ~at:(Array.unsafe_get ta (a + l))
                 ~bt:(Array.unsafe_get ta (b + l)))
          done
      | 6 ->
          for l = 0 to k - 1 do
            let ra =
              if Array.unsafe_get va (a + l) = Array.unsafe_get va (b + l)
              then 1 else 0
            in
            let rb =
              if Array.unsafe_get vb (a + l) = Array.unsafe_get vb (b + l)
              then 1 else 0
            in
            Array.unsafe_set va (dst + l) ra;
            Array.unsafe_set vb (dst + l) rb;
            Array.unsafe_set ta (dst + l)
              (Policy.cmp_taint mode ~o_diff:(ra <> rb)
                 ~at:(Array.unsafe_get ta (a + l))
                 ~bt:(Array.unsafe_get ta (b + l)))
          done
      | 7 ->
          for l = 0 to k - 1 do
            let ra =
              if Array.unsafe_get va (a + l) < Array.unsafe_get va (b + l)
              then 1 else 0
            in
            let rb =
              if Array.unsafe_get vb (a + l) < Array.unsafe_get vb (b + l)
              then 1 else 0
            in
            Array.unsafe_set va (dst + l) ra;
            Array.unsafe_set vb (dst + l) rb;
            Array.unsafe_set ta (dst + l)
              (Policy.cmp_taint mode ~o_diff:(ra <> rb)
                 ~at:(Array.unsafe_get ta (a + l))
                 ~bt:(Array.unsafe_get ta (b + l)))
          done
      | 8 ->
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              (Array.unsafe_get va (a + l) lsl b land mask);
            Array.unsafe_set vb (dst + l)
              (Array.unsafe_get vb (a + l) lsl b land mask);
            Array.unsafe_set ta (dst + l)
              (Array.unsafe_get ta (a + l) lsl b land mask)
          done
      | 9 ->
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              (Array.unsafe_get va (a + l) lsr b land mask);
            Array.unsafe_set vb (dst + l)
              (Array.unsafe_get vb (a + l) lsr b land mask);
            Array.unsafe_set ta (dst + l)
              (Array.unsafe_get ta (a + l) lsr b land mask)
          done
      | 10 ->
          let c = Array.unsafe_get p.p_c i in
          for l = 0 to k - 1 do
            Array.unsafe_set va (dst + l)
              ((Array.unsafe_get va (a + l) lsl b
               lor Array.unsafe_get va (c + l))
              land mask);
            Array.unsafe_set vb (dst + l)
              ((Array.unsafe_get vb (a + l) lsl b
               lor Array.unsafe_get vb (c + l))
              land mask);
            Array.unsafe_set ta (dst + l)
              ((Array.unsafe_get ta (a + l) lsl b
               lor Array.unsafe_get ta (c + l))
              land mask)
          done
      | 11 ->
          let y = Array.unsafe_get p.p_c i in
          let w = Array.unsafe_get p.p_w i in
          for l = 0 to k - 1 do
            let sa = Array.unsafe_get va (a + l) in
            let sb = Array.unsafe_get vb (a + l) in
            let xa = Array.unsafe_get va (b + l) in
            let ya = Array.unsafe_get va (y + l) in
            let xb = Array.unsafe_get vb (b + l) in
            let yb = Array.unsafe_get vb (y + l) in
            let ra = if sa <> 0 then ya else xa in
            let rb = if sb <> 0 then yb else xb in
            let ab_xor = xa lxor ya lor (xb lxor yb) in
            Array.unsafe_set va (dst + l) ra;
            Array.unsafe_set vb (dst + l) rb;
            Array.unsafe_set ta (dst + l)
              (Policy.mux_taint mode ~width:w ~s:sa ~s_diff:(sa <> sb) ~a:xa
                 ~b:ya ~st:(Array.unsafe_get ta (a + l))
                 ~at:(Array.unsafe_get ta (b + l))
                 ~bt:(Array.unsafe_get ta (y + l)) ~ab_xor
              land mask)
          done
      | _ ->
          let arr_a = Array.unsafe_get p.p_arr_a i in
          let arr_b = Array.unsafe_get p.p_arr_b i in
          let arr_t = Array.unsafe_get p.p_arr_t i in
          let w = Array.unsafe_get p.p_w i in
          for l = 0 to k - 1 do
            let aa = Array.unsafe_get va (a + l) in
            let ab = Array.unsafe_get vb (a + l) in
            let da =
              if aa < b then Array.unsafe_get arr_a ((aa * k) + l) else 0
            in
            let db =
              if ab < b then Array.unsafe_get arr_b ((ab * k) + l) else 0
            in
            let dt =
              (if aa < b then Array.unsafe_get arr_t ((aa * k) + l) else 0)
              lor
              if ab < b then Array.unsafe_get arr_t ((ab * k) + l) else 0
            in
            let ctrl =
              Policy.mem_read_ctrl mode ~width:w
                ~addrt:(Array.unsafe_get ta (a + l)) ~addr_diff:(aa <> ab)
            in
            Array.unsafe_set va (dst + l) da;
            Array.unsafe_set vb (dst + l) db;
            Array.unsafe_set ta (dst + l) ((dt lor ctrl) land mask)
          done
    done

  let eval t =
    if Dvz_obs.Profile.armed () then
      Dvz_obs.Profile.wrap "shadow/eval-lanes" (fun () -> eval_impl t)
    else eval_impl t

  let step t =
    let va = t.va and vb = t.vb and ta = t.ta in
    let l = t.latch and k = t.k in
    let mode = t.mode in
    let n = Array.length l.l_q in
    for i = 0 to n - 1 do
      let q = Array.unsafe_get l.l_q i in
      let d = Array.unsafe_get l.l_d i in
      let en = Array.unsafe_get l.l_en i in
      let w = Array.unsafe_get l.l_w i in
      let base = i * k in
      for lane = 0 to k - 1 do
        let en_a, en_b, ent =
          if en < 0 then (true, true, 0)
          else
            ( Array.unsafe_get va (en + lane) <> 0,
              Array.unsafe_get vb (en + lane) <> 0,
              Array.unsafe_get ta (en + lane) )
        in
        let da = Array.unsafe_get va (d + lane) in
        let qa = Array.unsafe_get va (q + lane) in
        let db = Array.unsafe_get vb (d + lane) in
        let qb = Array.unsafe_get vb (q + lane) in
        Array.unsafe_set l.l_na (base + lane) (if en_a then da else qa);
        Array.unsafe_set l.l_nb (base + lane) (if en_b then db else qb);
        let dq_xor = da lxor qa lor (db lxor qb) in
        Array.unsafe_set l.l_nt (base + lane)
          (Policy.reg_en_taint mode ~width:w ~en:en_a ~en_diff:(en_a <> en_b)
             ~ent ~dt:(Array.unsafe_get ta (d + lane))
             ~qt:(Array.unsafe_get ta (q + lane)) ~dq_xor)
      done
    done;
    for i = 0 to n - 1 do
      let q = Array.unsafe_get l.l_q i in
      let base = i * k in
      for lane = 0 to k - 1 do
        Array.unsafe_set va (q + lane) (Array.unsafe_get l.l_na (base + lane));
        Array.unsafe_set vb (q + lane) (Array.unsafe_get l.l_nb (base + lane));
        Array.unsafe_set ta (q + lane) (Array.unsafe_get l.l_nt (base + lane))
      done
    done;
    let c = t.commit in
    let m = Array.length c.c_wen in
    for i = 0 to m - 1 do
      let wen = Array.unsafe_get c.c_wen i in
      let addr = Array.unsafe_get c.c_addr i in
      let data = Array.unsafe_get c.c_data i in
      let w = Array.unsafe_get c.c_w i in
      let mask = Array.unsafe_get c.c_mask i in
      let arr_a = Array.unsafe_get c.c_arr_a i in
      let arr_b = Array.unsafe_get c.c_arr_b i in
      let arr_t = Array.unsafe_get c.c_arr_t i in
      let depth = Array.length arr_t / k in
      for lane = 0 to k - 1 do
        let wen_a = Array.unsafe_get va (wen + lane) <> 0 in
        let wen_b = Array.unsafe_get vb (wen + lane) <> 0 in
        let aa = Array.unsafe_get va (addr + lane) in
        let ab = Array.unsafe_get vb (addr + lane) in
        let ctrl =
          Policy.mem_write_ctrl mode ~width:w ~wen:(wen_a || wen_b)
            ~went:(Array.unsafe_get ta (wen + lane))
            ~wen_diff:(wen_a <> wen_b)
            ~addrt:(Array.unsafe_get ta (addr + lane)) ~addr_diff:(aa <> ab)
        in
        if ctrl <> 0 then begin
          if aa < depth then begin
            let j = (aa * k) + lane in
            Array.unsafe_set arr_t j (Array.unsafe_get arr_t j lor ctrl)
          end;
          if ab < depth then begin
            let j = (ab * k) + lane in
            Array.unsafe_set arr_t j (Array.unsafe_get arr_t j lor ctrl)
          end
        end;
        if wen_a && aa < depth then begin
          let j = (aa * k) + lane in
          Array.unsafe_set arr_a j
            (Array.unsafe_get va (data + lane) land mask);
          Array.unsafe_set arr_t j
            (Array.unsafe_get arr_t j
            lor Array.unsafe_get ta (data + lane)
            lor ctrl)
        end;
        if wen_b && ab < depth then begin
          let j = (ab * k) + lane in
          Array.unsafe_set arr_b j
            (Array.unsafe_get vb (data + lane) land mask);
          Array.unsafe_set arr_t j
            (Array.unsafe_get arr_t j
            lor Array.unsafe_get ta (data + lane)
            lor ctrl)
        end
      done
    done;
    t.ticks <- t.ticks + 1

  let cycle t =
    eval t;
    step t

  let clear_taints t =
    Array.fill t.ta 0 (Array.length t.ta) 0;
    Hashtbl.iter
      (fun _ arr -> Array.fill arr 0 (Array.length arr) 0)
      t.mem_t
end
