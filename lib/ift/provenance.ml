(* Taint provenance recorder: a time-stamped log of taint-introduction
   edges, generic over string node identifiers so both the cell-level
   shadow ({!Shadow}) and the element-level layers above can share it.
   Recording is append-only and deterministic; the DAG and backward
   slices are derived on demand. *)

type kind =
  | Source
  | Data
  | Ctrl of string
  | Divergence
  | Restore
  | Cell of string

type edge = {
  e_id : int;
  e_time : int;
  e_in_window : bool;
  e_kind : kind;
  e_dst : string;
  e_srcs : string list;
}

type t = {
  cap : int;
  mutable time : int;
  mutable in_window : bool;
  mutable rev_edges : edge list;
  mutable n_edges : int;
  mutable dropped : int;
}

let create ?(cap = 1_000_000) () =
  if cap <= 0 then invalid_arg "Provenance.create: cap must be positive";
  { cap; time = 0; in_window = false; rev_edges = []; n_edges = 0;
    dropped = 0 }

let set_context t ~time ~in_window =
  t.time <- time;
  t.in_window <- in_window

let record t ~dst ~srcs kind =
  if t.n_edges >= t.cap then t.dropped <- t.dropped + 1
  else begin
    t.rev_edges <-
      { e_id = t.n_edges; e_time = t.time; e_in_window = t.in_window;
        e_kind = kind; e_dst = dst; e_srcs = srcs }
      :: t.rev_edges;
    t.n_edges <- t.n_edges + 1
  end

let source t dst = record t ~dst ~srcs:[] Source

let num_edges t = t.n_edges
let dropped t = t.dropped
let edges t = List.rev t.rev_edges

let kind_name = function
  | Source -> "source"
  | Data -> "data"
  | Ctrl label -> "ctrl:" ^ label
  | Divergence -> "divergence"
  | Restore -> "restore"
  | Cell label -> "cell:" ^ label

let kind_of_name s =
  let prefixed p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let suffix p = String.sub s (String.length p) (String.length s - String.length p) in
  match s with
  | "source" -> Some Source
  | "data" -> Some Data
  | "divergence" -> Some Divergence
  | "restore" -> Some Restore
  | _ ->
      if prefixed "ctrl:" then Some (Ctrl (suffix "ctrl:"))
      else if prefixed "cell:" then Some (Cell (suffix "cell:"))
      else None

(* Backward slice: from the sink, follow the most recent taint-introduction
   edge of each node backwards in recording order.  The per-node bound
   (strictly earlier than the edge that consumed it) makes self-edges — a
   squash [Restore] re-establishing a node from its own checkpointed
   history — resolve to the node's previous introduction instead of
   looping; a visited set over edge ids bounds the walk outright. *)
let slice t ~sink =
  let by_dst = Hashtbl.create 64 in
  (* [rev_edges] is newest-first, so consing builds oldest-first lists. *)
  List.iter
    (fun e ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_dst e.e_dst) in
      Hashtbl.replace by_dst e.e_dst (e :: prev))
    t.rev_edges;
  let last_intro node ~before =
    match Hashtbl.find_opt by_dst node with
    | None -> None
    | Some es ->
        List.fold_left
          (fun acc e -> if e.e_id < before then Some e else acc)
          None es
  in
  let visited = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go node before =
    match last_intro node ~before with
    | None -> ()
    | Some e ->
        if not (Hashtbl.mem visited e.e_id) then begin
          Hashtbl.replace visited e.e_id ();
          acc := e :: !acc;
          if e.e_kind <> Source then
            List.iter (fun s -> go s e.e_id) e.e_srcs
        end
  in
  go sink max_int;
  List.sort (fun a b -> compare a.e_id b.e_id) !acc

let render_edge e =
  Printf.sprintf "%6d %s %-26s <= %-12s %s" e.e_time
    (if e.e_in_window then "W" else " ")
    e.e_dst (kind_name e.e_kind)
    (match e.e_srcs with [] -> "(origin)" | l -> String.concat " " l)

let render_slice ?(header = true) t ~sink =
  let s = slice t ~sink in
  let buf = Buffer.create 256 in
  if header then
    Buffer.add_string buf
      (Printf.sprintf "slice for sink %s (%d edges):\n" sink (List.length s));
  List.iter (fun e -> Buffer.add_string buf (render_edge e ^ "\n")) s;
  Buffer.contents buf

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dot_of_slices t ~sinks =
  let union = Hashtbl.create 64 in
  List.iter
    (fun sink ->
      List.iter
        (fun e ->
          if not (Hashtbl.mem union e.e_id) then Hashtbl.replace union e.e_id e)
        (slice t ~sink))
    sinks;
  let es =
    List.sort
      (fun a b -> compare a.e_id b.e_id)
      (Hashtbl.fold (fun _ e acc -> e :: acc) union [])
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph provenance {\n  rankdir=LR;\n";
  let declared = Hashtbl.create 64 in
  let declare n shape =
    if not (Hashtbl.mem declared n) then begin
      Hashtbl.replace declared n ();
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=%s];\n" (dot_escape n) shape)
    end
  in
  List.iter
    (fun e ->
      declare e.e_dst (if e.e_kind = Source then "box" else "ellipse"))
    es;
  List.iter (fun sink -> declare sink "doubleoctagon") sinks;
  List.iter
    (fun e ->
      List.iter
        (fun src ->
          declare src "ellipse";
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"t=%d %s\"];\n"
               (dot_escape src) (dot_escape e.e_dst) e.e_time
               (dot_escape (kind_name e.e_kind))))
        e.e_srcs)
    es;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
