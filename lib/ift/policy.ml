open Dvz_ir

type mode = Cellift | Diffift

let mode_name = function Cellift -> "CellIFT" | Diffift -> "diffIFT"

let and_taint ~a ~b ~at ~bt = (a land bt) lor (b land at) lor (at land bt)

let or_taint ~a ~b ~at ~bt =
  (lnot a land bt) lor (lnot b land at) lor (at land bt)

let mux_taint mode ~width ~s ~s_diff ~a:_ ~b:_ ~st ~at ~bt ~ab_xor =
  (* [s <> 0], not [= 1]: the selector is a raw value here, and a multi-bit
     caller value like 2 selects the B arm in the value domain, so the data
     taint must follow the same arm or the shadow silently diverges. *)
  let data = if s <> 0 then bt else at in
  let control_enabled =
    st <> 0 && (match mode with Cellift -> true | Diffift -> s_diff)
  in
  let control = if control_enabled then ab_xor lor at lor bt else 0 in
  Bits.trunc width (data lor control)

let cmp_taint mode ~o_diff ~at ~bt =
  let tainted = at lor bt <> 0 in
  match mode with
  | Cellift -> if tainted then 1 else 0
  | Diffift -> if tainted && o_diff then 1 else 0

let arith_taint ~width ~at ~bt = Bits.spread_up width (at lor bt)

let reg_en_taint mode ~width ~en ~en_diff ~ent ~dt ~qt ~dq_xor =
  let data = if en then dt else qt in
  let control_enabled =
    ent <> 0 && (match mode with Cellift -> true | Diffift -> en_diff)
  in
  let control = if control_enabled then dq_xor lor dt lor qt else 0 in
  Bits.trunc width (data lor control)

let mem_read_ctrl mode ~width ~addrt ~addr_diff =
  let enabled =
    addrt <> 0 && (match mode with Cellift -> true | Diffift -> addr_diff)
  in
  if enabled then Bits.mask width else 0

let mem_write_ctrl mode ~width ~wen ~went ~wen_diff ~addrt ~addr_diff =
  let wen_part =
    went <> 0 && (match mode with Cellift -> true | Diffift -> wen_diff)
  in
  let addr_part =
    addrt <> 0 && wen
    && (match mode with Cellift -> true | Diffift -> addr_diff)
  in
  if wen_part || addr_part then Bits.mask width else 0
