(** Step 2.1 — transient window completion (§4.2.1).

    Replaces the dummy window section with (i) the secret access block — a
    fixed load of the sensitive data, optionally through a masked
    (out-of-physical-range) alias of its address to hunt MDS-type bugs —
    and (ii) the secret encoding block, a random composition of encoding
    gadgets that propagate the secret into distinct microarchitectural
    components (cache indexing, FPU/LSU port contention, RAS overwrites,
    instruction-fetch divergence, plain dataflow).

    Also derives the window training packets that warm memory-related state
    (the secret's cache line and TLB entry) before the trigger training
    runs, per the swap-schedule ordering of §4.2.1. *)

val complete : Dvz_uarch.Config.t -> Packet.testcase -> Packet.testcase
(** Fills the window section using the seed's window entropy and attaches
    window training packets; records the chosen gadget tags. *)

val sanitize : Dvz_uarch.Config.t -> Packet.testcase -> Packet.testcase
(** The §4.3.1 encode-sanitization variant: identical except the secret
    encoding block is replaced by nops.  Deterministic with respect to the
    seed, so the access block matches [complete]'s exactly. *)

val gadget_names : string list
(** All gadget tags the generator can emit. *)

val splice : Packet.testcase -> Dvz_isa.Insn.t list -> Packet.testcase
(** [splice tc insns] overwrites the window section with a hand-written
    payload (padded with nops to the window size).  Used by the curated
    attack test cases of the Table 4 / Figure 6 suite. *)
