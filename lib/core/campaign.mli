(** The fuzzing manager: ties the three phases into a campaign loop.

    Per iteration: pick a seed (a coverage-rewarded corpus entry with a
    freshly mutated window section, or a brand-new random seed), run
    Phase 1 (trigger generation, evaluation, training reduction) for new
    seeds, Phase 2 (window completion, diffIFT simulation, taint-coverage
    measurement) and Phase 3 (oracles).  Coverage-increasing seeds enter
    the corpus; the DejaVuzz⁻ ablation disables this feedback and mutates
    blindly. *)

type finding = {
  fd_attack : [ `Meltdown | `Spectre ];
  fd_window : Seed.trigger_kind;
  fd_components : Oracle.component list;
  fd_kind : [ `Timing | `Encode ];
  fd_iteration : int;
}

type options = {
  iterations : int;
  coverage_guided : bool;   (** false = DejaVuzz⁻ *)
  style : [ `Derived | `Random ];  (** [`Random] = DejaVuzz* training *)
  rng_seed : int;
  fresh_seed_prob : float;  (** probability of a brand-new seed *)
  taint_mode : Dvz_ift.Policy.mode;
      (** IFT policy driving coverage and oracles; [Cellift] is the
          over-tainting ablation *)
}

val default_options : options

(** Telemetry wiring for a campaign.  [quiet] (the default) records
    always-on metrics into {!Dvz_obs.Metrics.default}, emits no events
    and prints no progress; telemetry never influences fuzzing decisions,
    so results are identical with any telemetry configuration. *)
type telemetry = {
  t_events : Dvz_obs.Events.sink;
      (** JSONL stream: [campaign_start], one [iteration] record per
          round (seed kind, phase-1 trigger outcome, coverage delta, new
          findings, per-phase seconds, simulated cycles), a [finding]
          record per deduplicated bug class, and [campaign_end]. *)
  t_metrics : Dvz_obs.Metrics.t;
      (** Registry receiving phase spans, iteration/dedup counters and
          the corpus-size / cycles-per-second gauges; its clock drives
          all campaign timing. *)
  t_progress_every : int;  (** emit progress every N iterations; 0 = off *)
  t_progress : string -> unit;  (** receives each rendered progress line *)
}

val quiet : telemetry

type stats = {
  s_options : options;
  s_coverage_curve : int array;  (** covered points after each iteration *)
  s_findings : finding list;     (** deduplicated, chronological *)
  s_first_bug : int option;      (** iteration of the first finding *)
  s_final_coverage : int;
  s_triggered : int;             (** iterations whose window fired *)
}

val run : ?telemetry:telemetry -> Dvz_uarch.Config.t -> options -> stats

val dedup_key : finding -> string
(** Two findings with the same key are the same bug class. *)
