(** The fuzzing manager — a thin orchestrator over the layered engine.

    Per batch: snapshot the {!Corpus}, let the {!Scheduler} turn options
    + snapshot + the master RNG into a batch of iteration plans (each
    with its own child generator), run every plan through the
    {!Executor} (phases 1–3, fault polling, watchdog — no shared mutable
    state), and fold the outcomes back in plan-index order: coverage
    observe → corpus admit → finding dedup → events.

    Because scheduling decisions are made up front on the master stream
    and the fold is sequential in iteration order, results depend on the
    [batch] size (a semantic parameter) but not on [jobs] (an execution
    resource): [~jobs:n] produces byte-identical findings, coverage
    points, checkpoints and event streams to [~jobs:1]. *)

type finding = {
  fd_attack : [ `Meltdown | `Spectre ];
  fd_window : Seed.trigger_kind;
  fd_components : Oracle.component list;
  fd_kind : [ `Timing | `Encode ];
  fd_iteration : int;
  fd_source : string option;
      (** the secret element the provenance replay attributed the leak
          to; [None] unless the campaign ran with an explain directory *)
}

type options = {
  iterations : int;
  coverage_guided : bool;   (** false = DejaVuzz⁻ *)
  style : [ `Derived | `Random ];  (** [`Random] = DejaVuzz* training *)
  rng_seed : int;
  fresh_seed_prob : float;  (** probability of a brand-new seed *)
  taint_mode : Dvz_ift.Policy.mode;
      (** IFT policy driving coverage and oracles; [Cellift] is the
          over-tainting ablation *)
  corpus_cap : int;
      (** max corpus entries kept (highest coverage reward survives);
          default 64 *)
  batch : int;
      (** iterations scheduled per corpus snapshot; all [batch] plans
          can execute in parallel under [jobs].  Part of the campaign's
          semantics: changing it changes which corpus state each
          iteration's scheduling sees (default 1 = the classic fully
          sequential feedback loop), whereas [jobs] never changes
          results. *)
}

val default_options : options

(** {2 Live status board} — the lock-free snapshot feed behind
    [/status]. *)

type progress = {
  pg_core : string;
  pg_phase : string;  (** ["fuzzing"] while running, ["finished"] after *)
  pg_iteration : int;  (** iterations folded so far *)
  pg_total : int;
  pg_findings : int;
  pg_triggered : int;
  pg_coverage : int;
  pg_corpus_size : int;
  pg_top_rewards : int list;  (** highest corpus rewards, descending, ≤5 *)
  pg_crashes : int;
  pg_timeouts : int;
  pg_sim_cycles : int;
  pg_batches : int;
  pg_jobs : int;  (** lanes requested via [run ~jobs] *)
  pg_jobs_effective : int;
      (** lanes actually used: [jobs] clamped to the hardware
          ({!Dvz_util.Parallel.effective_lanes}) *)
  pg_domain_iters : int array;
      (** iterations executed per worker domain (0 = orchestrator),
          sized from [pg_jobs_effective] *)
  pg_elapsed_s : float;
  pg_eta_s : float option;  (** linear extrapolation; [None] at the edges *)
}

type board
(** A single-slot mailbox: the orchestrator's fold swaps in a fresh
    immutable {!progress} after every iteration (an [Atomic.set], no
    lock), and any thread may read the latest snapshot at any time. *)

val new_board : unit -> board
val board_read : board -> progress option
val progress_json : progress -> Dvz_obs.Json.t

(** Telemetry wiring for a campaign.  [quiet] (the default) records
    always-on metrics into {!Dvz_obs.Metrics.default}, emits no events
    and prints no progress; telemetry never influences fuzzing decisions,
    so results are identical with any telemetry configuration. *)
type telemetry = {
  t_events : Dvz_obs.Events.sink;
      (** JSONL stream: [campaign_start], one [iteration] record per
          round (seed kind, phase-1 trigger outcome, coverage delta, new
          findings, per-phase seconds, simulated cycles), a [finding]
          record per deduplicated bug class, and [campaign_end]. *)
  t_metrics : Dvz_obs.Metrics.t;
      (** Registry receiving phase spans, iteration/batch/dedup counters,
          per-domain iteration counters and the corpus-size /
          cycles-per-second gauges; its clock drives all campaign
          timing. *)
  t_progress_every : int;  (** emit progress every N iterations; 0 = off *)
  t_progress : string -> unit;  (** receives each rendered progress line *)
  t_explain_dir : string option;
      (** when set, every iteration that yields a fresh finding is
          replayed once with the taint-provenance recorder armed
          ({!Explain.explain}); the directory receives
          [finding-NNNN.json]/[.txt]/[.dot] artifacts, a
          [provenance_trace] event is emitted and the finding's
          [fd_source] is filled in.  The replay draws nothing from the
          campaign RNG, so fuzzing results are unchanged. *)
  t_board : board option;
      (** when set, the fold publishes a {!progress} snapshot here after
          every iteration (and a final ["finished"] one) — how a status
          server observes the campaign without the hot loop taking
          locks *)
}

val quiet : telemetry

type crash = Executor.crash = {
  cr_iteration : int;
  cr_seed : Seed.t option;  (** the input being processed, when known *)
  cr_exn : string;
  cr_backtrace : string;
}
(** One isolated harness crash: the iteration's input descriptor plus the
    exception and backtrace, recorded instead of killing the campaign. *)

type stats = {
  s_options : options;
  s_coverage_curve : int array;  (** covered points after each iteration *)
  s_findings : finding list;     (** deduplicated, chronological *)
  s_first_bug : int option;      (** iteration of the first finding *)
  s_final_coverage : int;
  s_triggered : int;             (** iterations whose window fired *)
  s_crashes : crash list;        (** isolated harness crashes, chronological *)
  s_timeouts : int;              (** iterations ended by the watchdog *)
}

(** {2 Resilience} — fault injection, watchdogs and checkpoint/resume. *)

type resilience = {
  rz_fault_plan : Dvz_resilience.Fault.plan;
      (** faults to arm, one iteration at a time, before each round *)
  rz_budget : Dvz_uarch.Dualcore.budget option;
      (** watchdog on every testbench run; exceeding it yields a Timeout
          verdict for the iteration instead of a hang *)
  rz_checkpoint : string option;  (** snapshot path; [None] = never *)
  rz_checkpoint_every : int;
      (** snapshot when a batch crosses a multiple of N iterations (at
          [batch = 1], exactly every N iterations) *)
  rz_checkpoint_keep : bool;
      (** rotate the checkpoint being replaced to [path ^ ".prev"] on
          every write, keeping one known-good generation for fallback
          (default false; the fleet coordinator turns it on) *)
  rz_resume : string option;
      (** checkpoint to restore before the first iteration; a missing
          file silently starts fresh (first run of a kill/resume loop),
          a corrupt or incompatible one raises {!Bad_checkpoint}, one
          written under different flags raises [Invalid_argument] *)
  rz_crash_dir : string option;
      (** directory receiving one [crash-NNNN.json] artifact per
          isolated harness crash *)
}

val no_resilience : resilience
(** No faults, no watchdog, no checkpointing ([rz_checkpoint_every] is
    50, but inert while [rz_checkpoint] is [None]). *)

val with_suffix : resilience -> string -> resilience
(** Appends [".suffix"] to the checkpoint and resume paths — how the
    multi-campaign experiments (Table 5 cores, Fig. 7 trials) give each
    campaign its own snapshot file from one [--checkpoint] flag. *)

exception
  Bad_checkpoint of { bc_path : string; bc_reason : string; bc_advice : string }
(** A [rz_resume] file exists but cannot be trusted: unreadable, not a
    checkpoint, truncated, checksum-damaged, or written by an
    incompatible build.  [bc_reason] says which validation failed,
    [bc_advice] suggests a recovery.  Distinct from the
    [Invalid_argument] raised when a structurally sound checkpoint was
    written under different campaign flags — corruption can be recovered
    by falling back to an older generation, a flag mismatch cannot. *)

val bad_checkpoint_message :
  path:string -> reason:string -> advice:string -> string
(** The one-line rendering ("cannot resume from <path>: <reason>
    (<advice>)") used by the CLI and the registered exception printer. *)

val run :
  ?telemetry:telemetry ->
  ?resilience:resilience ->
  ?jobs:int ->
  ?dispatch:(Executor.ctx -> Scheduler.plan list -> Executor.outcome list) ->
  ?on_checkpoint:(int -> unit) ->
  Dvz_uarch.Config.t ->
  options ->
  stats
(** Runs the campaign.  [jobs] (default 1) is the total number of lanes
    executing each batch of plans — the orchestrator's domain included,
    so [jobs = 4] spawns three extra domains.  Requests beyond the
    hardware are clamped ({!Dvz_util.Parallel.effective_lanes}, noted
    once on stderr and reported as [pg_jobs_effective]).  Since every
    plan carries its own pre-split child generator and all side effects
    happen in the orchestrator's plan-index-ordered fold, [jobs] affects
    wall-clock time only; checkpoints record the batch cursor, so a
    campaign killed under any [jobs] and resumed under any other
    produces stats bit-identical to an uninterrupted run.

    [dispatch], when given, replaces batch execution entirely: it
    receives the executor context and the batch's plans and must return
    exactly one outcome per plan, in plan-index order.  Plans are plain
    data (each carries its own pre-split generator), so a dispatcher may
    execute them anywhere — the fleet coordinator ships them to worker
    processes — and, because all side effects stay in the fold here,
    any faithful dispatcher reproduces in-process results byte for
    byte.  [on_checkpoint] is called with the iteration cursor right
    after each checkpoint file is written (the fleet coordinator uses
    it to run the checkpoint/ack exchange).

    Raises {!Bad_checkpoint} on a corrupt or incompatible [rz_resume]
    file, [Invalid_argument] on an options/core mismatch or non-positive
    [jobs]/[options.batch]/[options.corpus_cap]; injected
    {!Dvz_resilience.Fault.Killed} faults propagate to the caller. *)

val dedup_key : finding -> string
(** Two findings with the same key are the same bug class. *)
