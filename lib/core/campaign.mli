(** The fuzzing manager: ties the three phases into a campaign loop.

    Per iteration: pick a seed (a coverage-rewarded corpus entry with a
    freshly mutated window section, or a brand-new random seed), run
    Phase 1 (trigger generation, evaluation, training reduction) for new
    seeds, Phase 2 (window completion, diffIFT simulation, taint-coverage
    measurement) and Phase 3 (oracles).  Coverage-increasing seeds enter
    the corpus; the DejaVuzz⁻ ablation disables this feedback and mutates
    blindly. *)

type finding = {
  fd_attack : [ `Meltdown | `Spectre ];
  fd_window : Seed.trigger_kind;
  fd_components : Oracle.component list;
  fd_kind : [ `Timing | `Encode ];
  fd_iteration : int;
}

type options = {
  iterations : int;
  coverage_guided : bool;   (** false = DejaVuzz⁻ *)
  style : [ `Derived | `Random ];  (** [`Random] = DejaVuzz* training *)
  rng_seed : int;
  fresh_seed_prob : float;  (** probability of a brand-new seed *)
  taint_mode : Dvz_ift.Policy.mode;
      (** IFT policy driving coverage and oracles; [Cellift] is the
          over-tainting ablation *)
}

val default_options : options

type stats = {
  s_options : options;
  s_coverage_curve : int array;  (** covered points after each iteration *)
  s_findings : finding list;     (** deduplicated, chronological *)
  s_first_bug : int option;      (** iteration of the first finding *)
  s_final_coverage : int;
  s_triggered : int;             (** iterations whose window fired *)
}

val run : Dvz_uarch.Config.t -> options -> stats

val dedup_key : finding -> string
(** Two findings with the same key are the same bug class. *)
