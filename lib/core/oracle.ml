module Dualcore = Dvz_uarch.Dualcore
module Core = Dvz_uarch.Core
module Elem = Dvz_uarch.Elem
module Metrics = Dvz_obs.Metrics

let m_analyses =
  Metrics.counter Metrics.default ~help:"Oracle analyses performed"
    "dvz_oracle_analyses_total"

let m_timing_leaks =
  Metrics.counter Metrics.default
    ~help:"Constant-time oracle violations (timing leaks) reported"
    "dvz_oracle_timing_leaks_total"

let m_encode_leaks =
  Metrics.counter Metrics.default
    ~help:"Taint-encoding oracle violations (encode leaks) reported"
    "dvz_oracle_encode_leaks_total"

type component = string

type leak =
  | Timing of { pairs : (int * int * int) list; components : component list }
  | Encode of { sinks : Elem.t list; components : component list }

type analysis = {
  a_result : Dualcore.result;
  a_leaks : leak list;
  a_attack : [ `Meltdown | `Spectre ] option;
  a_live_sinks : Elem.t list;
  a_all_sinks : Elem.t list;
  a_timed_out : bool;
}

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let component_of_module m =
  if starts_with "lsu.dcache" m then Some "dcache"
  else if starts_with "frontend.icache" m then Some "icache"
  else if starts_with "lsu.tlb" m || m = "lsu.l2tlb" then Some "(l2)tlb"
  else
    match m with
    | "frontend.btb" -> Some "(fau)btb"
    | "frontend.ras" -> Some "ras"
    | "frontend.loop" -> Some "loop"
    | "frontend.bht" -> Some "bht"
    | "lsu.lfb" -> Some "lfb"
    | "lsu.ldq" | "lsu.stq" -> Some "lsu"
    | "core.prf" -> Some "prf"
    | "rob" -> Some "rob"
    | _ -> None

let sink_components sinks =
  List.sort_uniq compare
    (List.filter_map (fun e -> component_of_module (Elem.module_of e)) sinks)

(* Timing-leak attribution: which contended unit the window payload used. *)
let timing_components tc =
  let tags = tc.Packet.gadget_tags in
  let comps =
    List.filter_map
      (function
        | "fpu" -> Some "fpu"
        | "lsu" -> Some "lsu"
        | "refetch" -> Some "icache"
        | _ -> None)
      tags
  in
  match List.sort_uniq compare comps with [] -> [ "lsu" ] | l -> l

let microarch_sink e =
  match Elem.module_of e with
  | "core.arf" | "mem" | "frontend.pc" -> false
  | _ -> true

let attack_of_result result =
  let windows =
    List.filter
      (fun w -> w.Core.wr_in_transient_blob && w.Core.wr_secret_accessed)
      result.Dualcore.r_windows_a
  in
  match windows with
  | [] -> None
  | ws ->
      if List.exists (fun w -> w.Core.wr_secret_fault) ws then Some `Meltdown
      else Some `Spectre

let analyze ?(use_liveness = true) ?(mode = Dvz_ift.Policy.Diffift) ?log_bound
    ?budget cfg ~secret tc =
  (* Draw from the per-domain pool instead of building a fresh testbench
     per run: construction dominates per-iteration cost (~5x the
     simulation itself).  Both runs of one analysis are strictly
     sequential in this domain, and [Dualcore.run]'s collected result
     never aliases pooled state, so re-arming between them is safe. *)
  let run tcase =
    Dualcore.run ?budget
      (Simpool.acquire ?log_bound ~mode cfg (Packet.stimulus ~secret tcase))
  in
  let result = run tc in
  if result.Dualcore.r_timed_out then begin
    (* Watchdog verdict: the run was aborted mid-flight, so none of the
       partial evidence is trustworthy — report a clean timeout. *)
    Metrics.incr m_analyses;
    { a_result = result;
      a_leaks = [];
      a_attack = None;
      a_live_sinks = [];
      a_all_sinks = [];
      a_timed_out = true }
  end
  else begin
    let all_sinks = List.filter microarch_sink result.Dualcore.r_final_tainted in
    let live_sinks = List.filter microarch_sink result.Dualcore.r_live_tainted in
    let timing = Dualcore.window_timing_diffs result in
    let leaks = ref [] in
    if timing <> [] then
      leaks := [ Timing { pairs = timing; components = timing_components tc } ];
    (* Encode sanitization: replay with the encoding block nop'd and keep
       only sinks the encoding block produced.  The paper runs this only when
       the constant-time check passes; we additionally run it on timing leaks
       so the encoded components are attributed too (one extra simulation).
       With no candidate sinks the replay cannot change the verdict (the
       encoded set is the candidates minus the baseline), so it is skipped —
       except under a watchdog budget, where its timeout bit is part of the
       reported analysis and must keep being observed. *)
    let candidates = if use_liveness then live_sinks else all_sinks in
    let sanitized_timed_out = ref false in
    (if candidates <> [] || budget <> None then begin
       let sanitized = run (Window_gen.sanitize cfg tc) in
       sanitized_timed_out := sanitized.Dualcore.r_timed_out;
       if not sanitized.Dualcore.r_timed_out then begin
         let baseline =
           if use_liveness then
             List.filter microarch_sink sanitized.Dualcore.r_live_tainted
           else List.filter microarch_sink sanitized.Dualcore.r_final_tainted
         in
         let encoded =
           List.filter
             (fun e -> not (List.exists (Elem.equal e) baseline))
             candidates
         in
         if encoded <> [] then
           leaks :=
             !leaks
             @ [ Encode
                   { sinks = encoded; components = sink_components encoded } ]
       end
     end);
    Metrics.incr m_analyses;
    List.iter
      (function
        | Timing _ -> Metrics.incr m_timing_leaks
        | Encode _ -> Metrics.incr m_encode_leaks)
      !leaks;
    { a_result = result;
      a_leaks = !leaks;
      a_attack = attack_of_result result;
      a_live_sinks = live_sinks;
      a_all_sinks = all_sinks;
      a_timed_out = !sanitized_timed_out }
  end

let is_leak a = a.a_leaks <> []

let analyze_with_retries ?use_liveness ?(retries = 3) ?log_bound ?budget cfg
    ~secret tc =
  (* Deterministic secret-pair variations: rotate and perturb the original
     so consecutive attempts disagree on different bit positions. *)
  let variant k =
    Array.mapi (fun i v -> v lxor (0x9E3779B9 * (k + 1)) lxor (i * 0x85EB)) secret
  in
  let rec go k =
    let s = if k = 0 then secret else variant k in
    let a = analyze ?use_liveness ?log_bound ?budget cfg ~secret:s tc in
    if is_leak a || a.a_timed_out || k + 1 >= max 1 retries then a
    else go (k + 1)
  in
  go 0
