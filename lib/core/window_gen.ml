open Dvz_isa
open Dvz_soc
module Rng = Dvz_util.Rng
module Cfg = Dvz_uarch.Config

let gadget_names =
  [ "dcache"; "tlb"; "fpu"; "lsu"; "refetch"; "ras"; "flow"; "btb"; "arith";
    "stq" ]

(* Window registers: s0 holds the secret value, s1 the secret address, a2
   the disambiguation pointer, a3 the probe array base.  t4..t6/x31 are
   window scratch. *)
let t4 = Reg.x 28
let t5 = Reg.x 29
let t6 = Reg.x 30

let secret_access_block seed =
  match seed.Seed.kind with
  | Seed.T_mem_disamb ->
      (* Only the stale (speculatively loaded) pointer reaches the secret;
         the architectural pointer is benign. *)
      [ Insn.Load (Insn.D, false, Reg.s0, Reg.a2, 0) ]
  | _ -> [ Insn.Load (Insn.D, false, Reg.s0, Reg.s1, 0) ]

(* Each gadget: (tag, instruction list).  All control flow stays inside the
   window or lands on swapMem's ebreak padding. *)
let gadget rng tag =
  match tag with
  | "dcache" ->
      (* Classic flush+reload encoding: secret-indexed probe loads; the
         mask/shift/arity variety spreads taints over varying numbers of
         lines, which is what the position-insensitive coverage counts. *)
      let mask = Rng.choose rng [| 1; 3; 7 |] in
      let shift = Rng.int_in rng 6 8 in
      let second =
        if Rng.chance rng 0.4 then
          [ Insn.Opi (Insn.Xori, t6, t4, 64 * Rng.int_in rng 1 7);
            Insn.Load (Insn.D, false, t5, t6, 0) ]
        else []
      in
      [ Insn.Opi (Insn.Andi, t4, Reg.s0, mask);
        Insn.Opi (Insn.Slli, t4, t4, shift);
        Insn.Op (Insn.Add, t4, t4, Reg.a3);
        Insn.Load (Insn.D, false, t5, t4, 0) ]
      @ second
  | "tlb" ->
      (* Page-granular encoding: the touched TLB entry depends on the
         secret (the "(l2)tlb" component of Table 5). *)
      [ Insn.Opi (Insn.Andi, t4, Reg.s0, Rng.choose rng [| 3; 7 |]);
        Insn.Opi (Insn.Slli, t4, t4, 12);
        Insn.Op (Insn.Add, t4, t4, Reg.a3);
        Insn.Load (Insn.D, false, t5, t4, 8 * Rng.int rng 8) ]
  | "fpu" ->
      (* Spectre-Rewind style: a secret-guarded divide contends on the FPU
         port past the squash. *)
      [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
        Insn.Branch (Insn.Eq, t4, Reg.zero, 8);
        Insn.Fdiv (t5, Reg.a3, Reg.s0) ]
  | "lsu" ->
      (* Secret-guarded cache-missing load: LSU/refill port contention and
         a secret-dependent line fill. *)
      let far = Layout.probe_base + Layout.page_size + (64 * Rng.int_in rng 8 24) in
      Insn.Opi (Insn.Andi, t4, Reg.s0, 1)
      :: Insn.Branch (Insn.Eq, t4, Reg.zero, 4 * 4)
      :: Genlib.li t6 far
      @ [ Insn.Load (Insn.D, false, t5, t6, 0) ]
  | "refetch" ->
      (* B4: a secret-dependent branch to a cold instruction line preempts
         the fetch port during transient execution. *)
      [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
        Insn.Branch (Insn.Ne, t4, Reg.zero, 4 * Rng.int_in rng 80 160) ]
  | "ras" ->
      (* B2's shape (the paper's Phantom-RSB listing): secret-gated
         transient returns pop the RAS below its checkpointed TOS, then
         calls overwrite the popped (still-live) entries — which BOOM's
         top-only squash recovery never repairs.  When the secret bit is 0,
         ra collapses to 0 and the first jalr stalls the frontend. *)
      [ Insn.Auipc (Reg.ra, 0);           (* A+0:  ra = A *)
        Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
        Insn.Op (Insn.Sub, t4, Reg.zero, t4);
        Insn.Op (Insn.And, Reg.ra, Reg.ra, t4);
        Insn.Jalr (Reg.zero, Reg.ra, 20); (* A+16: ret to A+20, pops *)
        Insn.Jalr (Reg.zero, Reg.ra, 24); (* A+20: ret to A+24, pops *)
        Insn.Jalr (Reg.ra, Reg.ra, 28) ]  (* A+24: call, overwrites below TOS *)
  | "flow" ->
      (* Bare secret-dependent branch: control-flow divergence (and, on
         BOOM, speculative loop-predictor updates). *)
      [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
        Insn.Branch (Insn.Eq, t4, Reg.zero, 8);
        Insn.Op (Insn.Add, t5, t5, t4) ]
  | "btb" ->
      (* B3's shape: a jalr whose target depends on the secret, placed so
         its correction can race an exception commit. *)
      [ Insn.Auipc (t5, 0);
        Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
        Insn.Opi (Insn.Slli, t4, t4, 3);
        Insn.Op (Insn.Add, t5, t5, t4);
        Insn.Jalr (Reg.zero, t5, 20) ]
  | "arith" ->
      (* Plain dataflow: the secret spreads through the PRF/RoB — taints
         that die at squash, exercising the liveness oracle. *)
      List.init (Rng.int_in rng 1 3) (fun _ ->
          Genlib.random_arith rng ~dst:(Rng.choose rng [| t4; t5; t6 |])
            ~srcs:[ Reg.s0; Rng.choose rng [| t4; t5 |] ])
  | "stq" ->
      [ Insn.Store (Insn.D, Reg.s0, Reg.a3, 8 * Rng.int rng 8) ]
  | _ -> invalid_arg ("Window_gen.gadget: unknown tag " ^ tag)

let weighted_tags cfg =
  let always =
    [ "dcache"; "dcache"; "tlb"; "fpu"; "lsu"; "flow"; "arith"; "stq";
      "refetch" ]
  in
  let boom = [ "ras"; "btb" ] in
  match cfg.Cfg.preset with
  | Cfg.Boom -> always @ boom
  | Cfg.Xiangshan -> always

let build_window ~encode cfg tc =
  let seed = tc.Packet.seed in
  let rng = Rng.create seed.Seed.window_entropy in
  let access = secret_access_block seed in
  let budget = tc.Packet.window_words - List.length access in
  let tags = Array.of_list (weighted_tags cfg) in
  let rec pick acc acc_tags budget tries =
    if tries = 0 || budget <= 0 then (List.rev acc, List.rev acc_tags)
    else
      let tag = Rng.choose rng tags in
      let insns = gadget rng tag in
      if List.length insns <= budget then
        pick (insns :: acc) (tag :: acc_tags) (budget - List.length insns)
          (tries - 1)
      else pick acc acc_tags budget (tries - 1)
  in
  let gadgets, tags_used = pick [] [] budget 10 in
  let encoding = List.concat gadgets in
  let body =
    if encode then access @ encoding
    else access @ Genlib.nops (List.length encoding)
  in
  (Genlib.pad_to body tc.Packet.window_words, tags_used)

let splice_window tc window_insns =
  let idx = (tc.Packet.window_addr - Layout.swap_base) / 4 in
  let arr = Array.of_list tc.Packet.transient.Packet.insns in
  List.iteri (fun i insn -> arr.(idx + i) <- insn) window_insns;
  { tc with
    Packet.transient =
      { tc.Packet.transient with Packet.insns = Array.to_list arr } }

let window_trainings seed =
  let rng = Rng.create (seed.Seed.window_entropy lxor 0x5eed) in
  let secret_line = Layout.secret_base + (8 * Rng.int rng Layout.secret_dwords) in
  let warm_secret =
    Genlib.li Reg.t0 secret_line @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0) ]
  in
  let warm_probe =
    Genlib.li Reg.t0 (Layout.probe_base + (64 * Rng.int rng 4))
    @ [ Insn.Load (Insn.D, false, Reg.t1, Reg.t0, 0) ]
  in
  [ Packet.make ~name:"window_train_secret" ~role:Packet.Window_training
      ~training_total:(List.length warm_secret)
      ~training_effective:(List.length warm_secret)
      warm_secret;
    Packet.make ~name:"window_train_probe" ~role:Packet.Window_training
      ~training_total:(List.length warm_probe)
      ~training_effective:(List.length warm_probe)
      warm_probe ]

let complete cfg tc =
  let window, tags = build_window ~encode:true cfg tc in
  let tc = splice_window tc window in
  { tc with
    Packet.window_trainings = window_trainings tc.Packet.seed;
    Packet.gadget_tags = tags }

let sanitize cfg tc =
  let window, _ = build_window ~encode:false cfg tc in
  splice_window tc window

let splice tc insns =
  splice_window tc (Genlib.pad_to insns tc.Packet.window_words)
