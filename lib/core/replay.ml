module Json = Dvz_obs.Json

let kind_of_name name =
  Array.fold_left
    (fun acc k -> if Seed.kind_name k = name then Some k else acc)
    None Seed.all_kinds

let finding_of_event ev =
  let str key = Option.bind (Json.member key ev) Json.to_str in
  let int key = Option.bind (Json.member key ev) Json.to_int in
  match (int "iteration", str "attack", str "window", str "kind") with
  | Some iteration, Some attack, Some window, Some kind ->
      let attack =
        match attack with
        | "meltdown" -> Some `Meltdown
        | "spectre" -> Some `Spectre
        | _ -> None
      in
      let leak_kind =
        match kind with
        | "timing" -> Some `Timing
        | "encode" -> Some `Encode
        | _ -> None
      in
      (match (attack, leak_kind, kind_of_name window) with
      | Some fd_attack, Some fd_kind, Some fd_window ->
          Ok
            { Campaign.fd_attack; fd_window; fd_kind;
              fd_iteration = iteration;
              fd_components =
                List.filter_map Json.to_str
                  (Json.to_list
                     (Option.value ~default:Json.Null
                        (Json.member "components" ev)));
              fd_source = str "source" }
      | _ -> Error "finding event with unknown attack/window/kind")
  | _ -> Error "finding event missing iteration/attack/window/kind"

let event_type ev = Option.bind (Json.member "type" ev) Json.to_str

let summary events =
  (* The log may hold several sequential campaigns; replay the last one:
     findings after the previous campaign_end, up to the final one. *)
  let rec last_campaign core findings result = function
    | [] -> result
    | ev :: rest -> (
        match event_type ev with
        | Some "campaign_start" ->
            last_campaign
              (Option.bind (Json.member "core" ev) Json.to_str)
              findings result rest
        | Some "finding" -> last_campaign core (ev :: findings) result rest
        | Some "campaign_end" ->
            last_campaign core [] (Some (core, List.rev findings, ev)) rest
        | _ -> last_campaign core findings result rest)
  in
  match last_campaign None [] None events with
  | None -> Error "no campaign_end record in the event log"
  | Some (core, findings, ev) -> (
      let int key = Option.bind (Json.member key ev) Json.to_int in
      match (int "iterations", int "triggered", int "coverage") with
      | Some iterations, Some triggered, Some coverage -> (
          let first_bug = int "first_bug" in
          let rec build acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> (
                match finding_of_event e with
                | Ok f -> build (f :: acc) rest
                | Error _ as err -> err)
          in
          match build [] findings with
          | Error e -> Error e
          | Ok findings ->
              let buf = Buffer.create 256 in
              Printf.bprintf buf
                "iterations=%d triggered=%d coverage=%d findings=%d first_bug=%s\n"
                iterations triggered coverage (List.length findings)
                (match first_bug with
                | None -> "none"
                | Some i -> Printf.sprintf "iter %d" i);
              (* Resilience counters ride in [campaign_end]; logs from
                 builds predating them simply lack the fields, which is
                 also how a run with zero crashes/timeouts prints. *)
              let crashes = Option.value ~default:0 (int "harness_crashes") in
              let wd_timeouts =
                Option.value ~default:0 (int "watchdog_timeouts")
              in
              if crashes > 0 || wd_timeouts > 0 then
                Printf.bprintf buf
                  "harness_crashes=%d watchdog_timeouts=%d\n" crashes
                  wd_timeouts;
              List.iter
                (fun f ->
                  Buffer.add_string buf (Report.finding_to_string f ^ "\n"))
                findings;
              (* With a campaign_start in the log we also know the core
                 name, so the Table-5 classification the CLI prints after
                 the summary can be rebuilt too. *)
              (match core with
              | Some core_name ->
                  Buffer.add_string buf (Report.table5 ~core_name findings)
              | None -> ());
              Ok (Buffer.contents buf))
      | _ -> Error "campaign_end record missing iterations/triggered/coverage")

let of_string text =
  match Json.of_lines text with
  | Error e -> Error e
  | Ok events -> summary events

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
