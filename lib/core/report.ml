module Tablefmt = Dvz_util.Tablefmt

let finding_to_string f =
  Printf.sprintf "[iter %4d] %-8s %-22s via %-6s -> {%s}%s"
    f.Campaign.fd_iteration
    (match f.Campaign.fd_attack with
    | `Meltdown -> "Meltdown"
    | `Spectre -> "Spectre")
    (Seed.kind_name f.Campaign.fd_window)
    (match f.Campaign.fd_kind with `Timing -> "timing" | `Encode -> "encode")
    (String.concat ", " f.Campaign.fd_components)
    (match f.Campaign.fd_source with
    | None -> ""
    | Some s -> "  src=" ^ s)

let window_group = function
  | Seed.T_access_fault | Seed.T_page_fault | Seed.T_misalign -> "mem-excp"
  | Seed.T_illegal -> "illegal"
  | Seed.T_mem_disamb -> "mem-disamb"
  | Seed.T_branch | Seed.T_jump | Seed.T_return -> "mispred"

let table5 ~core_name findings =
  let tbl = Tablefmt.create [ "Attack"; "Transient Window"; "Encoded Timing Component" ] in
  let attacks = [ (`Meltdown, "Meltdown"); (`Spectre, "Spectre") ] in
  List.iter
    (fun (attack, label) ->
      let fs =
        List.filter (fun f -> f.Campaign.fd_attack = attack) findings
      in
      if fs <> [] then begin
        let windows =
          List.sort_uniq compare
            (List.map (fun f -> window_group f.Campaign.fd_window) fs)
        in
        let comps =
          List.sort_uniq compare
            (List.concat_map (fun f -> f.Campaign.fd_components) fs)
        in
        Tablefmt.add_row tbl
          [ label; String.concat ", " windows; String.concat ", " comps ]
      end)
    attacks;
  Printf.sprintf "%s\n%s" core_name (Tablefmt.render tbl)

let summary stats =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "iterations=%d triggered=%d coverage=%d findings=%d first_bug=%s\n"
    stats.Campaign.s_options.Campaign.iterations stats.Campaign.s_triggered
    stats.Campaign.s_final_coverage
    (List.length stats.Campaign.s_findings)
    (match stats.Campaign.s_first_bug with
    | None -> "none"
    | Some i -> Printf.sprintf "iter %d" i);
  let crashes = List.length stats.Campaign.s_crashes in
  if crashes > 0 || stats.Campaign.s_timeouts > 0 then
    Printf.bprintf buf "harness_crashes=%d watchdog_timeouts=%d\n" crashes
      stats.Campaign.s_timeouts;
  List.iter
    (fun f -> Buffer.add_string buf (finding_to_string f ^ "\n"))
    stats.Campaign.s_findings;
  Buffer.contents buf
