(** Finding attribution — the provenance "explain" pass.

    Campaigns fuzz untraced; when the oracle flags a finding, the same
    packet is deterministically replayed here with a
    {!Dvz_ift.Provenance} recorder armed on the dual-DUT testbench.  The
    recorded taint-introduction DAG is then sliced backwards from each
    live tainted sink to the planted secret words, yielding a
    cycle-accurate secret→sink explanation renderable as a text timeline,
    a DOT graph and a replayable JSON artifact. *)

type slice = {
  sl_sink : string;  (** [Elem.to_string] of the sink *)
  sl_edges : Dvz_ift.Provenance.edge list;  (** chronological *)
}

type t = {
  x_core : string;
  x_mode : Dvz_ift.Policy.mode;
  x_attack : string option;
  x_secret : int array;
  x_stimulus : Dvz_uarch.Core.stimulus;
  x_live_sinks : string list;
  x_source : string option;
      (** the attributed secret source: the first [Source] edge reached
          by any sink's backward slice *)
  x_slices : slice list;
  x_edges_total : int;
  x_dropped : int;
  x_timed_out : bool;
  x_prov : Dvz_ift.Provenance.t;  (** the armed recorder, for rendering *)
}

val explain :
  ?budget:Dvz_uarch.Dualcore.budget ->
  ?attack:string ->
  ?mode:Dvz_ift.Policy.mode ->
  Dvz_uarch.Config.t ->
  Dvz_uarch.Core.stimulus ->
  t
(** Replays the stimulus with provenance armed and slices every live
    tainted microarchitectural sink (per {!Oracle.microarch_sink}) back
    to its source.  When liveness filtering leaves no sink — a
    timing-only finding — the dead microarchitectural sinks are sliced
    instead.  Deterministic: the same stimulus yields byte-identical
    renders.  Counted in [dvz_provenance_traces_total] /
    [dvz_provenance_edges_total]. *)

val source : t -> string option

val render_text : t -> string
(** Header (core, mode, attack, attributed source, sinks, edge count)
    followed by one text timeline per slice. *)

val render_dot : t -> string
(** Graphviz digraph over the union of all slices. *)

val to_json : t -> Dvz_obs.Json.t
(** Self-contained artifact (schema ["dvz-explain/1"]): identity, secret,
    the full stimulus (blobs, schedule, data, perms) and the slices —
    everything {!replay_artifact} needs. *)

val replay_artifact :
  ?budget:Dvz_uarch.Dualcore.budget -> Dvz_obs.Json.t ->
  (t, string) result
(** Re-runs {!explain} from a {!to_json} artifact. *)

val explain_crash :
  ?budget:Dvz_uarch.Dualcore.budget ->
  ?core:Dvz_uarch.Config.t ->
  Dvz_obs.Json.t ->
  (t, string) result
(** Best-effort explain from a campaign crash artifact
    ([crash-NNNN.json]): rebuilds the testcase from the structured
    [seed_spec] via the fresh-seed pipeline (generate → evaluate →
    reduce → complete) and replays it armed.  [core] is the fallback
    when the artifact predates the [core] field.  Corpus-mutation
    iterations are not reproducible from the seed alone. *)
