(** Coverage-rewarded corpus — the scheduling layer's seed store.

    Array-backed with a configurable capacity: admission appends, and
    when the corpus overflows the cap the entries with the highest
    coverage reward (ties broken toward the youngest birth) survive.
    Births are the admitting iteration indices and must be unique, which
    makes every derived structure — eviction order, checkpoint bytes,
    the weighted-choice alias table — a pure function of the entry set
    rather than of the admission order.

    [choose] is O(1) via Vose's alias method, weighted by [1 + reward];
    [merge] is commutative by construction, so folding per-shard
    corpora in any order yields the same store. *)

type entry = {
  en_birth : int;  (** iteration that admitted the testcase; unique *)
  en_reward : int;  (** fresh coverage points the run contributed *)
  en_testcase : Packet.testcase;
}

type t

val create : cap:int -> t
(** Empty corpus holding at most [cap] entries.  Raises
    [Invalid_argument] when [cap < 1]. *)

val cap : t -> int

val size : t -> int

val is_empty : t -> bool

val admit : t -> birth:int -> reward:int -> Packet.testcase -> unit
(** Adds an entry, then evicts down to the cap by (reward desc, birth
    desc) priority. *)

val replace_all : t -> birth:int -> Packet.testcase -> unit
(** Drops every entry and installs the single given testcase — the
    blind (DejaVuzz⁻) corpus policy, which only carries the current
    seed forward. *)

val choose : t -> Dvz_util.Rng.t -> Packet.testcase
(** O(1) weighted pick: probability proportional to [1 + reward].
    Consumes exactly two draws from the generator regardless of the
    weight profile.  Raises [Invalid_argument] on an empty corpus. *)

val snapshot : t -> t
(** Independent copy; later mutations of either side do not affect the
    other.  The batch scheduler reads from a snapshot so every plan in
    a batch sees the same corpus state. *)

val merge : t -> t -> t
(** Union keyed by birth, trimmed to the (shared) cap by the eviction
    priority.  Commutative and associative on entry sets, so shard
    results can be folded in any order.  Raises [Invalid_argument] when
    the caps differ. *)

val entries : t -> entry list
(** Entries sorted by birth ascending — the stable checkpoint form. *)

val of_entries : cap:int -> entry list -> t
(** Rebuilds a corpus from {!entries} output (any order accepted). *)
