(** Step 1.2 — transient execution evaluation and training reduction
    (§4.1.2).

    Evaluation packages the packets with their swap schedule, simulates,
    and inspects the RoB IO events: a window whose enqueued-instruction
    count exceeds its committed count (i.e. any recorded transient window
    of the expected kind at the trigger address) means the trigger fired.

    Reduction removes one trigger training packet at a time, re-simulates
    the remaining schedule, and permanently discards packets whose removal
    does not affect triggering, in schedule order. *)

val eval_secret : int array
(** The placeholder secret used during Phase 1 evaluation (Phase 1 does not
    care about data values, only about RoB events). *)

val evaluate : Dvz_uarch.Config.t -> Packet.testcase -> bool
(** Whether the intended transient window triggers. *)

val evaluate_batch :
  Dvz_uarch.Config.t -> Packet.testcase array -> bool array
(** [evaluate_batch cfg tcs] evaluates a scheduler batch of independent
    candidates in one pooled acquisition ({!Simpool.acquire_core_batch});
    element [i] equals [evaluate cfg tcs.(i)] (differentially pinned).
    Amortizes pool lookup and keeps every candidate's testbench warm
    instead of thrashing the single-core slot. *)

val reduce : Dvz_uarch.Config.t -> Packet.testcase -> Packet.testcase * int
(** [(reduced, removed)] — the test case with ineffective trigger training
    packets discarded, and how many were dropped.  The input must already
    evaluate to [true]; otherwise it is returned unchanged with 0. *)
