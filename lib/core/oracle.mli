(** Phase 3 — transient leakage analysis (§4.3).

    First the constant-time check: paired transient windows whose durations
    differ between the two DUT instances are timing leaks (port contention,
    fetch preemption).  Otherwise, encode sanitization re-runs the stimulus
    with the secret encoding block nop'd out and diffs the tainted sinks;
    taints present only in the original run were produced by the encoding
    block.  Finally the tainted-sink liveness analysis keeps only sinks
    whose liveness signal is high — squash-drained structures (PRF, RoB,
    load/store queues) and stale-but-invalid buffers (the LFB decoy) are
    filtered as unexploitable. *)

type component = string
(** Table 5's "encoded timing component" labels: "dcache", "icache",
    "(l2)tlb", "(fau)btb", "ras", "loop", "lsu", "fpu", ... *)

type leak =
  | Timing of { pairs : (int * int * int) list; components : component list }
      (** transient-window constant-time violations *)
  | Encode of { sinks : Dvz_uarch.Elem.t list; components : component list }
      (** exploitable encoded secrets identified via liveness *)

type analysis = {
  a_result : Dvz_uarch.Dualcore.result;   (** the original diffIFT run *)
  a_leaks : leak list;
  a_attack : [ `Meltdown | `Spectre ] option;
      (** [Some] when a transient window in the transient packet accessed
          the secret; [`Meltdown] if that access violated privilege *)
  a_live_sinks : Dvz_uarch.Elem.t list;   (** after liveness filtering *)
  a_all_sinks : Dvz_uarch.Elem.t list;
      (** without liveness filtering — what a liveness-unaware oracle
          (or SpecDoctor's hash comparison) would report *)
  a_timed_out : bool;
      (** a watchdog budget aborted a testbench run; the analysis is a
          Timeout verdict — no leaks, no attack classification *)
}

val component_of_module : string -> component option
(** Maps an {!Dvz_uarch.Elem.module_of} tag to its Table 5 label; [None]
    for architectural state, which is not a sink. *)

val microarch_sink : Dvz_uarch.Elem.t -> bool
(** True for elements the oracle counts as microarchitectural sinks —
    everything except architectural state (ARF, memory, the pc).  Exposed
    so the provenance explain pass filters live sinks identically. *)

val analyze :
  ?use_liveness:bool ->
  ?mode:Dvz_ift.Policy.mode ->
  ?log_bound:Dvz_ift.Taintlog.bound ->
  ?budget:Dvz_uarch.Dualcore.budget ->
  Dvz_uarch.Config.t ->
  secret:int array ->
  Packet.testcase ->
  analysis
(** Runs the full Phase 3 pipeline on a completed test case.
    [use_liveness=false] reproduces the ablated oracle of the §6.3 liveness
    evaluation (residual PRF/RoB taints become false positives); [mode]
    selects the IFT policy driving the testbench ([Diffift] by default —
    [Cellift] shows how control-flow over-tainting floods the oracle).
    [log_bound] bounds the per-slot taint log of each testbench run (long
    campaigns otherwise accumulate unbounded logs); [budget] arms a
    watchdog on each run: a run that exceeds it yields
    [a_timed_out = true] instead of hanging. *)

val analyze_with_retries :
  ?use_liveness:bool ->
  ?retries:int ->
  ?log_bound:Dvz_ift.Taintlog.bound ->
  ?budget:Dvz_uarch.Dualcore.budget ->
  Dvz_uarch.Config.t ->
  secret:int array ->
  Packet.testcase ->
  analysis
(** §7's false-negative mitigation: diffIFT under-approximates when a
    secret pair happens to agree on a control signal, so re-attempt the
    analysis with different secret pairs (derived deterministically from
    the original) until a leak is found or [retries] (default 3) pairs have
    been tried.  Returns the first leaking analysis, else the last one. *)

val is_leak : analysis -> bool
