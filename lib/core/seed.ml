module Rng = Dvz_util.Rng

type trigger_kind =
  | T_access_fault
  | T_page_fault
  | T_misalign
  | T_illegal
  | T_mem_disamb
  | T_branch
  | T_jump
  | T_return

let all_kinds =
  [| T_access_fault; T_page_fault; T_misalign; T_illegal; T_mem_disamb;
     T_branch; T_jump; T_return |]

let kind_name = function
  | T_access_fault -> "ld/st-access-fault"
  | T_page_fault -> "ld/st-page-fault"
  | T_misalign -> "ld/st-misalign"
  | T_illegal -> "illegal-insn"
  | T_mem_disamb -> "mem-disamb"
  | T_branch -> "branch-mispred"
  | T_jump -> "indirect-jump-mispred"
  | T_return -> "return-mispred"

let is_exception = function
  | T_access_fault | T_page_fault | T_misalign | T_illegal -> true
  | T_mem_disamb | T_branch | T_jump | T_return -> false

let is_misprediction k = not (is_exception k)

type t = {
  kind : trigger_kind;
  trigger_entropy : int;
  window_entropy : int;
  tighten : bool;
  mask_high : bool;
}

let random_of_kind rng kind =
  { kind;
    trigger_entropy = Rng.next rng;
    window_entropy = Rng.next rng;
    tighten = Rng.bool rng;
    mask_high = Rng.chance rng 0.25 }

let random rng = random_of_kind rng (Rng.choose rng all_kinds)

let mutate_window rng t = { t with window_entropy = Rng.next rng }

let to_string t =
  Printf.sprintf "{%s tighten=%b mask_high=%b te=%x we=%x}" (kind_name t.kind)
    t.tighten t.mask_high
    (t.trigger_entropy land 0xFFFF)
    (t.window_entropy land 0xFFFF)
