open Dvz_isa
open Dvz_soc
module Rng = Dvz_util.Rng
module Cfg = Dvz_uarch.Config
module Eff = Dvz_uarch.Effect

let window_words = 16

(* Addresses reserved by the fuzzer's memory environment. *)
let forbidden_page = 0xF000 (* Perm.none: access faults *)
let absent_page = 0xE000 (* Perm.absent: page faults *)

let word_addr off = Layout.swap_base + (4 * off)

type shape = {
  sh_prologue : Insn.t list;   (** register setup at the packet start *)
  sh_pre : Insn.t list;        (** instructions immediately before the trigger *)
  sh_trigger : Insn.t;
  sh_tail : Insn.t list;       (** window section + resume, after the trigger *)
  sh_window_off : int;         (** word offset of the window section *)
  sh_data : (int * int) list;
  sh_perms : (int * Perm.t) list;
}

let assemble_transient ~trig_off shape =
  let pre_len = List.length shape.sh_pre in
  let insns =
    Genlib.pad_to shape.sh_prologue (trig_off - pre_len)
    @ shape.sh_pre
    @ [ shape.sh_trigger ]
    @ shape.sh_tail
  in
  Packet.make ~name:"transient" ~role:Packet.Transient insns

let dummy_window = Genlib.nops window_words

(* --- trigger shapes ----------------------------------------------------- *)

let secret_address rng seed =
  let low = Layout.secret_base + (8 * Rng.int rng Layout.secret_dwords) in
  if seed.Seed.mask_high then `High low else `Plain low

(* Two committed calls at the packet start give the transient window a
   realistic call depth: RAS-popping gadgets then corrupt live entries. *)
let call_depth =
  [ Insn.Jal (Reg.ra, 4); Insn.Jal (Reg.ra, 4) ]

let load_secret_ptr rng seed =
  match secret_address rng seed with
  | `Plain a -> (Genlib.li Reg.s1 a, a)
  | `High low ->
      (* An illegal (out-of-physical-range) alias of the secret address:
         the MDS-style masked access of §4.2.1, and B1's vehicle. *)
      (Genlib.li_high Reg.s1 ~tmp:(Reg.x 31) ~low ~shift:40, low + (1 lsl 40))

let branch_shape rng seed ~force_training ~trig_off =
  let conds = [| Insn.Eq; Insn.Ne; Insn.Lt; Insn.Ge; Insn.Ltu; Insn.Geu |] in
  let cond = Rng.choose rng conds in
  let at_target = force_training || Rng.bool rng in
  let secret_setup, _ = load_secret_ptr rng seed in
  let probe_setup = Genlib.li Reg.a3 Layout.probe_base in
  if at_target then begin
    (* Architecturally untaken; training teaches "taken", so the transient
       path runs the window at the branch target. *)
    let v0, v1 = Genlib.random_cond_operands rng cond ~taken:false in
    let prologue =
      call_depth @ secret_setup @ probe_setup @ Genlib.li Reg.t0 v0
      @ Genlib.li Reg.t1 v1
    in
    ( { sh_prologue = prologue; sh_pre = [];
        sh_trigger = Insn.Branch (cond, Reg.t0, Reg.t1, 8);
        sh_tail = (Insn.Ebreak :: dummy_window) @ [ Insn.Ebreak ];
        sh_window_off = trig_off + 2; sh_data = []; sh_perms = [] },
      `Taken cond )
  end
  else begin
    (* Architecturally taken over the window; training teaches "untaken". *)
    let v0, v1 = Genlib.random_cond_operands rng cond ~taken:true in
    let prologue =
      call_depth @ secret_setup @ probe_setup @ Genlib.li Reg.t0 v0
      @ Genlib.li Reg.t1 v1
    in
    ( { sh_prologue = prologue; sh_pre = [];
        sh_trigger = Insn.Branch (cond, Reg.t0, Reg.t1, 4 * (window_words + 1));
        sh_tail = dummy_window @ [ Insn.Ebreak ];
        sh_window_off = trig_off + 1; sh_data = []; sh_perms = [] },
      `Untaken cond )
  end

let return_shape rng seed ~trig_off =
  let secret_setup, _ = load_secret_ptr rng seed in
  let resume = word_addr (trig_off + 1 + window_words) in
  (* No call_depth here: the trained RAS entry must be on top when the
     trigger return pops. *)
  let prologue =
    secret_setup @ Genlib.li Reg.a3 Layout.probe_base
    @ Genlib.li Reg.ra resume
  in
  { sh_prologue = prologue; sh_pre = [];
    sh_trigger = Insn.Jalr (Reg.zero, Reg.ra, 0);
    sh_tail = dummy_window @ [ Insn.Ebreak ];
    sh_window_off = trig_off + 1; sh_data = []; sh_perms = [] }

let jump_shape rng seed ~trig_off =
  let secret_setup, _ = load_secret_ptr rng seed in
  let resume = word_addr (trig_off + 1 + window_words) in
  let prologue =
    call_depth @ secret_setup @ Genlib.li Reg.a3 Layout.probe_base
    @ Genlib.li Reg.t2 resume
  in
  { sh_prologue = prologue; sh_pre = [];
    sh_trigger = Insn.Jalr (Reg.zero, Reg.t2, 0);
    sh_tail = dummy_window @ [ Insn.Ebreak ];
    sh_window_off = trig_off + 1; sh_data = []; sh_perms = [] }

let exception_shape rng seed ~trig_off =
  let secret_setup, secret_addr = load_secret_ptr rng seed in
  let probe_setup = Genlib.li Reg.a3 Layout.probe_base in
  let is_store = (not seed.Seed.tighten) && Rng.chance rng 0.3 in
  (* The fault target: either the (possibly masked) secret address already
     materialised in s1, or a dedicated faulting page. *)
  let base_reg, imm, perms =
    match seed.Seed.kind with
    | Seed.T_access_fault ->
        if seed.Seed.tighten || seed.Seed.mask_high then (Reg.s1, 0, [])
        else (Reg.t0, 0, [ (forbidden_page, Perm.none) ])
    | Seed.T_page_fault -> (Reg.t0, 0, [ (absent_page, Perm.absent) ])
    | Seed.T_misalign ->
        let misalign = 2 * Rng.int_in rng 1 3 in
        if seed.Seed.tighten then (Reg.s1, misalign, [])
        else (Reg.t0, misalign, [])
    | _ -> assert false
  in
  let t0_setup =
    if Reg.equal base_reg Reg.t0 then
      let addr =
        match seed.Seed.kind with
        | Seed.T_access_fault -> forbidden_page + (8 * Rng.int rng 16)
        | Seed.T_page_fault -> absent_page + (8 * Rng.int rng 16)
        | _ -> Layout.dedicated_base + (8 * Rng.int rng 16)
      in
      Genlib.li Reg.t0 addr
    else []
  in
  ignore secret_addr;
  let prologue = call_depth @ secret_setup @ probe_setup @ t0_setup in
  let trigger =
    if is_store then Insn.Store (Insn.D, Reg.a3, base_reg, imm)
    else Insn.Load (Insn.D, false, Reg.s0, base_reg, imm)
  in
  { sh_prologue = prologue; sh_pre = []; sh_trigger = trigger;
    sh_tail = dummy_window @ [ Insn.Ebreak ];
    sh_window_off = trig_off + 1; sh_data = []; sh_perms = perms }

let illegal_shape rng seed ~trig_off =
  let secret_setup, _ = load_secret_ptr rng seed in
  let prologue =
    call_depth @ secret_setup @ Genlib.li Reg.a3 Layout.probe_base
  in
  { sh_prologue = prologue; sh_pre = [];
    sh_trigger = Insn.Illegal (Genlib.illegal_word rng);
    sh_tail = dummy_window @ [ Insn.Ebreak ];
    sh_window_off = trig_off + 1; sh_data = []; sh_perms = [] }

let disamb_shape rng seed ~trig_off =
  ignore seed;
  let x = Layout.dedicated_base + (8 * Rng.int_in rng 16 32) in
  let prologue =
    call_depth @ Genlib.li Reg.t0 x
    @ Genlib.li Reg.t1 Layout.probe_base
    @ Genlib.li Reg.a3 Layout.probe_base
  in
  (* Memory at [x] holds a stale pointer to the secret; the store replaces
     it with a benign pointer, and the mispredicted load transiently reads
     around the unresolved store (Spectre-V4). *)
  { sh_prologue = prologue;
    sh_pre = [ Insn.Store (Insn.D, Reg.t1, Reg.t0, 0) ];
    sh_trigger = Insn.Load (Insn.D, false, Reg.a2, Reg.t0, 0);
    sh_tail = dummy_window @ [ Insn.Ebreak ];
    sh_window_off = trig_off + 1;
    sh_data = [ (x, Layout.secret_base) ];
    sh_perms = [] }

(* --- training derivation ------------------------------------------------ *)

let derived_trainings rng seed ~trig_off ~window_off branch_dir =
  let mk name insns ~eff =
    Packet.make ~name ~role:Packet.Trigger_training
      ~training_total:(List.length insns) ~training_effective:eff insns
  in
  let targeted =
    match seed.Seed.kind with
    | Seed.T_branch -> (
        match branch_dir with
        | Some (`Taken cond) ->
            let v0, v1 = Genlib.random_cond_operands rng cond ~taken:true in
            let setup = Genlib.li Reg.t0 v0 @ Genlib.li Reg.t1 v1 in
            let eff = List.length setup + 1 in
            [ mk "train_branch"
                (Genlib.pad_to setup trig_off
                @ [ Insn.Branch (cond, Reg.t0, Reg.t1, 8) ])
                ~eff ]
        | Some (`Untaken cond) ->
            let v0, v1 = Genlib.random_cond_operands rng cond ~taken:false in
            let setup = Genlib.li Reg.t0 v0 @ Genlib.li Reg.t1 v1 in
            let eff = List.length setup + 1 in
            [ mk "train_branch"
                (Genlib.pad_to setup trig_off
                @ [ Insn.Branch (cond, Reg.t0, Reg.t1, 8) ])
                ~eff ]
        | None -> [])
    | Seed.T_return ->
        (* The caller is placed so the pushed return address equals the
           window start (Figure 5's trigger_train_0). *)
        [ mk "train_return"
            (Genlib.nops (window_off - 1) @ [ Insn.Jal (Reg.ra, 4) ])
            ~eff:1 ]
    | Seed.T_jump ->
        let setup = Genlib.li Reg.t2 (word_addr window_off) in
        let eff = List.length setup + 1 in
        [ mk "train_jump"
            (Genlib.pad_to setup trig_off @ [ Insn.Jalr (Reg.zero, Reg.t2, 0) ])
            ~eff ]
    | Seed.T_access_fault | Seed.T_page_fault | Seed.T_misalign
    | Seed.T_illegal | Seed.T_mem_disamb -> []
  in
  (* A couple of untargeted candidates for the reduction pass to discard,
     as in Figure 5's trigger_train_1/2. *)
  let junk i =
    let n = Rng.int_in rng 3 8 in
    let insns =
      List.init n (fun _ ->
          Genlib.random_arith rng ~dst:(Rng.choose rng Genlib.scratch)
            ~srcs:[ Rng.choose rng Genlib.scratch ])
    in
    mk (Printf.sprintf "train_junk%d" i) insns ~eff:(List.length insns)
  in
  if Seed.is_misprediction seed.Seed.kind then targeted @ [ junk 0; junk 1 ]
  else targeted

let random_trainings rng =
  (* DejaVuzz*: random instruction soup, no alignment, no flow matching.
     Packets are long (random fuzzing does not know where the trigger sits),
     so predictor state is trained by index aliasing if at all. *)
  let packet i =
    let target_words = Rng.int_in rng 40 120 in
    (* Build with explicit word positions so control flow stays linear. *)
    let rec build pos acc =
      if pos >= target_words then List.rev acc
      else
        let r = Rng.float rng 1.0 in
        let insns =
          if r < 0.55 then
            [ Genlib.random_arith rng ~dst:(Rng.choose rng Genlib.scratch)
                ~srcs:[ Rng.choose rng Genlib.scratch ] ]
          else if r < 0.80 then
            (* A taken or untaken branch skipping one word. *)
            let cond = Rng.choose rng [| Insn.Eq; Insn.Ne; Insn.Lt; Insn.Geu |] in
            let v0, v1 =
              Genlib.random_cond_operands rng cond ~taken:(Rng.bool rng)
            in
            [ Insn.Opi (Insn.Addi, Reg.t0, Reg.zero, v0);
              Insn.Opi (Insn.Addi, Reg.t1, Reg.zero, v1);
              Insn.Branch (cond, Reg.t0, Reg.t1, 8);
              Insn.nop ]
          else if r < 0.92 then [ Insn.Jal (Reg.ra, 4) ]
          else
            (* li is two words for swap-region addresses; the jalr lands on
               the instruction right after itself.  A random register is
               used, as a random generator would. *)
            let reg = Rng.choose rng Genlib.scratch in
            Genlib.li reg (word_addr (pos + 3))
            @ [ Insn.Jalr (Reg.zero, reg, 0) ]
        in
        build (pos + List.length insns) (List.rev_append insns acc)
    in
    let insns = build 0 [] in
    Packet.make ~name:(Printf.sprintf "rand_train%d" i)
      ~role:Packet.Trigger_training
      ~training_total:(List.length insns)
      ~training_effective:(List.length insns)
      insns
  in
  List.init 6 packet

(* --- entry points -------------------------------------------------------- *)

let generate ?(style = `Derived) ?(force_training = false) cfg seed =
  ignore cfg;
  let rng = Rng.create seed.Seed.trigger_entropy in
  let trig_off = Rng.int_in rng 20 150 in
  let shape, branch_dir =
    match seed.Seed.kind with
    | Seed.T_branch ->
        let sh, dir = branch_shape rng seed ~force_training ~trig_off in
        (sh, Some dir)
    | Seed.T_return -> (return_shape rng seed ~trig_off, None)
    | Seed.T_jump -> (jump_shape rng seed ~trig_off, None)
    | Seed.T_access_fault | Seed.T_page_fault | Seed.T_misalign ->
        (exception_shape rng seed ~trig_off, None)
    | Seed.T_illegal -> (illegal_shape rng seed ~trig_off, None)
    | Seed.T_mem_disamb -> (disamb_shape rng seed ~trig_off, None)
  in
  let transient = assemble_transient ~trig_off shape in
  let trainings =
    match style with
    | `Derived ->
        derived_trainings rng seed ~trig_off ~window_off:shape.sh_window_off
          branch_dir
    | `Random -> random_trainings rng
  in
  { Packet.seed; transient; trigger_trainings = trainings;
    window_trainings = [];
    trigger_addr = word_addr trig_off;
    window_addr = word_addr shape.sh_window_off;
    window_words;
    data = shape.sh_data;
    perms = shape.sh_perms;
    tighten = seed.Seed.tighten;
    gadget_tags = [] }

let expected_window seed kind =
  match (seed.Seed.kind, kind) with
  | Seed.T_access_fault,
    Eff.W_exception (Trap.Load_access_fault | Trap.Store_access_fault) -> true
  | Seed.T_page_fault,
    Eff.W_exception (Trap.Load_page_fault | Trap.Store_page_fault) -> true
  | Seed.T_misalign,
    Eff.W_exception (Trap.Load_misalign | Trap.Store_misalign) -> true
  | Seed.T_illegal, Eff.W_exception Trap.Illegal_instruction -> true
  | Seed.T_mem_disamb, Eff.W_mem_disamb -> true
  | Seed.T_branch, Eff.W_branch_mispred -> true
  | Seed.T_jump, Eff.W_jump_mispred -> true
  | Seed.T_return, Eff.W_return_mispred -> true
  | _ -> false

let triggered tc records =
  List.exists
    (fun (w : Dvz_uarch.Core.window_record) ->
      w.Dvz_uarch.Core.wr_in_transient_blob
      && w.Dvz_uarch.Core.wr_enqueued > 0
      && w.Dvz_uarch.Core.wr_trigger_pc = tc.Packet.trigger_addr
      && expected_window tc.Packet.seed w.Dvz_uarch.Core.wr_kind)
    records
