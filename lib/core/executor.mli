(** Iteration executor — runs one scheduled plan with no shared mutable
    state.

    Everything an iteration needs arrives in the read-only {!ctx} plus
    the plan's private child RNG; everything it produces comes back in
    the {!outcome} value, including a private coverage shard and the
    drained fault records.  Executions therefore commute: the
    orchestrator can run a batch of plans on any number of domains and
    fold the outcomes in plan order with results byte-identical to the
    sequential loop.

    Fault handling mirrors the old in-loop behaviour: the plan's faults
    are armed (domain-locally) before phase 1, fired faults are drained
    into [oc_fired], and an injected {!Dvz_resilience.Fault.Killed}
    propagates to the caller after cleaning up the ambient fault state. *)

type crash = {
  cr_iteration : int;
  cr_seed : Seed.t option;  (** the input being processed, when known *)
  cr_exn : string;
  cr_backtrace : string;
}
(** One isolated harness crash: the iteration's input descriptor plus
    the exception and backtrace, recorded instead of killing the
    campaign. *)

type status = [ `Ok | `Crashed | `Timeout ]

type outcome = {
  oc_iteration : int;
  oc_seed_kind : Seed.trigger_kind option;
  oc_triggered : bool;  (** phase 1 produced a firing transient window *)
  oc_testcase : Packet.testcase option;  (** phase-1 output (corpus form) *)
  oc_completed : Packet.testcase option;  (** phase-2 completed testcase *)
  oc_analysis : Oracle.analysis option;
  oc_coverage : Coverage.t option;
      (** per-iteration coverage shard; [None] on timeout/crash/quiet *)
  oc_status : status;
  oc_crash : crash option;
  oc_fired : Dvz_resilience.Fault.fault list;
  oc_cycles : int;  (** simulated cycles across both DUTs *)
  oc_p1 : float;  (** phase seconds, from the injected clock *)
  oc_p2 : float;
  oc_p3 : float;
}

type ctx = {
  cx_cfg : Dvz_uarch.Config.t;
  cx_style : [ `Derived | `Random ];
  cx_taint_mode : Dvz_ift.Policy.mode;
  cx_secret : int array;  (** shared read-only across domains *)
  cx_fault_plan : Dvz_resilience.Fault.plan;
  cx_budget : Dvz_uarch.Dualcore.budget option;
  cx_clock : Dvz_obs.Clock.t;
  cx_domain_iters : Dvz_obs.Metrics.counter array;
      (** per-worker-domain iteration counters, indexed by
          {!Dvz_util.Parallel.worker_index}.  Sized from the effective
          lane count ({!Dvz_util.Parallel.effective_lanes}); an
          out-of-range worker index is a wiring bug and asserts rather
          than aliasing counters. *)
}

val execute : ctx -> Scheduler.plan -> outcome
(** Runs one plan through phases 1–3 under the watchdog budget.  Never
    raises except for {!Dvz_resilience.Fault.Killed}; any other
    exception is isolated into [oc_crash] with [oc_status = `Crashed]. *)
