(** Per-domain {!Dvz_uarch.Dualcore} instance pool.

    Building a testbench is ~5x the cost of simulating a stimulus through
    it (fresh memories, predictor arrays, queues, taint tables for both
    instances), so the oracle re-arms a cached instance with
    {!Dvz_uarch.Dualcore.reset} instead of re-creating it per iteration.
    The cache is a single slot per domain, keyed on everything baked in at
    create time — [(cfg, mode, log_bound)] — and held in [Domain.DLS]
    (the same domain-local discipline as {!Dvz_resilience.Fault}), so
    worker domains never contend and never share mutable simulator state.

    Pooled-vs-fresh bit-identity is pinned by the differential property
    tests in [test_fuzz.ml]; instances are pooled only without a
    provenance recorder (the armed replay path always builds fresh). *)

val acquire :
  ?log_bound:Dvz_ift.Taintlog.bound ->
  ?mode:Dvz_ift.Policy.mode ->
  ?secret_b:int array ->
  Dvz_uarch.Config.t ->
  Dvz_uarch.Core.stimulus ->
  Dvz_uarch.Dualcore.t
(** [acquire ~log_bound ~mode cfg stim] returns a testbench armed with
    [stim], behaviourally identical to
    [Dualcore.create ~log_bound ~mode cfg stim]: the calling domain's
    cached instance re-armed when its key matches, a freshly built (and
    cached) one otherwise.  Defaults match [Dualcore.create].  The
    returned instance is valid until the calling domain's next [acquire];
    collected {!Dvz_uarch.Dualcore.result} values stay valid forever (they
    never alias pooled state). *)

val acquire_core :
  Dvz_uarch.Config.t -> Dvz_uarch.Core.stimulus -> Dvz_uarch.Core.t
(** [acquire_core cfg stim] is the single-[Core] twin of {!acquire} for
    the phase-1 trigger evaluator: a bare testbench armed with [stim],
    behaviourally identical to [Core.create cfg stim], pooled per domain
    in its own slot keyed on [cfg] alone.  Valid until the calling
    domain's next [acquire_core]. *)

val acquire_core_batch :
  Dvz_uarch.Config.t -> Dvz_uarch.Core.stimulus array -> Dvz_uarch.Core.t array
(** [acquire_core_batch cfg stims] returns [Array.length stims] distinct
    armed testbenches, element [i] behaviourally identical to
    [Core.create cfg stims.(i)] — the batched twin of {!acquire_core} used
    by phase-1 batch candidate evaluation
    ({!Trigger_opt.evaluate_batch}).  The pool grows to the largest batch
    seen on the calling domain and is keyed on [cfg]; every returned
    instance is valid until the domain's next [acquire_core_batch]. *)

val clear : unit -> unit
(** Drop the calling domain's cached instances (tests, memory pressure). *)

val cached :
  unit ->
  (Dvz_uarch.Config.t * Dvz_ift.Policy.mode * Dvz_ift.Taintlog.bound) option
(** The calling domain's cached key, if any (introspection for tests). *)
