module Dualcore = Dvz_uarch.Dualcore
module Config = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Metrics = Dvz_obs.Metrics

let m_hits =
  Metrics.counter Metrics.default
    ~help:"Pooled Dualcore instances re-armed in place of a fresh create"
    "dvz_simpool_hits_total"

let m_misses =
  Metrics.counter Metrics.default
    ~help:"Dualcore instances built because no pooled instance matched"
    "dvz_simpool_misses_total"

(* One instance per domain, keyed on everything that is baked in at
   [Dualcore.create] and untouched by [Dualcore.reset].  [Config.t] is a
   plain data record and the other two are simple variants, so structural
   equality is the right key comparison.

   Domain-local (same discipline as [Fault.arm]): worker domains never
   share instances, so acquisition needs no locking and the sequential
   fold's determinism argument is untouched — pooling only changes *which
   arrays* a simulation writes, never what it computes, and collected
   results never alias pooled mutable state. *)
type key = Config.t * Dvz_ift.Policy.mode * Dvz_ift.Taintlog.bound

type slot = { mutable entry : (key * Dualcore.t) option }

let slot_key = Domain.DLS.new_key (fun () -> { entry = None })

let acquire ?(log_bound = Dvz_ift.Taintlog.Unbounded)
    ?(mode = Dvz_ift.Policy.Diffift) ?secret_b cfg stim =
  let slot = Domain.DLS.get slot_key in
  let key = (cfg, mode, log_bound) in
  match slot.entry with
  | Some (k, t) when k = key ->
      Dualcore.reset ?secret_b t stim;
      Metrics.incr m_hits;
      t
  | _ ->
      let t = Dualcore.create ~log_bound ~mode ?secret_b cfg stim in
      slot.entry <- Some (key, t);
      Metrics.incr m_misses;
      t

(* A second, independent slot pools a bare single-[Core] testbench for
   the phase-1 trigger evaluator, which runs one core (no shadow pair, no
   taint tracking) many times per iteration during reduction.  Its only
   create-time parameter is the configuration, so that is the whole key. *)

let m_core_hits =
  Metrics.counter Metrics.default
    ~help:"Pooled single-Core instances re-armed in place of a fresh create"
    "dvz_simpool_core_hits_total"

let m_core_misses =
  Metrics.counter Metrics.default
    ~help:"Single-Core instances built because no pooled instance matched"
    "dvz_simpool_core_misses_total"

type core_slot = { mutable core_entry : (Config.t * Core.t) option }

let core_slot_key = Domain.DLS.new_key (fun () -> { core_entry = None })

let acquire_core cfg stim =
  let slot = Domain.DLS.get core_slot_key in
  match slot.core_entry with
  | Some (k, t) when k = cfg ->
      Core.reset t stim;
      Metrics.incr m_core_hits;
      t
  | _ ->
      let t = Core.create cfg stim in
      slot.core_entry <- Some (cfg, t);
      Metrics.incr m_core_misses;
      t

(* Batched variant of the core pool: phase-1 batch evaluation re-arms N
   cores at once (one per candidate stimulus), so the pool is an array that
   grows to the largest batch seen on this domain.  Reusing [i < n] slots
   and keeping the widest array means steady-state batches of the same size
   allocate nothing but the returned sub-view. *)

let m_core_batch_hits =
  Metrics.counter Metrics.default
    ~help:"Pooled batch-Core instances re-armed in place of a fresh create"
    "dvz_simpool_core_batch_hits_total"

let m_core_batch_misses =
  Metrics.counter Metrics.default
    ~help:"Batch-Core instances built because the pool was too small or stale"
    "dvz_simpool_core_batch_misses_total"

type core_batch_slot = {
  mutable batch_entry : (Config.t * Core.t array) option;
}

let core_batch_key = Domain.DLS.new_key (fun () -> { batch_entry = None })

let acquire_core_batch cfg stims =
  let n = Array.length stims in
  let slot = Domain.DLS.get core_batch_key in
  let pool =
    match slot.batch_entry with
    | Some (k, arr) when k = cfg -> arr
    | _ -> [||]
  in
  let cores =
    Array.init n (fun i ->
        if i < Array.length pool then begin
          Core.reset pool.(i) stims.(i);
          Metrics.incr m_core_batch_hits;
          pool.(i)
        end
        else begin
          Metrics.incr m_core_batch_misses;
          Core.create cfg stims.(i)
        end)
  in
  (* [cores] shares its first [min n (length pool)] elements with [pool],
     so keeping the wider of the two retains every instance built so far. *)
  (match slot.batch_entry with
  | Some (k, arr) when k = cfg && Array.length arr >= n -> ()
  | _ -> if n > 0 then slot.batch_entry <- Some (cfg, cores));
  cores

let clear () =
  (Domain.DLS.get slot_key).entry <- None;
  (Domain.DLS.get core_slot_key).core_entry <- None;
  (Domain.DLS.get core_batch_key).batch_entry <- None

let cached () =
  match (Domain.DLS.get slot_key).entry with
  | Some ((cfg, mode, bound), _) -> Some (cfg, mode, bound)
  | None -> None
