open Dvz_isa
module Rng = Dvz_util.Rng

let li rd v =
  if Encode.fits_imm12 v then [ Insn.Opi (Insn.Addi, rd, Reg.zero, v) ]
  else begin
    let lo = ((v + 2048) land 0xFFF) - 2048 in
    let hi = (v - lo) asr 12 in
    if hi < 0 || hi >= 1 lsl 20 then invalid_arg "Genlib.li: out of range";
    if lo = 0 then [ Insn.Lui (rd, hi) ]
    else [ Insn.Lui (rd, hi); Insn.Opi (Insn.Addi, rd, rd, lo) ]
  end

let li_high rd ~tmp ~low ~shift =
  li rd low
  @ [ Insn.Opi (Insn.Addi, tmp, Reg.zero, 1);
      Insn.Opi (Insn.Slli, tmp, tmp, shift);
      Insn.Op (Insn.Add, rd, rd, tmp) ]

let nops n = List.init n (fun _ -> Insn.nop)

let pad_to insns n =
  let len = List.length insns in
  if len > n then invalid_arg "Genlib.pad_to: sequence too long";
  insns @ nops (n - len)

let random_cond_operands rng cond ~taken =
  (* Small positive operands keep every comparison's signed/unsigned
     variants in agreement, so selection is straightforward. *)
  let a = Rng.int_in rng 1 100 in
  let lt = (a + Rng.int_in rng 1 50, a) in
  let gt = (a, a + Rng.int_in rng 1 50) in
  let eq = (a, a) in
  match (cond, taken) with
  | Insn.Eq, true -> eq
  | Insn.Eq, false -> gt
  | Insn.Ne, true -> gt
  | Insn.Ne, false -> eq
  | (Insn.Lt | Insn.Ltu), true -> gt
  | (Insn.Lt | Insn.Ltu), false -> lt
  | (Insn.Ge | Insn.Geu), true -> lt
  | (Insn.Ge | Insn.Geu), false -> gt

let random_arith rng ~dst ~srcs =
  let ops = [| Insn.Add; Insn.Sub; Insn.Xor; Insn.Or; Insn.And; Insn.Mul |] in
  match srcs with
  | [] -> Insn.Opi (Insn.Addi, dst, Reg.zero, Rng.int_in rng (-100) 100)
  | [ s ] ->
      if Rng.bool rng then
        Insn.Opi (Insn.Addi, dst, s, Rng.int_in rng (-100) 100)
      else Insn.Op (Rng.choose rng ops, dst, s, s)
  | s1 :: s2 :: _ -> Insn.Op (Rng.choose rng ops, dst, s1, s2)

let illegal_word rng =
  (* opcode 1111111 is unallocated; randomise the upper bits. *)
  (Rng.int rng (1 lsl 25) lsl 7) lor 0b1111111

let scratch =
  [| Reg.t0; Reg.t1; Reg.t2; Reg.x 28; Reg.x 29; Reg.x 30; Reg.x 31 |]
