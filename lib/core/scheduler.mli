(** Batch scheduler — turns campaign options plus a corpus snapshot into
    executable iteration plans.

    All RNG-dependent scheduling decisions (fresh seed vs corpus pick,
    which corpus entry to mutate) are made here, up front and in
    iteration order, on the orchestrator's master generator.  Each plan
    carries its own child generator split off the master, so executing
    the plans — in any order, on any number of domains — consumes
    nothing from the master stream and perturbs no other plan. *)

type pick =
  | Fresh  (** generate, evaluate and reduce a brand-new trigger *)
  | Mutate of Packet.testcase
      (** mutate the window section of this corpus entry *)

type plan = {
  pl_iteration : int;  (** global iteration index *)
  pl_rng : Dvz_util.Rng.t;  (** the iteration's private child generator *)
  pl_pick : pick;
}

val schedule :
  fresh_seed_prob:float ->
  corpus:Corpus.t ->
  rng:Dvz_util.Rng.t ->
  start:int ->
  count:int ->
  plan list
(** [schedule ~fresh_seed_prob ~corpus ~rng ~start ~count] builds plans
    for iterations [start .. start+count-1].  Per iteration it draws one
    [Rng.split] from the master [rng] (its only draw, exactly as the
    sequential loop did), then decides the pick on the child: [Fresh]
    when the corpus is empty or with probability [fresh_seed_prob],
    otherwise a weighted {!Corpus.choose} from the snapshot. *)
