module Rng = Dvz_util.Rng
module Profile = Dvz_obs.Profile

type entry = {
  en_birth : int;
  en_reward : int;
  en_testcase : Packet.testcase;
}

(* [items] is kept sorted by [en_birth] ascending — the canonical order
   used by [entries] (checkpoint bytes) and by index-based alias tables,
   so every derived structure is a pure function of the entry set. *)
type t = {
  cap : int;
  mutable items : entry array;
  mutable alias : (float array * int array) option;
}

let create ~cap =
  if cap < 1 then invalid_arg "Corpus.create: cap must be at least 1";
  { cap; items = [||]; alias = None }

let cap t = t.cap
let size t = Array.length t.items
let is_empty t = Array.length t.items = 0
let entries t = Array.to_list t.items

let weight e = 1 + max 0 e.en_reward

let by_birth a b = compare a.en_birth b.en_birth

(* Eviction keeps the [cap] entries with the highest reward, breaking
   ties toward the youngest.  Births are unique, so the priority order is
   total and the surviving set does not depend on sort stability or on
   the order entries were admitted — the property [merge] relies on. *)
let by_priority a b =
  match compare b.en_reward a.en_reward with
  | 0 -> compare b.en_birth a.en_birth
  | c -> c

let keep_best cap arr =
  if Array.length arr <= cap then arr
  else begin
    let pr = Array.copy arr in
    Array.sort by_priority pr;
    let kept = Array.sub pr 0 cap in
    Array.sort by_birth kept;
    kept
  end

let admit t ~birth ~reward tc =
  let e = { en_birth = birth; en_reward = reward; en_testcase = tc } in
  let arr = Array.append t.items [| e |] in
  Array.sort by_birth arr;
  t.items <- keep_best t.cap arr;
  t.alias <- None

let replace_all t ~birth tc =
  t.items <- [| { en_birth = birth; en_reward = 0; en_testcase = tc } |];
  t.alias <- None

let snapshot t = { cap = t.cap; items = Array.copy t.items; alias = None }

let of_entries ~cap es =
  if cap < 1 then invalid_arg "Corpus.of_entries: cap must be at least 1";
  let arr = Array.of_list es in
  Array.sort by_birth arr;
  { cap; items = keep_best cap arr; alias = None }

let merge_impl a b =
  if a.cap <> b.cap then
    invalid_arg
      (Printf.sprintf "Corpus.merge: caps differ (%d vs %d)" a.cap b.cap);
  let tbl = Hashtbl.create (Array.length a.items + Array.length b.items + 1) in
  (* Union keyed by birth; on a birth collision the structurally larger
     entry wins, which is symmetric in the arguments — together with the
     birth sort and the total-order trim this makes [merge] commutative
     by construction. *)
  let add e =
    match Hashtbl.find_opt tbl e.en_birth with
    | Some e' when compare e' e >= 0 -> ()
    | _ -> Hashtbl.replace tbl e.en_birth e
  in
  Array.iter add a.items;
  Array.iter add b.items;
  let arr = Array.of_list (Hashtbl.fold (fun _ e acc -> e :: acc) tbl []) in
  Array.sort by_birth arr;
  { cap = a.cap; items = keep_best a.cap arr; alias = None }

let merge a b =
  if Profile.armed () then Profile.wrap "corpus/merge" (fun () -> merge_impl a b)
  else merge_impl a b

(* Vose's alias method: O(n) table build (cached until the next
   mutation), O(1) per draw.  The build walks the small/large worklists
   in ascending index order, so the table — and thus every RNG-driven
   choice — is a deterministic function of the entry set. *)
let alias_table t =
  match t.alias with
  | Some tab -> tab
  | None ->
      let items = t.items in
      let n = Array.length items in
      let total = Array.fold_left (fun acc e -> acc + weight e) 0 items in
      let scaled =
        Array.map
          (fun e -> float_of_int (weight e * n) /. float_of_int total)
          items
      in
      let prob = Array.make n 1.0 in
      let alias = Array.init n (fun i -> i) in
      let small = ref [] and large = ref [] in
      for i = n - 1 downto 0 do
        if scaled.(i) < 1.0 then small := i :: !small
        else large := i :: !large
      done;
      let rec go sm lg =
        match (sm, lg) with
        | s :: sm', l :: lg' ->
            prob.(s) <- scaled.(s);
            alias.(s) <- l;
            let r = scaled.(l) -. (1.0 -. scaled.(s)) in
            scaled.(l) <- r;
            if r < 1.0 then go (l :: sm') lg' else go sm' (l :: lg')
        | s :: sm', [] ->
            prob.(s) <- 1.0;
            go sm' []
        | [], l :: lg' ->
            prob.(l) <- 1.0;
            go [] lg'
        | [], [] -> ()
      in
      go !small !large;
      let tab = (prob, alias) in
      t.alias <- Some tab;
      tab

let choose_impl t rng =
  let n = Array.length t.items in
  if n = 0 then invalid_arg "Corpus.choose: corpus is empty";
  let prob, alias = alias_table t in
  (* Always two draws — a column pick plus a coin — so the child RNG
     stream consumed per choice is independent of the weight profile. *)
  let i = Rng.int rng n in
  let j = if Rng.float rng 1.0 < prob.(i) then i else alias.(i) in
  t.items.(j).en_testcase

let choose t rng =
  if Profile.armed () then
    Profile.wrap "corpus/choose" (fun () -> choose_impl t rng)
  else choose_impl t rng
