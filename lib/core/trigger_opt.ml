module Core = Dvz_uarch.Core

let eval_secret = Array.make Dvz_soc.Layout.secret_dwords 0x5A

let evaluate cfg tc =
  (* Reduction re-evaluates once per training packet, so this is the
     hottest construction site in phase 1 — draw the testbench from the
     per-domain pool and re-arm it instead of rebuilding. *)
  let stim = Packet.stimulus ~secret:eval_secret tc in
  let core = Simpool.acquire_core cfg stim in
  ignore (Core.run core);
  Trigger_gen.triggered tc (Core.windows core)

let reduce cfg tc =
  if not (evaluate cfg tc) then (tc, 0)
  else begin
    (* Walk the trigger training packets in schedule order; drop each whose
       removal leaves the window triggering. *)
    let rec go kept removed = function
      | [] -> (List.rev kept, removed)
      | p :: rest ->
          let candidate =
            Packet.with_trigger_trainings tc (List.rev_append kept rest)
          in
          if evaluate cfg candidate then go kept (removed + 1) rest
          else go (p :: kept) removed rest
    in
    let kept, removed = go [] 0 tc.Packet.trigger_trainings in
    (Packet.with_trigger_trainings tc kept, removed)
  end
