module Core = Dvz_uarch.Core

let eval_secret = Array.make Dvz_soc.Layout.secret_dwords 0x5A

let evaluate cfg tc =
  (* Reduction re-evaluates once per training packet, so this is the
     hottest construction site in phase 1 — draw the testbench from the
     per-domain pool and re-arm it instead of rebuilding. *)
  let stim = Packet.stimulus ~secret:eval_secret tc in
  let core = Simpool.acquire_core cfg stim in
  ignore (Core.run core);
  Trigger_gen.triggered tc (Core.windows core)

let evaluate_batch cfg tcs =
  (* Batched twin of [evaluate]: one pooled testbench per candidate, drawn
     in a single [Simpool] acquisition.  A scheduler batch of independent
     candidates evaluates through distinct cores, so results are
     element-wise identical to calling [evaluate] on each candidate
     (pinned by test_fuzz.ml). *)
  let stims = Array.map (fun tc -> Packet.stimulus ~secret:eval_secret tc) tcs in
  let cores = Simpool.acquire_core_batch cfg stims in
  Array.mapi
    (fun i core ->
      ignore (Core.run core);
      Trigger_gen.triggered tcs.(i) (Core.windows core))
    cores

let reduce cfg tc =
  if not (evaluate cfg tc) then (tc, 0)
  else begin
    (* Walk the trigger training packets in schedule order; drop each whose
       removal leaves the window triggering. *)
    let rec go kept removed = function
      | [] -> (List.rev kept, removed)
      | p :: rest ->
          let candidate =
            Packet.with_trigger_trainings tc (List.rev_append kept rest)
          in
          if evaluate cfg candidate then go kept (removed + 1) rest
          else go (p :: kept) removed rest
    in
    let kept, removed = go [] 0 tc.Packet.trigger_trainings in
    (Packet.with_trigger_trainings tc kept, removed)
  end
