module Provenance = Dvz_ift.Provenance
module Policy = Dvz_ift.Policy
module Dualcore = Dvz_uarch.Dualcore
module Core = Dvz_uarch.Core
module Elem = Dvz_uarch.Elem
module Config = Dvz_uarch.Config
module Metrics = Dvz_obs.Metrics
module Json = Dvz_obs.Json
module Swapmem = Dvz_soc.Swapmem
module Perm = Dvz_soc.Perm

let m_traces =
  Metrics.counter Metrics.default
    ~help:"Findings replayed with the taint-provenance recorder armed"
    "dvz_provenance_traces_total"

let m_edges =
  Metrics.counter Metrics.default
    ~help:"Taint-introduction edges recorded across all provenance replays"
    "dvz_provenance_edges_total"

type slice = { sl_sink : string; sl_edges : Provenance.edge list }

type t = {
  x_core : string;
  x_mode : Policy.mode;
  x_attack : string option;
  x_secret : int array;
  x_stimulus : Core.stimulus;
  x_live_sinks : string list;
  x_source : string option;
  x_slices : slice list;
  x_edges_total : int;
  x_dropped : int;
  x_timed_out : bool;
  x_prov : Provenance.t;
}

let explain ?budget ?attack ?(mode = Policy.Diffift) cfg stim =
  let prov = Provenance.create () in
  let dc = Dualcore.create ~provenance:prov ~mode cfg stim in
  let result = Dualcore.run ?budget dc in
  let live =
    List.filter Oracle.microarch_sink result.Dualcore.r_live_tainted
  in
  (* A timing-only finding can leave no live tainted sink; slicing the
     dead microarchitectural sinks still explains where the secret went. *)
  let sinks =
    match live with
    | [] -> List.filter Oracle.microarch_sink result.Dualcore.r_final_tainted
    | l -> l
  in
  let sink_labels = List.map Elem.to_string sinks in
  let slices =
    List.map
      (fun sink -> { sl_sink = sink; sl_edges = Provenance.slice prov ~sink })
      sink_labels
  in
  let source =
    List.fold_left
      (fun acc sl ->
        match acc with
        | Some _ -> acc
        | None ->
            List.find_map
              (fun (e : Provenance.edge) ->
                if e.Provenance.e_kind = Provenance.Source then
                  Some e.Provenance.e_dst
                else None)
              sl.sl_edges)
      None slices
  in
  Metrics.incr m_traces;
  Metrics.incr ~by:(Provenance.num_edges prov) m_edges;
  { x_core = cfg.Config.name;
    x_mode = mode;
    x_attack = attack;
    x_secret = stim.Core.st_secret;
    x_stimulus = stim;
    x_live_sinks = List.map Elem.to_string live;
    x_source = source;
    x_slices = slices;
    x_edges_total = Provenance.num_edges prov;
    x_dropped = Provenance.dropped prov;
    x_timed_out = result.Dualcore.r_timed_out;
    x_prov = prov }

let source t = t.x_source

(* --- renderers ---------------------------------------------------------- *)

let render_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "core:   %s\nmode:   %s\n" t.x_core
       (Policy.mode_name t.x_mode));
  (match t.x_attack with
  | Some a -> Buffer.add_string buf (Printf.sprintf "attack: %s\n" a)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "source: %s\n"
       (Option.value ~default:"(none attributed)" t.x_source));
  Buffer.add_string buf
    (Printf.sprintf "sinks:  %s\n"
       (match t.x_live_sinks with
       | [] -> "(no live tainted sinks)"
       | l -> String.concat " " l));
  Buffer.add_string buf
    (Printf.sprintf "edges:  %d recorded%s\n" t.x_edges_total
       (if t.x_dropped > 0 then
          Printf.sprintf " (%d dropped at capacity)" t.x_dropped
        else ""));
  if t.x_timed_out then
    Buffer.add_string buf "warning: replay hit the watchdog budget\n";
  List.iter
    (fun sl ->
      Buffer.add_string buf
        (Printf.sprintf "\nslice for sink %s (%d edges):\n" sl.sl_sink
           (List.length sl.sl_edges));
      List.iter
        (fun e -> Buffer.add_string buf (Provenance.render_edge e ^ "\n"))
        sl.sl_edges)
    t.x_slices;
  Buffer.contents buf

let render_dot t =
  Provenance.dot_of_slices t.x_prov
    ~sinks:(List.map (fun sl -> sl.sl_sink) t.x_slices)

(* --- JSON artifact ------------------------------------------------------ *)

let schema = "dvz-explain/1"

let perm_bits (p : Perm.t) =
  (if p.Perm.read then 1 else 0)
  lor (if p.Perm.write then 2 else 0)
  lor (if p.Perm.exec then 4 else 0)
  lor (if p.Perm.user then 8 else 0)
  lor if p.Perm.present then 16 else 0

let perm_of_bits b =
  { Perm.read = b land 1 <> 0;
    write = b land 2 <> 0;
    exec = b land 4 <> 0;
    user = b land 8 <> 0;
    present = b land 16 <> 0 }

let edge_json (e : Provenance.edge) =
  Json.Obj
    [ ("id", Json.Int e.Provenance.e_id);
      ("time", Json.Int e.Provenance.e_time);
      ("in_window", Json.Bool e.Provenance.e_in_window);
      ("kind", Json.Str (Provenance.kind_name e.Provenance.e_kind));
      ("dst", Json.Str e.Provenance.e_dst);
      ("srcs", Json.Arr (List.map (fun s -> Json.Str s) e.Provenance.e_srcs))
    ]

let stimulus_json (stim : Core.stimulus) =
  Json.Obj
    [ ("max_slots", Json.Int stim.Core.st_max_slots);
      ("tighten", Json.Bool stim.Core.st_tighten_secret);
      ( "blobs",
        Json.Arr
          (List.map
             (fun (b : Swapmem.blob) ->
               Json.Obj
                 [ ("name", Json.Str b.Swapmem.name);
                   ( "words",
                     Json.Arr
                       (Array.to_list
                          (Array.map (fun w -> Json.Int w) b.Swapmem.words))
                   );
                   ("is_transient", Json.Bool b.Swapmem.is_transient) ])
             (Swapmem.blobs stim.Core.st_swapmem)) );
      ( "schedule",
        Json.Arr
          (List.map
             (fun i -> Json.Int i)
             (Swapmem.schedule stim.Core.st_swapmem)) );
      ( "data",
        Json.Arr
          (List.map
             (fun (a, v) -> Json.Arr [ Json.Int a; Json.Int v ])
             stim.Core.st_data) );
      ( "perms",
        Json.Arr
          (List.map
             (fun (a, p) -> Json.Arr [ Json.Int a; Json.Int (perm_bits p) ])
             stim.Core.st_perms) ) ]

let to_json t =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("core", Json.Str t.x_core);
      ("mode", Json.Str (Policy.mode_name t.x_mode));
      ( "attack",
        match t.x_attack with None -> Json.Null | Some a -> Json.Str a );
      ( "secret",
        Json.Arr (Array.to_list (Array.map (fun v -> Json.Int v) t.x_secret))
      );
      ("stimulus", stimulus_json t.x_stimulus);
      ( "source",
        match t.x_source with None -> Json.Null | Some s -> Json.Str s );
      ("sinks", Json.Arr (List.map (fun s -> Json.Str s) t.x_live_sinks));
      ( "slices",
        Json.Arr
          (List.map
             (fun sl ->
               Json.Obj
                 [ ("sink", Json.Str sl.sl_sink);
                   ("edges", Json.Arr (List.map edge_json sl.sl_edges)) ])
             t.x_slices) );
      ("edges_total", Json.Int t.x_edges_total);
      ("timed_out", Json.Bool t.x_timed_out) ]

(* --- artifact replay ---------------------------------------------------- *)

let config_of_name name =
  let known = [ Config.boom_small; Config.xiangshan_minimal ] in
  List.find_opt (fun c -> c.Config.name = name) known

let mode_of_name s =
  if s = Policy.mode_name Policy.Cellift then Some Policy.Cellift
  else if s = Policy.mode_name Policy.Diffift then Some Policy.Diffift
  else None

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let int_list j = List.filter_map Json.to_int (Json.to_list j)

let int_pairs j =
  List.filter_map
    (fun pair ->
      match List.filter_map Json.to_int (Json.to_list pair) with
      | [ a; b ] -> Some (a, b)
      | _ -> None)
    (Json.to_list j)

let stimulus_of_json ~secret j =
  let* max_slots = field "max_slots" Json.to_int j in
  let* tighten = field "tighten" Json.to_bool j in
  let* blobs_j = field "blobs" (fun x -> Some (Json.to_list x)) j in
  let* blobs =
    List.fold_left
      (fun acc bj ->
        let* acc = acc in
        let* name = field "name" Json.to_str bj in
        let* words = field "words" (fun x -> Some (int_list x)) bj in
        let* is_transient = field "is_transient" Json.to_bool bj in
        Ok
          ({ Swapmem.name; words = Array.of_list words; is_transient } :: acc))
      (Ok []) blobs_j
  in
  let blobs = List.rev blobs in
  let* schedule = field "schedule" (fun x -> Some (int_list x)) j in
  let* data = field "data" (fun x -> Some (int_pairs x)) j in
  let* perms = field "perms" (fun x -> Some (int_pairs x)) j in
  match Swapmem.create ~blobs ~schedule with
  | swap ->
      Ok
        { Core.st_swapmem = swap;
          st_tighten_secret = tighten;
          st_secret = secret;
          st_data = data;
          st_perms = List.map (fun (a, b) -> (a, perm_of_bits b)) perms;
          st_max_slots = max_slots }
  | exception Invalid_argument e -> Error e

let replay_artifact ?budget j =
  let* s = field "schema" Json.to_str j in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "unsupported artifact schema %S" s)
  in
  let* core = field "core" Json.to_str j in
  let* cfg =
    match config_of_name core with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown core config %S" core)
  in
  let* mode_s = field "mode" Json.to_str j in
  let* mode =
    match mode_of_name mode_s with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown taint mode %S" mode_s)
  in
  let attack = Option.bind (Json.member "attack" j) Json.to_str in
  let* secret =
    field "secret" (fun x -> Some (Array.of_list (int_list x))) j
  in
  let* stim_j = field "stimulus" Option.some j in
  let* stim = stimulus_of_json ~secret stim_j in
  Ok (explain ?budget ?attack ~mode cfg stim)

let explain_crash ?budget ?core j =
  let* cfg =
    match Option.bind (Json.member "core" j) Json.to_str with
    | Some name -> (
        match config_of_name name with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown core config %S" name))
    | None -> (
        match core with
        | Some c -> Ok c
        | None ->
            Error "crash artifact names no core; pass one with --core")
  in
  let* spec = field "seed_spec" Option.some j in
  let* kind_name = field "kind" Json.to_str spec in
  let* kind =
    match
      Array.fold_left
        (fun acc k ->
          match acc with
          | Some _ -> acc
          | None -> if Seed.kind_name k = kind_name then Some k else None)
        None Seed.all_kinds
    with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown trigger kind %S" kind_name)
  in
  let* trigger_entropy = field "trigger_entropy" Json.to_int spec in
  let* window_entropy = field "window_entropy" Json.to_int spec in
  let* tighten = field "tighten" Json.to_bool spec in
  let* mask_high = field "mask_high" Json.to_bool spec in
  let seed =
    { Seed.kind; trigger_entropy; window_entropy; tighten; mask_high }
  in
  let style =
    match Option.bind (Json.member "style" j) Json.to_str with
    | Some "random" -> `Random
    | _ -> `Derived
  in
  let mode =
    match
      Option.bind
        (Option.bind (Json.member "taint_mode" j) Json.to_str)
        mode_of_name
    with
    | Some m -> m
    | None -> Policy.Diffift
  in
  let* secret =
    match Json.member "secret" j with
    | Some arr -> Ok (Array.of_list (int_list arr))
    | None -> Error "crash artifact carries no secret"
  in
  (* Best-effort reproduction of the crashed iteration's fresh-seed path:
     generate → evaluate → reduce → complete, as the campaign loop would
     have.  Corpus-mutation iterations are not reproducible from the seed
     alone. *)
  let tc = Trigger_gen.generate ~style cfg seed in
  let tc =
    if Trigger_opt.evaluate cfg tc then fst (Trigger_opt.reduce cfg tc)
    else tc
  in
  let completed = Window_gen.complete cfg tc in
  Ok (explain ?budget ~mode cfg (Packet.stimulus ~secret completed))
