open Dvz_isa
open Dvz_soc
module Core = Dvz_uarch.Core

type layout = {
  lo_bases : (string * int) list;
  lo_entry : int;
  lo_insns : (int * Insn.t) list;
}

(* Relocation bases are 1 KiB aligned: that preserves predictor indices for
   every power-of-two index function up to 256 entries (BHT/BTB strides),
   which is what keeps aligned training aligned after migration. *)
let align = 0x400

let region_base = 0x2000 (* the two free pages between swapMem and the
                            dedicated region *)
let region_end = 0x4000

let trampoline_words = 8

let migrate tc =
  let packets =
    tc.Packet.window_trainings @ tc.Packet.trigger_trainings
    @ [ tc.Packet.transient ]
  in
  let next_base = ref region_base in
  let alloc n_words =
    let base = !next_base in
    let size = 4 * (n_words + trampoline_words) in
    next_base := (base + size + align - 1) / align * align;
    if !next_base > region_end then
      failwith "Migrate: packets exceed the flat-memory region";
    base
  in
  let placed =
    List.map
      (fun (p : Packet.t) -> (p, alloc (List.length p.Packet.insns)))
      packets
  in
  let bases = List.map (fun (p, b) -> (p.Packet.name, b)) placed in
  let rec stitch acc = function
    | [] -> acc
    | (p, base) :: rest ->
        let next_entry =
          match rest with (_, b) :: _ -> Some b | [] -> None
        in
        let is_last = rest = [] in
        let jump_to_next addr =
          match next_entry with
          | Some target -> Insn.Jal (Reg.zero, target - addr)
          | None -> Insn.Ebreak
        in
        (* Packet body: sequence-terminating ebreaks become jumps to the
           next packet (the migrated replacement for the trap-handler
           swap); the final packet keeps them. *)
        let body =
          List.mapi
            (fun i insn ->
              let addr = base + (4 * i) in
              match insn with
              | Insn.Ebreak when not is_last -> (addr, jump_to_next addr)
              | insn -> (addr, insn))
            p.Packet.insns
        in
        (* Trampoline: control flow that used to land on swapMem's ebreak
           padding (taken training branches, trained jumps) lands on jumps
           to the next packet instead. *)
        let body_len = List.length p.Packet.insns in
        let tramp =
          List.init trampoline_words (fun i ->
              let addr = base + (4 * (body_len + i)) in
              (addr, jump_to_next addr))
        in
        stitch (acc @ body @ tramp) rest
  in
  let insns = stitch [] placed in
  { lo_bases = bases;
    lo_entry = (match placed with (_, b) :: _ -> b | [] -> region_base);
    lo_insns = insns }

let render_assembly layout =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, base) ->
      Buffer.add_string buf (Printf.sprintf "# %s at 0x%04x\n" name base))
    layout.lo_bases;
  Buffer.add_string buf (Printf.sprintf "# entry: 0x%04x\n" layout.lo_entry);
  List.iter
    (fun (addr, insn) ->
      Buffer.add_string buf
        (Printf.sprintf "%04x: %s\n" addr (Insn.to_string insn)))
    layout.lo_insns;
  Buffer.contents buf

let runs_on_flat_memory cfg ~secret tc =
  let layout = migrate tc in
  (* Deliver the migrated program through st_data (dword writes over the
     flat region) and enter it with a single trampoline blob. *)
  let insn_words = List.map (fun (a, i) -> (a, Encode.encode i)) layout.lo_insns in
  let word_at addr =
    match List.assoc_opt addr insn_words with
    | Some w -> w
    | None -> Encode.encode Insn.Ebreak
  in
  let dwords =
    let addrs = List.sort_uniq compare (List.map fst insn_words) in
    let dword_addrs = List.sort_uniq compare (List.map (fun a -> a land lnot 7) addrs) in
    List.map
      (fun a -> (a, word_at a lor (word_at (a + 4) lsl 32)))
      dword_addrs
  in
  let entry_blob =
    { Swapmem.name = "migrated-entry";
      words = [| Encode.encode (Insn.Jal (Reg.zero, layout.lo_entry - Layout.swap_base)) |];
      is_transient = true }
  in
  let stim =
    { Core.st_swapmem = Swapmem.create ~blobs:[ entry_blob ] ~schedule:[ 0 ];
      (* Permission flips are swap-time actions; the migrated flow runs with
         the training-time permissions (the paper's manual-stitching
         caveat). *)
      st_tighten_secret = false;
      st_secret = secret;
      st_data = tc.Packet.data @ dwords;
      st_perms = tc.Packet.perms;
      st_max_slots = 4000 }
  in
  let core = Core.create cfg stim in
  ignore (Core.run core);
  (* The trigger keeps its packet-relative offset; recompute its migrated
     address. *)
  let transient_base = List.assoc tc.Packet.transient.Packet.name layout.lo_bases in
  let trigger = transient_base + (tc.Packet.trigger_addr - Layout.swap_base) in
  List.exists
    (fun (w : Core.window_record) ->
      w.Core.wr_trigger_pc = trigger
      && w.Core.wr_enqueued > 0
      && Trigger_gen.expected_window tc.Packet.seed w.Core.wr_kind)
    (Core.windows core)
