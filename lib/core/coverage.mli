(** The taint coverage matrix (§4.2.2).

    Per simulated slot, the number of tainted state elements within each
    module is a coverage point [(module, count)]; a point is covered once
    any slot of any run exhibits it.  The metric is local (per-module) and
    position-insensitive (two different tainted cache slots with the same
    per-module count map to the same point), exactly the two properties the
    paper calls out. *)

type t

val create : unit -> t

val observe : t -> Dvz_uarch.Dualcore.log_entry list -> int
(** Feeds one run's taint log (transient-window slots only, per §4.2.2);
    returns the number of newly covered points. *)

val observe_result : t -> Dvz_uarch.Dualcore.result -> int

val merge : t -> t -> int
(** [merge t shard] adds every point of [shard] to [t] and returns the
    number that was fresh.  A point set observed into per-run shards and
    merged equals the same runs observed sequentially into one matrix —
    both deduplicate on the point itself — which is what lets the batch
    fold account coverage identically to the sequential loop while the
    hashing happens in parallel.  [shard] is not modified. *)

val points : t -> int
(** Total covered points — the y-axis of Figure 7. *)

val copy : t -> t

val to_list : t -> (string * int) list
(** The covered points, sorted — a stable form for checkpointing. *)

val of_list : (string * int) list -> t
(** Rebuilds a matrix from {!to_list} output. *)
