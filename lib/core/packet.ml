open Dvz_isa
open Dvz_soc

type role = Trigger_training | Window_training | Transient

type t = {
  name : string;
  role : role;
  insns : Insn.t list;
  training_total : int;
  training_effective : int;
}

let make ~name ~role ?(training_total = 0) ?(training_effective = 0) insns =
  { name; role; insns; training_total; training_effective }

let to_blob p =
  { Swapmem.name = p.name;
    words = Array.of_list (List.map Encode.encode p.insns);
    is_transient = (p.role = Transient) }

type testcase = {
  seed : Seed.t;
  transient : t;
  trigger_trainings : t list;
  window_trainings : t list;
  trigger_addr : int;
  window_addr : int;
  window_words : int;
  data : (int * int) list;
  perms : (int * Perm.t) list;
  tighten : bool;
  gadget_tags : string list;
}

let stimulus ?(max_slots = 3000) ~secret tc =
  let packets =
    tc.window_trainings @ tc.trigger_trainings @ [ tc.transient ]
  in
  let blobs = List.map to_blob packets in
  let schedule = List.mapi (fun i _ -> i) blobs in
  { Dvz_uarch.Core.st_swapmem = Swapmem.create ~blobs ~schedule;
    st_tighten_secret = tc.tighten;
    st_secret = secret;
    st_data = tc.data;
    st_perms = tc.perms;
    st_max_slots = max_slots }

let training_overhead tc =
  List.fold_left
    (fun (total, eff) p -> (total + p.training_total, eff + p.training_effective))
    (0, 0)
    (tc.trigger_trainings @ tc.window_trainings)

let with_trigger_trainings tc trainings =
  { tc with trigger_trainings = trainings }
