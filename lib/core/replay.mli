(** Re-render a saved JSONL campaign event log.

    A campaign run with [--telemetry FILE] leaves a complete structured
    record of the run; this module reconstructs the end-of-run human
    summary ({!Report.summary}-identical text) from the event log alone,
    so saved runs stay inspectable after the fact — the [dejavuzz
    replay-log] subcommand. *)

val summary : Dvz_obs.Json.t list -> (string, string) result
(** Rebuilds the summary from parsed events.  Requires one
    [campaign_end] record (the last one wins, so logs holding several
    sequential campaigns replay the final one) and uses every [finding]
    record preceding it.  When the log also holds the campaign's
    [campaign_start] record, the Table-5 classification block the CLI
    prints after the summary is appended as well.  Errors name the
    missing piece. *)

val of_string : string -> (string, string) result
(** Parses JSONL text and applies {!summary}. *)

val of_file : string -> (string, string) result
