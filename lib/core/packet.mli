(** Instruction packets and their assembly into swapMem stimuli.

    Three packet roles mirror §4.1/§4.2: {e trigger training} packets train
    the predictor state needed to open the window, {e window training}
    packets warm memory-related state (e.g. the secret into the data cache),
    and the single {e transient} packet carries the trigger and the window
    section.  Each packet is an isolated instruction sequence loaded alone
    into the swappable region, which is precisely what lets the training
    reduction strategy drop packets independently. *)

type role = Trigger_training | Window_training | Transient

type t = {
  name : string;
  role : role;
  insns : Dvz_isa.Insn.t list;  (** placed from {!Dvz_soc.Layout.swap_base} *)
  training_total : int;         (** training instructions incl. padding nops *)
  training_effective : int;     (** excluding nops — the ETO numerator *)
}

val make :
  name:string -> role:role -> ?training_total:int -> ?training_effective:int ->
  Dvz_isa.Insn.t list -> t
(** Training counts default to 0 (right for transient packets). *)

val to_blob : t -> Dvz_soc.Swapmem.blob

(** A complete test case: the packets plus the memory environment. *)
type testcase = {
  seed : Seed.t;
  transient : t;
  trigger_trainings : t list;
  window_trainings : t list;
  trigger_addr : int;           (** absolute address of the trigger insn *)
  window_addr : int;            (** absolute address of the window section *)
  window_words : int;           (** capacity of the window section *)
  data : (int * int) list;      (** dword initialisation *)
  perms : (int * Dvz_soc.Perm.t) list;
  tighten : bool;
  gadget_tags : string list;    (** window-payload gadget labels (Phase 2) *)
}

val stimulus : ?max_slots:int -> secret:int array -> testcase -> Dvz_uarch.Core.stimulus
(** Builds the runnable stimulus: schedule = window trainings, then trigger
    trainings, then the transient packet (§4.2.1). *)

val training_overhead : testcase -> int * int
(** [(total, effective)] training-instruction counts over all training
    packets — the TO/ETO columns of Table 3. *)

val with_trigger_trainings : testcase -> t list -> testcase
