module Rng = Dvz_util.Rng
module Clock = Dvz_obs.Clock
module Metrics = Dvz_obs.Metrics
module Profile = Dvz_obs.Profile
module Fault = Dvz_resilience.Fault

(* Armed-guarded so the disarmed cost is one atomic load and no closure
   allocation (same discipline as the provenance hooks). *)
let profiled name f = if Profile.armed () then Profile.wrap name f else f ()

type crash = {
  cr_iteration : int;
  cr_seed : Seed.t option;
  cr_exn : string;
  cr_backtrace : string;
}

type status = [ `Ok | `Crashed | `Timeout ]

type outcome = {
  oc_iteration : int;
  oc_seed_kind : Seed.trigger_kind option;
  oc_triggered : bool;
  oc_testcase : Packet.testcase option;
  oc_completed : Packet.testcase option;
  oc_analysis : Oracle.analysis option;
  oc_coverage : Coverage.t option;
  oc_status : status;
  oc_crash : crash option;
  oc_fired : Fault.fault list;
  oc_cycles : int;
  oc_p1 : float;
  oc_p2 : float;
  oc_p3 : float;
}

type ctx = {
  cx_cfg : Dvz_uarch.Config.t;
  cx_style : [ `Derived | `Random ];
  cx_taint_mode : Dvz_ift.Policy.mode;
  cx_secret : int array;
  cx_fault_plan : Fault.plan;
  cx_budget : Dvz_uarch.Dualcore.budget option;
  cx_clock : Clock.t;
  cx_domain_iters : Metrics.counter array;
}

let execute cx (plan : Scheduler.plan) =
  let it = plan.Scheduler.pl_iteration in
  let irng = plan.Scheduler.pl_rng in
  let clk = cx.cx_clock in
  (if Array.length cx.cx_domain_iters > 0 then begin
     (* The array is sized from the campaign's effective lane count and
        [Parallel.map] never hands out indices beyond it, so an
        out-of-range index is a wiring bug — assert instead of silently
        folding high slots into the last counter. *)
     let w = Dvz_util.Parallel.worker_index () in
     assert (w < Array.length cx.cx_domain_iters);
     Metrics.incr cx.cx_domain_iters.(w)
   end);
  (* Fault arming is domain-local (Domain.DLS), so each worker arms and
     drains its own plan's faults without touching its siblings'. *)
  Fault.arm ~iteration:it cx.cx_fault_plan;
  let iter_seed = ref None in
  let seed_kind = ref None in
  let p1 = ref 0.0 and p2 = ref 0.0 and p3 = ref 0.0 in
  let triggered = ref false in
  let testcase = ref None in
  let completed = ref None in
  let analysis = ref None in
  let shard = ref None in
  let cycles = ref 0 in
  let status = ref `Ok in
  let crash = ref None in
  let body () =
    (* Phase 1 — realise the scheduled pick: mutate a corpus entry's
       window, or generate, evaluate and reduce a fresh trigger. *)
    let t0 = Clock.now clk in
    let phase1 =
      profiled "executor/phase1" (fun () ->
          match plan.Scheduler.pl_pick with
          | Scheduler.Fresh ->
              let seed = Seed.random irng in
              iter_seed := Some seed;
              seed_kind := Some seed.Seed.kind;
              let tc = Trigger_gen.generate ~style:cx.cx_style cx.cx_cfg seed in
              if Trigger_opt.evaluate cx.cx_cfg tc then begin
                let reduced, _ = Trigger_opt.reduce cx.cx_cfg tc in
                Some reduced
              end
              else None
          | Scheduler.Mutate tc ->
              let seed = Seed.mutate_window irng tc.Packet.seed in
              iter_seed := Some seed;
              seed_kind := Some seed.Seed.kind;
              Some { tc with Packet.seed })
    in
    p1 := Clock.now clk -. t0;
    match phase1 with
    | None -> ()
    | Some tc ->
        triggered := true;
        testcase := Some tc;
        (* Phase 2 — complete the transient window with encoding gadgets. *)
        let t1 = Clock.now clk in
        let comp =
          profiled "executor/phase2" (fun () ->
              Window_gen.complete cx.cx_cfg tc)
        in
        completed := Some comp;
        p2 := Clock.now clk -. t1;
        (* Phase 3 — dual-DUT simulation, coverage, oracles. *)
        let t2 = Clock.now clk in
        let a =
          profiled "executor/phase3" (fun () ->
              (* Keep_last 8192 never truncates a real run (stimuli cap
                 at 3000 slots); it only bounds the logs of pathological
                 or hung simulations over a long campaign. *)
              Oracle.analyze ~mode:cx.cx_taint_mode
                ~log_bound:(Dvz_ift.Taintlog.Keep_last 8192)
                ?budget:cx.cx_budget cx.cx_cfg ~secret:cx.cx_secret comp)
        in
        analysis := Some a;
        p3 := Clock.now clk -. t2;
        cycles :=
          a.Oracle.a_result.Dvz_uarch.Dualcore.r_cycles_a
          + a.Oracle.a_result.Dvz_uarch.Dualcore.r_cycles_b;
        if a.Oracle.a_timed_out then status := `Timeout
        else begin
          (* Coverage is hashed into a private per-iteration shard; the
             orchestrator folds shards into the campaign matrix in plan
             order, so the fresh-point accounting is identical to the
             sequential loop's while the hashing itself parallelises. *)
          let cov = Coverage.create () in
          ignore (Coverage.observe_result cov a.Oracle.a_result);
          shard := Some cov
        end
  in
  (try body () with
  | Fault.Killed _ as e ->
      (* An injected kill models the whole process dying: clean up the
         ambient fault state and let it rip through every layer. *)
      let bt = Printexc.get_raw_backtrace () in
      ignore (Fault.drain_fired ());
      Fault.disarm ();
      Printexc.raise_with_backtrace e bt
  | e ->
      let bt = Printexc.get_raw_backtrace () in
      status := `Crashed;
      crash :=
        Some
          { cr_iteration = it;
            cr_seed = !iter_seed;
            cr_exn = Printexc.to_string e;
            cr_backtrace = Printexc.raw_backtrace_to_string bt });
  let fired = Fault.drain_fired () in
  Fault.disarm ();
  { oc_iteration = it;
    oc_seed_kind = !seed_kind;
    oc_triggered = !triggered;
    oc_testcase = !testcase;
    oc_completed = !completed;
    oc_analysis = !analysis;
    oc_coverage = !shard;
    oc_status = !status;
    oc_crash = !crash;
    oc_fired = fired;
    oc_cycles = !cycles;
    oc_p1 = !p1;
    oc_p2 = !p2;
    oc_p3 = !p3 }
