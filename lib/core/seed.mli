(** Fuzzing seeds.

    A seed is the paper's §5 notion: the configuration of the trigger
    instruction and the transient window, plus entropy for the random
    instruction generator.  Phase 2's mutation loop regenerates only the
    window section, which corresponds to replacing [window_entropy]. *)

(** The eight trigger classes of Table 3. *)
type trigger_kind =
  | T_access_fault
  | T_page_fault
  | T_misalign
  | T_illegal
  | T_mem_disamb
  | T_branch
  | T_jump
  | T_return

val all_kinds : trigger_kind array
val kind_name : trigger_kind -> string

val is_exception : trigger_kind -> bool
(** True for the four architectural-exception classes. *)

val is_misprediction : trigger_kind -> bool

type t = {
  kind : trigger_kind;
  trigger_entropy : int;   (** randomness of the trigger section (Phase 1) *)
  window_entropy : int;    (** randomness of the window payload (Phase 2) *)
  tighten : bool;          (** run the transient packet with the secret page
                               restricted to machine mode (Meltdown-style) *)
  mask_high : bool;        (** mask high address bits in the secret access
                               block to hunt MDS-type bugs (§4.2.1) *)
}

val random : Dvz_util.Rng.t -> t
val random_of_kind : Dvz_util.Rng.t -> trigger_kind -> t

val mutate_window : Dvz_util.Rng.t -> t -> t
(** Fresh window entropy, everything else preserved — the Phase 2 "mutate
    the seed to regenerate the window section" operation. *)

val to_string : t -> string
