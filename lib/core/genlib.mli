(** Shared helpers for the instruction generators. *)

open Dvz_isa

val li : Reg.t -> int -> Insn.t list
(** Materialise a constant in a register (addi, or lui+addi for values that
    need more than 12 bits).  Supports the 32-bit range. *)

val li_high : Reg.t -> tmp:Reg.t -> low:int -> shift:int -> Insn.t list
(** [li_high rd ~tmp ~low ~shift] materialises [low + (1 lsl shift)] —
    the oversized addresses the MDS-style masked secret access uses. *)

val nops : int -> Insn.t list

val pad_to : Insn.t list -> int -> Insn.t list
(** [pad_to insns n] appends nops until the sequence is [n] instructions
    long.  Raises [Invalid_argument] if it is already longer. *)

val random_cond_operands :
  Dvz_util.Rng.t -> Insn.cond -> taken:bool -> int * int
(** Operand values making the comparison resolve to [taken]. *)

val random_arith : Dvz_util.Rng.t -> dst:Reg.t -> srcs:Reg.t list -> Insn.t
(** A random arithmetic instruction writing [dst] from the given sources. *)

val illegal_word : Dvz_util.Rng.t -> int
(** A 32-bit word guaranteed not to decode in the supported subset. *)

val scratch : Reg.t array
(** Registers the generators may clobber freely. *)
