(** Rendering of campaign results: individual findings and the Table 5
    style summary matrix (attack type × transient windows × encoded timing
    components). *)

val finding_to_string : Campaign.finding -> string

val window_group : Seed.trigger_kind -> string
(** Table 5's window-type grouping: "mem-excp", "mispred", "illegal",
    "mem-disamb". *)

val table5 : core_name:string -> Campaign.finding list -> string
(** The discovered-bug summary matrix for one core. *)

val summary : Campaign.stats -> string
(** One-paragraph campaign summary (coverage, findings, first-bug time). *)
