(** Step 1.1 — trigger generation and training derivation (§4.1.1).

    From a seed, generates the trigger section of the transient packet (the
    window section is dummy nops until Phase 2) and derives the trigger
    training packets from the transient-execution information: training
    instructions are nop-aligned to the trigger's address and their control
    flow is adjusted to match the generated transient window (the caller
    address of a return-training call is placed so the pushed return
    address equals the window start, an indirect-jump training's operand is
    set to the window address, branch training operands are computed for
    the opposite outcome).

    [`Random] style implements the DejaVuzz* ablation: swapMem isolation is
    kept but training packets are plain random instruction sequences with
    no alignment or control-flow matching. *)

val window_words : int
(** Size of the dummy window section, in instructions. *)

val generate :
  ?style:[ `Derived | `Random ] ->
  ?force_training:bool ->
  Dvz_uarch.Config.t ->
  Seed.t ->
  Packet.testcase
(** [force_training] restricts generation to window shapes that require
    microarchitectural training (used by the Table 3 bench, which — like
    the paper — excludes mispredictions the default predictor state already
    yields). *)

val expected_window :
  Seed.t -> Dvz_uarch.Effect.window_kind -> bool
(** Whether a recorded window kind matches what the seed meant to trigger. *)

val triggered :
  Packet.testcase -> Dvz_uarch.Core.window_record list -> bool
(** Whether the intended window fired: a window of the expected kind, at
    the intended trigger address, inside the transient packet, with at
    least one transiently enqueued instruction (§4.1.2's RoB-event check). *)
