module Rng = Dvz_util.Rng

type finding = {
  fd_attack : [ `Meltdown | `Spectre ];
  fd_window : Seed.trigger_kind;
  fd_components : Oracle.component list;
  fd_kind : [ `Timing | `Encode ];
  fd_iteration : int;
}

type options = {
  iterations : int;
  coverage_guided : bool;
  style : [ `Derived | `Random ];
  rng_seed : int;
  fresh_seed_prob : float;
  taint_mode : Dvz_ift.Policy.mode;
}

let default_options =
  { iterations = 200; coverage_guided = true; style = `Derived;
    rng_seed = 1; fresh_seed_prob = 0.35;
    taint_mode = Dvz_ift.Policy.Diffift }

type stats = {
  s_options : options;
  s_coverage_curve : int array;
  s_findings : finding list;
  s_first_bug : int option;
  s_final_coverage : int;
  s_triggered : int;
}

let dedup_key f =
  Printf.sprintf "%s/%s/%s/%s"
    (match f.fd_attack with `Meltdown -> "meltdown" | `Spectre -> "spectre")
    (Seed.kind_name f.fd_window)
    (String.concat "," f.fd_components)
    (match f.fd_kind with `Timing -> "timing" | `Encode -> "encode")

let findings_of_analysis ~iteration seed (a : Oracle.analysis) =
  match a.Oracle.a_attack with
  | None -> []
  | Some attack ->
      List.map
        (fun leak ->
          match leak with
          | Oracle.Timing { components; _ } ->
              { fd_attack = attack; fd_window = seed.Seed.kind;
                fd_components = components; fd_kind = `Timing;
                fd_iteration = iteration }
          | Oracle.Encode { components; _ } ->
              { fd_attack = attack; fd_window = seed.Seed.kind;
                fd_components = components; fd_kind = `Encode;
                fd_iteration = iteration })
        a.Oracle.a_leaks

let run cfg options =
  let rng = Rng.create options.rng_seed in
  let secret =
    Array.init Dvz_soc.Layout.secret_dwords (fun _ -> Rng.int rng 0xFFFF_FFFF)
  in
  let coverage = Coverage.create () in
  let curve = Array.make options.iterations 0 in
  let corpus : Packet.testcase list ref = ref [] in
  let seen = Hashtbl.create 32 in
  let findings = ref [] in
  let first_bug = ref None in
  let triggered = ref 0 in
  for it = 0 to options.iterations - 1 do
    (* Seed selection: mutate a corpus entry's window, or start fresh. *)
    let phase1 =
      if !corpus = [] || Rng.chance rng options.fresh_seed_prob then begin
        let seed = Seed.random rng in
        let tc = Trigger_gen.generate ~style:options.style cfg seed in
        if Trigger_opt.evaluate cfg tc then begin
          let reduced, _ = Trigger_opt.reduce cfg tc in
          Some reduced
        end
        else None
      end
      else begin
        let tc = Rng.choose_list rng !corpus in
        let seed = Seed.mutate_window rng tc.Packet.seed in
        Some { tc with Packet.seed = seed }
      end
    in
    (match phase1 with
    | None -> ()
    | Some tc ->
        incr triggered;
        let completed = Window_gen.complete cfg tc in
        let analysis =
          Oracle.analyze ~mode:options.taint_mode cfg ~secret completed
        in
        let fresh =
          Coverage.observe_result coverage analysis.Oracle.a_result
        in
        (* Corpus policy is where the DejaVuzz- ablation differs: the
           guided fuzzer accumulates every coverage-increasing seed and
           keeps mutating all of them; the blind variant only carries the
           current seed forward (§6.3: "randomly updates the secret
           encoding block or regenerates a new transient window for each
           round"). *)
        if options.coverage_guided then begin
          if fresh > 0 then corpus := tc :: !corpus;
          if List.length !corpus > 64 then
            corpus := List.filteri (fun i _ -> i < 64) !corpus
        end
        else corpus := [ tc ];
        List.iter
          (fun f ->
            let key = dedup_key f in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              findings := f :: !findings;
              if !first_bug = None then first_bug := Some it
            end)
          (findings_of_analysis ~iteration:it tc.Packet.seed analysis));
    curve.(it) <- Coverage.points coverage
  done;
  { s_options = options;
    s_coverage_curve = curve;
    s_findings = List.rev !findings;
    s_first_bug = !first_bug;
    s_final_coverage = Coverage.points coverage;
    s_triggered = !triggered }
