module Rng = Dvz_util.Rng
module Clock = Dvz_obs.Clock
module Metrics = Dvz_obs.Metrics
module Events = Dvz_obs.Events
module Json = Dvz_obs.Json
module Profile = Dvz_obs.Profile
module Fault = Dvz_resilience.Fault
module Snapshot = Dvz_resilience.Snapshot

let profiled name f = if Profile.armed () then Profile.wrap name f else f ()

let m_crashes =
  Metrics.counter Metrics.default
    ~help:"Campaign iterations that crashed the harness and were isolated"
    "dvz_harness_crashes_total"

type finding = {
  fd_attack : [ `Meltdown | `Spectre ];
  fd_window : Seed.trigger_kind;
  fd_components : Oracle.component list;
  fd_kind : [ `Timing | `Encode ];
  fd_iteration : int;
  fd_source : string option;
}

type options = {
  iterations : int;
  coverage_guided : bool;
  style : [ `Derived | `Random ];
  rng_seed : int;
  fresh_seed_prob : float;
  taint_mode : Dvz_ift.Policy.mode;
  corpus_cap : int;
  batch : int;
}

let default_options =
  { iterations = 200; coverage_guided = true; style = `Derived;
    rng_seed = 1; fresh_seed_prob = 0.35;
    taint_mode = Dvz_ift.Policy.Diffift;
    corpus_cap = 64; batch = 1 }

(* Live status snapshot published by the orchestrator's fold after every
   iteration: one immutable record swapped into an Atomic, so the server
   thread (or any other observer) reads a consistent view without the
   hot loop ever taking a lock. *)
type progress = {
  pg_core : string;
  pg_phase : string;  (* "fuzzing" | "finished" *)
  pg_iteration : int;  (* iterations folded so far *)
  pg_total : int;
  pg_findings : int;
  pg_triggered : int;
  pg_coverage : int;
  pg_corpus_size : int;
  pg_top_rewards : int list;  (* highest corpus rewards, descending *)
  pg_crashes : int;
  pg_timeouts : int;
  pg_sim_cycles : int;
  pg_batches : int;
  pg_jobs : int;  (* requested via [run ~jobs] *)
  pg_jobs_effective : int;  (* lanes actually used (clamped to hardware) *)
  pg_domain_iters : int array;  (* per worker domain, 0 = orchestrator *)
  pg_elapsed_s : float;
  pg_eta_s : float option;
}

type board = progress option Atomic.t

let new_board () : board = Atomic.make None
let board_read (b : board) = Atomic.get b

let progress_json p =
  Json.Obj
    [ ("core", Json.Str p.pg_core);
      ("phase", Json.Str p.pg_phase);
      ("iteration", Json.Int p.pg_iteration);
      ("total", Json.Int p.pg_total);
      ("findings", Json.Int p.pg_findings);
      ("triggered", Json.Int p.pg_triggered);
      ("coverage", Json.Int p.pg_coverage);
      ("corpus_size", Json.Int p.pg_corpus_size);
      ( "top_rewards",
        Json.Arr (List.map (fun r -> Json.Int r) p.pg_top_rewards) );
      ("harness_crashes", Json.Int p.pg_crashes);
      ("watchdog_timeouts", Json.Int p.pg_timeouts);
      ("sim_cycles", Json.Int p.pg_sim_cycles);
      ("batches", Json.Int p.pg_batches);
      ("jobs", Json.Int p.pg_jobs);
      ("jobs_effective", Json.Int p.pg_jobs_effective);
      ( "domain_iterations",
        Json.Arr
          (Array.to_list (Array.map (fun n -> Json.Int n) p.pg_domain_iters))
      );
      ("elapsed_s", Json.Float p.pg_elapsed_s);
      ( "eta_s",
        match p.pg_eta_s with None -> Json.Null | Some s -> Json.Float s ) ]

type telemetry = {
  t_events : Events.sink;
  t_metrics : Metrics.t;
  t_progress_every : int;
  t_progress : string -> unit;
  t_explain_dir : string option;
  t_board : board option;
}

let quiet =
  { t_events = Events.null; t_metrics = Metrics.default;
    t_progress_every = 0; t_progress = ignore; t_explain_dir = None;
    t_board = None }

type crash = Executor.crash = {
  cr_iteration : int;
  cr_seed : Seed.t option;
  cr_exn : string;
  cr_backtrace : string;
}

type stats = {
  s_options : options;
  s_coverage_curve : int array;
  s_findings : finding list;
  s_first_bug : int option;
  s_final_coverage : int;
  s_triggered : int;
  s_crashes : crash list;
  s_timeouts : int;
}

type resilience = {
  rz_fault_plan : Fault.plan;
  rz_budget : Dvz_uarch.Dualcore.budget option;
  rz_checkpoint : string option;
  rz_checkpoint_every : int;
  rz_checkpoint_keep : bool;
  rz_resume : string option;
  rz_crash_dir : string option;
}

let no_resilience =
  { rz_fault_plan = []; rz_budget = None; rz_checkpoint = None;
    rz_checkpoint_every = 50; rz_checkpoint_keep = false; rz_resume = None;
    rz_crash_dir = None }

exception
  Bad_checkpoint of { bc_path : string; bc_reason : string; bc_advice : string }

let bad_checkpoint_message ~path ~reason ~advice =
  Printf.sprintf "cannot resume from %s: %s (%s)" path reason advice

let () =
  Printexc.register_printer (function
    | Bad_checkpoint { bc_path; bc_reason; bc_advice } ->
        Some
          (bad_checkpoint_message ~path:bc_path ~reason:bc_reason
             ~advice:bc_advice)
    | _ -> None)

let with_suffix rz suffix =
  let app = Option.map (fun p -> p ^ "." ^ suffix) in
  { rz with
    rz_checkpoint = app rz.rz_checkpoint;
    rz_resume = app rz.rz_resume }

(* Checkpoint payload: the orchestrator's entire fold state, as plain
   data, Marshal'd behind {!Snapshot}'s validated header.  Bump
   [checkpoint_version] whenever this layout (or anything reachable from
   it: Seed.t, Packet.testcase, Corpus.entry, options, finding) changes
   shape. *)
type checkpoint = {
  cp_core : string;
  cp_options : options;
  cp_next_iteration : int;
  cp_batch_cursor : int;  (** batches completed; checkpoints land only
                              on batch boundaries *)
  cp_rng_state : int64;
  cp_secret : int array;
  cp_coverage : (string * int) list;
  cp_curve : int array;
  cp_corpus : Corpus.entry list;
  cp_seen : string list;
  cp_findings : finding list;  (* reverse-chronological, as accumulated *)
  cp_n_findings : int;
  cp_first_bug : int option;
  cp_triggered : int;
  cp_sim_cycles : int;
  cp_crashes : crash list;  (* reverse-chronological *)
  cp_timeouts : int;
}

let checkpoint_magic = "dejavuzz-campaign"

let checkpoint_version = 3
(* v2: finding gained fd_source
   v3: options gained corpus_cap/batch, corpus stores Corpus.entry,
       batch cursor added *)

let save_checkpoint ?(keep_previous = false) ~path (cp : checkpoint) =
  (* [No_sharing] canonicalises the encoding: semantically equal folds
     produce byte-equal checkpoints even when their in-memory sharing
     differs (outcomes that crossed a fleet worker's pipe are fresh
     copies; in-process ones alias each other).  The fleet determinism
     contract cmp(1)s checkpoint bytes, so this matters. *)
  Snapshot.save ~keep_previous ~path ~magic:checkpoint_magic
    ~version:checkpoint_version
    (Marshal.to_string cp [ Marshal.No_sharing ])

(* [Error (reason, advice)] — the pair [run] packs into
   {!Bad_checkpoint}, and the fleet coordinator's fallback logic
   classifies on. *)
let load_checkpoint ~path : (checkpoint, string * string) result =
  match Snapshot.load_checked ~path ~magic:checkpoint_magic with
  | Error e -> Error (Snapshot.describe e, Snapshot.advice e)
  | Ok (v, payload) ->
      if v <> checkpoint_version then
        Error
          ( Printf.sprintf
              "checkpoint version %d unsupported (this build reads v%d)" v
              checkpoint_version,
            "the checkpoint was written by an incompatible build — rerun it \
             to completion there, or delete the file to start fresh" )
      else (
        match (Marshal.from_string payload 0 : checkpoint) with
        | cp -> Ok cp
        | exception _ ->
            Error
              ( "checkpoint payload does not unmarshal",
                "the payload bytes are damaged despite a valid header — \
                 restore the .prev rotation if one exists, or delete the \
                 file to start fresh" ))

(* Alongside the human-readable [seed] string (which truncates the
   entropies), record everything [Explain.explain_crash] needs to rebuild
   the testcase: the structured seed, the core, the secret and the
   campaign's generation settings. *)
let write_crash_artifact ~core ~options ~secret dir (c : crash) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "crash-%04d.json" c.cr_iteration) in
  let json =
    Json.Obj
      [ ("iteration", Json.Int c.cr_iteration);
        ( "seed",
          match c.cr_seed with
          | None -> Json.Null
          | Some s -> Json.Str (Seed.to_string s) );
        ( "seed_spec",
          match c.cr_seed with
          | None -> Json.Null
          | Some s ->
              Json.Obj
                [ ("kind", Json.Str (Seed.kind_name s.Seed.kind));
                  ("trigger_entropy", Json.Int s.Seed.trigger_entropy);
                  ("window_entropy", Json.Int s.Seed.window_entropy);
                  ("tighten", Json.Bool s.Seed.tighten);
                  ("mask_high", Json.Bool s.Seed.mask_high) ] );
        ("core", Json.Str core);
        ( "secret",
          Json.Arr (Array.to_list (Array.map (fun v -> Json.Int v) secret)) );
        ( "taint_mode",
          Json.Str (Dvz_ift.Policy.mode_name options.taint_mode) );
        ( "style",
          Json.Str
            (match options.style with `Derived -> "derived" | `Random -> "random")
        );
        ("exn", Json.Str c.cr_exn);
        ("backtrace", Json.Str c.cr_backtrace) ]
  in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

let dedup_key f =
  Printf.sprintf "%s/%s/%s/%s"
    (match f.fd_attack with `Meltdown -> "meltdown" | `Spectre -> "spectre")
    (Seed.kind_name f.fd_window)
    (String.concat "," f.fd_components)
    (match f.fd_kind with `Timing -> "timing" | `Encode -> "encode")

let findings_of_analysis ~iteration seed (a : Oracle.analysis) =
  match a.Oracle.a_attack with
  | None -> []
  | Some attack ->
      List.map
        (fun leak ->
          match leak with
          | Oracle.Timing { components; _ } ->
              { fd_attack = attack; fd_window = seed.Seed.kind;
                fd_components = components; fd_kind = `Timing;
                fd_iteration = iteration; fd_source = None }
          | Oracle.Encode { components; _ } ->
              { fd_attack = attack; fd_window = seed.Seed.kind;
                fd_components = components; fd_kind = `Encode;
                fd_iteration = iteration; fd_source = None })
        a.Oracle.a_leaks

let attack_name = function `Meltdown -> "meltdown" | `Spectre -> "spectre"
let leak_kind_name = function `Timing -> "timing" | `Encode -> "encode"
let style_name = function `Derived -> "derived" | `Random -> "random"

let taint_mode_name = Dvz_ift.Policy.mode_name

let finding_event f =
  [ ("type", Json.Str "finding");
    ("iteration", Json.Int f.fd_iteration);
    ("attack", Json.Str (attack_name f.fd_attack));
    ("window", Json.Str (Seed.kind_name f.fd_window));
    ("kind", Json.Str (leak_kind_name f.fd_kind));
    ("components", Json.Arr (List.map (fun c -> Json.Str c) f.fd_components)) ]
  (* Appended only when attributed, keeping unattributed event lines
     byte-identical to earlier releases. *)
  @ match f.fd_source with
    | None -> []
    | Some s -> [ ("source", Json.Str s) ]

(* The orchestrator: snapshot the corpus, schedule a batch of plans off
   the master RNG, execute them (sequentially or across domains — the
   executors share no mutable state), then fold the outcomes back in
   plan-index order.  Every observable side effect — coverage
   accounting, corpus admission, finding dedup, events, checkpoints —
   happens in the fold, on the orchestrator's domain, in iteration
   order, which is why [jobs] changes wall-clock time and nothing
   else. *)
let run ?(telemetry = quiet) ?(resilience = no_resilience) ?(jobs = 1)
    ?dispatch ?on_checkpoint cfg options =
  if options.batch < 1 then
    invalid_arg "Campaign.run: options.batch must be at least 1";
  if options.corpus_cap < 1 then
    invalid_arg "Campaign.run: options.corpus_cap must be at least 1";
  if jobs < 1 then invalid_arg "Campaign.run: jobs must be at least 1";
  let tel = telemetry in
  let rz = resilience in
  let clk = Metrics.clock tel.t_metrics in
  let events_on = not (Events.is_null tel.t_events) in
  let m_iters =
    Metrics.counter tel.t_metrics ~help:"Campaign iterations executed"
      "dvz_campaign_iterations_total"
  in
  let m_batches =
    Metrics.counter tel.t_metrics
      ~help:"Campaign batches scheduled, executed and folded"
      "dvz_campaign_batches_total"
  in
  let m_dedup =
    Metrics.counter tel.t_metrics
      ~help:"Findings dropped as duplicates of a known bug class"
      "dvz_campaign_dedup_hits_total"
  in
  let g_corpus =
    Metrics.gauge tel.t_metrics ~help:"Current corpus size"
      "dvz_campaign_corpus_size"
  in
  let g_tput =
    Metrics.gauge tel.t_metrics
      ~help:"Simulated cycles per wall-clock second"
      "dvz_campaign_cycles_per_sec"
  in
  let h_phase1 =
    Metrics.histogram tel.t_metrics
      ~help:"Phase 1 (trigger generation/evaluation/reduction) seconds"
      "dvz_phase1_seconds"
  in
  let h_phase2 =
    Metrics.histogram tel.t_metrics
      ~help:"Phase 2 (window completion) seconds" "dvz_phase2_seconds"
  in
  let h_phase3 =
    Metrics.histogram tel.t_metrics
      ~help:"Phase 3 (dual-DUT simulation + oracles) seconds"
      "dvz_phase3_seconds"
  in
  (* Lanes the dispatcher will actually use: [jobs] clamped to the
     hardware (with a one-time stderr note when clamped).  The per-domain
     counters are sized from it — the executor asserts its worker index in
     range instead of silently folding high slots into the last one. *)
  let jobs_effective = Dvz_util.Parallel.effective_lanes jobs in
  let domain_iters =
    Array.init jobs_effective (fun i ->
        Metrics.counter tel.t_metrics
          ~help:"Campaign iterations executed by one worker domain (0 = orchestrator)"
          (Printf.sprintf "dvz_campaign_iterations_domain_%d" i))
  in
  let t_start = Clock.now clk in
  let resumed =
    match rz.rz_resume with
    | Some path when Sys.file_exists path -> (
        match load_checkpoint ~path with
        | Error (reason, advice) ->
            (* Corruption-class failures (bad header, short payload, CRC,
               unreadable, incompatible layout) are distinguishable from
               "you passed different flags" mismatches below: callers can
               exit with a dedicated code or fall back to the .prev
               rotation. *)
            raise
              (Bad_checkpoint
                 { bc_path = path; bc_reason = reason; bc_advice = advice })
        | Ok cp ->
            if cp.cp_core <> cfg.Dvz_uarch.Config.name then
              invalid_arg
                (Printf.sprintf
                   "Campaign.run: checkpoint %s is for core %s, not %s" path
                   cp.cp_core cfg.Dvz_uarch.Config.name);
            if cp.cp_options <> options then
              invalid_arg
                (Printf.sprintf
                   "Campaign.run: checkpoint %s was written with different \
                    campaign options"
                   path);
            (* Checkpoints land on batch boundaries; a cursor that
               disagrees with the iteration count means the file was
               written by a differently-batched (or corrupted) run. *)
            if
              cp.cp_batch_cursor
              <> (cp.cp_next_iteration + options.batch - 1) / options.batch
            then
              invalid_arg
                (Printf.sprintf
                   "Campaign.run: checkpoint %s has batch cursor %d, \
                    inconsistent with iteration %d at batch size %d"
                   path cp.cp_batch_cursor cp.cp_next_iteration options.batch);
            Some cp)
    | _ -> None
  in
  (* All fold state below either starts fresh or is restored verbatim
     from the checkpoint; nothing else carries state across batches,
     which is what makes kill-and-resume bit-identical. *)
  let rng, secret =
    match resumed with
    | None ->
        let rng = Rng.create options.rng_seed in
        (* Full 32-bit draws: [Rng.int rng 0xFFFF_FFFF] would exclude the
           all-ones dword (exclusive upper bound). *)
        let secret =
          Array.init Dvz_soc.Layout.secret_dwords (fun _ ->
              Rng.next rng land 0xFFFF_FFFF)
        in
        (rng, secret)
    | Some cp -> (Rng.of_state cp.cp_rng_state, Array.copy cp.cp_secret)
  in
  let start_it =
    match resumed with None -> 0 | Some cp -> cp.cp_next_iteration
  in
  let coverage =
    match resumed with
    | None -> Coverage.create ()
    | Some cp -> Coverage.of_list cp.cp_coverage
  in
  let curve = Array.make options.iterations 0 in
  let corpus =
    match resumed with
    | None -> Corpus.create ~cap:options.corpus_cap
    | Some cp -> Corpus.of_entries ~cap:options.corpus_cap cp.cp_corpus
  in
  let seen = Hashtbl.create 32 in
  let sim_cycles = ref 0 in
  let findings = ref [] in
  let n_findings = ref 0 in
  let first_bug = ref None in
  let triggered = ref 0 in
  let crashes = ref [] in
  let timeouts = ref 0 in
  let batch_no =
    ref (match resumed with None -> 0 | Some cp -> cp.cp_batch_cursor)
  in
  (match resumed with
  | None -> ()
  | Some cp ->
      Array.blit cp.cp_curve 0 curve 0
        (min (Array.length cp.cp_curve) (Array.length curve));
      List.iter (fun k -> Hashtbl.replace seen k ()) cp.cp_seen;
      sim_cycles := cp.cp_sim_cycles;
      findings := cp.cp_findings;
      n_findings := cp.cp_n_findings;
      first_bug := cp.cp_first_bug;
      triggered := cp.cp_triggered;
      crashes := cp.cp_crashes;
      timeouts := cp.cp_timeouts);
  let make_checkpoint next_it =
    { cp_core = cfg.Dvz_uarch.Config.name;
      cp_options = options;
      cp_next_iteration = next_it;
      cp_batch_cursor = !batch_no;
      cp_rng_state = Rng.state rng;
      cp_secret = Array.copy secret;
      cp_coverage = Coverage.to_list coverage;
      cp_curve = Array.copy curve;
      cp_corpus = Corpus.entries corpus;
      cp_seen = Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare;
      cp_findings = !findings;
      cp_n_findings = !n_findings;
      cp_first_bug = !first_bug;
      cp_triggered = !triggered;
      cp_sim_cycles = !sim_cycles;
      cp_crashes = !crashes;
      cp_timeouts = !timeouts }
  in
  if events_on then begin
    Events.emit tel.t_events
      [ ("type", Json.Str "campaign_start");
        ("core", Json.Str cfg.Dvz_uarch.Config.name);
        ("iterations", Json.Int options.iterations);
        ("rng_seed", Json.Int options.rng_seed);
        ("coverage_guided", Json.Bool options.coverage_guided);
        ("style", Json.Str (style_name options.style));
        ("fresh_seed_prob", Json.Float options.fresh_seed_prob);
        ("taint_mode", Json.Str (taint_mode_name options.taint_mode)) ];
    match (resumed, rz.rz_resume) with
    | Some _, Some path ->
        Events.emit tel.t_events
          [ ("type", Json.Str "resume");
            ("path", Json.Str path);
            ("iteration", Json.Int start_it) ];
        (* Re-emit checkpointed findings so a resumed run's event log is
           self-contained and [replay-log] reconstructs the full campaign. *)
        List.iter
          (fun f -> Events.emit tel.t_events (finding_event f))
          (List.rev !findings)
    | _ -> ()
  end;
  let ctx =
    profiled "campaign/ctx-build" (fun () ->
        { Executor.cx_cfg = cfg;
          cx_style = options.style;
          cx_taint_mode = options.taint_mode;
          cx_secret = secret;
          cx_fault_plan = rz.rz_fault_plan;
          cx_budget = rz.rz_budget;
          cx_clock = clk;
          cx_domain_iters = domain_iters })
  in
  (* Swap a fresh status snapshot into the board.  Only runs when a
     board is attached (i.e. a status server is watching); it reads the
     real clock and fold state but draws nothing from the RNG and writes
     nothing the campaign reads back, so results are unchanged. *)
  let publish phase it_done =
    match tel.t_board with
    | None -> ()
    | Some board ->
        let elapsed = Float.max 1e-9 (Clock.now clk -. t_start) in
        let rewards =
          Corpus.entries corpus
          |> List.map (fun e -> e.Corpus.en_reward)
          |> List.sort (fun a b -> compare b a)
        in
        let eta =
          if it_done > start_it && it_done < options.iterations then
            Some
              (elapsed
              /. float_of_int (it_done - start_it)
              *. float_of_int (options.iterations - it_done))
          else None
        in
        Atomic.set board
          (Some
             { pg_core = cfg.Dvz_uarch.Config.name;
               pg_phase = phase;
               pg_iteration = it_done;
               pg_total = options.iterations;
               pg_findings = !n_findings;
               pg_triggered = !triggered;
               pg_coverage = Coverage.points coverage;
               pg_corpus_size = Corpus.size corpus;
               pg_top_rewards = List.filteri (fun i _ -> i < 5) rewards;
               pg_crashes = List.length !crashes;
               pg_timeouts = !timeouts;
               pg_sim_cycles = !sim_cycles;
               pg_batches = !batch_no;
               pg_jobs = jobs;
               pg_jobs_effective = jobs_effective;
               pg_domain_iters = Array.map Metrics.counter_value domain_iters;
               pg_elapsed_s = elapsed;
               pg_eta_s = eta })
  in
  (* Fold one outcome into the campaign state — the only place coverage,
     corpus, findings and events are touched.  Called in plan-index
     order regardless of which domain executed the plan. *)
  let fold_outcome (oc : Executor.outcome) =
    let it = oc.Executor.oc_iteration in
    Metrics.incr m_iters;
    if oc.Executor.oc_triggered then incr triggered;
    sim_cycles := !sim_cycles + oc.Executor.oc_cycles;
    if oc.Executor.oc_p1 > 0.0 then Metrics.observe h_phase1 oc.Executor.oc_p1;
    if oc.Executor.oc_p2 > 0.0 then Metrics.observe h_phase2 oc.Executor.oc_p2;
    if oc.Executor.oc_p3 > 0.0 then Metrics.observe h_phase3 oc.Executor.oc_p3;
    let coverage_delta = ref 0 and new_findings = ref 0 in
    (match oc.Executor.oc_status with
    | `Timeout ->
        (* Watchdog verdict: the evidence is partial, so the run
           contributes nothing to coverage, corpus or findings. *)
        incr timeouts;
        if events_on then
          Events.emit tel.t_events
            [ ("type", Json.Str "watchdog_timeout");
              ("iteration", Json.Int it);
              ( "slots",
                Json.Int
                  (match oc.Executor.oc_analysis with
                  | Some a -> a.Oracle.a_result.Dvz_uarch.Dualcore.r_slots
                  | None -> 0) ) ]
    | `Crashed -> (
        match oc.Executor.oc_crash with
        | None -> ()
        | Some crash ->
            crashes := crash :: !crashes;
            Metrics.incr m_crashes;
            (match rz.rz_crash_dir with
            | Some dir ->
                write_crash_artifact ~core:cfg.Dvz_uarch.Config.name ~options
                  ~secret dir crash
            | None -> ());
            if events_on then
              Events.emit tel.t_events
                [ ("type", Json.Str "harness_crash");
                  ("iteration", Json.Int it);
                  ( "seed",
                    match crash.cr_seed with
                    | None -> Json.Null
                    | Some s -> Json.Str (Seed.to_string s) );
                  ("exn", Json.Str crash.cr_exn);
                  ("backtrace", Json.Str crash.cr_backtrace) ])
    | `Ok -> (
        (match oc.Executor.oc_coverage with
        | Some shard -> coverage_delta := Coverage.merge coverage shard
        | None -> ());
        match
          (oc.Executor.oc_testcase, oc.Executor.oc_completed,
           oc.Executor.oc_analysis)
        with
        | Some tc, Some completed, Some analysis ->
            (* Corpus policy is where the DejaVuzz- ablation differs: the
               guided fuzzer accumulates every coverage-increasing seed and
               keeps mutating all of them; the blind variant only carries the
               current seed forward (§6.3: "randomly updates the secret
               encoding block or regenerates a new transient window for each
               round"). *)
            if options.coverage_guided then begin
              if !coverage_delta > 0 then
                Corpus.admit corpus ~birth:it ~reward:!coverage_delta tc
            end
            else Corpus.replace_all corpus ~birth:it tc;
            Metrics.set g_corpus (float_of_int (Corpus.size corpus));
            let fs = findings_of_analysis ~iteration:it tc.Packet.seed analysis in
            let fresh_exists =
              List.exists (fun f -> not (Hashtbl.mem seen (dedup_key f))) fs
            in
            (* Two-pass provenance: only a fresh finding triggers the armed
               replay, and the replay draws nothing from the RNG — resumed
               or explain-less runs stay bit-identical. *)
            let source =
              match tel.t_explain_dir with
              | Some dir when fresh_exists ->
                  let x =
                    Explain.explain ?budget:rz.rz_budget
                      ?attack:(Option.map attack_name analysis.Oracle.a_attack)
                      ~mode:options.taint_mode cfg
                      (Packet.stimulus ~secret completed)
                  in
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  let base =
                    Filename.concat dir (Printf.sprintf "finding-%04d" it)
                  in
                  Out_channel.with_open_text (base ^ ".json") (fun oc ->
                      output_string oc (Json.to_string (Explain.to_json x));
                      output_char oc '\n');
                  Out_channel.with_open_text (base ^ ".txt") (fun oc ->
                      output_string oc (Explain.render_text x));
                  Out_channel.with_open_text (base ^ ".dot") (fun oc ->
                      output_string oc (Explain.render_dot x));
                  if events_on then
                    Events.emit tel.t_events
                      [ ("type", Json.Str "provenance_trace");
                        ("iteration", Json.Int it);
                        ("artifact", Json.Str (base ^ ".json"));
                        ( "source",
                          match Explain.source x with
                          | None -> Json.Null
                          | Some s -> Json.Str s );
                        ("sinks", Json.Int (List.length x.Explain.x_live_sinks));
                        ("edges", Json.Int x.Explain.x_edges_total) ];
                  Explain.source x
              | _ -> None
            in
            List.iter
              (fun f ->
                let key = dedup_key f in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  let f = { f with fd_source = source } in
                  findings := f :: !findings;
                  incr n_findings;
                  incr new_findings;
                  if !first_bug = None then first_bug := Some it;
                  if events_on then Events.emit tel.t_events (finding_event f)
                end
                else Metrics.incr m_dedup)
              fs
        | _ -> ()));
    List.iter
      (fun (f : Fault.fault) ->
        if events_on then
          Events.emit tel.t_events
            [ ("type", Json.Str "fault_injected");
              ("iteration", Json.Int it);
              ("cycle", Json.Int f.Fault.f_cycle);
              ("action", Json.Str (Fault.action_name f.Fault.f_action)) ])
      oc.Executor.oc_fired;
    curve.(it) <- Coverage.points coverage;
    if events_on then
      Events.emit tel.t_events
        [ ("type", Json.Str "iteration");
          ("iteration", Json.Int it);
          ( "seed_kind",
            match oc.Executor.oc_seed_kind with
            | None -> Json.Null
            | Some k -> Json.Str (Seed.kind_name k) );
          ("phase1_triggered", Json.Bool oc.Executor.oc_triggered);
          ("coverage_delta", Json.Int !coverage_delta);
          ("coverage", Json.Int curve.(it));
          ("new_findings", Json.Int !new_findings);
          ("cycles", Json.Int oc.Executor.oc_cycles);
          ( "status",
            Json.Str
              (match oc.Executor.oc_status with
              | `Ok -> "ok"
              | `Crashed -> "crashed"
              | `Timeout -> "timeout") );
          ("phase1_s", Json.Float oc.Executor.oc_p1);
          ("phase2_s", Json.Float oc.Executor.oc_p2);
          ("phase3_s", Json.Float oc.Executor.oc_p3) ];
    if tel.t_progress_every > 0 && (it + 1) mod tel.t_progress_every = 0
    then begin
      let elapsed = Float.max 1e-9 (Clock.now clk -. t_start) in
      let cps = float_of_int !sim_cycles /. elapsed in
      Metrics.set g_tput cps;
      tel.t_progress
        (Printf.sprintf
           "[%d/%d] coverage=%d findings=%d triggered=%d %.0f cycles/s"
           (it + 1) options.iterations curve.(it) !n_findings !triggered cps)
    end;
    publish "fuzzing" (it + 1)
  in
  let b = ref start_it in
  (try
     while !b < options.iterations do
       let count = min options.batch (options.iterations - !b) in
       Metrics.incr m_batches;
       Metrics.with_span tel.t_metrics "dvz_campaign_batch_seconds" (fun () ->
        let snap = Corpus.snapshot corpus in
        let plans =
          profiled "campaign/schedule" (fun () ->
              Scheduler.schedule ~fresh_seed_prob:options.fresh_seed_prob
                ~corpus:snap ~rng ~start:!b ~count)
        in
        (* [jobs] counts total lanes (orchestrator included) and
           [Parallel.map ~domains] now shares that meaning, pre-clamped to
           the hardware above; effective jobs = 1 stays on this domain
           with no spawn overhead.  A [Fault.Killed] raised by any
           executor is re-raised here by [Parallel.map] — lowest iteration
           first — exactly as the sequential loop propagates it.  A
           [dispatch] override (the fleet coordinator) replaces execution
           entirely; as long as it returns one outcome per plan in
           plan-index order, the fold — and therefore every observable
           result — is identical to in-process execution. *)
        let outcomes =
          match dispatch with
          | Some d -> d ctx plans
          | None ->
              if jobs_effective <= 1 || count <= 1 then
                List.map (Executor.execute ctx) plans
              else
                Dvz_util.Parallel.map ~domains:jobs_effective
                  (Executor.execute ctx) plans
        in
        List.iter fold_outcome outcomes);
       let b1 = !b + count in
       incr batch_no;
       (match rz.rz_checkpoint with
       | Some path
         when rz.rz_checkpoint_every > 0
              && b1 / rz.rz_checkpoint_every > !b / rz.rz_checkpoint_every ->
           (* The batch crossed an every-N boundary; at batch = 1 this is
              the old [(it + 1) mod every = 0] cadence. *)
           profiled "campaign/checkpoint" (fun () ->
               save_checkpoint ~keep_previous:rz.rz_checkpoint_keep ~path
                 (make_checkpoint b1));
           if events_on then
             Events.emit tel.t_events
               [ ("type", Json.Str "checkpoint");
                 ("iteration", Json.Int b1);
                 ("path", Json.Str path) ];
           (match on_checkpoint with Some f -> f b1 | None -> ())
       | _ -> ());
       b := b1
     done
   with e ->
     (* An injected kill (or any other abort) unwinds through here; the
        sink's buffered tail is the part of the event log a post-mortem
        needs most, so flush before letting the exception rip. *)
     let bt = Printexc.get_raw_backtrace () in
     Events.flush tel.t_events;
     Printexc.raise_with_backtrace e bt);
  publish "finished" options.iterations;
  let elapsed = Float.max 1e-9 (Clock.now clk -. t_start) in
  Metrics.set g_tput (float_of_int !sim_cycles /. elapsed);
  let final_coverage = Coverage.points coverage in
  if events_on then begin
    Events.emit tel.t_events
      [ ("type", Json.Str "campaign_end");
        ("iterations", Json.Int options.iterations);
        ("triggered", Json.Int !triggered);
        ("coverage", Json.Int final_coverage);
        ("findings", Json.Int !n_findings);
        ( "first_bug",
          match !first_bug with None -> Json.Null | Some i -> Json.Int i );
        ("sim_cycles", Json.Int !sim_cycles);
        ("harness_crashes", Json.Int (List.length !crashes));
        ("watchdog_timeouts", Json.Int !timeouts);
        ("elapsed_s", Json.Float elapsed) ];
    Events.flush tel.t_events
  end;
  { s_options = options;
    s_coverage_curve = curve;
    s_findings = List.rev !findings;
    s_first_bug = !first_bug;
    s_final_coverage = final_coverage;
    s_triggered = !triggered;
    s_crashes = List.rev !crashes;
    s_timeouts = !timeouts }
