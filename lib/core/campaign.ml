module Rng = Dvz_util.Rng
module Clock = Dvz_obs.Clock
module Metrics = Dvz_obs.Metrics
module Events = Dvz_obs.Events
module Json = Dvz_obs.Json

type finding = {
  fd_attack : [ `Meltdown | `Spectre ];
  fd_window : Seed.trigger_kind;
  fd_components : Oracle.component list;
  fd_kind : [ `Timing | `Encode ];
  fd_iteration : int;
}

type options = {
  iterations : int;
  coverage_guided : bool;
  style : [ `Derived | `Random ];
  rng_seed : int;
  fresh_seed_prob : float;
  taint_mode : Dvz_ift.Policy.mode;
}

let default_options =
  { iterations = 200; coverage_guided = true; style = `Derived;
    rng_seed = 1; fresh_seed_prob = 0.35;
    taint_mode = Dvz_ift.Policy.Diffift }

type telemetry = {
  t_events : Events.sink;
  t_metrics : Metrics.t;
  t_progress_every : int;
  t_progress : string -> unit;
}

let quiet =
  { t_events = Events.null; t_metrics = Metrics.default;
    t_progress_every = 0; t_progress = ignore }

type stats = {
  s_options : options;
  s_coverage_curve : int array;
  s_findings : finding list;
  s_first_bug : int option;
  s_final_coverage : int;
  s_triggered : int;
}

let dedup_key f =
  Printf.sprintf "%s/%s/%s/%s"
    (match f.fd_attack with `Meltdown -> "meltdown" | `Spectre -> "spectre")
    (Seed.kind_name f.fd_window)
    (String.concat "," f.fd_components)
    (match f.fd_kind with `Timing -> "timing" | `Encode -> "encode")

let findings_of_analysis ~iteration seed (a : Oracle.analysis) =
  match a.Oracle.a_attack with
  | None -> []
  | Some attack ->
      List.map
        (fun leak ->
          match leak with
          | Oracle.Timing { components; _ } ->
              { fd_attack = attack; fd_window = seed.Seed.kind;
                fd_components = components; fd_kind = `Timing;
                fd_iteration = iteration }
          | Oracle.Encode { components; _ } ->
              { fd_attack = attack; fd_window = seed.Seed.kind;
                fd_components = components; fd_kind = `Encode;
                fd_iteration = iteration })
        a.Oracle.a_leaks

let attack_name = function `Meltdown -> "meltdown" | `Spectre -> "spectre"
let leak_kind_name = function `Timing -> "timing" | `Encode -> "encode"
let style_name = function `Derived -> "derived" | `Random -> "random"

let taint_mode_name = Dvz_ift.Policy.mode_name

let finding_event f =
  [ ("type", Json.Str "finding");
    ("iteration", Json.Int f.fd_iteration);
    ("attack", Json.Str (attack_name f.fd_attack));
    ("window", Json.Str (Seed.kind_name f.fd_window));
    ("kind", Json.Str (leak_kind_name f.fd_kind));
    ("components", Json.Arr (List.map (fun c -> Json.Str c) f.fd_components)) ]

let run ?(telemetry = quiet) cfg options =
  let tel = telemetry in
  let clk = Metrics.clock tel.t_metrics in
  let events_on = not (Events.is_null tel.t_events) in
  let m_iters =
    Metrics.counter tel.t_metrics ~help:"Campaign iterations executed"
      "dvz_campaign_iterations_total"
  in
  let m_dedup =
    Metrics.counter tel.t_metrics
      ~help:"Findings dropped as duplicates of a known bug class"
      "dvz_campaign_dedup_hits_total"
  in
  let g_corpus =
    Metrics.gauge tel.t_metrics ~help:"Current corpus size"
      "dvz_campaign_corpus_size"
  in
  let g_tput =
    Metrics.gauge tel.t_metrics
      ~help:"Simulated cycles per wall-clock second"
      "dvz_campaign_cycles_per_sec"
  in
  let h_phase1 =
    Metrics.histogram tel.t_metrics
      ~help:"Phase 1 (trigger generation/evaluation/reduction) seconds"
      "dvz_phase1_seconds"
  in
  let h_phase2 =
    Metrics.histogram tel.t_metrics
      ~help:"Phase 2 (window completion) seconds" "dvz_phase2_seconds"
  in
  let h_phase3 =
    Metrics.histogram tel.t_metrics
      ~help:"Phase 3 (dual-DUT simulation + oracles) seconds"
      "dvz_phase3_seconds"
  in
  let t_start = Clock.now clk in
  let sim_cycles = ref 0 in
  let rng = Rng.create options.rng_seed in
  let secret =
    (* Full 32-bit draws: [Rng.int rng 0xFFFF_FFFF] would exclude the
       all-ones dword (exclusive upper bound). *)
    Array.init Dvz_soc.Layout.secret_dwords (fun _ ->
        Rng.next rng land 0xFFFF_FFFF)
  in
  let coverage = Coverage.create () in
  let curve = Array.make options.iterations 0 in
  let corpus : Packet.testcase list ref = ref [] in
  let seen = Hashtbl.create 32 in
  let findings = ref [] in
  let n_findings = ref 0 in
  let first_bug = ref None in
  let triggered = ref 0 in
  if events_on then
    Events.emit tel.t_events
      [ ("type", Json.Str "campaign_start");
        ("core", Json.Str cfg.Dvz_uarch.Config.name);
        ("iterations", Json.Int options.iterations);
        ("rng_seed", Json.Int options.rng_seed);
        ("coverage_guided", Json.Bool options.coverage_guided);
        ("style", Json.Str (style_name options.style));
        ("fresh_seed_prob", Json.Float options.fresh_seed_prob);
        ("taint_mode", Json.Str (taint_mode_name options.taint_mode)) ];
  for it = 0 to options.iterations - 1 do
    Metrics.incr m_iters;
    (* Phase 1 — seed selection: mutate a corpus entry's window, or
       generate, evaluate and reduce a fresh trigger. *)
    let t0 = Clock.now clk in
    let seed_kind, phase1 =
      if !corpus = [] || Rng.chance rng options.fresh_seed_prob then begin
        let seed = Seed.random rng in
        let tc = Trigger_gen.generate ~style:options.style cfg seed in
        let outcome =
          if Trigger_opt.evaluate cfg tc then begin
            let reduced, _ = Trigger_opt.reduce cfg tc in
            Some reduced
          end
          else None
        in
        (seed.Seed.kind, outcome)
      end
      else begin
        let tc = Rng.choose_list rng !corpus in
        let seed = Seed.mutate_window rng tc.Packet.seed in
        (seed.Seed.kind, Some { tc with Packet.seed = seed })
      end
    in
    let p1 = Clock.now clk -. t0 in
    Metrics.observe h_phase1 p1;
    let p2 = ref 0.0 and p3 = ref 0.0 in
    let coverage_delta = ref 0 and new_findings = ref 0 and cycles = ref 0 in
    (match phase1 with
    | None -> ()
    | Some tc ->
        incr triggered;
        (* Phase 2 — complete the transient window with encoding gadgets. *)
        let t1 = Clock.now clk in
        let completed = Window_gen.complete cfg tc in
        p2 := Clock.now clk -. t1;
        Metrics.observe h_phase2 !p2;
        (* Phase 3 — dual-DUT simulation, coverage, oracles. *)
        let t2 = Clock.now clk in
        let analysis =
          Oracle.analyze ~mode:options.taint_mode cfg ~secret completed
        in
        p3 := Clock.now clk -. t2;
        Metrics.observe h_phase3 !p3;
        cycles :=
          analysis.Oracle.a_result.Dvz_uarch.Dualcore.r_cycles_a
          + analysis.Oracle.a_result.Dvz_uarch.Dualcore.r_cycles_b;
        sim_cycles := !sim_cycles + !cycles;
        let fresh =
          Coverage.observe_result coverage analysis.Oracle.a_result
        in
        coverage_delta := fresh;
        (* Corpus policy is where the DejaVuzz- ablation differs: the
           guided fuzzer accumulates every coverage-increasing seed and
           keeps mutating all of them; the blind variant only carries the
           current seed forward (§6.3: "randomly updates the secret
           encoding block or regenerates a new transient window for each
           round"). *)
        if options.coverage_guided then begin
          if fresh > 0 then corpus := tc :: !corpus;
          if List.length !corpus > 64 then
            corpus := List.filteri (fun i _ -> i < 64) !corpus
        end
        else corpus := [ tc ];
        Metrics.set g_corpus (float_of_int (List.length !corpus));
        List.iter
          (fun f ->
            let key = dedup_key f in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              findings := f :: !findings;
              incr n_findings;
              incr new_findings;
              if !first_bug = None then first_bug := Some it;
              if events_on then Events.emit tel.t_events (finding_event f)
            end
            else Metrics.incr m_dedup)
          (findings_of_analysis ~iteration:it tc.Packet.seed analysis));
    curve.(it) <- Coverage.points coverage;
    if events_on then
      Events.emit tel.t_events
        [ ("type", Json.Str "iteration");
          ("iteration", Json.Int it);
          ("seed_kind", Json.Str (Seed.kind_name seed_kind));
          ("phase1_triggered", Json.Bool (phase1 <> None));
          ("coverage_delta", Json.Int !coverage_delta);
          ("coverage", Json.Int curve.(it));
          ("new_findings", Json.Int !new_findings);
          ("cycles", Json.Int !cycles);
          ("phase1_s", Json.Float p1);
          ("phase2_s", Json.Float !p2);
          ("phase3_s", Json.Float !p3) ];
    if tel.t_progress_every > 0 && (it + 1) mod tel.t_progress_every = 0
    then begin
      let elapsed = Float.max 1e-9 (Clock.now clk -. t_start) in
      let cps = float_of_int !sim_cycles /. elapsed in
      Metrics.set g_tput cps;
      tel.t_progress
        (Printf.sprintf
           "[%d/%d] coverage=%d findings=%d triggered=%d %.0f cycles/s"
           (it + 1) options.iterations curve.(it) !n_findings !triggered cps)
    end
  done;
  let elapsed = Float.max 1e-9 (Clock.now clk -. t_start) in
  Metrics.set g_tput (float_of_int !sim_cycles /. elapsed);
  let final_coverage = Coverage.points coverage in
  if events_on then begin
    Events.emit tel.t_events
      [ ("type", Json.Str "campaign_end");
        ("iterations", Json.Int options.iterations);
        ("triggered", Json.Int !triggered);
        ("coverage", Json.Int final_coverage);
        ("findings", Json.Int !n_findings);
        ( "first_bug",
          match !first_bug with None -> Json.Null | Some i -> Json.Int i );
        ("sim_cycles", Json.Int !sim_cycles);
        ("elapsed_s", Json.Float elapsed) ];
    Events.flush tel.t_events
  end;
  { s_options = options;
    s_coverage_curve = curve;
    s_findings = List.rev !findings;
    s_first_bug = !first_bug;
    s_final_coverage = final_coverage;
    s_triggered = !triggered }
