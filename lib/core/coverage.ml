module Dualcore = Dvz_uarch.Dualcore

type t = { seen : (string * int, unit) Hashtbl.t }

let create () = { seen = Hashtbl.create 512 }

let observe t log =
  (* Only transient-window slots count (§4.2.2: the coverage is measured
     over the transient execution's taint log). *)
  let fresh = ref 0 in
  List.iter
    (fun e ->
      if e.Dualcore.le_in_window then
        List.iter
          (fun (m, count) ->
            if count > 0 && not (Hashtbl.mem t.seen (m, count)) then begin
              Hashtbl.replace t.seen (m, count) ();
              incr fresh
            end)
          e.Dualcore.le_per_module)
    log;
  !fresh

let observe_result t r = observe t r.Dualcore.r_log

let merge t other =
  let fresh = ref 0 in
  Hashtbl.iter
    (fun k () ->
      if not (Hashtbl.mem t.seen k) then begin
        Hashtbl.replace t.seen k ();
        incr fresh
      end)
    other.seen;
  !fresh

let points t = Hashtbl.length t.seen

let copy t = { seen = Hashtbl.copy t.seen }

let to_list t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.seen [] |> List.sort compare

let of_list points =
  let t = create () in
  List.iter (fun p -> Hashtbl.replace t.seen p ()) points;
  t
