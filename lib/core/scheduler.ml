module Rng = Dvz_util.Rng

type pick = Fresh | Mutate of Packet.testcase

type plan = {
  pl_iteration : int;
  pl_rng : Rng.t;
  pl_pick : pick;
}

let schedule ~fresh_seed_prob ~corpus ~rng ~start ~count =
  if count < 0 then invalid_arg "Scheduler.schedule: count must be >= 0";
  (* Built with an explicit in-order loop: the master generator's only
     draws are one [split] per iteration, in iteration order, so the
     master stream after K plans is identical whether those K iterations
     were scheduled as one batch or K singletons — the invariant that
     makes results independent of the batch partitioning of a prefix and
     of how many domains later execute the plans. *)
  let rec build k acc =
    if k = count then List.rev acc
    else begin
      let irng = Rng.split rng in
      let pick =
        if Corpus.is_empty corpus || Rng.chance irng fresh_seed_prob then Fresh
        else Mutate (Corpus.choose corpus irng)
      in
      build (k + 1)
        ({ pl_iteration = start + k; pl_rng = irng; pl_pick = pick } :: acc)
    end
  in
  build 0 []
