type t =
  | Areg of int
  | Sreg of int
  | Mem of int
  | Dcache of int
  | Icache of int
  | Lfb of int
  | Btb of int
  | Bht of int
  | Ras of int
  | Loop of int
  | Tlb of int
  | L2tlb of int
  | Rob of int
  | Ldq of int
  | Stq of int
  | Pc

(* Caches and TLBs are banked, mirroring the RTL module hierarchy (BOOM's
   data arrays are physically split into banks/ways, each its own module);
   the coverage matrix is keyed per bank. *)
let dcache_banks = 4
let icache_banks = 2
let tlb_banks = 2

let module_of = function
  | Areg _ -> "core.arf"
  | Sreg _ -> "core.prf"
  | Mem _ -> "mem"
  | Dcache i -> Printf.sprintf "lsu.dcache.bank%d" (i mod dcache_banks)
  | Icache i -> Printf.sprintf "frontend.icache.bank%d" (i mod icache_banks)
  | Lfb _ -> "lsu.lfb"
  | Btb _ -> "frontend.btb"
  | Bht _ -> "frontend.bht"
  | Ras _ -> "frontend.ras"
  | Loop _ -> "frontend.loop"
  | Tlb i -> Printf.sprintf "lsu.tlb.bank%d" (i mod tlb_banks)
  | L2tlb _ -> "lsu.l2tlb"
  | Rob _ -> "rob"
  | Ldq _ -> "lsu.ldq"
  | Stq _ -> "lsu.stq"
  | Pc -> "frontend.pc"

let index = function
  | Areg i | Sreg i | Mem i | Dcache i | Icache i | Lfb i | Btb i | Bht i
  | Ras i | Loop i | Tlb i | L2tlb i | Rob i | Ldq i | Stq i -> i
  | Pc -> 0

let to_string e = Printf.sprintf "%s[%d]" (module_of e) (index e)

let compare = Stdlib.compare
let equal a b = compare a b = 0
let hash = Hashtbl.hash

let all_modules =
  List.sort compare
    ([ "core.arf"; "core.prf"; "frontend.bht"; "frontend.btb";
       "frontend.loop"; "frontend.pc"; "frontend.ras"; "lsu.l2tlb";
       "lsu.ldq"; "lsu.lfb"; "lsu.stq"; "mem"; "rob" ]
    @ List.init dcache_banks (Printf.sprintf "lsu.dcache.bank%d")
    @ List.init icache_banks (Printf.sprintf "frontend.icache.bank%d")
    @ List.init tlb_banks (Printf.sprintf "lsu.tlb.bank%d"))
