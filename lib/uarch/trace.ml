let slot_line (s : Effect.slot) =
  let marker =
    if s.Effect.sl_transient then "T"
    else if s.Effect.sl_committed then "C"
    else "-"
  in
  let annot =
    String.concat ""
      [ (match s.Effect.sl_window_opened with
        | Some k -> "  <window open: " ^ Effect.window_kind_name k ^ ">"
        | None -> "");
        (if s.Effect.sl_window_closed then "  <squash>" else "");
        (if s.Effect.sl_swapped then "  <swap>" else "") ]
  in
  Printf.sprintf "[%6d] %s 0x%04x  %-28s%s" s.Effect.sl_cycles marker
    s.Effect.sl_pc
    (Dvz_isa.Insn.to_string s.Effect.sl_insn)
    annot

let render_slots slots =
  String.concat "\n" (List.map slot_line slots) ^ "\n"

let window_line (w : Core.window_record) =
  Printf.sprintf
    "window %-22s trigger=0x%04x enq=%-3d cycles=%-4d slot=%-5d %s%s%s"
    (Effect.window_kind_name w.Core.wr_kind)
    w.Core.wr_trigger_pc w.Core.wr_enqueued w.Core.wr_cycles
    w.Core.wr_start_slot
    (if w.Core.wr_in_transient_blob then "[transient-blob]" else "[training]")
    (if w.Core.wr_secret_accessed then " [secret]" else "")
    (if w.Core.wr_secret_fault then " [privilege]" else "")

let render_windows windows =
  match windows with
  | [] -> "(no transient windows)\n"
  | ws -> String.concat "\n" (List.map window_line ws) ^ "\n"

let render_taint_log ?(every = 1) log =
  let every = max 1 every in
  let buf = Buffer.create 512 in
  let n = List.length log in
  List.iteri
    (fun i (e : Dualcore.log_entry) ->
      (* Sample on the slot number, not the list position, so truncated or
         resumed logs stay aligned on the same slots; the final entry is
         always rendered. *)
      if e.Dualcore.le_slot mod every = 0 || i = n - 1 then begin
        Buffer.add_string buf
          (Printf.sprintf "slot %-5d total=%-4d %s %s\n" e.Dualcore.le_slot
             e.Dualcore.le_total
             (if e.Dualcore.le_in_window then "W" else " ")
             (String.concat " "
                (List.map
                   (fun (m, c) -> Printf.sprintf "%s=%d" m c)
                   e.Dualcore.le_per_module)))
      end)
    log;
  Buffer.contents buf

let render_result (r : Dualcore.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "--- instance A windows ---\n";
  Buffer.add_string buf (render_windows r.Dualcore.r_windows_a);
  Buffer.add_string buf "--- instance B windows ---\n";
  Buffer.add_string buf (render_windows r.Dualcore.r_windows_b);
  Buffer.add_string buf
    (Printf.sprintf "cycles: A=%d B=%d  slots=%d  committed(A)=%d\n"
       r.Dualcore.r_cycles_a r.Dualcore.r_cycles_b r.Dualcore.r_slots
       r.Dualcore.r_committed_a);
  let show label elems =
    Buffer.add_string buf
      (Printf.sprintf "%s (%d): %s\n" label (List.length elems)
         (String.concat " " (List.map Elem.to_string elems)))
  in
  show "live tainted" r.Dualcore.r_live_tainted;
  show "dead tainted" r.Dualcore.r_dead_tainted;
  Buffer.contents buf
