(** Per-instruction microarchitectural effects.

    The core model emits one [slot] record per executed instruction; the
    dual-instance taint engine ({!Taintstate}) consumes the paired records
    of the two DUTs and applies the {!Dvz_ift.Policy}-equivalent rules at
    the state-element level: [Write] is data-flow (Policy 1 analogue),
    [Ctrl] is conditional selection (Policy 2 / Table 1 analogue, with the
    cross-instance value comparison providing the [diff] signal), and
    [Snapshot]/[Restore] express squash recovery of checkpointed
    structures. *)

type ctrl_kind =
  | C_branch   (** a branch direction decision *)
  | C_target   (** an indirect-jump / return target decision *)
  | C_addr     (** an address selecting a cache/TLB entry *)
  | C_squash   (** a pipeline flush steered by in-flight state *)

val ctrl_kind_name : ctrl_kind -> string

type event =
  | Write of Elem.t * Elem.t list
      (** [Write (dst, srcs)]: [dst] is overwritten with data derived from
          [srcs]; its taint becomes the union of the sources' taints. *)
  | Ctrl of {
      kind : ctrl_kind;
      value : int;          (** the concrete decision this instance made *)
      srcs : Elem.t list;   (** state feeding the decision *)
      touched : Elem.t list;(** elements steered by the decision *)
    }
  | Copy_regs_to_spec
      (** window open: the speculative register copy inherits the committed
          registers' taints *)
  | Snapshot of Elem.t list
      (** checkpoint the taints of these elements (window open) *)
  | Restore of Elem.t list
      (** squash: restore the checkpointed taints of these elements —
          a partial list models buggy recovery (B2) *)

type window_kind =
  | W_exception of Dvz_isa.Trap.cause
  | W_branch_mispred
  | W_jump_mispred
  | W_return_mispred
  | W_mem_disamb

val window_kind_name : window_kind -> string

(** One executed instruction slot. *)
type slot = {
  sl_pc : int;
  sl_insn : Dvz_isa.Insn.t;
  sl_transient : bool;
  sl_window_opened : window_kind option;
  sl_window_closed : bool;
  sl_events : event list;
  sl_cycles : int;          (** core cycle counter after this slot *)
  sl_committed : bool;
  sl_swapped : bool;        (** a sequence boundary was crossed *)
}
