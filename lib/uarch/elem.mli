(** Microarchitectural state elements.

    Every taintable storage word in the core model has an [Elem.t] identity:
    the taint shadow ({!Taintstate}), the taint coverage matrix and the
    liveness oracle are all keyed by it.  The [module_of] projection mirrors
    the RTL module hierarchy, since the paper's coverage matrix counts
    tainted registers per module. *)

type t =
  | Areg of int          (** committed architectural register *)
  | Sreg of int          (** speculative (in-window) register copy — the
                             physical-register-file slots holding transient
                             results *)
  | Mem of int           (** memory dword index (addr / 8) *)
  | Dcache of int        (** data cache line *)
  | Icache of int        (** instruction cache line *)
  | Lfb of int           (** line-fill buffer slot *)
  | Btb of int
  | Bht of int
  | Ras of int
  | Loop of int
  | Tlb of int
  | L2tlb of int
  | Rob of int
  | Ldq of int
  | Stq of int
  | Pc                   (** the (speculative) program counter *)

val module_of : t -> string
(** Module tag, e.g. ["lsu.dcache.bank2"], ["frontend.ras"], ["rob"].
    Cache and TLB arrays are banked, mirroring the RTL hierarchy. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val all_modules : string list
(** Every module tag, sorted — the row space of the coverage matrix. *)
