(** Human-readable simulation traces.

    The paper's pipeline consumes two artifacts from each RTL simulation:
    the RoB IO event trace (used by the Phase 1 trigger check) and the taint
    log (used by coverage and the oracles).  This module renders both, plus
    a per-slot pipeline log in the style of processor commit logs, which is
    what a developer reads when pinpointing a reported bug (§7: "developers
    usually only need simulation waveform files to pinpoint bugs"). *)

val slot_line : Effect.slot -> string
(** One line per executed slot: cycle, pc, disassembly, commit/transient
    marker, window open/close annotations. *)

val render_slots : Effect.slot list -> string

val window_line : Core.window_record -> string

val render_windows : Core.window_record list -> string
(** The RoB IO event summary: one line per transient window. *)

val render_taint_log :
  ?every:int -> Dualcore.log_entry list -> string
(** The taint log: per-slot totals and per-module counts; [every] renders
    the entries whose slot number is a multiple of [every] (default 1;
    values [<= 0] are clamped to 1, i.e. every entry), plus always the
    final entry.  Keying on the slot — not the list position — keeps
    truncated or resumed logs aligned on the same slots. *)

val render_result : Dualcore.result -> string
(** Full dual-DUT run report: windows of both instances, timing, final
    tainted elements split by liveness. *)
