(** The differential testbench: two identical cores, two secrets, one taint
    shadow (§3.3, Figure 5's RTL-simulation stage).

    Instance A runs the stimulus with its secret, instance B with a
    different one (bit-flipped by default, per §3.3's false-negative
    mitigation); the shared {!Taintstate} observes both.  The run result
    packages everything the fuzzer's three phases consume: the RoB-derived
    window records of both instances (trigger detection, Phase 1), the
    per-slot taint log (coverage, Phase 2), window timing of both instances
    (constant-time analysis, Phase 3) and the final tainted elements
    partitioned by liveness (tainted-sink analysis, Phase 3). *)

type log_entry = {
  le_slot : int;
  le_total : int;                    (** tainted elements *)
  le_per_module : (string * int) list;
  le_in_window : bool;               (** instance A inside a window *)
}

type result = {
  r_windows_a : Core.window_record list;
  r_windows_b : Core.window_record list;
  r_log : log_entry list;            (** chronological *)
  r_slots : int;
  r_cycles_a : int;
  r_cycles_b : int;
  r_committed_a : int;
  r_final_tainted : Elem.t list;
  r_live_tainted : Elem.t list;      (** tainted and live (instance A) *)
  r_dead_tainted : Elem.t list;
}

type t

val create :
  ?mode:Dvz_ift.Policy.mode ->
  ?secret_b:int array ->
  Config.t ->
  Core.stimulus ->
  t
(** [create cfg stim] builds the testbench.  [secret_b] defaults to the
    bitwise complement of [stim.st_secret] (low 32 bits); pass
    [stim.st_secret] itself to reproduce the diffIFT^FN worst case.
    [mode] defaults to [Diffift]. *)

val core_a : t -> Core.t
val core_b : t -> Core.t
val taint : t -> Taintstate.t

val step : t -> bool
(** Advances both instances one slot and updates the taint shadow; false
    once both instances have finished. *)

val run : t -> result
(** Steps to completion and collects the result. *)

val window_timing_diffs : result -> (int * int * int) list
(** Per paired window: [(index, cycles_a, cycles_b)] where the two
    instances' durations differ — the transient-window constant-time
    violations of §4.3.1. *)

val taints_in_windows : result -> int
(** Taint growth observed while inside transient windows (the Phase 2
    "sensitive data successfully propagated" signal). *)
