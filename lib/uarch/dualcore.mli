(** The differential testbench: two identical cores, two secrets, one taint
    shadow (§3.3, Figure 5's RTL-simulation stage).

    Instance A runs the stimulus with its secret, instance B with a
    different one (bit-flipped by default, per §3.3's false-negative
    mitigation); the shared {!Taintstate} observes both.  The run result
    packages everything the fuzzer's three phases consume: the RoB-derived
    window records of both instances (trigger detection, Phase 1), the
    per-slot taint log (coverage, Phase 2), window timing of both instances
    (constant-time analysis, Phase 3) and the final tainted elements
    partitioned by liveness (tainted-sink analysis, Phase 3). *)

type log_entry = {
  le_slot : int;
  le_total : int;                    (** tainted elements *)
  le_per_module : (string * int) list;
  le_in_window : bool;               (** instance A inside a window *)
}

type result = {
  r_windows_a : Core.window_record list;
  r_windows_b : Core.window_record list;
  r_log : log_entry list;            (** chronological *)
  r_slots : int;
  r_cycles_a : int;
  r_cycles_b : int;
  r_committed_a : int;
  r_final_tainted : Elem.t list;
  r_live_tainted : Elem.t list;      (** tainted and live (instance A) *)
  r_dead_tainted : Elem.t list;
  r_timed_out : bool;
      (** true when a watchdog budget aborted the run; the other fields
          describe the partial simulation up to that point *)
}

type budget
(** A watchdog: limits on how long one dual-DUT simulation may run. *)

val budget :
  ?max_slots:int -> ?max_wall_s:float -> ?clock:Dvz_obs.Clock.t -> unit -> budget
(** [budget ~max_slots ~max_wall_s ()] caps a run at [max_slots]
    simulation slots and/or [max_wall_s] wall-clock seconds (measured on
    [clock], default the real clock; the wall clock is polled every 64
    slots).  Omitted limits are unlimited. *)

type t

val create :
  ?provenance:Dvz_ift.Provenance.t ->
  ?log_bound:Dvz_ift.Taintlog.bound ->
  ?mode:Dvz_ift.Policy.mode ->
  ?secret_b:int array ->
  Config.t ->
  Core.stimulus ->
  t
(** [create cfg stim] builds the testbench.  [secret_b] defaults to the
    bitwise complement of [stim.st_secret] (low 32 bits); pass
    [stim.st_secret] itself to reproduce the diffIFT^FN worst case.
    [mode] defaults to [Diffift].

    [provenance] arms element-granularity taint tracing for a replay
    pass: the planted secret words are recorded as sources (at time -1)
    and every taint transition appends an edge stamped with the current
    slot and window context; the simulation itself is unaffected.

    [log_bound] (default [Unbounded]) bounds the per-slot taint log kept
    in [r_log] for long campaigns; the taint state, metrics and high-water
    mark are unaffected by discarded entries. *)

val reset : ?secret_b:int array -> t -> Core.stimulus -> unit
(** [reset t stim] re-arms a built testbench for a new stimulus without
    reallocating either core or the taint tables: afterwards [t] behaves
    bit-identically to [create ~mode ~log_bound cfg stim] with the [mode]
    and [log_bound] it was created with ([secret_b] defaults as in
    [create]).  This is the pooling fast path used by
    {!Dejavuzz.Simpool}; the pooled-vs-fresh property tests in
    [test_fuzz.ml] pin the equivalence. *)

val core_a : t -> Core.t
val core_b : t -> Core.t
val taint : t -> Taintstate.t

val step : t -> bool
(** Advances both instances one slot and updates the taint shadow; false
    once both instances have finished.  Polls the ambient
    {!Dvz_resilience.Fault} state once per slot: an armed [Hang] fault
    wedges the testbench (slots keep counting, the cores stop, [step]
    never returns false — only a {!budget} ends the run), an armed
    [Corrupt] fault skews instance B's collected timing. *)

val run : ?budget:budget -> t -> result
(** Steps to completion and collects the result.  With a [budget], a run
    that exceeds it is aborted and collected with [r_timed_out = true]
    (counted in [dvz_watchdog_timeouts_total]). *)

val window_timing_diffs : result -> (int * int * int) list
(** Per paired window: [(index, cycles_a, cycles_b)] where the two
    instances' durations differ — the transient-window constant-time
    violations of §4.3.1. *)

val taints_in_windows : result -> int
(** Taint growth observed while inside transient windows (the Phase 2
    "sensitive data successfully propagated" signal). *)
