type line = { mutable valid : bool; mutable tag : int }

type t = { lines : line array; line_bytes : int }

let create ~lines ~line_bytes =
  { lines = Array.init lines (fun _ -> { valid = false; tag = 0 });
    line_bytes }

let line_index t ~addr = addr / t.line_bytes land (Array.length t.lines - 1)

let tag_of t addr = addr / t.line_bytes

let lookup t ~addr =
  let l = t.lines.(line_index t ~addr) in
  l.valid && l.tag = tag_of t addr

let access t ~addr =
  let i = line_index t ~addr in
  let l = t.lines.(i) in
  if l.valid && l.tag = tag_of t addr then `Hit i
  else begin
    l.valid <- true;
    l.tag <- tag_of t addr;
    `Miss i
  end

let invalidate_all t = Array.iter (fun l -> l.valid <- false) t.lines

let reset t =
  Array.iter
    (fun l ->
      l.valid <- false;
      l.tag <- 0)
    t.lines

let valid t i = t.lines.(i).valid

let line_addr t i = t.lines.(i).tag * t.line_bytes

let num_lines t = Array.length t.lines

module Lfb = struct
  type slot = { mutable data : int; mutable mshr_valid : bool }

  type t = { slots : slot array; mutable next : int }

  let create ~entries =
    { slots = Array.init entries (fun _ -> { data = 0; mshr_valid = false });
      next = 0 }

  let reset t =
    Array.iter
      (fun s ->
        s.data <- 0;
        s.mshr_valid <- false)
      t.slots;
    t.next <- 0

  let refill t ~data =
    let i = t.next in
    t.next <- (t.next + 1) mod Array.length t.slots;
    let s = t.slots.(i) in
    s.data <- data;
    (* The refill has completed by the time anyone can look: the MSHR has
       already invalidated the slot, leaving the stale data behind. *)
    s.mshr_valid <- false;
    i

  let data t i = t.slots.(i).data
  let valid t i = t.slots.(i).mshr_valid
  let entries t = Array.length t.slots
  let set_valid t i v = t.slots.(i).mshr_valid <- v
end
