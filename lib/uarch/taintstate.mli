(** Shared taint shadow over the microarchitectural element space.

    One taint state serves the two lockstep DUT instances, exactly like the
    shadow circuit of the dual-DUT testbench in §3.3.  Effects are consumed
    in pairs — instance A's and instance B's {!Effect.slot} for the same
    slot — and the cross-instance comparison of control decisions provides
    the [diff] gating:

    - [Write] propagates data taint.  In [Diffift] mode a write with clean
      sources clears the destination's taint (precise overwrite); in
      [Cellift] mode taints only accumulate, reproducing the monotone taint
      growth of §2.2.
    - [Ctrl] propagates control taint to the touched elements when the
      decision's sources are tainted and — in [Diffift] mode — the two
      instances' concrete decisions actually differ.
    - Slot divergence (the instances executing different pcs) is itself a
      secret-caused difference: every write in a diverged slot is
      control-tainted in both modes. *)

type t

val create : ?provenance:Dvz_ift.Provenance.t -> Dvz_ift.Policy.mode -> t
(** With [provenance], every 0→tainted transition of an element appends an
    edge to the recorder naming the tainted predecessors — [Data] for
    writes and architectural→speculative register copies, [Ctrl] (labelled
    with the decision kind) for control propagation, [Divergence] when the
    transition is forced by instruction-stream divergence alone, and
    [Restore] when a squash re-establishes checkpointed taint.  Without
    it, propagation runs on the original fast paths untouched. *)

val mode : t -> Dvz_ift.Policy.mode

val reset : t -> unit
(** Drop every taint, saved checkpoint and per-module count — back to the
    [create] state (the provenance recorder, if any, is kept as-is). *)

val set_tainted : t -> Elem.t -> unit
(** Marks a taint source (e.g. the secret region's memory words). *)

val clear_tainted : t -> Elem.t -> unit

val is_tainted : t -> Elem.t -> bool

val apply_pair : t -> Effect.slot option -> Effect.slot option -> unit
(** Processes one slot of both instances ([None] when an instance has
    already finished — treated as full divergence). *)

val tainted_count : t -> int

val tainted_elems : t -> Elem.t list

val tainted_by_module : t -> (string * int) list
(** Tainted element count per module tag (only non-zero entries), sorted. *)
