open Dvz_isa
open Dvz_soc
module P = Predictors

type stimulus = {
  st_swapmem : Swapmem.t;
  st_tighten_secret : bool;
  st_secret : int array;
  st_data : (int * int) list;
  st_perms : (int * Dvz_soc.Perm.t) list;
  st_max_slots : int;
}

type window_record = {
  wr_kind : Effect.window_kind;
  wr_trigger_pc : int;
  wr_enqueued : int;
  wr_cycles : int;
  wr_start_slot : int;
  wr_secret_accessed : bool;
  wr_secret_fault : bool;
  wr_in_transient_blob : bool;
}

type window = {
  w_kind : Effect.window_kind;
  w_trigger_pc : int;
  w_after : [ `Resume | `Swap ];
  mutable w_remaining : int;
  mutable w_stalled : bool;
      (** the frontend stalled (system insn / fetch fault): remaining slots
          are bubbles, keeping the two testbench instances slot-aligned *)
  w_sregs : int array;
  mutable w_spec_pc : int;
  w_ras_snap : P.Ras.snapshot;
  w_stq_snap : Lsu.Stq.snapshot;
  w_ldq_snap : Lsu.Ldq.snapshot;
  mutable w_enqueued : int;
  w_start_cycle : int;
  w_start_slot : int;
  mutable w_secret_accessed : bool;
  mutable w_secret_fault : bool;
  mutable w_last_jalr : (int * Elem.t list) option;
      (** target and taint sources of the most recent transient jalr, used
          by the B3 exception/misprediction race *)
}

type t = {
  cfg : Config.t;
  mutable stim : stimulus;
  mem : Phys_mem.t;
  arch : Golden.t;
  bht : P.Bht.t;
  btb : P.Btb.t;
  ras : P.Ras.t;
  loop : P.Loop.t;
  mdp : P.Mdp.t;
  icache : Cache.t;
  dcache : Cache.t;
  lfb : Cache.Lfb.t;
  tlb : Tlb.t;
  l2tlb : Tlb.t;
  stq : Lsu.Stq.t;
  ldq : Lsu.Ldq.t;
  mutable cycles : int;
  mutable slot : int;
  mutable committed : int;
  mutable fetch_busy_until : int;
  mutable fdiv_busy_until : int;
  mutable load_wb_busy_until : int;
  mutable lsu_busy_until : int;
  mutable window : window option;
  mutable windows : window_record list;
  mutable done_ : bool;
  mutable secret_tightened : bool;
}

let swap_in t =
  match Swapmem.load_next t.stim.st_swapmem t.mem with
  | None ->
      t.done_ <- true;
      false
  | Some blob ->
      if blob.Swapmem.is_transient && t.stim.st_tighten_secret
         && not t.secret_tightened
      then begin
        Phys_mem.set_perm t.mem Layout.secret_base (Perm.priv_only Perm.rw);
        t.secret_tightened <- true
      end;
      (* The trap handler flushes the instruction cache before jumping to
         the freshly loaded sequence (§3.2). *)
      Cache.invalidate_all t.icache;
      Golden.set_pc t.arch Layout.swap_entry;
      Golden.set_priv t.arch Golden.User;
      true

let create cfg stim =
  let mem = Phys_mem.create () in
  Swapmem.reset stim.st_swapmem;
  Array.iteri
    (fun i v ->
      Phys_mem.write mem ~addr:(Layout.secret_base + (8 * i)) ~size:8 v)
    stim.st_secret;
  List.iter
    (fun (addr, v) -> Phys_mem.write mem ~addr ~size:8 v)
    stim.st_data;
  List.iter (fun (addr, p) -> Phys_mem.set_perm mem addr p) stim.st_perms;
  let arch =
    Golden.create ~pc:Layout.swap_entry ~priv:Golden.User ~mtvec:Layout.mtvec
      (Phys_mem.golden_memory mem)
  in
  let t =
    { cfg; stim; mem; arch;
      bht = P.Bht.create ~entries:cfg.Config.bht_entries;
      btb = P.Btb.create ~tagged:cfg.Config.btb_tagged ~entries:cfg.Config.btb_entries ();
      ras = P.Ras.create ~entries:cfg.Config.ras_entries;
      loop = P.Loop.create ~entries:cfg.Config.loop_entries;
      mdp = P.Mdp.create ~entries:cfg.Config.bht_entries;
      icache = Cache.create ~lines:cfg.Config.icache_lines
                 ~line_bytes:cfg.Config.line_bytes;
      dcache = Cache.create ~lines:cfg.Config.dcache_lines
                 ~line_bytes:cfg.Config.line_bytes;
      lfb = Cache.Lfb.create ~entries:cfg.Config.lfb_entries;
      tlb = Tlb.create ~entries:cfg.Config.tlb_entries
              ~page_bytes:Layout.page_size;
      l2tlb = Tlb.create ~entries:cfg.Config.l2tlb_entries
                ~page_bytes:Layout.page_size;
      stq = Lsu.Stq.create ~entries:cfg.Config.stq_entries;
      ldq = Lsu.Ldq.create ~entries:cfg.Config.ldq_entries;
      cycles = 0; slot = 0; committed = 0;
      fetch_busy_until = 0; fdiv_busy_until = 0; load_wb_busy_until = 0;
      lsu_busy_until = 0;
      window = None; windows = []; done_ = false; secret_tightened = false }
  in
  ignore (swap_in t);
  t

(* Re-arm an existing core for a new stimulus without reallocating any of
   its state.  Must leave [t] bit-identical (under [state_hash] and every
   observable) to [create t.cfg stim]: zeroed memory and predictor tags, not
   just cleared valid bits, because dead state is still hashed. *)
let reset t stim =
  Phys_mem.clear t.mem;
  Swapmem.reset stim.st_swapmem;
  Array.iteri
    (fun i v ->
      Phys_mem.write t.mem ~addr:(Layout.secret_base + (8 * i)) ~size:8 v)
    stim.st_secret;
  List.iter
    (fun (addr, v) -> Phys_mem.write t.mem ~addr ~size:8 v)
    stim.st_data;
  List.iter (fun (addr, p) -> Phys_mem.set_perm t.mem addr p) stim.st_perms;
  Golden.reset ~pc:Layout.swap_entry ~priv:Golden.User ~mtvec:Layout.mtvec
    t.arch;
  P.Bht.reset t.bht;
  P.Btb.reset t.btb;
  P.Ras.reset t.ras;
  P.Loop.reset t.loop;
  P.Mdp.reset t.mdp;
  Cache.reset t.icache;
  Cache.reset t.dcache;
  Cache.Lfb.reset t.lfb;
  Tlb.reset t.tlb;
  Tlb.reset t.l2tlb;
  Lsu.Stq.reset t.stq;
  Lsu.Ldq.reset t.ldq;
  t.stim <- stim;
  t.cycles <- 0;
  t.slot <- 0;
  t.committed <- 0;
  t.fetch_busy_until <- 0;
  t.fdiv_busy_until <- 0;
  t.load_wb_busy_until <- 0;
  t.lsu_busy_until <- 0;
  t.window <- None;
  t.windows <- [];
  t.done_ <- false;
  t.secret_tightened <- false;
  ignore (swap_in t)

let config t = t.cfg
let arch_reg t r = Golden.reg t.arch r
let mem t = t.mem
let is_done t = t.done_
let cycles t = t.cycles
let committed t = t.committed
let slot_count t = t.slot
let windows t = List.rev t.windows
let in_window t = t.window <> None

let rob_elem t = Elem.Rob (t.slot mod t.cfg.Config.rob_entries)

let secret_page addr =
  addr >= Layout.secret_base && addr < Layout.secret_base + Layout.secret_size

(* --- microarchitectural access helpers; each returns (events, cost) --- *)

let fetch_access t ~transient pc =
  let events = ref [] and cost = ref 1 in
  (* The hit/miss decision reads the line's tag state as well as the pc, so
     both appear as control sources; the value encodes index and outcome. *)
  (match Cache.access t.icache ~addr:pc with
  | `Hit i ->
      events := [ Effect.Ctrl { kind = Effect.C_addr; value = 2 * i;
                                srcs = [ Elem.Pc; Elem.Icache i ];
                                touched = [ Elem.Icache i ] } ]
  | `Miss i ->
      cost := !cost + t.cfg.Config.miss_latency;
      if transient && t.cfg.Config.fetch_contention_bug then
        (* B4: the transient refill occupies the fetch port past the squash. *)
        t.fetch_busy_until <-
          max t.fetch_busy_until (t.cycles + !cost + t.cfg.Config.miss_latency);
      events := [ Effect.Write (Elem.Icache i, []);
                  Effect.Ctrl { kind = Effect.C_addr; value = (2 * i) + 1;
                                srcs = [ Elem.Pc; Elem.Icache i ];
                                touched = [ Elem.Icache i ] } ]);
  (!events, !cost)

(* A data-memory access: dcache + TLB (+ L2 TLB on a TLB miss) + LFB on a
   dcache miss.  [addr_srcs] are the elements the effective address derives
   from; [data_srcs] what the accessed memory word's taint derives from. *)
let data_access t ~transient ~is_store ~addr ~addr_srcs ~data_srcs =
  let events = ref [] and cost = ref 0 in
  let emit e = events := e :: !events in
  (match Tlb.access t.tlb ~addr with
  | `Disabled -> ()
  | `Hit i ->
      emit (Effect.Ctrl { kind = Effect.C_addr; value = i; srcs = addr_srcs;
                          touched = [ Elem.Tlb i ] })
  | `Miss i ->
      cost := !cost + 3;
      emit (Effect.Write (Elem.Tlb i, []));
      emit (Effect.Ctrl { kind = Effect.C_addr; value = i; srcs = addr_srcs;
                          touched = [ Elem.Tlb i ] });
      (match Tlb.access t.l2tlb ~addr with
      | `Disabled | `Hit _ -> ()
      | `Miss j ->
          cost := !cost + 6;
          emit (Effect.Write (Elem.L2tlb j, []));
          emit (Effect.Ctrl { kind = Effect.C_addr; value = j; srcs = addr_srcs;
                              touched = [ Elem.L2tlb j ] })));
  (match Cache.access t.dcache ~addr with
  | `Hit i ->
      cost := !cost + 1;
      if transient && not is_store && t.cfg.Config.load_wb_contention_bug
         && t.load_wb_busy_until > t.cycles
      then
        (* B5: the load pipeline and the load queue contend on the load
           write-back port while a miss refill is in flight. *)
        cost := !cost + 2;
      emit (Effect.Ctrl { kind = Effect.C_addr; value = 2 * i;
                          srcs = Elem.Dcache i :: addr_srcs;
                          touched = [ Elem.Dcache i ] })
  | `Miss i ->
      cost := !cost + t.cfg.Config.miss_latency;
      t.lsu_busy_until <-
        max t.lsu_busy_until (t.cycles + !cost + (t.cfg.Config.miss_latency / 2));
      if t.cfg.Config.load_wb_contention_bug && not is_store then
        t.load_wb_busy_until <-
          max t.load_wb_busy_until (t.cycles + !cost + t.cfg.Config.miss_latency);
      let lfb_slot = Cache.Lfb.refill t.lfb ~data:(Phys_mem.read t.mem ~addr ~size:8) in
      emit (Effect.Write (Elem.Lfb lfb_slot, data_srcs));
      emit (Effect.Write (Elem.Dcache i, data_srcs));
      emit (Effect.Ctrl { kind = Effect.C_addr; value = (2 * i) + 1;
                          srcs = Elem.Dcache i :: addr_srcs;
                          touched = [ Elem.Dcache i; Elem.Lfb lfb_slot ] }));
  (List.rev !events, !cost)

let fdiv_issue t =
  let wait = max 0 (t.fdiv_busy_until - t.cycles) in
  t.fdiv_busy_until <- t.cycles + wait + t.cfg.Config.fdiv_latency;
  2 + wait

(* Forwarded value of a faulting load: the heart of the Meltdown-class
   behaviours.  Returns (value, taint sources, sampled-secret flag). *)
let transient_fault_forward t ~addr ~size =
  let phys_limit = 1 lsl t.cfg.Config.phys_addr_bits in
  if addr >= phys_limit && t.cfg.Config.addr_truncate_bug then begin
    (* B1: inconsistent wire widths truncate the high bits on the way to
       the load unit; the access samples the aliased physical address. *)
    let eff = addr mod phys_limit in
    (Phys_mem.read t.mem ~addr:eff ~size, [ Elem.Mem (eff / 8) ],
     secret_page eff)
  end
  else if t.cfg.Config.meltdown_forward then
    (Phys_mem.read t.mem ~addr ~size, [ Elem.Mem (addr / 8) ],
     secret_page addr)
  else (0, [], false)

(* --- window (transient) execution ------------------------------------- *)

let close_window t w =
  (* Squash: restore checkpointed structures.  The RAS restore policy is
     where B2 lives. *)
  let restore_ras_elems =
    if t.cfg.Config.ras_restore_below_tos_bug then begin
      P.Ras.restore_top_only t.ras w.w_ras_snap;
      [ Elem.Ras (P.Ras.tos t.ras) ]
    end
    else begin
      P.Ras.restore_full t.ras w.w_ras_snap;
      List.init t.cfg.Config.ras_entries (fun i -> Elem.Ras i)
    end
  in
  Lsu.Stq.restore t.stq w.w_stq_snap;
  Lsu.Ldq.restore t.ldq w.w_ldq_snap;
  let queue_elems =
    List.init (Lsu.Stq.entries t.stq) (fun i -> Elem.Stq i)
    @ List.init (Lsu.Ldq.entries t.ldq) (fun i -> Elem.Ldq i)
  in
  (* B3: an exception commit racing a mispredicted-jalr correction updates
     the faulting pc's BTB entry with the jalr's corrected target. *)
  let b3_events =
    match (w.w_kind, w.w_last_jalr) with
    | Effect.W_exception _, Some (target, srcs)
      when t.cfg.Config.btb_exception_race_bug ->
        let i = P.Btb.update t.btb ~pc:w.w_trigger_pc ~target in
        [ Effect.Write (Elem.Btb i, srcs) ]
    | _ -> []
  in
  t.cycles <- t.cycles + t.cfg.Config.squash_penalty;
  (* Post-squash stalls: outstanding transient refills and divides delay
     the first instructions after the window (B4, Spectre-Rewind). *)
  if t.cfg.Config.fetch_contention_bug then
    t.cycles <- max t.cycles t.fetch_busy_until;
  let lingering =
    max 0 (t.fdiv_busy_until - t.cycles) / 4
    + (max 0 (t.lsu_busy_until - t.cycles) / 4)
  in
  t.cycles <- t.cycles + lingering;
  let rob_flush =
    (* What the rollback's control decision steers: every RoB entry field,
       the speculative register copies and the redirected pc — the §2.2
       "all 736 RoB entry field registers are suddenly tainted" blast
       radius, which the diff gating suppresses unless the two instances
       actually squash differently. *)
    List.init t.cfg.Config.rob_entries (fun i -> Elem.Rob i)
    @ List.init 32 (fun i -> Elem.Sreg i)
    @ [ Elem.Pc ]
  in
  let squash_srcs =
    (* the rollback index derives from the in-flight (RoB) state *)
    List.init (min w.w_enqueued t.cfg.Config.rob_entries) (fun i ->
        Elem.Rob ((w.w_start_slot + i) mod t.cfg.Config.rob_entries))
  in
  let events =
    b3_events
    @ [ Effect.Restore (restore_ras_elems @ queue_elems);
        Effect.Ctrl { kind = Effect.C_squash; value = w.w_enqueued;
                      srcs = squash_srcs; touched = rob_flush };
        Effect.Write (Elem.Pc, []) ]
  in
  t.windows <-
    { wr_kind = w.w_kind; wr_trigger_pc = w.w_trigger_pc;
      wr_enqueued = w.w_enqueued;
      wr_cycles = t.cycles - w.w_start_cycle;
      wr_start_slot = w.w_start_slot;
      wr_secret_accessed = w.w_secret_accessed;
      wr_secret_fault = w.w_secret_fault;
      wr_in_transient_blob =
        (match Swapmem.current t.stim.st_swapmem with
        | Some b -> b.Swapmem.is_transient
        | None -> false) }
    :: t.windows;
  t.window <- None;
  (match w.w_after with `Resume -> () | `Swap -> ignore (swap_in t));
  events

let open_window t ~kind ~trigger_pc ~after ~spec_pc ~sreg_init =
  let sregs = Array.init 32 (fun i -> Golden.reg t.arch (Reg.x i)) in
  List.iter (fun (r, v) -> sregs.(Reg.to_int r) <- v) sreg_init;
  let snap_elems =
    List.init t.cfg.Config.ras_entries (fun i -> Elem.Ras i)
    @ List.init (Lsu.Stq.entries t.stq) (fun i -> Elem.Stq i)
    @ List.init (Lsu.Ldq.entries t.ldq) (fun i -> Elem.Ldq i)
  in
  t.window <-
    Some
      { w_kind = kind; w_trigger_pc = trigger_pc; w_after = after;
        w_remaining = t.cfg.Config.window_insns;
        w_stalled = false;
        w_sregs = sregs; w_spec_pc = spec_pc;
        w_ras_snap = P.Ras.snapshot t.ras;
        w_stq_snap = Lsu.Stq.snapshot t.stq;
        w_ldq_snap = Lsu.Ldq.snapshot t.ldq;
        w_enqueued = 0; w_start_cycle = t.cycles; w_start_slot = t.slot;
        w_secret_accessed = false; w_secret_fault = false;
        w_last_jalr = None };
  [ Effect.Copy_regs_to_spec; Effect.Snapshot snap_elems ]

let sreg _t w r = if Reg.to_int r = 0 then 0 else w.w_sregs.(Reg.to_int r)

let set_sreg w r v = if Reg.to_int r <> 0 then w.w_sregs.(Reg.to_int r) <- v

let sreg_elem r = Elem.Sreg (Reg.to_int r)

let sreg_srcs rs = List.map sreg_elem rs

(* Execute one transient instruction inside the window.  Windows always
   consume [window_insns] slots; once the speculative frontend stalls the
   remaining slots are bubbles.  This keeps the two differential-testbench
   instances slot-aligned regardless of secret-dependent divergence. *)
let step_transient t w =
  if w.w_stalled then begin
    w.w_remaining <- w.w_remaining - 1;
    t.cycles <- t.cycles + 1;
    let closed = w.w_remaining <= 0 in
    let close_events = if closed then close_window t w else [] in
    { Effect.sl_pc = w.w_spec_pc; sl_insn = Insn.nop; sl_transient = true;
      sl_window_opened = None; sl_window_closed = closed;
      sl_events = close_events; sl_cycles = t.cycles; sl_committed = false;
      sl_swapped = false }
  end
  else begin
  let pc = w.w_spec_pc in
  (* Newest-first accumulator, as in [step_committed]. *)
  let events = ref [] and cost = ref 0 in
  let emit es = events := List.rev_append es !events in
  let fetch_events, fetch_cost = fetch_access t ~transient:true pc in
  emit fetch_events;
  cost := !cost + fetch_cost;
  let word =
    match Phys_mem.checked_fetch t.mem ~priv:Golden.User ~addr:pc with
    | Ok word -> Some word
    | Error _ -> None
  in
  let close_now = ref false in
  let insn =
    match word with
    | None ->
        close_now := true;
        Insn.Illegal 0
    | Some word -> Decode.decode word
  in
  let rob = rob_elem t in
  w.w_enqueued <- w.w_enqueued + 1;
  let next_pc = ref (pc + 4) in
  (if not !close_now then
     match insn with
     | Insn.Lui (rd, imm20) ->
         let v = (imm20 lsl 12 lsl (Sys.int_size - 32)) asr (Sys.int_size - 32) in
         set_sreg w rd v;
         emit [ Effect.Write (sreg_elem rd, []); Effect.Write (rob, []) ]
     | Insn.Auipc (rd, imm20) ->
         let v = pc + ((imm20 lsl 12 lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)) in
         set_sreg w rd v;
         emit [ Effect.Write (sreg_elem rd, []); Effect.Write (rob, []) ]
     | Insn.Op (op, rd, rs1, rs2) ->
         let v = Exec_alu.alu op (sreg t w rs1) (sreg t w rs2) in
         set_sreg w rd v;
         let srcs = sreg_srcs (Insn.reads insn) in
         emit [ Effect.Write (sreg_elem rd, srcs); Effect.Write (rob, srcs) ]
     | Insn.Opi (op, rd, rs1, imm) ->
         let v = Exec_alu.alui op (sreg t w rs1) imm in
         set_sreg w rd v;
         let srcs = sreg_srcs (Insn.reads insn) in
         emit [ Effect.Write (sreg_elem rd, srcs); Effect.Write (rob, srcs) ]
     | Insn.Fdiv (rd, rs1, rs2) ->
         let b = sreg t w rs2 in
         set_sreg w rd (if b = 0 then -1 else sreg t w rs1 / b);
         cost := !cost + fdiv_issue t;
         let srcs = sreg_srcs (Insn.reads insn) in
         emit [ Effect.Write (sreg_elem rd, srcs); Effect.Write (rob, srcs) ]
     | Insn.Load (width, unsigned, rd, rs1, imm) -> (
         let addr = sreg t w rs1 + imm in
         let size = Insn.bytes width in
         let addr_srcs = sreg_srcs (Insn.reads insn) in
         if secret_page addr then w.w_secret_accessed <- true;
         let ldq_slot = Lsu.Ldq.alloc t.ldq ~addr in
         emit [ Effect.Write (Elem.Ldq ldq_slot, addr_srcs) ];
         let aligned = addr mod size = 0 in
         let ok =
           if not aligned then Error Trap.Load_misalign
           else Phys_mem.checked_load t.mem ~priv:Golden.User ~addr ~size
         in
         match ok with
         | Ok raw -> (
             (* Store-queue effects first: forwarding beats the cache. *)
             match Lsu.Stq.forward t.stq ~now:t.slot ~addr ~size with
             | Some (slot', data) ->
                 set_sreg w rd data;
                 cost := !cost + 1;
                 emit [ Effect.Write (sreg_elem rd, [ Elem.Stq slot' ]);
                        Effect.Write (rob, [ Elem.Stq slot' ]) ]
             | None ->
                 let v =
                   let bits = 8 * size in
                   if unsigned || width = Insn.D then raw
                   else (raw lsl (Sys.int_size - bits)) asr (Sys.int_size - bits)
                 in
                 set_sreg w rd v;
                 let data_srcs = [ Elem.Mem (addr / 8) ] in
                 let es, c =
                   data_access t ~transient:true ~is_store:false ~addr
                     ~addr_srcs ~data_srcs
                 in
                 emit es;
                 cost := !cost + c;
                 emit [ Effect.Write (sreg_elem rd, data_srcs);
                        Effect.Write (rob, data_srcs) ])
         | Error cause ->
             (* No nested window: the fault squashes with the outer window;
               but the load unit forwards data meanwhile. *)
             if secret_page addr then w.w_secret_fault <- true;
             ignore cause;
             let v, data_srcs, sampled = transient_fault_forward t ~addr ~size in
             if sampled then begin
               w.w_secret_accessed <- true;
               w.w_secret_fault <- true
             end;
             set_sreg w rd v;
             emit [ Effect.Write (sreg_elem rd, data_srcs);
                    Effect.Write (rob, data_srcs) ])
     | Insn.Store (width, rs2, rs1, imm) ->
         let addr = sreg t w rs1 + imm in
         let size = Insn.bytes width in
         let addr_srcs = sreg_srcs [ rs1 ] in
         if secret_page addr then w.w_secret_accessed <- true;
         let slot' =
           Lsu.Stq.alloc t.stq ~addr ~size ~data:(sreg t w rs2)
             ~old_data:(Phys_mem.read t.mem ~addr ~size)
             ~resolve_at:(t.slot + t.cfg.Config.store_resolve_delay) ()
         in
         let srcs = sreg_srcs (Insn.reads insn) in
         emit [ Effect.Write (Elem.Stq slot', srcs); Effect.Write (rob, srcs) ];
         let es, c =
           data_access t ~transient:true ~is_store:true ~addr ~addr_srcs
             ~data_srcs:(sreg_srcs [ rs2 ])
         in
         emit es;
         cost := !cost + c
     | Insn.Branch (cond, rs1, rs2, off) ->
         let taken = Exec_alu.cond_holds cond (sreg t w rs1) (sreg t w rs2) in
         let srcs = sreg_srcs (Insn.reads insn) in
         next_pc := (if taken then pc + off else pc + 4);
         emit [ Effect.Ctrl { kind = Effect.C_branch;
                              value = (if taken then 1 else 0);
                              srcs; touched = [ Elem.Pc ] };
                Effect.Write (Elem.Pc, srcs);
                Effect.Write (rob, srcs) ];
         if t.cfg.Config.spec_update_loop then (
           match P.Loop.update t.loop ~pc ~taken with
           | Some i -> emit [ Effect.Write (Elem.Loop i, srcs) ]
           | None -> ());
         w.w_last_jalr <- None
     | Insn.Jal (rd, off) ->
         next_pc := pc + off;
         set_sreg w rd (pc + 4);
         if Insn.is_call insn then begin
           let slot' = P.Ras.push t.ras (pc + 4) in
           emit [ Effect.Write (Elem.Ras slot', []) ]
         end;
         emit [ Effect.Write (sreg_elem rd, []); Effect.Write (rob, []) ]
     | Insn.Jalr (rd, rs1, imm) ->
         let target = (sreg t w rs1 + imm) land lnot 1 in
         let srcs = sreg_srcs [ rs1 ] in
         next_pc := target;
         set_sreg w rd (pc + 4);
         if Insn.is_return insn then (
           match P.Ras.pop t.ras with
           | Some (_, slot') ->
               emit [ Effect.Write (Elem.Pc, Elem.Ras slot' :: srcs) ]
           | None -> emit [ Effect.Write (Elem.Pc, srcs) ])
         else if Insn.is_call insn then begin
           (* B2's vehicle: transient calls overwrite RAS entries. *)
           let slot' = P.Ras.push t.ras (pc + 4) in
           emit [ Effect.Ctrl { kind = Effect.C_target; value = target; srcs;
                                touched = [ Elem.Ras slot' ] };
                  Effect.Write (Elem.Ras slot', []) ]
         end;
         emit [ Effect.Ctrl { kind = Effect.C_target; value = target; srcs;
                              touched = [ Elem.Pc ] };
                Effect.Write (Elem.Pc, srcs);
                Effect.Write (sreg_elem rd, []); Effect.Write (rob, srcs) ];
         w.w_last_jalr <- Some (target, srcs)
     | Insn.Fence_i | Insn.Ecall | Insn.Ebreak | Insn.Mret | Insn.Csr _ ->
         (* System instructions (including CSR accesses) are serializing:
            the frontend stalls on them, ending useful transient
            execution. *)
         close_now := true;
         emit [ Effect.Write (rob, []) ]
     | Insn.Illegal _ -> emit [ Effect.Write (rob, []) ]);
  w.w_spec_pc <- !next_pc;
  w.w_remaining <- w.w_remaining - 1;
  if !close_now then w.w_stalled <- true;
  t.cycles <- t.cycles + !cost;
  let closed = w.w_remaining <= 0 in
  let close_events = if closed then close_window t w else [] in
  { Effect.sl_pc = pc; sl_insn = insn; sl_transient = true;
    sl_window_opened = None; sl_window_closed = closed;
    sl_events = List.rev_append !events close_events;
    sl_cycles = t.cycles; sl_committed = false; sl_swapped = false }
  end

(* --- committed execution ----------------------------------------------- *)

let areg_srcs rs = List.map (fun r -> Elem.Areg (Reg.to_int r)) rs

let step_committed t =
  let pc = Golden.pc t.arch in
  if t.cfg.Config.fetch_contention_bug then
    t.cycles <- max t.cycles t.fetch_busy_until;
  (* [events] accumulates newest-first ([List.rev] at the end) so each
     [emit] is O(|es|) instead of copying the whole tail. *)
  let events = ref [] and cost = ref 0 in
  let emit es = events := List.rev_append es !events in
  let fetch_events, fetch_cost = fetch_access t ~transient:false pc in
  emit fetch_events;
  cost := !cost + fetch_cost;
  (* Fetch-stage prediction state, consulted before architectural
     execution resolves the truth.  One fetch+decode feeds both the
     prediction lookups and the golden model ([Golden.step_decoded]
     below) — the commit-point word cannot change in between. *)
  let fetched =
    match Phys_mem.checked_fetch t.mem ~priv:(Golden.priv t.arch) ~addr:pc with
    | Error cause -> Error cause
    | Ok word -> Ok (word, Decode.decode word)
  in
  let prefetch =
    match fetched with Error _ -> None | Ok (_, i) -> Some i
  in
  let predicted_taken =
    match prefetch with
    | Some i when Insn.is_branch i -> Some (P.Bht.predict_taken t.bht ~pc)
    | _ -> None
  in
  let ras_prediction =
    match prefetch with
    | Some i when Insn.is_return i -> (
        match P.Ras.pop t.ras with
        | Some (addr, slot') -> Some (addr, slot')
        | None -> None)
    | _ -> None
  in
  (match prefetch with
  | Some i when Insn.is_call i ->
      let slot' = P.Ras.push t.ras (pc + 4) in
      emit [ Effect.Write (Elem.Ras slot', []) ]
  | _ -> ());
  let btb_prediction =
    match prefetch with
    | Some i when Insn.is_indirect i && not (Insn.is_return i) ->
        P.Btb.lookup ~word:(Encode.encode i) t.btb ~pc
    | _ -> None
  in
  (* Stores overwrite memory when the golden model steps; capture the old
     content first so the store-queue entry can expose it to
     disambiguation-mispredicted loads. *)
  let store_old_data =
    match prefetch with
    | Some (Insn.Store (width, _, rs1, imm)) ->
        let addr = Golden.reg t.arch rs1 + imm in
        Phys_mem.read t.mem ~addr ~size:(Insn.bytes width)
    | _ -> 0
  in
  (* Memory-disambiguation check happens against the pre-execution memory:
     capture the stale value a mispredicted load would consume. *)
  let disamb =
    match prefetch with
    | Some (Insn.Load (width, unsigned, rd, rs1, imm) as i) ->
        let addr = Golden.reg t.arch rs1 + imm in
        let size = Insn.bytes width in
        if addr mod size <> 0 then None
        else (
          match Lsu.Stq.pending_alias t.stq ~now:t.slot ~addr ~size with
          | Some (stq_slot, old_raw) when not (P.Mdp.predicts_alias t.mdp ~pc) ->
              (* The aliasing store's address is still unresolved in the
                 pipeline, so the speculative load reads around it and
                 consumes the value memory held before the store. *)
              let stale =
                let bits = 8 * size in
                if unsigned || width = Insn.D then old_raw
                else (old_raw lsl (Sys.int_size - bits)) asr (Sys.int_size - bits)
              in
              ignore i;
              Some (rd, stale, stq_slot)
          | _ -> None)
    | _ -> None
  in
  let s = Golden.step_decoded t.arch ~fetched in
  let insn = s.Golden.s_insn in
  let rob = rob_elem t in
  t.committed <- t.committed + 1;
  let srcs =
    (* Data sources: a load's result derives from the memory word, not
       from its address register. *)
    match (insn, s.Golden.s_mem_addr, s.Golden.s_trap) with
    | Insn.Load _, Some addr, None -> [ Elem.Mem (addr / 8) ]
    | _ -> areg_srcs (Insn.reads insn)
  in
  emit [ Effect.Write (rob, srcs) ];
  (match Insn.writes insn with
  | Some rd -> emit [ Effect.Write (Elem.Areg (Reg.to_int rd), srcs) ]
  | None -> ());
  (* Committed micro-updates. *)
  (match s.Golden.s_mem_addr with
  | Some addr when s.Golden.s_trap = None ->
      let addr_srcs =
        match insn with
        | Insn.Load (_, _, _, rs1, _) | Insn.Store (_, _, rs1, _) ->
            areg_srcs [ rs1 ]
        | _ -> []
      in
      let is_store = Insn.is_store insn in
      let data_srcs =
        if is_store then
          match insn with
          | Insn.Store (_, rs2, _, _) -> areg_srcs [ rs2 ]
          | _ -> []
        else [ Elem.Mem (addr / 8) ]
      in
      let es, c =
        data_access t ~transient:false ~is_store ~addr ~addr_srcs ~data_srcs
      in
      emit es;
      cost := !cost + c;
      if is_store then begin
        match insn with
        | Insn.Store (width, rs2, _, _) ->
            let stq_slot =
              Lsu.Stq.alloc t.stq ~addr ~size:(Insn.bytes width)
                ~data:(Golden.reg t.arch rs2) ~old_data:store_old_data
                ~resolve_at:(t.slot + t.cfg.Config.store_resolve_delay) ()
            in
            emit [ Effect.Write (Elem.Stq stq_slot, srcs);
                   Effect.Write (Elem.Mem (addr / 8), areg_srcs [ rs2 ]) ]
        | _ -> ()
      end
      else begin
        let ldq_slot = Lsu.Ldq.alloc t.ldq ~addr in
        emit [ Effect.Write (Elem.Ldq ldq_slot, addr_srcs) ]
      end
  | _ -> ());
  (match insn with
  | Insn.Fdiv _ -> cost := !cost + fdiv_issue t
  | Insn.Fence_i -> Cache.invalidate_all t.icache
  | _ -> ());
  (* Branch resolution: predictor updates and misprediction windows. *)
  let window_opened = ref None in
  let open_w kind ~after ~spec_pc ~sreg_init =
    window_opened := Some kind;
    emit (open_window t ~kind ~trigger_pc:pc ~after ~spec_pc ~sreg_init)
  in
  (match s.Golden.s_taken with
  | Some taken ->
      let i = P.Bht.update t.bht ~pc ~taken in
      emit [ Effect.Write (Elem.Bht i, srcs);
             Effect.Ctrl { kind = Effect.C_branch;
                           value = (if taken then 1 else 0); srcs;
                           touched = [ Elem.Pc ] } ];
      (match P.Loop.update t.loop ~pc ~taken with
      | Some li -> emit [ Effect.Write (Elem.Loop li, srcs) ]
      | None -> ());
      (match predicted_taken with
      | Some p when p <> taken ->
          (* Mispredicted branch: the wrong path runs transiently. *)
          let wrong_path =
            if taken then pc + 4
            else
              match insn with
              | Insn.Branch (_, _, _, off) -> pc + off
              | _ -> pc + 4
          in
          open_w Effect.W_branch_mispred ~after:`Resume ~spec_pc:wrong_path
            ~sreg_init:[]
      | _ -> ())
  | None -> ());
  (match (insn, s.Golden.s_target) with
  | Insn.Jalr _, Some actual when Insn.is_return insn -> (
      emit [ Effect.Ctrl { kind = Effect.C_target; value = actual;
                           srcs = areg_srcs [ Reg.ra ]; touched = [ Elem.Pc ] } ];
      match ras_prediction with
      | Some (predicted, _) when predicted <> actual ->
          open_w Effect.W_return_mispred ~after:`Resume ~spec_pc:predicted
            ~sreg_init:[]
      | _ -> ())
  | Insn.Jalr _, Some actual -> (
      let i = P.Btb.update ~word:(Encode.encode insn) t.btb ~pc ~target:actual in
      emit [ Effect.Write (Elem.Btb i, srcs);
             Effect.Ctrl { kind = Effect.C_target; value = actual; srcs;
                           touched = [ Elem.Pc ] } ];
      match btb_prediction with
      | Some predicted when predicted <> actual ->
          open_w Effect.W_jump_mispred ~after:`Resume ~spec_pc:predicted
            ~sreg_init:[]
      | _ -> ())
  | _ -> ());
  (* Memory-disambiguation window. *)
  (match disamb with
  | Some (rd, stale, _stq_slot) when s.Golden.s_trap = None ->
      ignore (P.Mdp.train_alias t.mdp ~pc);
      open_w Effect.W_mem_disamb ~after:`Resume ~spec_pc:s.Golden.s_next_pc
        ~sreg_init:[ (rd, stale) ]
  | _ -> ());
  (* Exceptions: transient window on the sequential successors, then the
     trap commits — which, under swapMem, hands control to the scheduler. *)
  let swapped = ref false in
  (match s.Golden.s_trap with
  | Some cause ->
      let window_worthy =
        match cause with
        | Trap.Load_misalign | Trap.Store_misalign | Trap.Load_access_fault
        | Trap.Store_access_fault | Trap.Load_page_fault
        | Trap.Store_page_fault -> true
        | Trap.Illegal_instruction -> t.cfg.Config.illegal_window
        | Trap.Breakpoint | Trap.Ecall_from_user | Trap.Ecall_from_machine
        | Trap.Fetch_access_fault -> false
      in
      if window_worthy && t.window = None then begin
        let sreg_init =
          match insn with
          | Insn.Load (width, _, rd, rs1, imm) when Trap.is_memory cause ->
              let addr = Golden.reg t.arch rs1 + imm in
              let v, fsrcs, sampled =
                transient_fault_forward t ~addr ~size:(Insn.bytes width)
              in
              ignore fsrcs;
              if secret_page addr || sampled then begin
                (* recorded on the window below *)
                ()
              end;
              [ (rd, v) ]
          | _ -> []
        in
        open_w (Effect.W_exception cause) ~after:`Swap ~spec_pc:(pc + 4)
          ~sreg_init;
        (* Taint and secret bookkeeping for the forwarded value. *)
        (match (insn, t.window) with
        | Insn.Load (width, _, rd, rs1, imm), Some w when Trap.is_memory cause ->
            let addr = Golden.reg t.arch rs1 + imm in
            let _, fsrcs, sampled =
              transient_fault_forward t ~addr ~size:(Insn.bytes width)
            in
            if secret_page addr then begin
              w.w_secret_accessed <- true;
              w.w_secret_fault <- true
            end;
            if sampled then begin
              w.w_secret_accessed <- true;
              w.w_secret_fault <- true
            end;
            emit [ Effect.Write (sreg_elem rd, fsrcs) ]
        | _ -> ())
      end
      else begin
        swapped := true;
        ignore (swap_in t)
      end
  | None -> ());
  t.cycles <- t.cycles + !cost;
  { Effect.sl_pc = pc; sl_insn = insn; sl_transient = false;
    sl_window_opened = !window_opened; sl_window_closed = false;
    sl_events = List.rev !events; sl_cycles = t.cycles; sl_committed = true;
    sl_swapped = !swapped }

let step t =
  if t.done_ || t.slot >= t.stim.st_max_slots then begin
    (match t.window with Some w -> ignore (close_window t w) | None -> ());
    t.done_ <- true;
    None
  end
  else begin
    let slot_info =
      match t.window with
      | Some w -> step_transient t w
      | None -> step_committed t
    in
    t.slot <- t.slot + 1;
    Some slot_info
  end

let live t elem =
  match elem with
  | Elem.Areg _ | Elem.Mem _ | Elem.Pc | Elem.Bht _ -> true
  | Elem.Sreg _ | Elem.Rob _ | Elem.Ldq _ | Elem.Stq _ -> false
  | Elem.Dcache i -> Cache.valid t.dcache i
  | Elem.Icache i -> Cache.valid t.icache i
  | Elem.Lfb i -> Cache.Lfb.valid t.lfb i
  | Elem.Btb i -> P.Btb.valid t.btb i
  | Elem.Ras i -> P.Ras.live t.ras i
  | Elem.Loop i -> P.Loop.enabled t.loop && P.Loop.valid t.loop i
  | Elem.Tlb i -> Tlb.valid t.tlb i
  | Elem.L2tlb i -> Tlb.valid t.l2tlb i

let run t =
  let rec go acc =
    match step t with None -> List.rev acc | Some s -> go (s :: acc)
  in
  go []

let state_hash t =
  let h = ref 0 in
  let mix v = h := (!h * 1000003) lxor v lxor (!h lsr 23) in
  let cfg = t.cfg in
  for i = 0 to cfg.Config.dcache_lines - 1 do
    if Cache.valid t.dcache i then begin
      mix (1 + i);
      (* A valid line's contents are observable (e.g. by reload timing):
         hash the first dword of the cached memory. *)
      mix (Phys_mem.read t.mem ~addr:(Cache.line_addr t.dcache i) ~size:8)
    end
  done;
  for i = 0 to cfg.Config.icache_lines - 1 do
    if Cache.valid t.icache i then mix (0x100 + i)
  done;
  for i = 0 to cfg.Config.lfb_entries - 1 do
    mix (Cache.Lfb.data t.lfb i);
    mix (if Cache.Lfb.valid t.lfb i then 1 else 0)
  done;
  for i = 0 to cfg.Config.btb_entries - 1 do
    if P.Btb.valid t.btb i then mix (P.Btb.target_of t.btb i)
  done;
  for i = 0 to cfg.Config.ras_entries - 1 do
    mix (P.Ras.entry t.ras i)
  done;
  mix (P.Ras.tos t.ras);
  for i = 0 to cfg.Config.bht_entries - 1 do
    mix (P.Bht.counter t.bht i)
  done;
  mix t.cycles;
  !h land max_int
