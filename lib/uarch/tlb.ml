type entry = { mutable valid : bool; mutable tag : int }

type t = { entries : entry array; page_bytes : int }

let create ~entries ~page_bytes =
  { entries = Array.init entries (fun _ -> { valid = false; tag = 0 });
    page_bytes }

let enabled t = Array.length t.entries > 0

let access t ~addr =
  if not (enabled t) then `Disabled
  else begin
    let vpn = addr / t.page_bytes in
    let i = vpn land (Array.length t.entries - 1) in
    let e = t.entries.(i) in
    if e.valid && e.tag = vpn then `Hit i
    else begin
      e.valid <- true;
      e.tag <- vpn;
      `Miss i
    end
  end

let valid t i = t.entries.(i).valid

let num_entries t = Array.length t.entries

let invalidate_all t = Array.iter (fun e -> e.valid <- false) t.entries

let reset t =
  Array.iter
    (fun e ->
      e.valid <- false;
      e.tag <- 0)
    t.entries
