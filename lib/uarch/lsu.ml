let overlaps a1 s1 a2 s2 = a1 < a2 + s2 && a2 < a1 + s1

module Stq = struct
  type entry = {
    mutable valid : bool;
    mutable addr : int;
    mutable size : int;
    mutable data : int;
    mutable old_data : int;  (** memory content the store overwrote *)
    mutable resolve_at : int;
    mutable seq : int;  (** allocation order, for youngest-wins scans *)
  }

  type t = { slots : entry array; mutable next : int; mutable seq : int }

  type snapshot = { s_slots : entry array; s_next : int; s_seq : int }

  let mk_entry () =
    { valid = false; addr = 0; size = 0; data = 0; old_data = 0;
      resolve_at = 0; seq = 0 }

  let create ~entries =
    { slots = Array.init entries (fun _ -> mk_entry ()); next = 0; seq = 0 }

  let reset t =
    Array.iter
      (fun e ->
        e.valid <- false;
        e.addr <- 0;
        e.size <- 0;
        e.data <- 0;
        e.old_data <- 0;
        e.resolve_at <- 0;
        e.seq <- 0)
      t.slots;
    t.next <- 0;
    t.seq <- 0

  let alloc t ~addr ~size ~data ?(old_data = 0) ~resolve_at () =
    let i = t.next in
    t.next <- (t.next + 1) mod Array.length t.slots;
    t.seq <- t.seq + 1;
    let e = t.slots.(i) in
    e.valid <- true;
    e.addr <- addr;
    e.size <- size;
    e.data <- data;
    e.old_data <- old_data;
    e.resolve_at <- resolve_at;
    e.seq <- t.seq;
    i

  let scan t pred =
    let best = ref None in
    Array.iteri
      (fun i e ->
        if e.valid && pred e then
          match !best with
          | Some (_, seq) when seq >= e.seq -> ()
          | _ -> best := Some (i, e.seq))
      t.slots;
    Option.map (fun (i, _) -> (i, t.slots.(i).data)) !best

  let pending_alias t ~now ~addr ~size =
    match
      scan t (fun e -> e.resolve_at > now && overlaps e.addr e.size addr size)
    with
    | Some (i, _) -> Some (i, t.slots.(i).old_data)
    | None -> None

  let forward t ~now ~addr ~size =
    scan t (fun e -> e.resolve_at <= now && e.addr = addr && e.size = size)

  let valid t i = t.slots.(i).valid
  let entries t = Array.length t.slots

  let snapshot t =
    { s_slots = Array.map (fun e -> { e with valid = e.valid }) t.slots;
      s_next = t.next; s_seq = t.seq }

  let restore t s =
    Array.iteri
      (fun i e ->
        let src = s.s_slots.(i) in
        e.valid <- src.valid;
        e.addr <- src.addr;
        e.size <- src.size;
        e.data <- src.data;
        e.old_data <- src.old_data;
        e.resolve_at <- src.resolve_at;
        e.seq <- src.seq)
      t.slots;
    t.next <- s.s_next;
    t.seq <- s.s_seq
end

module Ldq = struct
  type entry = { mutable valid : bool; mutable addr : int }

  type t = { slots : entry array; mutable next : int }

  type snapshot = { s_slots : (bool * int) array; s_next : int }

  let create ~entries =
    { slots = Array.init entries (fun _ -> { valid = false; addr = 0 });
      next = 0 }

  let reset t =
    Array.iter
      (fun e ->
        e.valid <- false;
        e.addr <- 0)
      t.slots;
    t.next <- 0

  let alloc t ~addr =
    let i = t.next in
    t.next <- (t.next + 1) mod Array.length t.slots;
    let e = t.slots.(i) in
    e.valid <- true;
    e.addr <- addr;
    i

  let valid t i = t.slots.(i).valid
  let entries t = Array.length t.slots

  let snapshot t =
    { s_slots = Array.map (fun e -> (e.valid, e.addr)) t.slots; s_next = t.next }

  let restore t s =
    Array.iteri
      (fun i (v, a) ->
        t.slots.(i).valid <- v;
        t.slots.(i).addr <- a)
      s.s_slots;
    t.next <- s.s_next
end
