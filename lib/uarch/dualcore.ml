open Dvz_soc
module Metrics = Dvz_obs.Metrics

let m_runs =
  Metrics.counter Metrics.default ~help:"Dual-DUT simulations completed"
    "dvz_sim_runs_total"

let m_cycles =
  Metrics.counter Metrics.default
    ~help:"Simulated cycles summed over both DUT instances"
    "dvz_sim_cycles_total"

let g_taint_hwm =
  Metrics.gauge Metrics.default
    ~help:"High-water mark of the tainted state-element population in any \
           single simulation"
    "dvz_taint_population_hwm"

type log_entry = {
  le_slot : int;
  le_total : int;
  le_per_module : (string * int) list;
  le_in_window : bool;
}

type result = {
  r_windows_a : Core.window_record list;
  r_windows_b : Core.window_record list;
  r_log : log_entry list;
  r_slots : int;
  r_cycles_a : int;
  r_cycles_b : int;
  r_committed_a : int;
  r_final_tainted : Elem.t list;
  r_live_tainted : Elem.t list;
  r_dead_tainted : Elem.t list;
}

type t = {
  core_a : Core.t;
  core_b : Core.t;
  taint : Taintstate.t;
  mutable log : log_entry list;
  mutable slots : int;
}

let default_secret_b secret =
  (* §3.3: generate the variant's secret by flipping each bit of the
     original to minimise identical-value false negatives. *)
  Array.map (fun v -> v lxor 0xFFFFFFFF) secret

let create ?(mode = Dvz_ift.Policy.Diffift) ?secret_b cfg stim =
  let secret_b =
    match secret_b with
    | Some s -> s
    | None -> default_secret_b stim.Core.st_secret
  in
  if Array.length secret_b <> Array.length stim.Core.st_secret then
    invalid_arg "Dualcore.create: secret arity mismatch";
  let swap_b =
    Swapmem.with_schedule stim.Core.st_swapmem
      (Swapmem.schedule stim.Core.st_swapmem)
  in
  let stim_b =
    { stim with Core.st_secret = secret_b; Core.st_swapmem = swap_b }
  in
  let core_a = Core.create cfg stim in
  let core_b = Core.create cfg stim_b in
  let taint = Taintstate.create mode in
  Array.iteri
    (fun i _ -> Taintstate.set_tainted taint (Elem.Mem ((Layout.secret_base / 8) + i)))
    stim.Core.st_secret;
  { core_a; core_b; taint; log = []; slots = 0 }

let core_a t = t.core_a
let core_b t = t.core_b
let taint t = t.taint

let step t =
  if Core.is_done t.core_a && Core.is_done t.core_b then false
  else begin
    let sa = Core.step t.core_a in
    let sb = Core.step t.core_b in
    (match (sa, sb) with
    | None, None -> ()
    | _ ->
        Taintstate.apply_pair t.taint sa sb;
        let in_window =
          match sa with Some s -> s.Effect.sl_transient | None -> false
        in
        t.log <-
          { le_slot = t.slots;
            le_total = Taintstate.tainted_count t.taint;
            le_per_module = Taintstate.tainted_by_module t.taint;
            le_in_window = in_window }
          :: t.log);
    t.slots <- t.slots + 1;
    not (Core.is_done t.core_a && Core.is_done t.core_b)
  end

let collect t =
  let final = Taintstate.tainted_elems t.taint in
  let live, dead = List.partition (Core.live t.core_a) final in
  Metrics.incr m_runs;
  Metrics.incr ~by:(Core.cycles t.core_a + Core.cycles t.core_b) m_cycles;
  Metrics.record_max g_taint_hwm
    (float_of_int
       (List.fold_left (fun acc e -> max acc e.le_total) 0 t.log));
  { r_windows_a = Core.windows t.core_a;
    r_windows_b = Core.windows t.core_b;
    r_log = List.rev t.log;
    r_slots = t.slots;
    r_cycles_a = Core.cycles t.core_a;
    r_cycles_b = Core.cycles t.core_b;
    r_committed_a = Core.committed t.core_a;
    r_final_tainted = final;
    r_live_tainted = live;
    r_dead_tainted = dead }

let run t =
  while step t do
    ()
  done;
  collect t

let window_timing_diffs result =
  let rec go i wa wb acc =
    match (wa, wb) with
    | a :: ra, b :: rb ->
        let acc =
          if a.Core.wr_cycles <> b.Core.wr_cycles then
            (i, a.Core.wr_cycles, b.Core.wr_cycles) :: acc
          else acc
        in
        go (i + 1) ra rb acc
    | (a :: ra), [] -> go (i + 1) ra [] ((i, a.Core.wr_cycles, 0) :: acc)
    | [], (b :: rb) -> go (i + 1) [] rb ((i, 0, b.Core.wr_cycles) :: acc)
    | [], [] -> List.rev acc
  in
  go 0 result.r_windows_a result.r_windows_b []

let taints_in_windows result =
  let rec go prev growth = function
    | [] -> growth
    | e :: rest ->
        let growth =
          if e.le_in_window && e.le_total > prev then
            growth + (e.le_total - prev)
          else growth
        in
        go e.le_total growth rest
  in
  go 0 0 result.r_log
