open Dvz_soc
module Metrics = Dvz_obs.Metrics
module Profile = Dvz_obs.Profile

let m_runs =
  Metrics.counter Metrics.default ~help:"Dual-DUT simulations completed"
    "dvz_sim_runs_total"

let m_cycles =
  Metrics.counter Metrics.default
    ~help:"Simulated cycles summed over both DUT instances"
    "dvz_sim_cycles_total"

let g_taint_hwm =
  Metrics.gauge Metrics.default
    ~help:"High-water mark of the tainted state-element population in any \
           single simulation"
    "dvz_taint_population_hwm"

let m_timeouts =
  Metrics.counter Metrics.default
    ~help:"Simulations aborted by a watchdog budget"
    "dvz_watchdog_timeouts_total"

type log_entry = {
  le_slot : int;
  le_total : int;
  le_per_module : (string * int) list;
  le_in_window : bool;
}

type result = {
  r_windows_a : Core.window_record list;
  r_windows_b : Core.window_record list;
  r_log : log_entry list;
  r_slots : int;
  r_cycles_a : int;
  r_cycles_b : int;
  r_committed_a : int;
  r_final_tainted : Elem.t list;
  r_live_tainted : Elem.t list;
  r_dead_tainted : Elem.t list;
  r_timed_out : bool;
}

type budget = {
  b_max_slots : int option;
  b_max_wall_s : float option;
  b_clock : Dvz_obs.Clock.t;
}

let budget ?max_slots ?max_wall_s ?(clock = Dvz_obs.Clock.real) () =
  (match max_slots with
  | Some n when n <= 0 -> invalid_arg "Dualcore.budget: max_slots must be positive"
  | _ -> ());
  { b_max_slots = max_slots; b_max_wall_s = max_wall_s; b_clock = clock }

type t = {
  core_a : Core.t;
  core_b : Core.t;
  taint : Taintstate.t;
  prov : Dvz_ift.Provenance.t option;
  log_bound : Dvz_ift.Taintlog.bound;
  mutable log : log_entry list;
  mutable log_len : int;
  mutable slots : int;
  mutable taint_hwm : int;
  mutable hung : bool;
  mutable corrupted : bool;
  mutable timed_out : bool;
}

let default_secret_b secret =
  (* §3.3: generate the variant's secret by flipping each bit of the
     original to minimise identical-value false negatives. *)
  Array.map (fun v -> v lxor 0xFFFFFFFF) secret

let create ?provenance ?(log_bound = Dvz_ift.Taintlog.Unbounded)
    ?(mode = Dvz_ift.Policy.Diffift) ?secret_b cfg stim =
  (match log_bound with
  | Dvz_ift.Taintlog.Unbounded -> ()
  | Keep_first n | Keep_last n | Stride n ->
      if n <= 0 then invalid_arg "Dualcore.create: log_bound must be positive");
  let secret_b =
    match secret_b with
    | Some s -> s
    | None -> default_secret_b stim.Core.st_secret
  in
  if Array.length secret_b <> Array.length stim.Core.st_secret then
    invalid_arg
      (Printf.sprintf
         "Dualcore.create: secret arity mismatch: secret_b has %d dwords but \
          the stimulus secret has %d"
         (Array.length secret_b)
         (Array.length stim.Core.st_secret));
  let swap_b =
    Swapmem.with_schedule stim.Core.st_swapmem
      (Swapmem.schedule stim.Core.st_swapmem)
  in
  let stim_b =
    { stim with Core.st_secret = secret_b; Core.st_swapmem = swap_b }
  in
  let core_a = Core.create cfg stim in
  let core_b = Core.create cfg stim_b in
  let taint = Taintstate.create ?provenance mode in
  (* The planted secret words are the taint origins; stamp them before
     slot 0 so replayed slices bottom out at the secret access. *)
  (match provenance with
  | Some p -> Dvz_ift.Provenance.set_context p ~time:(-1) ~in_window:false
  | None -> ());
  Array.iteri
    (fun i _ ->
      let e = Elem.Mem ((Layout.secret_base / 8) + i) in
      (match provenance with
      | Some p -> Dvz_ift.Provenance.source p (Elem.to_string e)
      | None -> ());
      Taintstate.set_tainted taint e)
    stim.Core.st_secret;
  { core_a; core_b; taint; prov = provenance; log_bound; log = [];
    log_len = 0; slots = 0; taint_hwm = 0;
    hung = false; corrupted = false; timed_out = false }

(* Re-arm a built instance with a new stimulus.  Mirrors [create]'s setup
   exactly — same secret-variant derivation, same schedule-preserving copy
   of the swappable memory for instance B, same taint-origin stamping — but
   reuses both cores' state (via [Core.reset]) and the taint tables, so no
   netlist-sized allocation happens.  [mode] and [log_bound] stay what they
   were at [create]; the pool keys on them. *)
let reset ?secret_b t stim =
  let secret_b =
    match secret_b with
    | Some s -> s
    | None -> default_secret_b stim.Core.st_secret
  in
  if Array.length secret_b <> Array.length stim.Core.st_secret then
    invalid_arg
      (Printf.sprintf
         "Dualcore.reset: secret arity mismatch: secret_b has %d dwords but \
          the stimulus secret has %d"
         (Array.length secret_b)
         (Array.length stim.Core.st_secret));
  let swap_b =
    Swapmem.with_schedule stim.Core.st_swapmem
      (Swapmem.schedule stim.Core.st_swapmem)
  in
  let stim_b =
    { stim with Core.st_secret = secret_b; Core.st_swapmem = swap_b }
  in
  Core.reset t.core_a stim;
  Core.reset t.core_b stim_b;
  Taintstate.reset t.taint;
  (match t.prov with
  | Some p -> Dvz_ift.Provenance.set_context p ~time:(-1) ~in_window:false
  | None -> ());
  Array.iteri
    (fun i _ ->
      let e = Elem.Mem ((Layout.secret_base / 8) + i) in
      (match t.prov with
      | Some p -> Dvz_ift.Provenance.source p (Elem.to_string e)
      | None -> ());
      Taintstate.set_tainted t.taint e)
    stim.Core.st_secret;
  t.log <- [];
  t.log_len <- 0;
  t.slots <- 0;
  t.taint_hwm <- 0;
  t.hung <- false;
  t.corrupted <- false;
  t.timed_out <- false

let core_a t = t.core_a
let core_b t = t.core_b
let taint t = t.taint

(* Per-slot log push under the configured bound.  [t.log] is newest-first;
   [Keep_last] trims amortised (only once the list doubles) so the hot
   path stays O(1) per slot. *)
let push_log t e =
  match t.log_bound with
  | Dvz_ift.Taintlog.Unbounded ->
      t.log <- e :: t.log;
      t.log_len <- t.log_len + 1
  | Keep_first n -> if t.log_len < n then begin
      t.log <- e :: t.log;
      t.log_len <- t.log_len + 1
    end
  | Keep_last n ->
      t.log <- e :: t.log;
      t.log_len <- t.log_len + 1;
      if t.log_len >= 2 * n then begin
        t.log <- List.filteri (fun i _ -> i < n) t.log;
        t.log_len <- n
      end
  | Stride k -> if t.slots mod k = 0 then begin
      t.log <- e :: t.log;
      t.log_len <- t.log_len + 1
    end

let step_impl t =
  (match Dvz_resilience.Fault.tick ~cycle:t.slots with
  | `Ok -> ()
  | `Hang -> t.hung <- true
  | `Corrupt -> t.corrupted <- true);
  if t.hung then begin
    (* Wedged: slots keep counting so a budget can notice, but neither
       core makes progress and the loop never terminates on its own. *)
    t.slots <- t.slots + 1;
    true
  end
  else if Core.is_done t.core_a && Core.is_done t.core_b then false
  else begin
    let sa = Core.step t.core_a in
    let sb = Core.step t.core_b in
    (match (sa, sb) with
    | None, None -> ()
    | _ ->
        let in_window =
          match sa with Some s -> s.Effect.sl_transient | None -> false
        in
        (match t.prov with
        | Some p ->
            Dvz_ift.Provenance.set_context p ~time:t.slots ~in_window
        | None -> ());
        Taintstate.apply_pair t.taint sa sb;
        let total = Taintstate.tainted_count t.taint in
        if total > t.taint_hwm then t.taint_hwm <- total;
        push_log t
          { le_slot = t.slots;
            le_total = total;
            le_per_module = Taintstate.tainted_by_module t.taint;
            le_in_window = in_window });
    t.slots <- t.slots + 1;
    not (Core.is_done t.core_a && Core.is_done t.core_b)
  end

(* Armed-guarded so the disarmed simulation loop allocates nothing for
   the probe. *)
let step t =
  if Profile.armed () then Profile.wrap "dualcore/step" (fun () -> step_impl t)
  else step_impl t

let collect t =
  let final = Taintstate.tainted_elems t.taint in
  let live, dead = List.partition (Core.live t.core_a) final in
  Metrics.incr m_runs;
  Metrics.incr ~by:(Core.cycles t.core_a + Core.cycles t.core_b) m_cycles;
  Metrics.record_max g_taint_hwm (float_of_int t.taint_hwm);
  let windows_b = Core.windows t.core_b in
  let windows_b, cycles_b =
    (* An armed Corrupt fault deterministically skews instance B's timing
       so the differential oracle sees a spurious divergence. *)
    if t.corrupted then
      ( (match windows_b with
        | w :: rest -> { w with Core.wr_cycles = w.Core.wr_cycles + 7 } :: rest
        | [] -> []),
        Core.cycles t.core_b + 7 )
    else (windows_b, Core.cycles t.core_b)
  in
  let rev_log =
    match t.log_bound with
    | Dvz_ift.Taintlog.Keep_last n when t.log_len > n ->
        List.filteri (fun i _ -> i < n) t.log
    | _ -> t.log
  in
  { r_windows_a = Core.windows t.core_a;
    r_windows_b = windows_b;
    r_log = List.rev rev_log;
    r_slots = t.slots;
    r_cycles_a = Core.cycles t.core_a;
    r_cycles_b = cycles_b;
    r_committed_a = Core.committed t.core_a;
    r_final_tainted = final;
    r_live_tainted = live;
    r_dead_tainted = dead;
    r_timed_out = t.timed_out }

let over_budget b t start =
  (match b.b_max_slots with Some m -> t.slots >= m | None -> false)
  || (match b.b_max_wall_s with
     | Some m when t.slots land 63 = 0 ->
         (* Poll the wall clock only every 64 slots to keep it off the
            hot path. *)
         Dvz_obs.Clock.now b.b_clock -. start > m
     | _ -> false)

let run ?budget t =
  (match budget with
  | None ->
      while step t do
        ()
      done
  | Some b ->
      let start =
        match b.b_max_wall_s with
        | Some _ -> Dvz_obs.Clock.now b.b_clock
        | None -> 0.0
      in
      let continue_ = ref true in
      while !continue_ do
        if over_budget b t start then begin
          t.timed_out <- true;
          Metrics.incr m_timeouts;
          continue_ := false
        end
        else continue_ := step t
      done);
  collect t

let window_timing_diffs result =
  let rec go i wa wb acc =
    match (wa, wb) with
    | a :: ra, b :: rb ->
        let acc =
          if a.Core.wr_cycles <> b.Core.wr_cycles then
            (i, a.Core.wr_cycles, b.Core.wr_cycles) :: acc
          else acc
        in
        go (i + 1) ra rb acc
    | (a :: ra), [] -> go (i + 1) ra [] ((i, a.Core.wr_cycles, 0) :: acc)
    | [], (b :: rb) -> go (i + 1) [] rb ((i, 0, b.Core.wr_cycles) :: acc)
    | [], [] -> List.rev acc
  in
  go 0 result.r_windows_a result.r_windows_b []

let taints_in_windows result =
  let rec go prev growth = function
    | [] -> growth
    | e :: rest ->
        let growth =
          if e.le_in_window && e.le_total > prev then
            growth + (e.le_total - prev)
          else growth
        in
        go e.le_total growth rest
  in
  go 0 0 result.r_log
