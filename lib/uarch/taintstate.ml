module Policy = Dvz_ift.Policy
module Provenance = Dvz_ift.Provenance

module Eset = struct
  include Hashtbl

  let mem_elem tbl e = Hashtbl.mem tbl e
end

type t = {
  mode : Policy.mode;
  taints : (Elem.t, unit) Hashtbl.t;
  saved : (Elem.t, bool) Hashtbl.t;  (** window-open checkpoint *)
  by_module : (string, int) Hashtbl.t;
      (** per-module tainted-element counts, maintained incrementally on
          taint transitions — [tainted_by_module] is read once per logged
          slot, and rebuilding it by walking every tainted element (each
          [Elem.module_of] call formats a bank name) dominated the log *)
  mutable bymod_cache : (string * int) list option;
      (** memoised [tainted_by_module] result, dropped on any taint
          transition: most logged slots see no transition, so the log
          shares one list instead of folding and sorting per slot *)
  prov : Provenance.t option;
}

let create ?provenance mode =
  { mode; taints = Hashtbl.create 256; saved = Hashtbl.create 64;
    by_module = Hashtbl.create 16; bymod_cache = None; prov = provenance }

let mode t = t.mode

let reset t =
  Hashtbl.reset t.taints;
  Hashtbl.reset t.saved;
  Hashtbl.reset t.by_module;
  t.bymod_cache <- None

let set_tainted t e =
  if not (Hashtbl.mem t.taints e) then begin
    Hashtbl.replace t.taints e ();
    t.bymod_cache <- None;
    let m = Elem.module_of e in
    let cur = try Hashtbl.find t.by_module m with Not_found -> 0 in
    Hashtbl.replace t.by_module m (cur + 1)
  end

let clear_tainted t e =
  if Hashtbl.mem t.taints e then begin
    Hashtbl.remove t.taints e;
    t.bymod_cache <- None;
    let m = Elem.module_of e in
    match Hashtbl.find_opt t.by_module m with
    | Some n when n <= 1 -> Hashtbl.remove t.by_module m
    | Some n -> Hashtbl.replace t.by_module m (n - 1)
    | None -> ()
  end
let is_tainted t e = Eset.mem_elem t.taints e

let set t e v = if v then set_tainted t e else clear_tainted t e

let any_tainted t es = List.exists (is_tainted t) es

(* Provenance labels for tainted predecessors, deduplicated so paired
   slots ([sa @ sb]) don't yield doubled source lists. *)
let tainted_src_labels t srcs =
  List.sort_uniq compare
    (List.filter_map
       (fun e -> if is_tainted t e then Some (Elem.to_string e) else None)
       srcs)

let write t ~diverged dst srcs =
  (match t.prov with
  | None -> ()
  | Some p ->
      let labels = tainted_src_labels t srcs in
      let incoming = labels <> [] || diverged in
      if incoming && not (is_tainted t dst) then
        let kind, labels =
          if labels <> [] then (Provenance.Data, labels)
          else (Provenance.Divergence, [])
        in
        Provenance.record p ~dst:(Elem.to_string dst) ~srcs:labels kind);
  let incoming = any_tainted t srcs || diverged in
  match t.mode with
  | Policy.Cellift -> if incoming then set_tainted t dst
  | Policy.Diffift -> set t dst incoming

let ctrl ?(label = "ctrl") ?(psrcs = []) t ~diverged ~st ~diff touched =
  let propagate =
    st && (match t.mode with Policy.Cellift -> true | Policy.Diffift -> diff)
  in
  if propagate || (diverged && st) then
    match t.prov with
    | None -> List.iter (set_tainted t) touched
    | Some p ->
        let labels = tainted_src_labels t psrcs in
        let kind, labels =
          if labels <> [] then (Provenance.Ctrl label, labels)
          else (Provenance.Divergence, [])
        in
        List.iter
          (fun e ->
            if not (is_tainted t e) then
              Provenance.record p ~dst:(Elem.to_string e) ~srcs:labels kind;
            set_tainted t e)
          touched

let copy_regs_to_spec t =
  for i = 0 to 31 do
    let v = is_tainted t (Elem.Areg i) in
    (match t.prov with
    | Some p when v && not (is_tainted t (Elem.Sreg i)) ->
        Provenance.record p
          ~dst:(Elem.to_string (Elem.Sreg i))
          ~srcs:[ Elem.to_string (Elem.Areg i) ]
          Provenance.Data
    | _ -> ());
    set t (Elem.Sreg i) v
  done

let snapshot t elems =
  Hashtbl.reset t.saved;
  List.iter (fun e -> Hashtbl.replace t.saved e (is_tainted t e)) elems

let restore t elems =
  List.iter
    (fun e ->
      match Hashtbl.find_opt t.saved e with
      | Some v ->
          (match t.prov with
          | Some p when v && not (is_tainted t e) ->
              (* A squash re-establishing taint from the checkpoint: the
                 element is its own predecessor, one taint epoch earlier. *)
              Provenance.record p ~dst:(Elem.to_string e)
                ~srcs:[ Elem.to_string e ] Provenance.Restore
          | _ -> ());
          set t e v
      | None -> ())
    elems

let apply_event t ~diverged = function
  | Effect.Write (dst, srcs) -> write t ~diverged dst srcs
  | Effect.Copy_regs_to_spec -> copy_regs_to_spec t
  | Effect.Snapshot elems -> snapshot t elems
  | Effect.Restore elems -> restore t elems
  | Effect.Ctrl { kind; srcs; touched; _ } ->
      (* Unpaired control decision: the twin did something else entirely,
         so the decision certainly differs. *)
      ctrl ~label:(Effect.ctrl_kind_name kind) ~psrcs:srcs t ~diverged
        ~st:(any_tainted t srcs || diverged) ~diff:true touched

(* An event present in one instance but not the other (e.g. a cache fill on
   a hit/miss divergence): the difference itself is secret-dependent, so
   control decisions count as differing and the touched/written
   microarchitectural state taints — but only if the decision's sources are
   secret-derived or the instruction streams have diverged; an incidental
   bookkeeping write (say, a predictor update with clean operands) must not
   taint just because a neighbouring cache fill was asymmetric. *)
let apply_event_unpaired t ~diverged = function
  | Effect.Write (dst, srcs) -> write t ~diverged dst srcs
  | Effect.Ctrl { kind; srcs; touched; _ } ->
      ctrl ~label:(Effect.ctrl_kind_name kind) ~psrcs:srcs t ~diverged
        ~st:(any_tainted t srcs || diverged) ~diff:true touched
  | (Effect.Copy_regs_to_spec | Effect.Snapshot _ | Effect.Restore _) as e ->
      apply_event t ~diverged e

let apply_event_pair t ~diverged ea eb =
  match (ea, eb) with
  | ( Effect.Ctrl { kind = ka; value = va; srcs = sa; touched = ta },
      Effect.Ctrl { kind = kb; value = vb; srcs = sb; touched = tb } )
    when ka = kb ->
      let st = any_tainted t (sa @ sb) || diverged in
      let diff = va <> vb || diverged in
      ctrl ~label:(Effect.ctrl_kind_name ka) ~psrcs:(sa @ sb) t ~diverged ~st
        ~diff (ta @ tb)
  | Effect.Write (da, sa), Effect.Write (db, sb) when Elem.equal da db ->
      write t ~diverged da (sa @ sb)
  | _ ->
      apply_event_unpaired t ~diverged ea;
      apply_event_unpaired t ~diverged eb

let rec apply_events t ~diverged ea eb =
  match (ea, eb) with
  | [], [] -> ()
  | e :: rest, [] | [], e :: rest ->
      apply_event_unpaired t ~diverged e;
      apply_events t ~diverged rest []
  | a :: ra, b :: rb ->
      apply_event_pair t ~diverged a b;
      apply_events t ~diverged ra rb

let apply_pair t sa sb =
  match (sa, sb) with
  | None, None -> ()
  | Some s, None | None, Some s ->
      List.iter (apply_event t ~diverged:true) s.Effect.sl_events
  | Some a, Some b ->
      let diverged = a.Effect.sl_pc <> b.Effect.sl_pc in
      apply_events t ~diverged a.Effect.sl_events b.Effect.sl_events

let tainted_count t = Hashtbl.length t.taints

let tainted_elems t =
  List.sort Elem.compare (Hashtbl.fold (fun e () acc -> e :: acc) t.taints [])

let tainted_by_module t =
  match t.bymod_cache with
  | Some l -> l
  | None ->
      let l =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_module [])
      in
      t.bymod_cache <- Some l;
      l
