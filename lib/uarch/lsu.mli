(** Load/store queues.

    The store queue is where memory-disambiguation windows come from: a
    store's address counts as unresolved for [store_resolve_delay] slots
    after it executes; a younger load that reads an overlapping address
    while the store is unresolved — and whose {!Predictors.Mdp} entry
    predicts independence — speculatively consumes the stale memory value
    and must later be squashed.

    Both queues are snapshot/restore-able so transient allocations can be
    rolled back at squash time; entries are {!Elem.t}-addressable state. *)

module Stq : sig
  type t

  type snapshot

  val create : entries:int -> t

  val reset : t -> unit
  (** Back to the [create] state: all slots invalid and zeroed, allocation
      and sequence cursors at 0. *)

  val alloc :
    t -> addr:int -> size:int -> data:int -> ?old_data:int ->
    resolve_at:int -> unit -> int
  (** Allocates the next slot round-robin; [resolve_at] is the slot index at
      which the store's address becomes architecturally resolved;
      [old_data] is the memory content the store overwrote — what a
      disambiguation-mispredicted younger load transiently consumes. *)

  val pending_alias :
    t -> now:int -> addr:int -> size:int -> (int * int) option
  (** [(slot, old_data)] of the youngest still-unresolved older store whose
      footprint overlaps [addr,size), if any. *)

  val forward : t -> now:int -> addr:int -> size:int -> (int * int) option
  (** [(slot, data)] of the youngest {e resolved} store covering the access
      exactly — ordinary store-to-load forwarding. *)

  val valid : t -> int -> bool
  val entries : t -> int
  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
end

module Ldq : sig
  type t

  type snapshot

  val create : entries:int -> t

  val reset : t -> unit
  (** Back to the [create] state: all slots invalid and zeroed, cursor 0. *)

  val alloc : t -> addr:int -> int
  val valid : t -> int -> bool
  val entries : t -> int
  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
end
