module Bht = struct
  type t = { counters : int array }

  let create ~entries = { counters = Array.make entries 1 }

  let reset t = Array.fill t.counters 0 (Array.length t.counters) 1

  let index t ~pc = (pc lsr 2) land (Array.length t.counters - 1)

  let predict_taken t ~pc = t.counters.(index t ~pc) >= 2

  let update t ~pc ~taken =
    let i = index t ~pc in
    let c = t.counters.(i) in
    t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
    i

  let counter t i = t.counters.(i)
end

module Btb = struct
  type entry = {
    mutable valid : bool;
    mutable tag : int;
    mutable word : int;  (** encoding of the installing instruction *)
    mutable target : int;
  }

  type t = { entries : entry array; tagged : bool }

  let create ?(tagged = true) ~entries () =
    { entries =
        Array.init entries (fun _ ->
            { valid = false; tag = 0; word = 0; target = 0 });
      tagged }

  let reset t =
    Array.iter
      (fun e ->
        e.valid <- false;
        e.tag <- 0;
        e.word <- 0;
        e.target <- 0)
      t.entries

  let index t ~pc = (pc lsr 2) land (Array.length t.entries - 1)

  let lookup ?(word = 0) t ~pc =
    let e = t.entries.(index t ~pc) in
    (* A tagged BTB (XiangShan) only serves predictions to the exact static
       instruction that installed the entry; an untagged one (BOOM) predicts
       on index aliasing alone. *)
    if e.valid && ((not t.tagged) || (e.tag = pc && e.word = word)) then
      Some e.target
    else None

  let update ?(word = 0) t ~pc ~target =
    let i = index t ~pc in
    let e = t.entries.(i) in
    e.valid <- true;
    e.tag <- pc;
    e.word <- word;
    e.target <- target;
    i

  let valid t i = t.entries.(i).valid
  let target_of t i = t.entries.(i).target
end

module Ras = struct
  type t = { stack : int array; mutable tos : int; mutable depth : int }

  type snapshot = { s_stack : int array; s_tos : int; s_depth : int }

  let create ~entries = { stack = Array.make entries 0; tos = 0; depth = 0 }

  let reset t =
    Array.fill t.stack 0 (Array.length t.stack) 0;
    t.tos <- 0;
    t.depth <- 0

  let size t = Array.length t.stack

  let push t addr =
    t.tos <- (t.tos + 1) mod size t;
    t.stack.(t.tos) <- addr;
    t.depth <- min (size t) (t.depth + 1);
    t.tos

  let pop t =
    if t.depth = 0 then None
    else begin
      let slot = t.tos in
      let addr = t.stack.(slot) in
      t.tos <- (t.tos + size t - 1) mod size t;
      t.depth <- t.depth - 1;
      Some (addr, slot)
    end

  let peek t = if t.depth = 0 then None else Some t.stack.(t.tos)

  let depth t = t.depth
  let tos t = t.tos
  let entry t i = t.stack.(i)

  let snapshot t = { s_stack = Array.copy t.stack; s_tos = t.tos; s_depth = t.depth }

  let restore_full t s =
    Array.blit s.s_stack 0 t.stack 0 (size t);
    t.tos <- s.s_tos;
    t.depth <- s.s_depth

  let restore_top_only t s =
    t.tos <- s.s_tos;
    t.depth <- s.s_depth;
    (* Only the entry at the restored TOS is repaired (BOOM's mitigation);
       entries below keep transiently written values — bug B2. *)
    t.stack.(s.s_tos) <- s.s_stack.(s.s_tos)

  let live t i =
    if t.depth = 0 then false
    else
      let n = size t in
      let dist = (t.tos - i + n) mod n in
      dist < t.depth
end

module Loop = struct
  type entry = { mutable valid : bool; mutable tag : int; mutable streak : int }

  type t = { entries : entry array }

  let create ~entries =
    { entries = Array.init entries (fun _ -> { valid = false; tag = 0; streak = 0 }) }

  let reset t =
    Array.iter
      (fun e ->
        e.valid <- false;
        e.tag <- 0;
        e.streak <- 0)
      t.entries

  let enabled t = Array.length t.entries > 0

  let index t ~pc =
    if enabled t then Some ((pc lsr 2) land (Array.length t.entries - 1))
    else None

  let update t ~pc ~taken =
    match index t ~pc with
    | None -> None
    | Some i ->
        let e = t.entries.(i) in
        if e.valid && e.tag = pc then
          if taken then e.streak <- e.streak + 1 else e.streak <- 0
        else begin
          e.valid <- true;
          e.tag <- pc;
          e.streak <- (if taken then 1 else 0)
        end;
        Some i

  let valid t i = t.entries.(i).valid
  let streak t i = t.entries.(i).streak
end

module Mdp = struct
  type t = { alias : bool array }

  let create ~entries = { alias = Array.make entries false }

  let reset t = Array.fill t.alias 0 (Array.length t.alias) false

  let index t ~pc = (pc lsr 2) land (Array.length t.alias - 1)

  let predicts_alias t ~pc = t.alias.(index t ~pc)

  let train_alias t ~pc =
    let i = index t ~pc in
    t.alias.(i) <- true;
    i
end
