type ctrl_kind = C_branch | C_target | C_addr | C_squash

let ctrl_kind_name = function
  | C_branch -> "branch"
  | C_target -> "target"
  | C_addr -> "addr"
  | C_squash -> "squash"

type event =
  | Write of Elem.t * Elem.t list
  | Ctrl of {
      kind : ctrl_kind;
      value : int;
      srcs : Elem.t list;
      touched : Elem.t list;
    }
  | Copy_regs_to_spec
  | Snapshot of Elem.t list
  | Restore of Elem.t list

type window_kind =
  | W_exception of Dvz_isa.Trap.cause
  | W_branch_mispred
  | W_jump_mispred
  | W_return_mispred
  | W_mem_disamb

let window_kind_name = function
  | W_exception c -> "excp:" ^ Dvz_isa.Trap.name c
  | W_branch_mispred -> "branch-mispred"
  | W_jump_mispred -> "jump-mispred"
  | W_return_mispred -> "return-mispred"
  | W_mem_disamb -> "mem-disamb"

type slot = {
  sl_pc : int;
  sl_insn : Dvz_isa.Insn.t;
  sl_transient : bool;
  sl_window_opened : window_kind option;
  sl_window_closed : bool;
  sl_events : event list;
  sl_cycles : int;
  sl_committed : bool;
  sl_swapped : bool;
}
