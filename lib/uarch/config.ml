type preset = Boom | Xiangshan

type t = {
  name : string;
  preset : preset;
  rob_entries : int;
  window_insns : int;
  icache_lines : int;
  dcache_lines : int;
  line_bytes : int;
  lfb_entries : int;
  bht_entries : int;
  btb_entries : int;
  ras_entries : int;
  loop_entries : int;
  tlb_entries : int;
  l2tlb_entries : int;
  ldq_entries : int;
  stq_entries : int;
  miss_latency : int;
  fdiv_latency : int;
  squash_penalty : int;
  store_resolve_delay : int;
  illegal_window : bool;
  btb_tagged : bool;
  spec_update_loop : bool;
  phys_addr_bits : int;
  meltdown_forward : bool;
  addr_truncate_bug : bool;
  ras_restore_below_tos_bug : bool;
  btb_exception_race_bug : bool;
  fetch_contention_bug : bool;
  load_wb_contention_bug : bool;
}

let boom_small =
  { name = "BOOM(SmallBOOM)";
    preset = Boom;
    rob_entries = 32;
    window_insns = 20;
    icache_lines = 128;
    dcache_lines = 256;
    line_bytes = 64;
    lfb_entries = 8;
    bht_entries = 128;
    btb_entries = 32;
    ras_entries = 8;
    loop_entries = 16;
    tlb_entries = 8;
    l2tlb_entries = 32;
    ldq_entries = 8;
    stq_entries = 8;
    miss_latency = 20;
    fdiv_latency = 24;
    squash_penalty = 4;
    store_resolve_delay = 4;
    (* BOOM catches illegal instructions at decode; no transient window. *)
    illegal_window = false;
    btb_tagged = false;
    spec_update_loop = true;
    phys_addr_bits = 32;
    meltdown_forward = true;
    addr_truncate_bug = false;
    ras_restore_below_tos_bug = true;
    btb_exception_race_bug = true;
    fetch_contention_bug = true;
    load_wb_contention_bug = false }

let xiangshan_minimal =
  { name = "XiangShan(MinimalConfig)";
    preset = Xiangshan;
    rob_entries = 48;
    window_insns = 24;
    icache_lines = 128;
    dcache_lines = 256;
    line_bytes = 64;
    lfb_entries = 8;
    bht_entries = 256;
    btb_entries = 64;
    ras_entries = 16;
    loop_entries = 0;
    tlb_entries = 16;
    l2tlb_entries = 0;
    ldq_entries = 16;
    stq_entries = 16;
    miss_latency = 24;
    fdiv_latency = 20;
    squash_penalty = 5;
    store_resolve_delay = 5;
    illegal_window = true;
    btb_tagged = true;
    spec_update_loop = false;
    phys_addr_bits = 36;
    meltdown_forward = true;
    addr_truncate_bug = true;
    ras_restore_below_tos_bug = false;
    btb_exception_race_bug = false;
    fetch_contention_bug = true;
    load_wb_contention_bug = true }

let preset_name = function Boom -> "BOOM" | Xiangshan -> "XiangShan"

let annotation_loc c = match c.preset with Boom -> 212 | Xiangshan -> 592

let verilog_loc c =
  match c.preset with Boom -> 171_000 | Xiangshan -> 893_000
