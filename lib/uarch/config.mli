(** Core configurations.

    Two presets mirror the paper's Table 2 devices-under-test: [boom_small]
    (SmallBOOM) and [xiangshan_minimal] (MinimalConfig).  Structure sizes
    are scaled-down but proportionate; the bug flags plant the transient
    execution behaviours each real core exhibits (§6.4 and Table 5), so the
    fuzzer's findings can be checked against ground truth. *)

type preset = Boom | Xiangshan

type t = {
  name : string;
  preset : preset;
  (* capacity parameters *)
  rob_entries : int;
  window_insns : int;       (** max transiently executed instructions *)
  icache_lines : int;
  dcache_lines : int;
  line_bytes : int;
  lfb_entries : int;
  bht_entries : int;
  btb_entries : int;
  ras_entries : int;
  loop_entries : int;
  tlb_entries : int;
  l2tlb_entries : int;      (** 0 when the core has no L2 TLB *)
  ldq_entries : int;
  stq_entries : int;
  (* timing parameters *)
  miss_latency : int;       (** cache refill latency in cycles *)
  fdiv_latency : int;
  squash_penalty : int;
  store_resolve_delay : int;(** slots a store address stays unresolved *)
  (* behaviour switches *)
  illegal_window : bool;    (** illegal instructions open transient windows *)
  btb_tagged : bool;        (** BTB entries carry a full-pc tag (XiangShan);
                                an untagged BTB (BOOM) predicts on index
                                aliasing alone, so untargeted training can
                                still install usable entries *)
  spec_update_loop : bool;  (** loop predictor updated by transient branches *)
  phys_addr_bits : int;     (** width the load unit truncates addresses to *)
  (* planted bugs (§6.4) *)
  meltdown_forward : bool;          (** faulting loads forward real data *)
  addr_truncate_bug : bool;         (** B1 MeltDown-Sampling *)
  ras_restore_below_tos_bug : bool; (** B2 Phantom-RSB *)
  btb_exception_race_bug : bool;    (** B3 Phantom-BTB *)
  fetch_contention_bug : bool;      (** B4 Spectre-Refetch *)
  load_wb_contention_bug : bool;    (** B5 Spectre-Reload *)
}

val boom_small : t
val xiangshan_minimal : t

val preset_name : preset -> string

val annotation_loc : t -> int
(** The manual liveness-annotation effort this configuration models,
    mirroring Table 2's "Annotation LoC" row. *)

val verilog_loc : t -> int
(** Size of the corresponding RTL design in the paper (Table 2), reported
    for the descriptive Table 2 bench. *)
