(** A small direct-mapped TLB (page-granular).  Like {!Cache}, only
    presence is modelled; fills during transient execution leave observable
    (and taintable) traces, one of the encoded timing components of
    Table 5. *)

type t

val create : entries:int -> page_bytes:int -> t
(** [entries = 0] builds a disabled TLB that always hits and never fills. *)

val enabled : t -> bool

val access : t -> addr:int -> [ `Hit of int | `Miss of int | `Disabled ]

val valid : t -> int -> bool

val num_entries : t -> int

val invalidate_all : t -> unit

val reset : t -> unit
(** Back to the [create] state: entries invalid and tags zeroed. *)
