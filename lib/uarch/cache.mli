(** Direct-mapped caches and the line-fill buffer.

    The cache tracks tags/valid bits only (data lives in {!Dvz_soc.Phys_mem});
    what the fuzzer observes is presence — which lines exist — plus the taint
    the shared shadow attaches to line and LFB elements.

    The LFB models the §3.1 C2-2 decoy: a refill deposits (possibly secret)
    data in a slot, and completion clears the MSHR valid bit {e without}
    clearing the data.  A value-matching or hash-based oracle flags the
    stale slot; the liveness oracle does not. *)

type t

val create : lines:int -> line_bytes:int -> t

val line_index : t -> addr:int -> int

val lookup : t -> addr:int -> bool
(** Hit/miss without side effect. *)

val access : t -> addr:int -> [ `Hit of int | `Miss of int ]
(** Accesses the line containing [addr], filling it on a miss; returns the
    line index either way. *)

val invalidate_all : t -> unit
(** Flush (fence.i / swap-time icache flush). *)

val reset : t -> unit
(** Back to the [create] state: every line invalid {e and} its tag zeroed
    (unlike [invalidate_all], which leaves stale tags — invisible to
    lookups but hashed by [Core.state_hash]). *)

val valid : t -> int -> bool

val line_addr : t -> int -> int
(** Base byte address of the (valid) line at index [i]. *)

val num_lines : t -> int

(* Line-fill buffer with MSHR valid bits. *)
module Lfb : sig
  type t

  val create : entries:int -> t

  val reset : t -> unit
  (** Back to the [create] state: data zeroed (it is hashed even in dead
      slots), MSHR valid bits clear, allocation cursor at slot 0. *)

  val refill : t -> data:int -> int
  (** A refill passes through the LFB: allocates the next slot round-robin,
      deposits [data], and — the refill having completed — leaves the slot's
      MSHR valid bit {e clear}.  Returns the slot index. *)

  val data : t -> int -> int
  val valid : t -> int -> bool
  val entries : t -> int
  val set_valid : t -> int -> bool -> unit
end
