(** Speculative out-of-order core model.

    The model executes a swapMem stimulus one instruction per {!step} call.
    Committed instructions run on the architectural golden model; control
    mispredictions, architectural exceptions and memory-disambiguation
    mispredictions open {e transient windows}, during which subsequent
    instructions execute on a speculative register copy with full
    microarchitectural side effects (cache and TLB fills, RAS updates, port
    occupancy, LFB refills) but no architectural ones.  Squash restores the
    checkpointed structures — modulo the planted recovery bugs — and
    execution resumes.

    Every slot reports its microarchitectural effects as an {!Effect.slot},
    which the dual-instance taint engine consumes; timing is modelled by a
    per-slot cycle cost (cache misses, divider and port contention), which
    is what the constant-time oracle compares across instances. *)

type stimulus = {
  st_swapmem : Dvz_soc.Swapmem.t;
  st_tighten_secret : bool;
      (** flip the secret page to machine-only before the transient blob *)
  st_secret : int array;    (** dwords written to the secret region *)
  st_data : (int * int) list;
      (** extra (addr, dword) initialisation, e.g. operand tables *)
  st_perms : (int * Dvz_soc.Perm.t) list;
      (** page-permission overrides, e.g. an absent page for page-fault
          triggers *)
  st_max_slots : int;
}

(** A closed transient window, as recorded for the RoB trace log. *)
type window_record = {
  wr_kind : Effect.window_kind;
  wr_trigger_pc : int;
  wr_enqueued : int;        (** instructions enqueued but never committed *)
  wr_cycles : int;          (** window duration incl. post-squash stalls *)
  wr_start_slot : int;
  wr_secret_accessed : bool;(** a transient access touched the secret page *)
  wr_secret_fault : bool;   (** ... and that access was a privilege fault *)
  wr_in_transient_blob : bool;
}

type t

val create : Config.t -> stimulus -> t
(** Builds a core over a fresh memory, writes secrets and operand data,
    loads the first scheduled blob and points fetch at its entry. *)

val reset : t -> stimulus -> unit
(** Re-arms an existing core for a new stimulus without reallocating:
    after [reset t stim] the core is bit-identical (state hash, windows,
    cycle counts, every observable) to [create (config t) stim].  The
    pooling fast path behind {!Dejavuzz.Simpool}. *)

val config : t -> Config.t
val mem : t -> Dvz_soc.Phys_mem.t

val step : t -> Effect.slot option
(** Executes one instruction slot; [None] once the stimulus has finished
    (schedule exhausted or slot budget spent). *)

val is_done : t -> bool

val arch_reg : t -> Dvz_isa.Reg.t -> int
(** Committed (architectural) register value — speculation must never be
    visible here; the co-simulation tests check this against the pure
    golden model. *)

val cycles : t -> int
val committed : t -> int
val slot_count : t -> int

val windows : t -> window_record list
(** Closed windows in chronological order. *)

val in_window : t -> bool

val live : t -> Elem.t -> bool
(** End-of-run liveness of a state element (§4.3.2): caches/TLB/BTB report
    their valid bits, the RAS its pending-entry range, the LFB its MSHR
    valid bits; drained structures (ROB, speculative registers, load/store
    queues) are dead; architectural state is live. *)

val run : t -> Effect.slot list
(** Steps to completion, returning all slots. *)

val state_hash : t -> int
(** A hash of the final microarchitectural state — cache tags and cached
    line contents, LFB data, predictor state, queue contents and the cycle
    count.  This is the SpecDoctor-style differential oracle: comparing the
    hashes of the two DUT instances flags {e any} secret-dependent state
    difference, including unexploitable residue (§3.1's C2-2). *)
