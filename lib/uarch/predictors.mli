(** Branch-prediction structures: BHT, BTB, RAS and loop predictor.

    Each structure exposes its update footprint as {!Elem.t} indices so the
    shared taint shadow can attribute state changes, and liveness predicates
    so the oracle can tell pending entries from dead ones.

    The RAS supports the two squash-restore policies relevant to bug B2
    (Phantom-RSB): the correct policy restores the full stack from a
    checkpoint; the buggy BOOM policy restores only the TOS pointer and the
    top entry, leaving transient overwrites of deeper entries in place. *)

(* Branch history table: 2-bit saturating counters. *)
module Bht : sig
  type t

  val create : entries:int -> t
  val reset : t -> unit
  (** All counters back to the weakly-not-taken [create] state. *)

  val index : t -> pc:int -> int
  val predict_taken : t -> pc:int -> bool
  val update : t -> pc:int -> taken:bool -> int
  (** Returns the updated entry index. *)

  val counter : t -> int -> int
end

(* Branch target buffer: direct-mapped, tagged. *)
module Btb : sig
  type t

  val create : ?tagged:bool -> entries:int -> unit -> t
  (** [tagged] (default true): whether lookups require an exact pc-tag
      match; untagged BTBs hit on index aliasing. *)

  val reset : t -> unit
  (** Invalidate and zero every entry (back to the [create] state). *)

  val index : t -> pc:int -> int

  val lookup : ?word:int -> t -> pc:int -> int option
  (** [word] is the encoding of the looking-up instruction; a tagged BTB
      requires it to match the installing instruction's. *)

  val update : ?word:int -> t -> pc:int -> target:int -> int
  (** Installs/overwrites the entry for [pc]; returns the entry index. *)

  val valid : t -> int -> bool
  val target_of : t -> int -> int
end

(* Return address stack. *)
module Ras : sig
  type t

  type snapshot

  val create : entries:int -> t

  val reset : t -> unit
  (** Empty the stack and zero every slot (back to the [create] state). *)

  val push : t -> int -> int
  (** Pushes a return address; returns the written slot. *)

  val pop : t -> (int * int) option
  (** Pops; returns [(addr, slot)] or [None] when empty. *)

  val peek : t -> int option
  val depth : t -> int
  val tos : t -> int
  val entry : t -> int -> int

  val snapshot : t -> snapshot
  val restore_full : t -> snapshot -> unit
  (** Correct squash recovery: every entry, TOS and depth restored. *)

  val restore_top_only : t -> snapshot -> unit
  (** BOOM's buggy recovery (B2): restores TOS, depth and the top entry;
      deeper entries keep whatever transient execution wrote. *)

  val live : t -> int -> bool
  (** Whether slot [i] holds a pending (poppable) return address. *)
end

(* Loop predictor: per-branch trip counting. *)
module Loop : sig
  type t

  val create : entries:int -> t
  (** [entries = 0] builds a disabled predictor (XiangShan MinimalConfig). *)

  val reset : t -> unit
  (** Invalidate and zero every entry (back to the [create] state). *)

  val enabled : t -> bool
  val index : t -> pc:int -> int option
  val update : t -> pc:int -> taken:bool -> int option
  (** Returns the updated entry index, if the predictor is enabled. *)

  val valid : t -> int -> bool
  val streak : t -> int -> int
end

(* Memory dependence (disambiguation) predictor. *)
module Mdp : sig
  type t

  val create : entries:int -> t
  val reset : t -> unit
  (** Forget every trained alias (back to the [create] state). *)

  val index : t -> pc:int -> int
  val predicts_alias : t -> pc:int -> bool
  (** Optimistic default: loads are predicted independent of older stores. *)

  val train_alias : t -> pc:int -> int
  (** Records that the load at [pc] aliased; returns the entry index. *)
end
