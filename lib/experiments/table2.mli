(** Table 2 — the cores under evaluation (descriptive). *)

val render : unit -> string
