module Rng = Dvz_util.Rng
module Cfg = Dvz_uarch.Config
module Tablefmt = Dvz_util.Tablefmt
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module Trigger_gen = Dejavuzz.Trigger_gen
module Trigger_opt = Dejavuzz.Trigger_opt
module Sd = Dvz_baselines.Specdoctor

type cell = { c_rate : float; c_to : float; c_eto : float }

type row = {
  r_core : string;
  r_fuzzer : string;
  r_cells : (Seed.trigger_kind * cell option) list;
}

let kinds = Array.to_list Seed.all_kinds

(* One DejaVuzz-style cell: sample seeds, evaluate, reduce, average. *)
let dejavuzz_cell ~style ~samples rng cfg kind =
  let hits = ref 0 and to_sum = ref 0 and eto_sum = ref 0 in
  for _ = 1 to samples do
    let seed = Seed.random_of_kind rng kind in
    let tc = Trigger_gen.generate ~style ~force_training:true cfg seed in
    if Trigger_opt.evaluate cfg tc then begin
      let reduced, _ = Trigger_opt.reduce cfg tc in
      let total, eff = Packet.training_overhead reduced in
      incr hits;
      to_sum := !to_sum + total;
      eto_sum := !eto_sum + eff
    end
  done;
  if !hits = 0 then None
  else
    Some
      { c_rate = float_of_int !hits /. float_of_int samples;
        c_to = float_of_int !to_sum /. float_of_int !hits;
        c_eto = float_of_int !eto_sum /. float_of_int !hits }

let specdoctor_cell ~samples rng cfg kind =
  if not (Array.exists (( = ) kind) Sd.supported) then None
  else begin
    let hits = ref 0 and to_sum = ref 0 in
    for _ = 1 to samples do
      let case = Sd.generate_of_kind rng cfg kind in
      if Sd.triggered cfg case then begin
        incr hits;
        to_sum := !to_sum + case.Sd.sc_training_insns
      end
    done;
    if !hits = 0 then None
    else
      Some
        { c_rate = float_of_int !hits /. float_of_int samples;
          c_to = float_of_int !to_sum /. float_of_int !hits;
          c_eto = float_of_int !to_sum /. float_of_int !hits }
  end

let run ?(samples = 40) ?(rng_seed = 2025) () =
  let rng = Rng.create rng_seed in
  let cell_row core fuzzer f =
    { r_core = core; r_fuzzer = fuzzer;
      r_cells = List.map (fun k -> (k, f k)) kinds }
  in
  let boom = Cfg.boom_small and xs = Cfg.xiangshan_minimal in
  [ cell_row "BOOM" "DejaVuzz" (dejavuzz_cell ~style:`Derived ~samples rng boom);
    cell_row "BOOM" "DejaVuzz*" (dejavuzz_cell ~style:`Random ~samples rng boom);
    cell_row "BOOM" "SpecDoctor" (specdoctor_cell ~samples rng boom);
    cell_row "XiangShan" "DejaVuzz"
      (dejavuzz_cell ~style:`Derived ~samples rng xs);
    cell_row "XiangShan" "DejaVuzz*"
      (dejavuzz_cell ~style:`Random ~samples rng xs) ]

let render rows =
  let headers =
    "Processor" :: "Fuzzer"
    :: List.map (fun k -> Seed.kind_name k ^ " TO(ETO)") kinds
  in
  let tbl = Tablefmt.create headers in
  List.iter
    (fun r ->
      let cells =
        List.map
          (fun (_, c) ->
            match c with
            | None -> "x"
            | Some c -> Printf.sprintf "%.1f (%.1f)" c.c_to c.c_eto)
          r.r_cells
      in
      Tablefmt.add_row tbl (r.r_core :: r.r_fuzzer :: cells))
    rows;
  "Table 3: training overhead per transient window type\n"
  ^ Tablefmt.render tbl
