(** The five hand-written transient-execution attack test cases of the
    Table 4 / Figure 6 micro-benchmark ("we manually implement a benchmark
    covering common transient execution vulnerability test cases"). *)

type name = Spectre_v1 | Spectre_v2 | Meltdown | Spectre_v4 | Spectre_rsb

val all : name list

val to_string : name -> string

val build : Dvz_uarch.Config.t -> name -> Dejavuzz.Packet.testcase
(** Builds the attack as a swapMem test case with a deterministic
    flush+reload (dcache-encoding) payload.  The construction searches a
    few trigger entropies and keeps the first that verifiably triggers, so
    the result is deterministic and known-good.  Raises [Failure] if the
    attack cannot be triggered on this configuration. *)

val secret : int array
(** The secret dwords the micro-benchmark uses. *)
