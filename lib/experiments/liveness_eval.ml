module Oracle = Dejavuzz.Oracle
module Sd = Dvz_baselines.Specdoctor

type result = {
  candidates : int;
  real_leaks : int;
  false_positives : int;
  no_liveness_correct : int;
  no_liveness_wrong : int;
}

let run ?(iterations = 150) ?(rng_seed = 5) cfg =
  let st = Sd.campaign ~rng_seed ~iterations cfg in
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xFEED in
  let verdicts =
    List.map
      (fun c ->
        let with_liveness = Oracle.analyze cfg ~secret c.Sd.sc_testcase in
        let without =
          Oracle.analyze ~use_liveness:false cfg ~secret c.Sd.sc_testcase
        in
        (Oracle.is_leak with_liveness, Oracle.is_leak without))
      st.Sd.sd_candidates
  in
  let candidates = List.length verdicts in
  let real_leaks = List.length (List.filter fst verdicts) in
  let agree = List.length (List.filter (fun (a, b) -> a = b) verdicts) in
  { candidates;
    real_leaks;
    false_positives = candidates - real_leaks;
    no_liveness_correct = agree;
    no_liveness_wrong = candidates - agree }

let render r =
  Printf.sprintf
    "Liveness evaluation (SpecDoctor phase-3 candidates replayed through the\n\
     taint liveness oracle):\n\
    \  candidates flagged by state-hash differences: %d  (paper: 75)\n\
    \  real leaks per liveness oracle:               %d  (paper: 17)\n\
    \  false positives (residue only):               %d  (paper: 58)\n\
    \  liveness-ablated oracle correct on:           %d  (paper: 21)\n\
    \  liveness-ablated oracle misclassified:        %d  (paper: 54)\n"
    r.candidates r.real_leaks r.false_positives r.no_liveness_correct
    r.no_liveness_wrong
