(** Table 3 — training overhead for the eight transient-window types,
    comparing DejaVuzz, the DejaVuzz* ablation (random training) and
    SpecDoctor.

    For each (core, fuzzer, window-type) cell we sample [samples] windows,
    run Phase 1 (evaluation + training reduction where the fuzzer supports
    it) and report mean TO — training instructions including alignment
    nops — and mean ETO (nops excluded).  ✗ marks window types the fuzzer
    failed to trigger, matching the paper's notation.  Like the paper, the
    misprediction rows only count windows that actually require training. *)

type cell = { c_rate : float; c_to : float; c_eto : float }
(** Trigger success rate and mean overheads over the successful samples. *)

type row = {
  r_core : string;
  r_fuzzer : string;
  r_cells : (Dejavuzz.Seed.trigger_kind * cell option) list;
      (** [None] when the fuzzer never triggered the window type *)
}

val run : ?samples:int -> ?rng_seed:int -> unit -> row list
(** Collects the full matrix (both cores; SpecDoctor only on BOOM, as in
    the paper — its DUT patching only supports BOOM). *)

val render : row list -> string
