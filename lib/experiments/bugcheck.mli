(** Proof-of-concept reproductions of the paper's five new vulnerabilities
    (§6.4, Table 5), each built as a deterministic test case whose oracle
    verdict is checked against the planted ground truth:

    - {b B1 MeltDown-Sampling} (CVE-2024-44594, XiangShan): a masked
      out-of-physical-range alias of the secret address is sampled by the
      load unit despite the access fault — a privilege-crossing Meltdown.
    - {b B2 Phantom-RSB} (CVE-2024-44591, BOOM): secret-gated transient
      returns-then-calls corrupt RAS entries below the checkpointed TOS,
      which BOOM's top-only squash recovery never repairs.
    - {b B3 Phantom-BTB} (CVE-2024-44590, BOOM): a transient jalr's
      misprediction correction racing an exception commit updates the
      faulting pc's BTB entry with a secret-dependent target.
    - {b B4 Spectre-Refetch} (CVE-2024-44592/3, both): a secret-dependent
      branch to a cold instruction line preempts the fetch port past the
      squash, delaying the first post-window instruction.
    - {b B5 Spectre-Reload} (CVE-2024-44595, XiangShan): the load pipeline
      and load queue contend on the load write-back port, so a transient
      cache-hitting load's latency depends on an in-flight miss. *)

type bug = B1 | B2 | B3 | B4 | B5

val all : bug list

val name : bug -> string
val cve : bug -> string

val vulnerable_core : bug -> Dvz_uarch.Config.t
(** The configuration that plants the bug. *)

val immune_core : bug -> Dvz_uarch.Config.t option
(** A configuration expected {e not} to exhibit the bug, when one exists. *)

type verdict = {
  v_detected : bool;                    (** the oracle flags a leak *)
  v_components : Dejavuzz.Oracle.component list; (** attributed components *)
  v_attack : [ `Meltdown | `Spectre ] option;
}

val check : Dvz_uarch.Config.t -> bug -> verdict
(** Builds the bug's PoC test case on the given core and runs the full
    Phase 3 analysis. *)

val expected_component : bug -> Dejavuzz.Oracle.component
(** The Table 5 component the detection must attribute ("dcache" for B1's
    sampled secret, "ras" for B2, "(fau)btb" for B3, "icache" for B4,
    "lsu" for B5). *)

val render : unit -> string
(** Runs every PoC on its vulnerable core (and immune core where defined)
    and renders the B1-B5 summary table. *)
