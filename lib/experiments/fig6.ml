module Cfg = Dvz_uarch.Config
module Dualcore = Dvz_uarch.Dualcore
module Packet = Dejavuzz.Packet

type series = {
  s_case : string;
  s_mode : string;
  s_totals : int array;
  s_window : (int * int) option;
}

let window_range log =
  let first = ref None and last = ref None in
  List.iter
    (fun e ->
      if e.Dualcore.le_in_window then begin
        if !first = None then first := Some e.Dualcore.le_slot;
        last := Some e.Dualcore.le_slot
      end)
    log;
  match (!first, !last) with Some a, Some b -> Some (a, b) | _ -> None

let one_series cfg name mode mode_name ~fn =
  let tc = Attacks.build cfg name in
  let stim = Packet.stimulus ~secret:Attacks.secret tc in
  let secret_b = if fn then Some Attacks.secret else None in
  let dc = Dualcore.create ~mode ?secret_b cfg stim in
  let result = Dualcore.run dc in
  { s_case = Attacks.to_string name;
    s_mode = mode_name;
    s_totals =
      Array.of_list (List.map (fun e -> e.Dualcore.le_total) result.Dualcore.r_log);
    s_window = window_range result.Dualcore.r_log }

let run ?(cfg = Cfg.boom_small) () =
  List.concat_map
    (fun name ->
      [ one_series cfg name Dvz_ift.Policy.Cellift "CellIFT" ~fn:false;
        one_series cfg name Dvz_ift.Policy.Diffift "diffIFT" ~fn:false;
        one_series cfg name Dvz_ift.Policy.Diffift "diffIFT-FN" ~fn:true ])
    Attacks.all

let sample totals buckets =
  let n = Array.length totals in
  if n = 0 then []
  else
    List.init buckets (fun i ->
        let idx = min (n - 1) (i * n / buckets) in
        totals.(idx))

let render series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 6: taint population during each attack test case (per-slot)\n";
  List.iter
    (fun s ->
      let peak = Array.fold_left max 0 s.s_totals in
      let final =
        if Array.length s.s_totals = 0 then 0
        else s.s_totals.(Array.length s.s_totals - 1)
      in
      let pts = sample s.s_totals 16 in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-10s window=%-12s peak=%4d final=%4d  series: %s\n"
           s.s_case s.s_mode
           (match s.s_window with
           | None -> "-"
           | Some (a, b) -> Printf.sprintf "[%d,%d]" a b)
           peak final
           (String.concat " " (List.map string_of_int pts))))
    series;
  Buffer.contents buf
