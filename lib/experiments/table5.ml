module Cfg = Dvz_uarch.Config
module Campaign = Dejavuzz.Campaign
module Report = Dejavuzz.Report
module Oracle = Dejavuzz.Oracle
module Sd = Dvz_baselines.Specdoctor

type result = {
  core : string;
  stats : Campaign.stats;
  specdoctor_components : string list;
}

let specdoctor_reach cfg ~rng_seed =
  if cfg.Cfg.preset <> Cfg.Boom then []
  else begin
    (* Replay SpecDoctor's hash-difference candidates through the liveness
       oracle to see which components its stimuli actually reach. *)
    let st = Sd.campaign ~rng_seed ~iterations:100 cfg in
    let secret = Array.make Dvz_soc.Layout.secret_dwords 0x1234 in
    let comps =
      List.concat_map
        (fun c ->
          let a = Oracle.analyze cfg ~secret c.Sd.sc_testcase in
          List.concat_map
            (function
              | Oracle.Timing { components; _ } -> components
              | Oracle.Encode { components; _ } -> components)
            a.Oracle.a_leaks)
        st.Sd.sd_candidates
    in
    List.sort_uniq compare comps
  end

let run ?(iterations = 1200) ?(rng_seed = 13) ?telemetry ?resilience ?jobs
    ?(batch = 1) cfg =
  let resilience =
    (* Each core campaign gets its own checkpoint file from one flag. *)
    Option.map (fun rz -> Campaign.with_suffix rz cfg.Cfg.name) resilience
  in
  let telemetry =
    match telemetry with
    | None -> None
    | Some tel ->
        (* run_many puts each core on its own domain sharing one sink:
           label events and progress lines with the core. *)
        Some
          { tel with
            Campaign.t_events =
              Dvz_obs.Events.with_context tel.Campaign.t_events
                [ ("core", Dvz_obs.Json.Str cfg.Cfg.name) ];
            t_progress =
              (fun line ->
                tel.Campaign.t_progress
                  (Printf.sprintf "%s %s" cfg.Cfg.name line)) }
  in
  let stats =
    Campaign.run ?telemetry ?resilience ?jobs cfg
      { Campaign.default_options with Campaign.iterations; rng_seed; batch }
  in
  { core = cfg.Cfg.name; stats;
    specdoctor_components = specdoctor_reach cfg ~rng_seed }

let run_many ?iterations ?rng_seed ?telemetry ?resilience ?jobs ?batch cfgs =
  (* Per-core campaigns are independent: one domain each; [jobs] worker
     domains additionally fan out inside each campaign's batches. *)
  Dvz_util.Parallel.map
    (fun cfg -> run ?iterations ?rng_seed ?telemetry ?resilience ?jobs ?batch cfg)
    cfgs

let render results =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Table 5: discovered transient execution bugs\n\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Report.table5 ~core_name:r.core r.stats.Campaign.s_findings);
      Buffer.add_string buf
        (Printf.sprintf "first bug at iteration %s of %d (%d distinct bug classes)\n"
           (match r.stats.Campaign.s_first_bug with
           | None -> "n/a"
           | Some i -> string_of_int i)
           r.stats.Campaign.s_options.Campaign.iterations
           (List.length r.stats.Campaign.s_findings));
      if r.specdoctor_components <> [] then
        Buffer.add_string buf
          (Printf.sprintf
             "SpecDoctor on the same core reaches only: %s (paper: dcache, lsu)\n"
             (String.concat ", " r.specdoctor_components));
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf
