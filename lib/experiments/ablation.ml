module Campaign = Dejavuzz.Campaign
module Dualcore = Dvz_uarch.Dualcore
module Packet = Dejavuzz.Packet

type result = {
  diffift : Campaign.stats;
  cellift : Campaign.stats;
  diffift_mean_taint : float;
  cellift_mean_taint : float;
}

(* Mean final taint population over the five curated attacks. *)
let mean_taint cfg mode =
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xA11 in
  let totals =
    List.map
      (fun name ->
        let tc = Attacks.build cfg name in
        let r =
          Dualcore.run (Dualcore.create ~mode cfg (Packet.stimulus ~secret tc))
        in
        float_of_int (List.length r.Dualcore.r_final_tainted))
      Attacks.all
  in
  Dvz_util.Stats.mean totals

let run ?(telemetry = Campaign.quiet) ?(iterations = 400) ?(rng_seed = 17)
    ?jobs ?(batch = 1) cfg =
  let campaign mode =
    (* Both mode campaigns share the sink/board; events are labelled so
       the streams stay separable. *)
    let telemetry =
      { telemetry with
        Campaign.t_events =
          Dvz_obs.Events.with_context telemetry.Campaign.t_events
            [ ("mode", Dvz_obs.Json.Str (Dvz_ift.Policy.mode_name mode)) ] }
    in
    Campaign.run ~telemetry ?jobs cfg
      { Campaign.default_options with
        Campaign.iterations; rng_seed; taint_mode = mode; batch }
  in
  let results =
    Dvz_util.Parallel.map
      (fun mode -> (campaign mode, mean_taint cfg mode))
      [ Dvz_ift.Policy.Diffift; Dvz_ift.Policy.Cellift ]
  in
  match results with
  | [ (diffift, dt); (cellift, ct) ] ->
      { diffift; cellift; diffift_mean_taint = dt; cellift_mean_taint = ct }
  | _ -> assert false

let render r =
  Printf.sprintf
    "Ablation: diffIFT vs CellIFT as the fuzzing substrate\n\n\
    \  mean final taint population:  diffIFT %.0f   CellIFT %.0f (%.1fx)\n\
    \  reported leak classes:        diffIFT %d   CellIFT %d\n\
    \  coverage points:              diffIFT %d   CellIFT %d\n\
    \  CellIFT's rollback explosion multiplies the tracked taint population\n\
    \  (the Table 4 slowdown and Figure 6 saturation) and pads the coverage\n\
    \  matrix with explosion artifacts that carry no secret-flow information;\n\
    \  the liveness oracle and encode sanitization absorb most of the noise\n\
    \  at the verdict level, at the cost of every run paying for the blast\n\
    \  radius.\n"
    r.diffift_mean_taint r.cellift_mean_taint
    (r.cellift_mean_taint /. max 1.0 r.diffift_mean_taint)
    (List.length r.diffift.Campaign.s_findings)
    (List.length r.cellift.Campaign.s_findings)
    r.diffift.Campaign.s_final_coverage r.cellift.Campaign.s_final_coverage
