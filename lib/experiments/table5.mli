(** Table 5 — transient execution bugs discovered by full campaigns on both
    cores, classified by attack type, transient-window type and encoded
    timing component; plus the §6.4 comparison points: SpecDoctor's much
    narrower finding set (dcache residue / LSU contention only) and the
    first-bug detection effort. *)

type result = {
  core : string;
  stats : Dejavuzz.Campaign.stats;
  specdoctor_components : string list;
      (** components reachable by SpecDoctor's candidates (BOOM only) *)
}

val run :
  ?iterations:int -> ?rng_seed:int ->
  ?telemetry:Dejavuzz.Campaign.telemetry ->
  ?resilience:Dejavuzz.Campaign.resilience ->
  ?jobs:int -> ?batch:int -> Dvz_uarch.Config.t -> result
(** [telemetry] events gain a [core] context field; progress lines are
    prefixed with the core name.  [resilience] checkpoint/resume paths
    gain a [".<core>"] suffix so each campaign owns its snapshot.
    [jobs]/[batch] (defaults 1/1) feed the campaign engine's in-campaign
    parallelism — [jobs] never changes results. *)

val run_many :
  ?iterations:int -> ?rng_seed:int ->
  ?telemetry:Dejavuzz.Campaign.telemetry ->
  ?resilience:Dejavuzz.Campaign.resilience ->
  ?jobs:int -> ?batch:int ->
  Dvz_uarch.Config.t list -> result list
(** Runs one campaign per core on parallel domains (cores × in-campaign
    [jobs]). *)

val render : result list -> string
