(** Figure 7 — taint coverage growth over fuzzing iterations, 5 trials
    each, for DejaVuzz, the DejaVuzz⁻ ablation (no coverage feedback) and
    SpecDoctor (replayed under diffIFT for a comparable coverage metric,
    exactly as the paper replays SpecDoctor's phase 3 cases).

    Reported shape properties: DejaVuzz's final coverage over SpecDoctor's
    (the paper's 4.7×), the improvement over DejaVuzz⁻ (the paper's +22%),
    and how many iterations DejaVuzz needs to match SpecDoctor's
    saturation coverage (the paper's 118). *)

type curve = {
  cv_fuzzer : string;
  cv_mean : float array;     (** mean coverage per iteration over trials *)
  cv_ci : float array;       (** 95% CI half-width per iteration *)
}

type result = {
  curves : curve list;
  ratio_vs_specdoctor : float;
  ratio_vs_minus : float;
  iters_to_specdoctor : int option;
      (** iterations DejaVuzz needs to reach SpecDoctor's final coverage *)
}

val run : ?iterations:int -> ?trials:int -> ?rng_seed:int ->
  ?telemetry:Dejavuzz.Campaign.telemetry ->
  ?resilience:Dejavuzz.Campaign.resilience ->
  ?jobs:int -> ?batch:int -> Dvz_uarch.Config.t -> result
(** [telemetry] is shared by all DejaVuzz/DejaVuzz⁻ campaigns; each
    trial's events gain [fuzzer]/[trial] context fields and its progress
    lines a ["<fuzzer>/trial<N> "] prefix (trials run on parallel
    domains, so lines from different trials interleave).  [resilience]
    checkpoint/resume paths gain a [".<fuzzer>.trialN"] suffix per
    campaign; SpecDoctor trials don't checkpoint.  [jobs]/[batch]
    (defaults 1/1) feed each DejaVuzz/DejaVuzz⁻ campaign's in-campaign
    parallelism (trials × in-campaign [jobs]); [jobs] never changes
    results. *)

val render : result -> string
