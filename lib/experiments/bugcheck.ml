open Dvz_isa
module Cfg = Dvz_uarch.Config
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module Trigger_gen = Dejavuzz.Trigger_gen
module Trigger_opt = Dejavuzz.Trigger_opt
module Window_gen = Dejavuzz.Window_gen
module Oracle = Dejavuzz.Oracle

type bug = B1 | B2 | B3 | B4 | B5

let all = [ B1; B2; B3; B4; B5 ]

let name = function
  | B1 -> "B1 MeltDown-Sampling"
  | B2 -> "B2 Phantom-RSB"
  | B3 -> "B3 Phantom-BTB"
  | B4 -> "B4 Spectre-Refetch"
  | B5 -> "B5 Spectre-Reload"

let cve = function
  | B1 -> "CVE-2024-44594"
  | B2 -> "CVE-2024-44591"
  | B3 -> "CVE-2024-44590"
  | B4 -> "CVE-2024-44592/44593"
  | B5 -> "CVE-2024-44595"

let vulnerable_core = function
  | B1 | B5 -> Cfg.xiangshan_minimal
  | B2 | B3 -> Cfg.boom_small
  | B4 -> Cfg.boom_small

let immune_core = function
  | B1 -> Some Cfg.boom_small (* no address truncation *)
  | B2 -> Some Cfg.xiangshan_minimal (* full RAS restore *)
  | B3 -> Some Cfg.xiangshan_minimal (* no exception/misprediction race *)
  | B4 | B5 -> None (* the PoC's secret-gated path times differently on any
                       speculative core, so no clean immune control exists *)

let expected_component = function
  | B1 -> "dcache"
  | B2 -> "ras"
  | B3 -> "(fau)btb"
  | B4 -> "icache"
  | B5 -> "lsu"

type verdict = {
  v_detected : bool;
  v_components : Oracle.component list;
  v_attack : [ `Meltdown | `Spectre ] option;
}

let t4 = Reg.x 28
let t5 = Reg.x 29

(* Deterministic payload shapes, mirroring the paper's §6.4 listings. *)
let dcache_encode =
  [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
    Insn.Opi (Insn.Slli, t4, t4, 6);
    Insn.Op (Insn.Add, t4, t4, Reg.a3);
    Insn.Load (Insn.D, false, t5, t4, 0) ]

let ras_corrupt =
  [ Insn.Auipc (Reg.ra, 0);
    Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
    Insn.Op (Insn.Sub, t4, Reg.zero, t4);
    Insn.Op (Insn.And, Reg.ra, Reg.ra, t4);
    Insn.Jalr (Reg.zero, Reg.ra, 20);
    Insn.Jalr (Reg.zero, Reg.ra, 24);
    Insn.Jalr (Reg.ra, Reg.ra, 28) ]

let btb_race =
  [ Insn.Auipc (t5, 0);
    Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
    Insn.Opi (Insn.Slli, t4, t4, 3);
    Insn.Op (Insn.Add, t5, t5, t4);
    Insn.Jalr (Reg.zero, t5, 20) ]

let refetch =
  [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
    Insn.Branch (Insn.Ne, t4, Reg.zero, 4 * 120) ]

let reload =
  [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
    Insn.Branch (Insn.Eq, t4, Reg.zero, 12);
    Insn.Load (Insn.D, false, t5, Reg.a3, 0) ]

(* Build the PoC test case for a bug on a core: search a few trigger
   entropies (deterministically) for one that verifiably fires. *)
let poc cfg bug =
  let kind, tighten, mask_high, payload, tags =
    match bug with
    | B1 -> (Seed.T_access_fault, true, true, dcache_encode, [ "dcache" ])
    | B2 -> (Seed.T_branch, false, false, ras_corrupt, [ "ras" ])
    | B3 -> (Seed.T_misalign, false, false, btb_race, [ "btb" ])
    | B4 -> (Seed.T_branch, false, false, refetch, [ "refetch" ])
    | B5 -> (Seed.T_mem_disamb, false, false, reload, [ "lsu" ])
  in
  let access =
    match bug with
    | B5 -> [ Insn.Load (Insn.D, false, Reg.s0, Reg.a2, 0) ]
    | _ -> [ Insn.Load (Insn.D, false, Reg.s0, Reg.s1, 0) ]
  in
  let rec search entropy =
    if entropy > 64 then failwith ("Bugcheck: cannot trigger " ^ name bug)
    else begin
      let seed =
        { Seed.kind; trigger_entropy = entropy; window_entropy = 1;
          tighten; mask_high }
      in
      let tc0 = Trigger_gen.generate ~force_training:true cfg seed in
      (* B5 and the cache-encoding PoCs rely on warmed probe lines, so the
         derived window-training packets are kept. *)
      let trainings =
        (Window_gen.complete cfg tc0).Packet.window_trainings
      in
      let tc = Window_gen.splice tc0 (access @ payload) in
      let tc =
        { tc with Packet.window_trainings = trainings;
          Packet.gadget_tags = tags }
      in
      if Trigger_opt.evaluate cfg tc then tc else search (entropy + 1)
    end
  in
  search 1

let check cfg bug =
  let tc = poc cfg bug in
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xB16B00B5 in
  let a = Oracle.analyze cfg ~secret tc in
  let components =
    List.sort_uniq compare
      (List.concat_map
         (function
           | Oracle.Timing { components; _ } -> components
           | Oracle.Encode { components; _ } -> components)
         a.Oracle.a_leaks)
  in
  { v_detected = Oracle.is_leak a;
    v_components = components;
    v_attack = a.Oracle.a_attack }

let render () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "B1-B5 proof-of-concept reproductions (section 6.4)\n\n";
  List.iter
    (fun bug ->
      let cfg = vulnerable_core bug in
      let v = check cfg bug in
      Buffer.add_string buf
        (Printf.sprintf "%-22s %-20s on %-26s detected=%b via {%s}%s\n"
           (name bug) (cve bug) cfg.Cfg.name v.v_detected
           (String.concat ", " v.v_components)
           (match v.v_attack with
           | Some `Meltdown -> " [Meltdown]"
           | Some `Spectre -> " [Spectre]"
           | None -> ""));
      match immune_core bug with
      | None -> ()
      | Some immune ->
          let vi = check immune bug in
          Buffer.add_string buf
            (Printf.sprintf "%-22s %-20s on %-26s %s\n" "" "(control)"
               immune.Cfg.name
               (if List.mem (expected_component bug) vi.v_components then
                  "UNEXPECTED: component present"
                else "component absent as expected")))
    all;
  Buffer.contents buf
