(** Table 4 — overhead of differential information flow tracking.

    Two measurements, as in the paper:

    - {b Compile}: instrumentation time.  CellIFT instruments at the cell
      level and must flatten all memories first; diffIFT instruments at the
      RTL IR level.  We measure on representative netlists (the Figure 2
      RoB circuit plus memories) scaled per core: building the plain
      simulator (Base), flattening + shadow construction (CellIFT), and
      direct shadow construction (diffIFT).

    - {b Simulation}: wall-clock time of the five attack test cases of
      {!Attacks} under Base (two uninstrumented DUT instances), CellIFT
      mode and diffIFT mode of the dual-DUT testbench.  CellIFT's taint
      explosion makes its per-cycle shadow work grow with the tainted-state
      population, which is the paper's slowdown mechanism. *)

type timing = { base : float; cellift : float; diffift : float }

type result = {
  core : string;
  compile : timing;
  sims : (string * timing) list;  (** per attack test case, seconds *)
}

val run : ?reps:int -> Dvz_uarch.Config.t -> result

val render : result list -> string
