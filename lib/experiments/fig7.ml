module Stats = Dvz_util.Stats
module Campaign = Dejavuzz.Campaign
module Variants = Dvz_baselines.Variants
module Sd = Dvz_baselines.Specdoctor

type curve = {
  cv_fuzzer : string;
  cv_mean : float array;
  cv_ci : float array;
}

type result = {
  curves : curve list;
  ratio_vs_specdoctor : float;
  ratio_vs_minus : float;
  iters_to_specdoctor : int option;
}

let aggregate name trials_curves =
  let iterations = Array.length (List.hd trials_curves) in
  let mean = Array.make iterations 0.0 and ci = Array.make iterations 0.0 in
  for i = 0 to iterations - 1 do
    let points = List.map (fun c -> float_of_int c.(i)) trials_curves in
    let m, half = Stats.ci95 points in
    mean.(i) <- m;
    ci.(i) <- half
  done;
  { cv_fuzzer = name; cv_mean = mean; cv_ci = ci }

let telemetry_for telemetry ~fuzzer ~trial =
  match telemetry with
  | None -> None
  | Some tel ->
      (* Trials run on parallel domains into one shared sink: label every
         event and progress line with its origin. *)
      Some
        { tel with
          Campaign.t_events =
            Dvz_obs.Events.with_context tel.Campaign.t_events
              [ ("fuzzer", Dvz_obs.Json.Str fuzzer);
                ("trial", Dvz_obs.Json.Int trial) ];
          t_progress =
            (fun line ->
              tel.Campaign.t_progress
                (Printf.sprintf "%s/trial%d %s" fuzzer trial line)) }

let run ?(iterations = 1000) ?(trials = 5) ?(rng_seed = 7) ?telemetry
    ?resilience ?jobs ?(batch = 1) cfg =
  (* Trials are independent deterministic computations: run them on
     parallel domains, as the paper's multi-threaded fuzzing manager runs
     its RTL simulation instances. *)
  let trial_list f =
    Dvz_util.Parallel.map f (List.init trials (fun t -> (t, rng_seed + (100 * t))))
  in
  let resilience_for ~fuzzer ~trial =
    (* One checkpoint file per campaign, derived from the shared flag.
       SpecDoctor trials below have no campaign loop and don't checkpoint. *)
    Option.map
      (fun rz ->
        Campaign.with_suffix rz (Printf.sprintf "%s.trial%d" fuzzer trial))
      resilience
  in
  let with_batch o = { o with Campaign.batch } in
  let dejavuzz =
    trial_list (fun (t, s) ->
        (Campaign.run
           ?telemetry:(telemetry_for telemetry ~fuzzer:"DejaVuzz" ~trial:t)
           ?resilience:(resilience_for ~fuzzer:"DejaVuzz" ~trial:t)
           ?jobs cfg
           (with_batch (Variants.full_options ~iterations ~rng_seed:s)))
          .Campaign.s_coverage_curve)
  in
  let minus =
    trial_list (fun (t, s) ->
        (Campaign.run
           ?telemetry:(telemetry_for telemetry ~fuzzer:"DejaVuzz-" ~trial:t)
           ?resilience:(resilience_for ~fuzzer:"DejaVuzz-" ~trial:t)
           ?jobs cfg
           (with_batch (Variants.minus_options ~iterations ~rng_seed:s)))
          .Campaign.s_coverage_curve)
  in
  let specdoctor =
    trial_list (fun (_, s) ->
        (Sd.campaign ~rng_seed:s ~iterations cfg).Sd.sd_coverage_curve)
  in
  let curves =
    [ aggregate "DejaVuzz" dejavuzz;
      aggregate "DejaVuzz-" minus;
      aggregate "SpecDoctor" specdoctor ]
  in
  let final c = c.cv_mean.(iterations - 1) in
  let dv = List.nth curves 0 and mn = List.nth curves 1 and sd = List.nth curves 2 in
  let iters_to_specdoctor =
    let target = final sd in
    let rec find i =
      if i >= iterations then None
      else if dv.cv_mean.(i) >= target then Some i
      else find (i + 1)
    in
    find 0
  in
  { curves;
    ratio_vs_specdoctor = final dv /. max 1.0 (final sd);
    ratio_vs_minus = final dv /. max 1.0 (final mn);
    iters_to_specdoctor }

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Figure 7: taint coverage over fuzzing iterations\n";
  let iterations = Array.length (List.hd r.curves).cv_mean in
  let buckets = 20 in
  List.iter
    (fun c ->
      let pts =
        List.init buckets (fun i ->
            let idx = min (iterations - 1) ((i + 1) * iterations / buckets) in
            Printf.sprintf "%.0f±%.0f" c.cv_mean.(idx) c.cv_ci.(idx))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %s\n" c.cv_fuzzer (String.concat " " pts)))
    r.curves;
  Buffer.add_string buf
    (Printf.sprintf
       "final coverage: DejaVuzz/SpecDoctor = %.1fx (paper: 4.7x); \
        DejaVuzz/DejaVuzz- = %.2fx (paper: 1.22x)\n"
       r.ratio_vs_specdoctor r.ratio_vs_minus);
  Buffer.add_string buf
    (match r.iters_to_specdoctor with
    | Some i ->
        Printf.sprintf
          "DejaVuzz reaches SpecDoctor's saturation coverage in %d iterations \
           (paper: 118)\n"
          i
    | None -> "DejaVuzz did not reach SpecDoctor's final coverage\n");
  Buffer.contents buf
