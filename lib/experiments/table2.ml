module Cfg = Dvz_uarch.Config
module Tablefmt = Dvz_util.Tablefmt

let render () =
  let tbl = Tablefmt.create [ "Feature"; "BOOM"; "XiangShan" ] in
  let b = Cfg.boom_small and x = Cfg.xiangshan_minimal in
  Tablefmt.add_row tbl [ "Configuration"; "SmallBOOM"; "MinimalConfig" ];
  Tablefmt.add_row tbl [ "ISA"; "RV64GC (modelled subset)"; "RV64GC (modelled subset)" ];
  Tablefmt.add_row tbl
    [ "Verilog LoC (paper)";
      string_of_int (Cfg.verilog_loc b);
      string_of_int (Cfg.verilog_loc x) ];
  Tablefmt.add_row tbl
    [ "Annotation LoC (paper)";
      string_of_int (Cfg.annotation_loc b);
      string_of_int (Cfg.annotation_loc x) ];
  Tablefmt.add_row tbl
    [ "RoB entries (model)";
      string_of_int b.Cfg.rob_entries;
      string_of_int x.Cfg.rob_entries ];
  Tablefmt.add_row tbl
    [ "RAS entries (model)";
      string_of_int b.Cfg.ras_entries;
      string_of_int x.Cfg.ras_entries ];
  Tablefmt.add_row tbl
    [ "BTB (model)";
      Printf.sprintf "%d entries, untagged" b.Cfg.btb_entries;
      Printf.sprintf "%d entries, tagged" x.Cfg.btb_entries ];
  Tablefmt.add_row tbl
    [ "Planted bugs";
      "Meltdown fwd, B2, B3, B4";
      "Meltdown fwd, B1, B4, B5, illegal windows" ];
  "Table 2: cores used for evaluation\n" ^ Tablefmt.render tbl
