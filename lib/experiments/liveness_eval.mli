(** The §6.3 liveness evaluation.

    SpecDoctor's phase 3 flags every test case whose final state hashes
    differ between the two secret variants.  Replaying those candidates
    through the taint liveness oracle separates real leaks from false
    positives (the paper: 75 candidates, 17 real); replaying them through a
    liveness-{e un}aware taint oracle misclassifies residual PRF/RoB taints
    as leaks (the paper: only 21 of 75 correctly identified). *)

type result = {
  candidates : int;          (** SpecDoctor hash-difference cases *)
  real_leaks : int;          (** confirmed by the liveness oracle *)
  false_positives : int;
  no_liveness_correct : int; (** cases the liveness-ablated oracle gets right *)
  no_liveness_wrong : int;
}

val run :
  ?iterations:int -> ?rng_seed:int -> Dvz_uarch.Config.t -> result

val render : result -> string
