open Dvz_ir
module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Dualcore = Dvz_uarch.Dualcore
module Packet = Dejavuzz.Packet
module Tablefmt = Dvz_util.Tablefmt

type timing = { base : float; cellift : float; diffift : float }

type result = {
  core : string;
  compile : timing;
  sims : (string * timing) list;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* A representative netlist for instrumentation cost: the Figure 2 RoB
   circuit plus a register-file-sized memory, scaled with the core. *)
let compile_netlist cfg =
  let scale = match cfg.Cfg.preset with Cfg.Boom -> 1 | Cfg.Xiangshan -> 4 in
  let rob = Circuits.rob ~entries:(64 * scale) ~uopc_width:8 in
  let nl = rob.Circuits.rob_nl in
  Netlist.scoped nl "prf" (fun () ->
      let m = Netlist.mem nl ~name:"regfile" ~width:32 ~depth:(128 * scale) () in
      let waddr = Netlist.input nl ~name:"waddr" 10 in
      let wdata = Netlist.input nl ~name:"wdata" 32 in
      let wen = Netlist.input nl ~name:"wen" 1 in
      Netlist.mem_write nl m ~wen ~addr:waddr ~data:wdata;
      (* A realistic register file has several read ports; flattening turns
         each into a full word-select chain, which is where CellIFT's
         compile-time blowup comes from. *)
      for p = 0 to 5 do
        let raddr = Netlist.input nl ~name:(Printf.sprintf "raddr%d" p) 10 in
        ignore (Netlist.mem_read nl m raddr)
      done);
  nl

let compile_times cfg =
  let nl = compile_netlist cfg in
  let base, _ = time (fun () -> Sim.create nl) in
  let cellift, _ =
    time (fun () ->
        (* Cell-level instrumentation requires flattened memories. *)
        let flat = Flatten.flatten nl in
        Dvz_ift.Shadow.create Dvz_ift.Policy.Cellift flat)
  in
  let diffift, _ =
    time (fun () -> Dvz_ift.Shadow.create Dvz_ift.Policy.Diffift nl)
  in
  { base; cellift; diffift }

let run_base cfg stim reps =
  let t, () =
    time (fun () ->
        for _ = 1 to reps do
          let a = Core.create cfg stim in
          ignore (Core.run a);
          let b = Core.create cfg stim in
          ignore (Core.run b)
        done)
  in
  t

let run_mode cfg stim mode reps =
  let t, () =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Dualcore.run (Dualcore.create ~mode cfg stim))
        done)
  in
  t

let run ?(reps = 30) cfg =
  let compile = compile_times cfg in
  let sims =
    List.map
      (fun name ->
        let tc = Attacks.build cfg name in
        let stim () = Packet.stimulus ~secret:Attacks.secret tc in
        let base = run_base cfg (stim ()) reps in
        let cellift = run_mode cfg (stim ()) Dvz_ift.Policy.Cellift reps in
        let diffift = run_mode cfg (stim ()) Dvz_ift.Policy.Diffift reps in
        (Attacks.to_string name, { base; cellift; diffift }))
      Attacks.all
  in
  { core = cfg.Cfg.name; compile; sims }

let render results =
  let tbl =
    Tablefmt.create [ "Core"; "Phase"; "Base"; "CellIFT"; "diffIFT"; "x(cell)"; "x(diff)" ]
  in
  List.iter
    (fun r ->
      let row phase t =
        Tablefmt.add_row tbl
          [ r.core; phase;
            Printf.sprintf "%.4fs" t.base;
            Printf.sprintf "%.4fs" t.cellift;
            Printf.sprintf "%.4fs" t.diffift;
            Printf.sprintf "%.1fx" (t.cellift /. t.base);
            Printf.sprintf "%.1fx" (t.diffift /. t.base) ]
      in
      row "Compile (instrumentation)" r.compile;
      List.iter (fun (name, t) -> row ("Simulate " ^ name) t) r.sims;
      Tablefmt.add_sep tbl)
    results;
  "Table 4: overhead of differential information flow tracking\n"
  ^ Tablefmt.render tbl
