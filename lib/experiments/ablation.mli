(** Design-choice ablation: diffIFT vs CellIFT as the fuzzer's substrate.

    §3.3 motivates differential IFT by arguing that control-flow
    over-tainting makes the taint signal useless for guidance and the
    oracle imprecise.  This ablation runs identical campaigns with the
    taint engine in [Diffift] vs [Cellift] mode and compares:

    - reported leak classes: CellIFT's blast-radius taints survive the
      encode-sanitization diff (the explosion differs run to run), so the
      over-tainted campaign reports inflated, noisy finding sets;
    - per-run taint population: CellIFT saturates (the §2.2 explosion),
      erasing the locality the coverage matrix needs. *)

type result = {
  diffift : Dejavuzz.Campaign.stats;
  cellift : Dejavuzz.Campaign.stats;
  diffift_mean_taint : float;  (** mean final taint population per run *)
  cellift_mean_taint : float;
}

val run :
  ?telemetry:Dejavuzz.Campaign.telemetry ->
  ?iterations:int -> ?rng_seed:int -> ?jobs:int -> ?batch:int ->
  Dvz_uarch.Config.t -> result
(** [jobs]/[batch] (defaults 1/1) feed both campaigns' in-campaign
    parallelism (modes × in-campaign [jobs]); [jobs] never changes
    results.  [telemetry] is shared by both mode campaigns, with a
    ["mode"] context field distinguishing their event streams. *)

val render : result -> string
