open Dvz_isa
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module Trigger_gen = Dejavuzz.Trigger_gen
module Trigger_opt = Dejavuzz.Trigger_opt
module Window_gen = Dejavuzz.Window_gen

type name = Spectre_v1 | Spectre_v2 | Meltdown | Spectre_v4 | Spectre_rsb

let all = [ Spectre_v1; Spectre_v2; Meltdown; Spectre_v4; Spectre_rsb ]

let to_string = function
  | Spectre_v1 -> "Spectre-V1"
  | Spectre_v2 -> "Spectre-V2"
  | Meltdown -> "Meltdown"
  | Spectre_v4 -> "Spectre-V4"
  | Spectre_rsb -> "Spectre-RSB"

let secret = Array.make Dvz_soc.Layout.secret_dwords 0xC0FFEE

let kind_of = function
  | Spectre_v1 -> Seed.T_branch
  | Spectre_v2 -> Seed.T_jump
  | Meltdown -> Seed.T_access_fault
  | Spectre_v4 -> Seed.T_mem_disamb
  | Spectre_rsb -> Seed.T_return

let t4 = Reg.x 28
let t5 = Reg.x 29

let payload name =
  let base = match name with Spectre_v4 -> Reg.a2 | _ -> Reg.s1 in
  [ Insn.Load (Insn.D, false, Reg.s0, base, 0);
    Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
    Insn.Opi (Insn.Slli, t4, t4, 6);
    Insn.Op (Insn.Add, t4, t4, Reg.a3);
    Insn.Load (Insn.D, false, t5, t4, 0) ]

let build cfg name =
  let kind = kind_of name in
  let tighten = name = Meltdown in
  (* Deterministic entropy search: keep the first trigger that verifiably
     fires on this configuration. *)
  let rec search entropy =
    if entropy > 64 then
      failwith ("Attacks.build: cannot trigger " ^ to_string name)
    else begin
      let seed =
        { Seed.kind; trigger_entropy = entropy; window_entropy = 1;
          tighten; mask_high = false }
      in
      let tc = Trigger_gen.generate ~force_training:true cfg seed in
      let tc = Window_gen.splice tc (payload name) in
      if Trigger_opt.evaluate cfg tc then tc else search (entropy + 1)
    end
  in
  search 1
