(** Figure 6 — taint population over time while executing each attack test
    case on BOOM, under CellIFT, diffIFT, and the diffIFT^FN worst case
    (both instances driven with the same secret).

    The paper's observations to reproduce: CellIFT's taints explode at the
    RoB rollback and never recover; diffIFT's stay bounded and track the
    secret's footprint; diffIFT^FN's data taints still grow while the
    secret is loaded but control-taint propagation is suppressed, so the
    curve plateaus. *)

type series = {
  s_case : string;
  s_mode : string;           (** "CellIFT" | "diffIFT" | "diffIFT-FN" *)
  s_totals : int array;      (** tainted elements per slot *)
  s_window : (int * int) option;  (** transient window slot range *)
}

val run : ?cfg:Dvz_uarch.Config.t -> unit -> series list

val render : series list -> string
(** Prints per test case a downsampled series plus peak/final values. *)
