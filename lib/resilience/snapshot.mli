(** Atomic, self-validating state snapshots.

    Checkpoint files must survive the very faults they exist for: a
    campaign killed mid-write must never leave a truncated checkpoint
    that a later [--resume] trusts.  [save] therefore writes to a
    temporary file in the same directory and [rename]s it into place
    (atomic on POSIX), and prefixes the payload with a one-line header

    {v DVZSNAP1 <magic> v<version> len=<bytes> crc=<hex>\n v}

    that [load] verifies — wrong magic, short payload, or checksum
    mismatch all surface as [Error] instead of garbage state.  The
    payload itself is opaque bytes; callers bring their own
    serialization (the campaign uses [Marshal] plus a version number it
    bumps on layout changes). *)

val save :
  ?keep_previous:bool ->
  path:string -> magic:string -> version:int -> string -> unit
(** [save ~path ~magic ~version payload] atomically replaces [path].
    [magic] must be a single token (no spaces/newlines).  With
    [~keep_previous:true] the file being replaced is first rotated to
    [path ^ ".prev"], keeping one known-good generation around for
    fallback after a corrupted write (how the fleet coordinator recovers
    from a bad checkpoint).  Increments the
    [dvz_checkpoints_written_total] counter.  Raises [Sys_error] on I/O
    failure. *)

(** Why a snapshot failed to load — each constructor names the
    validation layer that rejected the file, so callers can render an
    actionable diagnostic ({!describe} + {!advice}) or decide whether a
    fallback generation is worth trying. *)
type error =
  | Unreadable of string  (** the [open]/OS-level message *)
  | Empty
  | Bad_header of string  (** the offending first line *)
  | Magic_mismatch of { got : string; want : string }
  | Truncated of { promised : int; actual : int }
      (** header promises [promised] payload bytes, file holds [actual] *)
  | Checksum_mismatch of { stored : int; computed : int }

val describe : error -> string
(** One-line human-readable reason (no path — callers add it). *)

val advice : error -> string
(** One-line suggested recovery for the failure class. *)

val previous_path : string -> string
(** The rotation target [save ~keep_previous] uses: [path ^ ".prev"]. *)

val load_checked : path:string -> magic:string -> (int * string, error) result
(** [load_checked ~path ~magic] returns [(version, payload)] after
    validating the header, length and CRC, or the structured reason it
    refused the file. *)

val load : path:string -> magic:string -> (int * string, string) result
(** {!load_checked} with the error flattened through {!describe} —
    the original string-result interface. *)

val crc32 : string -> int
(** CRC-32 (IEEE, reflected) of a string — exposed for tests. *)
