(** Atomic, self-validating state snapshots.

    Checkpoint files must survive the very faults they exist for: a
    campaign killed mid-write must never leave a truncated checkpoint
    that a later [--resume] trusts.  [save] therefore writes to a
    temporary file in the same directory and [rename]s it into place
    (atomic on POSIX), and prefixes the payload with a one-line header

    {v DVZSNAP1 <magic> v<version> len=<bytes> crc=<hex>\n v}

    that [load] verifies — wrong magic, short payload, or checksum
    mismatch all surface as [Error] instead of garbage state.  The
    payload itself is opaque bytes; callers bring their own
    serialization (the campaign uses [Marshal] plus a version number it
    bumps on layout changes). *)

val save : path:string -> magic:string -> version:int -> string -> unit
(** [save ~path ~magic ~version payload] atomically replaces [path].
    [magic] must be a single token (no spaces/newlines).  Increments the
    [dvz_checkpoints_written_total] counter.  Raises [Sys_error] on I/O
    failure. *)

val load : path:string -> magic:string -> (int * string, string) result
(** [load ~path ~magic] returns [(version, payload)] after validating
    the header, length and CRC, or [Error reason]. *)

val crc32 : string -> int
(** CRC-32 (IEEE, reflected) of a string — exposed for tests. *)
