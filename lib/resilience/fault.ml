type action =
  | Crash of string
  | Hang
  | Corrupt
  | Kill of string

type fault = { f_iteration : int; f_cycle : int; f_action : action }
type plan = fault list

exception Injected of { iteration : int; cycle : int; message : string }
exception Killed of { iteration : int; cycle : int; message : string }

let () =
  Printexc.register_printer (function
    | Injected { iteration; cycle; message } ->
        Some
          (Printf.sprintf "Dvz_resilience.Fault.Injected(iter=%d, cycle=%d, %s)"
             iteration cycle message)
    | Killed { iteration; cycle; message } ->
        Some
          (Printf.sprintf "Dvz_resilience.Fault.Killed(iter=%d, cycle=%d, %s)"
             iteration cycle message)
    | _ -> None)

let action_name = function
  | Crash _ -> "crash"
  | Hang -> "hang"
  | Corrupt -> "corrupt"
  | Kill _ -> "kill"

let fault_to_string f =
  Printf.sprintf "%s@%d:%d" (action_name f.f_action) f.f_iteration f.f_cycle

let to_string plan = String.concat "," (List.map fault_to_string plan)

let parse_fault spec =
  match String.index_opt spec '@' with
  | None -> Error (Printf.sprintf "fault %S: expected ACTION@ITER:CYCLE" spec)
  | Some at -> (
      let name = String.sub spec 0 at in
      let rest = String.sub spec (at + 1) (String.length spec - at - 1) in
      let action =
        match name with
        | "crash" -> Ok (Crash "injected crash")
        | "hang" -> Ok Hang
        | "corrupt" -> Ok Corrupt
        | "kill" -> Ok (Kill "injected kill")
        | _ ->
            Error
              (Printf.sprintf
                 "fault %S: unknown action %S (want crash|hang|corrupt|kill)"
                 spec name)
      in
      match action with
      | Error _ as e -> e
      | Ok f_action -> (
          match String.index_opt rest ':' with
          | None ->
              Error (Printf.sprintf "fault %S: expected ITER:CYCLE after '@'" spec)
          | Some colon -> (
              let iter_s = String.sub rest 0 colon in
              let cycle_s =
                String.sub rest (colon + 1) (String.length rest - colon - 1)
              in
              match (int_of_string_opt iter_s, int_of_string_opt cycle_s) with
              | Some i, Some c when i >= 0 && c >= 0 ->
                  Ok { f_iteration = i; f_cycle = c; f_action }
              | _ ->
                  Error
                    (Printf.sprintf
                       "fault %S: iteration and cycle must be non-negative \
                        integers"
                       spec))))

let parse s =
  let specs =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if specs = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc spec ->
        match acc with
        | Error _ as e -> e
        | Ok fs -> (
            match parse_fault spec with
            | Ok f -> Ok (f :: fs)
            | Error _ as e -> e))
      (Ok []) specs
    |> Result.map List.rev

let plan_of_seed ~seed ~iterations ~count =
  let rng = Dvz_util.Rng.create (seed lxor 0x7e51) in
  let iterations = max 1 iterations in
  List.init (max 0 count) (fun i ->
      let f_iteration = Dvz_util.Rng.int rng iterations in
      let f_cycle = Dvz_util.Rng.int rng 200 in
      let f_action =
        match i mod 3 with
        | 0 -> Crash "injected crash"
        | 1 -> Hang
        | _ -> Corrupt
      in
      { f_iteration; f_cycle; f_action })

(* Domain-local ambient state: each worker domain arms its own faults, so
   parallel campaign trials never see each other's plan. *)
type state = { mutable pending : fault list; mutable fired : fault list }

let key = Domain.DLS.new_key (fun () -> { pending = []; fired = [] })

let m_injected =
  Dvz_obs.Metrics.counter Dvz_obs.Metrics.default
    ~help:"Faults fired by the injection harness" "dvz_faults_injected_total"

let arm ~iteration plan =
  let st = Domain.DLS.get key in
  st.pending <-
    List.filter (fun f -> f.f_iteration = iteration) plan
    |> List.sort (fun a b -> compare a.f_cycle b.f_cycle)

let disarm () =
  let st = Domain.DLS.get key in
  st.pending <- []

let armed () = (Domain.DLS.get key).pending <> []

let fire st f =
  st.pending <- List.filter (fun g -> g != f) st.pending;
  st.fired <- f :: st.fired;
  Dvz_obs.Metrics.incr m_injected

let tick ~cycle =
  let st = Domain.DLS.get key in
  match st.pending with
  | [] -> `Ok
  | f :: _ when f.f_cycle <= cycle -> (
      fire st f;
      match f.f_action with
      | Crash message ->
          raise (Injected { iteration = f.f_iteration; cycle; message })
      | Kill message ->
          raise (Killed { iteration = f.f_iteration; cycle; message })
      | Hang -> `Hang
      | Corrupt -> `Corrupt)
  | _ -> `Ok

let drain_fired () =
  let st = Domain.DLS.get key in
  let fired = List.rev st.fired in
  st.fired <- [];
  fired

let raise_at ~cycle ~message c =
  if c >= cycle then raise (Injected { iteration = -1; cycle = c; message })
