let m_written =
  Dvz_obs.Metrics.counter Dvz_obs.Metrics.default
    ~help:"Checkpoint snapshots written to disk" "dvz_checkpoints_written_total"

(* CRC-32 (IEEE 802.3, reflected), bit-at-a-time — checkpoints are written
   at most once per N campaign iterations, so a lookup table isn't worth
   its footprint. *)
let crc32 s =
  let poly = 0xEDB88320 in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun c ->
      crc := !crc lxor Char.code c;
      for _ = 1 to 8 do
        let lsb = !crc land 1 in
        crc := !crc lsr 1;
        if lsb = 1 then crc := !crc lxor poly
      done)
    s;
  !crc lxor 0xFFFFFFFF

let check_magic magic =
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\t' then
        invalid_arg "Snapshot.save: magic must not contain whitespace")
    magic

let header ~magic ~version payload =
  Printf.sprintf "DVZSNAP1 %s v%d len=%d crc=%08x\n" magic version
    (String.length payload) (crc32 payload)

let previous_path path = path ^ ".prev"

let save ?(keep_previous = false) ~path ~magic ~version payload =
  check_magic magic;
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header ~magic ~version payload);
      output_string oc payload;
      flush oc);
  (* Rotate before the install rename: if we die between the two renames
     the live path is briefly missing, but [.prev] still holds the last
     good snapshot — exactly the file a fallback loader wants. *)
  if keep_previous && Sys.file_exists path then
    (try Sys.rename path (previous_path path) with Sys_error _ -> ());
  Sys.rename tmp path;
  Dvz_obs.Metrics.incr m_written

type error =
  | Unreadable of string
  | Empty
  | Bad_header of string
  | Magic_mismatch of { got : string; want : string }
  | Truncated of { promised : int; actual : int }
  | Checksum_mismatch of { stored : int; computed : int }

let truncate_for_display s =
  let s = if String.length s > 40 then String.sub s 0 40 ^ "…" else s in
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let describe = function
  | Unreadable msg -> msg
  | Empty -> "empty snapshot file"
  | Bad_header line ->
      Printf.sprintf "malformed snapshot header %S" (truncate_for_display line)
  | Magic_mismatch { got; want } ->
      Printf.sprintf "snapshot magic mismatch: got %S, want %S" got want
  | Truncated { promised; actual } ->
      Printf.sprintf
        "snapshot truncated: header promises %d payload bytes, found %d"
        promised actual
  | Checksum_mismatch { stored; computed } ->
      Printf.sprintf "snapshot checksum mismatch: stored %08x, computed %08x"
        stored computed

let advice = function
  | Unreadable _ ->
      "check the path and permissions, or drop --resume to start fresh"
  | Empty | Bad_header _ | Magic_mismatch _ ->
      "this is not a snapshot this tool wrote — point at a file produced \
       by --checkpoint, or delete it to start fresh"
  | Truncated _ | Checksum_mismatch _ ->
      "the file was cut short or corrupted on disk — restore the .prev \
       rotation if one exists, or delete it to start fresh"

let parse_header line =
  match
    Scanf.sscanf line "DVZSNAP1 %s v%d len=%d crc=%x%!"
      (fun magic v len crc -> (magic, v, len, crc))
  with
  | header -> Ok header
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      Error (Bad_header line)

let load_checked ~path ~magic =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Unreadable msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Error Empty
          | line -> (
              match parse_header line with
              | Error _ as e -> e
              | Ok (m, version, len, crc) ->
                  if m <> magic then
                    Error (Magic_mismatch { got = m; want = magic })
                  else
                    (* Read whatever remains so a truncation error can say
                       how short the file actually is. *)
                    let rest = In_channel.input_all ic in
                    if String.length rest < len then
                      Error
                        (Truncated
                           { promised = len; actual = String.length rest })
                    else
                      let payload = String.sub rest 0 len in
                      let computed = crc32 payload in
                      if computed <> crc then
                        Error
                          (Checksum_mismatch { stored = crc; computed })
                      else Ok (version, payload)))

let load ~path ~magic =
  Result.map_error describe (load_checked ~path ~magic)
