let m_written =
  Dvz_obs.Metrics.counter Dvz_obs.Metrics.default
    ~help:"Checkpoint snapshots written to disk" "dvz_checkpoints_written_total"

(* CRC-32 (IEEE 802.3, reflected), bit-at-a-time — checkpoints are written
   at most once per N campaign iterations, so a lookup table isn't worth
   its footprint. *)
let crc32 s =
  let poly = 0xEDB88320 in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun c ->
      crc := !crc lxor Char.code c;
      for _ = 1 to 8 do
        let lsb = !crc land 1 in
        crc := !crc lsr 1;
        if lsb = 1 then crc := !crc lxor poly
      done)
    s;
  !crc lxor 0xFFFFFFFF

let check_magic magic =
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\t' then
        invalid_arg "Snapshot.save: magic must not contain whitespace")
    magic

let header ~magic ~version payload =
  Printf.sprintf "DVZSNAP1 %s v%d len=%d crc=%08x\n" magic version
    (String.length payload) (crc32 payload)

let save ~path ~magic ~version payload =
  check_magic magic;
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header ~magic ~version payload);
      output_string oc payload;
      flush oc);
  Sys.rename tmp path;
  Dvz_obs.Metrics.incr m_written

let parse_header line =
  match
    Scanf.sscanf line "DVZSNAP1 %s v%d len=%d crc=%x%!"
      (fun magic v len crc -> (magic, v, len, crc))
  with
  | header -> Ok header
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      Error "malformed snapshot header"

let load ~path ~magic =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Error "empty snapshot file"
          | line -> (
              match parse_header line with
              | Error _ as e -> e
              | Ok (m, version, len, crc) ->
                  if m <> magic then
                    Error
                      (Printf.sprintf "snapshot magic mismatch: got %S, want %S"
                         m magic)
                  else
                    let payload = Bytes.create len in
                    match really_input ic payload 0 len with
                    | exception End_of_file ->
                        Error "snapshot truncated: payload shorter than header"
                    | () ->
                        let payload = Bytes.unsafe_to_string payload in
                        if crc32 payload <> crc then
                          Error "snapshot checksum mismatch"
                        else Ok (version, payload)))
