(** Deterministic fault injection for the campaign harness.

    Long fuzzing campaigns die to harness faults — a simulator exception,
    a runaway run, a corrupted testbench result — far more often than to
    interesting bugs, and recovery code that is never exercised is
    recovery code that does not work.  This module provides seed-driven
    *fault plans*: each fault names the campaign iteration and simulator
    cycle at which it fires and what it does there.  The dual-DUT
    testbench polls {!tick} once per simulation slot; an armed fault then
    raises ({!Injected}, {!Killed}), wedges the simulation (so the
    watchdog budget must convert it into a timeout verdict), or corrupts
    the collected result (so the differential oracle sees a fake
    divergence).

    Arming is domain-local (each parallel campaign trial arms its own
    plan without cross-talk) and the disarmed {!tick} is a single list
    check, cheap enough for the simulation hot path. *)

type action =
  | Crash of string  (** raise {!Injected} out of the simulator *)
  | Hang  (** the simulation stops progressing; only a watchdog ends it *)
  | Corrupt  (** deterministically perturb the collected testbench result *)
  | Kill of string
      (** raise {!Killed} through every recovery layer — simulates the
          whole harness process dying, for checkpoint/resume testing *)

type fault = {
  f_iteration : int;  (** campaign iteration the fault belongs to *)
  f_cycle : int;  (** simulation slot at (or after) which it fires *)
  f_action : action;
}

type plan = fault list

exception Injected of { iteration : int; cycle : int; message : string }
(** An injected harness crash.  Campaign iteration isolation catches it
    like any other exception. *)

exception Killed of { iteration : int; cycle : int; message : string }
(** An injected harness death.  Nothing catches it short of the
    top-level driver; campaigns must be resumed from a checkpoint. *)

val parse : string -> (plan, string) result
(** Parses a comma-separated plan spec.  Each entry is
    [ACTION@ITERATION:CYCLE] with [ACTION] one of [crash], [hang],
    [corrupt], [kill] — e.g. ["crash@3:50,kill@17:0"]. *)

val to_string : plan -> string
(** Renders a plan back into the {!parse} syntax. *)

val plan_of_seed : seed:int -> iterations:int -> count:int -> plan
(** A deterministic pseudo-random plan: [count] faults spread over
    [iterations] campaign iterations, cycling through crash/hang/corrupt
    actions.  Same seed, same plan. *)

(** {2 Arming} — domain-local ambient state polled by the testbench. *)

val arm : iteration:int -> plan -> unit
(** Selects the plan's faults for [iteration] and arms them in this
    domain.  Replaces any previously armed faults. *)

val disarm : unit -> unit
(** Clears the armed faults (fired-fault records are kept for
    {!drain_fired}). *)

val armed : unit -> bool

val tick : cycle:int -> [ `Ok | `Hang | `Corrupt ]
(** Polls the armed faults at a simulation cycle.  At most one fault
    fires per tick: a [Crash]/[Kill] fault raises, a [Hang]/[Corrupt]
    fault is reported to the caller to enact.  Fired faults are consumed
    and recorded.  Disarmed, this is a cheap no-op returning [`Ok]. *)

val drain_fired : unit -> fault list
(** Returns the faults fired in this domain since the last drain, in
    firing order, and clears the record — the campaign turns these into
    [fault_injected] telemetry events. *)

val action_name : action -> string

val raise_at : cycle:int -> message:string -> int -> unit
(** [raise_at ~cycle ~message] is a hook for {!Dvz_ir.Sim.on_cycle}:
    raises {!Injected} once the simulator reaches [cycle]. *)
