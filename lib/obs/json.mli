(** Minimal JSON encoder/decoder for the telemetry layer.

    Hand-rolled so the observability subsystem adds no dependencies: the
    encoder emits one compact line per value (the JSONL convention used
    by {!Events}), and the decoder parses exactly what the encoder
    produces plus ordinary interchange JSON, which is what the
    [replay-log] subcommand needs to re-render a saved event stream. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Object fields keep their order.
    Non-finite floats encode as [null] (JSON has no representation). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes): backslash, quote
    and control characters; input bytes above 0x7F pass through so UTF-8
    survives untouched. *)

val of_string : string -> (t, string) result
(** Parses one JSON value; trailing whitespace is allowed, trailing
    garbage is an error.  Numbers with a fraction or exponent decode as
    [Float], others as [Int].  [\uXXXX] escapes decode to UTF-8. *)

val of_lines : string -> (t list, string) result
(** Parses JSONL text: one value per non-empty line.  Errors carry the
    1-based line number. *)

(** {2 Accessors} — total functions used when walking parsed events. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val to_int : t -> int option
(** [Int n] and integral [Float] both yield [Some]. *)

val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list
(** The elements of an [Arr]; [[]] for anything else. *)
