(* Dependency-free embedded HTTP/1.1 server: one background thread
   accepting loopback connections, line-parsed GET only, every response
   closed eagerly.  It exists to serve /metrics, /status, /events and
   /healthz for a running campaign — handlers read atomic snapshots, so
   nothing here ever blocks or perturbs the fuzzing hot loop. *)

type response = { status : int; content_type : string; body : string }

type handler = (string * string) list -> response

type t = {
  sv_sock : Unix.file_descr;
  sv_port : int;
  sv_stop : bool Atomic.t;
  mutable sv_thread : Thread.t option;
}

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) j =
  { status; content_type = "application/json"; body = Json.to_string j }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_response fd resp =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      resp.status (status_text resp.status) resp.content_type
      (String.length resp.body)
  in
  let payload = head ^ resp.body in
  let len = String.length payload in
  let rec send off =
    if off < len then
      let n = Unix.write_substring fd payload off (len - off) in
      if n > 0 then send (off + n)
  in
  send 0

(* Read until the end of the header block (we never accept bodies), a
   small cap, or the connection's [deadline]; returns the first line.
   The deadline is absolute: a client trickling one byte per second
   cannot extend its welcome by keeping each individual read fast, so a
   silent or glacial connection can never pin the single accept thread
   for longer than the configured window. *)
let read_request_line ~deadline fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else
        let readable =
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> false
          | _ -> true
          | exception _ -> false
        in
        if not readable then None
        else
          let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
          if n = 0 then
            if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            let s = Buffer.contents buf in
            (* A full request line is enough to dispatch. *)
            if String.contains s '\n' then Some s else go ()
          end
  in
  match go () with
  | None -> None
  | Some s -> (
      match String.index_opt s '\n' with
      | Some i -> Some (String.trim (String.sub s 0 i))
      | None -> Some (String.trim s))

(* Query strings come from arbitrary clients; reject rather than guess.
   Overlong queries and duplicate keys are both answered 400 — a
   duplicate key would otherwise pick whichever value [List.assoc]
   happens to see first, which is how scrapers get silently wrong
   answers. *)
let max_query_len = 1024

let parse_query q =
  if String.length q > max_query_len then None
  else
    let kvs =
      String.split_on_char '&' q
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | Some i ->
                   Some
                     ( String.sub kv 0 i,
                       String.sub kv (i + 1) (String.length kv - i - 1) )
               | None -> Some (kv, ""))
    in
    let keys = List.map fst kvs in
    if List.length (List.sort_uniq compare keys) <> List.length keys then None
    else Some kvs

(* "GET /path?k=v HTTP/1.1" -> (meth, path, query assoc option);
   [None] as the query means it was present but malformed. *)
let parse_request_line line =
  match String.split_on_char ' ' line with
  | meth :: target :: _ ->
      let path, query =
        match String.index_opt target '?' with
        | Some i ->
            ( String.sub target 0 i,
              parse_query
                (String.sub target (i + 1) (String.length target - i - 1)) )
        | None -> (target, Some [])
      in
      Some (meth, path, query)
  | _ -> None

let int_param ?default name query =
  match List.assoc_opt name query with
  | None -> (
      match default with
      | Some d -> Ok d
      | None ->
          Error (text ~status:400 (Printf.sprintf "missing %s\n" name)))
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None ->
          Error (text ~status:400 (Printf.sprintf "bad %s: %S\n" name v)))

let handle ~client_timeout_s routes fd =
  let deadline = Unix.gettimeofday () +. client_timeout_s in
  let resp =
    match read_request_line ~deadline fd with
    | None -> text ~status:400 "bad request\n"
    | Some line -> (
        match parse_request_line line with
        | None -> text ~status:400 "bad request\n"
        | Some (meth, path, query) ->
            if meth <> "GET" then text ~status:405 "GET only\n"
            else (
              match query with
              | None -> text ~status:400 "bad query\n"
              | Some query -> (
                  match List.assoc_opt path routes with
                  | None -> text ~status:404 "not found\n"
                  | Some handler -> (
                      try handler query
                      with e ->
                        text ~status:500 (Printexc.to_string e ^ "\n")))))
  in
  (try write_response fd resp with _ -> ());
  (try Unix.close fd with _ -> ())

let accept_loop t ~client_timeout_s routes =
  while not (Atomic.get t.sv_stop) do
    match Unix.accept t.sv_sock with
    | exception _ -> if not (Atomic.get t.sv_stop) then Thread.yield ()
    | fd, _ ->
        (* Belt (kernel receive timeout) and braces (the absolute
           deadline inside [handle]). *)
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO client_timeout_s
         with _ -> ());
        handle ~client_timeout_s routes fd
  done

let start ?(host = "127.0.0.1") ?(client_timeout_s = 5.0) ~port ~routes () =
  match Unix.inet_addr_of_string host with
  | exception _ -> Error (Printf.sprintf "Server.start: bad host %S" host)
  | addr -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      match Unix.bind sock (Unix.ADDR_INET (addr, port)) with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close sock with _ -> ());
          Error
            (Printf.sprintf "Server.start: cannot bind %s:%d: %s" host port
               (Unix.error_message err))
      | () ->
          Unix.listen sock 16;
          let bound_port =
            match Unix.getsockname sock with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          let t =
            { sv_sock = sock; sv_port = bound_port;
              sv_stop = Atomic.make false; sv_thread = None }
          in
          if client_timeout_s <= 0.0 then begin
            (try Unix.close sock with _ -> ());
            Error "Server.start: client_timeout_s must be positive"
          end
          else begin
            t.sv_thread <-
              Some
                (Thread.create
                   (fun () -> accept_loop t ~client_timeout_s routes)
                   ());
            Ok t
          end)

let port t = t.sv_port

let stop t =
  if not (Atomic.exchange t.sv_stop true) then begin
    (* Closing the listening socket forces the blocked [accept] in the
       server thread to fail, which is its exit signal. *)
    (try Unix.shutdown t.sv_sock Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.sv_sock with _ -> ());
    match t.sv_thread with Some th -> Thread.join th | None -> ()
  end
