let min_exp = -30 (* smallest bucket bound: 2^-30 s ≈ 1 ns *)
let max_exp = 32 (* largest finite bound: 2^32 (cycles, bytes, ...) *)
let n_finite = max_exp - min_exp + 1
let overflow_index = n_finite

type counter = { c_value : int Atomic.t }

(* Gauges are a boxed float behind an Atomic so multi-domain writers
   ([--jobs N] workers updating high-water marks) never lose updates
   and readers never take a lock. *)
type gauge = { g_value : float Atomic.t }

type histogram = {
  h_mutex : Mutex.t;
  h_counts : int array; (* one cell per exponent, plus overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  r_clock : Clock.t;
  r_mutex : Mutex.t;
  r_metrics : (string, string * metric) Hashtbl.t;
}

let create ?(clock = Clock.real) () =
  { r_clock = clock; r_mutex = Mutex.create (); r_metrics = Hashtbl.create 32 }

let default = create ()

let clock t = t.r_clock

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Registration: first caller wins, the help string included; a name
   re-registered with a different metric kind is a programming error. *)
let register t name help make cast kind =
  locked t.r_mutex (fun () ->
      match Hashtbl.find_opt t.r_metrics name with
      | Some (_, m) -> (
          match cast m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered as another kind"
                   name))
      | None ->
          let v = make () in
          Hashtbl.replace t.r_metrics name (help, kind v);
          v)

let counter t ?(help = "") name =
  register t name help
    (fun () -> { c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)
    (fun c -> Counter c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by)
let counter_value c = Atomic.get c.c_value

let gauge t ?(help = "") name =
  register t name help
    (fun () -> { g_value = Atomic.make 0.0 })
    (function Gauge g -> Some g | _ -> None)
    (fun g -> Gauge g)

let set g v = Atomic.set g.g_value v

let rec record_max g v =
  let cur = Atomic.get g.g_value in
  if v > cur && not (Atomic.compare_and_set g.g_value cur v) then
    record_max g v

let gauge_value g = Atomic.get g.g_value

let histogram t ?(help = "") name =
  register t name help
    (fun () ->
      { h_mutex = Mutex.create ();
        h_counts = Array.make (n_finite + 1) 0;
        h_sum = 0.0;
        h_count = 0 })
    (function Histogram h -> Some h | _ -> None)
    (fun h -> Histogram h)

let bucket_index v =
  if v <= 0.0 then 0
  else
    let e = int_of_float (Float.ceil (Float.log2 v)) in
    if e <= min_exp then 0
    else if e > max_exp then overflow_index
    else e - min_exp

let bucket_upper v =
  let i = bucket_index v in
  if i = overflow_index then infinity else Float.pow 2.0 (float_of_int (min_exp + i))

let observe h v =
  locked h.h_mutex (fun () ->
      h.h_counts.(bucket_index v) <- h.h_counts.(bucket_index v) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1)

let histogram_count h = locked h.h_mutex (fun () -> h.h_count)
let histogram_sum h = locked h.h_mutex (fun () -> h.h_sum)

type span = {
  sp_hist : histogram;
  sp_clock : Clock.t;
  sp_t0 : float;
  sp_frame : Profile.frame option;
      (* spans double as profiler regions when the profiler is armed,
         so batch/phase spans show up in trace exports *)
}

let span_start t name =
  let h = histogram t name in
  let frame = if Profile.armed () then Some (Profile.enter name) else None in
  { sp_hist = h; sp_clock = t.r_clock; sp_t0 = Clock.now t.r_clock;
    sp_frame = frame }

let span_stop sp =
  let d = Clock.now sp.sp_clock -. sp.sp_t0 in
  observe sp.sp_hist d;
  (match sp.sp_frame with Some fr -> Profile.leave fr | None -> ());
  d

let with_span t name f =
  let sp = span_start t name in
  Fun.protect ~finally:(fun () -> ignore (span_stop sp)) f

let time t f =
  let t0 = Clock.now t.r_clock in
  let r = f () in
  (r, Clock.now t.r_clock -. t0)

let reset t =
  locked t.r_mutex (fun () ->
      Hashtbl.iter
        (fun _ (_, m) ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              locked h.h_mutex (fun () ->
                  Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
                  h.h_sum <- 0.0;
                  h.h_count <- 0))
        t.r_metrics)

type hist_snapshot = {
  hs_buckets : (float * int) list;
  hs_count : int;
  hs_sum : float;
}

type snapshot = {
  sn_counters : (string * string * int) list;
  sn_gauges : (string * string * float) list;
  sn_histograms : (string * string * hist_snapshot) list;
}

let hist_snapshot h =
  locked h.h_mutex (fun () ->
      let buckets = ref [] in
      for i = Array.length h.h_counts - 1 downto 0 do
        if h.h_counts.(i) > 0 then begin
          let bound =
            if i = overflow_index then infinity
            else Float.pow 2.0 (float_of_int (min_exp + i))
          in
          buckets := (bound, h.h_counts.(i)) :: !buckets
        end
      done;
      { hs_buckets = !buckets; hs_count = h.h_count; hs_sum = h.h_sum })

(* Merging favours the interpretation that makes cross-process
   aggregation meaningful: counters add, gauges keep the high-water
   mark, histograms add bucket-wise.  Both the bucket union and the
   help-string choice are symmetric, so [merge] is commutative — the
   property the fleet tests pin, since telemetry frames arrive in
   arbitrary worker order. *)
let merge_help a b = if a = "" then b else if b = "" then a else min a b

let merge_assoc combine xs ys =
  let tbl = Hashtbl.create 32 in
  let add (name, help, v) =
    match Hashtbl.find_opt tbl name with
    | None -> Hashtbl.replace tbl name (help, v)
    | Some (help', v') ->
        Hashtbl.replace tbl name (merge_help help help', combine v v')
  in
  List.iter add xs;
  List.iter add ys;
  let out = Hashtbl.fold (fun name (help, v) acc -> (name, help, v) :: acc) tbl [] in
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) out

let merge_hist a b =
  let tbl = Hashtbl.create 16 in
  let add (bound, count) =
    let prev = Option.value ~default:0 (Hashtbl.find_opt tbl bound) in
    Hashtbl.replace tbl bound (prev + count)
  in
  List.iter add a.hs_buckets;
  List.iter add b.hs_buckets;
  let buckets = Hashtbl.fold (fun bound count acc -> (bound, count) :: acc) tbl [] in
  { hs_buckets = List.sort (fun (x, _) (y, _) -> compare x y) buckets;
    hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum +. b.hs_sum }

let merge a b =
  { sn_counters = merge_assoc ( + ) a.sn_counters b.sn_counters;
    sn_gauges = merge_assoc Float.max a.sn_gauges b.sn_gauges;
    sn_histograms = merge_assoc merge_hist a.sn_histograms b.sn_histograms }

let empty_snapshot = { sn_counters = []; sn_gauges = []; sn_histograms = [] }

let snapshot t =
  locked t.r_mutex (fun () ->
      let counters = ref [] and gauges = ref [] and hists = ref [] in
      Hashtbl.iter
        (fun name (help, m) ->
          match m with
          | Counter c -> counters := (name, help, counter_value c) :: !counters
          | Gauge g -> gauges := (name, help, gauge_value g) :: !gauges
          | Histogram h -> hists := (name, help, hist_snapshot h) :: !hists)
        t.r_metrics;
      let by_name (a, _, _) (b, _, _) = compare a b in
      { sn_counters = List.sort by_name !counters;
        sn_gauges = List.sort by_name !gauges;
        sn_histograms = List.sort by_name !hists })
