(** Registry exporters: a JSON snapshot and Prometheus text exposition.

    The JSON form is what the CLI prints on demand and what dashboards
    would scrape from a file; the Prometheus form follows the text
    exposition format (HELP/TYPE comments, [_bucket{le="..."}] series
    with cumulative counts) so the registry can be dropped behind any
    standard scraper unchanged. *)

val snapshot_json : Metrics.snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]; each
    histogram carries [buckets] (upper bound → count, non-cumulative),
    [count] and [sum].  Keys are the raw metric names (unique by registry
    construction); exact duplicates in a hand-built snapshot are suffixed
    ["_dupN"] rather than silently shadowing on parse. *)

val render_json : Metrics.t -> string
(** One-line JSON of {!snapshot_json} of the registry. *)

val sanitize_name : string -> string
(** Maps a metric name into the Prometheus charset
    [[a-zA-Z0-9_:]] (other bytes become ['_'], a leading digit gains
    ['_']).  Many-to-one: distinct raw names can sanitize identically —
    {!prometheus} detects such collisions across its whole namespace and
    deterministically disambiguates them (sorted order; the first keeps
    the sanitized name, later ones gain a ["_dupN"] suffix). *)

val escape_help : string -> string
(** HELP-comment escaping: backslash and newline. *)

val escape_label : string -> string
(** Label-value escaping: backslash, double quote and newline. *)

val sanitize_label_name : string -> string
(** Like {!sanitize_name} but for label names, whose charset excludes
    [':']. *)

val prometheus_groups :
  ((string * string) list * Metrics.snapshot) list -> string
(** Labelled exposition over label groups.  Each group is a label set
    (rendered [{k="v",...}] on every sample line, names sanitized and
    values escaped) plus a snapshot; metrics sharing a name across
    groups share one HELP/TYPE header and emit one sample line per
    group.  Histogram [le] labels are appended after the group's own
    labels.  [prometheus t] is the single-group unlabelled special
    case; the fleet [/metrics] endpoint passes the coordinator
    unlabelled plus one [worker="N"] group per slot. *)

val prometheus : Metrics.t -> string
(** Full text exposition of the registry's current snapshot. *)

val fleet_json :
  coordinator:Metrics.snapshot ->
  workers:(int * Metrics.snapshot) list ->
  Json.t
(** [{"coordinator": ..., "workers": {"0": ..., ...}}] — the JSON
    exporter's fleet shape, workers keyed by slot in ascending order. *)
