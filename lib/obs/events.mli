(** Structured JSONL event sinks.

    A campaign streams one JSON object per line to a sink: [iteration]
    records during the run, [finding] records as bugs dedup, and a
    [campaign_end] summary.  Sinks are cheap to test for no-op-ness so
    hot loops can skip building the record entirely, and line emission
    is mutex-protected so parallel campaigns (Fig. 7 trials, Table 5
    cores) can share one file without interleaving partial lines. *)

type sink

val null : sink
(** Drops everything; {!is_null} is true. *)

val to_buffer : Buffer.t -> sink
val to_channel : out_channel -> sink

val ring : ?cap:int -> unit -> sink
(** A bounded in-memory ring of the most recent [cap] (default 1024)
    emitted lines, for serving [/events?n=K] tails without touching the
    on-disk log. *)

val batch : ?cap:int -> unit -> sink
(** A bounded FIFO of at most [cap] (default 512) emitted lines between
    {!drain} calls; further emissions are dropped and counted rather
    than unbounded.  The fleet worker buffers its lifecycle events here
    and ships them with each telemetry flush. *)

val tee : sink -> sink -> sink
(** Fans every emitted line out to both sinks.  The line is rendered
    once with the tee's own context; each leaf appends under its own
    lock. *)

val with_context : sink -> (string * Json.t) list -> sink
(** A view of the same sink that appends the given fields to every
    emitted record — how parallel trials label their events (e.g.
    [("fuzzer", Str "DejaVuzz"); ("trial", Int 3)]).  The underlying
    target and lock are shared with the parent. *)

val is_null : sink -> bool
(** True when emission would be a no-op — guard record construction on
    this in hot paths. *)

val emit : sink -> (string * Json.t) list -> unit
(** Writes the fields (followed by the sink's context fields) as one
    compact JSON object terminated by a newline.  Atomic per line. *)

val emit_rendered : sink -> string -> unit
(** Writes an already-rendered JSON object line, splicing this sink's
    context fields into the object — how the coordinator replays a
    worker's batched event lines into the [/events] ring with a
    worker-slot label on each.  A line that is not [{...}]-shaped is
    wrapped as [{"line": ..., <context>}] instead of guessed at. *)

val recent : sink -> int -> string list
(** The last [n] lines held by a {!ring} sink, oldest first (fewer if
    the ring has seen fewer).  On a {!tee}, the first branch holding
    lines wins; [[]] for other sinks. *)

val drain : sink -> string list * int
(** Takes everything a {!batch} sink holds — the buffered lines (oldest
    first) and the count of lines dropped since the previous drain —
    and empties it.  On a {!tee}, both branches are drained and their
    results concatenated; [([], 0)] for other sinks. *)

val flush : sink -> unit
