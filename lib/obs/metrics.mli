(** Metrics registry: named counters, gauges and log₂-bucketed
    histograms, plus timer/span helpers.

    The paper's fuzzing manager is an instrumented pipeline (per-phase
    overheads in Tables 3–4, coverage growth in Fig. 7); this registry is
    the in-process store those numbers flow through.  Hot-path
    instrumentation (dual-DUT simulation, oracles, parallel map workers)
    writes to the shared {!default} registry; campaigns and tests may
    carry a private registry with a {!Clock.fake} clock for
    deterministic output.

    Counters are updated with [Atomic] operations and registration is
    mutex-protected, so metrics may be touched concurrently from
    multiple domains (the parallel experiment runners do).  Registration
    is idempotent: asking twice for the same name returns the same
    metric. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : ?clock:Clock.t -> unit -> t
(** Fresh registry; the clock (default {!Clock.real}) drives spans. *)

val default : t
(** The process-wide registry that library instrumentation hooks use. *)

val clock : t -> Clock.t

val reset : t -> unit
(** Zeroes every registered metric (tests and campaign isolation). *)

(** {2 Counters} — monotone integers. *)

val counter : t -> ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {2 Gauges} — floats that go up and down. *)

val gauge : t -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val record_max : gauge -> float -> unit
(** Keeps the high-water mark: [set] only if above the current value. *)

val gauge_value : gauge -> float

(** {2 Histograms} — log₂ buckets.

    A positive observation [v] lands in the bucket whose inclusive upper
    bound is [2^ceil(log2 v)]; exact powers of two land on their own
    bound (["le"] semantics).  Non-positive observations land in the
    smallest bucket; values beyond [2^32] land in the [+inf] overflow
    bucket. *)

val histogram : t -> ?help:string -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_upper : float -> float
(** The inclusive upper bound of the bucket an observation falls in
    (exposed for boundary tests; [infinity] for the overflow bucket). *)

(** {2 Spans} — durations recorded into a histogram named after the
    span, measured on the registry's clock.  Spans nest freely; each
    records only its own start-to-stop interval. *)

type span

val span_start : t -> string -> span
val span_stop : span -> float
(** Observes and returns the elapsed seconds. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a span; the duration is recorded even if the
    thunk raises. *)

val time : t -> (unit -> 'a) -> 'a * float
(** Plain timer on the registry clock; records nothing. *)

(** {2 Snapshots} — a consistent, name-sorted view for exporters. *)

type hist_snapshot = {
  hs_buckets : (float * int) list;
      (** non-empty buckets as [(upper_bound, count)], ascending;
          the overflow bound is [infinity] *)
  hs_count : int;
  hs_sum : float;
}

type snapshot = {
  sn_counters : (string * string * int) list;  (** name, help, value *)
  sn_gauges : (string * string * float) list;
  sn_histograms : (string * string * hist_snapshot) list;
}

val snapshot : t -> snapshot

val empty_snapshot : snapshot
(** The identity element of {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Combines two snapshots name-wise: counters add, gauges keep the
    maximum, histograms add bucket-wise (counts and sums included).
    Help strings pick the lexicographically smaller non-empty one, so
    the operation is commutative — telemetry frames from fleet workers
    arrive in arbitrary order and the aggregate must not care.  Output
    lists are name-sorted like {!snapshot}'s. *)
