(** Injectable monotonic clocks.

    All telemetry timing flows through a clock value so that tests can
    substitute a deterministic tick clock and produce byte-identical
    span durations and event logs, while production code reads the real
    wall clock.  A clock is cheap to call (one closure invocation). *)

type t

val real : t
(** The system clock ([Unix.gettimeofday]), in seconds. *)

val fake : ?step:float -> unit -> t
(** [fake ()] is a deterministic tick clock starting at [0.0]: every
    {!now} call returns the current value and then advances it by
    [step] (default [1.0]).  Two fake clocks are independent. *)

val now : t -> float
(** Current time in seconds.  On a {!fake} clock this also ticks. *)
