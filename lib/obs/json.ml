type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_nan f || f = infinity || f = neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_literal f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  write buf j;
  Buffer.contents buf

(* --- parser: recursive descent over a string ----------------------------- *)

exception Parse_error of string

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' -> utf8_of_code buf (parse_hex4 ())
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_lines text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
        if String.trim l = "" then go (lineno + 1) acc rest
        else (
          match of_string l with
          | Ok v -> go (lineno + 1) (v :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> xs | _ -> []
