let hist_json (h : Metrics.hist_snapshot) =
  Json.Obj
    [ ( "buckets",
        Json.Obj
          (List.map
             (fun (bound, count) ->
               let key =
                 if bound = infinity then "+Inf"
                 else Json.to_string (Json.Float bound)
               in
               (key, Json.Int count))
             h.Metrics.hs_buckets) );
      ("count", Json.Int h.Metrics.hs_count);
      ("sum", Json.Float h.Metrics.hs_sum) ]

let snapshot_json (s : Metrics.snapshot) =
  Json.Obj
    [ ( "counters",
        Json.Obj
          (List.map (fun (n, _, v) -> (n, Json.Int v)) s.Metrics.sn_counters) );
      ( "gauges",
        Json.Obj
          (List.map (fun (n, _, v) -> (n, Json.Float v)) s.Metrics.sn_gauges) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, _, h) -> (n, hist_json h)) s.Metrics.sn_histograms)
      ) ]

let render_json t = Json.to_string (snapshot_json (Metrics.snapshot t))

let sanitize_name name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let escape_with specials s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      if c = '\n' then Buffer.add_string buf "\\n"
      else begin
        if List.mem c specials then Buffer.add_char buf '\\';
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let escape_help = escape_with [ '\\' ]
let escape_label = escape_with [ '\\'; '"' ]

let float_str f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else Printf.sprintf "%.12g" f

let header buf name help kind =
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let prometheus t =
  let s = Metrics.snapshot t in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, help, v) ->
      let name = sanitize_name name in
      header buf name help "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    s.Metrics.sn_counters;
  List.iter
    (fun (name, help, v) ->
      let name = sanitize_name name in
      header buf name help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" name (float_str v)))
    s.Metrics.sn_gauges;
  List.iter
    (fun (name, help, h) ->
      let name = sanitize_name name in
      header buf name help "histogram";
      let cum = ref 0 in
      List.iter
        (fun (bound, count) ->
          if bound < infinity then begin
            cum := !cum + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                 (escape_label (float_str bound))
                 !cum)
          end)
        h.Metrics.hs_buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.hs_count);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" name (float_str h.Metrics.hs_sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" name h.Metrics.hs_count))
    s.Metrics.sn_histograms;
  Buffer.contents buf
