let hist_json (h : Metrics.hist_snapshot) =
  Json.Obj
    [ ( "buckets",
        Json.Obj
          (List.map
             (fun (bound, count) ->
               let key =
                 if bound = infinity then "+Inf"
                 else Json.to_string (Json.Float bound)
               in
               (key, Json.Int count))
             h.Metrics.hs_buckets) );
      ("count", Json.Int h.Metrics.hs_count);
      ("sum", Json.Float h.Metrics.hs_sum) ]

(* JSON keeps raw metric names (the registry already guarantees their
   uniqueness), but guard hand-built snapshots against exact duplicates:
   a repeated key in a JSON object silently shadows on parse. *)
let uniq_keys entries =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (n, v) ->
      match Hashtbl.find_opt seen n with
      | None ->
          Hashtbl.replace seen n 1;
          (n, v)
      | Some count ->
          Hashtbl.replace seen n (count + 1);
          (Printf.sprintf "%s_dup%d" n (count + 1), v))
    entries

let snapshot_json (s : Metrics.snapshot) =
  Json.Obj
    [ ( "counters",
        Json.Obj
          (uniq_keys
             (List.map (fun (n, _, v) -> (n, Json.Int v)) s.Metrics.sn_counters))
      );
      ( "gauges",
        Json.Obj
          (uniq_keys
             (List.map (fun (n, _, v) -> (n, Json.Float v)) s.Metrics.sn_gauges))
      );
      ( "histograms",
        Json.Obj
          (uniq_keys
             (List.map (fun (n, _, h) -> (n, hist_json h))
                s.Metrics.sn_histograms)) ) ]

let render_json t = Json.to_string (snapshot_json (Metrics.snapshot t))

let sanitize_name name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let escape_with specials s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      if c = '\n' then Buffer.add_string buf "\\n"
      else begin
        if List.mem c specials then Buffer.add_char buf '\\';
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let escape_help = escape_with [ '\\' ]
let escape_label = escape_with [ '\\'; '"' ]

let float_str f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else Printf.sprintf "%.12g" f

let header buf name help kind =
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

(* [sanitize_name] is many-to-one ("a.b" and "a:b"... map to the same
   series), so distinct registered metrics could silently collide in the
   exposition.  Resolve every raw name through one shared table: within a
   group of raw names sharing a sanitized form, the first in sorted order
   keeps it and the rest get a deterministic "_dupN" suffix (kept unique
   against the whole namespace). *)
let disambiguate raw_names =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun raw ->
      let s = sanitize_name raw in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups s) in
      Hashtbl.replace groups s (raw :: prev))
    (List.sort_uniq compare raw_names);
  let used = Hashtbl.create 16 in
  Hashtbl.iter (fun s _ -> Hashtbl.replace used s ()) groups;
  let resolved = Hashtbl.create 16 in
  List.iter
    (fun (s, raws) ->
      List.iteri
        (fun i raw ->
          if i = 0 then Hashtbl.replace resolved raw s
          else begin
            let candidate = ref (Printf.sprintf "%s_dup%d" s (i + 1)) in
            while Hashtbl.mem used !candidate do
              candidate := !candidate ^ "_"
            done;
            Hashtbl.replace used !candidate ();
            Hashtbl.replace resolved raw !candidate
          end)
        (List.sort compare raws))
    (List.sort compare
       (Hashtbl.fold (fun s raws acc -> (s, raws) :: acc) groups []));
  fun raw -> try Hashtbl.find resolved raw with Not_found -> sanitize_name raw

(* Label names have a stricter charset than metric names: no colon. *)
let sanitize_label_name name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let labels_str lbls =
  match lbls with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_label_name k)
                 (escape_label v))
             lbls)
      ^ "}"

(* Labelled exposition over label groups: one (HELP/TYPE) header per
   metric name across all groups, one sample line per group carrying
   that name, the group's labels rendered on every line.  The fleet
   /metrics endpoint feeds this the coordinator's snapshot unlabelled
   plus one [worker="N"] group per slot. *)
let prometheus_groups groups =
  let resolve =
    (* Counters, gauges and histograms — across every group — share one
       Prometheus namespace. *)
    disambiguate
      (List.concat_map
         (fun (_, s) ->
           List.map (fun (n, _, _) -> n) s.Metrics.sn_counters
           @ List.map (fun (n, _, _) -> n) s.Metrics.sn_gauges
           @ List.map (fun (n, _, _) -> n) s.Metrics.sn_histograms)
         groups)
  in
  (* Per kind: name -> (help, samples in group order), names sorted. *)
  let collect proj =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (lbls, s) ->
        List.iter
          (fun (n, help, v) ->
            match Hashtbl.find_opt tbl n with
            | None -> Hashtbl.replace tbl n (help, [ (lbls, v) ])
            | Some (help', vs) ->
                let help = if help' = "" then help else help' in
                Hashtbl.replace tbl n (help, (lbls, v) :: vs))
          (proj s))
      groups;
    Hashtbl.fold (fun n (help, vs) acc -> (n, help, List.rev vs) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, help, samples) ->
      let name = resolve name in
      header buf name help "counter";
      List.iter
        (fun (lbls, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (labels_str lbls) v))
        samples)
    (collect (fun s -> s.Metrics.sn_counters));
  List.iter
    (fun (name, help, samples) ->
      let name = resolve name in
      header buf name help "gauge";
      List.iter
        (fun (lbls, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (labels_str lbls) (float_str v)))
        samples)
    (collect (fun s -> s.Metrics.sn_gauges));
  List.iter
    (fun (name, help, samples) ->
      let name = resolve name in
      header buf name help "histogram";
      List.iter
        (fun (lbls, h) ->
          let cum = ref 0 in
          List.iter
            (fun (bound, count) ->
              if bound < infinity then begin
                cum := !cum + count;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (labels_str (lbls @ [ ("le", float_str bound) ]))
                     !cum)
              end)
            h.Metrics.hs_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (labels_str (lbls @ [ ("le", "+Inf") ]))
               h.Metrics.hs_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (labels_str lbls)
               (float_str h.Metrics.hs_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (labels_str lbls)
               h.Metrics.hs_count))
        samples)
    (collect (fun s -> s.Metrics.sn_histograms));
  Buffer.contents buf

let prometheus t = prometheus_groups [ ([], Metrics.snapshot t) ]

let fleet_json ~coordinator ~workers =
  Json.Obj
    [ ("coordinator", snapshot_json coordinator);
      ( "workers",
        Json.Obj
          (List.map
             (fun (slot, s) -> (string_of_int slot, snapshot_json s))
             (List.sort (fun (a, _) (b, _) -> compare a b) workers)) ) ]
