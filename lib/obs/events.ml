type ring = {
  rg_lines : string array;  (* circular; slot i mod cap *)
  mutable rg_total : int;   (* lines ever written *)
}

(* A bounded FIFO a producer fills and a consumer periodically drains —
   the worker side of the fleet telemetry plane.  Overflow between
   drains drops (counted) instead of growing without bound. *)
type batch = {
  bt_cap : int;
  bt_lines : string Queue.t;
  mutable bt_dropped : int;
}

type target =
  | Null
  | Buf of Buffer.t
  | Chan of out_channel
  | Ring of ring
  | Batch of batch
  | Tee of sink * sink

and sink = {
  target : target;
  context : (string * Json.t) list;
  mutex : Mutex.t;
}

let make target = { target; context = []; mutex = Mutex.create () }
let null = make Null
let to_buffer b = make (Buf b)
let to_channel c = make (Chan c)

let ring ?(cap = 1024) () =
  if cap < 1 then invalid_arg "Events.ring: cap must be positive";
  make (Ring { rg_lines = Array.make cap ""; rg_total = 0 })

let batch ?(cap = 512) () =
  if cap < 1 then invalid_arg "Events.batch: cap must be positive";
  make (Batch { bt_cap = cap; bt_lines = Queue.create (); bt_dropped = 0 })

let tee a b = make (Tee (a, b))

let with_context sink fields = { sink with context = sink.context @ fields }

let rec is_null sink =
  match sink.target with
  | Null -> true
  | Tee (a, b) -> is_null a && is_null b
  | Buf _ | Chan _ | Ring _ | Batch _ -> false

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The line is rendered once (with the outermost sink's context) and
   then pushed through the tee fan-out; each leaf serialises under its
   own lock so concurrent emitters never interleave partial lines. *)
let rec write_line sink line =
  match sink.target with
  | Null -> ()
  | Tee (a, b) ->
      write_line a line;
      write_line b line
  | Buf _ | Chan _ | Ring _ | Batch _ ->
      locked sink.mutex (fun () ->
          match sink.target with
          | Buf b ->
              Buffer.add_string b line;
              Buffer.add_char b '\n'
          | Chan c ->
              output_string c line;
              output_char c '\n'
          | Ring r ->
              let cap = Array.length r.rg_lines in
              r.rg_lines.(r.rg_total mod cap) <- line;
              r.rg_total <- r.rg_total + 1
          | Batch b ->
              if Queue.length b.bt_lines >= b.bt_cap then
                b.bt_dropped <- b.bt_dropped + 1
              else Queue.add line b.bt_lines
          | Null | Tee _ -> ())

let emit sink fields =
  if not (is_null sink) then
    write_line sink (Json.to_string (Json.Obj (fields @ sink.context)))

(* For lines rendered elsewhere (a fleet worker's batched events replayed
   into the coordinator's ring): label with this sink's context by
   splicing into the object rather than re-parsing it. *)
let emit_rendered sink line =
  if not (is_null sink) then begin
    let line =
      if sink.context = [] then line
      else
        let ctx =
          String.concat ","
            (List.map
               (fun (k, v) ->
                 Json.to_string (Json.Str k) ^ ":" ^ Json.to_string v)
               sink.context)
        in
        let n = String.length line in
        if n >= 2 && line.[0] = '{' && line.[n - 1] = '}' then
          if n = 2 then "{" ^ ctx ^ "}"
          else String.sub line 0 (n - 1) ^ "," ^ ctx ^ "}"
        else Json.to_string (Json.Obj (("line", Json.Str line) :: sink.context))
    in
    write_line sink line
  end

let rec recent sink n =
  match sink.target with
  | Ring r ->
      locked sink.mutex (fun () ->
          let cap = Array.length r.rg_lines in
          let avail = min r.rg_total cap in
          let take = max 0 (min n avail) in
          let rec go k acc =
            if k < 0 then acc
            else
              go (k - 1) (r.rg_lines.((r.rg_total - 1 - k) mod cap) :: acc)
          in
          List.rev (go (take - 1) []))
  | Tee (a, b) -> (
      match recent a n with [] -> recent b n | lines -> lines)
  | Null | Buf _ | Chan _ | Batch _ -> []

let rec drain sink =
  match sink.target with
  | Batch b ->
      locked sink.mutex (fun () ->
          let lines =
            List.rev (Queue.fold (fun acc l -> l :: acc) [] b.bt_lines)
          in
          Queue.clear b.bt_lines;
          let dropped = b.bt_dropped in
          b.bt_dropped <- 0;
          (lines, dropped))
  | Tee (a, b) ->
      let la, da = drain a in
      let lb, db = drain b in
      (la @ lb, da + db)
  | Null | Buf _ | Chan _ | Ring _ -> ([], 0)

let rec flush sink =
  match sink.target with
  | Chan c -> Stdlib.flush c
  | Tee (a, b) ->
      flush a;
      flush b
  | Null | Buf _ | Ring _ | Batch _ -> ()
