type target = Null | Buf of Buffer.t | Chan of out_channel

type sink = {
  target : target;
  context : (string * Json.t) list;
  mutex : Mutex.t;
}

let make target = { target; context = []; mutex = Mutex.create () }
let null = make Null
let to_buffer b = make (Buf b)
let to_channel c = make (Chan c)
let with_context sink fields = { sink with context = sink.context @ fields }
let is_null sink = sink.target = Null

let emit sink fields =
  match sink.target with
  | Null -> ()
  | target ->
      let line = Json.to_string (Json.Obj (fields @ sink.context)) in
      Mutex.lock sink.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink.mutex)
        (fun () ->
          match target with
          | Null -> ()
          | Buf b ->
              Buffer.add_string b line;
              Buffer.add_char b '\n'
          | Chan c ->
              output_string c line;
              output_char c '\n')

let flush sink =
  match sink.target with Chan c -> flush c | Null | Buf _ -> ()
