(* Hierarchical self-profiler.  One process-wide instance (like
   {!Metrics.default}): instrumentation sites all over the tree —
   executor phases, Dualcore.step, the compiled Sim/Shadow eval loops,
   corpus scheduling, checkpoint writes, Parallel.map dispatch — are
   compiled in permanently and guarded by a single [Atomic.get] so a
   disarmed profiler costs nothing and allocates nothing on the hot
   path.  Armed, every region exit folds into a path-keyed aggregate
   (count / total / self / max) under one mutex, with a per-domain memo
   so steady-state exits skip the lock for the node lookup. *)

type agg = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_self : float;
  mutable a_max : float;
}

type node = {
  n_path : string;
  n_name : string;
  n_depth : int;
  n_agg : agg;
}

type frame = {
  f_node : node;
  f_start : float;
  mutable f_child : float;  (* summed durations of directly nested regions *)
}

type event = {
  ev_path : string;
  ev_name : string;
  ev_tid : int;
  ev_start : float;
  ev_dur : float;
}

let armed_flag = Atomic.make false
let armed () = Atomic.get armed_flag

let clock_ref = ref Clock.real
let mutex = Mutex.create ()
let nodes : (string, node) Hashtbl.t = Hashtbl.create 64

(* Bumped by [reset] so per-domain memo tables and stacks from a
   previous profiling session are discarded lazily, without reaching
   into other domains' local state. *)
let epoch = Atomic.make 0

(* Trace-event recording: a fixed-capacity slot array indexed by an
   atomic cursor, so concurrent domains never contend on a lock to
   record an event; overflow drops (counted) rather than grows. *)
let trace_on = Atomic.make false
let trace_slots : event option array ref = ref [||]
let trace_next = Atomic.make 0
let trace_dropped = Atomic.make 0

type dstate = {
  mutable d_epoch : int;
  mutable d_stack : frame list;
  d_memo : (string, node) Hashtbl.t;
  mutable d_tid : int;
}

let dls =
  Domain.DLS.new_key (fun () ->
      { d_epoch = Atomic.get epoch; d_stack = []; d_memo = Hashtbl.create 32;
        d_tid = 0 })

let dstate () =
  let d = Domain.DLS.get dls in
  let e = Atomic.get epoch in
  if d.d_epoch <> e then begin
    d.d_epoch <- e;
    d.d_stack <- [];
    Hashtbl.reset d.d_memo
  end;
  d

let set_tid tid = (dstate ()).d_tid <- tid
let tid () = (dstate ()).d_tid

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let arm ?(clock = Clock.real) ?(trace = false) ?(trace_cap = 262_144) () =
  locked (fun () ->
      clock_ref := clock;
      if trace then begin
        if Array.length !trace_slots <> trace_cap then
          trace_slots := Array.make trace_cap None;
        Atomic.set trace_next 0;
        Atomic.set trace_dropped 0;
        Atomic.set trace_on true
      end
      else Atomic.set trace_on false;
      Atomic.set armed_flag true)

let disarm () =
  Atomic.set armed_flag false;
  Atomic.set trace_on false

let reset () =
  locked (fun () ->
      Hashtbl.reset nodes;
      Atomic.set trace_next 0;
      Atomic.set trace_dropped 0;
      Atomic.incr epoch)

let enter name =
  let d = dstate () in
  let parent = match d.d_stack with [] -> None | f :: _ -> Some f in
  let path =
    match parent with
    | None -> name
    | Some f -> f.f_node.n_path ^ "/" ^ name
  in
  let node =
    match Hashtbl.find_opt d.d_memo path with
    | Some n -> n
    | None ->
        let n =
          locked (fun () ->
              match Hashtbl.find_opt nodes path with
              | Some n -> n
              | None ->
                  let n =
                    { n_path = path;
                      n_name = name;
                      n_depth =
                        (match parent with
                        | None -> 0
                        | Some f -> f.f_node.n_depth + 1);
                      n_agg =
                        { a_count = 0; a_total = 0.0; a_self = 0.0;
                          a_max = 0.0 } }
                  in
                  Hashtbl.replace nodes path n;
                  n)
        in
        Hashtbl.replace d.d_memo path n;
        n
  in
  let fr = { f_node = node; f_start = Clock.now !clock_ref; f_child = 0.0 } in
  d.d_stack <- fr :: d.d_stack;
  fr

let push_event ev =
  let slots = !trace_slots in
  let cap = Array.length slots in
  let i = Atomic.fetch_and_add trace_next 1 in
  if i < cap then slots.(i) <- Some ev else Atomic.incr trace_dropped

let leave fr =
  let d = dstate () in
  let dur = Clock.now !clock_ref -. fr.f_start in
  (* Pop the stack down to (and including) [fr]; an intervening raise
     that skipped a [leave] just folds the skipped frames' time into
     this one. *)
  let rec pop = function
    | f :: rest when f == fr -> rest
    | _ :: rest -> pop rest
    | [] -> []
  in
  d.d_stack <- pop d.d_stack;
  (match d.d_stack with
  | parent :: _ -> parent.f_child <- parent.f_child +. dur
  | [] -> ());
  locked (fun () ->
      let a = fr.f_node.n_agg in
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total +. dur;
      a.a_self <- a.a_self +. (dur -. fr.f_child);
      if dur > a.a_max then a.a_max <- dur);
  if Atomic.get trace_on then
    push_event
      { ev_path = fr.f_node.n_path;
        ev_name = fr.f_node.n_name;
        ev_tid = d.d_tid;
        ev_start = fr.f_start;
        ev_dur = dur }

(* Callers on hot paths must guard the closure allocation themselves:
     if Profile.armed () then Profile.wrap "x" (fun () -> f t) else f t
   so the disarmed cost is one atomic load and a branch. *)
let wrap name f =
  if not (armed ()) then f ()
  else begin
    let fr = enter name in
    Fun.protect ~finally:(fun () -> leave fr) f
  end

type entry = {
  pf_path : string;
  pf_name : string;
  pf_depth : int;
  pf_count : int;
  pf_total_s : float;
  pf_self_s : float;
  pf_max_s : float;
}

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ n acc ->
          { pf_path = n.n_path;
            pf_name = n.n_name;
            pf_depth = n.n_depth;
            pf_count = n.n_agg.a_count;
            pf_total_s = n.n_agg.a_total;
            pf_self_s = n.n_agg.a_self;
            pf_max_s = n.n_agg.a_max }
          :: acc)
        nodes [])
  |> List.sort (fun a b -> compare a.pf_path b.pf_path)

let events () =
  let slots = !trace_slots in
  let n = min (Atomic.get trace_next) (Array.length slots) in
  let rec collect i acc =
    if i < 0 then acc
    else
      match slots.(i) with
      | Some ev -> collect (i - 1) (ev :: acc)
      | None -> collect (i - 1) acc
  in
  List.sort
    (fun a b -> compare (a.ev_start, a.ev_tid) (b.ev_start, b.ev_tid))
    (collect (n - 1) [])

let events_dropped () = Atomic.get trace_dropped

(* Insertion-order suffix read: the slice of recorded events whose slot
   index is >= [from], plus the cursor to resume from.  This is how a
   fleet worker ships trace *deltas* on each telemetry flush without
   re-sending the whole buffer.  Slots a racing domain has claimed but
   not yet filled read as [None] and are skipped; they will surface in
   a later delta. *)
let events_from from =
  let slots = !trace_slots in
  let upto = min (Atomic.get trace_next) (Array.length slots) in
  let from = max 0 (min from upto) in
  let acc = ref [] in
  for i = upto - 1 downto from do
    match slots.(i) with Some ev -> acc := ev :: !acc | None -> ()
  done;
  (!acc, upto)

(* Path-keyed combination of two aggregate lists.  Counts and times
   add, maxima take the max; same-path entries agree on name/depth by
   construction, so the operation is commutative (pinned by QCheck in
   the fleet tests) — worker profiles can be folded in any order. *)
let merge a b =
  let tbl = Hashtbl.create 64 in
  let add e =
    match Hashtbl.find_opt tbl e.pf_path with
    | None -> Hashtbl.replace tbl e.pf_path e
    | Some e' ->
        Hashtbl.replace tbl e.pf_path
          { e' with
            pf_count = e'.pf_count + e.pf_count;
            pf_total_s = e'.pf_total_s +. e.pf_total_s;
            pf_self_s = e'.pf_self_s +. e.pf_self_s;
            pf_max_s = Float.max e'.pf_max_s e.pf_max_s }
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
  |> List.sort (fun x y -> compare x.pf_path y.pf_path)

(* The table is a flat hot-spot profile: one row per path, hottest
   self-time first with the path as tiebreak, so two runs over the same
   workload render byte-comparable tables. *)
let render_table entries =
  let entries =
    List.sort
      (fun a b ->
        match compare b.pf_self_s a.pf_self_s with
        | 0 -> compare a.pf_path b.pf_path
        | c -> c)
      entries
  in
  let total_self =
    List.fold_left (fun acc e -> acc +. e.pf_self_s) 0.0 entries
  in
  let pct self =
    if total_self <= 0.0 then 0.0 else 100.0 *. self /. total_self
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %10s %12s %12s %12s %7s\n" "region" "count"
       "total ms" "self ms" "max ms" "self %");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-44s %10d %12.3f %12.3f %12.3f %7.1f\n" e.pf_path
           e.pf_count (e.pf_total_s *. 1e3) (e.pf_self_s *. 1e3)
           (e.pf_max_s *. 1e3) (pct e.pf_self_s)))
    entries;
  Buffer.contents buf

let entry_json e =
  Json.Obj
    [ ("path", Json.Str e.pf_path);
      ("name", Json.Str e.pf_name);
      ("depth", Json.Int e.pf_depth);
      ("count", Json.Int e.pf_count);
      ("total_s", Json.Float e.pf_total_s);
      ("self_s", Json.Float e.pf_self_s);
      ("max_s", Json.Float e.pf_max_s) ]

let to_json entries =
  Json.Obj
    [ ("schema", Json.Str "dvz-profile/1");
      ("regions", Json.Arr (List.map entry_json entries)) ]
