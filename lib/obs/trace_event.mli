(** Chrome [trace_event] export.

    Renders the profiler's recorded regions ({!Profile.events}) as a
    Perfetto/chrome://tracing-loadable JSON object: complete ["X"]
    events on one track per worker domain (tid = the worker index set
    via {!Profile.set_tid}), plus ["M"] thread-name metadata.
    Timestamps are microseconds relative to the earliest recorded
    region. *)

val to_json : Profile.event list -> Json.t
val render : Profile.event list -> string

val write_file : string -> Profile.event list -> unit
(** Writes {!render} (plus a trailing newline) to [path]. *)
