(** Chrome [trace_event] export.

    Renders the profiler's recorded regions ({!Profile.events}) as a
    Perfetto/chrome://tracing-loadable JSON object: complete ["X"]
    events on one track per worker domain (tid = the worker index set
    via {!Profile.set_tid}), plus ["M"] thread-name and process-name
    metadata.  Timestamps are microseconds relative to the earliest
    recorded region.

    The [_multi] forms take [(pid, process_name, events)] groups — one
    per fleet process, events already shifted onto the coordinator's
    clock — and share a single time base across groups, so a merged
    fleet trace renders as one named row group per worker process. *)

val to_json : Profile.event list -> Json.t
(** Single-process export: [to_json_multi] with one pid-1 group named
    ["dejavuzz"]. *)

val to_json_multi : (int * string * Profile.event list) list -> Json.t

val render : Profile.event list -> string
val render_multi : (int * string * Profile.event list) list -> string

val write_file : string -> Profile.event list -> unit
(** Writes {!render} (plus a trailing newline) to [path]. *)

val write_file_multi :
  string -> (int * string * Profile.event list) list -> unit
