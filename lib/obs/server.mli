(** Minimal embedded HTTP/1.1 status server.

    One background thread accepts loopback connections and serves
    line-parsed [GET] requests against a fixed route table, closing each
    connection after one response.  Handlers run on the server thread
    and must only read published snapshots — the campaign hot loop
    never blocks on them.  No third-party dependency; just [Unix] and
    [Thread]. *)

type t

type response = { status : int; content_type : string; body : string }

type handler = (string * string) list -> response
(** Receives the decoded query parameters (e.g. [("n", "50")]).
    Exceptions become a 500 response.  Malformed query strings —
    longer than 1024 bytes or with a duplicated key — never reach a
    handler; the server answers 400 itself. *)

val text : ?status:int -> string -> response
val json : ?status:int -> Json.t -> response

val int_param :
  ?default:int -> string -> (string * string) list -> (int, response) result
(** Validated integer query parameter: [Error] carries a ready 400
    response for junk values ([?n=abc]); a missing parameter yields
    [default] when given, otherwise the 400. *)

val start :
  ?host:string ->
  ?client_timeout_s:float ->
  port:int ->
  routes:(string * handler) list ->
  unit ->
  (t, string) result
(** Binds [host] (default loopback) on [port] ([0] = ephemeral; see
    {!port} for the bound value) and starts the accept thread.  Routing
    is by exact path; unknown paths get 404, non-GET methods 405.

    [client_timeout_s] (default 5, must be positive) is the absolute
    per-connection deadline for receiving the request line: a client
    that connects and stays silent — or trickles bytes without ever
    sending a newline — is answered with 400 and closed once the
    deadline passes, so a single stalled connection can never pin the
    accept thread during a long campaign. *)

val port : t -> int

val stop : t -> unit
(** Signals the accept thread, closes the listening socket and joins.
    Idempotent. *)
