type t = { read : unit -> float }

let real = { read = Unix.gettimeofday }

let fake ?(step = 1.0) () =
  let t = ref 0.0 in
  { read =
      (fun () ->
        let v = !t in
        t := v +. step;
        v) }

let now c = c.read ()
