(** Hierarchical self-profiler: nested timed regions aggregated by
    call-path with count / total / self / max statistics, plus an
    optional bounded trace-event recording for Chrome [trace_event]
    export.  Process-global (like {!Metrics.default}) and domain-safe;
    when disarmed every probe is a single atomic load, and the
    recommended call pattern

    {[ if Profile.armed () then Profile.wrap "x" (fun () -> f t) else f t ]}

    keeps hot paths allocation-free. *)

type frame
(** An open region, returned by {!enter} and closed by {!leave}. *)

type entry = {
  pf_path : string;  (** slash-joined path from the region's root *)
  pf_name : string;  (** leaf region name *)
  pf_depth : int;    (** nesting depth (0 = root region) *)
  pf_count : int;
  pf_total_s : float;
  pf_self_s : float; (** total minus time in directly nested regions *)
  pf_max_s : float;
}

type event = {
  ev_path : string;
  ev_name : string;
  ev_tid : int;     (** worker track set via {!set_tid} *)
  ev_start : float; (** absolute clock reading at region entry *)
  ev_dur : float;
}

val arm : ?clock:Clock.t -> ?trace:bool -> ?trace_cap:int -> unit -> unit
(** Enable recording.  [trace] additionally records individual region
    events (up to [trace_cap]; overflow is dropped and counted). *)

val disarm : unit -> unit
val armed : unit -> bool

val reset : unit -> unit
(** Drop all aggregates and recorded events.  Open frames in any domain
    are invalidated (their [leave] becomes a no-op against fresh
    aggregates). *)

val enter : string -> frame
val leave : frame -> unit

val wrap : string -> (unit -> 'a) -> 'a
(** [wrap name f] runs [f] inside a region when armed, closing it even
    on exceptions; when disarmed it is just [f ()].  Hot-path callers
    should guard with {!armed} so the closure is never allocated when
    disarmed. *)

val set_tid : int -> unit
(** Set the trace track id for the calling domain (worker index). *)

val tid : unit -> int

val snapshot : unit -> entry list
(** Aggregates sorted by path (children follow their parent). *)

val events : unit -> event list
(** Recorded trace events in start-time order (empty unless armed with
    [~trace:true]). *)

val events_dropped : unit -> int

val events_from : int -> event list * int
(** [events_from cursor] returns the recorded events at slot indices
    [>= cursor] in insertion order, plus the cursor to pass next time —
    the delta read a fleet worker uses to ship each telemetry flush
    without re-sending its whole trace buffer. *)

val merge : entry list -> entry list -> entry list
(** Path-keyed combination: counts and times add, maxima take the max.
    Commutative (same-path entries agree on name and depth), output
    path-sorted like {!snapshot} — how the coordinator folds worker
    profiles into the merged [--profile] view. *)

val render_table : entry list -> string
(** Fixed-width flat profile: one row per path with a %-of-total-self
    column, sorted by self time descending (path ascending as tiebreak)
    so repeated runs diff cleanly. *)

val to_json : entry list -> Json.t
(** [dvz-profile/1] artifact. *)
