(* Chrome trace_event ("Trace Event Format") export of recorded
   profiler regions: complete ("X") events with microsecond timestamps
   relative to the earliest region, one track (tid) per worker domain,
   named via "M"/thread_name metadata so Perfetto and chrome://tracing
   label the rows.  The multi-process form gives each fleet process its
   own pid group with "M"/process_name metadata, so a merged fleet
   trace renders as one named row group per worker process. *)

let us_of_s s = int_of_float (Float.round (s *. 1e6))

let complete_event ~pid ~base (ev : Profile.event) =
  Json.Obj
    [ ("name", Json.Str ev.Profile.ev_name);
      ("cat", Json.Str "dvz");
      ("ph", Json.Str "X");
      ("ts", Json.Int (us_of_s (ev.Profile.ev_start -. base)));
      ("dur", Json.Int (max 1 (us_of_s ev.Profile.ev_dur)));
      ("pid", Json.Int pid);
      ("tid", Json.Int ev.Profile.ev_tid);
      ("args", Json.Obj [ ("path", Json.Str ev.Profile.ev_path) ]) ]

let process_meta ~pid name =
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let thread_meta ~pid tid =
  let name =
    if tid = 0 then "worker-0 (orchestrator)"
    else Printf.sprintf "worker-%d" tid
  in
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

(* One shared time base across every group: the earliest region
   anywhere becomes ts 0, so coordinator and (offset-aligned) worker
   tracks line up on one axis. *)
let to_json_multi groups =
  let base =
    List.fold_left
      (fun acc (_, _, events) ->
        List.fold_left
          (fun acc ev -> Float.min acc ev.Profile.ev_start)
          acc events)
      infinity groups
  in
  let base = if Float.is_finite base then base else 0.0 in
  let group_events (pid, pname, events) =
    let tids =
      List.sort_uniq compare (List.map (fun ev -> ev.Profile.ev_tid) events)
    in
    (process_meta ~pid pname :: List.map (thread_meta ~pid) tids)
    @ List.map (complete_event ~pid ~base) events
  in
  Json.Obj
    [ ("traceEvents", Json.Arr (List.concat_map group_events groups));
      ("displayTimeUnit", Json.Str "ms") ]

let to_json events = to_json_multi [ (1, "dejavuzz", events) ]

let render events = Json.to_string (to_json events)
let render_multi groups = Json.to_string (to_json_multi groups)

let write_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      output_char oc '\n')

let write_file path events = write_string path (render events)
let write_file_multi path groups = write_string path (render_multi groups)
