(* Chrome trace_event ("Trace Event Format") export of recorded
   profiler regions: complete ("X") events with microsecond timestamps
   relative to the earliest region, one track (tid) per worker domain,
   named via "M"/thread_name metadata so Perfetto and chrome://tracing
   label the rows. *)

let us_of_s s = int_of_float (Float.round (s *. 1e6))

let complete_event ~base (ev : Profile.event) =
  Json.Obj
    [ ("name", Json.Str ev.Profile.ev_name);
      ("cat", Json.Str "dvz");
      ("ph", Json.Str "X");
      ("ts", Json.Int (us_of_s (ev.Profile.ev_start -. base)));
      ("dur", Json.Int (max 1 (us_of_s ev.Profile.ev_dur)));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.Profile.ev_tid);
      ("args", Json.Obj [ ("path", Json.Str ev.Profile.ev_path) ]) ]

let thread_meta tid =
  let name = if tid = 0 then "worker-0 (orchestrator)" else Printf.sprintf "worker-%d" tid in
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let to_json events =
  let base =
    List.fold_left
      (fun acc ev -> Float.min acc ev.Profile.ev_start)
      infinity events
  in
  let base = if Float.is_finite base then base else 0.0 in
  let tids =
    List.sort_uniq compare (List.map (fun ev -> ev.Profile.ev_tid) events)
  in
  Json.Obj
    [ ( "traceEvents",
        Json.Arr
          (List.map thread_meta tids
          @ List.map (complete_event ~base) events) );
      ("displayTimeUnit", Json.Str "ms") ]

let render events = Json.to_string (to_json events)

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (render events);
      output_char oc '\n')
