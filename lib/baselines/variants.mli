(** The paper's DejaVuzz ablation variants (§6.2, §6.3):

    - DejaVuzz* keeps swapMem but replaces training derivation with random
      training packets (no alignment, no control-flow matching);
    - DejaVuzz⁻ keeps everything but taint-coverage feedback, mutating the
      window section blindly. *)

val star_options : iterations:int -> rng_seed:int -> Dejavuzz.Campaign.options
(** DejaVuzz*. *)

val minus_options : iterations:int -> rng_seed:int -> Dejavuzz.Campaign.options
(** DejaVuzz⁻. *)

val full_options : iterations:int -> rng_seed:int -> Dejavuzz.Campaign.options
(** Unablated DejaVuzz, for symmetric bench code. *)
