module Campaign = Dejavuzz.Campaign

let base ~iterations ~rng_seed =
  { Campaign.default_options with Campaign.iterations; rng_seed }

let star_options ~iterations ~rng_seed =
  { (base ~iterations ~rng_seed) with Campaign.style = `Random }

let minus_options ~iterations ~rng_seed =
  { (base ~iterations ~rng_seed) with Campaign.coverage_guided = false }

let full_options = base
