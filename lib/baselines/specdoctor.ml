open Dvz_isa
open Dvz_soc
module Rng = Dvz_util.Rng
module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Dualcore = Dvz_uarch.Dualcore
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module Genlib = Dejavuzz.Genlib

type case = {
  sc_testcase : Packet.testcase;
  sc_kind : Seed.trigger_kind;
  sc_training_insns : int;
}

let supported =
  [| Seed.T_page_fault; Seed.T_mem_disamb; Seed.T_branch; Seed.T_jump |]

let absent_page = 0xE000

let t4 = Reg.x 28
let t5 = Reg.x 29

(* A random secret-transmit payload, SpecDoctor-style (unguided). *)
let payload rng =
  let access = [ Insn.Load (Insn.D, false, Reg.s0, Reg.s1, 0) ] in
  let gadget =
    (* Unguided choice: most SpecDoctor payloads park the secret in state
       that dies at squash (plain dataflow), which is what makes most of
       its hash-difference candidates unexploitable. *)
    let r = Rng.float rng 1.0 in
    match (if r < 0.14 then 0 else if r < 0.26 then 1 else 2) with
    | 0 ->
        ( [ "dcache" ],
          [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
            Insn.Opi (Insn.Slli, t4, t4, 6);
            Insn.Op (Insn.Add, t4, t4, Reg.a3);
            Insn.Load (Insn.D, false, t5, t4, 0) ] )
    | 1 ->
        ( [ "lsu" ],
          [ Insn.Opi (Insn.Andi, t4, Reg.s0, 1);
            Insn.Branch (Insn.Eq, t4, Reg.zero, 12);
            Insn.Load (Insn.D, false, t5, Reg.a3, 0) ] )
    | _ ->
        ( [ "arith" ],
          [ Genlib.random_arith rng ~dst:t4 ~srcs:[ Reg.s0 ] ] )
  in
  let tags, encode = gadget in
  (tags, access @ encode)

let random_junk rng n =
  List.init n (fun _ ->
      Genlib.random_arith rng ~dst:(Rng.choose rng Genlib.scratch)
        ~srcs:[ Rng.choose rng Genlib.scratch ])

let word_addr off = Layout.swap_base + (4 * off)

let mk_case rng kind ~insns ~trigger_off ~window_off ~window_words ~data
    ~perms ~tighten ~tags ~training =
  let seed =
    { Seed.kind; trigger_entropy = Rng.next rng; window_entropy = Rng.next rng;
      tighten; mask_high = false }
  in
  { sc_testcase =
      { Packet.seed;
        transient = Packet.make ~name:"specdoctor" ~role:Packet.Transient insns;
        trigger_trainings = []; window_trainings = [];
        trigger_addr = word_addr trigger_off;
        window_addr = word_addr window_off;
        window_words; data; perms; tighten; gadget_tags = tags };
    sc_kind = kind;
    sc_training_insns = training }

let generate_of_kind rng cfg kind =
  let tighten = Rng.bool rng in
  let secret_addr = Layout.secret_base + (8 * Rng.int rng Layout.secret_dwords) in
  let prologue =
    Genlib.li Reg.s1 secret_addr @ Genlib.li Reg.a3 Layout.probe_base
  in
  let p = List.length prologue in
  match kind with
  | Seed.T_branch ->
      (* Train a BHT entry taken with a counted loop; the trigger branch
         aliases the same entry one index-stride later. *)
      let iters = Rng.int_in rng 5 9 in
      let counter_setup = Genlib.li Reg.t0 iters in
      let loop_body =
        [ Insn.Opi (Insn.Addi, Reg.t0, Reg.t0, -1);
          Genlib.random_arith rng ~dst:t4 ~srcs:[ t4 ];
          Genlib.random_arith rng ~dst:t5 ~srcs:[ t5 ];
          Insn.Branch (Insn.Ne, Reg.t0, Reg.zero, -12) ]
      in
      let pre = prologue @ counter_setup in
      let loop_branch_off = List.length pre + 3 in
      let trigger_off = loop_branch_off + cfg.Cfg.bht_entries in
      let filler =
        random_junk rng (trigger_off - (List.length pre + List.length loop_body))
      in
      let tags, pay = payload rng in
      let insns =
        pre @ loop_body @ filler
        @ [ Insn.Branch (Insn.Ne, Reg.zero, Reg.zero, 8); Insn.Ebreak ]
        @ pay @ [ Insn.Ebreak ]
      in
      let dynamic =
        List.length pre + (4 * iters) + List.length filler
      in
      mk_case rng kind ~insns ~trigger_off ~window_off:(trigger_off + 2)
        ~window_words:(List.length pay) ~data:[] ~perms:[] ~tighten ~tags
        ~training:dynamic
  | Seed.T_jump ->
      (* Train a BTB entry with a committed jalr, trigger with an aliasing
         jalr one index-stride later. *)
      let junk1 = random_junk rng (Rng.int_in rng 60 90) in
      let pre = prologue @ junk1 in
      let train_target_setup_len = 2 in
      let jalr_off = List.length pre + train_target_setup_len in
      let train_target = word_addr (jalr_off + 1) in
      let train = Genlib.li Reg.t2 train_target @ [ Insn.Jalr (Reg.zero, Reg.t2, 0) ] in
      let trigger_off = jalr_off + cfg.Cfg.btb_entries in
      let actual_target = word_addr (trigger_off + 2) in
      let setup2 = Genlib.li Reg.t2 actual_target in
      let filler =
        random_junk rng
          (trigger_off - (List.length pre + List.length train)
          - List.length setup2)
      in
      let tags, pay = payload rng in
      let insns =
        pre @ train @ filler @ setup2
        @ [ Insn.Jalr (Reg.zero, Reg.t2, 0); Insn.Ebreak ]
        @ pay @ [ Insn.Ebreak ]
      in
      let dynamic = trigger_off in
      mk_case rng kind ~insns ~trigger_off ~window_off:(jalr_off + 1)
        ~window_words:(List.length pay) ~data:[] ~perms:[] ~tighten ~tags
        ~training:dynamic
  | Seed.T_page_fault ->
      let junk = random_junk rng (Rng.int_in rng 100 130) in
      let fault_setup = Genlib.li Reg.t0 (absent_page + (8 * Rng.int rng 8)) in
      let trigger_off = p + List.length junk + List.length fault_setup in
      let tags, pay = payload rng in
      let insns =
        prologue @ junk @ fault_setup
        @ [ Insn.Load (Insn.D, false, t5, Reg.t0, 0) ]
        @ pay @ [ Insn.Ebreak ]
      in
      mk_case rng kind ~insns ~trigger_off ~window_off:(trigger_off + 1)
        ~window_words:(List.length pay)
        ~data:[] ~perms:[ (absent_page, Perm.absent) ] ~tighten ~tags
        ~training:(trigger_off)
  | Seed.T_mem_disamb ->
      let x = Layout.dedicated_base + (8 * Rng.int_in rng 16 32) in
      let junk = random_junk rng (Rng.int_in rng 95 125) in
      let setup = Genlib.li Reg.t0 x @ Genlib.li Reg.t1 Layout.probe_base in
      let pre_off = p + List.length junk + List.length setup in
      let trigger_off = pre_off + 1 in
      let tags, pay0 = payload rng in
      (* The stale pointer flows through a2. *)
      let pay =
        List.map
          (function
            | Insn.Load (w, u, rd, rs1, imm) when Reg.equal rs1 Reg.s1 ->
                Insn.Load (w, u, rd, Reg.a2, imm)
            | i -> i)
          pay0
      in
      let insns =
        prologue @ junk @ setup
        @ [ Insn.Store (Insn.D, Reg.t1, Reg.t0, 0);
            Insn.Load (Insn.D, false, Reg.a2, Reg.t0, 0) ]
        @ pay @ [ Insn.Ebreak ]
      in
      mk_case rng kind ~insns ~trigger_off ~window_off:(trigger_off + 1)
        ~window_words:(List.length pay)
        ~data:[ (x, Layout.secret_base) ] ~perms:[] ~tighten:false ~tags
        ~training:trigger_off
  | Seed.T_access_fault | Seed.T_misalign | Seed.T_illegal | Seed.T_return ->
      invalid_arg "Specdoctor.generate_of_kind: unsupported window type"

let generate rng cfg = generate_of_kind rng cfg (Rng.choose rng supported)

let eval_secret = Array.make Layout.secret_dwords 0x5A

let triggered cfg case =
  let stim = Packet.stimulus ~secret:eval_secret case.sc_testcase in
  let core = Core.create cfg stim in
  ignore (Core.run core);
  List.exists
    (fun (w : Core.window_record) ->
      w.Core.wr_trigger_pc = case.sc_testcase.Packet.trigger_addr
      && w.Core.wr_enqueued > 0
      && Dejavuzz.Trigger_gen.expected_window case.sc_testcase.Packet.seed
           w.Core.wr_kind)
    (Core.windows core)

let run_hash cfg ~secret tc =
  let core = Core.create cfg (Packet.stimulus ~secret tc) in
  ignore (Core.run core);
  Core.state_hash core

let hash_differs cfg ~secret case =
  let flipped = Array.map (fun v -> v lxor 0xFFFFFFFF) secret in
  run_hash cfg ~secret case.sc_testcase
  <> run_hash cfg ~secret:flipped case.sc_testcase

type stats = {
  sd_coverage_curve : int array;
  sd_candidates : case list;
  sd_iterations : int;
}

let campaign ?(rng_seed = 1) ~iterations cfg =
  let rng = Rng.create rng_seed in
  let secret = Array.init Layout.secret_dwords (fun _ -> Rng.int rng 0xFFFF_FFFF) in
  let coverage = Dejavuzz.Coverage.create () in
  let curve = Array.make iterations 0 in
  let candidates = ref [] in
  for it = 0 to iterations - 1 do
    let case = generate rng cfg in
    (* Replay under diffIFT for a comparable coverage measurement. *)
    let result =
      Dualcore.run
        (Dualcore.create cfg (Packet.stimulus ~secret case.sc_testcase))
    in
    ignore (Dejavuzz.Coverage.observe_result coverage result);
    if triggered cfg case && hash_differs cfg ~secret case then
      candidates := case :: !candidates;
    curve.(it) <- Dejavuzz.Coverage.points coverage
  done;
  { sd_coverage_curve = curve;
    sd_candidates = List.rev !candidates;
    sd_iterations = iterations }
