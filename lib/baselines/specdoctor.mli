(** Re-implementation of SpecDoctor (Hur et al., CCS'22), the paper's
    state-of-the-art baseline, on the same DUT substrate.

    Characteristics reproduced from the paper's comparison (§2.3, §6.2,
    §6.3): linear single-sequence stimuli in which random training
    instructions precede the trigger (so every window type pays ~120
    instructions of training, useful or not); only the window types its
    generation strategy supports (page faults, memory disambiguation,
    branch and indirect-jump mispredictions — it discards windows with
    backward jumps and cannot place access-fault / misalign / return
    triggers); training by BHT/BTB index aliasing rather than targeted
    placement, which works on BOOM's untagged predictors only; and a
    hash-based differential oracle over final timing-component state that
    flags unexploitable residue (stale cache/LFB contents) as candidate
    leaks. *)

type case = {
  sc_testcase : Dejavuzz.Packet.testcase;    (** single-blob linear stimulus *)
  sc_kind : Dejavuzz.Seed.trigger_kind;
  sc_training_insns : int;          (** dynamic pre-trigger instructions *)
}

val supported : Dejavuzz.Seed.trigger_kind array
(** The window types SpecDoctor's generation can produce. *)

val generate : Dvz_util.Rng.t -> Dvz_uarch.Config.t -> case
(** Generates one stimulus (random supported kind). *)

val generate_of_kind :
  Dvz_util.Rng.t -> Dvz_uarch.Config.t -> Dejavuzz.Seed.trigger_kind -> case

val triggered : Dvz_uarch.Config.t -> case -> bool
(** Whether the intended window fires (RoB-event check, as in §4.1.2 — the
    measurement harness shared by the Table 3 bench). *)

val hash_differs : Dvz_uarch.Config.t -> secret:int array -> case -> bool
(** SpecDoctor's phase-3 oracle: run the two secret variants and compare
    the final state hashes. *)

type stats = {
  sd_coverage_curve : int array;
      (** taint-coverage replay of its test cases, for Figure 7 *)
  sd_candidates : case list;        (** hash-difference phase-3 cases *)
  sd_iterations : int;
}

val campaign :
  ?rng_seed:int -> iterations:int -> Dvz_uarch.Config.t -> stats
(** Runs a SpecDoctor campaign: random generation, hash-difference
    filtering, no taint feedback.  Coverage is measured by replaying each
    case under diffIFT, exactly like the paper replays SpecDoctor's phase 3
    test cases in the DejaVuzz environment for comparability. *)
