(** Netlist optimization passes — stage 1 of the two-stage lowering.

    [run] deep-copies the input netlist ({!Netlist.copy}), rewrites the copy
    in place and returns it together with per-pass cell-count statistics;
    the original is never modified and signal handles remain valid against
    the optimized copy (indices are stable — removal turns a cell into
    [Const 0] rather than renumbering).

    Every rewrite is sound for the IFT shadow engine as well as the value
    engine: the optimized netlist must produce bit-identical values {e and}
    taints (both {!Dvz_ift.Policy} modes) to the original on every named
    signal, register, memory and output.  Rewrites that preserve values but
    not taints (e.g. [x ^ x -> 0], [x + 0 -> x]) are deliberately excluded;
    see the commentary in [passes.ml].

    Consequences of dead-cell elimination: an {e unnamed} combinational cell
    feeding nothing observable is rewritten to [Const 0], so peeking it in a
    simulator built from the optimized netlist reads 0.  Named cells,
    inputs, registers and memory write ports are always preserved, which is
    what keeps VCD dumps and provenance slices identical.  Optimization is
    therefore opt-in ([?opt] on the engine constructors). *)

val set_enabled : bool -> unit
(** Process-global escape hatch, wired to the CLI's [--no-ir-opt]: when set
    to [false], every [?opt:true] engine construction ({!Sim.create},
    {!Sim.Lanes.create}, the shadow co-simulators, {!Vcd.dump_simulation})
    skips optimization.  Defaults to [true].  Direct {!run} calls are not
    affected. *)

val enabled : unit -> bool

type pass_stat = {
  ps_name : string;
  ps_cells_before : int;  (** combinational cells before this pass ran *)
  ps_cells_after : int;   (** combinational cells after *)
  ps_rewrites : int;      (** individual cell rewrites applied *)
}

type stats = {
  st_passes : pass_stat list;  (** one entry per pass execution, in order *)
  st_cells_before : int;
  st_cells_after : int;
}

val default_passes : string list
(** [["const-fold"; "alias"; "fuse"; "dce"]]. *)

val run : ?passes:string list -> Netlist.t -> Netlist.t * stats
(** [run nl] optimizes a copy of [nl] and returns it with statistics.  The
    simplification passes iterate to a fixpoint (bounded); ["dce"] runs once
    at the end.  The result is re-checked with {!Netlist.validate}.  Raises
    [Invalid_argument] on an unknown pass name.  Bumps the
    [dvz_ir_passes_run_total] and [dvz_ir_cells_eliminated_total] counters
    on the default metrics registry. *)

val optimize : Netlist.t -> Netlist.t
(** [optimize nl] is [fst (run nl)]. *)

val pp_stats : Format.formatter -> stats -> unit
