module N = Netlist

type rob = {
  rob_nl : N.t;
  enq_valid : N.signal;
  enq_uopc : N.signal;
  rollback : N.signal;
  rollback_idx : N.signal;
  tail : N.signal;
  uopc : N.signal array;
}

let rob ~entries ~uopc_width =
  let nl = N.create () in
  N.scoped nl "rob" (fun () ->
      let idx_w =
        let rec bits n acc = if n <= 1 then max acc 1 else bits (n / 2) (acc + 1) in
        bits (entries - 1) 1
      in
      let enq_valid = N.input nl ~name:"enq_valid" 1 in
      let enq_uopc = N.input nl ~name:"enq_uopc" uopc_width in
      let rollback = N.input nl ~name:"rollback" 1 in
      let rollback_idx = N.input nl ~name:"rollback_idx" idx_w in
      let tail = N.reg nl ~name:"rob_tail_idx" idx_w in
      let one = N.const nl idx_w 1 in
      let incremented = N.add nl tail one in
      let after_enq = N.mux nl enq_valid tail incremented in
      let next_tail = N.mux nl rollback after_enq rollback_idx in
      N.reg_connect nl tail ~d:next_tail ();
      let uopc =
        Array.init entries (fun i ->
            let q = N.reg nl ~name:(Printf.sprintf "rob_%d_uopc" i) uopc_width in
            let at_i = N.eq nl tail (N.const nl idx_w i) in
            let wen = N.and_ nl enq_valid at_i in
            N.reg_connect nl q ~d:enq_uopc ~en:wen ();
            q)
      in
      { rob_nl = nl; enq_valid; enq_uopc; rollback; rollback_idx; tail; uopc })

type lfb = {
  lfb_nl : N.t;
  fill_valid : N.signal;
  fill_idx : N.signal;
  fill_data : N.signal;
  retire : N.signal;
  retire_idx : N.signal;
  data : N.signal array;
  valid : N.signal array;
}

let lfb ~entries ~data_width =
  let nl = N.create () in
  N.scoped nl "lfb" (fun () ->
      let idx_w =
        let rec bits n acc = if n <= 1 then max acc 1 else bits (n / 2) (acc + 1) in
        bits (entries - 1) 1
      in
      let fill_valid = N.input nl ~name:"fill_valid" 1 in
      let fill_idx = N.input nl ~name:"fill_idx" idx_w in
      let fill_data = N.input nl ~name:"fill_data" data_width in
      let retire = N.input nl ~name:"retire" 1 in
      let retire_idx = N.input nl ~name:"retire_idx" idx_w in
      let zero1 = N.const nl 1 0 in
      let one1 = N.const nl 1 1 in
      let data = Array.make entries (fill_data) in
      let valid = Array.make entries (fill_valid) in
      for i = 0 to entries - 1 do
        let d = N.reg nl ~name:(Printf.sprintf "lb_%d" i) data_width in
        let fill_here =
          N.and_ nl fill_valid (N.eq nl fill_idx (N.const nl idx_w i))
        in
        (* The data word is only overwritten by a new fill; retire leaves it. *)
        N.reg_connect nl d ~d:fill_data ~en:fill_here ();
        data.(i) <- d;
        let v = N.reg nl ~name:(Printf.sprintf "mshr_valid_%d" i) 1 in
        let retire_here =
          N.and_ nl retire (N.eq nl retire_idx (N.const nl idx_w i))
        in
        let v_after_fill = N.mux nl fill_here v one1 in
        let v_next = N.mux nl retire_here v_after_fill zero1 in
        N.reg_connect nl v ~d:v_next ();
        valid.(i) <- v
      done;
      { lfb_nl = nl; fill_valid; fill_idx; fill_data; retire; retire_idx;
        data; valid })

type counter = { cnt_nl : N.t; cnt_en : N.signal; cnt_q : N.signal }

let counter ~width =
  let nl = N.create () in
  N.scoped nl "counter" (fun () ->
      let en = N.input nl ~name:"en" 1 in
      let q = N.reg nl ~name:"q" width in
      let next = N.add nl q (N.const nl width 1) in
      N.reg_connect nl q ~d:next ~en ();
      { cnt_nl = nl; cnt_en = en; cnt_q = q })
