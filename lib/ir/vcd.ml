module N = Netlist

type watched = {
  w_sig : N.signal;
  w_id : string;            (** VCD short identifier *)
  w_width : int;
  mutable w_last : int option;
}

type t = {
  out : Buffer.t;
  watched : watched list;
  mutable time : int;
}

(* VCD identifiers: printable characters from '!' onward. *)
let ident i =
  let chars = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod chars)) in
    let acc = String.make 1 c ^ acc in
    if i < chars then acc else go ((i / chars) - 1) acc
  in
  go i ""

let named_signals nl =
  let acc = ref [] in
  for i = N.num_signals nl - 1 downto 0 do
    let s = N.signal_of_int nl i in
    if N.name_of nl s <> "" then acc := s :: !acc
  done;
  !acc

let create ?signals ~out nl =
  let sigs = match signals with Some l -> l | None -> named_signals nl in
  let watched =
    List.mapi
      (fun i s ->
        { w_sig = s; w_id = ident i; w_width = N.width_of nl s; w_last = None })
      sigs
  in
  Buffer.add_string out "$date today $end\n";
  Buffer.add_string out "$version dvz_ir VCD writer $end\n";
  Buffer.add_string out "$timescale 1ns $end\n";
  (* Group by module tag. *)
  let by_module = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let m = N.module_of nl w.w_sig in
      let cur = try Hashtbl.find by_module m with Not_found -> [] in
      Hashtbl.replace by_module m (w :: cur))
    watched;
  let modules = List.sort_uniq compare (List.map (fun w -> N.module_of nl w.w_sig) watched) in
  List.iter
    (fun m ->
      let scope = if m = "" then "top" else m in
      Buffer.add_string out (Printf.sprintf "$scope module %s $end\n" scope);
      List.iter
        (fun w ->
          Buffer.add_string out
            (Printf.sprintf "$var wire %d %s %s $end\n" w.w_width w.w_id
               (N.name_of nl w.w_sig)))
        (List.rev (Hashtbl.find by_module m));
      Buffer.add_string out "$upscope $end\n")
    modules;
  Buffer.add_string out "$enddefinitions $end\n";
  { out; watched; time = 0 }

let bin_of_int width v =
  String.init width (fun i -> if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let sample t read =
  let changes =
    List.filter
      (fun w ->
        let v = read w.w_sig in
        match w.w_last with Some last when last = v -> false | _ -> true)
      t.watched
  in
  if changes <> [] || t.time = 0 then
    Buffer.add_string t.out (Printf.sprintf "#%d\n" t.time);
  List.iter
    (fun w ->
      let v = read w.w_sig in
      w.w_last <- Some v;
      if w.w_width = 1 then
        Buffer.add_string t.out (Printf.sprintf "%d%s\n" (v land 1) w.w_id)
      else
        Buffer.add_string t.out
          (Printf.sprintf "b%s %s\n" (bin_of_int w.w_width v) w.w_id))
    changes;
  t.time <- t.time + 1

let finish t = Buffer.add_string t.out (Printf.sprintf "#%d\n" t.time)

let dump_simulation ?engine ?opt nl ~cycles ~drive =
  let out = Buffer.create 1024 in
  (* The writer enumerates named signals of the *source* netlist; the
     passes preserve named cells, so an optimized simulation produces the
     same signal list and identical waveforms (regression-tested). *)
  let t = create ~out nl in
  let sim = Sim.create ?engine ?opt nl in
  for c = 0 to cycles - 1 do
    drive sim c;
    Sim.eval sim;
    sample t (Sim.peek sim);
    Sim.step sim
  done;
  finish t;
  Buffer.contents out
