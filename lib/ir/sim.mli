(** Cycle-accurate simulation of a {!Netlist}.

    Evaluation is two-phase, like an RTL simulator: {!eval} settles all
    combinational signals from the current register/memory/input state, and
    {!step} advances the clock (registers latch, memory writes commit).
    A typical cycle is: set inputs, [eval], observe outputs, [step].

    Two engines share these semantics bit-for-bit.  The default [`Compiled]
    engine lowers the netlist once, at {!create}, into flat int-array
    programs (an opcode stream with pre-resolved operand indices and
    per-cell masks, plus precomputed register-latch and memory-commit
    plans), so the steady-state cycle performs no variant dispatch, no
    hashtable lookups, and no allocation.  The [`Interp] engine walks the
    netlist cells directly; it is the executable specification the compiled
    engine is differentially tested against. *)

type t

type engine = [ `Interp | `Compiled ]
(** Evaluation strategy, fixed at {!create}.  Both engines are observably
    identical (values, memories, tick counts); [`Compiled] is the fast
    default, [`Interp] the reference interpreter. *)

val create : ?engine:engine -> ?opt:bool -> Netlist.t -> t
(** Builds a simulator; registers take their [init] values and memories are
    zero-filled.  [engine] defaults to [`Compiled].  Raises [Failure] if the
    netlist has a combinational cycle or an unconnected register, and
    {!Netlist.Width_error} if a mux selector, register enable or memory
    write enable is not 1 bit wide ({!Netlist.validate} runs first).

    [opt] (default [false]) first runs the {!Passes} optimization pipeline
    on a copy of the netlist and simulates the copy.  Signal handles stay
    valid (indices are preserved); named signals, inputs, registers and
    memories behave identically, but peeking an {e unnamed} combinational
    cell that was eliminated reads 0 — see {!Passes}. *)

val reset : t -> unit
(** Re-arms a built simulator without re-lowering the netlist: all signal
    values back to register-init/const state (inputs and combinational
    nets to 0), memories zero-filled, tick counter and {!on_cycle} hooks
    cleared.  Bit-identical to a fresh [create ~engine nl]. *)

val netlist : t -> Netlist.t

val engine : t -> engine
(** The engine this simulator was created with. *)

val set_input : t -> Netlist.signal -> int -> unit
(** [set_input t s v] drives primary input [s] with [v] (truncated to the
    signal width).  Raises [Invalid_argument] if [s] is not an input. *)

val eval : t -> unit
(** Settles all combinational signals. *)

val step : t -> unit
(** Clock edge: latch registers, commit memory writes.  Must follow {!eval}. *)

val cycle : t -> unit
(** [eval] then [step], then runs the {!on_cycle} hooks with the new
    cycle count. *)

val cycles : t -> int
(** Number of completed {!cycle} calls ({!eval}/{!step} called directly
    are not counted). *)

val on_cycle : t -> (int -> unit) -> unit
(** Registers a hook called after every completed {!cycle} with the
    cycle count (first call sees [1]).  Hooks run in registration order;
    a raising hook escapes out of {!cycle} — this is how fault-injection
    harnesses abort a simulation at a chosen cycle.  Registration is O(n)
    in the number of hooks (it rebuilds a flat array the hot loop iterates);
    {!cycle} itself never allocates. *)

val peek : t -> Netlist.signal -> int
(** Current value of a signal (valid after {!eval} for combinational ones). *)

val peek_mem : t -> Netlist.mem -> int -> int
(** [peek_mem t m i] reads memory word [i] directly. *)

val poke_mem : t -> Netlist.mem -> int -> int -> unit
(** [poke_mem t m i v] backdoor-writes memory word [i]. *)

val poke_reg : t -> Netlist.signal -> int -> unit
(** Backdoor-writes a register's current output value. *)

(** Lane-parallel compiled engine: K independent simulations of the same
    netlist advance in lockstep through one compiled program.

    Storage is structure-of-arrays — signal [s] of lane [l] lives at
    [s*k + l] — so each cell op performs one opcode dispatch and then a
    tight loop over K adjacent words.  This amortizes the per-cell dispatch
    and index arithmetic that dominates the scalar engine on small DUTs,
    which is what makes batched phase-1 stimulus evaluation cheap: one
    lane-parallel instance replaces K scalar instances.

    Lanes never interact: each has its own input values, register state and
    memory image, and is pinned bit-identical to a scalar {!Sim.t} driven
    with the same stimulus (values, memories, tick counts) by differential
    property tests.  The lane engine has no [`Interp] variant and no
    per-cycle hooks; it is a throughput device, not an observability one. *)
module Lanes : sig
  type t

  val create : ?opt:bool -> k:int -> Netlist.t -> t
  (** [create ~k nl] builds a [k]-lane simulator.  [opt] as in {!Sim.create}.
      Raises [Invalid_argument] if [k <= 0]; same netlist checks as
      {!Sim.create}. *)

  val k : t -> int
  val netlist : t -> Netlist.t

  val reset : t -> unit
  (** All lanes back to the post-[create] state. *)

  val set_input : t -> lane:int -> Netlist.signal -> int -> unit
  val set_input_all : t -> Netlist.signal -> int -> unit
  (** Drives one lane's input / the same value into every lane. *)

  val eval : t -> unit
  val step : t -> unit

  val cycle : t -> unit
  (** [eval] then [step] for all lanes; no hooks. *)

  val cycles : t -> int

  val peek : t -> lane:int -> Netlist.signal -> int
  val peek_mem : t -> lane:int -> Netlist.mem -> int -> int
  val poke_mem : t -> lane:int -> Netlist.mem -> int -> int -> unit
  val poke_reg : t -> lane:int -> Netlist.signal -> int -> unit
end
