(** Cycle-accurate simulation of a {!Netlist}.

    Evaluation is two-phase, like an RTL simulator: {!eval} settles all
    combinational signals from the current register/memory/input state, and
    {!step} advances the clock (registers latch, memory writes commit).
    A typical cycle is: set inputs, [eval], observe outputs, [step]. *)

type t

val create : Netlist.t -> t
(** Builds a simulator; registers take their [init] values and memories are
    zero-filled.  Raises [Failure] if the netlist has a combinational cycle
    or an unconnected register. *)

val netlist : t -> Netlist.t

val set_input : t -> Netlist.signal -> int -> unit
(** [set_input t s v] drives primary input [s] with [v] (truncated to the
    signal width).  Raises [Invalid_argument] if [s] is not an input. *)

val eval : t -> unit
(** Settles all combinational signals. *)

val step : t -> unit
(** Clock edge: latch registers, commit memory writes.  Must follow {!eval}. *)

val cycle : t -> unit
(** [eval] then [step], then runs the {!on_cycle} hooks with the new
    cycle count. *)

val cycles : t -> int
(** Number of completed {!cycle} calls ({!eval}/{!step} called directly
    are not counted). *)

val on_cycle : t -> (int -> unit) -> unit
(** Registers a hook called after every completed {!cycle} with the
    cycle count (first call sees [1]).  Hooks run in registration order;
    a raising hook escapes out of {!cycle} — this is how fault-injection
    harnesses abort a simulation at a chosen cycle. *)

val peek : t -> Netlist.signal -> int
(** Current value of a signal (valid after {!eval} for combinational ones). *)

val peek_mem : t -> Netlist.mem -> int -> int
(** [peek_mem t m i] reads memory word [i] directly. *)

val poke_mem : t -> Netlist.mem -> int -> int -> unit
(** [poke_mem t m i v] backdoor-writes memory word [i]. *)

val poke_reg : t -> Netlist.signal -> int -> unit
(** Backdoor-writes a register's current output value. *)
