(** Demo netlists used by tests, examples and micro-benchmarks.

    {!rob} reconstructs the BOOM Reorder-Buffer entry-update circuit of the
    paper's Figure 2, the canonical example of control-flow over-tainting:
    once the tail pointer is tainted, CellIFT's Policy 2 taints every entry
    field register on rollback, while diffIFT only propagates when the two
    DUT instances actually select differently. *)

type rob = {
  rob_nl : Netlist.t;
  enq_valid : Netlist.signal;   (** input: a micro-op is enqueued this cycle *)
  enq_uopc : Netlist.signal;    (** input: opcode of the enqueued micro-op *)
  rollback : Netlist.signal;    (** input: roll the tail pointer back *)
  rollback_idx : Netlist.signal;(** input: tail value restored on rollback *)
  tail : Netlist.signal;        (** register: current tail pointer *)
  uopc : Netlist.signal array;  (** registers: per-entry opcode fields *)
}

val rob : entries:int -> uopc_width:int -> rob
(** Builds the Figure 2 circuit with [entries] RoB entries.  The tail
    pointer increments on enqueue and is overwritten by [rollback_idx] when
    [rollback] is high, exactly the update network described in §2.2. *)

type lfb = {
  lfb_nl : Netlist.t;
  fill_valid : Netlist.signal;  (** input: a cache-line refill arrives *)
  fill_idx : Netlist.signal;    (** input: which buffer slot is filled *)
  fill_data : Netlist.signal;   (** input: refill data (potentially secret) *)
  retire : Netlist.signal;      (** input: MSHR releases the slot *)
  retire_idx : Netlist.signal;  (** input: which slot is released *)
  data : Netlist.signal array;  (** registers: per-slot line data *)
  valid : Netlist.signal array; (** registers: per-slot MSHR valid bits *)
}

val lfb : entries:int -> data_width:int -> lfb
(** Builds the Line-Fill-Buffer / MSHR circuit of §3.1 (C2-2): on retire the
    MSHR clears the valid bit but leaves the stale data word in place, the
    pattern that misleads value-matching and hash-based oracles. *)

type counter = {
  cnt_nl : Netlist.t;
  cnt_en : Netlist.signal;
  cnt_q : Netlist.signal;
}

val counter : width:int -> counter
(** A free-running counter with enable; smoke-test circuit. *)
