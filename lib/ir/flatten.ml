module N = Netlist

let cell_count nl = N.num_signals nl

let flatten_with_map old =
  let nu = N.create () in
  let n = N.num_signals old in
  (* Word registers for every memory. *)
  let words = Hashtbl.create 8 in
  N.scoped nu "flat" (fun () ->
      List.iter
        (fun m ->
          let arr =
            Array.init (N.mem_depth m) (fun i ->
                N.reg nu
                  ~name:(Printf.sprintf "%s_w%d" (N.mem_name m) i)
                  (N.mem_width m))
          in
          Hashtbl.replace words (N.mem_name m) arr)
        (N.mems old);
      let map = Array.make n None in
      let get i =
        match map.(i) with
        | Some s -> s
        | None -> failwith "Flatten: forward reference in combinational logic"
      in
      let tr (s : N.signal) = get (s :> int) in
      (* Pass 1: translate cells in creation order. *)
      for i = 0 to n - 1 do
        let s = N.signal_of_int old i in
        let w = N.width_of old s in
        let nu_sig =
          match N.cell_of old s with
          | N.Input -> N.input nu ~name:(N.name_of old s) w
          | N.Const v -> N.const nu w v
          | N.Reg r -> N.reg nu ~name:(N.name_of old s) ~init:r.N.init w
          | N.Not a -> N.not_ nu (tr a)
          | N.And (a, b) -> N.and_ nu (tr a) (tr b)
          | N.Or (a, b) -> N.or_ nu (tr a) (tr b)
          | N.Xor (a, b) -> N.xor_ nu (tr a) (tr b)
          | N.Mux (sel, a, b) -> N.mux nu (tr sel) (tr a) (tr b)
          | N.Eq (a, b) -> N.eq nu (tr a) (tr b)
          | N.Lt (a, b) -> N.lt nu (tr a) (tr b)
          | N.Add (a, b) -> N.add nu (tr a) (tr b)
          | N.Sub (a, b) -> N.sub nu (tr a) (tr b)
          | N.Shl (a, k) -> N.shl nu (tr a) k
          | N.Shr (a, k) -> N.shr nu (tr a) k
          | N.Slice (a, lo) -> N.slice nu (tr a) ~lo ~width:w
          | N.Concat (hi, lo) -> N.concat nu (tr hi) (tr lo)
          | N.Mem_read (m, addr) ->
              (* Linear word-select chain: the read multiplexer tree CellIFT
                 must materialise once the memory is flattened. *)
              let arr = Hashtbl.find words (N.mem_name m) in
              let a = tr addr in
              let aw = N.width_of old addr in
              let acc = ref arr.(0) in
              for k = 1 to Array.length arr - 1 do
                if k < 1 lsl aw then begin
                  let here = N.eq nu a (N.const nu aw k) in
                  acc := N.mux nu here !acc arr.(k)
                end
              done;
              !acc
        in
        map.(i) <- Some nu_sig
      done;
      (* Pass 2: close register feedback loops. *)
      for i = 0 to n - 1 do
        let s = N.signal_of_int old i in
        match N.cell_of old s with
        | N.Reg { N.d = Some d; en; _ } ->
            N.reg_connect nu (get i) ~d:(tr d)
              ?en:(Option.map tr en) ()
        | N.Reg { N.d = None; _ } ->
            failwith "Flatten: unconnected register"
        | _ -> ()
      done;
      (* Pass 3: per-word write decoders. *)
      List.iter
        (fun m ->
          let arr = Hashtbl.find words (N.mem_name m) in
          Array.iteri
            (fun k q ->
              let d = ref q in
              List.iter
                (fun (wen, addr, data) ->
                  let aw = N.width_of old addr in
                  if k < 1 lsl aw then begin
                    let here =
                      N.and_ nu (tr wen) (N.eq nu (tr addr) (N.const nu aw k))
                    in
                    d := N.mux nu here !d (tr data)
                  end)
                (N.mem_writes m);
              N.reg_connect nu q ~d:!d ())
            arr)
        (N.mems old);
      let translate (s : N.signal) =
        match map.((s :> int)) with
        | Some s' -> s'
        | None -> invalid_arg "Flatten: unknown signal"
      in
      (nu, translate))

let flatten old = fst (flatten_with_map old)
