(** Memory flattening.

    CellIFT instruments at the cell level and must flatten every memory
    into discrete registers with read multiplexer trees and write decoders
    (§6.3: "Since CellIFT instruments at the cell level, it requires
    flattening all memory, resulting in a significantly increased
    compilation time").  This pass reproduces that transformation — and its
    cost — on {!Netlist} designs; diffIFT instruments at the RTL IR level
    and skips it. *)

val flatten : Netlist.t -> Netlist.t
(** Returns an equivalent netlist in which every memory is expanded into
    per-word registers, one-hot write-enable decoders and word-select read
    multiplexer chains.  Signal handles of the original netlist are {e not}
    valid in the result; use {!flatten_with_map} to translate. *)

val flatten_with_map :
  Netlist.t -> Netlist.t * (Netlist.signal -> Netlist.signal)
(** Like {!flatten} but also returns the old-signal → new-signal mapping
    for inputs, registers and all combinational outputs. *)

val cell_count : Netlist.t -> int
(** Number of cells — the size metric flattening inflates. *)
