module N = Netlist

type engine = [ `Interp | `Compiled ]

(* --- compiled evaluation program -----------------------------------------

   The interpretive walker re-dispatched on [Netlist.cell_of], re-looked-up
   widths, and hit a memory Hashtbl on every cell of every cycle.  The
   compiled engine lowers the topo order once, at [create], into parallel
   int arrays: an opcode stream with pre-resolved operand indices and a
   precomputed result mask per cell.  The steady-state cycle then touches
   only int arrays — no variant dispatch, no width lookups, no allocation.

   Opcode encoding (kept in sync with [exec_prog]'s match):
     0 Not    a                      7 Lt     a b
     1 And    a b                    8 Shl    a, b = shift amount
     2 Or     a b                    9 Shr    a, b = shift amount (and Slice)
     3 Xor    a b                   10 Concat a = hi, c = lo, b = lo width
     4 Add    a b                   11 Mux    a = sel, b = sel=0 arm, c = other
     5 Sub    a b                   12 Mem_read a = addr, arr = backing store
     6 Eq     a b *)

type prog = {
  p_op : int array;
  p_dst : int array;
  p_a : int array;
  p_b : int array;
  p_c : int array;
  p_mask : int array;
  p_arr : int array array;  (* Mem_read backing store; shared [||] elsewhere *)
}

(* Register-latch plan: parallel arrays of q/d/en indices resolved once.
   [l_next] stages the new values so register-to-register feedback (e.g. a
   swap) latches atomically, exactly like the interpretive two-phase step.

   Staging is only needed for registers whose D or enable is itself another
   register's Q: combinational values never change during [step], so a
   register fed purely by combinational signals can be written in place.
   [compile_latch] orders such "direct" registers first and records the
   split point in [l_direct]; the executors stage only the [l_direct ..]
   tail (reading old Q values before anything is overwritten), then write
   the direct prefix in place, then write the staged tail back. *)
type latch_plan = {
  l_q : int array;
  l_d : int array;
  l_en : int array;   (* enable signal index, or -1 for always-enabled *)
  l_direct : int;     (* first l_direct entries have no reg-to-reg feedback *)
  l_next : int array;
}

(* Memory-commit plan: one entry per write port, in declaration order
   (later-declared ports win on address conflicts, as before), with the
   backing [int array] resolved once instead of a Hashtbl find per cycle. *)
type commit_plan = {
  c_wen : int array;
  c_addr : int array;
  c_data : int array;
  c_mask : int array;
  c_arr : int array array;
}

type t = {
  nl : N.t;
  engine : engine;
  values : int array;
  mem_data : (string, int array) Hashtbl.t;
  order : N.signal array;
  prog : prog;
  latch : latch_plan;
  commit : commit_plan;
  mutable ticks : int;
  mutable hooks_rev : (int -> unit) list;
  mutable hook_arr : (int -> unit) array;
}

let mem_key m = N.mem_name m

let no_arr : int array = [||]

let compile_prog nl (order : N.signal array) mem_arr =
  let n = Array.length order in
  let p =
    { p_op = Array.make n 0;
      p_dst = Array.make n 0;
      p_a = Array.make n 0;
      p_b = Array.make n 0;
      p_c = Array.make n 0;
      p_mask = Array.make n 0;
      p_arr = Array.make n no_arr }
  in
  Array.iteri
    (fun i (s : N.signal) ->
      let set op a b c =
        p.p_op.(i) <- op;
        p.p_a.(i) <- a;
        p.p_b.(i) <- b;
        p.p_c.(i) <- c
      in
      p.p_dst.(i) <- (s :> int);
      p.p_mask.(i) <- Bits.mask (N.width_of nl s);
      match N.cell_of nl s with
      | N.Input | N.Const _ | N.Reg _ ->
          (* never in the combinational topo order *)
          assert false
      | N.Not a -> set 0 (a :> int) 0 0
      | N.And (a, b) -> set 1 (a :> int) (b :> int) 0
      | N.Or (a, b) -> set 2 (a :> int) (b :> int) 0
      | N.Xor (a, b) -> set 3 (a :> int) (b :> int) 0
      | N.Add (a, b) -> set 4 (a :> int) (b :> int) 0
      | N.Sub (a, b) -> set 5 (a :> int) (b :> int) 0
      | N.Eq (a, b) -> set 6 (a :> int) (b :> int) 0
      | N.Lt (a, b) -> set 7 (a :> int) (b :> int) 0
      | N.Shl (a, k) -> set 8 (a :> int) k 0
      | N.Shr (a, k) | N.Slice (a, k) -> set 9 (a :> int) k 0
      | N.Concat (hi, lo) ->
          set 10 (hi :> int) (N.width_of nl lo) (lo :> int)
      | N.Mux (sel, a, b) -> set 11 (sel :> int) (a :> int) (b :> int)
      | N.Mem_read (m, addr) ->
          set 12 (addr :> int) 0 0;
          p.p_arr.(i) <- mem_arr m)
    order;
  p

let compile_latch nl =
  let regs =
    List.filter_map
      (fun q ->
        match N.cell_of nl q with
        | N.Reg { N.d = Some d; en; _ } ->
            Some
              ( (q :> int),
                (d :> int),
                match en with None -> -1 | Some e -> (e :> int) )
        | _ -> None)
      (N.registers nl)
  in
  let is_reg i =
    match N.cell_of nl (N.signal_of_int nl i) with
    | N.Reg _ -> true
    | _ -> false
  in
  let direct, staged =
    List.partition
      (fun (_, d, en) -> not (is_reg d || (en >= 0 && is_reg en)))
      regs
  in
  let regs = direct @ staged in
  let n = List.length regs in
  let l =
    { l_q = Array.make n 0;
      l_d = Array.make n 0;
      l_en = Array.make n (-1);
      l_direct = List.length direct;
      l_next = Array.make n 0 }
  in
  List.iteri
    (fun i (q, d, en) ->
      l.l_q.(i) <- q;
      l.l_d.(i) <- d;
      l.l_en.(i) <- en)
    regs;
  l

let compile_commit nl mem_arr =
  let ports =
    List.concat_map
      (fun m ->
        List.map
          (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
            ((wen :> int), (addr :> int), (data :> int),
             Bits.mask (N.mem_width m), mem_arr m))
          (N.mem_writes m))
      (N.mems nl)
  in
  let n = List.length ports in
  let c =
    { c_wen = Array.make n 0;
      c_addr = Array.make n 0;
      c_data = Array.make n 0;
      c_mask = Array.make n 0;
      c_arr = Array.make n no_arr }
  in
  List.iteri
    (fun i (wen, addr, data, mask, arr) ->
      c.c_wen.(i) <- wen;
      c.c_addr.(i) <- addr;
      c.c_data.(i) <- data;
      c.c_mask.(i) <- mask;
      c.c_arr.(i) <- arr)
    ports;
  c

let check_registers nl =
  List.iter
    (fun q ->
      match N.cell_of nl q with
      | N.Reg { d = None; _ } ->
          failwith ("Sim.create: unconnected register " ^ N.name_of nl q)
      | _ -> ())
    (N.registers nl)

let create ?(engine : engine = `Compiled) ?(opt = false) nl =
  let nl = if opt && Passes.enabled () then Passes.optimize nl else nl in
  N.validate nl;
  let order = N.topo_order nl in
  check_registers nl;
  let values = Array.make (N.num_signals nl) 0 in
  (* Registers start at their init value; constants are fixed. *)
  for i = 0 to N.num_signals nl - 1 do
    let s = N.signal_of_int nl i in
    match N.cell_of nl s with
    | N.Reg r -> values.(i) <- r.N.init
    | N.Const v -> values.(i) <- v
    | _ -> ()
  done;
  let mem_data = Hashtbl.create 8 in
  List.iter
    (fun m -> Hashtbl.replace mem_data (mem_key m) (Array.make (N.mem_depth m) 0))
    (N.mems nl);
  let mem_arr m = Hashtbl.find mem_data (mem_key m) in
  { nl; engine; values; mem_data; order;
    prog = compile_prog nl order mem_arr;
    latch = compile_latch nl;
    commit = compile_commit nl mem_arr;
    ticks = 0; hooks_rev = []; hook_arr = [||] }

(* Re-arm a built simulator without re-validating, re-ordering or
   re-lowering the netlist: values back to register-init/const state,
   memories zeroed, tick counter and hooks cleared.  Bit-identical to a
   fresh [create ~engine nl] (the compiled program, latch and commit plans
   are pure functions of the netlist and stay valid). *)
let reset t =
  for i = 0 to N.num_signals t.nl - 1 do
    let s = N.signal_of_int t.nl i in
    match N.cell_of t.nl s with
    | N.Reg r -> t.values.(i) <- r.N.init
    | N.Const v -> t.values.(i) <- v
    | _ -> t.values.(i) <- 0
  done;
  Hashtbl.iter (fun _ arr -> Array.fill arr 0 (Array.length arr) 0) t.mem_data;
  t.ticks <- 0;
  t.hooks_rev <- [];
  t.hook_arr <- [||]

let netlist t = t.nl
let engine t = t.engine

(* A coarse classification used only to make misuse errors self-explaining. *)
let cell_kind = function
  | N.Input -> "an input"
  | N.Const _ -> "a constant"
  | N.Reg _ -> "a register"
  | N.Mem_read _ -> "a memory read port"
  | _ -> "a combinational cell"

let set_input t s v =
  match N.cell_of t.nl s with
  | N.Input -> t.values.((s :> int)) <- Bits.trunc (N.width_of t.nl s) v
  | c ->
      invalid_arg
        (Printf.sprintf "Sim.set_input: signal %s is not an input (it is %s)"
           (N.name_of t.nl s) (cell_kind c))

let peek t (s : N.signal) = t.values.((s :> int))

let mem_array t m = Hashtbl.find t.mem_data (mem_key m)

let peek_mem t m i = (mem_array t m).(i)
let poke_mem t m i v = (mem_array t m).(i) <- Bits.trunc (N.mem_width m) v

let poke_reg t s v =
  match N.cell_of t.nl s with
  | N.Reg _ -> t.values.((s :> int)) <- Bits.trunc (N.width_of t.nl s) v
  | c ->
      invalid_arg
        (Printf.sprintf "Sim.poke_reg: signal %s is not a register (it is %s)"
           (N.name_of t.nl s) (cell_kind c))

(* --- interpretive engine (reference semantics) ------------------------- *)

let eval_cell t s =
  let v = t.values in
  let w = N.width_of t.nl s in
  let r =
    match N.cell_of t.nl s with
    | N.Input | N.Const _ | N.Reg _ -> v.((s :> int))
    | N.Not a -> lnot v.((a :> int))
    | N.And (a, b) -> v.((a :> int)) land v.((b :> int))
    | N.Or (a, b) -> v.((a :> int)) lor v.((b :> int))
    | N.Xor (a, b) -> v.((a :> int)) lxor v.((b :> int))
    | N.Mux (s', a, b) ->
        (* Selector truthiness is [<> 0], not [= 1]: a (rejected) multi-bit
           selector holding 2 must not silently pick the sel=0 arm. *)
        if v.((s' :> int)) <> 0 then v.((b :> int)) else v.((a :> int))
    | N.Eq (a, b) -> if v.((a :> int)) = v.((b :> int)) then 1 else 0
    | N.Lt (a, b) -> if v.((a :> int)) < v.((b :> int)) then 1 else 0
    | N.Add (a, b) -> v.((a :> int)) + v.((b :> int))
    | N.Sub (a, b) -> v.((a :> int)) - v.((b :> int))
    | N.Shl (a, n) -> v.((a :> int)) lsl n
    | N.Shr (a, n) -> v.((a :> int)) lsr n
    | N.Slice (a, lo) -> v.((a :> int)) lsr lo
    | N.Concat (hi, lo) ->
        let wlo = N.width_of t.nl lo in
        (v.((hi :> int)) lsl wlo) lor v.((lo :> int))
    | N.Mem_read (m, addr) ->
        let arr = mem_array t m in
        let a = v.((addr :> int)) in
        if a < Array.length arr then arr.(a) else 0
  in
  v.((s :> int)) <- Bits.trunc w r

let eval_interp t = Array.iter (fun s -> eval_cell t s) t.order

let step_interp t =
  (* Latch all registers from their (already evaluated) D inputs. *)
  let next =
    List.filter_map
      (fun q ->
        match N.cell_of t.nl q with
        | N.Reg { d = Some d; en; _ } ->
            let enabled =
              match en with None -> true | Some e -> t.values.((e :> int)) <> 0
            in
            if enabled then Some (q, t.values.((d :> int))) else None
        | _ -> None)
      (N.registers t.nl)
  in
  List.iter (fun ((q : N.signal), v) -> t.values.((q :> int)) <- v) next;
  (* Commit memory writes; later-declared ports win on address conflicts. *)
  List.iter
    (fun m ->
      let arr = mem_array t m in
      List.iter
        (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
          if t.values.((wen :> int)) <> 0 then begin
            let a = t.values.((addr :> int)) in
            if a < Array.length arr then
              arr.(a) <- Bits.trunc (N.mem_width m) t.values.((data :> int))
          end)
        (N.mem_writes m))
    (N.mems t.nl)

(* --- compiled engine ---------------------------------------------------- *)

let exec_prog p v =
  let n = Array.length p.p_op in
  for i = 0 to n - 1 do
    let a = Array.unsafe_get p.p_a i in
    let b = Array.unsafe_get p.p_b i in
    let r =
      match Array.unsafe_get p.p_op i with
      | 0 -> lnot (Array.unsafe_get v a)
      | 1 -> Array.unsafe_get v a land Array.unsafe_get v b
      | 2 -> Array.unsafe_get v a lor Array.unsafe_get v b
      | 3 -> Array.unsafe_get v a lxor Array.unsafe_get v b
      | 4 -> Array.unsafe_get v a + Array.unsafe_get v b
      | 5 -> Array.unsafe_get v a - Array.unsafe_get v b
      | 6 -> if Array.unsafe_get v a = Array.unsafe_get v b then 1 else 0
      | 7 -> if Array.unsafe_get v a < Array.unsafe_get v b then 1 else 0
      | 8 -> Array.unsafe_get v a lsl b
      | 9 -> Array.unsafe_get v a lsr b
      | 10 ->
          (Array.unsafe_get v a lsl b)
          lor Array.unsafe_get v (Array.unsafe_get p.p_c i)
      | 11 ->
          if Array.unsafe_get v a <> 0 then
            Array.unsafe_get v (Array.unsafe_get p.p_c i)
          else Array.unsafe_get v b
      | _ ->
          let arr = Array.unsafe_get p.p_arr i in
          let ad = Array.unsafe_get v a in
          if ad < Array.length arr then Array.unsafe_get arr ad else 0
    in
    Array.unsafe_set v
      (Array.unsafe_get p.p_dst i)
      (r land Array.unsafe_get p.p_mask i)
  done

let step_compiled t =
  let v = t.values in
  let l = t.latch in
  let n = Array.length l.l_q in
  (* stage the reg-to-reg tail first, while every Q is still old *)
  for i = l.l_direct to n - 1 do
    let en = Array.unsafe_get l.l_en i in
    let src =
      if en < 0 || Array.unsafe_get v en <> 0 then Array.unsafe_get l.l_d i
      else Array.unsafe_get l.l_q i
    in
    Array.unsafe_set l.l_next i (Array.unsafe_get v src)
  done;
  (* direct registers read only combinational signals: write in place *)
  for i = 0 to l.l_direct - 1 do
    let en = Array.unsafe_get l.l_en i in
    if en < 0 || Array.unsafe_get v en <> 0 then
      Array.unsafe_set v
        (Array.unsafe_get l.l_q i)
        (Array.unsafe_get v (Array.unsafe_get l.l_d i))
  done;
  for i = l.l_direct to n - 1 do
    Array.unsafe_set v (Array.unsafe_get l.l_q i) (Array.unsafe_get l.l_next i)
  done;
  let c = t.commit in
  let m = Array.length c.c_wen in
  for i = 0 to m - 1 do
    if Array.unsafe_get v (Array.unsafe_get c.c_wen i) <> 0 then begin
      let arr = Array.unsafe_get c.c_arr i in
      let a = Array.unsafe_get v (Array.unsafe_get c.c_addr i) in
      if a < Array.length arr then
        Array.unsafe_set arr a
          (Array.unsafe_get v (Array.unsafe_get c.c_data i)
          land Array.unsafe_get c.c_mask i)
    end
  done

let eval_impl t =
  match t.engine with
  | `Compiled -> exec_prog t.prog t.values
  | `Interp -> eval_interp t

(* Armed-guarded: the disarmed compiled cycle must stay allocation-free
   (Gc.minor_words gate in test_ir), so the closure only exists on the
   armed branch. *)
let eval t =
  if Dvz_obs.Profile.armed () then
    Dvz_obs.Profile.wrap "sim/eval" (fun () -> eval_impl t)
  else eval_impl t

let step t =
  match t.engine with `Compiled -> step_compiled t | `Interp -> step_interp t

let cycle t =
  eval t;
  step t;
  t.ticks <- t.ticks + 1;
  let hooks = t.hook_arr in
  for i = 0 to Array.length hooks - 1 do
    (Array.unsafe_get hooks i) t.ticks
  done

let cycles t = t.ticks

let on_cycle t h =
  (* Hooks are stored newest-first and mirrored into an array once per
     registration, so [cycle] iterates a flat array in registration order
     instead of rebuilding a list (the old [hooks @ [h]] append was
     quadratic in hook count and allocated on every registration). *)
  t.hooks_rev <- h :: t.hooks_rev;
  t.hook_arr <- Array.of_list (List.rev t.hooks_rev)

(* --- lane-parallel compiled engine -------------------------------------

   Stage 2 of the lowering refactor: the same compiled program, but every
   storage array holds K independent simulations in structure-of-arrays
   layout — signal [s] of lane [l] lives at [s*k + l], memory word [i] of
   lane [l] at [i*k + l].  Signal-index operands are pre-multiplied by K at
   lowering time, so the executor pays one opcode dispatch per cell and
   then runs a tight K-iteration loop over adjacent words: amortized
   dispatch, sequential access, no allocation.

   The scalar engine remains the executable specification; [Lanes] is
   pinned bit-identical to it per lane (values, memories, tick counts) by
   the differential properties in test_ir.ml. *)

module Lanes = struct
  type lanes = {
    nl : N.t;
    k : int;
    values : int array;  (* num_signals * k *)
    mem_data : (string, int array) Hashtbl.t;  (* depth * k each *)
    prog : prog;         (* dst/a/c (and signal b's) pre-multiplied by k;
                            for Mem_read, p_b holds the memory depth *)
    latch : latch_plan;  (* q/d/en pre-multiplied; l_next is nregs * k *)
    commit : commit_plan;
    mutable ticks : int;
  }

  type t = lanes

  let lower nl k mem_arr order =
    let p = compile_prog nl order mem_arr in
    (* Constant-operand specialization: one-hot decoders ([tail == i]) and
       mask gates ([x & 0b1111]) compare/and every lane against the same
       literal, so the lane loop needs one load, not two.  Opcodes 13/14
       are lane-engine-only: [p_b] holds the constant's value, not a
       signal index.  (Commutative, so a constant on either side moves to
       the immediate slot.) *)
    let const_val s =
      match N.cell_of nl s with N.Const v -> Some v | _ -> None
    in
    Array.iteri
      (fun i s ->
        let imm op x y =
          match const_val y with
          | Some cv ->
              p.p_op.(i) <- op;
              p.p_a.(i) <- ((x : N.signal) :> int);
              p.p_b.(i) <- cv
          | None -> (
              match const_val x with
              | Some cv ->
                  p.p_op.(i) <- op;
                  p.p_a.(i) <- ((y : N.signal) :> int);
                  p.p_b.(i) <- cv
              | None -> ())
        in
        match N.cell_of nl s with
        | N.Eq (x, y) -> imm 13 x y
        | N.And (x, y) -> imm 14 x y
        | _ -> ())
      order;
    for i = 0 to Array.length p.p_op - 1 do
      p.p_dst.(i) <- p.p_dst.(i) * k;
      p.p_a.(i) <- p.p_a.(i) * k;
      p.p_c.(i) <- p.p_c.(i) * k;
      (match p.p_op.(i) with
      | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 11 -> p.p_b.(i) <- p.p_b.(i) * k
      | 12 -> p.p_b.(i) <- Array.length p.p_arr.(i) / k
      | _ -> ())
    done;
    let l = compile_latch nl in
    let nregs = Array.length l.l_q in
    for i = 0 to nregs - 1 do
      l.l_q.(i) <- l.l_q.(i) * k;
      l.l_d.(i) <- l.l_d.(i) * k;
      if l.l_en.(i) >= 0 then l.l_en.(i) <- l.l_en.(i) * k
    done;
    let l = { l with l_next = Array.make (nregs * k) 0 } in
    let c = compile_commit nl mem_arr in
    for i = 0 to Array.length c.c_wen - 1 do
      c.c_wen.(i) <- c.c_wen.(i) * k;
      c.c_addr.(i) <- c.c_addr.(i) * k;
      c.c_data.(i) <- c.c_data.(i) * k
    done;
    (p, l, c)

  let init_values t =
    Array.fill t.values 0 (Array.length t.values) 0;
    for i = 0 to N.num_signals t.nl - 1 do
      let s = N.signal_of_int t.nl i in
      match N.cell_of t.nl s with
      | N.Reg r -> Array.fill t.values (i * t.k) t.k r.N.init
      | N.Const v -> Array.fill t.values (i * t.k) t.k v
      | _ -> ()
    done

  let create ?(opt = false) ~k nl =
    if k <= 0 then invalid_arg "Sim.Lanes.create: k must be positive";
    let nl = if opt && Passes.enabled () then Passes.optimize nl else nl in
    N.validate nl;
    let order = N.topo_order nl in
    check_registers nl;
    let mem_data = Hashtbl.create 8 in
    List.iter
      (fun m ->
        Hashtbl.replace mem_data (mem_key m) (Array.make (N.mem_depth m * k) 0))
      (N.mems nl);
    let mem_arr m = Hashtbl.find mem_data (mem_key m) in
    let prog, latch, commit = lower nl k mem_arr order in
    let t =
      { nl; k; values = Array.make (N.num_signals nl * k) 0; mem_data;
        prog; latch; commit; ticks = 0 }
    in
    init_values t;
    t

  let reset t =
    init_values t;
    Hashtbl.iter (fun _ a -> Array.fill a 0 (Array.length a) 0) t.mem_data;
    t.ticks <- 0

  let k t = t.k
  let netlist t = t.nl

  let check_lane t lane =
    if lane < 0 || lane >= t.k then invalid_arg "Sim.Lanes: lane out of range"

  let set_input t ~lane s v =
    check_lane t lane;
    match N.cell_of t.nl s with
    | N.Input ->
        t.values.((((s : N.signal) :> int) * t.k) + lane) <-
          Bits.trunc (N.width_of t.nl s) v
    | c ->
        invalid_arg
          (Printf.sprintf
             "Sim.Lanes.set_input: signal %s is not an input (it is %s)"
             (N.name_of t.nl s) (cell_kind c))

  let set_input_all t s v =
    match N.cell_of t.nl s with
    | N.Input ->
        Array.fill t.values (((s : N.signal) :> int) * t.k) t.k
          (Bits.trunc (N.width_of t.nl s) v)
    | c ->
        invalid_arg
          (Printf.sprintf
             "Sim.Lanes.set_input_all: signal %s is not an input (it is %s)"
             (N.name_of t.nl s) (cell_kind c))

  let peek t ~lane (s : N.signal) =
    check_lane t lane;
    t.values.(((s :> int) * t.k) + lane)

  let mem_array t m = Hashtbl.find t.mem_data (mem_key m)

  let peek_mem t ~lane m i =
    check_lane t lane;
    (mem_array t m).((i * t.k) + lane)

  let poke_mem t ~lane m i v =
    check_lane t lane;
    (mem_array t m).((i * t.k) + lane) <- Bits.trunc (N.mem_width m) v

  let poke_reg t ~lane s v =
    check_lane t lane;
    match N.cell_of t.nl s with
    | N.Reg _ ->
        t.values.((((s : N.signal) :> int) * t.k) + lane) <-
          Bits.trunc (N.width_of t.nl s) v
    | c ->
        invalid_arg
          (Printf.sprintf
             "Sim.Lanes.poke_reg: signal %s is not a register (it is %s)"
             (N.name_of t.nl s) (cell_kind c))

  (* One opcode dispatch per cell, then a tight lane loop over adjacent
     words.  Mirrors [exec_prog] exactly — any change there must land here
     too (the differential property in test_ir.ml enforces this).

     The binary/compare/mux lane loops are unrolled four-wide (a chunk
     loop over [k/4] plus a scalar tail): the per-lane work is two L1
     loads, one op and one store, so the loop increment/compare/branch
     is a large fraction of the iteration and amortizing it is where the
     remaining lane speedup lives.  Chunked [for] loops keep the whole
     executor allocation-free (no refs), which the Gc.minor_words gate in
     test_ir.ml checks. *)
  let eval_impl t =
    let p = t.prog and v = t.values and k = t.k in
    let chunks = k lsr 2 in
    let tail = chunks lsl 2 in
    let n = Array.length p.p_op in
    for i = 0 to n - 1 do
      let dst = Array.unsafe_get p.p_dst i in
      let a = Array.unsafe_get p.p_a i in
      let b = Array.unsafe_get p.p_b i in
      let mask = Array.unsafe_get p.p_mask i in
      match Array.unsafe_get p.p_op i with
      | 0 ->
          for l = 0 to k - 1 do
            Array.unsafe_set v (dst + l)
              (lnot (Array.unsafe_get v (a + l)) land mask)
          done
      | 1 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              (Array.unsafe_get v (a + l) land Array.unsafe_get v (b + l)
              land mask);
            Array.unsafe_set v (dst + l + 1)
              (Array.unsafe_get v (a + l + 1)
              land Array.unsafe_get v (b + l + 1)
              land mask);
            Array.unsafe_set v (dst + l + 2)
              (Array.unsafe_get v (a + l + 2)
              land Array.unsafe_get v (b + l + 2)
              land mask);
            Array.unsafe_set v (dst + l + 3)
              (Array.unsafe_get v (a + l + 3)
              land Array.unsafe_get v (b + l + 3)
              land mask)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              (Array.unsafe_get v (a + l) land Array.unsafe_get v (b + l)
              land mask)
          done
      | 2 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) lor Array.unsafe_get v (b + l))
              land mask);
            Array.unsafe_set v (dst + l + 1)
              ((Array.unsafe_get v (a + l + 1)
               lor Array.unsafe_get v (b + l + 1))
              land mask);
            Array.unsafe_set v (dst + l + 2)
              ((Array.unsafe_get v (a + l + 2)
               lor Array.unsafe_get v (b + l + 2))
              land mask);
            Array.unsafe_set v (dst + l + 3)
              ((Array.unsafe_get v (a + l + 3)
               lor Array.unsafe_get v (b + l + 3))
              land mask)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) lor Array.unsafe_get v (b + l))
              land mask)
          done
      | 3 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) lxor Array.unsafe_get v (b + l))
              land mask);
            Array.unsafe_set v (dst + l + 1)
              ((Array.unsafe_get v (a + l + 1)
               lxor Array.unsafe_get v (b + l + 1))
              land mask);
            Array.unsafe_set v (dst + l + 2)
              ((Array.unsafe_get v (a + l + 2)
               lxor Array.unsafe_get v (b + l + 2))
              land mask);
            Array.unsafe_set v (dst + l + 3)
              ((Array.unsafe_get v (a + l + 3)
               lxor Array.unsafe_get v (b + l + 3))
              land mask)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) lxor Array.unsafe_get v (b + l))
              land mask)
          done
      | 4 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) + Array.unsafe_get v (b + l))
              land mask);
            Array.unsafe_set v (dst + l + 1)
              ((Array.unsafe_get v (a + l + 1)
               + Array.unsafe_get v (b + l + 1))
              land mask);
            Array.unsafe_set v (dst + l + 2)
              ((Array.unsafe_get v (a + l + 2)
               + Array.unsafe_get v (b + l + 2))
              land mask);
            Array.unsafe_set v (dst + l + 3)
              ((Array.unsafe_get v (a + l + 3)
               + Array.unsafe_get v (b + l + 3))
              land mask)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) + Array.unsafe_get v (b + l))
              land mask)
          done
      | 5 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) - Array.unsafe_get v (b + l))
              land mask);
            Array.unsafe_set v (dst + l + 1)
              ((Array.unsafe_get v (a + l + 1)
               - Array.unsafe_get v (b + l + 1))
              land mask);
            Array.unsafe_set v (dst + l + 2)
              ((Array.unsafe_get v (a + l + 2)
               - Array.unsafe_get v (b + l + 2))
              land mask);
            Array.unsafe_set v (dst + l + 3)
              ((Array.unsafe_get v (a + l + 3)
               - Array.unsafe_get v (b + l + 3))
              land mask)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) - Array.unsafe_get v (b + l))
              land mask)
          done
      | 6 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) = Array.unsafe_get v (b + l)
               then 1 else 0);
            Array.unsafe_set v (dst + l + 1)
              (if
                 Array.unsafe_get v (a + l + 1)
                 = Array.unsafe_get v (b + l + 1)
               then 1 else 0);
            Array.unsafe_set v (dst + l + 2)
              (if
                 Array.unsafe_get v (a + l + 2)
                 = Array.unsafe_get v (b + l + 2)
               then 1 else 0);
            Array.unsafe_set v (dst + l + 3)
              (if
                 Array.unsafe_get v (a + l + 3)
                 = Array.unsafe_get v (b + l + 3)
               then 1 else 0)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) = Array.unsafe_get v (b + l)
               then 1 else 0)
          done
      | 7 ->
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) < Array.unsafe_get v (b + l)
               then 1 else 0);
            Array.unsafe_set v (dst + l + 1)
              (if
                 Array.unsafe_get v (a + l + 1)
                 < Array.unsafe_get v (b + l + 1)
               then 1 else 0);
            Array.unsafe_set v (dst + l + 2)
              (if
                 Array.unsafe_get v (a + l + 2)
                 < Array.unsafe_get v (b + l + 2)
               then 1 else 0);
            Array.unsafe_set v (dst + l + 3)
              (if
                 Array.unsafe_get v (a + l + 3)
                 < Array.unsafe_get v (b + l + 3)
               then 1 else 0)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) < Array.unsafe_get v (b + l)
               then 1 else 0)
          done
      | 8 ->
          for l = 0 to k - 1 do
            Array.unsafe_set v (dst + l)
              (Array.unsafe_get v (a + l) lsl b land mask)
          done
      | 9 ->
          for l = 0 to k - 1 do
            Array.unsafe_set v (dst + l)
              (Array.unsafe_get v (a + l) lsr b land mask)
          done
      | 10 ->
          let c = Array.unsafe_get p.p_c i in
          for l = 0 to k - 1 do
            Array.unsafe_set v (dst + l)
              ((Array.unsafe_get v (a + l) lsl b
               lor Array.unsafe_get v (c + l))
              land mask)
          done
      | 11 ->
          let c = Array.unsafe_get p.p_c i in
          for l = 0 to k - 1 do
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) <> 0 then
                 Array.unsafe_get v (c + l)
               else Array.unsafe_get v (b + l))
          done
      | 13 ->
          (* Eq against an immediate: [b] is the constant's value *)
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) = b then 1 else 0);
            Array.unsafe_set v (dst + l + 1)
              (if Array.unsafe_get v (a + l + 1) = b then 1 else 0);
            Array.unsafe_set v (dst + l + 2)
              (if Array.unsafe_get v (a + l + 2) = b then 1 else 0);
            Array.unsafe_set v (dst + l + 3)
              (if Array.unsafe_get v (a + l + 3) = b then 1 else 0)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l)
              (if Array.unsafe_get v (a + l) = b then 1 else 0)
          done
      | 14 ->
          (* And with an immediate: fold the width mask into it *)
          let b = b land mask in
          for c = 0 to chunks - 1 do
            let l = c lsl 2 in
            Array.unsafe_set v (dst + l) (Array.unsafe_get v (a + l) land b);
            Array.unsafe_set v (dst + l + 1)
              (Array.unsafe_get v (a + l + 1) land b);
            Array.unsafe_set v (dst + l + 2)
              (Array.unsafe_get v (a + l + 2) land b);
            Array.unsafe_set v (dst + l + 3)
              (Array.unsafe_get v (a + l + 3) land b)
          done;
          for l = tail to k - 1 do
            Array.unsafe_set v (dst + l) (Array.unsafe_get v (a + l) land b)
          done
      | _ ->
          let arr = Array.unsafe_get p.p_arr i in
          for l = 0 to k - 1 do
            let ad = Array.unsafe_get v (a + l) in
            Array.unsafe_set v (dst + l)
              (if ad < b then Array.unsafe_get arr ((ad * k) + l) else 0)
          done
    done

  let eval t =
    if Dvz_obs.Profile.armed () then
      Dvz_obs.Profile.wrap "sim/eval-lanes" (fun () -> eval_impl t)
    else eval_impl t

  let step t =
    let v = t.values and l = t.latch and k = t.k in
    let n = Array.length l.l_q in
    (* stage the reg-to-reg tail first, while every Q is still old *)
    for i = l.l_direct to n - 1 do
      let q = Array.unsafe_get l.l_q i in
      let d = Array.unsafe_get l.l_d i in
      let en = Array.unsafe_get l.l_en i in
      let base = i * k in
      for lane = 0 to k - 1 do
        let src =
          if en < 0 || Array.unsafe_get v (en + lane) <> 0 then d + lane
          else q + lane
        in
        Array.unsafe_set l.l_next (base + lane) (Array.unsafe_get v src)
      done
    done;
    (* direct registers read only combinational signals: write in place,
       with the always-enabled case a straight K-word block copy *)
    let chunks = k lsr 2 in
    let tail = chunks lsl 2 in
    for i = 0 to l.l_direct - 1 do
      let q = Array.unsafe_get l.l_q i in
      let d = Array.unsafe_get l.l_d i in
      let en = Array.unsafe_get l.l_en i in
      if en < 0 then Array.blit v d v q k
      else begin
        for c = 0 to chunks - 1 do
          let lane = c lsl 2 in
          if Array.unsafe_get v (en + lane) <> 0 then
            Array.unsafe_set v (q + lane) (Array.unsafe_get v (d + lane));
          if Array.unsafe_get v (en + lane + 1) <> 0 then
            Array.unsafe_set v (q + lane + 1)
              (Array.unsafe_get v (d + lane + 1));
          if Array.unsafe_get v (en + lane + 2) <> 0 then
            Array.unsafe_set v (q + lane + 2)
              (Array.unsafe_get v (d + lane + 2));
          if Array.unsafe_get v (en + lane + 3) <> 0 then
            Array.unsafe_set v (q + lane + 3)
              (Array.unsafe_get v (d + lane + 3))
        done;
        for lane = tail to k - 1 do
          if Array.unsafe_get v (en + lane) <> 0 then
            Array.unsafe_set v (q + lane) (Array.unsafe_get v (d + lane))
        done
      end
    done;
    for i = l.l_direct to n - 1 do
      let q = Array.unsafe_get l.l_q i in
      let base = i * k in
      for lane = 0 to k - 1 do
        Array.unsafe_set v (q + lane) (Array.unsafe_get l.l_next (base + lane))
      done
    done;
    let c = t.commit in
    let m = Array.length c.c_wen in
    for i = 0 to m - 1 do
      let wen = Array.unsafe_get c.c_wen i in
      let addr = Array.unsafe_get c.c_addr i in
      let data = Array.unsafe_get c.c_data i in
      let mask = Array.unsafe_get c.c_mask i in
      let arr = Array.unsafe_get c.c_arr i in
      let depth = Array.length arr / k in
      for lane = 0 to k - 1 do
        if Array.unsafe_get v (wen + lane) <> 0 then begin
          let a = Array.unsafe_get v (addr + lane) in
          if a < depth then
            Array.unsafe_set arr ((a * k) + lane)
              (Array.unsafe_get v (data + lane) land mask)
        end
      done
    done

  let cycle t =
    eval t;
    step t;
    t.ticks <- t.ticks + 1

  let cycles t = t.ticks
end
