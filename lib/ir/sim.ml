module N = Netlist

type t = {
  nl : N.t;
  values : int array;
  mem_data : (string, int array) Hashtbl.t;
  order : N.signal array;
  mutable ticks : int;
  mutable hooks : (int -> unit) list;
}

let mem_key m = N.mem_name m

let create nl =
  let order = N.topo_order nl in
  List.iter
    (fun q ->
      match N.cell_of nl q with
      | N.Reg { d = None; _ } ->
          failwith ("Sim.create: unconnected register " ^ N.name_of nl q)
      | _ -> ())
    (N.registers nl);
  let values = Array.make (N.num_signals nl) 0 in
  (* Registers start at their init value; constants are fixed. *)
  for i = 0 to N.num_signals nl - 1 do
    let s = N.signal_of_int nl i in
    match N.cell_of nl s with
    | N.Reg r -> values.(i) <- r.N.init
    | N.Const v -> values.(i) <- v
    | _ -> ()
  done;
  let mem_data = Hashtbl.create 8 in
  List.iter
    (fun m -> Hashtbl.replace mem_data (mem_key m) (Array.make (N.mem_depth m) 0))
    (N.mems nl);
  { nl; values; mem_data; order; ticks = 0; hooks = [] }

let netlist t = t.nl

(* A coarse classification used only to make misuse errors self-explaining. *)
let cell_kind = function
  | N.Input -> "an input"
  | N.Const _ -> "a constant"
  | N.Reg _ -> "a register"
  | N.Mem_read _ -> "a memory read port"
  | _ -> "a combinational cell"

let set_input t s v =
  match N.cell_of t.nl s with
  | N.Input -> t.values.((s :> int)) <- Bits.trunc (N.width_of t.nl s) v
  | c ->
      invalid_arg
        (Printf.sprintf "Sim.set_input: signal %s is not an input (it is %s)"
           (N.name_of t.nl s) (cell_kind c))

let peek t (s : N.signal) = t.values.((s :> int))

let mem_array t m = Hashtbl.find t.mem_data (mem_key m)

let peek_mem t m i = (mem_array t m).(i)
let poke_mem t m i v = (mem_array t m).(i) <- Bits.trunc (N.mem_width m) v

let poke_reg t s v =
  match N.cell_of t.nl s with
  | N.Reg _ -> t.values.((s :> int)) <- Bits.trunc (N.width_of t.nl s) v
  | c ->
      invalid_arg
        (Printf.sprintf "Sim.poke_reg: signal %s is not a register (it is %s)"
           (N.name_of t.nl s) (cell_kind c))

let eval_cell t s =
  let v = t.values in
  let w = N.width_of t.nl s in
  let r =
    match N.cell_of t.nl s with
    | N.Input | N.Const _ | N.Reg _ -> v.((s :> int))
    | N.Not a -> lnot v.((a :> int))
    | N.And (a, b) -> v.((a :> int)) land v.((b :> int))
    | N.Or (a, b) -> v.((a :> int)) lor v.((b :> int))
    | N.Xor (a, b) -> v.((a :> int)) lxor v.((b :> int))
    | N.Mux (s', a, b) -> if v.((s' :> int)) = 1 then v.((b :> int)) else v.((a :> int))
    | N.Eq (a, b) -> if v.((a :> int)) = v.((b :> int)) then 1 else 0
    | N.Lt (a, b) -> if v.((a :> int)) < v.((b :> int)) then 1 else 0
    | N.Add (a, b) -> v.((a :> int)) + v.((b :> int))
    | N.Sub (a, b) -> v.((a :> int)) - v.((b :> int))
    | N.Shl (a, n) -> v.((a :> int)) lsl n
    | N.Shr (a, n) -> v.((a :> int)) lsr n
    | N.Slice (a, lo) -> v.((a :> int)) lsr lo
    | N.Concat (hi, lo) ->
        let wlo = N.width_of t.nl lo in
        (v.((hi :> int)) lsl wlo) lor v.((lo :> int))
    | N.Mem_read (m, addr) ->
        let arr = mem_array t m in
        let a = v.((addr :> int)) in
        if a < Array.length arr then arr.(a) else 0
  in
  v.((s :> int)) <- Bits.trunc w r

let eval t = Array.iter (fun s -> eval_cell t s) t.order

let step t =
  (* Latch all registers from their (already evaluated) D inputs. *)
  let next =
    List.filter_map
      (fun q ->
        match N.cell_of t.nl q with
        | N.Reg { d = Some d; en; _ } ->
            let enabled =
              match en with None -> true | Some e -> t.values.((e :> int)) = 1
            in
            if enabled then Some (q, t.values.((d :> int))) else None
        | _ -> None)
      (N.registers t.nl)
  in
  List.iter (fun ((q : N.signal), v) -> t.values.((q :> int)) <- v) next;
  (* Commit memory writes; later-declared ports win on address conflicts. *)
  List.iter
    (fun m ->
      let arr = mem_array t m in
      List.iter
        (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
          if t.values.((wen :> int)) = 1 then begin
            let a = t.values.((addr :> int)) in
            if a < Array.length arr then
              arr.(a) <- Bits.trunc (N.mem_width m) t.values.((data :> int))
          end)
        (N.mem_writes m))
    (N.mems t.nl)

let cycle t =
  eval t;
  step t;
  t.ticks <- t.ticks + 1;
  match t.hooks with
  | [] -> ()
  | hooks -> List.iter (fun h -> h t.ticks) hooks

let cycles t = t.ticks
let on_cycle t h = t.hooks <- t.hooks @ [ h ]
