module N = Netlist

type engine = [ `Interp | `Compiled ]

(* --- compiled evaluation program -----------------------------------------

   The interpretive walker re-dispatched on [Netlist.cell_of], re-looked-up
   widths, and hit a memory Hashtbl on every cell of every cycle.  The
   compiled engine lowers the topo order once, at [create], into parallel
   int arrays: an opcode stream with pre-resolved operand indices and a
   precomputed result mask per cell.  The steady-state cycle then touches
   only int arrays — no variant dispatch, no width lookups, no allocation.

   Opcode encoding (kept in sync with [exec_prog]'s match):
     0 Not    a                      7 Lt     a b
     1 And    a b                    8 Shl    a, b = shift amount
     2 Or     a b                    9 Shr    a, b = shift amount (and Slice)
     3 Xor    a b                   10 Concat a = hi, c = lo, b = lo width
     4 Add    a b                   11 Mux    a = sel, b = sel=0 arm, c = other
     5 Sub    a b                   12 Mem_read a = addr, arr = backing store
     6 Eq     a b *)

type prog = {
  p_op : int array;
  p_dst : int array;
  p_a : int array;
  p_b : int array;
  p_c : int array;
  p_mask : int array;
  p_arr : int array array;  (* Mem_read backing store; shared [||] elsewhere *)
}

(* Register-latch plan: parallel arrays of q/d/en indices resolved once.
   [l_next] stages the new values so register-to-register feedback (e.g. a
   swap) latches atomically, exactly like the interpretive two-phase step. *)
type latch_plan = {
  l_q : int array;
  l_d : int array;
  l_en : int array;   (* enable signal index, or -1 for always-enabled *)
  l_next : int array;
}

(* Memory-commit plan: one entry per write port, in declaration order
   (later-declared ports win on address conflicts, as before), with the
   backing [int array] resolved once instead of a Hashtbl find per cycle. *)
type commit_plan = {
  c_wen : int array;
  c_addr : int array;
  c_data : int array;
  c_mask : int array;
  c_arr : int array array;
}

type t = {
  nl : N.t;
  engine : engine;
  values : int array;
  mem_data : (string, int array) Hashtbl.t;
  order : N.signal array;
  prog : prog;
  latch : latch_plan;
  commit : commit_plan;
  mutable ticks : int;
  mutable hooks_rev : (int -> unit) list;
  mutable hook_arr : (int -> unit) array;
}

let mem_key m = N.mem_name m

let no_arr : int array = [||]

let compile_prog nl (order : N.signal array) mem_arr =
  let n = Array.length order in
  let p =
    { p_op = Array.make n 0;
      p_dst = Array.make n 0;
      p_a = Array.make n 0;
      p_b = Array.make n 0;
      p_c = Array.make n 0;
      p_mask = Array.make n 0;
      p_arr = Array.make n no_arr }
  in
  Array.iteri
    (fun i (s : N.signal) ->
      let set op a b c =
        p.p_op.(i) <- op;
        p.p_a.(i) <- a;
        p.p_b.(i) <- b;
        p.p_c.(i) <- c
      in
      p.p_dst.(i) <- (s :> int);
      p.p_mask.(i) <- Bits.mask (N.width_of nl s);
      match N.cell_of nl s with
      | N.Input | N.Const _ | N.Reg _ ->
          (* never in the combinational topo order *)
          assert false
      | N.Not a -> set 0 (a :> int) 0 0
      | N.And (a, b) -> set 1 (a :> int) (b :> int) 0
      | N.Or (a, b) -> set 2 (a :> int) (b :> int) 0
      | N.Xor (a, b) -> set 3 (a :> int) (b :> int) 0
      | N.Add (a, b) -> set 4 (a :> int) (b :> int) 0
      | N.Sub (a, b) -> set 5 (a :> int) (b :> int) 0
      | N.Eq (a, b) -> set 6 (a :> int) (b :> int) 0
      | N.Lt (a, b) -> set 7 (a :> int) (b :> int) 0
      | N.Shl (a, k) -> set 8 (a :> int) k 0
      | N.Shr (a, k) | N.Slice (a, k) -> set 9 (a :> int) k 0
      | N.Concat (hi, lo) ->
          set 10 (hi :> int) (N.width_of nl lo) (lo :> int)
      | N.Mux (sel, a, b) -> set 11 (sel :> int) (a :> int) (b :> int)
      | N.Mem_read (m, addr) ->
          set 12 (addr :> int) 0 0;
          p.p_arr.(i) <- mem_arr m)
    order;
  p

let compile_latch nl =
  let regs =
    List.filter_map
      (fun q ->
        match N.cell_of nl q with
        | N.Reg { N.d = Some d; en; _ } ->
            Some
              ( (q :> int),
                (d :> int),
                match en with None -> -1 | Some e -> (e :> int) )
        | _ -> None)
      (N.registers nl)
  in
  let n = List.length regs in
  let l =
    { l_q = Array.make n 0;
      l_d = Array.make n 0;
      l_en = Array.make n (-1);
      l_next = Array.make n 0 }
  in
  List.iteri
    (fun i (q, d, en) ->
      l.l_q.(i) <- q;
      l.l_d.(i) <- d;
      l.l_en.(i) <- en)
    regs;
  l

let compile_commit nl mem_arr =
  let ports =
    List.concat_map
      (fun m ->
        List.map
          (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
            ((wen :> int), (addr :> int), (data :> int),
             Bits.mask (N.mem_width m), mem_arr m))
          (N.mem_writes m))
      (N.mems nl)
  in
  let n = List.length ports in
  let c =
    { c_wen = Array.make n 0;
      c_addr = Array.make n 0;
      c_data = Array.make n 0;
      c_mask = Array.make n 0;
      c_arr = Array.make n no_arr }
  in
  List.iteri
    (fun i (wen, addr, data, mask, arr) ->
      c.c_wen.(i) <- wen;
      c.c_addr.(i) <- addr;
      c.c_data.(i) <- data;
      c.c_mask.(i) <- mask;
      c.c_arr.(i) <- arr)
    ports;
  c

let create ?(engine : engine = `Compiled) nl =
  N.validate nl;
  let order = N.topo_order nl in
  List.iter
    (fun q ->
      match N.cell_of nl q with
      | N.Reg { d = None; _ } ->
          failwith ("Sim.create: unconnected register " ^ N.name_of nl q)
      | _ -> ())
    (N.registers nl);
  let values = Array.make (N.num_signals nl) 0 in
  (* Registers start at their init value; constants are fixed. *)
  for i = 0 to N.num_signals nl - 1 do
    let s = N.signal_of_int nl i in
    match N.cell_of nl s with
    | N.Reg r -> values.(i) <- r.N.init
    | N.Const v -> values.(i) <- v
    | _ -> ()
  done;
  let mem_data = Hashtbl.create 8 in
  List.iter
    (fun m -> Hashtbl.replace mem_data (mem_key m) (Array.make (N.mem_depth m) 0))
    (N.mems nl);
  let mem_arr m = Hashtbl.find mem_data (mem_key m) in
  { nl; engine; values; mem_data; order;
    prog = compile_prog nl order mem_arr;
    latch = compile_latch nl;
    commit = compile_commit nl mem_arr;
    ticks = 0; hooks_rev = []; hook_arr = [||] }

(* Re-arm a built simulator without re-validating, re-ordering or
   re-lowering the netlist: values back to register-init/const state,
   memories zeroed, tick counter and hooks cleared.  Bit-identical to a
   fresh [create ~engine nl] (the compiled program, latch and commit plans
   are pure functions of the netlist and stay valid). *)
let reset t =
  for i = 0 to N.num_signals t.nl - 1 do
    let s = N.signal_of_int t.nl i in
    match N.cell_of t.nl s with
    | N.Reg r -> t.values.(i) <- r.N.init
    | N.Const v -> t.values.(i) <- v
    | _ -> t.values.(i) <- 0
  done;
  Hashtbl.iter (fun _ arr -> Array.fill arr 0 (Array.length arr) 0) t.mem_data;
  t.ticks <- 0;
  t.hooks_rev <- [];
  t.hook_arr <- [||]

let netlist t = t.nl
let engine t = t.engine

(* A coarse classification used only to make misuse errors self-explaining. *)
let cell_kind = function
  | N.Input -> "an input"
  | N.Const _ -> "a constant"
  | N.Reg _ -> "a register"
  | N.Mem_read _ -> "a memory read port"
  | _ -> "a combinational cell"

let set_input t s v =
  match N.cell_of t.nl s with
  | N.Input -> t.values.((s :> int)) <- Bits.trunc (N.width_of t.nl s) v
  | c ->
      invalid_arg
        (Printf.sprintf "Sim.set_input: signal %s is not an input (it is %s)"
           (N.name_of t.nl s) (cell_kind c))

let peek t (s : N.signal) = t.values.((s :> int))

let mem_array t m = Hashtbl.find t.mem_data (mem_key m)

let peek_mem t m i = (mem_array t m).(i)
let poke_mem t m i v = (mem_array t m).(i) <- Bits.trunc (N.mem_width m) v

let poke_reg t s v =
  match N.cell_of t.nl s with
  | N.Reg _ -> t.values.((s :> int)) <- Bits.trunc (N.width_of t.nl s) v
  | c ->
      invalid_arg
        (Printf.sprintf "Sim.poke_reg: signal %s is not a register (it is %s)"
           (N.name_of t.nl s) (cell_kind c))

(* --- interpretive engine (reference semantics) ------------------------- *)

let eval_cell t s =
  let v = t.values in
  let w = N.width_of t.nl s in
  let r =
    match N.cell_of t.nl s with
    | N.Input | N.Const _ | N.Reg _ -> v.((s :> int))
    | N.Not a -> lnot v.((a :> int))
    | N.And (a, b) -> v.((a :> int)) land v.((b :> int))
    | N.Or (a, b) -> v.((a :> int)) lor v.((b :> int))
    | N.Xor (a, b) -> v.((a :> int)) lxor v.((b :> int))
    | N.Mux (s', a, b) ->
        (* Selector truthiness is [<> 0], not [= 1]: a (rejected) multi-bit
           selector holding 2 must not silently pick the sel=0 arm. *)
        if v.((s' :> int)) <> 0 then v.((b :> int)) else v.((a :> int))
    | N.Eq (a, b) -> if v.((a :> int)) = v.((b :> int)) then 1 else 0
    | N.Lt (a, b) -> if v.((a :> int)) < v.((b :> int)) then 1 else 0
    | N.Add (a, b) -> v.((a :> int)) + v.((b :> int))
    | N.Sub (a, b) -> v.((a :> int)) - v.((b :> int))
    | N.Shl (a, n) -> v.((a :> int)) lsl n
    | N.Shr (a, n) -> v.((a :> int)) lsr n
    | N.Slice (a, lo) -> v.((a :> int)) lsr lo
    | N.Concat (hi, lo) ->
        let wlo = N.width_of t.nl lo in
        (v.((hi :> int)) lsl wlo) lor v.((lo :> int))
    | N.Mem_read (m, addr) ->
        let arr = mem_array t m in
        let a = v.((addr :> int)) in
        if a < Array.length arr then arr.(a) else 0
  in
  v.((s :> int)) <- Bits.trunc w r

let eval_interp t = Array.iter (fun s -> eval_cell t s) t.order

let step_interp t =
  (* Latch all registers from their (already evaluated) D inputs. *)
  let next =
    List.filter_map
      (fun q ->
        match N.cell_of t.nl q with
        | N.Reg { d = Some d; en; _ } ->
            let enabled =
              match en with None -> true | Some e -> t.values.((e :> int)) <> 0
            in
            if enabled then Some (q, t.values.((d :> int))) else None
        | _ -> None)
      (N.registers t.nl)
  in
  List.iter (fun ((q : N.signal), v) -> t.values.((q :> int)) <- v) next;
  (* Commit memory writes; later-declared ports win on address conflicts. *)
  List.iter
    (fun m ->
      let arr = mem_array t m in
      List.iter
        (fun ((wen : N.signal), (addr : N.signal), (data : N.signal)) ->
          if t.values.((wen :> int)) <> 0 then begin
            let a = t.values.((addr :> int)) in
            if a < Array.length arr then
              arr.(a) <- Bits.trunc (N.mem_width m) t.values.((data :> int))
          end)
        (N.mem_writes m))
    (N.mems t.nl)

(* --- compiled engine ---------------------------------------------------- *)

let exec_prog p v =
  let n = Array.length p.p_op in
  for i = 0 to n - 1 do
    let a = Array.unsafe_get p.p_a i in
    let b = Array.unsafe_get p.p_b i in
    let r =
      match Array.unsafe_get p.p_op i with
      | 0 -> lnot (Array.unsafe_get v a)
      | 1 -> Array.unsafe_get v a land Array.unsafe_get v b
      | 2 -> Array.unsafe_get v a lor Array.unsafe_get v b
      | 3 -> Array.unsafe_get v a lxor Array.unsafe_get v b
      | 4 -> Array.unsafe_get v a + Array.unsafe_get v b
      | 5 -> Array.unsafe_get v a - Array.unsafe_get v b
      | 6 -> if Array.unsafe_get v a = Array.unsafe_get v b then 1 else 0
      | 7 -> if Array.unsafe_get v a < Array.unsafe_get v b then 1 else 0
      | 8 -> Array.unsafe_get v a lsl b
      | 9 -> Array.unsafe_get v a lsr b
      | 10 ->
          (Array.unsafe_get v a lsl b)
          lor Array.unsafe_get v (Array.unsafe_get p.p_c i)
      | 11 ->
          if Array.unsafe_get v a <> 0 then
            Array.unsafe_get v (Array.unsafe_get p.p_c i)
          else Array.unsafe_get v b
      | _ ->
          let arr = Array.unsafe_get p.p_arr i in
          let ad = Array.unsafe_get v a in
          if ad < Array.length arr then Array.unsafe_get arr ad else 0
    in
    Array.unsafe_set v
      (Array.unsafe_get p.p_dst i)
      (r land Array.unsafe_get p.p_mask i)
  done

let step_compiled t =
  let v = t.values in
  let l = t.latch in
  let n = Array.length l.l_q in
  for i = 0 to n - 1 do
    let en = Array.unsafe_get l.l_en i in
    let src =
      if en < 0 || Array.unsafe_get v en <> 0 then Array.unsafe_get l.l_d i
      else Array.unsafe_get l.l_q i
    in
    Array.unsafe_set l.l_next i (Array.unsafe_get v src)
  done;
  for i = 0 to n - 1 do
    Array.unsafe_set v (Array.unsafe_get l.l_q i) (Array.unsafe_get l.l_next i)
  done;
  let c = t.commit in
  let m = Array.length c.c_wen in
  for i = 0 to m - 1 do
    if Array.unsafe_get v (Array.unsafe_get c.c_wen i) <> 0 then begin
      let arr = Array.unsafe_get c.c_arr i in
      let a = Array.unsafe_get v (Array.unsafe_get c.c_addr i) in
      if a < Array.length arr then
        Array.unsafe_set arr a
          (Array.unsafe_get v (Array.unsafe_get c.c_data i)
          land Array.unsafe_get c.c_mask i)
    end
  done

let eval_impl t =
  match t.engine with
  | `Compiled -> exec_prog t.prog t.values
  | `Interp -> eval_interp t

(* Armed-guarded: the disarmed compiled cycle must stay allocation-free
   (Gc.minor_words gate in test_ir), so the closure only exists on the
   armed branch. *)
let eval t =
  if Dvz_obs.Profile.armed () then
    Dvz_obs.Profile.wrap "sim/eval" (fun () -> eval_impl t)
  else eval_impl t

let step t =
  match t.engine with `Compiled -> step_compiled t | `Interp -> step_interp t

let cycle t =
  eval t;
  step t;
  t.ticks <- t.ticks + 1;
  let hooks = t.hook_arr in
  for i = 0 to Array.length hooks - 1 do
    (Array.unsafe_get hooks i) t.ticks
  done

let cycles t = t.ticks

let on_cycle t h =
  (* Hooks are stored newest-first and mirrored into an array once per
     registration, so [cycle] iterates a flat array in registration order
     instead of rebuilding a list (the old [hooks @ [h]] append was
     quadratic in hook count and allocated on every registration). *)
  t.hooks_rev <- h :: t.hooks_rev;
  t.hook_arr <- Array.of_list (List.rev t.hooks_rev)
