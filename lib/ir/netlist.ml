type signal = int

exception Width_error of string

type mem_rec = {
  m_id : int;
  m_name : string;
  m_width : int;
  m_depth : int;
  mutable m_writes : (signal * signal * signal) list;
}

type mem = mem_rec

type cell =
  | Input
  | Const of int
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Mux of signal * signal * signal
  | Eq of signal * signal
  | Lt of signal * signal
  | Add of signal * signal
  | Sub of signal * signal
  | Shl of signal * int
  | Shr of signal * int
  | Slice of signal * int
  | Concat of signal * signal
  | Reg of reg
  | Mem_read of mem * signal

and reg = { mutable d : signal option; mutable en : signal option; init : int }

type node = { cell : cell; width : int; modname : string; name : string }

type t = {
  mutable nodes : node array;
  mutable count : int;
  mutable scope : string list;
  mutable memories : mem list;
  mutable next_mem : int;
}

let create () =
  { nodes = Array.make 64 { cell = Input; width = 1; modname = ""; name = "" };
    count = 0; scope = []; memories = []; next_mem = 0 }

let cur_module t = String.concat "." (List.rev t.scope)

let scoped t name f =
  t.scope <- name :: t.scope;
  let finally () = t.scope <- List.tl t.scope in
  match f () with
  | v -> finally (); v
  | exception e -> finally (); raise e

let grow t =
  if t.count = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.count) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end

let add_cell t ?(name = "") width cell =
  if width <= 0 || width > Bits.max_width then
    invalid_arg "Netlist.add: bad width";
  grow t;
  let id = t.count in
  t.nodes.(id) <- { cell; width; modname = cur_module t; name };
  t.count <- id + 1;
  id

let width_of t s = t.nodes.(s).width
let cell_of t s = t.nodes.(s).cell
let module_of t s = t.nodes.(s).modname
let name_of t s = t.nodes.(s).name
let num_signals t = t.count

let signal_of_int t i =
  if i < 0 || i >= t.count then invalid_arg "Netlist.signal_of_int";
  i

let same_width t a b =
  if width_of t a <> width_of t b then
    invalid_arg "Netlist: operand widths differ"

(* Signal description for error messages: "#12(rob.tail_idx)" or "#12". *)
let describe t s =
  let n = name_of t s in
  let m = module_of t s in
  let qual = if m = "" then n else if n = "" then m else m ^ "." ^ n in
  if qual = "" then Printf.sprintf "#%d" s else Printf.sprintf "#%d(%s)" s qual

let require_1bit t s ~ctx ~role =
  let w = width_of t s in
  if w <> 1 then
    raise
      (Width_error
         (Printf.sprintf "%s: %s %s must be 1 bit wide, not %d" ctx role
            (describe t s) w))

let input t ?name w = add_cell t ?name w Input

let const t w v = add_cell t w (Const (Bits.trunc w v))

let not_ t a = add_cell t (width_of t a) (Not a)

let binop t ctor a b =
  same_width t a b;
  add_cell t (width_of t a) (ctor a b)

let and_ t a b = binop t (fun a b -> And (a, b)) a b
let or_ t a b = binop t (fun a b -> Or (a, b)) a b
let xor_ t a b = binop t (fun a b -> Xor (a, b)) a b
let add_ t a b = binop t (fun a b -> Add (a, b)) a b
let sub t a b = binop t (fun a b -> Sub (a, b)) a b
let add = add_

let mux t s a b =
  require_1bit t s ~ctx:"Netlist.mux" ~role:"selector";
  same_width t a b;
  add_cell t (width_of t a) (Mux (s, a, b))

let eq t a b =
  same_width t a b;
  add_cell t 1 (Eq (a, b))

let lt t a b =
  same_width t a b;
  add_cell t 1 (Lt (a, b))

let shl t a n = add_cell t (width_of t a) (Shl (a, n))
let shr t a n = add_cell t (width_of t a) (Shr (a, n))

let slice t a ~lo ~width =
  if lo < 0 || lo + width > width_of t a then invalid_arg "Netlist.slice";
  add_cell t width (Slice (a, lo))

let concat t hi lo =
  let w = width_of t hi + width_of t lo in
  if w > Bits.max_width then invalid_arg "Netlist.concat: too wide";
  add_cell t w (Concat (hi, lo))

let reg t ?name ?(init = 0) w =
  add_cell t ?name w (Reg { d = None; en = None; init = Bits.trunc w init })

let reg_connect t q ~d ?en () =
  match cell_of t q with
  | Reg r ->
      same_width t q d;
      (match en with
      | Some e -> require_1bit t e ~ctx:"Netlist.reg_connect" ~role:"enable"
      | None -> ());
      if r.d <> None then invalid_arg "Netlist.reg_connect: already connected";
      r.d <- Some d;
      r.en <- en
  | _ -> invalid_arg "Netlist.reg_connect: not a register"

let mem t ?(name = "") ~width ~depth () =
  if width <= 0 || width > Bits.max_width || depth <= 0 then
    invalid_arg "Netlist.mem";
  let name = if name = "" then Printf.sprintf "mem%d" t.next_mem else name in
  let m =
    { m_id = t.next_mem; m_name = cur_module t ^ "." ^ name;
      m_width = width; m_depth = depth; m_writes = [] }
  in
  t.next_mem <- t.next_mem + 1;
  t.memories <- m :: t.memories;
  m

let mem_read t m addr = add_cell t m.m_width (Mem_read (m, addr))

let mem_write t m ~wen ~addr ~data =
  require_1bit t wen ~ctx:"Netlist.mem_write" ~role:"write enable";
  if width_of t data <> m.m_width then
    invalid_arg "Netlist.mem_write: data width mismatch";
  m.m_writes <- (wen, addr, data) :: m.m_writes

let mems t = List.rev t.memories
let mem_width m = m.m_width
let mem_depth m = m.m_depth
let mem_name m = m.m_name
let mem_writes m = List.rev m.m_writes

let registers t =
  let acc = ref [] in
  for i = t.count - 1 downto 0 do
    match t.nodes.(i).cell with Reg _ -> acc := i :: !acc | _ -> ()
  done;
  !acc

let inputs t =
  let acc = ref [] in
  for i = t.count - 1 downto 0 do
    match t.nodes.(i).cell with Input -> acc := i :: !acc | _ -> ()
  done;
  !acc

let deps = function
  | Input | Const _ | Reg _ -> []
  | Not a | Shl (a, _) | Shr (a, _) | Slice (a, _) -> [ a ]
  | And (a, b) | Or (a, b) | Xor (a, b) | Eq (a, b) | Lt (a, b)
  | Add (a, b) | Sub (a, b) | Concat (a, b) -> [ a; b ]
  | Mux (s, a, b) -> [ s; a; b ]
  | Mem_read (_, a) -> [ a ]

let topo_order t =
  let n = t.count in
  let state = Array.make n 0 (* 0 unvisited, 1 visiting, 2 done *) in
  let order = ref [] in
  let rec visit s =
    match state.(s) with
    | 2 -> ()
    | 1 -> failwith "Netlist.topo_order: combinational cycle"
    | _ ->
        (match t.nodes.(s).cell with
        | Input | Const _ | Reg _ -> state.(s) <- 2
        | c ->
            state.(s) <- 1;
            List.iter visit (deps c);
            state.(s) <- 2;
            order := s :: !order)
  in
  for i = 0 to n - 1 do visit i done;
  Array.of_list (List.rev !order)

(* Backstop for the builder-level checks: simulators call this before
   lowering so a netlist assembled by any future internal path (flattening,
   generated instrumentation, deserialization) cannot smuggle a multi-bit
   select or enable into the [<> 0] truthiness tests of the engines. *)
let validate t =
  for i = 0 to t.count - 1 do
    match t.nodes.(i).cell with
    | Mux (s, _, _) -> require_1bit t s ~ctx:"Netlist.validate" ~role:"mux selector"
    | Reg { en = Some e; _ } ->
        require_1bit t e ~ctx:"Netlist.validate" ~role:"register enable"
    | _ -> ()
  done;
  List.iter
    (fun m ->
      List.iter
        (fun (wen, _, _) ->
          require_1bit t wen ~ctx:"Netlist.validate" ~role:"memory write enable")
        m.m_writes)
    t.memories

(* Deep copy for the optimization passes: signal indices are preserved so
   handles minted against the original keep working against the copy, but
   every mutable record (nodes array, register d/en slots, memory write-port
   lists) is duplicated so rewrites cannot leak back into the source. *)
let copy t =
  let mem_map = Hashtbl.create 8 in
  let memories =
    List.map
      (fun m ->
        let m' = { m with m_writes = m.m_writes } in
        Hashtbl.replace mem_map m.m_id m';
        m')
      t.memories
  in
  let copy_cell = function
    | Reg r -> Reg { d = r.d; en = r.en; init = r.init }
    | Mem_read (m, a) -> Mem_read (Hashtbl.find mem_map m.m_id, a)
    | c -> c
  in
  let nodes = Array.map (fun n -> { n with cell = copy_cell n.cell }) t.nodes in
  { nodes; count = t.count; scope = t.scope; memories; next_mem = t.next_mem }

let set_cell t s cell =
  let n = t.nodes.(s) in
  t.nodes.(s) <- { n with cell }

let set_mem_writes m writes = m.m_writes <- List.rev writes

let modules t =
  let tbl = Hashtbl.create 16 in
  for i = 0 to t.count - 1 do
    Hashtbl.replace tbl t.nodes.(i).modname ()
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
