(** Word values for the circuit IR.

    A signal value is an OCaml [int] holding up to {!max_width} bits
    (LSB-first).  All operations mask their result to the signal width, so
    values are always canonical. *)

val max_width : int
(** Largest supported signal width (62 bits, so values stay non-negative). *)

val mask : int -> int
(** [mask w] is the all-ones value of width [w].  Requires [0 < w <= max_width]. *)

val trunc : int -> int -> int
(** [trunc w v] truncates [v] to its low [w] bits. *)

val bit : int -> int -> int
(** [bit v i] is bit [i] of [v] (0 or 1). *)

val replicate : int -> int -> int
(** [replicate w b] is [w] copies of the single bit [b] (0 or 1). *)

val popcount : int -> int
(** Number of set bits (SWAR, constant time over the 63-bit word; total on
    any [int], including negatives, counting the two's-complement bits). *)

val spread_up : int -> int -> int
(** [spread_up w m] sets every bit of [m] at or above its lowest set bit,
    up to width [w]; 0 if [m = 0].  Models carry-chain taint spreading in
    arithmetic cells: a tainted bit can influence all higher result bits. *)
