(** Word-level circuit netlists.

    A netlist is a set of typed cells connected by signals, the same level of
    abstraction as the RTL IR the paper instruments with Yosys passes
    (word-level cells, non-flattened memories).  Signals are created through
    builder functions; registers and memories support forward references so
    feedback loops can be closed after the combinational logic is built.

    Every cell carries a [module] tag, mirroring the RTL module hierarchy;
    the IFT layer aggregates taint counts per tag ({!Dvz_ift.Taintlog}) and
    the fuzzer's coverage matrix is keyed by it. *)

type t
(** A netlist under construction (and, once closed, under simulation). *)

type signal = private int
(** A signal handle.  Signals are only meaningful within their netlist. *)

type mem
(** A memory handle. *)

exception Width_error of string
(** Raised when a control signal has an illegal width: a [Mux] selector, a
    register enable, or a memory write enable that is not exactly 1 bit
    wide.  The simulators treat those controls as boolean ([<> 0]); a
    multi-bit control would silently select the wrong arm or drop a latch,
    so it is rejected by name at construction time (and again by
    {!validate} when a simulator is built). *)

(** Cell operations.  [Mux (s, a, b)] selects [b] when [s] is 1, matching the
    paper's [S ? B : A] notation. *)
type cell =
  | Input
  | Const of int
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Mux of signal * signal * signal
  | Eq of signal * signal
  | Lt of signal * signal
  | Add of signal * signal
  | Sub of signal * signal
  | Shl of signal * int
  | Shr of signal * int
  | Slice of signal * int
  | Concat of signal * signal
  | Reg of reg
  | Mem_read of mem * signal

and reg = {
  mutable d : signal option;  (** data input, connected via {!reg_connect} *)
  mutable en : signal option; (** optional enable *)
  init : int;                 (** reset value *)
}

val create : unit -> t

val scoped : t -> string -> (unit -> 'a) -> 'a
(** [scoped t name f] runs [f] with the current module tag set to [name];
    cells built inside get that tag.  Scopes nest with [.] separators. *)

val input : t -> ?name:string -> int -> signal
(** [input t w] declares a primary input of width [w]. *)

val const : t -> int -> int -> signal
(** [const t w v] is the constant [v] of width [w]. *)

val not_ : t -> signal -> signal
val and_ : t -> signal -> signal -> signal
val or_ : t -> signal -> signal -> signal
val xor_ : t -> signal -> signal -> signal

val mux : t -> signal -> signal -> signal -> signal
(** [mux t s a b] is [b] when [s]=1 else [a].  [s] must be 1 bit wide and
    [a], [b] equal widths. *)

val eq : t -> signal -> signal -> signal
(** 1-bit equality comparison. *)

val lt : t -> signal -> signal -> signal
(** 1-bit unsigned less-than. *)

val add : t -> signal -> signal -> signal
val sub : t -> signal -> signal -> signal
val shl : t -> signal -> int -> signal
val shr : t -> signal -> int -> signal

val slice : t -> signal -> lo:int -> width:int -> signal
(** [slice t s ~lo ~width] extracts bits [lo .. lo+width-1]. *)

val concat : t -> signal -> signal -> signal
(** [concat t hi lo] is [{hi, lo}]; width is the sum of both widths. *)

val reg : t -> ?name:string -> ?init:int -> int -> signal
(** [reg t w] declares a register of width [w] and returns its output [Q].
    The data input must be connected later with {!reg_connect}. *)

val reg_connect : t -> signal -> d:signal -> ?en:signal -> unit -> unit
(** [reg_connect t q ~d ~en ()] closes the feedback loop of register [q]. *)

val mem : t -> ?name:string -> width:int -> depth:int -> unit -> mem
(** Declares a synchronous-write, combinational-read memory. *)

val mem_read : t -> mem -> signal -> signal
(** [mem_read t m addr] is a combinational read port. *)

val mem_write : t -> mem -> wen:signal -> addr:signal -> data:signal -> unit
(** Adds a write port; the write commits at the clock edge when [wen]=1. *)

(* Introspection used by the simulator and the IFT instrumentation. *)

val num_signals : t -> int
val cell_of : t -> signal -> cell
val width_of : t -> signal -> int
val module_of : t -> signal -> string
val name_of : t -> signal -> string
val signal_of_int : t -> int -> signal
(** [signal_of_int t i] recovers the handle for index [i]; raises
    [Invalid_argument] if out of range. *)

val registers : t -> signal list
(** All register output signals, in creation order. *)

val inputs : t -> signal list

val mems : t -> mem list
val mem_width : mem -> int
val mem_depth : mem -> int
val mem_name : mem -> string
val mem_writes : mem -> (signal * signal * signal) list
(** Write ports as [(wen, addr, data)] triples. *)

val deps : cell -> signal list
(** Combinational operand signals of a cell.  [Input], [Const] and [Reg]
    have none (a register's [d]/[en] feed the {e next} cycle, not the
    combinational cone of its output). *)

val topo_order : t -> signal array
(** Combinational cells (everything except [Input], [Const], [Reg]) in
    dependency order.  Raises [Failure] on a combinational cycle. *)

val validate : t -> unit
(** Re-checks the construction-time width invariants over the whole
    netlist: every [Mux] selector, register enable and memory write enable
    must be 1 bit wide.  Raises {!Width_error} naming the offending signal
    otherwise.  Simulators call this before lowering the netlist. *)

val modules : t -> string list
(** All distinct module tags, sorted. *)

(* Rewriting hooks used by the optimization pass pipeline ({!Passes}). *)

val copy : t -> t
(** [copy t] is a deep copy of the netlist: signal indices, widths, names
    and memory names are preserved (handles minted against [t] remain valid
    against the copy), but the node table, register records and memory
    write-port lists are duplicated so in-place rewrites of the copy never
    alter the original. *)

val set_cell : t -> signal -> cell -> unit
(** [set_cell t s c] replaces the cell behind [s], keeping its width, name
    and module tag.  This bypasses the builder-level width checks; it is
    meant for {!Passes}, which only installs rewrites whose operand widths
    match and which re-runs {!validate} afterwards. *)

val set_mem_writes : mem -> (signal * signal * signal) list -> unit
(** [set_mem_writes m ports] replaces the write-port list of [m] with
    [ports], given in the same order {!mem_writes} reports. *)
