let max_width = 62

let mask w =
  if w <= 0 || w > max_width then invalid_arg "Bits.mask: bad width";
  if w = max_width then -1 lsr (Sys.int_size - max_width) else (1 lsl w) - 1

let trunc w v = v land mask w

let bit v i = (v lsr i) land 1

let replicate w b = if b land 1 = 1 then mask w else 0

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let spread_up w m =
  if m = 0 then 0
  else
    let lowest = m land -m in
    (* All bits at or above [lowest], within width [w]. *)
    mask w land lnot (lowest - 1)
