let max_width = 62

let mask w =
  if w <= 0 || w > max_width then invalid_arg "Bits.mask: bad width";
  if w = max_width then -1 lsr (Sys.int_size - max_width) else (1 lsl w) - 1

let trunc w v = v land mask w

let bit v i = (v lsr i) land 1

let replicate w b = if b land 1 = 1 then mask w else 0

(* SWAR popcount.  This sits under {!Shadow.taint_bit_sum}, which the taint
   log recomputes over every register and memory word each logged cycle, so
   the naive bit-at-a-time loop was a measurable fraction of IFT simulation
   time.  OCaml ints are 63-bit: the classic 64-bit masks don't all fit in a
   literal, so the sign bit is counted separately and the masks below cover
   the 62 value bits (every system value is at most {!max_width} wide). *)
let m1 = 0x1555555555555555 (* even bits 0,2,..,60 *)
let m2 = 0x3333333333333333
let m4 = 0x0F0F0F0F0F0F0F0F
let h01 = 0x0101010101010101

let popcount v =
  let sign = v lsr 62 land 1 in
  let x = v land max_int in
  let x = x - (x lsr 1 land m1) in
  let x = (x land m2) + (x lsr 2 land m2) in
  let x = (x + (x lsr 4)) land m4 in
  ((x * h01) lsr 56) + sign

let spread_up w m =
  if m = 0 then 0
  else
    let lowest = m land -m in
    (* All bits at or above [lowest], within width [w]. *)
    mask w land lnot (lowest - 1)
