(* Netlist optimization pass pipeline.

   Stage 1 of the two-stage lowering refactor: a small set of rewrites runs
   over a deep copy of the input netlist before either engine compiles it.
   Signal indices are stable — cells are rewritten in place, and removal is
   expressed by turning a dead cell into [Const 0], which drops it out of
   {!Netlist.topo_order} (constants are leaves) without renumbering anything.

   Every rewrite here must be sound for the IFT shadow engine too: the same
   optimized netlist is lowered by [Sim] and [Shadow], so a rewrite is only
   admitted when the {!Dvz_ift.Policy} taint of the rewritten cell equals the
   taint of the original for all inputs, in both Cellift and Diffift modes.
   That rules out several classically valid simplifications:

   - [Add (x, Const 0)] -> [x]: arithmetic taint spreads upward from the
     lowest tainted bit, so the sum's taint is [spread_up tx], not [tx].
   - [Xor (x, x)] / [Sub (x, x)] / [Eq (x, x)] -> constant: the value is
     constant but the taint is not — a tainted operand taints the output
     under CellIFT, while a [Const] cell's taint is always zero.
   - [Shr (Slice (x, l), k)] fusion: the intermediate mask changes the
     value, unlike the slice-of-slice and shift-of-shift compositions.

   The admitted set (constant folding over taint-free operands, aliasing to
   an operand whose taint provably equals the output taint, shift/slice
   composition, and dead-cell elimination) is checked end to end by the
   randomized differential properties in [test_ir.ml] / [test_ift.ml]. *)

module N = Netlist
module Metrics = Dvz_obs.Metrics

let m_eliminated =
  Metrics.counter Metrics.default
    ~help:"Combinational cells removed by the netlist optimization passes"
    "dvz_ir_cells_eliminated_total"

let m_passes_run =
  Metrics.counter Metrics.default
    ~help:"Netlist optimization pass executions"
    "dvz_ir_passes_run_total"

(* Process-global escape hatch (the CLI's --no-ir-opt): when cleared, every
   [?opt:true] engine construction silently skips optimization, including in
   worker domains.  Read once per [create], never per cycle. *)
let enable = Atomic.make true

let set_enabled b = Atomic.set enable b
let enabled () = Atomic.get enable

type pass_stat = {
  ps_name : string;
  ps_cells_before : int;
  ps_cells_after : int;
  ps_rewrites : int;
}

type stats = {
  st_passes : pass_stat list;
  st_cells_before : int;
  st_cells_after : int;
}

let default_passes = [ "const-fold"; "alias"; "fuse"; "dce" ]

(* The optimization unit is a combinational cell; inputs, constants and
   registers are state, not work, so the headline count is the number of
   cells the engines will actually execute per [eval]. *)
let comb_cells nl = Array.length (N.topo_order nl)

let sig_int (s : N.signal) = (s :> int)

(* Shifts whose amount reaches the word size are unspecified in OCaml; the
   netlist never holds more than [Bits.max_width] live bits, so anything
   shifted that far is all zeros. *)
let shl_safe v n = if n >= Sys.int_size then 0 else v lsl n
let shr_safe v n = if n >= Sys.int_size then 0 else v lsr n

let const_val nl s =
  match N.cell_of nl s with N.Const v -> Some v | _ -> None

(* ---- constant folding ----------------------------------------------- *)

(* Folds cells whose operands are all [Const] (their taints are zero, so
   every policy term vanishes and a [Const] result is taint-exact), plus
   the two absorbing forms whose output taint is identically zero even for
   a tainted variable operand: [And x 0] and [Or x ones]. *)
let fold_cell nl s =
  let w = N.width_of nl s in
  let ones = Bits.mask w in
  let cv = const_val nl in
  match N.cell_of nl s with
  | N.Not a -> (
      match cv a with
      | Some v -> Some (Bits.trunc w (lnot v))
      | None -> None)
  | N.And (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (va land vb)
      | (Some 0, _ | _, Some 0) -> Some 0
      | _ -> None)
  | N.Or (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (va lor vb)
      | (Some v, _ | _, Some v) when v = ones -> Some ones
      | _ -> None)
  | N.Xor (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (va lxor vb)
      | _ -> None)
  | N.Add (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (Bits.trunc w (va + vb))
      | _ -> None)
  | N.Sub (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (Bits.trunc w (va - vb))
      | _ -> None)
  | N.Eq (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (if va = vb then 1 else 0)
      | _ -> None)
  | N.Lt (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> Some (if va < vb then 1 else 0)
      | _ -> None)
  | N.Shl (a, n) -> (
      match cv a with
      | Some v -> Some (Bits.trunc w (shl_safe v n))
      | None -> None)
  | N.Shr (a, n) -> (
      match cv a with
      | Some v -> Some (Bits.trunc w (shr_safe v n))
      | None -> None)
  | N.Slice (a, lo) -> (
      match cv a with
      | Some v -> Some (Bits.trunc w (shr_safe v lo))
      | None -> None)
  | N.Concat (hi, lo) -> (
      match (cv hi, cv lo) with
      | Some vh, Some vl ->
          Some (Bits.trunc w ((vh lsl N.width_of nl lo) lor vl))
      | _ -> None)
  | N.Mux (sel, a, b) -> (
      match (cv sel, cv a, cv b) with
      | Some vs, Some va, Some vb -> Some (if vs <> 0 then vb else va)
      | _ -> None)
  | N.Input | N.Const _ | N.Reg _ | N.Mem_read _ -> None

let pass_const_fold nl =
  let n = N.num_signals nl in
  let total = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let s = N.signal_of_int nl i in
      match fold_cell nl s with
      | Some v ->
          N.set_cell nl s (N.Const v);
          incr total;
          changed := true
      | None -> ()
    done
  done;
  !total

(* ---- aliasing (copy propagation) ------------------------------------ *)

(* A cell aliases signal [x] when its value AND its taint equal [x]'s for
   every input; users are rewired to read [x] directly.  The aliased cell
   itself is left in place (it may carry a name the VCD dumper and the
   provenance tracer rely on); if it becomes unreferenced and unnamed the
   DCE pass retires it. *)
let alias_of nl s =
  let w = N.width_of nl s in
  let cv = const_val nl in
  match N.cell_of nl s with
  | N.Slice (x, 0) when N.width_of nl x = w -> Some x
  | N.Not y -> (
      match N.cell_of nl y with N.Not x -> Some x | _ -> None)
  | N.And (a, b) when sig_int a = sig_int b -> Some a
  | N.Or (a, b) when sig_int a = sig_int b -> Some a
  | N.And (a, b) -> (
      let ones = Bits.mask w in
      match (cv a, cv b) with
      | Some v, _ when v = ones -> Some b
      | _, Some v when v = ones -> Some a
      | _ -> None)
  | N.Or (a, b) | N.Xor (a, b) -> (
      match (cv a, cv b) with
      | Some 0, _ -> Some b
      | _, Some 0 -> Some a
      | _ -> None)
  | N.Mux (_, a, b) when sig_int a = sig_int b -> Some a
  | N.Mux (sel, a, b) -> (
      match cv sel with
      | Some v -> Some (if v <> 0 then b else a)
      | None -> None)
  | N.Shl (x, 0) | N.Shr (x, 0) -> Some x
  | _ -> None

let pass_alias nl =
  let n = N.num_signals nl in
  let repl = Array.make (max n 1) (-1) in
  let found = ref 0 in
  for i = 0 to n - 1 do
    match alias_of nl (N.signal_of_int nl i) with
    | Some x -> repl.(i) <- sig_int x; incr found
    | None -> ()
  done;
  if !found = 0 then 0
  else begin
    (* Path-compress chains of aliases down to their roots. *)
    let rec root i = if repl.(i) < 0 then i else root repl.(i) in
    for i = 0 to n - 1 do
      if repl.(i) >= 0 then repl.(i) <- root repl.(i)
    done;
    let sub s = if repl.(sig_int s) >= 0 then
        N.signal_of_int nl repl.(sig_int s) else s in
    for i = 0 to n - 1 do
      let s = N.signal_of_int nl i in
      match N.cell_of nl s with
      | N.Input | N.Const _ -> ()
      | N.Not a -> N.set_cell nl s (N.Not (sub a))
      | N.And (a, b) -> N.set_cell nl s (N.And (sub a, sub b))
      | N.Or (a, b) -> N.set_cell nl s (N.Or (sub a, sub b))
      | N.Xor (a, b) -> N.set_cell nl s (N.Xor (sub a, sub b))
      | N.Mux (c, a, b) -> N.set_cell nl s (N.Mux (sub c, sub a, sub b))
      | N.Eq (a, b) -> N.set_cell nl s (N.Eq (sub a, sub b))
      | N.Lt (a, b) -> N.set_cell nl s (N.Lt (sub a, sub b))
      | N.Add (a, b) -> N.set_cell nl s (N.Add (sub a, sub b))
      | N.Sub (a, b) -> N.set_cell nl s (N.Sub (sub a, sub b))
      | N.Shl (a, k) -> N.set_cell nl s (N.Shl (sub a, k))
      | N.Shr (a, k) -> N.set_cell nl s (N.Shr (sub a, k))
      | N.Slice (a, lo) -> N.set_cell nl s (N.Slice (sub a, lo))
      | N.Concat (a, b) -> N.set_cell nl s (N.Concat (sub a, sub b))
      | N.Reg r ->
          (match r.N.d with Some d -> r.N.d <- Some (sub d) | None -> ());
          (match r.N.en with Some e -> r.N.en <- Some (sub e) | None -> ())
      | N.Mem_read (m, a) -> N.set_cell nl s (N.Mem_read (m, sub a))
    done;
    List.iter
      (fun m ->
        N.set_mem_writes m
          (List.map
             (fun (wen, addr, data) -> (sub wen, sub addr, sub data))
             (N.mem_writes m)))
      (N.mems nl);
    !found
  end

(* ---- fusion of single-use shift/slice chains ------------------------- *)

let use_counts nl =
  let n = N.num_signals nl in
  let uses = Array.make (max n 1) 0 in
  let touch s = uses.(sig_int s) <- uses.(sig_int s) + 1 in
  for i = 0 to n - 1 do
    match N.cell_of nl (N.signal_of_int nl i) with
    | N.Reg r ->
        (match r.N.d with Some d -> touch d | None -> ());
        (match r.N.en with Some e -> touch e | None -> ())
    | c -> List.iter touch (N.deps c)
  done;
  List.iter
    (fun m ->
      List.iter
        (fun (wen, addr, data) -> touch wen; touch addr; touch data)
        (N.mem_writes m))
    (N.mems nl);
  uses

(* Composes nested shifts and slices when the inner cell is unnamed and has
   exactly one user, so the chain collapses to a single cell once DCE runs.
   Slice-of-shift is only fused when the composed [lo] still fits inside
   the source signal — [set_cell] bypasses the builder's bound check and
   downstream tooling assumes in-range slices. *)
let pass_fuse nl =
  let n = N.num_signals nl in
  let total = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let uses = use_counts nl in
    let fusable inner =
      uses.(sig_int inner) = 1 && N.name_of nl inner = ""
    in
    for i = 0 to n - 1 do
      let s = N.signal_of_int nl i in
      let w = N.width_of nl s in
      let rewrite c = N.set_cell nl s c; incr total; changed := true in
      match N.cell_of nl s with
      | N.Slice (inner, l2) when fusable inner -> (
          match N.cell_of nl inner with
          | N.Slice (x, l1) -> rewrite (N.Slice (x, l1 + l2))
          | N.Shr (x, k) when k + l2 + w <= N.width_of nl x ->
              rewrite (N.Slice (x, k + l2))
          | _ -> ())
      | N.Shr (inner, k2) when fusable inner -> (
          match N.cell_of nl inner with
          | N.Shr (x, k1) ->
              if k1 + k2 >= Sys.int_size then rewrite (N.Const 0)
              else rewrite (N.Shr (x, k1 + k2))
          | _ -> ())
      | N.Shl (inner, k2) when fusable inner -> (
          match N.cell_of nl inner with
          | N.Shl (x, k1) ->
              if k1 + k2 >= Sys.int_size then rewrite (N.Const 0)
              else rewrite (N.Shl (x, k1 + k2))
          | _ -> ())
      | _ -> ()
    done
  done;
  !total

(* ---- dead-cell elimination ------------------------------------------- *)

(* Roots: every named cell (the observable surface — VCD, provenance and
   [peek]-based tests address signals by name), every input and register
   (inputs are driven externally; registers are architectural state), and
   every memory write port.  Unnamed combinational cells unreachable from
   a root are rewritten to [Const 0], which removes them from the engines'
   execution schedule while keeping signal numbering intact. *)
let pass_dce nl =
  let n = N.num_signals nl in
  let live = Array.make (max n 1) false in
  let rec mark s =
    let i = sig_int s in
    if not live.(i) then begin
      live.(i) <- true;
      match N.cell_of nl s with
      | N.Reg r ->
          (match r.N.d with Some d -> mark d | None -> ());
          (match r.N.en with Some e -> mark e | None -> ())
      | c -> List.iter mark (N.deps c)
    end
  in
  for i = 0 to n - 1 do
    let s = N.signal_of_int nl i in
    match N.cell_of nl s with
    | N.Input | N.Reg _ -> mark s
    | _ -> if N.name_of nl s <> "" then mark s
  done;
  List.iter
    (fun m ->
      List.iter
        (fun (wen, addr, data) -> mark wen; mark addr; mark data)
        (N.mem_writes m))
    (N.mems nl);
  let removed = ref 0 in
  for i = 0 to n - 1 do
    if not live.(i) then begin
      let s = N.signal_of_int nl i in
      match N.cell_of nl s with
      | N.Const _ -> ()
      | _ -> N.set_cell nl s (N.Const 0); incr removed
    end
  done;
  !removed

(* ---- driver ----------------------------------------------------------- *)

let pass_fn = function
  | "const-fold" -> pass_const_fold
  | "alias" -> pass_alias
  | "fuse" -> pass_fuse
  | "dce" -> pass_dce
  | name -> invalid_arg ("Passes.run: unknown pass " ^ name)

let run ?(passes = default_passes) src =
  List.iter (fun p -> ignore (pass_fn p : N.t -> int)) passes;
  let nl = N.copy src in
  let cells_before = comb_cells nl in
  let stats_rev = ref [] in
  let run_one name =
    let before = comb_cells nl in
    let rewrites = (pass_fn name) nl in
    Metrics.incr m_passes_run;
    stats_rev :=
      { ps_name = name; ps_cells_before = before;
        ps_cells_after = comb_cells nl; ps_rewrites = rewrites }
      :: !stats_rev;
    rewrites
  in
  (* The simplification passes feed each other (an alias can expose a new
     constant operand, a fold can expose a new alias), so the non-DCE
     prefix iterates to a fixpoint; DCE runs once at the end since nothing
     here resurrects a dead cell. *)
  let simplify = List.filter (fun p -> p <> "dce") passes in
  let rounds = ref 0 in
  let again = ref (simplify <> []) in
  while !again && !rounds < 8 do
    incr rounds;
    again := List.fold_left (fun acc p -> run_one p + acc) 0 simplify > 0
  done;
  if List.mem "dce" passes then ignore (run_one "dce");
  N.validate nl;
  let cells_after = comb_cells nl in
  if cells_before > cells_after then
    Metrics.incr ~by:(cells_before - cells_after) m_eliminated;
  ( nl,
    { st_passes = List.rev !stats_rev;
      st_cells_before = cells_before;
      st_cells_after = cells_after } )

let optimize nl = fst (run nl)

let pp_stats ppf st =
  Format.fprintf ppf "combinational cells: %d -> %d (%d eliminated)@,"
    st.st_cells_before st.st_cells_after
    (st.st_cells_before - st.st_cells_after);
  List.iter
    (fun ps ->
      Format.fprintf ppf "  %-12s cells %4d -> %4d  rewrites %d@," ps.ps_name
        ps.ps_cells_before ps.ps_cells_after ps.ps_rewrites)
    st.st_passes
