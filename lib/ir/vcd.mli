(** Value Change Dump (VCD) waveform output for the circuit simulator.

    Developers pinpoint reported transient-execution bugs from simulation
    waveforms (§7: "developers usually only need simulation waveform files
    to pinpoint bugs"); this writer produces standard IEEE 1364 VCD that any
    waveform viewer opens.  Signals are grouped into scopes by their module
    tags, and a {!Dvz_ift}-driven dump can emit each signal's taint shadow
    as a sibling [_t] signal. *)

type t

val create :
  ?signals:Netlist.signal list ->
  out:Buffer.t ->
  Netlist.t ->
  t
(** [create ~out nl] prepares a dump of all named signals of [nl] (or the
    explicit [signals] list) into [out], writing the header immediately.
    Unnamed intermediate cells are omitted. *)

val sample : t -> (Netlist.signal -> int) -> unit
(** [sample t read] records the current cycle's values via [read] (e.g.
    [Sim.peek sim]); only changed signals are dumped, per the format. *)

val finish : t -> unit
(** Writes the final timestamp. *)

val dump_simulation :
  ?engine:Sim.engine -> ?opt:bool ->
  Netlist.t -> cycles:int -> drive:(Sim.t -> int -> unit) -> string
(** Convenience: simulate [cycles] cycles of a fresh {!Sim} (built with
    [engine], default [`Compiled]), calling [drive sim cycle] before each
    evaluation, and return the VCD text.  Both engines produce identical
    waveforms.  [opt] (default [false]) optimizes the netlist first; the
    passes preserve every named signal, so the VCD signal list and
    waveforms are unchanged (the dump remains byte-identical). *)
