(** Codecs for the opaque payloads inside {!Proto} frames.

    Coordinator and workers are the same executable, so payloads travel
    as [Marshal] bytes wrapped with a wire version and a kind tag;
    decoding returns [Error] (never raises) on damaged, mistagged or
    cross-version payloads.  Everything here is plain data — plans carry
    their own pre-split RNGs, the spec carries raw budget limits — which
    is what lets a campaign be re-executed remotely, or re-assigned
    after a worker death, with byte-identical results. *)

val wire_version : int

(** Everything a worker needs to rebuild an {!Dejavuzz.Executor.ctx}:
    the campaign's immutable inputs plus raw watchdog limits (the opaque
    [Dualcore.budget] is reconstructed worker-side). *)
type spec = {
  w_cfg : Dvz_uarch.Config.t;
  w_style : [ `Derived | `Random ];
  w_taint_mode : Dvz_ift.Policy.mode;
  w_secret : int array;
  w_fault_plan : Dvz_resilience.Fault.plan;
  w_max_slots : int option;
  w_max_wall_s : float option;
  w_jobs : int;  (** domains each worker uses for its shard *)
  w_heartbeat_s : float;  (** heartbeat send interval *)
  w_profile : bool;  (** arm the worker's self-profiler *)
  w_trace : bool;  (** additionally record trace events for the merged
                       Chrome trace *)
}

val spec_to_string : spec -> string
val spec_of_string : string -> (spec, string) result

val plans_to_string : Dejavuzz.Scheduler.plan list -> string
val plans_of_string : string -> (Dejavuzz.Scheduler.plan list, string) result

val outcome_to_string : Dejavuzz.Executor.outcome -> string
(** Strips the simulation log and window records first — executor-side
    detail the fold never reads — so outcomes stay small on the wire. *)

val outcome_of_string : string -> (Dejavuzz.Executor.outcome, string) result

(** One telemetry flush, shipped inside a {!Proto.msg.Telemetry} frame.
    [tb_metrics] and [tb_profile] are cumulative since process start
    (ingest keeps the latest batch per incarnation — last-wins, so a
    lost flush never double counts); [tb_trace] and [tb_events] are
    deltas since the previous flush (ingest appends).  [tb_seq] counts
    flushes; the [_dropped] fields report worker-side overflow of the
    bounded trace buffer / event queue. *)
type telemetry_batch = {
  tb_seq : int;
  tb_metrics : Dvz_obs.Metrics.snapshot;
  tb_profile : Dvz_obs.Profile.entry list;
  tb_trace : Dvz_obs.Profile.event list;
  tb_trace_dropped : int;
  tb_events : string list;
  tb_events_dropped : int;
}

val telemetry_to_string : telemetry_batch -> string
val telemetry_of_string : string -> (telemetry_batch, string) result
