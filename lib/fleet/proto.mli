(** The fleet's coordinator/worker wire protocol.

    Length-prefixed binary frames over pipes:

    {v
    offset  size
    0       4     magic "DVZF"
    4       1     protocol version
    5       1     message kind tag
    6       4     payload length   (big-endian)
    10      4     payload CRC-32   (big-endian)
    14      len   payload
    v}

    Opaque payloads ([Config]/[Assign]/[Outcome] carry {!Wire}-encoded
    values) travel as length-prefixed strings inside the frame payload;
    everything else is 8-byte big-endian integers.  Validation is
    layered — magic, version, kind, length cap, CRC, then per-kind field
    decoding — and each layer failing yields a distinct {!error} rather
    than an exception.  A {!reader} that has reported an error stays
    poisoned: a corrupt pipe has no trustworthy frame boundaries left,
    so the supervisor's only correct move is to drop the peer. *)

val version : int
val header_len : int
val max_payload : int

type msg =
  | Hello of { h_worker : int; h_pid : int; h_clock_us : int }
      (** first frame a worker sends: its slot, OS pid and its wall
          clock in microseconds at send time — the coordinator aligns
          the worker's trace timestamps onto its own axis from the
          offset observed here *)
  | Config of { c_payload : string }
      (** coordinator → worker: {!Wire.spec_to_string} of the campaign
          spec; sent once per worker lifetime, before any assignment *)
  | Assign of { a_epoch : int; a_payload : string }
      (** coordinator → worker: {!Wire.plans_to_string} of a shard of
          one batch's plans *)
  | Heartbeat of { b_worker : int; b_done : int }
      (** worker → coordinator, periodic: total outcomes produced *)
  | Outcome of { o_worker : int; o_epoch : int; o_iteration : int;
                 o_payload : string }
      (** worker → coordinator: {!Wire.outcome_to_string} of one
          executed plan — the corpus-delta stream the fold consumes *)
  | Finding of { f_worker : int; f_iteration : int; f_classes : int }
      (** worker → coordinator: advisory live-finding signal for the
          fleet board; the authoritative dedup happens in the fold *)
  | Checkpoint of { k_iteration : int }
      (** coordinator → workers: a checkpoint at this cursor was durably
          written *)
  | Checkpoint_ack of { k_worker : int; k_iteration : int }
      (** worker → coordinator: acknowledges the checkpoint cursor *)
  | Shutdown  (** coordinator → worker: drain and exit cleanly *)
  | Telemetry of { t_worker : int; t_incarnation : int; t_payload : string }
      (** worker → coordinator, on the heartbeat cadence and at
          shutdown: {!Wire.telemetry_to_string} of the worker's
          cumulative metrics snapshot, profiler aggregates, trace-event
          delta and buffered event lines.  [t_incarnation] is the spawn
          generation the coordinator launched this worker under; frames
          from a stale incarnation (a respawned slot's predecessor) are
          ignored at ingest. *)

val kind_name : msg -> string

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Oversized of int
  | Crc_mismatch
  | Bad_payload of string  (** kind name whose fields failed to decode *)

val error_message : error -> string

val encode : msg -> string
(** The full frame (header + payload) for one message.  Raises
    [Invalid_argument] if the payload exceeds {!max_payload}. *)

type reader
(** Incremental frame reassembler for one pipe. *)

val reader : unit -> reader

val feed : reader -> bytes -> int -> int -> unit
(** [feed r buf off len] appends [len] bytes — partial reads and
    batched frames both welcome. *)

val feed_string : reader -> string -> unit

val next : reader -> (msg option, error) result
(** [Ok (Some msg)] peels one complete frame off the front (counted in
    [dvz_fleet_frames_total]); [Ok None] means more bytes are needed;
    [Error _] means the stream is corrupt and the reader is poisoned —
    every later call returns the same error. *)

val buffered : reader -> int
(** Bytes currently awaiting reassembly. *)
