(** The coordinator's per-slot telemetry aggregation state.

    Workers flush {!Proto.msg.Telemetry} frames on the heartbeat
    cadence; the coordinator ingests them here, labelled by worker slot
    and incarnation, and observers read the merged views: one
    [worker="N"] Prometheus label group per slot, merged
    coordinator+worker profiles, clock-aligned trace groups for the
    merged Chrome trace, and per-slot health for [/fleet].

    Frames stamped with an incarnation other than the slot's current
    one (a SIGKILLed predecessor's last flush still in the pipe) are
    counted and dropped.  Within an incarnation the cumulative
    metrics/profile payloads are last-wins; retired incarnations' final
    batches are folded in via {!Dvz_obs.Metrics.merge} and
    {!Dvz_obs.Profile.merge}, so slot aggregates survive respawns
    without double counting.

    All operations are mutex-protected and touched only on frame
    arrival or observer reads — never on the campaign's fold path, so
    telemetry cannot perturb campaign results. *)

type t

val create :
  ?clock:Dvz_obs.Clock.t ->
  ?events:Dvz_obs.Events.sink ->
  ?trace_cap:int ->
  unit ->
  t
(** [events] (default null) receives each worker event line with
    [wslot]/[winc] context spliced in — wire it to the [/events] ring.
    [trace_cap] (default 262144) bounds retained trace events per slot;
    overflow is counted, not grown. *)

val hello : t -> slot:int -> incarnation:int -> pid:int -> clock_us:int -> unit
(** A worker announced itself: record its generation, pid, and the
    clock offset (coordinator now minus the worker's [clock_us]) used
    to shift its trace events onto the coordinator's time axis. *)

val heartbeat : t -> slot:int -> done_count:int -> unit
(** Records the heartbeat arrival: inter-arrival interval into the
    slot's [dvz_fleet_heartbeat_interval_seconds] histogram, last-seen,
    and the worker's cumulative iteration count. *)

val seen : t -> slot:int -> unit
(** Bumps the slot's last-seen timestamp (called on any frame). *)

val record_restart : t -> slot:int -> reason:string -> unit
(** The slot's worker died: fold its current incarnation's final batch
    into the retired aggregates, advance the expected incarnation (so
    in-flight frames from the dead generation drop as stale), and
    append to the restart timeline. *)

val ingest : t -> slot:int -> incarnation:int -> Wire.telemetry_batch -> bool
(** Ingest one flush.  Returns [false] (and counts it) when the frame's
    incarnation is stale; otherwise stores the batch last-wins, appends
    its clock-shifted trace delta, replays its event lines into the
    [events] sink, and returns [true]. *)

val stale_frames : t -> int

val worker_metrics : t -> (int * Dvz_obs.Metrics.snapshot) list
(** Per slot (ascending): the worker's latest cumulative snapshot,
    merged across retired incarnations and with the coordinator-side
    per-slot series (heartbeat intervals, batch/stale counters). *)

val worker_profiles : t -> (int * Dvz_obs.Profile.entry list) list

val merged_profile : t -> Dvz_obs.Profile.entry list
(** All slots' profiles folded into one (the caller merges in the
    coordinator's own). *)

val trace_groups : t -> (int * string * Dvz_obs.Profile.event list) list
(** Per-slot [(pid, process_name, events)] groups for
    {!Dvz_obs.Trace_event.to_json_multi}: pid [slot + 2] (pid 1 is the
    coordinator), events shifted onto the coordinator's clock and
    start-sorted.  Slots with no trace are omitted. *)

val health_json : t -> Dvz_obs.Json.t
(** [{"stale_frames": ..., "workers": [...]}] — per-slot incarnation,
    pid, iterations, last-seen, heartbeat stats, batch/stale counts,
    trace totals and the restart timeline, for [/fleet]. *)
