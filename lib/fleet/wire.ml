(* Payload codecs for the opaque strings carried inside {!Proto} frames.

   Values cross the pipe with [Marshal]: coordinator and workers are
   always the same executable (the worker entrypoint is a hidden
   subcommand), so representation compatibility is guaranteed, and the
   frame CRC already rejects bit damage.  Each payload is wrapped as
   [(wire_version, tag, value)] so a build mismatch or a cross-kind mixup
   is caught by an explicit check instead of a segfault deep in the
   runtime. *)

module Config = Dvz_uarch.Config
module Scheduler = Dejavuzz.Scheduler
module Executor = Dejavuzz.Executor

let wire_version = 1

type spec = {
  w_cfg : Config.t;
  w_style : [ `Derived | `Random ];
  w_taint_mode : Dvz_ift.Policy.mode;
  w_secret : int array;
  w_fault_plan : Dvz_resilience.Fault.plan;
  w_max_slots : int option;
  w_max_wall_s : float option;
  w_jobs : int;
  w_heartbeat_s : float;
  w_profile : bool;
  w_trace : bool;
}

let pack tag v = Marshal.to_string (wire_version, tag, v) []

let unpack : type a. string -> string -> (a, string) result =
 fun tag s ->
  match (Marshal.from_string s 0 : int * string * a) with
  | exception _ -> Error (Printf.sprintf "%s payload does not unmarshal" tag)
  | v, t, _ when v <> wire_version || t <> tag ->
      Error
        (Printf.sprintf
           "%s payload has wire version %d tag %S (this build speaks v%d)"
           tag v t wire_version)
  | _, _, value -> Ok value

let spec_to_string (s : spec) = pack "spec" s
let spec_of_string s : (spec, string) result = unpack "spec" s

let plans_to_string (ps : Scheduler.plan list) = pack "plans" ps
let plans_of_string s : (Scheduler.plan list, string) result = unpack "plans" s

(* The taint log and window records of a dual-DUT run dominate an
   outcome's size and are only consumed executor-side (the oracle has
   already distilled them into [a_leaks]/[a_attack]); the coordinator's
   fold reads [r_slots] and the scalar counters.  Strip them before the
   wire so an assignment's worth of outcomes stays in the tens of
   kilobytes. *)
let slim (o : Executor.outcome) =
  match o.Executor.oc_analysis with
  | None -> o
  | Some a ->
      let r = a.Dejavuzz.Oracle.a_result in
      { o with
        Executor.oc_analysis =
          Some
            { a with
              Dejavuzz.Oracle.a_result =
                { r with
                  Dvz_uarch.Dualcore.r_log = [];
                  r_windows_a = [];
                  r_windows_b = [] } } }

let outcome_to_string (o : Executor.outcome) = pack "outcome" (slim o)
let outcome_of_string s : (Executor.outcome, string) result =
  unpack "outcome" s

(* One telemetry flush.  Metrics and profile aggregates are CUMULATIVE
   since the worker process started — the coordinator keeps only the
   latest batch per (slot, incarnation), so a lost flush costs staleness
   for one heartbeat, never double counting.  Trace events and event
   lines are DELTAS (a cursor-suffix read / a drained queue): the
   coordinator appends them, and a flush lost with its process loses
   only that window's events. *)
type telemetry_batch = {
  tb_seq : int;
  tb_metrics : Dvz_obs.Metrics.snapshot;
  tb_profile : Dvz_obs.Profile.entry list;
  tb_trace : Dvz_obs.Profile.event list;
  tb_trace_dropped : int;
  tb_events : string list;
  tb_events_dropped : int;
}

let telemetry_to_string (b : telemetry_batch) = pack "telemetry" b
let telemetry_of_string s : (telemetry_batch, string) result =
  unpack "telemetry" s
