(** The fleet supervisor: one coordinator process, N worker subprocesses.

    The coordinator runs the ordinary {!Dejavuzz.Campaign.run} engine
    and owns its entire fold (corpus, coverage, finding dedup,
    checkpoints, events); workers are stateless plan executors reached
    through the {!Proto} pipe protocol.  Each batch's plans are sharded
    across live workers; plans are plain data with pre-split RNGs, so a
    shard orphaned by a worker death is simply re-executed — by a
    backoff-respawned replacement, a surviving worker, or (once every
    slot has exhausted its respawn budget) inline in the coordinator.
    Outcomes are folded in plan-index order once the batch is complete,
    which makes fleet output byte-identical to a single-process
    [--jobs 1] run regardless of worker deaths: the determinism
    contract CI gates on.

    Failure detection is layered: pipe EOF / [EPIPE] / protocol
    corruption condemn a worker immediately; a heartbeat silence past
    [fl_deadline_s] (SIGSTOP, livelock) draws a SIGKILL first.  Every
    death returns the worker's outstanding plans to the pool and counts
    toward [dvz_fleet_worker_restarts_total]. *)

type opts = {
  fl_workers : int;  (** fleet size; 0 = coordinator executes everything *)
  fl_worker_jobs : int;  (** domains each worker spends on its shard *)
  fl_heartbeat_s : float;  (** worker heartbeat send interval *)
  fl_deadline_s : float;
      (** declare a live worker dead after this much silence; [0.] never *)
  fl_max_respawns : int;  (** deaths allowed per slot before retirement *)
  fl_backoff_base_s : float;  (** respawn backoff: base delay *)
  fl_backoff_cap_s : float;  (** respawn backoff: cap *)
  fl_chaos : (int * int * int) list;
      (** fault-injection hooks for tests/CI: [(epoch, slot, signal)] —
          send [signal] to [slot]'s process right after the epoch's
          initial assignment *)
  fl_profile : bool;
      (** arm each worker's profiler; aggregates ride telemetry frames *)
  fl_trace : bool;  (** also record per-worker trace events *)
  fl_log : string -> unit;  (** lifecycle log lines (default stderr) *)
  fl_launch :
    (slot:int -> incarnation:int -> int * Unix.file_descr * Unix.file_descr)
    option;
      (** test seam: spawn a worker, returning
          [(pid, to_worker_fd, from_worker_fd)]; default re-execs this
          binary as [dejavuzz worker --slot K --incarnation G].
          [incarnation] is the slot's spawn generation (its death count)
          and must be echoed in the worker's [Telemetry] frames *)
}

val default_opts : opts
(** 4 workers, 1 domain each, 1s heartbeats, 10s deadline, 5 respawns
    per slot, 0.5s–30s backoff, no chaos, stderr logging. *)

type fleet_stats = {
  fs_workers : int;
  fs_spawns : int;  (** worker processes launched, initial spawns included *)
  fs_restarts : int;  (** respawns scheduled after a death *)
  fs_retired : int;  (** slots that exhausted their respawn budget *)
  fs_heartbeats_missed : int;
  fs_inline_plans : int;  (** plans the coordinator executed itself *)
}

(** {2 Live fleet board} — the [/fleet] endpoint's snapshot feed,
    mirroring {!Dejavuzz.Campaign.board}. *)

type worker_row = {
  fw_slot : int;
  fw_pid : int;  (** 0 unless live *)
  fw_state : string;  (** ["live"] / ["backoff"] / ["retired"] *)
  fw_restarts : int;
  fw_done : int;  (** outcomes produced across all incarnations *)
  fw_last_rx_age_s : float;  (** seconds since the last frame, if live *)
  fw_acked_iteration : int;  (** newest checkpoint cursor acknowledged *)
}

type snapshot = {
  fb_epoch : int;
  fb_workers : worker_row list;
  fb_restarts : int;
  fb_retired : int;
  fb_heartbeats_missed : int;
  fb_inline_plans : int;
}

type board

val new_board : unit -> board
val board_read : board -> snapshot option
val snapshot_json : snapshot -> Dvz_obs.Json.t

val run :
  ?telemetry:Dejavuzz.Campaign.telemetry ->
  ?resilience:Dejavuzz.Campaign.resilience ->
  ?board:board ->
  ?plane:Telemetry.t ->
  ?budget_limits:int option * float option ->
  opts ->
  Dvz_uarch.Config.t ->
  Dejavuzz.Campaign.options ->
  Dejavuzz.Campaign.stats * fleet_stats
(** Runs the campaign on a supervised fleet.  [plane], when given,
    receives every worker's telemetry: Hello handshakes (clock
    alignment), heartbeats, and [Telemetry] frame ingestion, including
    a final drain of each pipe after Shutdown so the workers' last
    flushes land before the fds close.  Telemetry is observation-only
    and never feeds the campaign fold, so output stays byte-identical
    to [--jobs 1] with or without it.  [budget_limits] is the
    raw [(max_slots, max_wall_s)] pair behind [resilience.rz_budget]
    (the opaque budget cannot be serialized, so workers rebuild it from
    these).  Forces [rz_checkpoint_keep] on, and when [rz_resume] names
    a checkpoint that fails validation ({!Dejavuzz.Campaign.Bad_checkpoint})
    but a [.prev] rotation exists, falls back to it once.  Ignores
    [SIGPIPE].  Workers are always shut down (Shutdown frame, then
    SIGKILL after a grace period) on any exit, including exceptions. *)
