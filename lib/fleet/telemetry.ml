(* The coordinator's half of the fleet telemetry plane.

   Workers flush [Telemetry] frames on their heartbeat cadence; this
   module turns them into a per-slot aggregate the observers read:
   worker-labelled metrics groups for /metrics and the JSON exporter,
   merged profiles for --profile, clock-aligned trace events for the
   merged Chrome trace, per-slot health (heartbeat-interval histogram,
   restart timeline, last-seen, iterations) for /fleet and /status.

   Incarnations make respawns safe: each slot's spawn generation is
   stamped into every frame its worker sends, and a frame whose
   incarnation is not the slot's current one is counted and dropped —
   a SIGKILLed predecessor whose last flush was still in the pipe
   cannot pollute its successor's aggregates.  Within an incarnation
   the metrics/profile payloads are cumulative, so ingest is last-wins;
   across incarnations the retired generations' final batches are
   summed (via {!Dvz_obs.Metrics.merge}/{!Dvz_obs.Profile.merge}) so a
   slot's series reflect everything its workers ever did.

   Everything here is observation: nothing the campaign folds into
   results ever reads this state, which is what keeps fleet output
   byte-identical to --jobs 1 regardless of telemetry traffic. *)

module Metrics = Dvz_obs.Metrics
module Profile = Dvz_obs.Profile
module Events = Dvz_obs.Events
module Clock = Dvz_obs.Clock
module Json = Dvz_obs.Json

type slot_state = {
  ss_slot : int;
  ss_reg : Metrics.t;
      (* coordinator-side per-slot series (heartbeat intervals, batch
         counts, ...) — merged into the slot's label group *)
  ss_hb_interval : Metrics.histogram;
  ss_batches : Metrics.counter;
  ss_stale : Metrics.counter;
  mutable ss_incarnation : int;
  mutable ss_pid : int;
  mutable ss_clock_offset_s : float;  (* coordinator now - worker clock *)
  mutable ss_last_seen : float;       (* coordinator clock, any frame *)
  mutable ss_hb_last : float;         (* arrival of the last heartbeat *)
  mutable ss_done : int;              (* iterations per last heartbeat *)
  mutable ss_current : Wire.telemetry_batch option;  (* this incarnation *)
  mutable ss_retired_metrics : Metrics.snapshot;  (* Σ dead incarnations *)
  mutable ss_retired_profile : Profile.entry list;
  mutable ss_trace : Profile.event list;  (* shifted, newest first *)
  mutable ss_trace_len : int;
  mutable ss_trace_dropped : int;     (* coordinator-side cap overflow *)
  mutable ss_restarts : (float * string) list;  (* newest first *)
}

type t = {
  p_clock : Clock.t;
  p_mutex : Mutex.t;
  p_slots : (int, slot_state) Hashtbl.t;
  p_events : Events.sink;
  p_trace_cap : int;  (* per-slot retained trace events *)
  p_started : float;
  mutable p_stale_total : int;
}

let create ?(clock = Clock.real) ?(events = Events.null)
    ?(trace_cap = 262_144) () =
  { p_clock = clock;
    p_mutex = Mutex.create ();
    p_slots = Hashtbl.create 8;
    p_events = events;
    p_trace_cap = trace_cap;
    p_started = Clock.now clock;
    p_stale_total = 0 }

let locked t f =
  Mutex.lock t.p_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.p_mutex) f

let slot_state t slot =
  match Hashtbl.find_opt t.p_slots slot with
  | Some ss -> ss
  | None ->
      let reg = Metrics.create ~clock:t.p_clock () in
      let ss =
        { ss_slot = slot;
          ss_reg = reg;
          ss_hb_interval =
            Metrics.histogram reg
              ~help:"Seconds between heartbeat arrivals from this worker"
              "dvz_fleet_heartbeat_interval_seconds";
          ss_batches =
            Metrics.counter reg
              ~help:"Telemetry batches ingested from this worker slot"
              "dvz_fleet_telemetry_batches_total";
          ss_stale =
            Metrics.counter reg
              ~help:
                "Telemetry frames dropped because they carried a stale \
                 incarnation"
              "dvz_fleet_telemetry_stale_total";
          ss_incarnation = 0;
          ss_pid = 0;
          ss_clock_offset_s = 0.0;
          ss_last_seen = Clock.now t.p_clock;
          ss_hb_last = nan;
          ss_done = 0;
          ss_current = None;
          ss_retired_metrics = Metrics.empty_snapshot;
          ss_retired_profile = [];
          ss_trace = [];
          ss_trace_len = 0;
          ss_trace_dropped = 0;
          ss_restarts = [] }
      in
      Hashtbl.replace t.p_slots slot ss;
      ss

let seen t ~slot =
  locked t (fun () ->
      (slot_state t slot).ss_last_seen <- Clock.now t.p_clock)

let hello t ~slot ~incarnation ~pid ~clock_us =
  locked t (fun () ->
      let ss = slot_state t slot in
      let now = Clock.now t.p_clock in
      ss.ss_incarnation <- incarnation;
      ss.ss_pid <- pid;
      ss.ss_clock_offset_s <- now -. (float_of_int clock_us /. 1e6);
      ss.ss_last_seen <- now;
      ss.ss_hb_last <- nan)

let heartbeat t ~slot ~done_count =
  locked t (fun () ->
      let ss = slot_state t slot in
      let now = Clock.now t.p_clock in
      if not (Float.is_nan ss.ss_hb_last) then
        Metrics.observe ss.ss_hb_interval (now -. ss.ss_hb_last);
      ss.ss_hb_last <- now;
      ss.ss_last_seen <- now;
      ss.ss_done <- done_count)

(* The slot's worker died: its current incarnation will never flush
   again, so fold its final cumulative batch into the retired sums and
   log the restart.  The successor's frames carry a new incarnation. *)
let record_restart t ~slot ~reason =
  locked t (fun () ->
      let ss = slot_state t slot in
      (match ss.ss_current with
      | None -> ()
      | Some b ->
          ss.ss_retired_metrics <-
            Metrics.merge ss.ss_retired_metrics b.Wire.tb_metrics;
          ss.ss_retired_profile <-
            Profile.merge ss.ss_retired_profile b.Wire.tb_profile;
          ss.ss_current <- None);
      (* Match the coordinator's restart counter so any frame of the dead
         generation still in flight is stale from this point on, even
         before the successor's Hello re-announces the slot. *)
      ss.ss_incarnation <- ss.ss_incarnation + 1;
      ss.ss_restarts <-
        (Clock.now t.p_clock -. t.p_started, reason) :: ss.ss_restarts)

let ingest t ~slot ~incarnation (batch : Wire.telemetry_batch) =
  let replay =
    locked t (fun () ->
        let ss = slot_state t slot in
        let now = Clock.now t.p_clock in
        ss.ss_last_seen <- now;
        if incarnation <> ss.ss_incarnation then begin
          Metrics.incr ss.ss_stale;
          t.p_stale_total <- t.p_stale_total + 1;
          None
        end
        else begin
          Metrics.incr ss.ss_batches;
          ss.ss_current <- Some batch;
          (* Trace deltas append, shifted onto the coordinator's clock
             and capped per slot. *)
          List.iter
            (fun ev ->
              if ss.ss_trace_len >= t.p_trace_cap then
                ss.ss_trace_dropped <- ss.ss_trace_dropped + 1
              else begin
                ss.ss_trace <-
                  { ev with
                    Profile.ev_start =
                      ev.Profile.ev_start +. ss.ss_clock_offset_s }
                  :: ss.ss_trace;
                ss.ss_trace_len <- ss.ss_trace_len + 1
              end)
            batch.Wire.tb_trace;
          Some
            (Events.with_context t.p_events
               [ ("wslot", Json.Int slot); ("winc", Json.Int incarnation) ])
        end)
  in
  (* Event lines replay outside the plane lock: ring sinks have their
     own, and a slow sink must not stall frame handling for other
     slots' state readers. *)
  match replay with
  | None -> false
  | Some sink ->
      List.iter (Events.emit_rendered sink) batch.Wire.tb_events;
      true

let stale_frames t = locked t (fun () -> t.p_stale_total)

let merged_slot_metrics ss =
  let base =
    match ss.ss_current with
    | None -> ss.ss_retired_metrics
    | Some b -> Metrics.merge ss.ss_retired_metrics b.Wire.tb_metrics
  in
  Metrics.merge base (Metrics.snapshot ss.ss_reg)

let merged_slot_profile ss =
  match ss.ss_current with
  | None -> ss.ss_retired_profile
  | Some b -> Profile.merge ss.ss_retired_profile b.Wire.tb_profile

let sorted_slots t =
  Hashtbl.fold (fun _ ss acc -> ss :: acc) t.p_slots []
  |> List.sort (fun a b -> compare a.ss_slot b.ss_slot)

let worker_metrics t =
  locked t (fun () ->
      List.map (fun ss -> (ss.ss_slot, merged_slot_metrics ss))
        (sorted_slots t))

let worker_profiles t =
  locked t (fun () ->
      List.map (fun ss -> (ss.ss_slot, merged_slot_profile ss))
        (sorted_slots t))

let merged_profile t =
  List.fold_left
    (fun acc (_, p) -> Profile.merge acc p)
    [] (worker_profiles t)

let trace_groups t =
  locked t (fun () ->
      List.filter_map
        (fun ss ->
          if ss.ss_trace = [] then None
          else
            Some
              ( (* pid 1 is the coordinator's group in the merged trace *)
                ss.ss_slot + 2,
                Printf.sprintf "dejavuzz worker %d" ss.ss_slot,
                List.sort
                  (fun a b ->
                    compare
                      (a.Profile.ev_start, a.Profile.ev_tid)
                      (b.Profile.ev_start, b.Profile.ev_tid))
                  ss.ss_trace ))
        (sorted_slots t))

let slot_json t ss =
  let now = Clock.now t.p_clock in
  let hb = Metrics.histogram_count ss.ss_hb_interval in
  let hb_mean =
    if hb = 0 then 0.0 else Metrics.histogram_sum ss.ss_hb_interval /. float_of_int hb
  in
  Json.Obj
    [ ("slot", Json.Int ss.ss_slot);
      ("incarnation", Json.Int ss.ss_incarnation);
      ("pid", Json.Int ss.ss_pid);
      ("iterations", Json.Int ss.ss_done);
      ("last_seen_s", Json.Float (now -. ss.ss_last_seen));
      ("heartbeats", Json.Int hb);
      ("heartbeat_mean_s", Json.Float hb_mean);
      ( "telemetry_batches",
        Json.Int (Metrics.counter_value ss.ss_batches) );
      ("stale_frames", Json.Int (Metrics.counter_value ss.ss_stale));
      ("trace_events", Json.Int ss.ss_trace_len);
      ( "trace_dropped",
        Json.Int
          (ss.ss_trace_dropped
          + match ss.ss_current with
            | Some b -> b.Wire.tb_trace_dropped
            | None -> 0) );
      ( "restarts",
        Json.Arr
          (List.rev_map
             (fun (at, reason) ->
               Json.Obj
                 [ ("at_s", Json.Float at); ("reason", Json.Str reason) ])
             ss.ss_restarts) ) ]

let health_json t =
  locked t (fun () ->
      Json.Obj
        [ ("stale_frames", Json.Int t.p_stale_total);
          ("workers", Json.Arr (List.map (slot_json t) (sorted_slots t))) ])
