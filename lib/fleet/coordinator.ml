(* The fleet supervisor.

   One coordinator process owns the entire campaign fold (corpus,
   coverage, dedup, checkpoints, events) by running the ordinary
   {!Dejavuzz.Campaign.run} with a [dispatch] override; N worker
   subprocesses are pure plan executors.  Per batch the dispatcher
   shards the scheduled plans across live workers, collects [Outcome]
   frames into a slot-per-iteration table, and — because plans are plain
   data carrying their own pre-split RNGs — re-executes any shard whose
   worker died, on a respawned worker or ultimately inline.  When every
   slot is filled the outcomes are returned in plan-index order, so the
   fold (and therefore findings, corpus, checkpoints and event logs) is
   byte-identical to a single-process [--jobs 1] run no matter how many
   workers died along the way.

   Failure model, in escalating order:
   - pipe EOF / EPIPE / protocol corruption → worker declared dead
     immediately;
   - heartbeat silence past the deadline (SIGSTOP, livelock, scheduler
     starvation) → SIGKILL, then declared dead;
   - each death returns the worker's outstanding plans to the unassigned
     pool and schedules a respawn after capped exponential backoff
     ({!Dvz_util.Parallel.backoff});
   - a slot exceeding its respawn budget is retired — the fleet shrinks
     and its shard is redistributed to the survivors;
   - with every slot retired, the coordinator executes remaining plans
     inline: graceful degradation all the way down to one process. *)

module Campaign = Dejavuzz.Campaign
module Scheduler = Dejavuzz.Scheduler
module Executor = Dejavuzz.Executor
module Metrics = Dvz_obs.Metrics
module Json = Dvz_obs.Json

let m_restarts =
  Metrics.counter Metrics.default
    ~help:"Fleet workers respawned after a death or missed deadline"
    "dvz_fleet_worker_restarts_total"

let m_hb_missed =
  Metrics.counter Metrics.default
    ~help:"Fleet heartbeat deadlines missed (silent worker killed)"
    "dvz_fleet_heartbeats_missed_total"

type opts = {
  fl_workers : int;
  fl_worker_jobs : int;
  fl_heartbeat_s : float;
  fl_deadline_s : float;
  fl_max_respawns : int;
  fl_backoff_base_s : float;
  fl_backoff_cap_s : float;
  fl_chaos : (int * int * int) list;
  fl_profile : bool;
  fl_trace : bool;
  fl_log : string -> unit;
  fl_launch :
    (slot:int -> incarnation:int -> int * Unix.file_descr * Unix.file_descr)
    option;
}

let default_opts =
  { fl_workers = 4;
    fl_worker_jobs = 1;
    fl_heartbeat_s = 1.0;
    fl_deadline_s = 10.0;
    fl_max_respawns = 5;
    fl_backoff_base_s = 0.5;
    fl_backoff_cap_s = 30.0;
    fl_chaos = [];
    fl_profile = false;
    fl_trace = false;
    fl_log = (fun line -> Printf.eprintf "dejavuzz fleet: %s\n%!" line);
    fl_launch = None }

type fleet_stats = {
  fs_workers : int;
  fs_spawns : int;
  fs_restarts : int;
  fs_retired : int;
  fs_heartbeats_missed : int;
  fs_inline_plans : int;
}

(* --- live fleet board ------------------------------------------------------ *)

type worker_row = {
  fw_slot : int;
  fw_pid : int;
  fw_state : string;  (* "live" | "backoff" | "retired" *)
  fw_restarts : int;
  fw_done : int;  (* outcomes produced over all incarnations *)
  fw_last_rx_age_s : float;
  fw_acked_iteration : int;
}

type snapshot = {
  fb_epoch : int;
  fb_workers : worker_row list;
  fb_restarts : int;
  fb_retired : int;
  fb_heartbeats_missed : int;
  fb_inline_plans : int;
}

type board = snapshot option Atomic.t

let new_board () : board = Atomic.make None
let board_read (b : board) = Atomic.get b

let snapshot_json s =
  Json.Obj
    [ ("epoch", Json.Int s.fb_epoch);
      ( "workers",
        Json.Arr
          (List.map
             (fun w ->
               Json.Obj
                 [ ("slot", Json.Int w.fw_slot);
                   ("pid", Json.Int w.fw_pid);
                   ("state", Json.Str w.fw_state);
                   ("restarts", Json.Int w.fw_restarts);
                   ("outcomes", Json.Int w.fw_done);
                   ("last_rx_age_s", Json.Float w.fw_last_rx_age_s);
                   ("acked_iteration", Json.Int w.fw_acked_iteration) ])
             s.fb_workers) );
      ("restarts", Json.Int s.fb_restarts);
      ("retired", Json.Int s.fb_retired);
      ("heartbeats_missed", Json.Int s.fb_heartbeats_missed);
      ("inline_plans", Json.Int s.fb_inline_plans) ]

(* --- internal state -------------------------------------------------------- *)

type wstate =
  | Down  (* never spawned, or dead and eligible for respawn at w_due *)
  | Live
  | Retired

type worker = {
  w_slot : int;
  mutable w_state : wstate;
  mutable w_due : float;  (* when a Down worker may respawn *)
  mutable w_pid : int;
  mutable w_in : Unix.file_descr;  (* coordinator → worker *)
  mutable w_out : Unix.file_descr;  (* worker → coordinator *)
  mutable w_reader : Proto.reader;
  mutable w_last_rx : float;
  mutable w_restarts : int;  (* spawns beyond the first *)
  mutable w_done : int;
  mutable w_acked : int;
  mutable w_assigned : Scheduler.plan list;  (* outstanding, plan order *)
}

type st = {
  st_opts : opts;
  st_workers : worker array;
  st_board : board;
  st_plane : Telemetry.t option;
  mutable st_epoch : int;
  mutable st_config_frame : string option;  (* encoded Config, sent on spawn *)
  mutable st_spawns : int;
  mutable st_restarts : int;
  mutable st_hb_missed : int;
  mutable st_inline : int;
}

let with_plane st f = match st.st_plane with Some p -> f p | None -> ()

let now () = Unix.gettimeofday ()

let logf st fmt = Printf.ksprintf st.st_opts.fl_log fmt

let publish st =
  let t = now () in
  let rows =
    Array.to_list st.st_workers
    |> List.map (fun w ->
           { fw_slot = w.w_slot;
             fw_pid = (match w.w_state with Live -> w.w_pid | _ -> 0);
             fw_state =
               (match w.w_state with
               | Live -> "live"
               | Down -> "backoff"
               | Retired -> "retired");
             fw_restarts = w.w_restarts;
             fw_done = w.w_done;
             fw_last_rx_age_s =
               (match w.w_state with
               | Live -> Float.max 0.0 (t -. w.w_last_rx)
               | _ -> 0.0);
             fw_acked_iteration = w.w_acked })
  in
  Atomic.set st.st_board
    (Some
       { fb_epoch = st.st_epoch;
         fb_workers = rows;
         fb_restarts = st.st_restarts;
         fb_retired =
           Array.fold_left
             (fun n w -> if w.w_state = Retired then n + 1 else n)
             0 st.st_workers;
         fb_heartbeats_missed = st.st_hb_missed;
         fb_inline_plans = st.st_inline })

(* --- process plumbing ------------------------------------------------------ *)

(* Default launch: re-exec this binary as [dejavuzz worker --slot K] with
   the protocol on its stdin/stdout (stderr inherited).  Tests inject
   [fl_launch] to fork-without-exec instead. *)
let exec_launch ~slot ~incarnation =
  let to_worker_r, to_worker_w = Unix.pipe ~cloexec:false () in
  let from_worker_r, from_worker_w = Unix.pipe ~cloexec:false () in
  let argv =
    [| Sys.executable_name; "worker"; "--slot"; string_of_int slot;
       "--incarnation"; string_of_int incarnation |]
  in
  let pid =
    Unix.create_process Sys.executable_name argv to_worker_r from_worker_w
      Unix.stderr
  in
  Unix.close to_worker_r;
  Unix.close from_worker_w;
  (pid, to_worker_w, from_worker_r)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n = Unix.write_substring fd s off (len - off) in
      if n <= 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
      go (off + n)
    end
  in
  go 0

let reap st w =
  if w.w_pid > 0 then begin
    (try Unix.kill w.w_pid Sys.sigkill
     with Unix.Unix_error (Unix.ESRCH, _, _) | Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid)
     with Unix.Unix_error _ -> ());
    ignore st
  end;
  w.w_pid <- 0

(* Declare a worker dead: close its pipes, reap the process, return its
   outstanding shard to the caller and either schedule a respawn (capped
   exponential backoff) or retire the slot. *)
let declare_dead st w ~reason =
  close_quietly w.w_in;
  close_quietly w.w_out;
  reap st w;
  let orphans = w.w_assigned in
  w.w_assigned <- [];
  w.w_restarts <- w.w_restarts + 1;
  (* The dead incarnation's final telemetry batch is folded into the
     slot's retired aggregates; anything of its still in flight is now
     stale by incarnation and will be dropped at ingest. *)
  with_plane st (fun p ->
      Telemetry.record_restart p ~slot:w.w_slot ~reason);
  if w.w_restarts > st.st_opts.fl_max_respawns then begin
    w.w_state <- Retired;
    logf st
      "worker %d %s; respawn budget (%d) exhausted — retiring the slot, \
       redistributing %d outstanding plans"
      w.w_slot reason st.st_opts.fl_max_respawns (List.length orphans)
  end
  else begin
    let delay =
      Dvz_util.Parallel.backoff ~base:st.st_opts.fl_backoff_base_s
        ~cap:st.st_opts.fl_backoff_cap_s w.w_restarts
    in
    w.w_state <- Down;
    w.w_due <- now () +. delay;
    Metrics.incr m_restarts;
    st.st_restarts <- st.st_restarts + 1;
    logf st "worker %d %s; respawning in %.2fs (attempt %d/%d)" w.w_slot
      reason delay w.w_restarts st.st_opts.fl_max_respawns
  end;
  publish st;
  orphans

let spawn st w =
  let launch =
    match st.st_opts.fl_launch with
    | Some f -> f
    | None -> exec_launch
  in
  (* Deaths so far double as the spawn generation: the worker echoes it
     in every telemetry frame, which is how a predecessor's leftover
     flush is recognised as stale. *)
  let pid, to_worker, from_worker =
    launch ~slot:w.w_slot ~incarnation:w.w_restarts
  in
  w.w_pid <- pid;
  w.w_in <- to_worker;
  w.w_out <- from_worker;
  w.w_reader <- Proto.reader ();
  w.w_last_rx <- now ();
  w.w_state <- Live;
  st.st_spawns <- st.st_spawns + 1;
  (* The replacement needs nothing beyond the config frame: campaign
     state lives here, and the last durable checkpoint (plus the batch
     cursor inside it) already covers everything acked — a respawn can
     never lose an accepted finding. *)
  (match st.st_config_frame with
  | Some frame -> (
      try write_all w.w_in frame
      with Unix.Unix_error _ -> ignore (declare_dead st w ~reason:"died during config"))
  | None -> ());
  publish st

(* --- the dispatcher -------------------------------------------------------- *)

type epoch_state = {
  ep_start : int;  (* iteration of plan index 0 *)
  ep_slots : Executor.outcome option array;
  mutable ep_filled : int;
  mutable ep_unassigned : Scheduler.plan list;  (* ascending iteration *)
}

let live_workers st =
  Array.to_list st.st_workers |> List.filter (fun w -> w.w_state = Live)

(* Split [plans] across idle live workers, contiguously and evenly.  An
   idle worker is one with no outstanding shard; a worker that just
   respawned picks up orphans here on the next loop turn. *)
let distribute st ep =
  match ep.ep_unassigned with
  | [] -> ()
  | plans ->
      let idle =
        live_workers st |> List.filter (fun w -> w.w_assigned = [])
      in
      if idle <> [] then begin
        let nplans = List.length plans in
        let nidle = List.length idle in
        let per = (nplans + nidle - 1) / nidle in
        let rec take k = function
          | [] -> ([], [])
          | rest when k = 0 -> ([], rest)
          | p :: rest ->
              let chunk, rest = take (k - 1) rest in
              (p :: chunk, rest)
        in
        let rest = ref plans in
        List.iter
          (fun w ->
            match take per !rest with
            | [], _ -> ()
            | chunk, rest' -> (
                rest := rest';
                w.w_assigned <- chunk;
                let frame =
                  Proto.encode
                    (Proto.Assign
                       { a_epoch = st.st_epoch;
                         a_payload = Wire.plans_to_string chunk })
                in
                try write_all w.w_in frame
                with Unix.Unix_error _ ->
                  (* Death discovered on write: reclaim the chunk with the
                     rest of the shard. *)
                  let orphans =
                    declare_dead st w ~reason:"died during assignment"
                  in
                  rest := orphans @ !rest))
          idle;
        ep.ep_unassigned <- !rest
      end

let record_outcome ep w ~iteration payload =
  let idx = iteration - ep.ep_start in
  if idx < 0 || idx >= Array.length ep.ep_slots then
    Error (Printf.sprintf "outcome for iteration %d outside epoch" iteration)
  else
    match Wire.outcome_of_string payload with
    | Error e -> Error e
    | Ok outcome ->
        (* First write wins; a duplicate after a reassignment race would
           be byte-identical anyway (same plan, same pre-split RNG). *)
        if ep.ep_slots.(idx) = None then begin
          ep.ep_slots.(idx) <- Some outcome;
          ep.ep_filled <- ep.ep_filled + 1
        end;
        w.w_done <- w.w_done + 1;
        w.w_assigned <-
          List.filter
            (fun (p : Scheduler.plan) -> p.Scheduler.pl_iteration <> iteration)
            w.w_assigned;
        Ok ()

(* Telemetry/Hello/Heartbeat bookkeeping shared by the dispatch loop
   and the shutdown drain.  Observation only: ingest failures never
   condemn a worker, and nothing here feeds the campaign fold. *)
let observe_msg st w msg =
  match msg with
  | Proto.Hello { h_pid; h_clock_us; _ } ->
      with_plane st (fun p ->
          Telemetry.hello p ~slot:w.w_slot ~incarnation:w.w_restarts
            ~pid:h_pid ~clock_us:h_clock_us)
  | Proto.Heartbeat { b_done; _ } ->
      with_plane st (fun p ->
          Telemetry.heartbeat p ~slot:w.w_slot ~done_count:b_done)
  | Proto.Telemetry { t_incarnation; t_payload; _ } ->
      with_plane st (fun p ->
          match Wire.telemetry_of_string t_payload with
          | Ok batch ->
              ignore
                (Telemetry.ingest p ~slot:w.w_slot
                   ~incarnation:t_incarnation batch)
          | Error e ->
              logf st "worker %d sent an undecodable telemetry payload (%s)"
                w.w_slot e)
  | _ -> with_plane st (fun p -> Telemetry.seen p ~slot:w.w_slot)

let handle_msg st ep w msg =
  w.w_last_rx <- now ();
  observe_msg st w msg;
  match msg with
  | Proto.Hello { h_pid; _ } ->
      if h_pid <> w.w_pid && w.w_pid > 0 then
        logf st "worker %d reports pid %d (spawned as %d)" w.w_slot h_pid
          w.w_pid;
      Ok ()
  | Proto.Heartbeat { b_done; _ } ->
      w.w_done <- max w.w_done b_done;
      Ok ()
  | Proto.Telemetry _ -> Ok ()
  | Proto.Outcome { o_iteration; o_payload; _ } ->
      record_outcome ep w ~iteration:o_iteration o_payload
  | Proto.Finding _ ->
      (* Advisory only — the fold owns dedup.  The board's per-worker
         outcome counts already move; nothing else to do. *)
      Ok ()
  | Proto.Checkpoint_ack { k_iteration; _ } ->
      w.w_acked <- max w.w_acked k_iteration;
      Ok ()
  | Proto.Config _ | Proto.Assign _ | Proto.Checkpoint _ | Proto.Shutdown ->
      Error
        (Printf.sprintf "unexpected %s frame from worker"
           (Proto.kind_name msg))

(* Drain one readable worker pipe: a single [read], then every complete
   frame in the reassembly buffer.  Any protocol failure condemns the
   worker. *)
let drain st ep w buf =
  let n =
    try Unix.read w.w_out buf 0 (Bytes.length buf)
    with Unix.Unix_error _ -> 0
  in
  if n = 0 then
    ep.ep_unassigned <-
      declare_dead st w ~reason:"exited (pipe EOF)" @ ep.ep_unassigned
  else begin
    Proto.feed w.w_reader buf 0 n;
    let rec frames () =
      if w.w_state = Live then
        match Proto.next w.w_reader with
        | Ok None -> ()
        | Ok (Some msg) -> (
            match handle_msg st ep w msg with
            | Ok () -> frames ()
            | Error e ->
                ep.ep_unassigned <-
                  declare_dead st w ~reason:("protocol violation: " ^ e)
                  @ ep.ep_unassigned)
        | Error e ->
            ep.ep_unassigned <-
              declare_dead st w
                ~reason:("corrupt stream: " ^ Proto.error_message e)
              @ ep.ep_unassigned
    in
    frames ()
  end

let sort_plans plans =
  List.sort
    (fun (a : Scheduler.plan) (b : Scheduler.plan) ->
      compare a.Scheduler.pl_iteration b.Scheduler.pl_iteration)
    plans

let fire_chaos st =
  List.iter
    (fun (epoch, slot, signal) ->
      if epoch = st.st_epoch && slot >= 0 && slot < Array.length st.st_workers
      then begin
        let w = st.st_workers.(slot) in
        if w.w_state = Live && w.w_pid > 0 then begin
          logf st "chaos: sending signal %d to worker %d (pid %d) at epoch %d"
            signal slot w.w_pid epoch;
          try Unix.kill w.w_pid signal with Unix.Unix_error _ -> ()
        end
      end)
    st.st_opts.fl_chaos

(* First batch: freeze the worker spec out of the executor context the
   campaign built — the single source of truth for what workers run.
   The watchdog budget is opaque, so its raw limits arrive separately
   via [budget_limits] (the CLI knows them; defaults to none). *)
let make_spec (opts : opts) ~budget_limits (ctx : Executor.ctx) =
  let max_slots, max_wall_s = budget_limits in
  { Wire.w_cfg = ctx.Executor.cx_cfg;
    w_style = ctx.Executor.cx_style;
    w_taint_mode = ctx.Executor.cx_taint_mode;
    w_secret = ctx.Executor.cx_secret;
    w_fault_plan = ctx.Executor.cx_fault_plan;
    w_max_slots = max_slots;
    w_max_wall_s = max_wall_s;
    w_jobs = opts.fl_worker_jobs;
    w_heartbeat_s = opts.fl_heartbeat_s;
    w_profile = opts.fl_profile;
    w_trace = opts.fl_trace }

let dispatch_batch st ~budget_limits (ctx : Executor.ctx) plans =
  (match st.st_config_frame with
  | Some _ -> ()
  | None ->
      let spec = make_spec st.st_opts ~budget_limits ctx in
      st.st_config_frame <-
        Some
          (Proto.encode
             (Proto.Config { c_payload = Wire.spec_to_string spec })));
  let plans = sort_plans plans in
  let count = List.length plans in
  let ep =
    { ep_start =
        (match plans with
        | p :: _ -> p.Scheduler.pl_iteration
        | [] -> 0);
      ep_slots = Array.make (max count 1) None;
      ep_filled = 0;
      ep_unassigned = plans }
  in
  if count = 0 then []
  else begin
    let buf = Bytes.create 65536 in
    (* Spawn anything spawnable before the first assignment of this
       epoch (initial bring-up and overdue respawns). *)
    let t0 = now () in
    Array.iter
      (fun w -> if w.w_state = Down && w.w_due <= t0 then spawn st w)
      st.st_workers;
    distribute st ep;
    fire_chaos st;
    publish st;
    while ep.ep_filled < count do
      let t = now () in
      (* Heartbeat deadlines: a live worker silent past the deadline is
         killed and declared dead — catches SIGSTOP and livelock, which
         produce no EOF. *)
      Array.iter
        (fun w ->
          if
            w.w_state = Live
            && st.st_opts.fl_deadline_s > 0.0
            && t -. w.w_last_rx > st.st_opts.fl_deadline_s
          then begin
            Metrics.incr m_hb_missed;
            st.st_hb_missed <- st.st_hb_missed + 1;
            ep.ep_unassigned <-
              declare_dead st w
                ~reason:
                  (Printf.sprintf "missed heartbeat deadline (%.1fs silent)"
                     (t -. w.w_last_rx))
              @ ep.ep_unassigned
          end)
        st.st_workers;
      (* Overdue respawns come back as idle workers. *)
      Array.iter
        (fun w -> if w.w_state = Down && w.w_due <= t then spawn st w)
        st.st_workers;
      ep.ep_unassigned <- sort_plans ep.ep_unassigned;
      distribute st ep;
      let live = live_workers st in
      let pending_respawn =
        Array.exists (fun w -> w.w_state = Down) st.st_workers
      in
      if live = [] && not pending_respawn then begin
        (* Everyone is retired: graceful degradation's last stop.  The
           coordinator owns a full executor context, so it can finish the
           campaign single-process. *)
        let remaining = sort_plans ep.ep_unassigned in
        ep.ep_unassigned <- [];
        if remaining <> [] then
          logf st "fleet exhausted; executing %d plans inline"
            (List.length remaining);
        List.iter
          (fun (p : Scheduler.plan) ->
            let o = Executor.execute ctx p in
            let idx = p.Scheduler.pl_iteration - ep.ep_start in
            if idx >= 0 && idx < Array.length ep.ep_slots
               && ep.ep_slots.(idx) = None
            then begin
              ep.ep_slots.(idx) <- Some o;
              ep.ep_filled <- ep.ep_filled + 1;
              st.st_inline <- st.st_inline + 1
            end)
          remaining;
        publish st
      end
      else begin
        let fds = List.map (fun w -> w.w_out) live in
        (* Wake early enough to notice deadlines and due respawns. *)
        let timeout =
          let next_due =
            Array.fold_left
              (fun acc w ->
                if w.w_state = Down then Float.min acc (w.w_due -. t) else acc)
              0.5 st.st_workers
          in
          Float.max 0.01 (Float.min 0.5 next_due)
        in
        match Unix.select fds [] [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            List.iter
              (fun fd ->
                match
                  List.find_opt
                    (fun w -> w.w_state = Live && w.w_out == fd)
                    live
                with
                | Some w -> drain st ep w buf
                | None -> ())
              readable;
            publish st
      end
    done;
    st.st_epoch <- st.st_epoch + 1;
    publish st;
    Array.to_list ep.ep_slots
    |> List.filteri (fun i _ -> i < count)
    |> List.map (function
         | Some o -> o
         | None -> assert false (* filled = count *))
  end

let broadcast st msg =
  let frame = Proto.encode msg in
  Array.iter
    (fun w ->
      if w.w_state = Live then
        try write_all w.w_in frame with Unix.Unix_error _ -> ())
    st.st_workers

(* After Shutdown is broadcast each worker sends one last telemetry
   flush before exiting; read its pipe until EOF (or a short deadline)
   so that flush lands in the plane instead of dying in the buffer. *)
let drain_final st w =
  let deadline = now () +. 1.0 in
  let buf = Bytes.create 65536 in
  let rec go () =
    let remaining = deadline -. now () in
    if remaining > 0.0 then
      match Unix.select [ w.w_out ] [] [] remaining with
      | exception Unix.Unix_error _ -> ()
      | [], _, _ -> ()
      | _ ->
          let n =
            try Unix.read w.w_out buf 0 (Bytes.length buf)
            with Unix.Unix_error _ -> 0
          in
          if n > 0 then begin
            Proto.feed w.w_reader buf 0 n;
            let rec frames () =
              match Proto.next w.w_reader with
              | Ok (Some msg) ->
                  observe_msg st w msg;
                  frames ()
              | Ok None | Error _ -> ()
            in
            frames ();
            go ()
          end
  in
  go ()

let shutdown st =
  broadcast st Proto.Shutdown;
  Array.iter
    (fun w ->
      if w.w_state = Live then begin
        close_quietly w.w_in;
        (match st.st_plane with
        | Some _ -> ( try drain_final st w with _ -> ())
        | None -> ());
        (* Give the worker a moment to exit on Shutdown/EOF, then make
           sure. *)
        let deadline = now () +. 1.0 in
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
          | 0, _ ->
              if now () < deadline then begin
                Unix.sleepf 0.01;
                wait ()
              end
              else begin
                (try Unix.kill w.w_pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] w.w_pid)
                 with Unix.Unix_error _ -> ())
              end
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        wait ();
        w.w_pid <- 0;
        close_quietly w.w_out;
        w.w_state <- Down
      end)
    st.st_workers

let stats_of st =
  { fs_workers = Array.length st.st_workers;
    fs_spawns = st.st_spawns;
    fs_restarts = st.st_restarts;
    fs_retired =
      Array.fold_left
        (fun n w -> if w.w_state = Retired then n + 1 else n)
        0 st.st_workers;
    fs_heartbeats_missed = st.st_hb_missed;
    fs_inline_plans = st.st_inline }

let run ?(telemetry = Campaign.quiet) ?(resilience = Campaign.no_resilience)
    ?board ?plane ?(budget_limits = (None, None)) opts cfg options =
  if opts.fl_workers < 0 then
    invalid_arg "Coordinator.run: fl_workers must be >= 0";
  (* A worker dying mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let board = match board with Some b -> b | None -> new_board () in
  let st =
    { st_opts = opts;
      st_workers =
        Array.init opts.fl_workers (fun i ->
            { w_slot = i;
              w_state = Down;
              w_due = 0.0;
              w_pid = 0;
              w_in = Unix.stdin;
              w_out = Unix.stdin;
              w_reader = Proto.reader ();
              w_last_rx = 0.0;
              w_restarts = 0;  (* deaths, not spawns: first spawn is free *)
              w_done = 0;
              w_acked = 0;
              w_assigned = [] });
      st_board = board;
      st_plane = plane;
      st_epoch = 0;
      st_config_frame = None;
      st_spawns = 0;
      st_restarts = 0;
      st_hb_missed = 0;
      st_inline = 0 }
  in
  (* Respawns resume from the last durably acked state by construction:
     the checkpoint file IS the authority, so keep one good generation
     around and fall back to it when the newest is damaged. *)
  let resilience = { resilience with Campaign.rz_checkpoint_keep = true } in
  let dispatch ctx plans = dispatch_batch st ~budget_limits ctx plans in
  let on_checkpoint cursor =
    broadcast st (Proto.Checkpoint { k_iteration = cursor })
  in
  let run_campaign resilience =
    Campaign.run ~telemetry ~resilience ~dispatch ~on_checkpoint cfg options
  in
  let stats =
    Fun.protect
      ~finally:(fun () -> shutdown st)
      (fun () ->
        try run_campaign resilience
        with Campaign.Bad_checkpoint { bc_path; bc_reason; _ }
          when resilience.Campaign.rz_resume <> None
               && Sys.file_exists
                    (Dvz_resilience.Snapshot.previous_path bc_path) ->
          (* The newest checkpoint generation is damaged; the rotation
             kept the previous good one. *)
          let prev = Dvz_resilience.Snapshot.previous_path bc_path in
          logf st "checkpoint %s rejected (%s); falling back to %s" bc_path
            bc_reason prev;
          run_campaign { resilience with Campaign.rz_resume = Some prev })
  in
  (stats, stats_of st)
