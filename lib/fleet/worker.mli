(** The fleet's child process: a stateless remote executor.

    Speaks {!Proto} on a pair of file descriptors: announces itself with
    [Hello], builds its executor context from the one [Config] frame,
    then executes each [Assign]ed shard of plans, streaming one
    [Outcome] frame per plan (in plan order) plus advisory [Finding]
    frames, while a background thread emits periodic [Heartbeat]s — each
    followed by a [Telemetry] flush (metrics snapshot, profiler
    aggregates, trace/event deltas), with one final flush on [Shutdown].
    All campaign state — corpus, coverage, dedup, checkpoints — lives in
    the coordinator, so a worker killed at any instant costs only the
    re-execution of its outstanding plans, never a result. *)

val main :
  ?log:(string -> unit) ->
  ?incarnation:int ->
  slot:int ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit ->
  unit
(** Runs the worker loop until [Shutdown] or EOF/EPIPE from the
    coordinator (both return normally).  [incarnation] (default 0) is
    the spawn generation the coordinator launched this process under; it
    is echoed in every [Telemetry] frame so a respawned slot's stale
    predecessor cannot pollute the aggregates.  Resets the process-wide
    metrics registry and profiler on entry (a forked worker inherits the
    parent's), and arms the profiler when the spec asks for it.  Raises
    [Failure] on a corrupt or out-of-protocol stream and lets an
    injected {!Dvz_resilience.Fault.Killed} propagate — the caller (the
    hidden [dejavuzz worker] subcommand) maps those to exit codes.
    Ignores [SIGPIPE]. *)
