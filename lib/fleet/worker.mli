(** The fleet's child process: a stateless remote executor.

    Speaks {!Proto} on a pair of file descriptors: announces itself with
    [Hello], builds its executor context from the one [Config] frame,
    then executes each [Assign]ed shard of plans, streaming one
    [Outcome] frame per plan (in plan order) plus advisory [Finding]
    frames, while a background thread emits periodic [Heartbeat]s.  All
    campaign state — corpus, coverage, dedup, checkpoints — lives in the
    coordinator, so a worker killed at any instant costs only the
    re-execution of its outstanding plans, never a result. *)

val main :
  ?log:(string -> unit) ->
  slot:int ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit ->
  unit
(** Runs the worker loop until [Shutdown] or EOF/EPIPE from the
    coordinator (both return normally).  Raises [Failure] on a corrupt
    or out-of-protocol stream and lets an injected
    {!Dvz_resilience.Fault.Killed} propagate — the caller (the hidden
    [dejavuzz worker] subcommand) maps those to exit codes.  Ignores
    [SIGPIPE]. *)
