(* The fleet's child process: a stateless remote executor.

   Protocol from the worker's seat: say [Hello], receive one [Config]
   (build the executor context, start the heartbeat thread), then loop —
   each [Assign] is a shard of plans to execute, each plan producing one
   [Outcome] frame (plus an advisory [Finding] frame when the oracle
   reports leaks); [Checkpoint] is acknowledged, [Shutdown] or pipe EOF
   ends the loop.  The worker holds no campaign state whatsoever: every
   plan carries its own pre-split RNG and all corpus/coverage/finding
   folding happens in the coordinator, which is why killing a worker at
   any instant loses nothing but wall-clock time.

   Telemetry rides the same pipe: on each heartbeat tick, and once more
   at shutdown, the worker flushes a [Telemetry] frame — its cumulative
   metrics snapshot and profiler aggregates, plus the trace-event and
   event-line deltas since the last flush.  Telemetry is observation
   only; nothing the coordinator folds into campaign results ever comes
   from it. *)

module Executor = Dejavuzz.Executor
module Oracle = Dejavuzz.Oracle
module Metrics = Dvz_obs.Metrics
module Profile = Dvz_obs.Profile
module Events = Dvz_obs.Events
module Json = Dvz_obs.Json

exception Hangup
(** The coordinator went away (EOF or EPIPE) — exit quietly. *)

type t = {
  k_slot : int;
  k_incarnation : int;
  k_in : Unix.file_descr;
  k_out : Unix.file_descr;
  k_log : string -> unit;
  k_reader : Proto.reader;
  k_write_mutex : Mutex.t;  (* heartbeat thread vs main loop *)
  k_flush_mutex : Mutex.t;  (* telemetry flush: heartbeat vs shutdown *)
  k_done : int Atomic.t;
  k_events : Events.sink;  (* bounded queue drained into each flush *)
  mutable k_seq : int;          (* flushes sent; under k_flush_mutex *)
  mutable k_trace_cursor : int; (* trace delta cursor; under k_flush_mutex *)
  mutable k_ctx : (Wire.spec * Executor.ctx) option;
  mutable k_heartbeat : Thread.t option;
}

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write_substring fd s off (len - off)
        with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
          raise Hangup
      in
      if n <= 0 then raise Hangup;
      go (off + n)
    end
  in
  go 0

let send t msg =
  let frame = Proto.encode msg in
  Mutex.lock t.k_write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.k_write_mutex)
    (fun () -> write_all t.k_out frame)

(* Same ["type"] kind key campaign events use, so /events?kind= filters
   both uniformly once these lines replay into the coordinator's ring. *)
let emit_event t name fields =
  Events.emit t.k_events (("type", Json.Str name) :: fields)

(* Everything observers see from this process, in one frame.  Metrics
   and profile aggregates are cumulative (the coordinator keeps the
   latest batch), trace events and event lines are deltas read under
   the flush mutex so concurrent heartbeat/shutdown flushes never ship
   the same window twice. *)
let flush_telemetry t =
  Mutex.lock t.k_flush_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.k_flush_mutex)
    (fun () ->
      let trace, cursor = Profile.events_from t.k_trace_cursor in
      let lines, dropped = Events.drain t.k_events in
      let batch =
        { Wire.tb_seq = t.k_seq;
          tb_metrics = Metrics.snapshot Metrics.default;
          tb_profile = Profile.snapshot ();
          tb_trace = trace;
          tb_trace_dropped = Profile.events_dropped ();
          tb_events = lines;
          tb_events_dropped = dropped }
      in
      t.k_seq <- t.k_seq + 1;
      t.k_trace_cursor <- cursor;
      send t
        (Proto.Telemetry
           { t_worker = t.k_slot;
             t_incarnation = t.k_incarnation;
             t_payload = Wire.telemetry_to_string batch }))

let start_heartbeat t (spec : Wire.spec) =
  if t.k_heartbeat = None && spec.Wire.w_heartbeat_s > 0.0 then
    t.k_heartbeat <-
      Some
        (Thread.create
           (fun () ->
             (* Dies with the process; a send failure just means the
                coordinator is gone and the main loop is about to find
                out via EOF. *)
             try
               while true do
                 Unix.sleepf spec.Wire.w_heartbeat_s;
                 send t
                   (Proto.Heartbeat
                      { b_worker = t.k_slot; b_done = Atomic.get t.k_done });
                 flush_telemetry t
               done
             with _ -> ())
           ())

let build_ctx (spec : Wire.spec) =
  let budget =
    match (spec.Wire.w_max_slots, spec.Wire.w_max_wall_s) with
    | None, None -> None
    | max_slots, max_wall_s ->
        Some (Dvz_uarch.Dualcore.budget ?max_slots ?max_wall_s ())
  in
  let jobs = Dvz_util.Parallel.effective_lanes (max 1 spec.Wire.w_jobs) in
  { Executor.cx_cfg = spec.Wire.w_cfg;
    cx_style = spec.Wire.w_style;
    cx_taint_mode = spec.Wire.w_taint_mode;
    cx_secret = spec.Wire.w_secret;
    cx_fault_plan = spec.Wire.w_fault_plan;
    cx_budget = budget;
    cx_clock = Dvz_obs.Clock.real;
    cx_domain_iters =
      Array.init jobs (fun i ->
          Metrics.counter Metrics.default
            ~help:"Campaign iterations executed by one worker domain"
            (Printf.sprintf "dvz_campaign_iterations_domain_%d" i)) }

let send_outcome t ~epoch (o : Executor.outcome) =
  Atomic.incr t.k_done;
  send t
    (Proto.Outcome
       { o_worker = t.k_slot;
         o_epoch = epoch;
         o_iteration = o.Executor.oc_iteration;
         o_payload = Wire.outcome_to_string o });
  match o.Executor.oc_analysis with
  | Some a when a.Oracle.a_leaks <> [] ->
      send t
        (Proto.Finding
           { f_worker = t.k_slot;
             f_iteration = o.Executor.oc_iteration;
             f_classes = List.length a.Oracle.a_leaks })
  | _ -> ()

let handle_assign t ~epoch payload =
  match t.k_ctx with
  | None -> failwith "fleet worker: Assign before Config"
  | Some (spec, ctx) -> (
      match Wire.plans_of_string payload with
      | Error e -> failwith ("fleet worker: " ^ e)
      | Ok plans ->
          emit_event t "assign"
            [ ("epoch", Json.Int epoch);
              ("plans", Json.Int (List.length plans)) ];
          let jobs =
            Dvz_util.Parallel.effective_lanes (max 1 spec.Wire.w_jobs)
          in
          if jobs > 1 && List.length plans > 1 then
            (* Execute the shard across domains ([~domains] counts total
               lanes), then stream results in plan order.  [Fault.Killed]
               from any plan propagates and takes the whole process down —
               by design: that is the fault the supervisor exists to
               survive. *)
            List.iter (send_outcome t ~epoch)
              (Dvz_util.Parallel.map ~domains:jobs (Executor.execute ctx)
                 plans)
          else
            (* Stream incrementally: completed iterations reach the
               coordinator even if a later plan kills this process. *)
            List.iter
              (fun p -> send_outcome t ~epoch (Executor.execute ctx p))
              plans)

let handle t msg =
  match msg with
  | Proto.Config { c_payload } -> (
      match Wire.spec_of_string c_payload with
      | Error e -> failwith ("fleet worker: " ^ e)
      | Ok spec ->
          t.k_ctx <- Some (spec, build_ctx spec);
          if spec.Wire.w_profile || spec.Wire.w_trace then
            Profile.arm ~trace:spec.Wire.w_trace ();
          emit_event t "config"
            [ ("jobs", Json.Int spec.Wire.w_jobs);
              ("profile", Json.Bool spec.Wire.w_profile);
              ("trace", Json.Bool spec.Wire.w_trace) ];
          start_heartbeat t spec)
  | Proto.Assign { a_epoch; a_payload } ->
      handle_assign t ~epoch:a_epoch a_payload
  | Proto.Checkpoint { k_iteration } ->
      send t
        (Proto.Checkpoint_ack { k_worker = t.k_slot; k_iteration })
  | Proto.Shutdown ->
      (* The final flush: whatever accumulated since the last heartbeat
         still reaches the coordinator before the pipe closes. *)
      emit_event t "shutdown" [ ("done", Json.Int (Atomic.get t.k_done)) ];
      (try flush_telemetry t with Hangup -> ());
      raise Hangup
  | Proto.Hello _ | Proto.Heartbeat _ | Proto.Outcome _ | Proto.Finding _
  | Proto.Checkpoint_ack _ | Proto.Telemetry _ ->
      failwith
        (Printf.sprintf "fleet worker: unexpected %s frame from coordinator"
           (Proto.kind_name msg))

let main ?(log = ignore) ?(incarnation = 0) ~slot ~in_fd ~out_fd () =
  (* A worker whose coordinator died mid-write must exit, not crash. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* This process reports its OWN work: a forked worker (the test seam)
     inherits the parent's registry and profiler state, so zero both to
     match the exec path's fresh process. *)
  Metrics.reset Metrics.default;
  Profile.disarm ();
  Profile.reset ();
  let t =
    { k_slot = slot;
      k_incarnation = incarnation;
      k_in = in_fd;
      k_out = out_fd;
      k_log = log;
      k_reader = Proto.reader ();
      k_write_mutex = Mutex.create ();
      k_flush_mutex = Mutex.create ();
      k_done = Atomic.make 0;
      k_events = Events.batch ();
      k_seq = 0;
      k_trace_cursor = 0;
      k_ctx = None;
      k_heartbeat = None }
  in
  emit_event t "worker_start"
    [ ("pid", Json.Int (Unix.getpid ())) ];
  let buf = Bytes.create 65536 in
  let rec loop () =
    match Proto.next t.k_reader with
    | Error e ->
        (* A corrupt stream from the coordinator: nothing to salvage. *)
        failwith ("fleet worker: " ^ Proto.error_message e)
    | Ok (Some msg) ->
        handle t msg;
        loop ()
    | Ok None ->
        let n =
          try Unix.read t.k_in buf 0 (Bytes.length buf)
          with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> 0
        in
        if n = 0 then raise Hangup
        else begin
          Proto.feed t.k_reader buf 0 n;
          loop ()
        end
  in
  match
    send t
      (Proto.Hello
         { h_worker = slot;
           h_pid = Unix.getpid ();
           h_clock_us =
             int_of_float (Unix.gettimeofday () *. 1e6) });
    loop ()
  with
  | () -> ()
  | exception Hangup -> t.k_log "worker: coordinator hung up"
