(* The coordinator/worker wire protocol: length-prefixed binary frames
   over pipes.  Layout (all integers big-endian):

     offset  size
     0       4     magic "DVZF"
     4       1     protocol version
     5       1     message kind tag
     6       4     payload length
     10      4     CRC-32 of the payload
     14      len   payload

   Payload fields are written with two primitives only — 8-byte signed
   integers and length-prefixed strings — so every message kind decodes
   with the same bounds-checked cursor.  The CRC plus the magic make a
   torn or corrupted pipe read a detected failure instead of garbage
   state: a reader that sees a bad frame reports a structured error and
   refuses to resync (the supervisor's answer to a corrupt stream is to
   kill and respawn the peer, never to guess). *)

let magic = "DVZF"
let version = 1
let header_len = 14

(* Big enough for any real assignment (plans are a few KB each), small
   enough that a corrupted length field cannot make the reader attempt a
   multi-gigabyte allocation. *)
let max_payload = 1 lsl 26

let m_frames =
  Dvz_obs.Metrics.counter Dvz_obs.Metrics.default
    ~help:"Fleet protocol frames successfully decoded"
    "dvz_fleet_frames_total"

type msg =
  | Hello of { h_worker : int; h_pid : int; h_clock_us : int }
  | Config of { c_payload : string }
  | Assign of { a_epoch : int; a_payload : string }
  | Heartbeat of { b_worker : int; b_done : int }
  | Outcome of { o_worker : int; o_epoch : int; o_iteration : int;
                 o_payload : string }
  | Finding of { f_worker : int; f_iteration : int; f_classes : int }
  | Checkpoint of { k_iteration : int }
  | Checkpoint_ack of { k_worker : int; k_iteration : int }
  | Shutdown
  | Telemetry of { t_worker : int; t_incarnation : int; t_payload : string }

let kind_tag = function
  | Hello _ -> 1
  | Config _ -> 2
  | Assign _ -> 3
  | Heartbeat _ -> 4
  | Outcome _ -> 5
  | Finding _ -> 6
  | Checkpoint _ -> 7
  | Checkpoint_ack _ -> 8
  | Shutdown -> 9
  | Telemetry _ -> 10

let max_tag = 10

let kind_name = function
  | Hello _ -> "hello"
  | Config _ -> "config"
  | Assign _ -> "assign"
  | Heartbeat _ -> "heartbeat"
  | Outcome _ -> "outcome"
  | Finding _ -> "finding"
  | Checkpoint _ -> "checkpoint"
  | Checkpoint_ack _ -> "checkpoint_ack"
  | Shutdown -> "shutdown"
  | Telemetry _ -> "telemetry"

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Oversized of int
  | Crc_mismatch
  | Bad_payload of string

let error_message = function
  | Bad_magic -> "frame does not start with the DVZF magic"
  | Bad_version v -> Printf.sprintf "protocol version %d unsupported" v
  | Bad_kind k -> Printf.sprintf "unknown message kind %d" k
  | Oversized n -> Printf.sprintf "frame payload of %d bytes exceeds cap" n
  | Crc_mismatch -> "frame payload fails its CRC"
  | Bad_payload what -> Printf.sprintf "malformed %s payload" what

(* --- payload primitives --------------------------------------------------- *)

let put_int buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_str buf s =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length s));
  Buffer.add_bytes buf b;
  Buffer.add_string buf s

exception Short

type cursor = { c_data : string; mutable c_pos : int }

let take_int c =
  if c.c_pos + 8 > String.length c.c_data then raise Short;
  let v = Int64.to_int (String.get_int64_be c.c_data c.c_pos) in
  c.c_pos <- c.c_pos + 8;
  v

let take_str c =
  if c.c_pos + 4 > String.length c.c_data then raise Short;
  let len = Int32.to_int (String.get_int32_be c.c_data c.c_pos) in
  c.c_pos <- c.c_pos + 4;
  if len < 0 || c.c_pos + len > String.length c.c_data then raise Short;
  let s = String.sub c.c_data c.c_pos len in
  c.c_pos <- c.c_pos + len;
  s

(* --- encode --------------------------------------------------------------- *)

let payload_of_msg msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Hello { h_worker; h_pid; h_clock_us } ->
      put_int buf h_worker;
      put_int buf h_pid;
      put_int buf h_clock_us
  | Config { c_payload } -> put_str buf c_payload
  | Assign { a_epoch; a_payload } ->
      put_int buf a_epoch;
      put_str buf a_payload
  | Heartbeat { b_worker; b_done } ->
      put_int buf b_worker;
      put_int buf b_done
  | Outcome { o_worker; o_epoch; o_iteration; o_payload } ->
      put_int buf o_worker;
      put_int buf o_epoch;
      put_int buf o_iteration;
      put_str buf o_payload
  | Finding { f_worker; f_iteration; f_classes } ->
      put_int buf f_worker;
      put_int buf f_iteration;
      put_int buf f_classes
  | Checkpoint { k_iteration } -> put_int buf k_iteration
  | Checkpoint_ack { k_worker; k_iteration } ->
      put_int buf k_worker;
      put_int buf k_iteration
  | Shutdown -> ()
  | Telemetry { t_worker; t_incarnation; t_payload } ->
      put_int buf t_worker;
      put_int buf t_incarnation;
      put_str buf t_payload);
  Buffer.contents buf

let crc32 = Dvz_resilience.Snapshot.crc32

let encode msg =
  let payload = payload_of_msg msg in
  let len = String.length payload in
  if len > max_payload then
    invalid_arg
      (Printf.sprintf "Proto.encode: %s payload of %d bytes exceeds cap"
         (kind_name msg) len);
  let head = Bytes.create header_len in
  Bytes.blit_string magic 0 head 0 4;
  Bytes.set head 4 (Char.chr version);
  Bytes.set head 5 (Char.chr (kind_tag msg));
  Bytes.set_int32_be head 6 (Int32.of_int len);
  Bytes.set_int32_be head 10 (Int32.of_int (crc32 payload));
  Bytes.unsafe_to_string head ^ payload

(* --- decode --------------------------------------------------------------- *)

let msg_of_payload tag payload =
  let c = { c_data = payload; c_pos = 0 } in
  let name =
    match tag with
    | 1 -> "hello" | 2 -> "config" | 3 -> "assign" | 4 -> "heartbeat"
    | 5 -> "outcome" | 6 -> "finding" | 7 -> "checkpoint"
    | 8 -> "checkpoint_ack" | 9 -> "shutdown" | 10 -> "telemetry"
    | _ -> "?"
  in
  match
    (match tag with
    | 1 ->
        let h_worker = take_int c in
        let h_pid = take_int c in
        let h_clock_us = take_int c in
        Hello { h_worker; h_pid; h_clock_us }
    | 2 -> Config { c_payload = take_str c }
    | 3 ->
        let a_epoch = take_int c in
        let a_payload = take_str c in
        Assign { a_epoch; a_payload }
    | 4 ->
        let b_worker = take_int c in
        let b_done = take_int c in
        Heartbeat { b_worker; b_done }
    | 5 ->
        let o_worker = take_int c in
        let o_epoch = take_int c in
        let o_iteration = take_int c in
        let o_payload = take_str c in
        Outcome { o_worker; o_epoch; o_iteration; o_payload }
    | 6 ->
        let f_worker = take_int c in
        let f_iteration = take_int c in
        let f_classes = take_int c in
        Finding { f_worker; f_iteration; f_classes }
    | 7 -> Checkpoint { k_iteration = take_int c }
    | 8 ->
        let k_worker = take_int c in
        let k_iteration = take_int c in
        Checkpoint_ack { k_worker; k_iteration }
    | 9 -> Shutdown
    | 10 ->
        let t_worker = take_int c in
        let t_incarnation = take_int c in
        let t_payload = take_str c in
        Telemetry { t_worker; t_incarnation; t_payload }
    | _ -> assert false)
  with
  | msg ->
      (* Trailing bytes mean the sender and receiver disagree about the
         layout — corruption, not compatibility. *)
      if c.c_pos <> String.length payload then
        Error (Bad_payload name)
      else Ok msg
  | exception Short -> Error (Bad_payload name)

(* Incremental reassembly: [feed] appends whatever the pipe produced —
   one byte or forty frames — and [next] peels complete frames off the
   front.  Once a frame fails validation the reader latches the error:
   there is no trustworthy way to find the next frame boundary in a
   corrupt stream. *)
type reader = {
  mutable rd_pending : string;
  mutable rd_error : error option;
}

let reader () = { rd_pending = ""; rd_error = None }
let buffered r = String.length r.rd_pending

let feed r bytes off len =
  if r.rd_error = None && len > 0 then
    r.rd_pending <- r.rd_pending ^ Bytes.sub_string bytes off len

let feed_string r s = feed r (Bytes.unsafe_of_string s) 0 (String.length s)

let fail r e =
  r.rd_error <- Some e;
  r.rd_pending <- "";
  Error e

let next r =
  match r.rd_error with
  | Some e -> Error e
  | None ->
      let s = r.rd_pending in
      let have = String.length s in
      if have < header_len then Ok None
      else if String.sub s 0 4 <> magic then fail r Bad_magic
      else
        let v = Char.code s.[4] in
        if v <> version then fail r (Bad_version v)
        else
          let tag = Char.code s.[5] in
          if tag < 1 || tag > max_tag then fail r (Bad_kind tag)
          else
            let len = Int32.to_int (String.get_int32_be s 6) in
            if len < 0 || len > max_payload then fail r (Oversized len)
            else if have < header_len + len then Ok None
            else
              let payload = String.sub s header_len len in
              let crc = Int32.to_int (String.get_int32_be s 10) in
              if crc32 payload land 0xFFFFFFFF <> crc land 0xFFFFFFFF then
                fail r Crc_mismatch
              else (
                match msg_of_payload tag payload with
                | Error e -> fail r e
                | Ok msg ->
                    r.rd_pending <-
                      String.sub s (header_len + len)
                        (have - header_len - len);
                    Dvz_obs.Metrics.incr m_frames;
                    Ok (Some msg))
