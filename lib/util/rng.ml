type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state
let of_state s = { state = s }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next64 t in
  { state = s }

(* Mask to 62 bits so the result is a non-negative OCaml [int]. *)
let next t = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x *. (u /. 9007199254740992.0)

let chance t p = float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t l k =
  let arr = Array.of_list l in
  shuffle t arr;
  let k = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 k)
