type row = Cells of string list | Sep

type t = { headers : string list; mutable rows : row list }

let create headers = { headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Sep -> acc)
      (List.length t.headers) rows
  in
  let pad cells = cells @ List.init (ncols - List.length cells) (fun _ -> "") in
  let widths = Array.make ncols 0 in
  let account cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) (pad cells)
  in
  account t.headers;
  List.iter (function Cells c -> account c | Sep -> ()) rows;
  let buf = Buffer.create 256 in
  let emit cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      (pad cells);
    Buffer.add_char buf '\n'
  in
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  emit t.headers;
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> emit c
      | Sep ->
          Buffer.add_string buf (String.make total '-');
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
