(** Fixed-width plain-text table rendering for the benchmark harnesses.
    The harness prints the same rows the paper's tables report, so the
    renderer keeps alignment stable regardless of cell contents. *)

type t
(** A table under construction. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row; short rows are padded with blanks. *)

val add_sep : t -> unit
(** [add_sep t] appends a horizontal separator row. *)

val render : t -> string
(** [render t] produces the aligned table as a string (trailing newline). *)

val print : t -> unit
(** [print t] writes the rendered table to stdout. *)
