(** Domain-based parallel map with worker supervision.

    The paper's fuzzing manager "employs a multi-threaded design, allowing
    multiple RTL simulation instances to run in parallel" (§5); campaigns
    and experiment trials here are independent deterministic computations,
    so they parallelise with OCaml 5 domains without shared state.

    Workers are supervised: an exception inside [f] is captured with its
    backtrace, the worker keeps draining the remaining tasks (so joins
    never deadlock), and the first failure — by task index — is re-raised
    in the caller with the original exception and backtrace. *)

type retry
(** A bounded retry-with-backoff policy for transient task failures. *)

val backoff : ?base:float -> ?factor:float -> ?cap:float -> int -> float
(** [backoff k] is the delay (seconds) before attempt [k + 1]: a capped
    exponential [min cap (base *. factor ** (k - 1))] with [base = 0.05],
    [factor = 2.0] and [cap = 30.0] by default.  The shared schedule
    behind {!retry}'s default and the fleet coordinator's worker
    respawns.  Raises [Invalid_argument] when [k < 1]. *)

val retry :
  ?max_attempts:int ->
  ?backoff_s:(int -> float) ->
  ?transient:(exn -> bool) ->
  unit ->
  retry
(** [retry ()] allows [max_attempts] (default 3) attempts per task,
    sleeping [backoff_s k] seconds after the [k]th failed attempt
    (default [backoff ~base:0.05 ~cap:1.0]; return [0.] to disable
    sleeping).  Only exceptions satisfying [transient] (default: all) are
    retried — others propagate immediately.  Each retried attempt
    increments the [dvz_parallel_retries_total] counter. *)

val map : ?domains:int -> ?retry:retry -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element across [domains] {e total}
    lanes — the caller's domain plus [domains - 1] spawned ones — so
    [~domains:4] executes on exactly 4 lanes.  [domains] defaults to
    [available ()] and is clamped to it (see {!effective_lanes}); the
    clamp is announced once per process on stderr.  Tasks are claimed
    self-scheduled in chunks (several indices per atomic claim, at least
    4 claims per lane), so uneven task costs don't serialise a batch and
    the claim counter isn't a contention point.  Results preserve order.
    Falls back to sequential evaluation when the effective lane count is
    1, when [domains < 1], or when the list is a singleton.  If any task
    ultimately fails, the failure with the lowest task index is re-raised
    in the caller, preserving its constructor, argument and backtrace. *)

val worker_index : unit -> int
(** The worker slot the calling domain occupies inside the innermost
    active {!map} on this domain: 0 for the caller,
    [1..effective lanes - 1] for spawned workers, and 0 outside any map.
    Lets per-task code (e.g. the campaign executor) attribute work to
    per-domain counters without threading an index through every
    callback. *)

val available : unit -> int
(** Domains the runtime recommends. *)

val effective_lanes : int -> int
(** [effective_lanes requested] is the lane count {!map} (and the
    campaign engine) actually uses for a request of [requested] total
    lanes: [max 1 (min requested (available ()))].  The first time a
    request is clamped down, a note goes to stderr (never stdout — the
    determinism contract diffs stdout, event logs and checkpoints). *)
