(** Domain-based parallel map.

    The paper's fuzzing manager "employs a multi-threaded design, allowing
    multiple RTL simulation instances to run in parallel" (§5); campaigns
    and experiment trials here are independent deterministic computations,
    so they parallelise with OCaml 5 domains without shared state. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element, using up to [domains]
    additional domains (default: [recommended_domain_count - 1], at least
    1).  Results preserve order.  Falls back to sequential evaluation when
    [domains <= 1] or the list is a singleton.  Exceptions raised by [f]
    are re-raised in the caller. *)

val available : unit -> int
(** Domains the runtime recommends. *)
