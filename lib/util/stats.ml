let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let ci95 xs =
  let m = mean xs in
  let n = List.length xs in
  if n < 2 then (m, 0.0)
  else
    let half = 1.96 *. stddev xs /. sqrt (float_of_int n) in
    (m, half)

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      let a = Array.of_list s in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let minmax = function
  | [] -> invalid_arg "Stats.minmax: empty list"
  | x :: xs ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percentile xs p =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) idx))
