(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    splitmix64, which is fast, statistically sound for fuzzing purposes, and
    splittable: independent sub-streams can be forked for sub-tasks without
    correlating their outputs. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves independently. *)

val state : t -> int64
(** The full internal state, for checkpointing. *)

val of_state : int64 -> t
(** Rebuilds a generator from {!state} — the resulting stream continues
    exactly where the saved one left off. *)

val split : t -> t
(** [split t] advances [t] and returns an independent child generator. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t n] returns a uniform integer in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** [bool t] returns a fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float -> float
(** [float t x] returns a uniform float in [\[0, x)]. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniform element.  Requires [arr] non-empty. *)

val choose_list : t -> 'a list -> 'a
(** [choose_list t l] picks a uniform element.  Requires [l] non-empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t arr] permutes [arr] in place uniformly. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t l k] draws [min k (length l)] distinct elements of [l]. *)
