module Metrics = Dvz_obs.Metrics

let m_tasks =
  Metrics.counter Metrics.default
    ~help:"Tasks executed by Parallel.map across all domains"
    "dvz_parallel_tasks_total"

let domain_counter idx =
  Metrics.counter Metrics.default
    ~help:"Tasks executed by one Parallel.map worker domain (0 = caller)"
    (Printf.sprintf "dvz_parallel_tasks_domain_%d" idx)

let available () = Domain.recommended_domain_count ()

let map ?domains f xs =
  let n = List.length xs in
  let domains =
    match domains with Some d -> d | None -> max 1 (available () - 1)
  in
  if domains <= 1 || n <= 1 then begin
    let m_dom = domain_counter 0 in
    List.map
      (fun x ->
        Metrics.incr m_tasks;
        Metrics.incr m_dom;
        f x)
      xs
  end
  else begin
    let arr = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker idx () =
      let m_dom = domain_counter idx in
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Metrics.incr m_tasks;
          Metrics.incr m_dom;
          results.(i) <- Some (f arr.(i));
          go ()
        end
      in
      go ()
    in
    let spawned =
      List.init (min domains (n - 1)) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> failwith "Parallel.map: missing result")
         results)
  end
