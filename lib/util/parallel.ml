module Metrics = Dvz_obs.Metrics
module Profile = Dvz_obs.Profile

let m_tasks =
  Metrics.counter Metrics.default
    ~help:"Tasks executed by Parallel.map across all domains"
    "dvz_parallel_tasks_total"

let m_retries =
  Metrics.counter Metrics.default
    ~help:"Task attempts retried by a Parallel.map retry policy"
    "dvz_parallel_retries_total"

(* Per-domain task counters, memoised: the registry lookup (name
   formatting + mutex + hashtable probe) happens once per index for the
   process lifetime instead of once per [map] call, keeping it out of
   the batch hot path. *)
let domain_counters : (int, Metrics.counter) Hashtbl.t = Hashtbl.create 8
let domain_counters_mutex = Mutex.create ()

let domain_counter idx =
  Mutex.lock domain_counters_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock domain_counters_mutex)
    (fun () ->
      match Hashtbl.find_opt domain_counters idx with
      | Some c -> c
      | None ->
          let c =
            Metrics.counter Metrics.default
              ~help:"Tasks executed by one Parallel.map worker domain (0 = caller)"
              (Printf.sprintf "dvz_parallel_tasks_domain_%d" idx)
          in
          Hashtbl.replace domain_counters idx c;
          c)

(* Which worker slot the current domain occupies inside a [map] (0 for
   the caller and outside any map).  Saved/restored around nested maps
   so an inner map on the caller's domain does not clobber the index an
   outer map assigned it. *)
let worker_key = Domain.DLS.new_key (fun () -> 0)
let worker_index () = Domain.DLS.get worker_key

let available () = Domain.recommended_domain_count ()

(* Requested lanes → lanes actually used: at least 1, never more than the
   hardware offers.  Oversubscribing domains is strictly harmful for this
   workload (CPU-bound tasks timeslice against each other), and was one of
   the constant factors behind the recorded 0.25x jobs=4 scaling on a
   1-domain box.  The clamp is announced once per process on stderr so
   campaigns stay byte-identical on stdout/events/checkpoints. *)
let clamp_noted = Atomic.make false

let effective_lanes requested =
  let avail = available () in
  let eff = max 1 (min requested avail) in
  if eff < requested && not (Atomic.exchange clamp_noted true) then
    Printf.eprintf
      "dejavuzz: requested %d lanes but only %d domain%s available; using %d\n%!"
      requested avail
      (if avail = 1 then " is" else "s are")
      eff;
  eff

(* Capped exponential backoff: the canonical delay schedule for every
   "try again after a failure" seam in the tree — [retry] below and the
   fleet coordinator's worker respawns both draw from it, so tuning the
   shape happens in one place. *)
let backoff ?(base = 0.05) ?(factor = 2.0) ?(cap = 30.0) k =
  if k < 1 then invalid_arg "Parallel.backoff: attempt index must be >= 1";
  let d = base *. (factor ** float_of_int (k - 1)) in
  Float.min cap d

type retry = {
  max_attempts : int;
  backoff_s : int -> float;
  transient : exn -> bool;
}

let retry ?(max_attempts = 3)
    ?(backoff_s = fun k -> backoff ~base:0.05 ~cap:1.0 k)
    ?(transient = fun _ -> true) () =
  if max_attempts < 1 then
    invalid_arg "Parallel.retry: max_attempts must be at least 1";
  { max_attempts; backoff_s; transient }

(* One task under the (optional) retry policy.  Non-transient exceptions
   and the final failed attempt propagate with their original backtrace. *)
let run_task retry f x =
  match retry with
  | None -> f x
  | Some r ->
      let rec attempt k =
        match f x with
        | v -> v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            if k >= r.max_attempts || not (r.transient e) then
              Printexc.raise_with_backtrace e bt
            else begin
              Metrics.incr m_retries;
              let delay = r.backoff_s k in
              if delay > 0.0 then Unix.sleepf delay;
              attempt (k + 1)
            end
      in
      attempt 1

let map ?domains ?retry:policy f xs =
  let n = List.length xs in
  (* [~domains:N] means N *total* lanes (the caller's domain included), so
     [--jobs 4] executes on exactly 4 lanes — the previous semantics spawned
     [min N (n-1)] extra domains on top of the caller, making jobs=4 run on
     5 lanes and oversubscribe small boxes. *)
  let lanes =
    match domains with
    | Some d -> if d < 1 then d else effective_lanes d
    | None -> effective_lanes (available ())
  in
  if lanes < 2 || n <= 1 then begin
    let m_dom = domain_counter 0 in
    List.map
      (fun x ->
        Metrics.incr m_tasks;
        Metrics.incr m_dom;
        run_task policy f x)
      xs
  end
  else begin
    let lanes = min lanes n in
    let arr = Array.of_list xs in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* Self-scheduled chunked claiming: each [fetch_and_add] claims [chunk]
       consecutive indices, cutting contention on [next] while staying
       fine-grained enough (≥ 4 claims per lane on an even split) that one
       slow task — a timeout, a deep transient window — doesn't leave the
       other lanes idle behind a static partition. *)
    let chunk = max 1 (n / (lanes * 4)) in
    let worker idx () =
      let saved = Domain.DLS.get worker_key in
      Domain.DLS.set worker_key idx;
      (* Mirror the worker slot into the profiler's track id so region
         events from this domain land on a per-worker trace track. *)
      let saved_tid = Profile.tid () in
      Profile.set_tid idx;
      Fun.protect
        ~finally:(fun () ->
          Profile.set_tid saved_tid;
          Domain.DLS.set worker_key saved)
        (fun () ->
          let m_dom = domain_counter idx in
          let rec go () =
            let lo = Atomic.fetch_and_add next chunk in
            if lo < n then begin
              let hi = min n (lo + chunk) - 1 in
              for i = lo to hi do
                Metrics.incr m_tasks;
                Metrics.incr m_dom;
                match run_task policy f arr.(i) with
                | v -> results.(i) <- Some v
                | exception e ->
                    (* Record instead of dying: the domain keeps draining
                       tasks so Domain.join never deadlocks, and the caller
                       re-raises the first failure with its real
                       backtrace. *)
                    errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
              done;
              go ()
            end
          in
          go ())
    in
    let spawned =
      if Profile.armed () then
        Profile.wrap "parallel/dispatch" (fun () ->
            List.init (lanes - 1) (fun i -> Domain.spawn (worker (i + 1))))
      else List.init (lanes - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    if Profile.armed () then
      Profile.wrap "parallel/drain" (fun () -> List.iter Domain.join spawned)
    else List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> assert false (* every slot has a result or an error *))
         results)
  end
