let available () = Domain.recommended_domain_count ()

let map ?domains f xs =
  let n = List.length xs in
  let domains =
    match domains with Some d -> d | None -> max 1 (available () - 1)
  in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f arr.(i));
          go ()
        end
      in
      go ()
    in
    let spawned =
      List.init (min domains (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> failwith "Parallel.map: missing result")
         results)
  end
