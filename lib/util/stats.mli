(** Small statistics helpers used by the benchmark harnesses: means,
    standard deviations and normal-approximation confidence intervals over
    repeated fuzzing trials. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 points. *)

val ci95 : float list -> float * float
(** [ci95 xs] is [(mean, halfwidth)] of the normal-approximation 95%
    confidence interval of the mean. *)

val median : float list -> float
(** Median; 0 for the empty list. *)

val minmax : float list -> float * float
(** Smallest and largest element.  Requires a non-empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], nearest-rank method. *)
