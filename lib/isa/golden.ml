type priv = User | Machine

type memory = {
  load : priv:priv -> addr:int -> size:int -> (int, Trap.cause) result;
  store : priv:priv -> addr:int -> size:int -> value:int -> (unit, Trap.cause) result;
  fetch : priv:priv -> addr:int -> (int, Trap.cause) result;
}

type t = {
  mem : memory;
  regs : int array;
  mutable pc : int;
  mutable priv : priv;
  mutable mepc : int;
  mutable mcause : int;
  mutable mtval : int;
  mutable mtvec : int;
  mutable mscratch : int;
  mutable mpp : priv;  (** privilege to return to on mret *)
}

let create ?(pc = 0) ?(priv = Machine) ?(mtvec = 0) mem =
  { mem; regs = Array.make 32 0; pc; priv; mepc = 0; mcause = 0; mtval = 0;
    mtvec; mscratch = 0; mpp = User }

let reset ?(pc = 0) ?(priv = Machine) ?(mtvec = 0) t =
  Array.fill t.regs 0 32 0;
  t.pc <- pc;
  t.priv <- priv;
  t.mepc <- 0;
  t.mcause <- 0;
  t.mtval <- 0;
  t.mtvec <- mtvec;
  t.mscratch <- 0;
  t.mpp <- User

let pc t = t.pc
let priv t = t.priv
let reg t r = if Reg.to_int r = 0 then 0 else t.regs.(Reg.to_int r)

let set_reg t r v = if Reg.to_int r <> 0 then t.regs.(Reg.to_int r) <- v

let set_pc t pc = t.pc <- pc
let set_priv t p = t.priv <- p
let mepc t = t.mepc
let mcause t = t.mcause
let set_mtvec t v = t.mtvec <- v

let copy t = { t with regs = Array.copy t.regs }

type step = {
  s_pc : int;
  s_insn : Insn.t;
  s_next_pc : int;
  s_trap : Trap.cause option;
  s_taken : bool option;
  s_target : int option;
  s_mem_addr : int option;
  s_loaded : int option;
}

let alu = Exec_alu.alu
let alui = Exec_alu.alui
let cond_holds = Exec_alu.cond_holds
let sign_extend = Exec_alu.sign_extend

let load_value w unsigned raw =
  let bits = 8 * Insn.bytes w in
  if unsigned || w = Insn.D then raw else sign_extend bits raw

let enter_trap t cause tval =
  if t.priv = Machine && t.mcause <> 0 && t.pc = t.mtvec then
    failwith "Golden: double trap in handler";
  t.mepc <- t.pc;
  t.mcause <- Trap.code cause;
  t.mtval <- tval;
  t.mpp <- t.priv;
  t.priv <- Machine;
  t.pc <- t.mtvec

let step_decoded t ~fetched =
  let s_pc = t.pc in
  let finish ?(next = s_pc + 4) ?trap ?taken ?target ?mem_addr ?loaded insn =
    (match trap with
    | Some (cause, tval) -> enter_trap t cause tval
    | None -> t.pc <- next);
    { s_pc; s_insn = insn; s_next_pc = t.pc;
      s_trap = Option.map fst trap; s_taken = taken; s_target = target;
      s_mem_addr = mem_addr; s_loaded = loaded }
  in
  match fetched with
  | Error cause ->
      (* Fetch fault: attribute it to a pseudo-instruction. *)
      finish ~trap:(cause, s_pc) (Insn.Illegal 0)
  | Ok (word, insn) -> (
      match insn with
      | Insn.Lui (rd, imm20) ->
          set_reg t rd (sign_extend 32 (imm20 lsl 12));
          finish insn
      | Insn.Auipc (rd, imm20) ->
          set_reg t rd (s_pc + sign_extend 32 (imm20 lsl 12));
          finish insn
      | Insn.Op (op, rd, rs1, rs2) ->
          set_reg t rd (alu op (reg t rs1) (reg t rs2));
          finish insn
      | Insn.Opi (op, rd, rs1, imm) ->
          set_reg t rd (alui op (reg t rs1) imm);
          finish insn
      | Insn.Fdiv (rd, rs1, rs2) ->
          let b = reg t rs2 in
          set_reg t rd (if b = 0 then -1 else reg t rs1 / b);
          finish insn
      | Insn.Load (w, u, rd, rs1, imm) -> (
          let addr = reg t rs1 + imm in
          let size = Insn.bytes w in
          if addr mod size <> 0 then
            finish ~trap:(Trap.Load_misalign, addr) ~mem_addr:addr insn
          else
            match t.mem.load ~priv:t.priv ~addr ~size with
            | Error cause -> finish ~trap:(cause, addr) ~mem_addr:addr insn
            | Ok raw ->
                let v = load_value w u raw in
                set_reg t rd v;
                finish ~mem_addr:addr ~loaded:v insn)
      | Insn.Store (w, rs2, rs1, imm) -> (
          let addr = reg t rs1 + imm in
          let size = Insn.bytes w in
          if addr mod size <> 0 then
            finish ~trap:(Trap.Store_misalign, addr) ~mem_addr:addr insn
          else
            match
              t.mem.store ~priv:t.priv ~addr ~size ~value:(reg t rs2)
            with
            | Error cause -> finish ~trap:(cause, addr) ~mem_addr:addr insn
            | Ok () -> finish ~mem_addr:addr insn)
      | Insn.Branch (c, rs1, rs2, off) ->
          let taken = cond_holds c (reg t rs1) (reg t rs2) in
          let target = s_pc + off in
          if taken then finish ~next:target ~taken:true ~target insn
          else finish ~taken:false insn
      | Insn.Jal (rd, off) ->
          let target = s_pc + off in
          set_reg t rd (s_pc + 4);
          finish ~next:target ~target insn
      | Insn.Jalr (rd, rs1, imm) ->
          let target = (reg t rs1 + imm) land lnot 1 in
          set_reg t rd (s_pc + 4);
          finish ~next:target ~target insn
      | Insn.Csr (op, rd, csr, rs1) ->
          let read () =
            match csr with
            | Insn.Mepc -> t.mepc
            | Insn.Mcause -> t.mcause
            | Insn.Mtvec -> t.mtvec
            | Insn.Mtval -> t.mtval
            | Insn.Mscratch -> t.mscratch
          in
          let write v =
            match csr with
            | Insn.Mepc -> t.mepc <- v
            | Insn.Mcause -> t.mcause <- v
            | Insn.Mtvec -> t.mtvec <- v
            | Insn.Mtval -> t.mtval <- v
            | Insn.Mscratch -> t.mscratch <- v
          in
          if t.priv = User then
            (* machine CSRs are privileged *)
            finish ~trap:(Trap.Illegal_instruction, word) insn
          else begin
            let old = read () in
            let src = reg t rs1 in
            (match op with
            | Insn.Csrrw -> write src
            | Insn.Csrrs -> if Reg.to_int rs1 <> 0 then write (old lor src)
            | Insn.Csrrc ->
                if Reg.to_int rs1 <> 0 then write (old land lnot src));
            set_reg t rd old;
            finish insn
          end
      | Insn.Fence_i -> finish insn
      | Insn.Ecall ->
          let cause =
            match t.priv with
            | User -> Trap.Ecall_from_user
            | Machine -> Trap.Ecall_from_machine
          in
          finish ~trap:(cause, 0) insn
      | Insn.Ebreak -> finish ~trap:(Trap.Breakpoint, s_pc) insn
      | Insn.Mret ->
          t.priv <- t.mpp;
          t.mcause <- 0;
          finish ~next:t.mepc ~target:t.mepc insn
      | Insn.Illegal _ -> finish ~trap:(Trap.Illegal_instruction, word) insn)

let step t =
  step_decoded t
    ~fetched:
      (match t.mem.fetch ~priv:t.priv ~addr:t.pc with
      | Error cause -> Error cause
      | Ok word -> Ok (word, Decode.decode word))

let run t ?(fuel = 10_000) ~stop () =
  let rec go acc fuel =
    if fuel = 0 || stop t then List.rev acc
    else
      let s = step t in
      let acc = s :: acc in
      if stop t then List.rev acc else go acc (fuel - 1)
  in
  go [] fuel
