(** Pure ALU semantics shared by the architectural golden model and the
    speculative datapath of the microarchitectural core model — the two must
    compute identically or "transient" differences would be artifacts. *)

val alu : Insn.op -> int -> int -> int
val alui : Insn.opi -> int -> int -> int
val cond_holds : Insn.cond -> int -> int -> bool

val sign_extend : int -> int -> int
(** [sign_extend bits v] sign-extends the low [bits] of [v]. *)
