type op =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Div

type opi = Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu

type width = B | H | W | D

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type csr_op = Csrrw | Csrrs | Csrrc

type csr = Mepc | Mcause | Mtvec | Mtval | Mscratch

type t =
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Op of op * Reg.t * Reg.t * Reg.t
  | Opi of opi * Reg.t * Reg.t * int
  | Load of width * bool * Reg.t * Reg.t * int
  | Store of width * Reg.t * Reg.t * int
  | Branch of cond * Reg.t * Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Fdiv of Reg.t * Reg.t * Reg.t
  | Csr of csr_op * Reg.t * csr * Reg.t
  | Fence_i
  | Ecall
  | Ebreak
  | Mret
  | Illegal of int

let nop = Opi (Addi, Reg.zero, Reg.zero, 0)

let bytes = function B -> 1 | H -> 2 | W -> 4 | D -> 8

let is_branch = function Branch _ -> true | _ -> false
let is_jal = function Jal _ -> true | _ -> false

let is_call = function
  | Jal (rd, _) | Jalr (rd, _, _) -> Reg.equal rd Reg.ra
  | _ -> false

let is_return = function
  | Jalr (rd, rs1, _) -> Reg.equal rd Reg.zero && Reg.equal rs1 Reg.ra
  | _ -> false

let is_indirect = function Jalr _ -> true | _ -> false

let is_control = function Branch _ | Jal _ | Jalr _ -> true | _ -> false

let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false
let is_memory i = is_load i || is_store i

let may_fault = function
  | Load _ | Store _ | Illegal _ | Ecall | Ebreak -> true
  | _ -> false

let csr_name = function
  | Mepc -> "mepc"
  | Mcause -> "mcause"
  | Mtvec -> "mtvec"
  | Mtval -> "mtval"
  | Mscratch -> "mscratch"

let csr_addr = function
  | Mscratch -> 0x340
  | Mepc -> 0x341
  | Mcause -> 0x342
  | Mtval -> 0x343
  | Mtvec -> 0x305

let csr_of_addr = function
  | 0x340 -> Some Mscratch
  | 0x341 -> Some Mepc
  | 0x342 -> Some Mcause
  | 0x343 -> Some Mtval
  | 0x305 -> Some Mtvec
  | _ -> None

let writes = function
  | Lui (rd, _) | Auipc (rd, _) | Op (_, rd, _, _) | Opi (_, rd, _, _)
  | Load (_, _, rd, _, _) | Jal (rd, _) | Jalr (rd, _, _) | Fdiv (rd, _, _)
  | Csr (_, rd, _, _) ->
      if Reg.equal rd Reg.zero then None else Some rd
  | Store _ | Branch _ | Fence_i | Ecall | Ebreak | Mret | Illegal _ -> None

let non_zero rs = if Reg.equal rs Reg.zero then [] else [ rs ]

let reads = function
  | Lui _ | Auipc _ | Jal _ | Fence_i | Ecall | Ebreak | Mret | Illegal _ -> []
  | Op (_, _, rs1, rs2) | Fdiv (_, rs1, rs2) | Branch (_, rs1, rs2, _)
  | Store (_, rs2, rs1, _) -> non_zero rs1 @ non_zero rs2
  | Opi (_, _, rs1, _) | Load (_, _, _, rs1, _) | Jalr (_, rs1, _)
  | Csr (_, _, _, rs1) ->
      non_zero rs1

let op_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra" | Slt -> "slt" | Sltu -> "sltu"
  | Mul -> "mul" | Div -> "div"

let opi_name = function
  | Addi -> "addi" | Andi -> "andi" | Ori -> "ori" | Xori -> "xori"
  | Slli -> "slli" | Srli -> "srli" | Srai -> "srai" | Slti -> "slti"
  | Sltiu -> "sltiu"

let width_name = function B -> "b" | H -> "h" | W -> "w" | D -> "d"

let cond_name = function
  | Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge" | Ltu -> "bltu"
  | Geu -> "bgeu"

let to_string i =
  let r = Reg.name in
  match i with
  | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%x" (r rd) imm
  | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%x" (r rd) imm
  | Op (o, rd, rs1, rs2) ->
      Printf.sprintf "%s %s, %s, %s" (op_name o) (r rd) (r rs1) (r rs2)
  | Opi (o, rd, rs1, imm) ->
      Printf.sprintf "%s %s, %s, %d" (opi_name o) (r rd) (r rs1) imm
  | Load (w, u, rd, rs1, imm) ->
      Printf.sprintf "l%s%s %s, %d(%s)" (width_name w)
        (if u then "u" else "")
        (r rd) imm (r rs1)
  | Store (w, rs2, rs1, imm) ->
      Printf.sprintf "s%s %s, %d(%s)" (width_name w) (r rs2) imm (r rs1)
  | Branch (c, rs1, rs2, off) ->
      Printf.sprintf "%s %s, %s, %d" (cond_name c) (r rs1) (r rs2) off
  | Jal (rd, off) -> Printf.sprintf "jal %s, %d" (r rd) off
  | Jalr (rd, rs1, imm) -> Printf.sprintf "jalr %s, %d(%s)" (r rd) imm (r rs1)
  | Fdiv (rd, rs1, rs2) ->
      Printf.sprintf "fdiv %s, %s, %s" (r rd) (r rs1) (r rs2)
  | Csr (op, rd, csr, rs1) ->
      Printf.sprintf "%s %s, %s, %s"
        (match op with Csrrw -> "csrrw" | Csrrs -> "csrrs" | Csrrc -> "csrrc")
        (r rd) (csr_name csr) (r rs1)
  | Fence_i -> "fence.i"
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Mret -> "mret"
  | Illegal raw -> Printf.sprintf ".word 0x%08x  # illegal" raw
