(** RV64 instruction decoding — the inverse of {!Encode} on the supported
    subset.  Words outside the subset decode to [Insn.Illegal raw], which is
    exactly how the microarchitectural model treats them. *)

val decode : int -> Insn.t
(** [decode word] decodes the low 32 bits of [word]. *)
