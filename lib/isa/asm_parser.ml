let reg_names =
  [ ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4); ("t0", 5);
    ("t1", 6); ("t2", 7); ("s0", 8); ("fp", 8); ("s1", 9); ("a0", 10);
    ("a1", 11); ("a2", 12); ("a3", 13); ("a4", 14); ("a5", 15); ("a6", 16);
    ("a7", 17); ("s2", 18); ("s3", 19); ("s4", 20); ("s5", 21); ("s6", 22);
    ("s7", 23); ("s8", 24); ("s9", 25); ("s10", 26); ("s11", 27); ("t3", 28);
    ("t4", 29); ("t5", 30); ("t6", 31) ]

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse_reg tok =
  match List.assoc_opt tok reg_names with
  | Some n -> Reg.x n
  | None ->
      if String.length tok >= 2 && tok.[0] = 'x' then
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some n when n >= 0 && n <= 31 -> Reg.x n
        | _ -> fail "bad register %s" tok
      else fail "bad register %s" tok

let parse_imm tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail "bad immediate %s" tok

(* [imm(base)] operands of loads/stores. *)
let parse_mem_operand tok =
  match String.index_opt tok '(' with
  | Some i when String.length tok > 0 && tok.[String.length tok - 1] = ')' ->
      let imm_s = String.sub tok 0 i in
      let reg_s = String.sub tok (i + 1) (String.length tok - i - 2) in
      let imm = if imm_s = "" then 0 else parse_imm imm_s in
      (imm, parse_reg reg_s)
  | _ -> fail "bad memory operand %s (expected imm(reg))" tok

let is_label_target tok =
  String.length tok > 0
  && (match tok.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '.' -> true | _ -> false)
  && int_of_string_opt tok = None

let split_operands rest =
  String.split_on_char ',' rest
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  let cut sep l =
    match Stdlib.String.index_opt l sep with
    | Some i when sep = '#' -> String.sub l 0 i
    | _ -> (
        (* handle "//" *)
        let rec find i =
          if i + 1 >= String.length l then l
          else if l.[i] = '/' && l.[i + 1] = '/' then String.sub l 0 i
          else find (i + 1)
        in
        find 0)
  in
  cut '/' (cut '#' line)

let ops_table =
  [ ("add", Insn.Add); ("sub", Insn.Sub); ("and", Insn.And); ("or", Insn.Or);
    ("xor", Insn.Xor); ("sll", Insn.Sll); ("srl", Insn.Srl);
    ("sra", Insn.Sra); ("slt", Insn.Slt); ("sltu", Insn.Sltu);
    ("mul", Insn.Mul); ("div", Insn.Div) ]

let opis_table =
  [ ("addi", Insn.Addi); ("andi", Insn.Andi); ("ori", Insn.Ori);
    ("xori", Insn.Xori); ("slli", Insn.Slli); ("srli", Insn.Srli);
    ("srai", Insn.Srai); ("slti", Insn.Slti); ("sltiu", Insn.Sltiu) ]

let loads_table =
  [ ("lb", (Insn.B, false)); ("lh", (Insn.H, false)); ("lw", (Insn.W, false));
    ("ld", (Insn.D, false)); ("lbu", (Insn.B, true)); ("lhu", (Insn.H, true));
    ("lwu", (Insn.W, true)) ]

let stores_table =
  [ ("sb", Insn.B); ("sh", Insn.H); ("sw", Insn.W); ("sd", Insn.D) ]

let conds_table =
  [ ("beq", Insn.Eq); ("bne", Insn.Ne); ("blt", Insn.Lt); ("bge", Insn.Ge);
    ("bltu", Insn.Ltu); ("bgeu", Insn.Geu) ]

let parse_line line =
  let line = String.trim (strip_comment line) in
  if line = "" then []
  else if String.length line > 1 && line.[String.length line - 1] = ':' then
    [ Asm.L (String.sub line 0 (String.length line - 1)) ]
  else begin
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
          ( String.sub line 0 i,
            String.sub line i (String.length line - i) )
    in
    let mnemonic = String.lowercase_ascii (String.trim mnemonic) in
    let args = split_operands rest in
    let arity n =
      if List.length args <> n then
        fail "%s expects %d operands, got %d" mnemonic n (List.length args)
    in
    let arg i = List.nth args i in
    match mnemonic with
    | "nop" -> arity 0; [ Asm.I Insn.nop ]
    | "ebreak" -> arity 0; [ Asm.I Insn.Ebreak ]
    | "ecall" -> arity 0; [ Asm.I Insn.Ecall ]
    | "mret" -> arity 0; [ Asm.I Insn.Mret ]
    | "fence.i" -> arity 0; [ Asm.I Insn.Fence_i ]
    | ".word" -> arity 1; [ Asm.Raw (parse_imm (arg 0)) ]
    | "lui" ->
        arity 2;
        [ Asm.I (Insn.Lui (parse_reg (arg 0), parse_imm (arg 1))) ]
    | "auipc" ->
        arity 2;
        [ Asm.I (Insn.Auipc (parse_reg (arg 0), parse_imm (arg 1))) ]
    | "la" ->
        arity 2;
        [ Asm.La (parse_reg (arg 0), arg 1) ]
    | "li" ->
        (* li expands to addi-from-zero for 12-bit immediates *)
        arity 2;
        let v = parse_imm (arg 1) in
        if Encode.fits_imm12 v then
          [ Asm.I (Insn.Opi (Insn.Addi, parse_reg (arg 0), Reg.zero, v)) ]
        else fail "li immediate out of range (use lui/addi)"
    | "jal" -> (
        arity 2;
        let rd = parse_reg (arg 0) in
        if is_label_target (arg 1) then [ Asm.Jal_to (rd, arg 1) ]
        else [ Asm.I (Insn.Jal (rd, parse_imm (arg 1))) ])
    | "j" ->
        arity 1;
        if is_label_target (arg 0) then [ Asm.Jal_to (Reg.zero, arg 0) ]
        else [ Asm.I (Insn.Jal (Reg.zero, parse_imm (arg 0))) ]
    | "jalr" ->
        arity 2;
        let rd = parse_reg (arg 0) in
        let imm, base = parse_mem_operand (arg 1) in
        [ Asm.I (Insn.Jalr (rd, base, imm)) ]
    | "ret" -> arity 0; [ Asm.I (Insn.Jalr (Reg.zero, Reg.ra, 0)) ]
    | "csrrw" | "csrrs" | "csrrc" ->
        arity 3;
        let op =
          match mnemonic with
          | "csrrw" -> Insn.Csrrw
          | "csrrs" -> Insn.Csrrs
          | _ -> Insn.Csrrc
        in
        let csr =
          match arg 1 with
          | "mepc" -> Insn.Mepc
          | "mcause" -> Insn.Mcause
          | "mtvec" -> Insn.Mtvec
          | "mtval" -> Insn.Mtval
          | "mscratch" -> Insn.Mscratch
          | c -> fail "unknown CSR %s" c
        in
        [ Asm.I (Insn.Csr (op, parse_reg (arg 0), csr, parse_reg (arg 2))) ]
    | "fdiv" | "fdiv.d" ->
        arity 3;
        [ Asm.I
            (Insn.Fdiv (parse_reg (arg 0), parse_reg (arg 1), parse_reg (arg 2)))
        ]
    | m when List.mem_assoc m ops_table ->
        arity 3;
        [ Asm.I
            (Insn.Op
               ( List.assoc m ops_table, parse_reg (arg 0), parse_reg (arg 1),
                 parse_reg (arg 2) )) ]
    | m when List.mem_assoc m opis_table ->
        arity 3;
        [ Asm.I
            (Insn.Opi
               ( List.assoc m opis_table, parse_reg (arg 0),
                 parse_reg (arg 1), parse_imm (arg 2) )) ]
    | m when List.mem_assoc m loads_table ->
        arity 2;
        let width, unsigned = List.assoc m loads_table in
        let imm, base = parse_mem_operand (arg 1) in
        [ Asm.I (Insn.Load (width, unsigned, parse_reg (arg 0), base, imm)) ]
    | m when List.mem_assoc m stores_table ->
        arity 2;
        let imm, base = parse_mem_operand (arg 1) in
        [ Asm.I (Insn.Store (List.assoc m stores_table, parse_reg (arg 0), base, imm)) ]
    | m when List.mem_assoc m conds_table ->
        arity 3;
        let cond = List.assoc m conds_table in
        let rs1 = parse_reg (arg 0) and rs2 = parse_reg (arg 1) in
        if is_label_target (arg 2) then [ Asm.Branch_to (cond, rs1, rs2, arg 2) ]
        else [ Asm.I (Insn.Branch (cond, rs1, rs2, parse_imm (arg 2))) ]
    | m -> fail "unknown mnemonic %s" m
  end

let parse source =
  let lines = String.split_on_char '\n' source in
  try
    Ok
      (List.concat
         (List.mapi
            (fun i line ->
              try parse_line line
              with Parse_error m ->
                raise (Parse_error (Printf.sprintf "line %d: %s" (i + 1) m)))
            lines))
  with Parse_error m -> Error m

let parse_exn source =
  match parse source with Ok p -> p | Error m -> failwith ("Asm_parser: " ^ m)

let assemble_string ~base source = Asm.assemble ~base (parse_exn source)
