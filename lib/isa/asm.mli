(** A small two-pass assembler.

    Programs are lists of items: instructions, labels, label-targeted
    control flow, and raw words.  {!assemble} resolves labels against a base
    address and emits the instruction words.  Used by tests, examples and
    the hand-written attack test cases of the Table 4 / Figure 6 benchmark
    suite; the fuzzer itself generates position-explicit instructions. *)

type item =
  | I of Insn.t                  (** a concrete instruction *)
  | L of string                  (** a label at the current address *)
  | Branch_to of Insn.cond * Reg.t * Reg.t * string
  | Jal_to of Reg.t * string
  | Raw of int                   (** a raw 32-bit word *)
  | La of Reg.t * string
      (** load a label's absolute address: expands to [auipc] + [addi] *)

type program = item list

val size_bytes : program -> int
(** Assembled size in bytes ([La] occupies 8). *)

val assemble : base:int -> program -> int array * (string * int) list
(** [assemble ~base p] returns the instruction words and the resolved label
    addresses.  Raises [Failure] on undefined or duplicate labels, or when
    a resolved offset does not fit its encoding. *)

val label_addr : (string * int) list -> string -> int
(** Looks a label up in the returned map.  Raises [Failure] if missing. *)
