let fits_imm12 v = v >= -2048 && v < 2048
let fits_branch v = v >= -4096 && v < 4096 && v land 1 = 0
let fits_jal v = v >= -1048576 && v < 1048576 && v land 1 = 0

let check cond what = if not cond then invalid_arg ("Encode: bad " ^ what)

let r reg = Reg.to_int reg

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15) lor (funct3 lsl 12)
  lor (r rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check (fits_imm12 imm) "imm12";
  ((imm land 0xFFF) lsl 20) lor (r rs1 lsl 15) lor (funct3 lsl 12)
  lor (r rd lsl 7) lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check (fits_imm12 imm) "imm12";
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15)
  lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7)
  lor opcode

let b_type ~off ~rs2 ~rs1 ~funct3 ~opcode =
  check (fits_branch off) "branch offset";
  let imm = off land 0x1FFF in
  let b12 = (imm lsr 12) land 1
  and b11 = (imm lsr 11) land 1
  and b10_5 = (imm lsr 5) land 0x3F
  and b4_1 = (imm lsr 1) land 0xF in
  (b12 lsl 31) lor (b10_5 lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15)
  lor (funct3 lsl 12) lor (b4_1 lsl 8) lor (b11 lsl 7) lor opcode

let u_type ~imm20 ~rd ~opcode =
  check (imm20 >= 0 && imm20 < 1 lsl 20) "imm20";
  (imm20 lsl 12) lor (r rd lsl 7) lor opcode

let j_type ~off ~rd ~opcode =
  check (fits_jal off) "jal offset";
  let imm = off land 0x1FFFFF in
  let b20 = (imm lsr 20) land 1
  and b19_12 = (imm lsr 12) land 0xFF
  and b11 = (imm lsr 11) land 1
  and b10_1 = (imm lsr 1) land 0x3FF in
  (b20 lsl 31) lor (b10_1 lsl 21) lor (b11 lsl 20) lor (b19_12 lsl 12)
  lor (r rd lsl 7) lor opcode

let op_funct = function
  | Insn.Add -> (0b0000000, 0b000)
  | Insn.Sub -> (0b0100000, 0b000)
  | Insn.Sll -> (0b0000000, 0b001)
  | Insn.Slt -> (0b0000000, 0b010)
  | Insn.Sltu -> (0b0000000, 0b011)
  | Insn.Xor -> (0b0000000, 0b100)
  | Insn.Srl -> (0b0000000, 0b101)
  | Insn.Sra -> (0b0100000, 0b101)
  | Insn.Or -> (0b0000000, 0b110)
  | Insn.And -> (0b0000000, 0b111)
  | Insn.Mul -> (0b0000001, 0b000)
  | Insn.Div -> (0b0000001, 0b100)

let opi_funct3 = function
  | Insn.Addi -> 0b000
  | Insn.Slti -> 0b010
  | Insn.Sltiu -> 0b011
  | Insn.Xori -> 0b100
  | Insn.Ori -> 0b110
  | Insn.Andi -> 0b111
  | Insn.Slli -> 0b001
  | Insn.Srli -> 0b101
  | Insn.Srai -> 0b101

let load_funct3 w unsigned =
  match (w, unsigned) with
  | Insn.B, false -> 0b000
  | Insn.H, false -> 0b001
  | Insn.W, false -> 0b010
  | Insn.D, _ -> 0b011
  | Insn.B, true -> 0b100
  | Insn.H, true -> 0b101
  | Insn.W, true -> 0b110

let store_funct3 = function Insn.B -> 0b000 | Insn.H -> 0b001 | Insn.W -> 0b010 | Insn.D -> 0b011

let cond_funct3 = function
  | Insn.Eq -> 0b000
  | Insn.Ne -> 0b001
  | Insn.Lt -> 0b100
  | Insn.Ge -> 0b101
  | Insn.Ltu -> 0b110
  | Insn.Geu -> 0b111

let encode = function
  | Insn.Lui (rd, imm20) -> u_type ~imm20 ~rd ~opcode:0b0110111
  | Insn.Auipc (rd, imm20) -> u_type ~imm20 ~rd ~opcode:0b0010111
  | Insn.Op (o, rd, rs1, rs2) ->
      let funct7, funct3 = op_funct o in
      r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:0b0110011
  | Insn.Opi ((Insn.Slli | Insn.Srli | Insn.Srai) as o, rd, rs1, shamt) ->
      check (shamt >= 0 && shamt < 64) "shamt";
      let hi = if o = Insn.Srai then 0b010000 lsl 6 else 0 in
      i_type ~imm:0 ~rs1 ~funct3:(opi_funct3 o) ~rd ~opcode:0b0010011
      lor ((hi lor shamt) lsl 20)
  | Insn.Opi (o, rd, rs1, imm) ->
      i_type ~imm ~rs1 ~funct3:(opi_funct3 o) ~rd ~opcode:0b0010011
  | Insn.Load (w, u, rd, rs1, imm) ->
      i_type ~imm ~rs1 ~funct3:(load_funct3 w u) ~rd ~opcode:0b0000011
  | Insn.Store (w, rs2, rs1, imm) ->
      s_type ~imm ~rs2 ~rs1 ~funct3:(store_funct3 w) ~opcode:0b0100011
  | Insn.Branch (c, rs1, rs2, off) ->
      b_type ~off ~rs2 ~rs1 ~funct3:(cond_funct3 c) ~opcode:0b1100011
  | Insn.Jal (rd, off) -> j_type ~off ~rd ~opcode:0b1101111
  | Insn.Jalr (rd, rs1, imm) ->
      i_type ~imm ~rs1 ~funct3:0b000 ~rd ~opcode:0b1100111
  | Insn.Fdiv (rd, rs1, rs2) ->
      r_type ~funct7:0b0001101 ~rs2 ~rs1 ~funct3:0b111 ~rd ~opcode:0b1010011
  | Insn.Csr (op, rd, csr, rs1) ->
      let funct3 =
        match op with Insn.Csrrw -> 0b001 | Insn.Csrrs -> 0b010 | Insn.Csrrc -> 0b011
      in
      (Insn.csr_addr csr lsl 20) lor (r rs1 lsl 15) lor (funct3 lsl 12)
      lor (r rd lsl 7) lor 0b1110011
  | Insn.Fence_i -> (0b001 lsl 12) lor 0b0001111
  | Insn.Ecall -> 0b1110011
  | Insn.Ebreak -> (1 lsl 20) lor 0b1110011
  | Insn.Mret -> (0b001100000010 lsl 20) lor 0b1110011
  | Insn.Illegal raw -> raw land 0xFFFFFFFF
