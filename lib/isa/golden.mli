(** Architectural golden-model simulator.

    Executes the {!Insn} subset against a caller-supplied memory, modelling
    the architecturally visible machine only: register file, pc, privilege
    level and the machine-mode trap CSRs.  The fuzzer uses it as the ISA
    simulator of §4.1.1 — computing the operands a transient window needs,
    predicting architectural control flow, and classifying exceptions —
    and the microarchitectural model uses it as the per-instruction
    executive.

    Values are OCaml native ints (63-bit); the model is faithful for the
    sub-2^62 address space and data ranges the fuzzer generates, which is
    all the paper's trigger classes require. *)

type priv = User | Machine

type memory = {
  load : priv:priv -> addr:int -> size:int -> (int, Trap.cause) result;
  store : priv:priv -> addr:int -> size:int -> value:int -> (unit, Trap.cause) result;
  fetch : priv:priv -> addr:int -> (int, Trap.cause) result;
      (** returns the raw 32-bit instruction word *)
}

type t

val create : ?pc:int -> ?priv:priv -> ?mtvec:int -> memory -> t

val reset : ?pc:int -> ?priv:priv -> ?mtvec:int -> t -> unit
(** Return [t] to the state [create] with the same arguments would build
    (zero registers and CSRs, [mpp = User]) while keeping its memory
    closures.  Used to re-arm a pooled core for a new stimulus. *)

val pc : t -> int
val priv : t -> priv
val reg : t -> Reg.t -> int
val set_reg : t -> Reg.t -> int -> unit
val set_pc : t -> int -> unit
val set_priv : t -> priv -> unit
val mepc : t -> int
val mcause : t -> int
val set_mtvec : t -> int -> unit
val copy : t -> t
(** Snapshot of the architectural state sharing the same memory. *)

(** What one instruction did, as observed architecturally. *)
type step = {
  s_pc : int;                    (** address of the executed instruction *)
  s_insn : Insn.t;
  s_next_pc : int;               (** pc after the instruction (post-trap) *)
  s_trap : Trap.cause option;    (** exception raised, if any *)
  s_taken : bool option;         (** branch outcome for [Branch] *)
  s_target : int option;         (** control-flow target actually taken *)
  s_mem_addr : int option;       (** effective address of a load/store *)
  s_loaded : int option;         (** value a load read *)
}

val step : t -> step
(** Executes one instruction.  On a trap the CSRs are updated and control
    transfers to [mtvec] (exactly once — a trap inside the handler while in
    machine mode halts via [Failure], which indicates a broken stimulus). *)

val step_decoded : t -> fetched:(int * Insn.t, Trap.cause) result -> step
(** [step] with the instruction fetch and decode hoisted out: [fetched]
    must equal what [t.mem.fetch ~priv:(priv t) ~addr:(pc t)] (followed by
    {!Decode.decode} on success) would return right now.  Lets a frontend
    that already fetched and decoded the commit-point word (for prediction
    lookups) share that work instead of the golden model redoing both. *)

val run : t -> ?fuel:int -> stop:(t -> bool) -> unit -> step list
(** [run t ~stop ()] steps until [stop t] holds or [fuel] (default 10_000)
    instructions have executed; returns the trace in execution order. *)
