(** Text front-end for the assembler.

    Parses a small, GNU-as-flavoured subset into an {!Asm.program}:

    {v
    start:
        addi  t0, zero, 5
        la    a0, data          # pc-relative address load
        ld    t1, 8(a0)
        beq   t0, t1, done      # label or numeric byte offset
        jal   ra, start
        fence.i
        .word 0xdeadbeef
    done:
        ebreak
    data:
    v}

    Registers accept ABI names ([zero ra sp gp tp t0-t2 s0 s1 a0-a7]) and
    numeric names ([x0]..[x31]).  Immediates are decimal or [0x]-hex,
    optionally negative.  Comments start with [#] or [//]. *)

val parse : string -> (Asm.program, string) result
(** [parse source] parses a whole listing; the error string carries the
    offending line number and text. *)

val parse_exn : string -> Asm.program
(** Like {!parse}, raising [Failure] on error. *)

val assemble_string : base:int -> string -> int array * (string * int) list
(** [assemble_string ~base src] parses and assembles in one step. *)
