type t = int

let x n =
  if n < 0 || n > 31 then invalid_arg "Reg.x: out of range";
  n

let to_int r = r

let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13

let abi_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0";
     "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7" |]

let name r = if r < Array.length abi_names then abi_names.(r) else "x" ^ string_of_int r

let equal = Int.equal

let caller_saved = [| t0; t1; t2; a0; a1; a2; a3; x 14; x 15; x 16; x 17 |]
