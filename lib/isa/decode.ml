let sign_extend bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let decode word =
  let w = word land 0xFFFFFFFF in
  let opcode = w land 0x7F in
  let rd = Reg.x ((w lsr 7) land 0x1F) in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = Reg.x ((w lsr 15) land 0x1F) in
  let rs2 = Reg.x ((w lsr 20) land 0x1F) in
  let funct7 = (w lsr 25) land 0x7F in
  let imm_i = sign_extend 12 ((w lsr 20) land 0xFFF) in
  let imm_s =
    sign_extend 12 ((((w lsr 25) land 0x7F) lsl 5) lor ((w lsr 7) land 0x1F))
  in
  let imm_b =
    let b12 = (w lsr 31) land 1
    and b11 = (w lsr 7) land 1
    and b10_5 = (w lsr 25) land 0x3F
    and b4_1 = (w lsr 8) land 0xF in
    sign_extend 13 ((b12 lsl 12) lor (b11 lsl 11) lor (b10_5 lsl 5) lor (b4_1 lsl 1))
  in
  let imm_u = (w lsr 12) land 0xFFFFF in
  let imm_j =
    let b20 = (w lsr 31) land 1
    and b19_12 = (w lsr 12) land 0xFF
    and b11 = (w lsr 20) land 1
    and b10_1 = (w lsr 21) land 0x3FF in
    sign_extend 21
      ((b20 lsl 20) lor (b19_12 lsl 12) lor (b11 lsl 11) lor (b10_1 lsl 1))
  in
  let illegal = Insn.Illegal w in
  match opcode with
  | 0b0110111 -> Insn.Lui (rd, imm_u)
  | 0b0010111 -> Insn.Auipc (rd, imm_u)
  | 0b0110011 -> (
      match (funct7, funct3) with
      | 0b0000000, 0b000 -> Insn.Op (Insn.Add, rd, rs1, rs2)
      | 0b0100000, 0b000 -> Insn.Op (Insn.Sub, rd, rs1, rs2)
      | 0b0000000, 0b001 -> Insn.Op (Insn.Sll, rd, rs1, rs2)
      | 0b0000000, 0b010 -> Insn.Op (Insn.Slt, rd, rs1, rs2)
      | 0b0000000, 0b011 -> Insn.Op (Insn.Sltu, rd, rs1, rs2)
      | 0b0000000, 0b100 -> Insn.Op (Insn.Xor, rd, rs1, rs2)
      | 0b0000000, 0b101 -> Insn.Op (Insn.Srl, rd, rs1, rs2)
      | 0b0100000, 0b101 -> Insn.Op (Insn.Sra, rd, rs1, rs2)
      | 0b0000000, 0b110 -> Insn.Op (Insn.Or, rd, rs1, rs2)
      | 0b0000000, 0b111 -> Insn.Op (Insn.And, rd, rs1, rs2)
      | 0b0000001, 0b000 -> Insn.Op (Insn.Mul, rd, rs1, rs2)
      | 0b0000001, 0b100 -> Insn.Op (Insn.Div, rd, rs1, rs2)
      | _ -> illegal)
  | 0b0010011 -> (
      match funct3 with
      | 0b000 -> Insn.Opi (Insn.Addi, rd, rs1, imm_i)
      | 0b010 -> Insn.Opi (Insn.Slti, rd, rs1, imm_i)
      | 0b011 -> Insn.Opi (Insn.Sltiu, rd, rs1, imm_i)
      | 0b100 -> Insn.Opi (Insn.Xori, rd, rs1, imm_i)
      | 0b110 -> Insn.Opi (Insn.Ori, rd, rs1, imm_i)
      | 0b111 -> Insn.Opi (Insn.Andi, rd, rs1, imm_i)
      | 0b001 ->
          let shamt = (w lsr 20) land 0x3F in
          if funct7 lsr 1 = 0 then Insn.Opi (Insn.Slli, rd, rs1, shamt)
          else illegal
      | 0b101 ->
          let shamt = (w lsr 20) land 0x3F in
          let hi = funct7 lsr 1 in
          if hi = 0 then Insn.Opi (Insn.Srli, rd, rs1, shamt)
          else if hi = 0b010000 then Insn.Opi (Insn.Srai, rd, rs1, shamt)
          else illegal
      | _ -> illegal)
  | 0b0000011 -> (
      match funct3 with
      | 0b000 -> Insn.Load (Insn.B, false, rd, rs1, imm_i)
      | 0b001 -> Insn.Load (Insn.H, false, rd, rs1, imm_i)
      | 0b010 -> Insn.Load (Insn.W, false, rd, rs1, imm_i)
      | 0b011 -> Insn.Load (Insn.D, false, rd, rs1, imm_i)
      | 0b100 -> Insn.Load (Insn.B, true, rd, rs1, imm_i)
      | 0b101 -> Insn.Load (Insn.H, true, rd, rs1, imm_i)
      | 0b110 -> Insn.Load (Insn.W, true, rd, rs1, imm_i)
      | _ -> illegal)
  | 0b0100011 -> (
      match funct3 with
      | 0b000 -> Insn.Store (Insn.B, rs2, rs1, imm_s)
      | 0b001 -> Insn.Store (Insn.H, rs2, rs1, imm_s)
      | 0b010 -> Insn.Store (Insn.W, rs2, rs1, imm_s)
      | 0b011 -> Insn.Store (Insn.D, rs2, rs1, imm_s)
      | _ -> illegal)
  | 0b1100011 -> (
      match funct3 with
      | 0b000 -> Insn.Branch (Insn.Eq, rs1, rs2, imm_b)
      | 0b001 -> Insn.Branch (Insn.Ne, rs1, rs2, imm_b)
      | 0b100 -> Insn.Branch (Insn.Lt, rs1, rs2, imm_b)
      | 0b101 -> Insn.Branch (Insn.Ge, rs1, rs2, imm_b)
      | 0b110 -> Insn.Branch (Insn.Ltu, rs1, rs2, imm_b)
      | 0b111 -> Insn.Branch (Insn.Geu, rs1, rs2, imm_b)
      | _ -> illegal)
  | 0b1101111 -> Insn.Jal (rd, imm_j)
  | 0b1100111 -> if funct3 = 0 then Insn.Jalr (rd, rs1, imm_i) else illegal
  | 0b1010011 ->
      if funct7 = 0b0001101 && funct3 = 0b111 then Insn.Fdiv (rd, rs1, rs2)
      else illegal
  | 0b0001111 -> if funct3 = 0b001 then Insn.Fence_i else illegal
  | 0b1110011 -> (
      let sys_imm = (w lsr 20) land 0xFFF in
      match funct3 with
      | 0 -> (
          match sys_imm with
          | 0b000000000000 -> Insn.Ecall
          | 0b000000000001 -> Insn.Ebreak
          | 0b001100000010 -> Insn.Mret
          | _ -> illegal)
      | (0b001 | 0b010 | 0b011) as f -> (
          match Insn.csr_of_addr sys_imm with
          | Some csr ->
              let op =
                match f with
                | 0b001 -> Insn.Csrrw
                | 0b010 -> Insn.Csrrs
                | _ -> Insn.Csrrc
              in
              Insn.Csr (op, rd, csr, rs1)
          | None -> illegal)
      | _ -> illegal)
  | _ -> illegal
