(** Instruction AST for the RV64 subset.

    The subset spans every trigger class of the paper's Table 3:
    sequential arithmetic (integer and a long-latency FDIV standing in for
    the floating-point pipe), loads/stores of all widths, conditional
    branches, direct and indirect jumps, calls and returns, and the
    exception-raising instructions (illegal encodings, ecall, ebreak). *)

type op =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Div

type opi = Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu

type width = B | H | W | D
(** Memory access widths: 1, 2, 4, 8 bytes. *)

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type csr_op = Csrrw | Csrrs | Csrrc

type csr = Mepc | Mcause | Mtvec | Mtval | Mscratch

type t =
  | Lui of Reg.t * int          (** [Lui (rd, imm20)] *)
  | Auipc of Reg.t * int        (** [Auipc (rd, imm20)] *)
  | Op of op * Reg.t * Reg.t * Reg.t
  | Opi of opi * Reg.t * Reg.t * int
  | Load of width * bool * Reg.t * Reg.t * int
      (** [Load (w, unsigned, rd, rs1, imm)] *)
  | Store of width * Reg.t * Reg.t * int
      (** [Store (w, rs2, rs1, imm)]: mem[rs1+imm] <- rs2 *)
  | Branch of cond * Reg.t * Reg.t * int
      (** byte offset relative to the branch's own address *)
  | Jal of Reg.t * int          (** byte offset *)
  | Jalr of Reg.t * Reg.t * int
  | Fdiv of Reg.t * Reg.t * Reg.t
      (** long-latency divide occupying the FPU port *)
  | Csr of csr_op * Reg.t * csr * Reg.t
      (** [Csr (op, rd, csr, rs1)]: read-modify-write of a machine CSR.
          Serializing: the pipeline never executes CSR accesses
          speculatively. *)
  | Fence_i
  | Ecall
  | Ebreak
  | Mret
  | Illegal of int              (** a raw word that does not decode *)

val nop : t
(** [addi x0, x0, 0]. *)

val bytes : width -> int

val is_branch : t -> bool
val is_jal : t -> bool

val is_call : t -> bool
(** [jal ra, _] or [jalr ra, _, _]. *)

val is_return : t -> bool
(** [jalr x0, ra, imm] — a return-address-stack pop. *)

val is_indirect : t -> bool
(** Any [Jalr]. *)

val is_control : t -> bool
(** Branch, jal or jalr. *)

val is_load : t -> bool
val is_store : t -> bool
val is_memory : t -> bool

val may_fault : t -> bool
(** Conservatively true for memory accesses and the explicit trap
    instructions (illegal / ecall / ebreak). *)

val writes : t -> Reg.t option
(** Destination register, if any ([x0] destinations return [None]). *)

val reads : t -> Reg.t list
(** Source registers (without [x0]). *)

val csr_name : csr -> string
val csr_addr : csr -> int
(** Standard machine-mode CSR addresses. *)

val csr_of_addr : int -> csr option

val to_string : t -> string
(** Assembly-like rendering for logs and reports. *)
