(** Integer register names of the RV64 subset.

    Registers are plain integers 0..31 behind a private alias so encoders
    cannot be handed out-of-range values.  [x0] is hardwired to zero. *)

type t = private int

val x : int -> t
(** [x n] is register [xn].  Requires [0 <= n <= 31]. *)

val to_int : t -> int

(** [zero] is x0; [ra] is x1 (the return address register, relevant to the
    return address stack); [sp]..[a3] follow the RISC-V ABI numbering. *)

val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t
val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t

val name : t -> string
(** ABI name, e.g. ["ra"], ["a0"], ["x18"] for the unnamed ones. *)

val equal : t -> t -> bool

val caller_saved : t array
(** Scratch registers the generators are free to clobber. *)
