(** RV64 instruction encoding.

    Produces the standard 32-bit little-endian instruction words for the
    supported subset.  [Illegal raw] encodes as its raw word, so generated
    fault triggers survive an encode/decode round trip. *)

val encode : Insn.t -> int
(** [encode i] is the 32-bit instruction word (as a non-negative int).
    Raises [Invalid_argument] when an immediate does not fit its field. *)

val fits_imm12 : int -> bool
(** Whether a signed immediate fits the 12-bit I/S-type field. *)

val fits_branch : int -> bool
(** Whether a byte offset fits the 13-bit B-type field (and is even). *)

val fits_jal : int -> bool
(** Whether a byte offset fits the 21-bit J-type field (and is even). *)
