type cause =
  | Fetch_access_fault
  | Illegal_instruction
  | Breakpoint
  | Load_misalign
  | Load_access_fault
  | Store_misalign
  | Store_access_fault
  | Ecall_from_user
  | Ecall_from_machine
  | Load_page_fault
  | Store_page_fault

let name = function
  | Fetch_access_fault -> "fetch-access-fault"
  | Illegal_instruction -> "illegal-instruction"
  | Breakpoint -> "breakpoint"
  | Load_misalign -> "load-misalign"
  | Load_access_fault -> "load-access-fault"
  | Store_misalign -> "store-misalign"
  | Store_access_fault -> "store-access-fault"
  | Ecall_from_user -> "ecall-from-user"
  | Ecall_from_machine -> "ecall-from-machine"
  | Load_page_fault -> "load-page-fault"
  | Store_page_fault -> "store-page-fault"

let code = function
  | Fetch_access_fault -> 1
  | Illegal_instruction -> 2
  | Breakpoint -> 3
  | Load_misalign -> 4
  | Load_access_fault -> 5
  | Store_misalign -> 6
  | Store_access_fault -> 7
  | Ecall_from_user -> 8
  | Ecall_from_machine -> 11
  | Load_page_fault -> 13
  | Store_page_fault -> 15

let equal a b = code a = code b

let is_memory = function
  | Load_misalign | Load_access_fault | Store_misalign | Store_access_fault
  | Load_page_fault | Store_page_fault -> true
  | Fetch_access_fault | Illegal_instruction | Breakpoint | Ecall_from_user
  | Ecall_from_machine -> false
