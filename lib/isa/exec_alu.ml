(* Shift amounts use the low 6 bits of the operand, as on RV64. *)
let shamt v = v land 63

let flip x = x lxor min_int

let alu op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Sll -> a lsl shamt b
  | Insn.Srl -> a lsr shamt b
  | Insn.Sra -> a asr shamt b
  | Insn.Slt -> if a < b then 1 else 0
  | Insn.Sltu -> if flip a < flip b then 1 else 0
  | Insn.Mul -> a * b
  | Insn.Div -> if b = 0 then -1 else a / b

let alui op a imm =
  match op with
  | Insn.Addi -> a + imm
  | Insn.Andi -> a land imm
  | Insn.Ori -> a lor imm
  | Insn.Xori -> a lxor imm
  | Insn.Slli -> a lsl shamt imm
  | Insn.Srli -> a lsr shamt imm
  | Insn.Srai -> a asr shamt imm
  | Insn.Slti -> if a < imm then 1 else 0
  | Insn.Sltiu -> if flip a < flip imm then 1 else 0

let cond_holds c a b =
  match c with
  | Insn.Eq -> a = b
  | Insn.Ne -> a <> b
  | Insn.Lt -> a < b
  | Insn.Ge -> a >= b
  | Insn.Ltu -> flip a < flip b
  | Insn.Geu -> flip a >= flip b

let sign_extend bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift
