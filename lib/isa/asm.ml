type item =
  | I of Insn.t
  | L of string
  | Branch_to of Insn.cond * Reg.t * Reg.t * string
  | Jal_to of Reg.t * string
  | Raw of int
  | La of Reg.t * string

type program = item list

let item_bytes = function
  | L _ -> 0
  | La _ -> 8
  | I _ | Branch_to _ | Jal_to _ | Raw _ -> 4

let size_bytes p = List.fold_left (fun acc i -> acc + item_bytes i) 0 p

let collect_labels ~base p =
  let tbl = Hashtbl.create 16 in
  let addr = ref base in
  List.iter
    (fun item ->
      (match item with
      | L name ->
          if Hashtbl.mem tbl name then failwith ("Asm: duplicate label " ^ name);
          Hashtbl.replace tbl name !addr
      | _ -> ());
      addr := !addr + item_bytes item)
    p;
  tbl

let assemble ~base p =
  let labels = collect_labels ~base p in
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> failwith ("Asm: undefined label " ^ name)
  in
  let words = ref [] in
  let emit i = words := Encode.encode i :: !words in
  let addr = ref base in
  List.iter
    (fun item ->
      (match item with
      | L _ -> ()
      | I i -> emit i
      | Raw w -> words := w land 0xFFFFFFFF :: !words
      | Branch_to (c, rs1, rs2, name) ->
          emit (Insn.Branch (c, rs1, rs2, resolve name - !addr))
      | Jal_to (rd, name) -> emit (Insn.Jal (rd, resolve name - !addr))
      | La (rd, name) ->
          (* auipc rd, hi20 ; addi rd, rd, lo12 — pc-relative address load *)
          let target = resolve name in
          let delta = target - !addr in
          let lo = ((delta + 2048) land 0xFFF) - 2048 in
          let hi = (delta - lo) asr 12 in
          if hi < 0 || hi >= 1 lsl 20 then failwith "Asm: la target out of range";
          emit (Insn.Auipc (rd, hi));
          emit (Insn.Opi (Insn.Addi, rd, rd, lo)));
      addr := !addr + item_bytes item)
    p;
  let label_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [])
  in
  (Array.of_list (List.rev !words), label_list)

let label_addr map name =
  match List.assoc_opt name map with
  | Some a -> a
  | None -> failwith ("Asm: unknown label " ^ name)
