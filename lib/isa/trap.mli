(** Architectural exception causes (the subset relevant to transient-window
    triggering — the "mem-excp" and "illegal" classes of Tables 3 and 5). *)

type cause =
  | Fetch_access_fault
  | Illegal_instruction
  | Breakpoint
  | Load_misalign
  | Load_access_fault
  | Store_misalign
  | Store_access_fault
  | Ecall_from_user
  | Ecall_from_machine
  | Load_page_fault
  | Store_page_fault

val name : cause -> string

val code : cause -> int
(** RISC-V mcause encoding. *)

val equal : cause -> cause -> bool

val is_memory : cause -> bool
(** True for the load/store access/page-fault/misalign causes. *)
