(* Hand-written stimulus through the assembly text front-end.

   A Spectre-V1-style victim written in assembly, assembled into a swapMem
   packet pair (one training sequence, one transient sequence) and run on
   the dual-DUT diffIFT testbench.  The bounds check reads a limit the
   attacker controls; training teaches the branch predictor the in-bounds
   direction, then the transient run passes an out-of-bounds index whose
   speculative load reaches the secret and encodes it into the cache.

   Run with: dune exec examples/custom_stimulus.exe *)

module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Dualcore = Dvz_uarch.Dualcore
module Layout = Dvz_soc.Layout

(* The victim: if (index < limit) leak(array[index]).
   Register protocol: t0 = index, t1 = limit, a3 = probe array base. *)
let victim ~index =
  Printf.sprintf
    {|
    addi  t0, zero, %d        # index (attacker controlled)
    addi  t1, zero, 8         # limit
    lui   s1, 0x5             # s1 = 0x5000: "array" base (the secret page!)
    lui   a3, 0x6             # probe array
    bgeu  t0, t1, done        # bounds check
    slli  t2, t0, 3
    add   t2, t2, s1
    ld    s0, 0(t2)           # array[index] -- speculatively out of bounds
    andi  t3, s0, 1
    slli  t3, t3, 6
    add   t3, t3, a3
    ld    t4, 0(t3)           # encode into the cache
done:
    ebreak
|}
    index

let blob name ~is_transient src =
  let words, _ = Dvz_isa.Asm_parser.assemble_string ~base:Layout.swap_base src in
  { Dvz_soc.Swapmem.name; words; is_transient }

let () =
  let cfg = Cfg.boom_small in
  (* Training runs with in-bounds indices (branch untaken: falls through to
     the load); the transient run passes index 9 (out of bounds: the check
     should skip the load, but the trained predictor says otherwise). *)
  let blobs =
    [ blob "train0" ~is_transient:false (victim ~index:2);
      blob "train1" ~is_transient:false (victim ~index:5);
      blob "attack" ~is_transient:true (victim ~index:9) ]
  in
  let stim =
    { Core.st_swapmem = Dvz_soc.Swapmem.create ~blobs ~schedule:[ 0; 1; 2 ];
      st_tighten_secret = true;  (* the secret page goes machine-only before
                                    the attack sequence *)
      st_secret = Array.make Layout.secret_dwords 0x5EC;
      st_data = []; st_perms = []; st_max_slots = 2000 }
  in
  let dc = Dualcore.create cfg stim in
  let result = Dualcore.run dc in
  print_string (Dvz_uarch.Trace.render_result result);
  let attack_windows =
    List.filter
      (fun w -> w.Core.wr_in_transient_blob && w.Core.wr_secret_accessed)
      result.Dualcore.r_windows_a
  in
  Printf.printf
    "\nSpectre-V1: %d transient window(s) reached the protected array%s\n"
    (List.length attack_windows)
    (if List.exists (fun w -> w.Core.wr_secret_fault) attack_windows then
       " across the privilege boundary"
     else "")
