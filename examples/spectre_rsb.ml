(* The paper's running example (Figures 4 and 5): triggering Spectre-RSB
   through dynamic swappable memory.

   A training packet places a call so that the pushed return address equals
   the transient-window start; the transient packet then returns to a
   different (architectural) address, so the RAS prediction speculatively
   executes the window.  On BOOM the squash restores only the top RAS entry
   (bug B2), so transient RAS overwrites below the TOS survive.

   Run with: dune exec examples/spectre_rsb.exe *)

module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Dualcore = Dvz_uarch.Dualcore
module Packet = Dejavuzz.Packet
module Attacks = Dvz_experiments.Attacks

let show_packet (p : Packet.t) =
  Printf.printf "  packet %-18s (%d instructions)\n" p.Packet.name
    (List.length p.Packet.insns)

let run_on cfg =
  Printf.printf "=== %s ===\n" cfg.Cfg.name;
  let tc = Attacks.build cfg Attacks.Spectre_rsb in
  Printf.printf "swap schedule:\n";
  List.iter show_packet tc.Packet.window_trainings;
  List.iter show_packet tc.Packet.trigger_trainings;
  show_packet tc.Packet.transient;
  let insns = Array.of_list tc.Packet.transient.Packet.insns in
  let toff = (tc.Packet.trigger_addr - Dvz_soc.Layout.swap_base) / 4 in
  Printf.printf "transient packet around the trigger:\n";
  for i = toff to min (Array.length insns - 1) (toff + 6) do
    Printf.printf "  0x%x: %s\n"
      (Dvz_soc.Layout.swap_base + (4 * i))
      (Dvz_isa.Insn.to_string insns.(i))
  done;
  let stim = Packet.stimulus ~secret:Attacks.secret tc in
  let dc = Dualcore.create cfg stim in
  let result = Dualcore.run dc in
  List.iter
    (fun w ->
      if w.Core.wr_in_transient_blob then
        Printf.printf
          "window: %s at 0x%x, %d transient instructions, %d cycles, \
           secret accessed: %b\n"
          (Dvz_uarch.Effect.window_kind_name w.Core.wr_kind)
          w.Core.wr_trigger_pc w.Core.wr_enqueued w.Core.wr_cycles
          w.Core.wr_secret_accessed)
    result.Dualcore.r_windows_a;
  Printf.printf "live tainted sinks: %s\n\n"
    (match result.Dualcore.r_live_tainted with
    | [] -> "(none)"
    | l -> String.concat " " (List.map Dvz_uarch.Elem.to_string l))

let () =
  run_on Cfg.boom_small;
  run_on Cfg.xiangshan_minimal
