(* Circuit-level differential information flow tracking demo.

   Reconstructs the paper's Figure 2 scenario on the RoB-entry netlist:
   a tainted rollback index makes CellIFT taint every entry field register
   (control-flow over-tainting), while diffIFT suppresses the control
   taints because the two DUT instances agree on every control value.

   Also demonstrates the LFB/MSHR liveness decoy of §3.1 (C2-2): a refill
   leaves stale secret data behind with the MSHR valid bit clear — tainted
   but dead.

   Run with: dune exec examples/ift_demo.exe *)

open Dvz_ir
module Shadow = Dvz_ift.Shadow
module Policy = Dvz_ift.Policy

let rob_rollback mode =
  let rob = Circuits.rob ~entries:8 ~uopc_width:7 in
  let sh = Shadow.create mode rob.Circuits.rob_nl in
  (* A few enqueues so entries hold data. *)
  for i = 0 to 3 do
    Shadow.set_input sh rob.Circuits.enq_valid 1;
    Shadow.set_input sh rob.Circuits.enq_uopc (0x10 + i);
    Shadow.set_input sh rob.Circuits.rollback 0;
    Shadow.set_input sh rob.Circuits.rollback_idx 0;
    Shadow.cycle sh
  done;
  (* The rollback index derives from sensitive data: drive the two
     instances with the same concrete value but mark it tainted. *)
  Shadow.set_input sh rob.Circuits.enq_valid 0;
  Shadow.set_input sh rob.Circuits.rollback 1;
  Shadow.set_input sh rob.Circuits.rollback_idx 1;
  Shadow.set_input_taint sh rob.Circuits.rollback_idx 0x7;
  Shadow.cycle sh;
  (* One more enqueue under the (tainted) tail pointer. *)
  Shadow.set_input sh rob.Circuits.rollback 0;
  Shadow.set_input_taint sh rob.Circuits.rollback_idx 0;
  Shadow.set_input sh rob.Circuits.enq_valid 1;
  Shadow.set_input sh rob.Circuits.enq_uopc 0x55;
  Shadow.cycle sh;
  let tainted_uopc =
    Array.fold_left
      (fun acc q -> if Shadow.taint_of sh q <> 0 then acc + 1 else acc)
      0 rob.Circuits.uopc
  in
  Printf.printf "%-8s: tainted RoB entry field registers: %d / %d\n"
    (Policy.mode_name mode) tainted_uopc (Array.length rob.Circuits.uopc)

let lfb_decoy () =
  let lfb = Circuits.lfb ~entries:4 ~data_width:16 in
  let sh = Shadow.create Policy.Diffift lfb.Circuits.lfb_nl in
  let liveness = Dvz_ift.Liveness.create sh in
  (* Bind the data buffer's taints to the MSHR valid bits — the paper's
     liveness_mask annotation. *)
  Dvz_ift.Liveness.bind_regs liveness ~sinks:lfb.Circuits.data
    ~valid:lfb.Circuits.valid;
  (* A refill deposits a secret (the instances disagree on its value). *)
  Shadow.set_input sh lfb.Circuits.retire 0;
  Shadow.set_input sh lfb.Circuits.retire_idx 0;
  Shadow.set_input sh lfb.Circuits.fill_valid 1;
  Shadow.set_input sh lfb.Circuits.fill_idx 2;
  Shadow.set_input_pair sh lfb.Circuits.fill_data 0xAAAA 0x5555;
  Shadow.cycle sh;
  Printf.printf "after refill : live tainted=%d dead tainted=%d\n"
    (Dvz_ift.Liveness.live_tainted liveness)
    (Dvz_ift.Liveness.dead_tainted liveness);
  (* The MSHR releases the slot; the stale secret stays behind. *)
  Shadow.set_input sh lfb.Circuits.fill_valid 0;
  Shadow.set_input sh lfb.Circuits.retire 1;
  Shadow.set_input sh lfb.Circuits.retire_idx 2;
  Shadow.cycle sh;
  Printf.printf "after retire : live tainted=%d dead tainted=%d\n"
    (Dvz_ift.Liveness.live_tainted liveness)
    (Dvz_ift.Liveness.dead_tainted liveness)

let () =
  Printf.printf "RoB rollback over-tainting (Figure 2):\n";
  rob_rollback Policy.Cellift;
  rob_rollback Policy.Diffift;
  Printf.printf "\nLFB/MSHR stale-data decoy (Section 3.1, C2-2):\n";
  lfb_decoy ()
