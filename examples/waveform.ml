(* Dump a VCD waveform of the Figure 2 RoB circuit through an
   enqueue/rollback scenario, plus a commit-log style trace of a Meltdown
   test case on the core model — the two artifacts a developer uses to
   pinpoint a reported bug.

   Run with: dune exec examples/waveform.exe *)

open Dvz_ir
module Cfg = Dvz_uarch.Config

let rob_waveform () =
  let rob = Circuits.rob ~entries:4 ~uopc_width:7 in
  let vcd =
    Vcd.dump_simulation rob.Circuits.rob_nl ~cycles:8 ~drive:(fun sim c ->
        let enq = if c < 5 then 1 else 0 in
        Sim.set_input sim rob.Circuits.enq_valid enq;
        Sim.set_input sim rob.Circuits.enq_uopc (0x10 + c);
        Sim.set_input sim rob.Circuits.rollback (if c = 6 then 1 else 0);
        Sim.set_input sim rob.Circuits.rollback_idx 1)
  in
  print_endline "--- rob.vcd (first 40 lines) ---";
  let lines = String.split_on_char '\n' vcd in
  List.iteri (fun i l -> if i < 40 then print_endline l) lines;
  Printf.printf "... (%d lines total; open in any VCD viewer)\n\n"
    (List.length lines)

let core_trace () =
  let cfg = Cfg.boom_small in
  let tc = Dvz_experiments.Attacks.build cfg Dvz_experiments.Attacks.Meltdown in
  let stim =
    Dejavuzz.Packet.stimulus ~secret:Dvz_experiments.Attacks.secret tc
  in
  let core = Dvz_uarch.Core.create cfg stim in
  let slots = Dvz_uarch.Core.run core in
  print_endline "--- Meltdown commit log (around the transient window) ---";
  let interesting =
    List.filter
      (fun s ->
        s.Dvz_uarch.Effect.sl_transient
        || s.Dvz_uarch.Effect.sl_window_opened <> None
        || s.Dvz_uarch.Effect.sl_window_closed)
      slots
  in
  print_string (Dvz_uarch.Trace.render_slots interesting);
  print_endline "--- RoB window events ---";
  print_string (Dvz_uarch.Trace.render_windows (Dvz_uarch.Core.windows core))

let () =
  rob_waveform ();
  core_trace ()
