(* Quickstart: the complete DejaVuzz pipeline on one seed.

   Generates a Spectre-RSB-style trigger (Phase 1), derives and reduces its
   training packets, completes the transient window (Phase 2), runs the
   dual-DUT diffIFT testbench, and applies the Phase 3 oracles.

   Run with: dune exec examples/quickstart.exe *)

module Cfg = Dvz_uarch.Config
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet

let () =
  let cfg = Cfg.boom_small in
  Printf.printf "Target core: %s\n\n" cfg.Cfg.name;

  (* Phase 1: trigger generation + training derivation. *)
  let seed =
    { Seed.kind = Seed.T_return; trigger_entropy = 3; window_entropy = 42;
      tighten = false; mask_high = false }
  in
  let tc = Dejavuzz.Trigger_gen.generate cfg seed in
  Printf.printf "Phase 1: seed %s\n" (Seed.to_string seed);
  Printf.printf "  trigger at 0x%x, window at 0x%x, %d training packet(s)\n"
    tc.Packet.trigger_addr tc.Packet.window_addr
    (List.length tc.Packet.trigger_trainings);
  Printf.printf "  window triggers: %b\n" (Dejavuzz.Trigger_opt.evaluate cfg tc);

  (* Phase 1.2: training reduction. *)
  let tc, removed = Dejavuzz.Trigger_opt.reduce cfg tc in
  let total, effective = Packet.training_overhead tc in
  Printf.printf
    "  reduction dropped %d ineffective packet(s); TO=%d ETO=%d\n\n"
    removed total effective;

  (* Phase 2: window completion + diffIFT coverage. *)
  let tc = Dejavuzz.Window_gen.complete cfg tc in
  Printf.printf "Phase 2: window gadgets: %s\n"
    (String.concat ", " tc.Packet.gadget_tags);
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xBEEF in
  let analysis = Dejavuzz.Oracle.analyze cfg ~secret tc in
  let result = analysis.Dejavuzz.Oracle.a_result in
  Printf.printf "  slots=%d, windows(instance A)=%d, taint growth in windows=%d\n"
    result.Dvz_uarch.Dualcore.r_slots
    (List.length result.Dvz_uarch.Dualcore.r_windows_a)
    (Dvz_uarch.Dualcore.taints_in_windows result);
  let coverage = Dejavuzz.Coverage.create () in
  let fresh = Dejavuzz.Coverage.observe_result coverage result in
  Printf.printf "  taint coverage points: %d\n\n" fresh;

  (* Phase 3: oracles. *)
  Printf.printf "Phase 3:\n";
  (match analysis.Dejavuzz.Oracle.a_attack with
  | None -> Printf.printf "  no transient secret access\n"
  | Some `Meltdown -> Printf.printf "  attack type: Meltdown\n"
  | Some `Spectre -> Printf.printf "  attack type: Spectre\n");
  List.iter
    (fun leak ->
      match leak with
      | Dejavuzz.Oracle.Timing { pairs; components } ->
          Printf.printf "  TIMING LEAK via %s (%d divergent windows)\n"
            (String.concat ", " components)
            (List.length pairs)
      | Dejavuzz.Oracle.Encode { sinks; components } ->
          Printf.printf "  ENCODE LEAK via %s (%d live tainted sinks)\n"
            (String.concat ", " components)
            (List.length sinks))
    analysis.Dejavuzz.Oracle.a_leaks;
  if analysis.Dejavuzz.Oracle.a_leaks = [] then
    Printf.printf "  no exploitable leak for this window payload\n"
