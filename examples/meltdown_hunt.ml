(* Hunting Meltdown-class bugs on XiangShan, including B1
   (MeltDown-Sampling, CVE-2024-44594): the load unit's inconsistent wire
   widths truncate out-of-range addresses, sampling the aliased physical
   location without a permission check.

   The campaign is restricted to exception-window seeds with the MDS-style
   high-bit address mask enabled often, which is where B1 lives.

   Run with: dune exec examples/meltdown_hunt.exe *)

module Cfg = Dvz_uarch.Config
module Seed = Dejavuzz.Seed
module Campaign = Dejavuzz.Campaign
module Rng = Dvz_util.Rng

let () =
  let cfg = Cfg.xiangshan_minimal in
  let rng = Rng.create 2024 in
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xD00D in
  let coverage = Dejavuzz.Coverage.create () in
  let found = Hashtbl.create 16 in
  let iterations = 300 in
  let b1_hits = ref 0 in
  for it = 0 to iterations - 1 do
    let kind =
      Rng.choose rng
        [| Seed.T_access_fault; Seed.T_page_fault; Seed.T_misalign;
           Seed.T_illegal |]
    in
    let seed =
      { (Seed.random_of_kind rng kind) with
        Seed.mask_high = Rng.chance rng 0.5; tighten = true }
    in
    let tc = Dejavuzz.Trigger_gen.generate cfg seed in
    if Dejavuzz.Trigger_opt.evaluate cfg tc then begin
      let tc, _ = Dejavuzz.Trigger_opt.reduce cfg tc in
      let tc = Dejavuzz.Window_gen.complete cfg tc in
      let analysis = Dejavuzz.Oracle.analyze cfg ~secret tc in
      ignore
        (Dejavuzz.Coverage.observe_result coverage
           analysis.Dejavuzz.Oracle.a_result);
      match analysis.Dejavuzz.Oracle.a_attack with
      | Some `Meltdown when Dejavuzz.Oracle.is_leak analysis ->
          if seed.Seed.mask_high then incr b1_hits;
          let key =
            Printf.sprintf "%s/%b" (Seed.kind_name kind) seed.Seed.mask_high
          in
          if not (Hashtbl.mem found key) then begin
            Hashtbl.replace found key it;
            Printf.printf
              "[iter %3d] Meltdown leak via %-22s %s\n" it
              (Seed.kind_name kind)
              (if seed.Seed.mask_high then
                 "through a truncated out-of-range address (B1 sampling)"
               else "through the faulting access itself")
          end
      | _ -> ()
    end
  done;
  Printf.printf
    "\n%d iterations: %d distinct Meltdown leak shapes, %d B1-style \
     (masked-address) samples, coverage=%d\n"
    iterations (Hashtbl.length found) !b1_hits
    (Dejavuzz.Coverage.points coverage)
