(* Command-line driver: run fuzzing campaigns and regenerate each of the
   paper's evaluation tables and figures individually. *)

open Cmdliner
module Cfg = Dvz_uarch.Config
module Campaign = Dejavuzz.Campaign
module E = Dvz_experiments

let version = "1.0.0"

let core_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "boom" -> Ok Cfg.boom_small
    | "xiangshan" | "xs" -> Ok Cfg.xiangshan_minimal
    | _ -> Error (`Msg "core must be 'boom' or 'xiangshan'")
  in
  let print fmt cfg = Format.pp_print_string fmt cfg.Cfg.name in
  Arg.conv (parse, print)

let core_t =
  Arg.(value & opt core_arg Cfg.boom_small
       & info [ "core" ] ~docv:"CORE" ~doc:"Target core: boom or xiangshan.")

let iterations_t default =
  Arg.(value & opt int default
       & info [ "iterations"; "n" ] ~docv:"N" ~doc:"Number of iterations.")

let seed_t =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for reproducible runs.")

(* --- telemetry wiring ----------------------------------------------------- *)

let telemetry_t =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Write structured JSONL campaign events to FILE \
                 ('-' for stdout); inspect saved logs with 'replay-log'.")

let progress_t =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Print a progress line (coverage, findings, throughput) to \
                 stderr periodically.")

let progress_every_t =
  Arg.(value & opt int 10
       & info [ "progress-every" ] ~docv:"N"
           ~doc:"Progress line period in iterations.")

let metrics_t =
  let fmt =
    Arg.enum [ ("json", `Json); ("prometheus", `Prometheus); ("none", `None) ]
  in
  Arg.(value & opt fmt `None
       & info [ "metrics" ] ~docv:"FMT"
           ~doc:"After the run, dump the metrics registry to stderr as \
                 'json' or 'prometheus' text.")

let explain_dir_t =
  Arg.(value & opt (some string) None
       & info [ "explain-dir" ] ~docv:"DIR"
           ~doc:"Replay every fresh finding with the taint-provenance \
                 recorder armed and write finding-NNNN.json/.txt/.dot \
                 secret-to-sink slices into DIR; re-render artifacts with \
                 'explain'.")

(* Builds a Campaign.telemetry from the shared flags, runs [k] with it and
   closes the event file afterwards. *)
let with_telemetry ?explain_dir file progress every k =
  let chan =
    match file with
    | None -> None
    | Some "-" -> Some (stdout, false)
    | Some f -> (
        try Some (open_out f, true)
        with Sys_error e ->
          Printf.eprintf "dejavuzz: cannot open telemetry file: %s\n" e;
          exit 1)
  in
  let sink =
    match chan with
    | None -> Dvz_obs.Events.null
    | Some (c, _) -> Dvz_obs.Events.to_channel c
  in
  (* Insurance for abnormal exits (injected kills, exit 1 paths): the
     tail of the event log reaches disk even when the Fun.protect below
     never unwinds.  Flushing an already-closed channel is harmless. *)
  (match chan with
  | Some (c, _) -> at_exit (fun () -> try flush c with Sys_error _ -> ())
  | None -> ());
  let telemetry =
    { Campaign.quiet with
      Campaign.t_events = sink;
      t_progress_every = (if progress then max 1 every else 0);
      t_progress = prerr_endline;
      t_explain_dir = explain_dir }
  in
  Fun.protect
    ~finally:(fun () ->
      match chan with
      | Some (c, close) -> if close then close_out c else flush c
      | None -> ())
    (fun () -> k telemetry)

(* [plane] widens both dumps to the whole fleet: the JSON gains a
   coordinator/workers split and the Prometheus text one [worker="N"]
   label group per slot. *)
let worker_groups plane =
  match plane with
  | None -> []
  | Some p ->
      List.map
        (fun (slot, snap) -> ([ ("worker", string_of_int slot) ], snap))
        (Dvz_fleet.Telemetry.worker_metrics p)

let dump_metrics ?plane = function
  | `None -> ()
  | `Json -> (
      match plane with
      | None ->
          prerr_endline (Dvz_obs.Exporters.render_json Dvz_obs.Metrics.default)
      | Some p ->
          prerr_endline
            (Dvz_obs.Json.to_string
               (Dvz_obs.Exporters.fleet_json
                  ~coordinator:(Dvz_obs.Metrics.snapshot Dvz_obs.Metrics.default)
                  ~workers:(Dvz_fleet.Telemetry.worker_metrics p))))
  | `Prometheus ->
      prerr_string
        (Dvz_obs.Exporters.prometheus_groups
           (([], Dvz_obs.Metrics.snapshot Dvz_obs.Metrics.default)
           :: worker_groups plane))

(* --- live observability --------------------------------------------------- *)

let serve_t =
  Arg.(value & opt (some int) None
       & info [ "serve" ] ~docv:"PORT"
           ~doc:"Serve live campaign status over HTTP on 127.0.0.1:PORT (0 \
                 picks an ephemeral port, printed to stderr): /healthz, \
                 /status (JSON snapshot), /metrics (Prometheus exposition) \
                 and /events?n=K (most recent event lines).  Read-only \
                 observers: results stay byte-identical with or without \
                 it.")

let profile_flag_t =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Arm the hierarchical self-profiler and print a per-region \
                 count/total/self/max table to stderr after the run.")

let profile_json_t =
  Arg.(value & opt (some string) None
       & info [ "profile-json" ] ~docv:"FILE"
           ~doc:"Write the profiler aggregates to FILE as a dvz-profile/1 \
                 JSON artifact (implies --profile).")

let trace_out_t =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record individual profiler regions and write them to FILE \
                 as Chrome trace_event JSON (load in Perfetto or \
                 chrome://tracing; one track per worker domain).  Implies \
                 --profile.")

type obs = {
  ob_serve : int option;
  ob_profile : bool;
  ob_profile_json : string option;
  ob_trace_out : string option;
}

let obs_t =
  let build ob_serve ob_profile ob_profile_json ob_trace_out =
    { ob_serve; ob_profile; ob_profile_json; ob_trace_out }
  in
  Term.(const build $ serve_t $ profile_flag_t $ profile_json_t $ trace_out_t)

(* Arms the profiler / status server around [k], rewiring the telemetry so
   the campaign publishes to them, and emits the end-of-run artifacts.
   Everything here observes the campaign; nothing feeds back into it.
   [fleet_board] adds a /fleet route serving the coordinator's live
   per-worker supervision snapshot; [plane] (fleet mode) folds worker
   telemetry into every surface — [worker="N"] label groups on /metrics,
   per-worker health on /status and /fleet, and merged end-of-run
   profile/trace artifacts covering coordinator and workers.
   [events_ring], when given, serves /events (the fleet coordinator
   pre-wires it into the plane so worker lifecycle lines land there,
   slot-labelled, without ever touching the campaign's own event
   stream). *)
let with_obs ?fleet_board ?plane ?events_ring obs telemetry k =
  let profiling =
    obs.ob_profile || obs.ob_profile_json <> None || obs.ob_trace_out <> None
  in
  if profiling then
    Dvz_obs.Profile.arm ~trace:(obs.ob_trace_out <> None) ();
  let started = Unix.gettimeofday () in
  let telemetry, server =
    match obs.ob_serve with
    | None -> (telemetry, None)
    | Some port ->
        let board = Campaign.new_board () in
        let ring =
          match events_ring with
          | Some r -> r
          | None -> Dvz_obs.Events.ring ()
        in
        let events =
          if Dvz_obs.Events.is_null telemetry.Campaign.t_events then ring
          else Dvz_obs.Events.tee telemetry.Campaign.t_events ring
        in
        let registry = telemetry.Campaign.t_metrics in
        let telemetry =
          { telemetry with
            Campaign.t_events = events;
            t_board = Some board }
        in
        let with_fleet_health key j =
          match (plane, j) with
          | Some p, Dvz_obs.Json.Obj fields ->
              Dvz_obs.Json.Obj
                (fields @ [ (key, Dvz_fleet.Telemetry.health_json p) ])
          | _ -> j
        in
        let routes =
          [ ( "/healthz",
              fun _ ->
                Dvz_obs.Server.json
                  (Dvz_obs.Json.Obj
                     [ ("version", Dvz_obs.Json.Str version);
                       ( "uptime_s",
                         Dvz_obs.Json.Float (Unix.gettimeofday () -. started)
                       );
                       ("pid", Dvz_obs.Json.Int (Unix.getpid ()));
                       ( "mode",
                         Dvz_obs.Json.Str
                           (match plane with
                           | Some _ -> "fleet"
                           | None -> "local") ) ]) );
            ( "/status",
              fun _ ->
                let base =
                  match Campaign.board_read board with
                  | Some p -> Campaign.progress_json p
                  | None ->
                      Dvz_obs.Json.Obj
                        [ ("phase", Dvz_obs.Json.Str "starting") ]
                in
                Dvz_obs.Server.json (with_fleet_health "fleet" base) );
            ( "/metrics",
              fun _ ->
                { Dvz_obs.Server.status = 200;
                  content_type = "text/plain; version=0.0.4";
                  body =
                    Dvz_obs.Exporters.prometheus_groups
                      (([], Dvz_obs.Metrics.snapshot registry)
                      :: worker_groups plane) } );
            ( "/events",
              fun query ->
                match Dvz_obs.Server.int_param ~default:50 "n" query with
                | Error resp -> resp
                | Ok n ->
                    let keep =
                      match List.assoc_opt "kind" query with
                      | None -> fun _ -> true
                      | Some kind -> (
                          fun line ->
                            match Dvz_obs.Json.of_string line with
                            | Ok j -> (
                                match Dvz_obs.Json.member "type" j with
                                | Some (Dvz_obs.Json.Str t) -> t = kind
                                | _ -> false)
                            | Error _ -> false)
                    in
                    let lines =
                      List.filter keep
                        (Dvz_obs.Events.recent ring (max 0 n))
                    in
                    { Dvz_obs.Server.status = 200;
                      content_type = "application/x-ndjson";
                      body =
                        (match lines with
                        | [] -> ""
                        | _ -> String.concat "\n" lines ^ "\n") } ) ]
          @
          match fleet_board with
          | None -> []
          | Some fb ->
              [ ( "/fleet",
                  fun _ ->
                    let base =
                      match Dvz_fleet.Coordinator.board_read fb with
                      | Some s -> Dvz_fleet.Coordinator.snapshot_json s
                      | None ->
                          Dvz_obs.Json.Obj
                            [ ("phase", Dvz_obs.Json.Str "starting") ]
                    in
                    Dvz_obs.Server.json (with_fleet_health "telemetry" base)
                ) ]
        in
        (match Dvz_obs.Server.start ~port ~routes () with
        | Error e ->
            Printf.eprintf "dejavuzz: %s\n" e;
            exit 1
        | Ok sv ->
            Printf.eprintf "dejavuzz: serving status on http://127.0.0.1:%d/\n%!"
              (Dvz_obs.Server.port sv);
            (telemetry, Some sv))
  in
  Fun.protect
    ~finally:(fun () ->
      (match server with Some sv -> Dvz_obs.Server.stop sv | None -> ());
      if profiling then begin
        let own = Dvz_obs.Profile.snapshot () in
        let entries =
          match plane with
          | None -> own
          | Some p ->
              Dvz_obs.Profile.merge own (Dvz_fleet.Telemetry.merged_profile p)
        in
        if obs.ob_profile then
          prerr_string (Dvz_obs.Profile.render_table entries);
        (match obs.ob_profile_json with
        | Some f ->
            Out_channel.with_open_text f (fun oc ->
                output_string oc
                  (Dvz_obs.Json.to_string (Dvz_obs.Profile.to_json entries));
                output_char oc '\n')
        | None -> ());
        (match obs.ob_trace_out with
        | Some f ->
            let dropped = Dvz_obs.Profile.events_dropped () in
            if dropped > 0 then
              Printf.eprintf
                "dejavuzz: trace buffer overflowed; %d regions dropped\n"
                dropped;
            let own_events = Dvz_obs.Profile.events () in
            (match plane with
            | None -> Dvz_obs.Trace_event.write_file f own_events
            | Some p ->
                Dvz_obs.Trace_event.write_file_multi f
                  ((1, "dejavuzz coordinator", own_events)
                  :: Dvz_fleet.Telemetry.trace_groups p))
        | None -> ());
        Dvz_obs.Profile.disarm ()
      end)
    (fun () -> k telemetry)

(* --- resilience wiring ---------------------------------------------------- *)

let checkpoint_t =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Atomically snapshot campaign state to FILE every \
                 --checkpoint-every iterations; restore with --resume.")

let checkpoint_every_t =
  Arg.(value & opt int 50
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Checkpoint period in iterations.")

let resume_t =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume a campaign from a checkpoint written by \
                 --checkpoint; the completed run is bit-identical to an \
                 uninterrupted one.  A missing FILE starts fresh.")

let fault_t =
  Arg.(value & opt_all string []
       & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Inject a deterministic fault, as \
                 $(i,ACTION)@$(i,ITERATION):$(i,CYCLE) with ACTION one of \
                 crash, hang, corrupt or kill (repeatable; comma lists \
                 allowed).  Exercises the recovery paths this flag's \
                 siblings provide.")

let max_slots_t =
  Arg.(value & opt int 50_000
       & info [ "max-sim-slots" ] ~docv:"N"
           ~doc:"Watchdog: abort any single dual-DUT simulation after N \
                 slots and record a Timeout verdict (0 disables).")

let max_seconds_t =
  Arg.(value & opt (some float) None
       & info [ "max-sim-seconds" ] ~docv:"S"
           ~doc:"Watchdog: abort any single dual-DUT simulation after S \
                 wall-clock seconds.")

let crash_dir_t =
  Arg.(value & opt (some string) None
       & info [ "crash-dir" ] ~docv:"DIR"
           ~doc:"Write one crash-NNNN.json artifact (input seed, \
                 exception, backtrace) per isolated harness crash.")

(* Returns the resilience record plus the raw watchdog limits: the
   budget value is opaque, but the fleet coordinator must ship the
   limits to worker processes, which rebuild their own budgets. *)
let resilience_full_t =
  let build checkpoint every resume faults max_slots max_seconds crash_dir =
    let plan =
      List.concat_map
        (fun spec ->
          match Dvz_resilience.Fault.parse spec with
          | Ok p -> p
          | Error e ->
              Printf.eprintf "dejavuzz: %s\n" e;
              exit 1)
        faults
    in
    let max_slots = if max_slots <= 0 then None else Some max_slots in
    let budget =
      match (max_slots, max_seconds) with
      | None, None -> None
      | _ ->
          Some (Dvz_uarch.Dualcore.budget ?max_slots ?max_wall_s:max_seconds ())
    in
    ( { Campaign.rz_fault_plan = plan;
        rz_budget = budget;
        rz_checkpoint = checkpoint;
        rz_checkpoint_every = every;
        rz_checkpoint_keep = false;
        rz_resume = resume;
        rz_crash_dir = crash_dir },
      (max_slots, max_seconds) )
  in
  Term.(const build $ checkpoint_t $ checkpoint_every_t $ resume_t $ fault_t
        $ max_slots_t $ max_seconds_t $ crash_dir_t)

let resilience_t = Term.(const fst $ resilience_full_t)

(* --- campaign engine parallelism ------------------------------------------ *)

let jobs_t =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains executing each campaign batch (the \
                 orchestrator included).  An execution resource only: \
                 findings, coverage, checkpoints and event streams are \
                 byte-identical for any N.")

let batch_t =
  Arg.(value & opt int 1
       & info [ "batch" ] ~docv:"K"
           ~doc:"Iterations scheduled per corpus snapshot; all K can run \
                 in parallel under --jobs.  Part of the campaign's \
                 deterministic semantics (K > 1 delays corpus feedback \
                 by up to K-1 iterations), unlike --jobs.")

(* Injected kills model the harness process dying: distinct exit code so
   scripts (and CI) can tell "killed, resume me" from real errors.
   Likewise a corrupt/truncated --resume checkpoint gets its own code —
   "restore or delete the snapshot" is a different operator action than
   "fix the flags". *)
let handle_faults k =
  try k () with
  | Dvz_resilience.Fault.Killed { iteration; cycle; _ } ->
      Printf.eprintf
        "dejavuzz: killed by injected fault at iteration %d, cycle %d\n"
        iteration cycle;
      exit 3
  | Campaign.Bad_checkpoint { bc_path; bc_reason; bc_advice } ->
      Printf.eprintf "dejavuzz: %s\n"
        (Campaign.bad_checkpoint_message ~path:bc_path ~reason:bc_reason
           ~advice:bc_advice);
      exit 4
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "dejavuzz: %s\n" msg;
      exit 1

let no_ir_opt_t =
  Arg.(value & flag
       & info [ "no-ir-opt" ]
           ~doc:"Escape hatch: disable the netlist optimization pass \
                 pipeline for every netlist-backed simulation in this run \
                 (VCD dumps, provenance replays, lane engines).  Output is \
                 byte-identical either way; this only trades speed for a \
                 bypass when debugging the passes themselves.")

let fuzz_cmd =
  let run cfg iterations rng_seed random_training no_coverage telemetry_file
      progress progress_every metrics resilience explain_dir jobs batch obs
      no_ir_opt =
    if no_ir_opt then Dvz_ir.Passes.set_enabled false;
    handle_faults (fun () ->
        let options =
          { Campaign.default_options with
            Campaign.iterations; rng_seed; batch;
            style = (if random_training then `Random else `Derived);
            coverage_guided = not no_coverage }
        in
        let stats =
          with_telemetry ?explain_dir telemetry_file progress progress_every
            (fun telemetry ->
              with_obs obs telemetry (fun telemetry ->
                  Campaign.run ~telemetry ~resilience ~jobs cfg options))
        in
        print_string (Dejavuzz.Report.summary stats);
        print_string
          (Dejavuzz.Report.table5 ~core_name:cfg.Cfg.name
             stats.Campaign.s_findings);
        dump_metrics metrics)
  in
  let random_training =
    Arg.(value & flag
         & info [ "random-training" ]
             ~doc:"DejaVuzz* ablation: random training packets.")
  in
  let no_coverage =
    Arg.(value & flag
         & info [ "no-coverage" ]
             ~doc:"DejaVuzz- ablation: disable taint-coverage feedback.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a DejaVuzz fuzzing campaign.")
    Term.(const run $ core_t $ iterations_t 500 $ seed_t $ random_training
          $ no_coverage $ telemetry_t $ progress_t $ progress_every_t
          $ metrics_t $ resilience_t $ explain_dir_t $ jobs_t $ batch_t
          $ obs_t $ no_ir_opt_t)

(* --- fleet mode ------------------------------------------------------------ *)

let workers_t =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N"
           ~doc:"Worker subprocesses to supervise (0 runs everything in \
                 the coordinator).  Like --jobs, an execution resource: \
                 fleet findings, corpus, checkpoints and event streams \
                 are byte-identical to a single-process --jobs 1 run \
                 with the same --batch.")

let worker_jobs_t =
  Arg.(value & opt int 1
       & info [ "worker-jobs" ] ~docv:"N"
           ~doc:"Worker domains each subprocess spends on its shard.")

let heartbeat_t =
  Arg.(value & opt float 1.0
       & info [ "heartbeat-s" ] ~docv:"S"
           ~doc:"Worker heartbeat interval in seconds.")

let deadline_t =
  Arg.(value & opt float 10.0
       & info [ "heartbeat-deadline-s" ] ~docv:"S"
           ~doc:"Declare a worker dead after S seconds of silence (it is \
                 killed and respawned with capped exponential backoff).")

let max_respawns_t =
  Arg.(value & opt int 5
       & info [ "max-respawns" ] ~docv:"K"
           ~doc:"Deaths tolerated per worker slot; beyond K the slot is \
                 retired and its shard redistributed (the fleet shrinks \
                 instead of aborting).")

let chaos_kill_t =
  let parse s =
    match String.split_on_char ':' s with
    | [ e; w ] -> (
        match (int_of_string_opt e, int_of_string_opt w) with
        | Some epoch, Some slot when epoch >= 0 && slot >= 0 ->
            Ok (epoch, slot, Sys.sigkill)
        | _ -> Error (`Msg "chaos-kill: expected EPOCH:SLOT"))
    | _ -> Error (`Msg "chaos-kill: expected EPOCH:SLOT")
  in
  let print fmt (e, w, _) = Format.fprintf fmt "%d:%d" e w in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "chaos-kill" ] ~docv:"EPOCH:SLOT"
           ~doc:"Self-test hook: SIGKILL worker SLOT right after batch \
                 EPOCH is assigned (repeatable).  The campaign must \
                 complete with identical results anyway — this is how CI \
                 gates the supervision path.")

let fleet_cmd =
  let run cfg iterations rng_seed random_training no_coverage telemetry_file
      progress progress_every metrics (resilience, budget_limits) explain_dir
      batch obs workers worker_jobs heartbeat_s deadline_s max_respawns chaos =
    handle_faults (fun () ->
        let options =
          { Campaign.default_options with
            Campaign.iterations; rng_seed; batch;
            style = (if random_training then `Random else `Derived);
            coverage_guided = not no_coverage }
        in
        let fleet_board = Dvz_fleet.Coordinator.new_board () in
        (* Worker lifecycle events land in this ring (slot-labelled by
           the plane) for /events — never in the campaign's own event
           stream, which must stay byte-identical to --jobs 1. *)
        let events_ring = Dvz_obs.Events.ring () in
        let plane = Dvz_fleet.Telemetry.create ~events:events_ring () in
        let profiling =
          obs.ob_profile || obs.ob_profile_json <> None
          || obs.ob_trace_out <> None
        in
        let opts =
          { Dvz_fleet.Coordinator.default_opts with
            Dvz_fleet.Coordinator.fl_workers = workers;
            fl_worker_jobs = worker_jobs;
            fl_heartbeat_s = heartbeat_s;
            fl_deadline_s = deadline_s;
            fl_max_respawns = max_respawns;
            fl_chaos = chaos;
            fl_profile = profiling;
            fl_trace = obs.ob_trace_out <> None }
        in
        let stats, fstats =
          with_telemetry ?explain_dir telemetry_file progress progress_every
            (fun telemetry ->
              with_obs ~fleet_board ~plane ~events_ring obs telemetry
                (fun telemetry ->
                  Dvz_fleet.Coordinator.run ~telemetry ~resilience
                    ~board:fleet_board ~plane ~budget_limits opts cfg options))
        in
        print_string (Dejavuzz.Report.summary stats);
        print_string
          (Dejavuzz.Report.table5 ~core_name:cfg.Cfg.name
             stats.Campaign.s_findings);
        (* Supervision summary on stderr: stdout stays byte-identical to
           the single-process run (the determinism contract CI diffs). *)
        Printf.eprintf
          "dejavuzz fleet: workers=%d spawns=%d restarts=%d retired=%d \
           heartbeats_missed=%d inline_plans=%d\n"
          fstats.Dvz_fleet.Coordinator.fs_workers
          fstats.Dvz_fleet.Coordinator.fs_spawns
          fstats.Dvz_fleet.Coordinator.fs_restarts
          fstats.Dvz_fleet.Coordinator.fs_retired
          fstats.Dvz_fleet.Coordinator.fs_heartbeats_missed
          fstats.Dvz_fleet.Coordinator.fs_inline_plans;
        dump_metrics ~plane metrics)
  in
  let random_training =
    Arg.(value & flag
         & info [ "random-training" ]
             ~doc:"DejaVuzz* ablation: random training packets.")
  in
  let no_coverage =
    Arg.(value & flag
         & info [ "no-coverage" ]
             ~doc:"DejaVuzz- ablation: disable taint-coverage feedback.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Run a campaign on a supervised multi-process worker fleet."
       ~man:
         [ `S Manpage.s_description;
           `P "Spawns $(b,--workers) subprocesses and shards each \
               scheduled batch of iterations across them, supervising \
               with heartbeat deadlines, capped-exponential-backoff \
               respawns and per-slot retirement.  All campaign state \
               (corpus, coverage, finding dedup, checkpoints, events) \
               stays in the coordinator, so worker deaths cost only \
               re-executed iterations: findings, corpus and event \
               streams are byte-identical to $(b,dejavuzz fuzz --jobs 1) \
               with the same flags.  Use $(b,--batch) of at least the \
               worker count to keep every worker busy." ])
    Term.(const run $ core_t $ iterations_t 500 $ seed_t $ random_training
          $ no_coverage $ telemetry_t $ progress_t $ progress_every_t
          $ metrics_t $ resilience_full_t $ explain_dir_t $ batch_t $ obs_t
          $ workers_t $ worker_jobs_t $ heartbeat_t $ deadline_t
          $ max_respawns_t $ chaos_kill_t)

(* The hidden child entrypoint: the coordinator re-execs this binary as
   [dejavuzz worker --slot K] with the protocol on stdin/stdout.  Not
   meant for humans; it prints nothing to stdout (that is the pipe). *)
let worker_cmd =
  let run slot incarnation =
    match
      Dvz_fleet.Worker.main
        ~log:(fun line -> Printf.eprintf "dejavuzz worker %d: %s\n%!" slot line)
        ~incarnation ~slot ~in_fd:Unix.stdin ~out_fd:Unix.stdout ()
    with
    | () -> ()
    | exception Dvz_resilience.Fault.Killed { iteration; cycle; _ } ->
        Printf.eprintf
          "dejavuzz worker %d: killed by injected fault at iteration %d, \
           cycle %d\n"
          slot iteration cycle;
        exit 3
    | exception Failure msg ->
        Printf.eprintf "dejavuzz worker %d: %s\n" slot msg;
        exit 2
  in
  let slot =
    Arg.(value & opt int 0 & info [ "slot" ] ~docv:"K" ~doc:"Worker slot index.")
  in
  let incarnation =
    Arg.(value & opt int 0
         & info [ "incarnation" ] ~docv:"G"
             ~doc:"Spawn generation of this slot; echoed in telemetry \
                   frames so the coordinator can drop a dead \
                   predecessor's in-flight flushes.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"(internal) Fleet worker child; speaks the DVZF pipe protocol \
             on stdin/stdout.  Spawned by 'dejavuzz fleet'.")
    Term.(const run $ slot $ incarnation)

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the cores-under-evaluation summary.")
    Term.(const (fun () -> print_string (E.Table2.render ())) $ const ())

let table3_cmd =
  let run samples rng_seed =
    print_string (E.Table3.render (E.Table3.run ~samples ~rng_seed ()))
  in
  let samples =
    Arg.(value & opt int 40
         & info [ "samples" ] ~docv:"N" ~doc:"Windows sampled per cell.")
  in
  Cmd.v
    (Cmd.info "table3" ~doc:"Training overhead per transient-window type.")
    Term.(const run $ samples $ seed_t)

let table4_cmd =
  let run reps =
    let results =
      [ E.Table4.run ~reps Cfg.boom_small;
        E.Table4.run ~reps Cfg.xiangshan_minimal ]
    in
    print_string (E.Table4.render results)
  in
  let reps =
    Arg.(value & opt int 30
         & info [ "reps" ] ~docv:"N" ~doc:"Simulation repetitions per cell.")
  in
  Cmd.v
    (Cmd.info "table4" ~doc:"Instrumentation and simulation overhead of diffIFT.")
    Term.(const run $ reps)

let table5_cmd =
  let run iterations rng_seed telemetry_file progress progress_every
      resilience jobs batch obs =
    handle_faults (fun () ->
        let results =
          with_telemetry telemetry_file progress progress_every
            (fun telemetry ->
              with_obs obs telemetry (fun telemetry ->
                  E.Table5.run_many ~iterations ~rng_seed ~telemetry
                    ~resilience ~jobs ~batch
                    [ Cfg.boom_small; Cfg.xiangshan_minimal ]))
        in
        print_string (E.Table5.render results))
  in
  Cmd.v
    (Cmd.info "table5" ~doc:"Discovered transient execution bug classes.")
    Term.(const run $ iterations_t 1200 $ seed_t $ telemetry_t $ progress_t
          $ progress_every_t $ resilience_t $ jobs_t $ batch_t $ obs_t)

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6" ~doc:"Taint population over time per attack test case.")
    Term.(const (fun () -> print_string (E.Fig6.render (E.Fig6.run ())))
          $ const ())

let fig7_cmd =
  let run cfg iterations trials rng_seed telemetry_file progress
      progress_every resilience jobs batch obs =
    handle_faults (fun () ->
        let result =
          with_telemetry telemetry_file progress progress_every
            (fun telemetry ->
              with_obs obs telemetry (fun telemetry ->
                  E.Fig7.run ~iterations ~trials ~rng_seed ~telemetry
                    ~resilience ~jobs ~batch cfg))
        in
        print_string (E.Fig7.render result))
  in
  let trials =
    Arg.(value & opt int 5
         & info [ "trials" ] ~docv:"N" ~doc:"Repetitions per fuzzer.")
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Coverage growth: DejaVuzz vs DejaVuzz- vs SpecDoctor.")
    Term.(const run $ core_t $ iterations_t 1000 $ trials $ seed_t
          $ telemetry_t $ progress_t $ progress_every_t $ resilience_t
          $ jobs_t $ batch_t $ obs_t)

let attack_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "spectre-v1" | "v1" -> Ok E.Attacks.Spectre_v1
    | "spectre-v2" | "v2" -> Ok E.Attacks.Spectre_v2
    | "meltdown" -> Ok E.Attacks.Meltdown
    | "spectre-v4" | "v4" -> Ok E.Attacks.Spectre_v4
    | "spectre-rsb" | "rsb" -> Ok E.Attacks.Spectre_rsb
    | _ -> Error (`Msg "attack: v1|v2|meltdown|v4|rsb")
  in
  let print fmt a = Format.pp_print_string fmt (E.Attacks.to_string a) in
  Arg.conv (parse, print)

(* §7 workflow: "developers usually only need simulation waveform files to
   pinpoint bugs" — replay the attack's slot stream through the Figure 2
   RoB circuit and dump a standard VCD any waveform viewer opens. *)
let attack_vcd cfg attack file =
  let tc = E.Attacks.build cfg attack in
  let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret tc in
  let core = Dvz_uarch.Core.create cfg stim in
  let slots = Array.of_list (Dvz_uarch.Core.run core) in
  let entries = 8 in
  let rob = Dvz_ir.Circuits.rob ~entries ~uopc_width:7 in
  let cycles = min (Array.length slots) 4096 in
  let vcd =
    (* Optimization on by default: the passes preserve every named signal,
       so the waveform is byte-identical (regression-tested); --no-ir-opt
       clears the global gate if a pass is ever under suspicion. *)
    Dvz_ir.Vcd.dump_simulation ~opt:true rob.Dvz_ir.Circuits.rob_nl ~cycles
      ~drive:(fun sim c ->
        let s = slots.(c) in
        let module Ef = Dvz_uarch.Effect in
        Dvz_ir.Sim.set_input sim rob.Dvz_ir.Circuits.enq_valid 1;
        Dvz_ir.Sim.set_input sim rob.Dvz_ir.Circuits.enq_uopc
          (Dvz_isa.Encode.encode s.Ef.sl_insn land 0x7F);
        Dvz_ir.Sim.set_input sim rob.Dvz_ir.Circuits.rollback
          (if s.Ef.sl_window_closed then 1 else 0);
        Dvz_ir.Sim.set_input sim rob.Dvz_ir.Circuits.rollback_idx
          (c mod entries))
  in
  Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc vcd);
  Printf.eprintf "wrote %s (%d cycles)\n" file cycles

let trace_cmd =
  let run cfg attack vcd_file no_ir_opt =
    if no_ir_opt then Dvz_ir.Passes.set_enabled false;
    let tc = E.Attacks.build cfg attack in
    let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret tc in
    let dc = Dvz_uarch.Dualcore.create cfg stim in
    let result = Dvz_uarch.Dualcore.run dc in
    print_string (Dvz_uarch.Trace.render_result result);
    Option.iter (attack_vcd cfg attack) vcd_file
  in
  let attack =
    Arg.(value & opt attack_arg E.Attacks.Meltdown
         & info [ "attack" ] ~docv:"NAME"
             ~doc:"Attack test case: v1, v2, meltdown, v4 or rsb.")
  in
  let vcd =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE"
             ~doc:"Also dump a VCD waveform of the run's RoB activity to \
                   FILE (section 7: waveforms pinpoint bugs).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run one curated attack and print the dual-DUT report.")
    Term.(const run $ core_t $ attack $ vcd $ no_ir_opt_t)

let migrate_cmd =
  let run cfg rng_seed =
    let rng = Dvz_util.Rng.create rng_seed in
    let seed = Dejavuzz.Seed.random rng in
    let tc = Dejavuzz.Trigger_gen.generate cfg seed in
    if not (Dejavuzz.Trigger_opt.evaluate cfg tc) then
      print_endline "seed does not trigger; try another --seed"
    else begin
      let tc, _ = Dejavuzz.Trigger_opt.reduce cfg tc in
      let layout = Dejavuzz.Migrate.migrate tc in
      print_string (Dejavuzz.Migrate.render_assembly layout);
      let secret = Array.make Dvz_soc.Layout.secret_dwords 0x42 in
      Printf.printf "# migrated window still triggers: %b\n"
        (Dejavuzz.Migrate.runs_on_flat_memory cfg ~secret tc)
    end
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Stitch a generated stimulus onto a flat memory model (section 7).")
    Term.(const run $ core_t $ seed_t)

let ablation_cmd =
  let run iterations rng_seed jobs batch obs =
    print_string
      (E.Ablation.render
         (with_obs obs Campaign.quiet (fun telemetry ->
              E.Ablation.run ~telemetry ~iterations ~rng_seed ~jobs ~batch
                Cfg.boom_small)))
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Compare diffIFT against CellIFT as the fuzzing substrate.")
    Term.(const run $ iterations_t 400 $ seed_t $ jobs_t $ batch_t $ obs_t)

let bugs_cmd =
  Cmd.v
    (Cmd.info "bugs" ~doc:"Reproduce the B1-B5 CVE proof-of-concepts (section 6.4).")
    Term.(const (fun () -> print_string (E.Bugcheck.render ())) $ const ())

let liveness_cmd =
  let run iterations rng_seed =
    print_string
      (E.Liveness_eval.render
         (E.Liveness_eval.run ~iterations ~rng_seed Cfg.boom_small))
  in
  Cmd.v
    (Cmd.info "liveness"
       ~doc:"Replay SpecDoctor candidates through the liveness oracle.")
    Term.(const run $ iterations_t 150 $ seed_t)

let explain_cmd =
  let run cfg file dot_file json_file max_slots =
    let text =
      match In_channel.with_open_text file In_channel.input_all with
      | text -> text
      | exception Sys_error e ->
          Printf.eprintf "explain: %s\n" e;
          exit 1
    in
    let artifact =
      match Dvz_obs.Json.of_string text with
      | Ok j -> j
      | Error e ->
          Printf.eprintf "explain: %s: %s\n" file e;
          exit 1
    in
    let budget =
      if max_slots <= 0 then None
      else Some (Dvz_uarch.Dualcore.budget ~max_slots ())
    in
    let result =
      (* A provenance artifact carries its full stimulus; a campaign
         crash artifact only carries the structured seed, so the fuzzing
         pipeline rebuilds the testcase before the armed replay. *)
      match Dvz_obs.Json.member "stimulus" artifact with
      | Some _ -> Dejavuzz.Explain.replay_artifact ?budget artifact
      | None -> Dejavuzz.Explain.explain_crash ?budget ~core:cfg artifact
    in
    match result with
    | Error e ->
        Printf.eprintf "explain: %s\n" e;
        exit 1
    | Ok x ->
        print_string (Dejavuzz.Explain.render_text x);
        let write path render =
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (render x))
        in
        Option.iter
          (fun p -> write p Dejavuzz.Explain.render_dot)
          dot_file;
        Option.iter
          (fun p ->
            write p (fun x ->
                Dvz_obs.Json.to_string (Dejavuzz.Explain.to_json x) ^ "\n"))
          json_file
  in
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"A finding-NNNN.json artifact written by fuzz \
                   --explain-dir, or a crash-NNNN.json artifact written by \
                   --crash-dir.")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Also write the secret-to-sink slice union as a Graphviz \
                   digraph to FILE.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write a fresh self-contained provenance artifact \
                   to FILE.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay a finding artifact with taint provenance armed and \
             print its cycle-accurate secret-to-sink slices.")
    Term.(const run $ core_t $ file $ dot $ json $ max_slots_t)

let ir_stats_cmd =
  let run passes =
    let module N = Dvz_ir.Netlist in
    (* Same DUT the ir/sim-cycle benchmarks lower: the Figure 2 RoB plus a
       physical register file whose unused read port is the canonical dead
       cell the DCE pass must retire. *)
    let rob = Dvz_ir.Circuits.rob ~entries:64 ~uopc_width:8 in
    let nl = rob.Dvz_ir.Circuits.rob_nl in
    N.scoped nl "prf" (fun () ->
        let m = N.mem nl ~name:"regfile" ~width:32 ~depth:128 () in
        let waddr = N.input nl ~name:"waddr" 10 in
        let wdata = N.input nl ~name:"wdata" 32 in
        let wen = N.input nl ~name:"wen" 1 in
        N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
        let raddr = N.input nl ~name:"raddr" 10 in
        ignore (N.mem_read nl m raddr));
    match Dvz_ir.Passes.run ?passes nl with
    | _, st ->
        print_string "DUT: rob(entries=64,uopc=8) + prf.regfile (bench DUT)\n";
        Format.printf "@[<v>%a@]@?" Dvz_ir.Passes.pp_stats st
    | exception Invalid_argument msg ->
        Printf.eprintf "ir-stats: %s\n" msg;
        exit 1
  in
  let passes =
    Arg.(value
         & opt (some (list string)) None
         & info [ "passes" ] ~docv:"P1,P2"
             ~doc:"Comma-separated pass subset to run (default: \
                   const-fold,alias,fuse,dce).")
  in
  Cmd.v
    (Cmd.info "ir-stats"
       ~doc:"Run the netlist optimization passes on the shipped benchmark \
             DUT and print per-pass combinational cell counts.")
    Term.(const run $ passes)

let replay_log_cmd =
  let run file =
    match Dejavuzz.Replay.of_file file with
    | Ok summary -> print_string summary
    | Error e ->
        Printf.eprintf "replay-log: %s\n" e;
        exit 1
  in
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"JSONL event log written by --telemetry.")
  in
  Cmd.v
    (Cmd.info "replay-log"
       ~doc:"Re-render a saved JSONL campaign event log into the human \
             end-of-run summary.")
    Term.(const run $ file)

let main =
  let doc = "DejaVuzz: transient-execution bug fuzzing (OCaml reproduction)" in
  Cmd.group (Cmd.info "dejavuzz" ~doc)
    [ fuzz_cmd; fleet_cmd; worker_cmd; table2_cmd; table3_cmd; table4_cmd;
      table5_cmd; fig6_cmd; fig7_cmd; liveness_cmd; trace_cmd; migrate_cmd;
      bugs_cmd; ablation_cmd; replay_log_cmd; explain_cmd; ir_stats_cmd ]

let () = exit (Cmd.eval main)
