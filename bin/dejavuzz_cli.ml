(* Command-line driver: run fuzzing campaigns and regenerate each of the
   paper's evaluation tables and figures individually. *)

open Cmdliner
module Cfg = Dvz_uarch.Config
module Campaign = Dejavuzz.Campaign
module E = Dvz_experiments

let core_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "boom" -> Ok Cfg.boom_small
    | "xiangshan" | "xs" -> Ok Cfg.xiangshan_minimal
    | _ -> Error (`Msg "core must be 'boom' or 'xiangshan'")
  in
  let print fmt cfg = Format.pp_print_string fmt cfg.Cfg.name in
  Arg.conv (parse, print)

let core_t =
  Arg.(value & opt core_arg Cfg.boom_small
       & info [ "core" ] ~docv:"CORE" ~doc:"Target core: boom or xiangshan.")

let iterations_t default =
  Arg.(value & opt int default
       & info [ "iterations"; "n" ] ~docv:"N" ~doc:"Number of iterations.")

let seed_t =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for reproducible runs.")

let fuzz_cmd =
  let run cfg iterations rng_seed random_training no_coverage =
    let options =
      { Campaign.default_options with
        Campaign.iterations; rng_seed;
        style = (if random_training then `Random else `Derived);
        coverage_guided = not no_coverage }
    in
    let stats = Campaign.run cfg options in
    print_string (Dejavuzz.Report.summary stats);
    print_string
      (Dejavuzz.Report.table5 ~core_name:cfg.Cfg.name
         stats.Campaign.s_findings)
  in
  let random_training =
    Arg.(value & flag
         & info [ "random-training" ]
             ~doc:"DejaVuzz* ablation: random training packets.")
  in
  let no_coverage =
    Arg.(value & flag
         & info [ "no-coverage" ]
             ~doc:"DejaVuzz- ablation: disable taint-coverage feedback.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a DejaVuzz fuzzing campaign.")
    Term.(const run $ core_t $ iterations_t 500 $ seed_t $ random_training
          $ no_coverage)

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the cores-under-evaluation summary.")
    Term.(const (fun () -> print_string (E.Table2.render ())) $ const ())

let table3_cmd =
  let run samples rng_seed =
    print_string (E.Table3.render (E.Table3.run ~samples ~rng_seed ()))
  in
  let samples =
    Arg.(value & opt int 40
         & info [ "samples" ] ~docv:"N" ~doc:"Windows sampled per cell.")
  in
  Cmd.v
    (Cmd.info "table3" ~doc:"Training overhead per transient-window type.")
    Term.(const run $ samples $ seed_t)

let table4_cmd =
  let run reps =
    let results =
      [ E.Table4.run ~reps Cfg.boom_small;
        E.Table4.run ~reps Cfg.xiangshan_minimal ]
    in
    print_string (E.Table4.render results)
  in
  let reps =
    Arg.(value & opt int 30
         & info [ "reps" ] ~docv:"N" ~doc:"Simulation repetitions per cell.")
  in
  Cmd.v
    (Cmd.info "table4" ~doc:"Instrumentation and simulation overhead of diffIFT.")
    Term.(const run $ reps)

let table5_cmd =
  let run iterations rng_seed =
    let results =
      [ E.Table5.run ~iterations ~rng_seed Cfg.boom_small;
        E.Table5.run ~iterations ~rng_seed Cfg.xiangshan_minimal ]
    in
    print_string (E.Table5.render results)
  in
  Cmd.v
    (Cmd.info "table5" ~doc:"Discovered transient execution bug classes.")
    Term.(const run $ iterations_t 1200 $ seed_t)

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6" ~doc:"Taint population over time per attack test case.")
    Term.(const (fun () -> print_string (E.Fig6.render (E.Fig6.run ())))
          $ const ())

let fig7_cmd =
  let run cfg iterations trials rng_seed =
    print_string
      (E.Fig7.render (E.Fig7.run ~iterations ~trials ~rng_seed cfg))
  in
  let trials =
    Arg.(value & opt int 5
         & info [ "trials" ] ~docv:"N" ~doc:"Repetitions per fuzzer.")
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Coverage growth: DejaVuzz vs DejaVuzz- vs SpecDoctor.")
    Term.(const run $ core_t $ iterations_t 1000 $ trials $ seed_t)

let attack_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "spectre-v1" | "v1" -> Ok E.Attacks.Spectre_v1
    | "spectre-v2" | "v2" -> Ok E.Attacks.Spectre_v2
    | "meltdown" -> Ok E.Attacks.Meltdown
    | "spectre-v4" | "v4" -> Ok E.Attacks.Spectre_v4
    | "spectre-rsb" | "rsb" -> Ok E.Attacks.Spectre_rsb
    | _ -> Error (`Msg "attack: v1|v2|meltdown|v4|rsb")
  in
  let print fmt a = Format.pp_print_string fmt (E.Attacks.to_string a) in
  Arg.conv (parse, print)

let trace_cmd =
  let run cfg attack =
    let tc = E.Attacks.build cfg attack in
    let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret tc in
    let dc = Dvz_uarch.Dualcore.create cfg stim in
    let result = Dvz_uarch.Dualcore.run dc in
    print_string (Dvz_uarch.Trace.render_result result)
  in
  let attack =
    Arg.(value & opt attack_arg E.Attacks.Meltdown
         & info [ "attack" ] ~docv:"NAME"
             ~doc:"Attack test case: v1, v2, meltdown, v4 or rsb.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run one curated attack and print the dual-DUT report.")
    Term.(const run $ core_t $ attack)

let migrate_cmd =
  let run cfg rng_seed =
    let rng = Dvz_util.Rng.create rng_seed in
    let seed = Dejavuzz.Seed.random rng in
    let tc = Dejavuzz.Trigger_gen.generate cfg seed in
    if not (Dejavuzz.Trigger_opt.evaluate cfg tc) then
      print_endline "seed does not trigger; try another --seed"
    else begin
      let tc, _ = Dejavuzz.Trigger_opt.reduce cfg tc in
      let layout = Dejavuzz.Migrate.migrate tc in
      print_string (Dejavuzz.Migrate.render_assembly layout);
      let secret = Array.make Dvz_soc.Layout.secret_dwords 0x42 in
      Printf.printf "# migrated window still triggers: %b
"
        (Dejavuzz.Migrate.runs_on_flat_memory cfg ~secret tc)
    end
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Stitch a generated stimulus onto a flat memory model (section 7).")
    Term.(const run $ core_t $ seed_t)

let ablation_cmd =
  let run iterations rng_seed =
    print_string
      (E.Ablation.render
         (E.Ablation.run ~iterations ~rng_seed Cfg.boom_small))
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Compare diffIFT against CellIFT as the fuzzing substrate.")
    Term.(const run $ iterations_t 400 $ seed_t)

let bugs_cmd =
  Cmd.v
    (Cmd.info "bugs" ~doc:"Reproduce the B1-B5 CVE proof-of-concepts (section 6.4).")
    Term.(const (fun () -> print_string (E.Bugcheck.render ())) $ const ())

let liveness_cmd =
  let run iterations rng_seed =
    print_string
      (E.Liveness_eval.render
         (E.Liveness_eval.run ~iterations ~rng_seed Cfg.boom_small))
  in
  Cmd.v
    (Cmd.info "liveness"
       ~doc:"Replay SpecDoctor candidates through the liveness oracle.")
    Term.(const run $ iterations_t 150 $ seed_t)

let main =
  let doc = "DejaVuzz: transient-execution bug fuzzing (OCaml reproduction)" in
  Cmd.group (Cmd.info "dejavuzz" ~doc)
    [ fuzz_cmd; table2_cmd; table3_cmd; table4_cmd; table5_cmd; fig6_cmd;
      fig7_cmd; liveness_cmd; trace_cmd; migrate_cmd; bugs_cmd; ablation_cmd ]

let () = exit (Cmd.eval main)
