(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§6) and reports bechamel micro-benchmark latencies
   for the core operations each experiment exercises.

   Run with: dune exec bench/main.exe
   Scale with: DVZ_BENCH_SCALE=small|full (default small: same shapes,
   tractable runtime). *)

open Bechamel
module Cfg = Dvz_uarch.Config
module E = Dvz_experiments

let scale_full =
  match Sys.getenv_opt "DVZ_BENCH_SCALE" with
  | Some ("full" | "FULL") -> true
  | _ -> false

let banner title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --- bechamel micro-benchmarks: one Test.make per table/figure ----------- *)

let micro_tests () =
  let boom = Cfg.boom_small in
  let rng = Dvz_util.Rng.create 1 in
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xAB in
  (* Table 3's unit of work: phase-1 generate + evaluate one seed. *)
  let table3 =
    Test.make ~name:"table3/phase1-generate-evaluate"
      (Staged.stage (fun () ->
           let seed = Dejavuzz.Seed.random rng in
           let tc = Dejavuzz.Trigger_gen.generate boom seed in
           ignore (Dejavuzz.Trigger_opt.evaluate boom tc)))
  in
  (* Table 4's unit of work: one diffIFT dual-DUT simulation of Meltdown. *)
  let meltdown = E.Attacks.build boom E.Attacks.Meltdown in
  let table4 =
    Test.make ~name:"table4/diffift-simulation"
      (Staged.stage (fun () ->
           let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown in
           ignore (Dvz_uarch.Dualcore.run (Dvz_uarch.Dualcore.create boom stim))))
  in
  (* Figure 6's unit of work: one CellIFT-mode simulation (taint explosion). *)
  let fig6 =
    Test.make ~name:"fig6/cellift-simulation"
      (Staged.stage (fun () ->
           let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown in
           ignore
             (Dvz_uarch.Dualcore.run
                (Dvz_uarch.Dualcore.create ~mode:Dvz_ift.Policy.Cellift boom stim))))
  in
  (* Figure 7 / Table 5's unit of work: one full fuzzing iteration
     (phases 1-3) through the campaign loop. *)
  let fig7 =
    Test.make ~name:"fig7/one-campaign-iteration"
      (Staged.stage (fun () ->
           ignore
             (Dejavuzz.Campaign.run boom
                { Dejavuzz.Campaign.default_options with
                  Dejavuzz.Campaign.iterations = 1;
                  rng_seed = Dvz_util.Rng.next rng })))
  in
  (* Same unit of work with telemetry fully enabled, events formatted as
     JSONL and written to /dev/null: the acceptance bar is <5% overhead
     over the bare iteration above. *)
  let devnull = open_out "/dev/null" in
  let telemetry =
    { Dejavuzz.Campaign.quiet with
      Dejavuzz.Campaign.t_events = Dvz_obs.Events.to_channel devnull;
      t_metrics = Dvz_obs.Metrics.create () }
  in
  let fig7_tel =
    Test.make ~name:"fig7/one-campaign-iteration-telemetry"
      (Staged.stage (fun () ->
           ignore
             (Dejavuzz.Campaign.run ~telemetry boom
                { Dejavuzz.Campaign.default_options with
                  Dejavuzz.Campaign.iterations = 1;
                  rng_seed = Dvz_util.Rng.next rng })))
  in
  (* Liveness study's unit of work: one oracle analysis. *)
  let completed = Dejavuzz.Window_gen.complete boom meltdown in
  let liveness =
    Test.make ~name:"liveness/oracle-analysis"
      (Staged.stage (fun () ->
           ignore (Dejavuzz.Oracle.analyze boom ~secret completed)))
  in
  (* Telemetry primitives on the hot path. *)
  let obs_reg = Dvz_obs.Metrics.create () in
  let obs_counter = Dvz_obs.Metrics.counter obs_reg "bench_counter" in
  let obs_hist = Dvz_obs.Metrics.histogram obs_reg "bench_hist" in
  let obs_incr =
    Test.make ~name:"obs/counter-incr"
      (Staged.stage (fun () -> Dvz_obs.Metrics.incr obs_counter))
  in
  let obs_observe =
    Test.make ~name:"obs/histogram-observe"
      (Staged.stage (fun () -> Dvz_obs.Metrics.observe obs_hist 0.003))
  in
  (* Resilience primitives: the per-slot fault check must cost ~nothing
     when no fault plan is armed, and checkpointing must be cheap enough
     to run every few dozen iterations. *)
  let fault_tick =
    Test.make ~name:"resilience/fault-tick-disarmed"
      (Staged.stage (fun () ->
           ignore (Dvz_resilience.Fault.tick ~cycle:100)))
  in
  let snap_path = Filename.temp_file "dvz_bench" ".snap" in
  at_exit (fun () -> try Sys.remove snap_path with Sys_error _ -> ());
  let snap_payload = String.init 4096 (fun i -> Char.chr (i mod 256)) in
  let snapshot_rt =
    Test.make ~name:"resilience/checkpoint-roundtrip"
      (Staged.stage (fun () ->
           Dvz_resilience.Snapshot.save ~path:snap_path ~magic:"bench"
             ~version:1 snap_payload;
           ignore
             (Dvz_resilience.Snapshot.load ~path:snap_path ~magic:"bench")))
  in
  [ table3; table4; fig6; fig7; fig7_tel; liveness; obs_incr; obs_observe;
    fault_tick; snapshot_rt ]

let run_micro () =
  banner "Bechamel micro-benchmarks (one per experiment)";
  let cfg_b = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg_b [ Toolkit.Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "  %-36s %12.1f ns/run\n" name ns)
        analyzed)
    (micro_tests ());
  print_newline ()

(* --- full experiment reproduction ---------------------------------------- *)

let () =
  let t0 = Unix.gettimeofday () in
  banner "Table 2 (cores under evaluation)";
  print_string (E.Table2.render ());

  banner "Table 3 (training overhead per transient-window type)";
  let samples = if scale_full then 100 else 30 in
  print_string (E.Table3.render (E.Table3.run ~samples ~rng_seed:2025 ()));
  Printf.printf
    "(paper: DejaVuzz 0.0 for exception windows, ~85 TO / ~3 ETO for\n\
    \ mispredictions; DejaVuzz* x on XiangShan indirect jumps; SpecDoctor\n\
    \ ~113-127 everywhere it can trigger, x elsewhere)\n";

  banner "Table 4 (overhead of differential information flow tracking)";
  let reps = if scale_full then 100 else 25 in
  print_string
    (E.Table4.render
       [ E.Table4.run ~reps Cfg.boom_small;
         E.Table4.run ~reps Cfg.xiangshan_minimal ]);
  Printf.printf
    "(paper: CellIFT compile ~23x Base on BOOM and times out on XiangShan;\n\
    \ CellIFT simulation ~75x Base, diffIFT ~2.4-4.5x)\n";

  banner "Figure 6 (taint population over time, BOOM)";
  print_string (E.Fig6.render (E.Fig6.run ()));
  Printf.printf
    "(paper: CellIFT explodes at the RoB rollback and saturates; diffIFT\n\
    \ stays bounded; diffIFT-FN plateaus once control taints are suppressed)\n";

  banner "Figure 7 (taint coverage over iterations)";
  let iterations = if scale_full then 5000 else 1000 in
  let trials = if scale_full then 5 else 3 in
  print_string
    (E.Fig7.render (E.Fig7.run ~iterations ~trials ~rng_seed:7 Cfg.boom_small));

  banner "Liveness evaluation (SpecDoctor candidates, BOOM)";
  let li = if scale_full then 400 else 150 in
  print_string
    (E.Liveness_eval.render
       (E.Liveness_eval.run ~iterations:li ~rng_seed:5 Cfg.boom_small));

  banner "B1-B5 CVE proof-of-concepts (section 6.4)";
  print_string (E.Bugcheck.render ());

  banner "Table 5 (discovered transient execution bugs)";
  let t5_iters = if scale_full then 4000 else 1000 in
  print_string
    (E.Table5.render
       (E.Table5.run_many ~iterations:t5_iters ~rng_seed:13
          [ Cfg.boom_small; Cfg.xiangshan_minimal ]));

  banner "Ablation: diffIFT vs CellIFT substrate";
  print_string
    (E.Ablation.render
       (E.Ablation.run ~iterations:(if scale_full then 800 else 250)
          Cfg.boom_small));

  run_micro ();
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
