(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§6) and reports bechamel micro-benchmark latencies
   for the core operations each experiment exercises.

   Run with: dune exec bench/main.exe
   Scale with: DVZ_BENCH_SCALE=small|full (default small: same shapes,
   tractable runtime). *)

open Bechamel
module Cfg = Dvz_uarch.Config
module E = Dvz_experiments

let scale_full =
  match Sys.getenv_opt "DVZ_BENCH_SCALE" with
  | Some ("full" | "FULL") -> true
  | _ -> false

let banner title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* --- netlist-level simulation benches: compiled vs interpretive engines --

   The fig6/cellift-simulation and table4/diffift-simulation units of work
   are one clock cycle of the netlist-level shadow co-simulator on the same
   circuit shape Table 4 uses for instrumentation cost (the Figure 2 RoB
   plus a register file): CellIFT mode runs on the flattened netlist (as
   the real tool must), diffIFT mode on the word-level one.  Each workload
   has an [-interp] twin on the reference interpreter, so the pair measures
   exactly what the compiled engine buys. *)

module Simbench = struct
  module N = Dvz_ir.Netlist
  module Sim = Dvz_ir.Sim
  module Shadow = Dvz_ift.Shadow

  type dut = {
    d_nl : N.t;
    d_enq_valid : N.signal;
    d_enq_uopc : N.signal;
    d_rollback : N.signal;
    d_rollback_idx : N.signal;
    d_wen : N.signal;
    d_waddr : N.signal;
    d_wdata : N.signal;
    d_raddr : N.signal;
  }

  let build () =
    let rob = Dvz_ir.Circuits.rob ~entries:64 ~uopc_width:8 in
    let nl = rob.Dvz_ir.Circuits.rob_nl in
    let wen, waddr, wdata, raddr =
      N.scoped nl "prf" (fun () ->
          let m = N.mem nl ~name:"regfile" ~width:32 ~depth:128 () in
          let waddr = N.input nl ~name:"waddr" 10 in
          let wdata = N.input nl ~name:"wdata" 32 in
          let wen = N.input nl ~name:"wen" 1 in
          N.mem_write nl m ~wen ~addr:waddr ~data:wdata;
          let raddr = N.input nl ~name:"raddr" 10 in
          ignore (N.mem_read nl m raddr);
          (wen, waddr, wdata, raddr))
    in
    { d_nl = nl;
      d_enq_valid = rob.Dvz_ir.Circuits.enq_valid;
      d_enq_uopc = rob.Dvz_ir.Circuits.enq_uopc;
      d_rollback = rob.Dvz_ir.Circuits.rollback;
      d_rollback_idx = rob.Dvz_ir.Circuits.rollback_idx;
      d_wen = wen; d_waddr = waddr; d_wdata = wdata; d_raddr = raddr }

  let translate tr d nl =
    { d_nl = nl;
      d_enq_valid = tr d.d_enq_valid;
      d_enq_uopc = tr d.d_enq_uopc;
      d_rollback = tr d.d_rollback;
      d_rollback_idx = tr d.d_rollback_idx;
      d_wen = tr d.d_wen; d_waddr = tr d.d_waddr;
      d_wdata = tr d.d_wdata; d_raddr = tr d.d_raddr }

  (* One cycle of stimulus: steady enqueue traffic, a rollback every 32
     cycles, and a tainted (pair-differing) write marching through the
     register file so taint keeps flowing through both planes. *)
  let drive_shadow sh d i =
    Shadow.set_input sh d.d_enq_valid 1;
    Shadow.set_input sh d.d_enq_uopc (i land 0xFF);
    Shadow.set_input sh d.d_rollback (if i land 31 = 0 then 1 else 0);
    Shadow.set_input sh d.d_rollback_idx (i land 63);
    Shadow.set_input sh d.d_wen 1;
    Shadow.set_input sh d.d_waddr (i land 127);
    Shadow.set_input_pair sh d.d_wdata (i land 0xFFFF) ((i * 17) land 0xFFFF);
    Shadow.set_input sh d.d_raddr ((i * 7) land 127);
    Shadow.cycle sh

  let drive_sim sim d i =
    Sim.set_input sim d.d_enq_valid 1;
    Sim.set_input sim d.d_enq_uopc (i land 0xFF);
    Sim.set_input sim d.d_rollback (if i land 31 = 0 then 1 else 0);
    Sim.set_input sim d.d_rollback_idx (i land 63);
    Sim.set_input sim d.d_wen 1;
    Sim.set_input sim d.d_waddr (i land 127);
    Sim.set_input sim d.d_wdata (i land 0xFFFF);
    Sim.set_input sim d.d_raddr ((i * 7) land 127);
    Sim.cycle sim

  type workload = { w_name : string; w_engine : string; w_cycle : int -> unit }

  (* The six workloads: the two named benches and the plain simulator, each
     on both engines.  Instances are built once; the per-run unit is one
     driven clock cycle. *)
  let workloads () =
    let d = build () in
    let flat_nl, tr = Dvz_ir.Flatten.flatten_with_map d.d_nl in
    let df = translate tr d flat_nl in
    let shadow name mode dut engine =
      let sh = Shadow.create ~engine mode dut.d_nl in
      let i = ref 0 in
      { w_name = name;
        w_engine = (match engine with `Compiled -> "compiled" | `Interp -> "interp");
        w_cycle = (fun _ -> incr i; drive_shadow sh dut !i) }
    in
    let plain name engine =
      let sim = Sim.create ~engine d.d_nl in
      let i = ref 0 in
      { w_name = name;
        w_engine = (match engine with `Compiled -> "compiled" | `Interp -> "interp");
        w_cycle = (fun _ -> incr i; drive_sim sim d !i) }
    in
    [ shadow "fig6/cellift-simulation" Dvz_ift.Policy.Cellift df `Compiled;
      shadow "fig6/cellift-simulation-interp" Dvz_ift.Policy.Cellift df `Interp;
      shadow "table4/diffift-simulation" Dvz_ift.Policy.Diffift d `Compiled;
      shadow "table4/diffift-simulation-interp" Dvz_ift.Policy.Diffift d `Interp;
      plain "ir/sim-cycle" `Compiled;
      plain "ir/sim-cycle-interp" `Interp ]

  let tests () =
    List.map
      (fun w -> Test.make ~name:w.w_name (Staged.stage (fun () -> w.w_cycle 0)))
      (workloads ())

  (* Plain wall-clock measurement for the machine-readable BENCH_sim.json
     artifact: warm up, then take the fastest of several fixed-size blocks
     — scheduler and frequency noise is strictly additive, so the minimum
     is the stablest estimator and keeps the CI regression gate tight. *)
  let min_of_blocks ~blocks ~per_block run =
    let best = ref infinity in
    for _ = 1 to blocks do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to per_block do run () done;
      let dt = Unix.gettimeofday () -. t0 in
      best := Float.min !best (dt *. 1e9 /. float_of_int per_block)
    done;
    !best

  let measure_ns w =
    for _ = 1 to 2_000 do w.w_cycle 0 done;
    min_of_blocks ~blocks:5 ~per_block:8_000 (fun () -> w.w_cycle 0)

  (* The lane engine on the same DUT: one SoA instance stepping [lanes_k]
     independent simulations per cycle.  Reported per lane-cycle next to
     the scalar ir/sim-cycle number; CI gates the speedup at >= 2x — the
     point of the layout is that one opcode dispatch amortizes over K
     lanes of unsafe-indexed word ops. *)
  let lanes_k = 8

  let lanes_report scalar_ns =
    let d = build () in
    let lanes = Sim.Lanes.create ~opt:true ~k:lanes_k d.d_nl in
    let i = ref 0 in
    let drive () =
      incr i;
      let n = !i in
      Sim.Lanes.set_input_all lanes d.d_enq_valid 1;
      Sim.Lanes.set_input_all lanes d.d_enq_uopc (n land 0xFF);
      Sim.Lanes.set_input_all lanes d.d_rollback (if n land 31 = 0 then 1 else 0);
      Sim.Lanes.set_input_all lanes d.d_rollback_idx (n land 63);
      Sim.Lanes.set_input_all lanes d.d_wen 1;
      (* per-lane divergence so no lane degenerates into another *)
      for l = 0 to lanes_k - 1 do
        Sim.Lanes.set_input lanes ~lane:l d.d_waddr ((n + (l * 17)) land 127);
        Sim.Lanes.set_input lanes ~lane:l d.d_wdata ((n * (l + 3)) land 0xFFFF)
      done;
      Sim.Lanes.set_input_all lanes d.d_raddr ((n * 7) land 127);
      Sim.Lanes.cycle lanes
    in
    for _ = 1 to 2_000 do drive () done;
    let batch_ns = min_of_blocks ~blocks:5 ~per_block:8_000 drive in
    let per_lane_ns = batch_ns /. float_of_int lanes_k in
    Dvz_obs.Json.Obj
      [ ("name", Dvz_obs.Json.Str "ir/sim-cycle-lanes");
        ("k", Dvz_obs.Json.Int lanes_k);
        ("ns_per_batch_cycle", Dvz_obs.Json.Float batch_ns);
        ("ns_per_lane_cycle", Dvz_obs.Json.Float per_lane_ns);
        ("scalar_ns_per_cycle", Dvz_obs.Json.Float scalar_ns);
        ("speedup",
         Dvz_obs.Json.Float (scalar_ns /. Float.max 1e-9 per_lane_ns)) ]

  (* Batched phase-1 trigger evaluation: a scheduler batch of candidates
     through [Trigger_opt.evaluate_batch] (pooled, per-candidate warm
     testbenches) vs the scalar evaluate loop over the same array.
     Recorded, not gated — the batch pool's win is pool-hit dependent. *)
  let phase1_lanes_report () =
    let boom = Cfg.boom_small in
    let rng = Dvz_util.Rng.create 31 in
    let tcs =
      Array.init 8 (fun _ ->
          Dejavuzz.Trigger_gen.generate ~force_training:true boom
            (Dejavuzz.Seed.random rng))
    in
    let batched () = ignore (Dejavuzz.Trigger_opt.evaluate_batch boom tcs) in
    let scalar () =
      Array.iter (fun tc -> ignore (Dejavuzz.Trigger_opt.evaluate boom tc)) tcs
    in
    Dejavuzz.Simpool.clear ();
    for _ = 1 to 20 do batched () done;
    let batched_ns = min_of_blocks ~blocks:4 ~per_block:50 batched in
    for _ = 1 to 20 do scalar () done;
    let scalar_ns = min_of_blocks ~blocks:4 ~per_block:50 scalar in
    Dvz_obs.Json.Obj
      [ ("name", Dvz_obs.Json.Str "campaign/phase1-lanes");
        ("batch", Dvz_obs.Json.Int (Array.length tcs));
        ("batched_ns", Dvz_obs.Json.Float batched_ns);
        ("scalar_ns", Dvz_obs.Json.Float scalar_ns);
        ("speedup",
         Dvz_obs.Json.Float (scalar_ns /. Float.max 1.0 batched_ns)) ]

  (* End-to-end dual-DUT runs through the abstract core model, one entry
     per IFT mode.  These are the workloads the provenance option must not
     slow down while disarmed; CI gates them against the committed
     baseline (normalised by the interp scale to factor out machine
     speed). *)
  let e2e_report () =
    let boom = Cfg.boom_small in
    let meltdown = E.Attacks.build boom E.Attacks.Meltdown in
    let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown in
    let measure mode =
      let run () =
        ignore
          (Dvz_uarch.Dualcore.run (Dvz_uarch.Dualcore.create ~mode boom stim))
      in
      for _ = 1 to 30 do run () done;
      min_of_blocks ~blocks:4 ~per_block:100 run
    in
    List.map
      (fun (name, mode) ->
        Dvz_obs.Json.Obj
          [ ("name", Dvz_obs.Json.Str name);
            ("ns_per_run", Dvz_obs.Json.Float (measure mode)) ])
      [ ("table4/dualcore-diffift-e2e", Dvz_ift.Policy.Diffift);
        ("fig6/dualcore-cellift-e2e", Dvz_ift.Policy.Cellift) ]

  (* Batched-campaign throughput: the same deterministic campaign run on 1
     and 4 jobs.  Records the wall-clock scaling CI gates (only when the
     machine actually has the cores — [domains_available] says so) plus a
     determinism bit re-checking that jobs never change results. *)
  let campaign_report () =
    let module C = Dejavuzz.Campaign in
    let boom = Cfg.boom_small in
    let options =
      { C.default_options with C.iterations = 64; rng_seed = 11; batch = 8 }
    in
    let run jobs () = ignore (C.run ~jobs boom options) in
    let measure jobs =
      run jobs ();
      (* warmed; campaigns are long, so blocks of one run suffice *)
      min_of_blocks ~blocks:3 ~per_block:1 (run jobs)
    in
    let jobs1_ns = measure 1 in
    let jobs4_ns = measure 4 in
    let deterministic = C.run ~jobs:1 boom options = C.run ~jobs:4 boom options in
    Dvz_obs.Json.Obj
      [ ("name", Dvz_obs.Json.Str "campaign/batch-throughput");
        ("iterations", Dvz_obs.Json.Int options.C.iterations);
        ("batch", Dvz_obs.Json.Int options.C.batch);
        ("jobs1_ns", Dvz_obs.Json.Float jobs1_ns);
        ("jobs4_ns", Dvz_obs.Json.Float jobs4_ns);
        ("scaling", Dvz_obs.Json.Float (jobs1_ns /. Float.max 1.0 jobs4_ns));
        ("jobs_requested", Dvz_obs.Json.Int 4);
        ("jobs_effective",
         Dvz_obs.Json.Int (Dvz_util.Parallel.effective_lanes 4));
        ("domains_available", Dvz_obs.Json.Int (Dvz_util.Parallel.available ()));
        ("deterministic", Dvz_obs.Json.Bool deterministic) ]

  (* What the layered engine costs when there is nothing to parallelise:
     the same 64-iteration campaign run once through the batching
     machinery (snapshot → schedule a plan batch → dispatch → fold,
     batch = 8) and once as the direct sequential fold (batch = 1, the
     classic feedback loop with no batch bookkeeping), both at jobs = 1.
     The ratio is the price of keeping one engine for both shapes. *)
  let parallel_overhead_report () =
    let module C = Dejavuzz.Campaign in
    let boom = Cfg.boom_small in
    let options batch =
      { C.default_options with C.iterations = 64; rng_seed = 11; batch }
    in
    let measure batch =
      let run () = ignore (C.run ~jobs:1 boom (options batch)) in
      run ();
      min_of_blocks ~blocks:3 ~per_block:1 run
    in
    let engine_ns = measure 8 in
    let direct_ns = measure 1 in
    Dvz_obs.Json.Obj
      [ ("name", Dvz_obs.Json.Str "campaign/parallel-overhead");
        ("iterations", Dvz_obs.Json.Int 64);
        ("engine_batch", Dvz_obs.Json.Int 8);
        ("engine_ns", Dvz_obs.Json.Float engine_ns);
        ("direct_ns", Dvz_obs.Json.Float direct_ns);
        ("overhead", Dvz_obs.Json.Float (engine_ns /. Float.max 1.0 direct_ns));
        ("domains_available", Dvz_obs.Json.Int (Dvz_util.Parallel.available ())) ]

  (* What the per-domain instance pool buys: one dual-DUT Meltdown run
     through a freshly constructed testbench vs through the pooled one
     (a [Dualcore.reset] re-arm).  The speedup is recorded, not gated —
     it is the mechanism behind the jobs=1 ns/iteration improvement the
     e2e and campaign gates above already hold. *)
  let pooled_vs_fresh_report () =
    let boom = Cfg.boom_small in
    let meltdown = E.Attacks.build boom E.Attacks.Meltdown in
    let stim () = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown in
    let fresh () =
      ignore (Dvz_uarch.Dualcore.run (Dvz_uarch.Dualcore.create boom (stim ())))
    in
    let pooled () =
      ignore (Dvz_uarch.Dualcore.run (Dejavuzz.Simpool.acquire boom (stim ())))
    in
    Dejavuzz.Simpool.clear ();
    for _ = 1 to 30 do fresh () done;
    let fresh_ns = min_of_blocks ~blocks:4 ~per_block:100 fresh in
    for _ = 1 to 30 do pooled () done;
    let pooled_ns = min_of_blocks ~blocks:4 ~per_block:100 pooled in
    Dvz_obs.Json.Obj
      [ ("name", Dvz_obs.Json.Str "campaign/pooled-vs-fresh");
        ("fresh_ns", Dvz_obs.Json.Float fresh_ns);
        ("pooled_ns", Dvz_obs.Json.Float pooled_ns);
        ("speedup", Dvz_obs.Json.Float (fresh_ns /. Float.max 1.0 pooled_ns)) ]

  (* What one telemetry flush costs the plane: encoding a realistic
     worker batch for the wire, decoding it coordinator-side, and
     merging its cumulative metrics snapshot into a slot aggregate.
     Flushes ride the heartbeat cadence (~1/s per worker), so these are
     recorded, not gated — the numbers document how far off any hot
     path the plane sits. *)
  let telemetry_report () =
    let reg = Dvz_obs.Metrics.create () in
    for i = 0 to 15 do
      let c =
        Dvz_obs.Metrics.counter reg ~help:"bench telemetry counter"
          (Printf.sprintf "dvz_bench_counter_%d_total" i)
      in
      Dvz_obs.Metrics.incr ~by:(i * 3) c
    done;
    let h = Dvz_obs.Metrics.histogram reg "dvz_bench_seconds" in
    for i = 1 to 64 do
      Dvz_obs.Metrics.observe h (float_of_int i /. 100.0)
    done;
    let snap = Dvz_obs.Metrics.snapshot reg in
    let profile =
      List.init 24 (fun i ->
          { Dvz_obs.Profile.pf_path = Printf.sprintf "campaign/phase%d" i;
            pf_name = Printf.sprintf "phase%d" i;
            pf_depth = 1;
            pf_count = 100 + i;
            pf_total_s = 0.25;
            pf_self_s = 0.125;
            pf_max_s = 0.01 })
    in
    let trace =
      List.init 32 (fun i ->
          { Dvz_obs.Profile.ev_path = "campaign/iteration";
            ev_name = "iteration";
            ev_tid = 1;
            ev_start = float_of_int i *. 0.001;
            ev_dur = 0.0005 })
    in
    let batch =
      { Dvz_fleet.Wire.tb_seq = 7;
        tb_metrics = snap;
        tb_profile = profile;
        tb_trace = trace;
        tb_trace_dropped = 0;
        tb_events = [ {|{"type":"assign","epoch":3,"plans":8}|} ];
        tb_events_dropped = 0 }
    in
    let payload = Dvz_fleet.Wire.telemetry_to_string batch in
    let codec () =
      match
        Dvz_fleet.Wire.telemetry_of_string
          (Dvz_fleet.Wire.telemetry_to_string batch)
      with
      | Ok _ -> ()
      | Error e -> failwith ("bench: telemetry codec: " ^ e)
    in
    let merge () = ignore (Dvz_obs.Metrics.merge snap snap) in
    for _ = 1 to 100 do codec () done;
    let codec_ns = min_of_blocks ~blocks:4 ~per_block:400 codec in
    let merge_ns = min_of_blocks ~blocks:4 ~per_block:2_000 merge in
    Dvz_obs.Json.Obj
      [ ("name", Dvz_obs.Json.Str "fleet/telemetry-flush");
        ("payload_bytes", Dvz_obs.Json.Int (String.length payload));
        ("codec_roundtrip_ns", Dvz_obs.Json.Float codec_ns);
        ("metrics_merge_ns", Dvz_obs.Json.Float merge_ns) ]

  let json_report () =
    let ws = workloads () in
    let measured = List.map (fun w -> (w, measure_ns w)) ws in
    let find name engine =
      List.find_opt
        (fun (w, _) ->
          w.w_engine = engine
          && (w.w_name = name || w.w_name = name ^ "-interp"))
        measured
    in
    let bench_objs =
      List.map
        (fun (w, ns) ->
          Dvz_obs.Json.Obj
            [ ("name", Dvz_obs.Json.Str w.w_name);
              ("engine", Dvz_obs.Json.Str w.w_engine);
              ("ns_per_cycle", Dvz_obs.Json.Float ns) ])
        measured
    in
    let speedups =
      List.filter_map
        (fun base ->
          match (find base "compiled", find base "interp") with
          | Some (_, c), Some (_, i) when c > 0.0 ->
              Some
                (Dvz_obs.Json.Obj
                   [ ("name", Dvz_obs.Json.Str base);
                     ("interp_ns_per_cycle", Dvz_obs.Json.Float i);
                     ("compiled_ns_per_cycle", Dvz_obs.Json.Float c);
                     ("speedup", Dvz_obs.Json.Float (i /. c)) ])
          | _ -> None)
        [ "fig6/cellift-simulation"; "table4/diffift-simulation";
          "ir/sim-cycle" ]
    in
    let scalar_sim_ns =
      match find "ir/sim-cycle" "compiled" with
      | Some (_, ns) -> ns
      | None -> nan
    in
    Dvz_obs.Json.Obj
      [ ("schema", Dvz_obs.Json.Str "dvz-bench-sim/7");
        ("benches", Dvz_obs.Json.Arr bench_objs);
        ("speedups", Dvz_obs.Json.Arr speedups);
        ("lanes", Dvz_obs.Json.Arr [ lanes_report scalar_sim_ns ]);
        ("e2e", Dvz_obs.Json.Arr (e2e_report ()));
        ("campaign",
         Dvz_obs.Json.Arr
           [ campaign_report (); parallel_overhead_report ();
             pooled_vs_fresh_report (); phase1_lanes_report () ]);
        ("fleet", Dvz_obs.Json.Arr [ telemetry_report () ]) ]

  let write_json path =
    let json = json_report () in
    let oc = open_out path in
    output_string oc (Dvz_obs.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    (* Echo the speedups so CI logs show the headline numbers. *)
    (match json with
    | Dvz_obs.Json.Obj fields -> (
        match List.assoc_opt "speedups" fields with
        | Some (Dvz_obs.Json.Arr sps) ->
            List.iter
              (fun sp ->
                match sp with
                | Dvz_obs.Json.Obj f -> (
                    match
                      (List.assoc_opt "name" f, List.assoc_opt "speedup" f)
                    with
                    | Some (Dvz_obs.Json.Str n), Some (Dvz_obs.Json.Float s) ->
                        Printf.printf "%-32s %.1fx compiled over interp\n" n s
                    | _ -> ())
                | _ -> ())
              sps
        | _ -> ());
        (match List.assoc_opt "lanes" fields with
        | Some (Dvz_obs.Json.Arr ls) ->
            List.iter
              (fun l ->
                match l with
                | Dvz_obs.Json.Obj f -> (
                    match
                      ( List.assoc_opt "name" f,
                        List.assoc_opt "k" f,
                        List.assoc_opt "speedup" f )
                    with
                    | ( Some (Dvz_obs.Json.Str n),
                        Some (Dvz_obs.Json.Int k),
                        Some (Dvz_obs.Json.Float s) ) ->
                        Printf.printf "%-32s %.1fx lanes (k=%d) over scalar\n"
                          n s k
                    | _ -> ())
                | _ -> ())
              ls
        | _ -> ());
        (match List.assoc_opt "campaign" fields with
        | Some (Dvz_obs.Json.Arr cs) ->
            List.iter
              (fun c ->
                match c with
                | Dvz_obs.Json.Obj f -> (
                    match
                      ( List.assoc_opt "name" f,
                        List.assoc_opt "scaling" f,
                        List.assoc_opt "overhead" f,
                        List.assoc_opt "domains_available" f )
                    with
                    | ( Some (Dvz_obs.Json.Str n),
                        Some (Dvz_obs.Json.Float s),
                        _,
                        Some (Dvz_obs.Json.Int d) ) ->
                        Printf.printf
                          "%-32s %.2fx scaling at 4 jobs (%d domains available)\n"
                          n s d
                    | ( Some (Dvz_obs.Json.Str n),
                        None,
                        Some (Dvz_obs.Json.Float o),
                        _ ) ->
                        Printf.printf
                          "%-32s %.2fx engine over direct fold at 1 job\n" n o
                    | Some (Dvz_obs.Json.Str n), None, None, None -> (
                        match List.assoc_opt "speedup" f with
                        | Some (Dvz_obs.Json.Float s) ->
                            let what =
                              if n = "campaign/phase1-lanes" then
                                "batched over scalar evaluation"
                              else "pooled over fresh construction"
                            in
                            Printf.printf "%-32s %.2fx %s\n" n s what
                        | _ -> ())
                    | _ -> ())
                | _ -> ())
              cs
        | _ -> ())
    | _ -> ());
    Printf.printf "wrote %s\n" path
end

(* --- bechamel micro-benchmarks: one Test.make per table/figure ----------- *)

let micro_tests () =
  let boom = Cfg.boom_small in
  let rng = Dvz_util.Rng.create 1 in
  let secret = Array.make Dvz_soc.Layout.secret_dwords 0xAB in
  (* Table 3's unit of work: phase-1 generate + evaluate one seed. *)
  let table3 =
    Test.make ~name:"table3/phase1-generate-evaluate"
      (Staged.stage (fun () ->
           let seed = Dejavuzz.Seed.random rng in
           let tc = Dejavuzz.Trigger_gen.generate boom seed in
           ignore (Dejavuzz.Trigger_opt.evaluate boom tc)))
  in
  (* Table 4's end-to-end unit of work: one diffIFT dual-DUT simulation of
     Meltdown through the abstract core model.  (The netlist-level
     table4/diffift-simulation bench lives in {!Simbench}.) *)
  let meltdown = E.Attacks.build boom E.Attacks.Meltdown in
  let table4 =
    Test.make ~name:"table4/dualcore-diffift-e2e"
      (Staged.stage (fun () ->
           let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown in
           ignore (Dvz_uarch.Dualcore.run (Dvz_uarch.Dualcore.create boom stim))))
  in
  (* Figure 6's end-to-end unit of work: one CellIFT-mode simulation (taint
     explosion) through the abstract core model. *)
  let fig6 =
    Test.make ~name:"fig6/dualcore-cellift-e2e"
      (Staged.stage (fun () ->
           let stim = Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown in
           ignore
             (Dvz_uarch.Dualcore.run
                (Dvz_uarch.Dualcore.create ~mode:Dvz_ift.Policy.Cellift boom stim))))
  in
  (* Figure 7 / Table 5's unit of work: one full fuzzing iteration
     (phases 1-3) through the campaign loop. *)
  let fig7 =
    Test.make ~name:"fig7/one-campaign-iteration"
      (Staged.stage (fun () ->
           ignore
             (Dejavuzz.Campaign.run boom
                { Dejavuzz.Campaign.default_options with
                  Dejavuzz.Campaign.iterations = 1;
                  rng_seed = Dvz_util.Rng.next rng })))
  in
  (* Same unit of work with telemetry fully enabled, events formatted as
     JSONL and written to /dev/null: the acceptance bar is <5% overhead
     over the bare iteration above. *)
  let devnull = open_out "/dev/null" in
  let telemetry =
    { Dejavuzz.Campaign.quiet with
      Dejavuzz.Campaign.t_events = Dvz_obs.Events.to_channel devnull;
      t_metrics = Dvz_obs.Metrics.create () }
  in
  let fig7_tel =
    Test.make ~name:"fig7/one-campaign-iteration-telemetry"
      (Staged.stage (fun () ->
           ignore
             (Dejavuzz.Campaign.run ~telemetry boom
                { Dejavuzz.Campaign.default_options with
                  Dejavuzz.Campaign.iterations = 1;
                  rng_seed = Dvz_util.Rng.next rng })))
  in
  (* Liveness study's unit of work: one oracle analysis. *)
  let completed = Dejavuzz.Window_gen.complete boom meltdown in
  let liveness =
    Test.make ~name:"liveness/oracle-analysis"
      (Staged.stage (fun () ->
           ignore (Dejavuzz.Oracle.analyze boom ~secret completed)))
  in
  (* The explain pass's unit of work: one armed provenance replay plus
     backward slicing — the per-finding cost of --explain-dir. *)
  let explain_stim =
    Dejavuzz.Packet.stimulus ~secret:E.Attacks.secret meltdown
  in
  let explain =
    Test.make ~name:"explain/provenance-replay"
      (Staged.stage (fun () ->
           ignore (Dejavuzz.Explain.explain ~attack:"meltdown" boom explain_stim)))
  in
  (* Telemetry primitives on the hot path. *)
  let obs_reg = Dvz_obs.Metrics.create () in
  let obs_counter = Dvz_obs.Metrics.counter obs_reg "bench_counter" in
  let obs_hist = Dvz_obs.Metrics.histogram obs_reg "bench_hist" in
  let obs_incr =
    Test.make ~name:"obs/counter-incr"
      (Staged.stage (fun () -> Dvz_obs.Metrics.incr obs_counter))
  in
  let obs_observe =
    Test.make ~name:"obs/histogram-observe"
      (Staged.stage (fun () -> Dvz_obs.Metrics.observe obs_hist 0.003))
  in
  (* Resilience primitives: the per-slot fault check must cost ~nothing
     when no fault plan is armed, and checkpointing must be cheap enough
     to run every few dozen iterations. *)
  let fault_tick =
    Test.make ~name:"resilience/fault-tick-disarmed"
      (Staged.stage (fun () ->
           ignore (Dvz_resilience.Fault.tick ~cycle:100)))
  in
  let snap_path = Filename.temp_file "dvz_bench" ".snap" in
  at_exit (fun () -> try Sys.remove snap_path with Sys_error _ -> ());
  let snap_payload = String.init 4096 (fun i -> Char.chr (i mod 256)) in
  let snapshot_rt =
    Test.make ~name:"resilience/checkpoint-roundtrip"
      (Staged.stage (fun () ->
           Dvz_resilience.Snapshot.save ~path:snap_path ~magic:"bench"
             ~version:1 snap_payload;
           ignore
             (Dvz_resilience.Snapshot.load ~path:snap_path ~magic:"bench")))
  in
  Simbench.tests ()
  @ [ table3; table4; fig6; fig7; fig7_tel; liveness; explain; obs_incr;
      obs_observe; fault_tick; snapshot_rt ]

let run_micro () =
  banner "Bechamel micro-benchmarks (one per experiment)";
  let cfg_b = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg_b [ Toolkit.Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "  %-36s %12.1f ns/run\n" name ns)
        analyzed)
    (micro_tests ());
  print_newline ()

(* --- full experiment reproduction ---------------------------------------- *)

let () =
  (* `main.exe --sim-json FILE` is the CI smoke mode: measure only the
     compiled-vs-interpretive simulation benches and write the
     machine-readable report, skipping the full experiment reproduction. *)
  (match Array.to_list Sys.argv with
  | _ :: "--sim-json" :: path :: _ ->
      Simbench.write_json path;
      exit 0
  | _ -> ());
  let t0 = Unix.gettimeofday () in
  banner "Table 2 (cores under evaluation)";
  print_string (E.Table2.render ());

  banner "Table 3 (training overhead per transient-window type)";
  let samples = if scale_full then 100 else 30 in
  print_string (E.Table3.render (E.Table3.run ~samples ~rng_seed:2025 ()));
  Printf.printf
    "(paper: DejaVuzz 0.0 for exception windows, ~85 TO / ~3 ETO for\n\
    \ mispredictions; DejaVuzz* x on XiangShan indirect jumps; SpecDoctor\n\
    \ ~113-127 everywhere it can trigger, x elsewhere)\n";

  banner "Table 4 (overhead of differential information flow tracking)";
  let reps = if scale_full then 100 else 25 in
  print_string
    (E.Table4.render
       [ E.Table4.run ~reps Cfg.boom_small;
         E.Table4.run ~reps Cfg.xiangshan_minimal ]);
  Printf.printf
    "(paper: CellIFT compile ~23x Base on BOOM and times out on XiangShan;\n\
    \ CellIFT simulation ~75x Base, diffIFT ~2.4-4.5x)\n";

  banner "Figure 6 (taint population over time, BOOM)";
  print_string (E.Fig6.render (E.Fig6.run ()));
  Printf.printf
    "(paper: CellIFT explodes at the RoB rollback and saturates; diffIFT\n\
    \ stays bounded; diffIFT-FN plateaus once control taints are suppressed)\n";

  banner "Figure 7 (taint coverage over iterations)";
  let iterations = if scale_full then 5000 else 1000 in
  let trials = if scale_full then 5 else 3 in
  print_string
    (E.Fig7.render (E.Fig7.run ~iterations ~trials ~rng_seed:7 Cfg.boom_small));

  banner "Liveness evaluation (SpecDoctor candidates, BOOM)";
  let li = if scale_full then 400 else 150 in
  print_string
    (E.Liveness_eval.render
       (E.Liveness_eval.run ~iterations:li ~rng_seed:5 Cfg.boom_small));

  banner "B1-B5 CVE proof-of-concepts (section 6.4)";
  print_string (E.Bugcheck.render ());

  banner "Table 5 (discovered transient execution bugs)";
  let t5_iters = if scale_full then 4000 else 1000 in
  print_string
    (E.Table5.render
       (E.Table5.run_many ~iterations:t5_iters ~rng_seed:13
          [ Cfg.boom_small; Cfg.xiangshan_minimal ]));

  banner "Ablation: diffIFT vs CellIFT substrate";
  print_string
    (E.Ablation.render
       (E.Ablation.run ~iterations:(if scale_full then 800 else 250)
          Cfg.boom_small));

  run_micro ();
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
