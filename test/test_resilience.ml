(* Tests for the campaign resilience layer: snapshots, fault injection,
   watchdog budgets, supervised Parallel.map, crash isolation and
   checkpoint/resume determinism. *)

open Dvz_soc
module Rng = Dvz_util.Rng
module Parallel = Dvz_util.Parallel
module Cfg = Dvz_uarch.Config
module Dualcore = Dvz_uarch.Dualcore
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module Trigger_gen = Dejavuzz.Trigger_gen
module Trigger_opt = Dejavuzz.Trigger_opt
module Window_gen = Dejavuzz.Window_gen
module Coverage = Dejavuzz.Coverage
module Oracle = Dejavuzz.Oracle
module Campaign = Dejavuzz.Campaign
module Fault = Dvz_resilience.Fault
module Snapshot = Dvz_resilience.Snapshot
module Json = Dvz_obs.Json
module Events = Dvz_obs.Events
module Metrics = Dvz_obs.Metrics

let boom = Cfg.boom_small
let secret = Array.make Layout.secret_dwords 0xFACE

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let temp_path prefix =
  let p = Filename.temp_file prefix ".snap" in
  Sys.remove p;
  p

let completed_tc entropy =
  let rng = Rng.create entropy in
  let seed = Seed.random_of_kind rng Seed.T_page_fault in
  let tc = Trigger_gen.generate ~force_training:true boom seed in
  Alcotest.(check bool) "triggers" true (Trigger_opt.evaluate boom tc);
  Window_gen.complete boom tc

(* --- snapshots ------------------------------------------------------------ *)

let test_crc32_check_value () =
  (* The standard CRC-32 check value. *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Snapshot.crc32 "123456789")

let test_snapshot_roundtrip () =
  let path = temp_path "dvz_rt" in
  (* Binary payload, including newlines and every byte value. *)
  let payload = String.init 512 (fun i -> Char.chr (i mod 256)) in
  Snapshot.save ~path ~magic:"test-magic" ~version:7 payload;
  (match Snapshot.load ~path ~magic:"test-magic" with
  | Ok (v, p) ->
      Alcotest.(check int) "version" 7 v;
      Alcotest.(check string) "payload" payload p
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_snapshot_detects_corruption () =
  let path = temp_path "dvz_corrupt" in
  Snapshot.save ~path ~magic:"m" ~version:1 "hello snapshot payload";
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index raw '\n' in
  let flipped = Bytes.of_string raw in
  let pos = header_end + 3 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 1));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc flipped);
  (match Snapshot.load ~path ~magic:"m" with
  | Error e -> Alcotest.(check bool) "checksum error" true (contains e "checksum")
  | Ok _ -> Alcotest.fail "corrupted snapshot loaded");
  Sys.remove path

let test_snapshot_magic_and_truncation () =
  let path = temp_path "dvz_magic" in
  Snapshot.save ~path ~magic:"alpha" ~version:1 "payload";
  (match Snapshot.load ~path ~magic:"beta" with
  | Error e -> Alcotest.(check bool) "magic error" true (contains e "magic")
  | Ok _ -> Alcotest.fail "magic mismatch loaded");
  (* Truncate the payload: header promises more bytes than remain. *)
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub raw 0 (String.length raw - 3)));
  (match Snapshot.load ~path ~magic:"alpha" with
  | Error e -> Alcotest.(check bool) "truncation error" true (contains e "truncated")
  | Ok _ -> Alcotest.fail "truncated snapshot loaded");
  (match Snapshot.load ~path:(path ^ ".does-not-exist") ~magic:"alpha" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file loaded");
  Sys.remove path

let test_snapshot_structured_errors () =
  (* [load_checked] names the exact validation that failed; [advice]
     tells the operator what to do about it. *)
  let path = temp_path "dvz_structured" in
  Snapshot.save ~path ~magic:"m" ~version:2 "the payload";
  (match Snapshot.load_checked ~path:(path ^ ".nope") ~magic:"m" with
  | Error (Snapshot.Unreadable _ as e) ->
      Alcotest.(check bool) "unreadable advice mentions --resume" true
        (contains (Snapshot.advice e) "--resume")
  | Error e -> Alcotest.failf "wrong class: %s" (Snapshot.describe e)
  | Ok _ -> Alcotest.fail "missing file loaded");
  (match Snapshot.load_checked ~path ~magic:"other" with
  | Error (Snapshot.Magic_mismatch { got; want }) ->
      Alcotest.(check string) "got" "m" got;
      Alcotest.(check string) "want" "other" want
  | Error e -> Alcotest.failf "wrong class: %s" (Snapshot.describe e)
  | Ok _ -> Alcotest.fail "magic mismatch loaded");
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub raw 0 (String.length raw - 4)));
  (match Snapshot.load_checked ~path ~magic:"m" with
  | Error (Snapshot.Truncated { promised; actual }) ->
      Alcotest.(check int) "promised" 11 promised;
      Alcotest.(check int) "actual" 7 actual
  | Error e -> Alcotest.failf "wrong class: %s" (Snapshot.describe e)
  | Ok _ -> Alcotest.fail "truncated snapshot loaded");
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "not a snapshot at all");
  (match Snapshot.load_checked ~path ~magic:"m" with
  | Error (Snapshot.Bad_header _ as e) ->
      Alcotest.(check bool) "bad-header advice suggests recovery" true
        (contains (Snapshot.advice e) "delete")
  | Error e -> Alcotest.failf "wrong class: %s" (Snapshot.describe e)
  | Ok _ -> Alcotest.fail "garbage loaded");
  Sys.remove path

let test_snapshot_prev_rotation () =
  let path = temp_path "dvz_prev" in
  let prev = Snapshot.previous_path path in
  Alcotest.(check string) "previous path" (path ^ ".prev") prev;
  Snapshot.save ~keep_previous:true ~path ~magic:"m" ~version:1 "first";
  Alcotest.(check bool) "first save rotates nothing" false
    (Sys.file_exists prev);
  Snapshot.save ~keep_previous:true ~path ~magic:"m" ~version:1 "second";
  Snapshot.save ~keep_previous:true ~path ~magic:"m" ~version:1 "third";
  (match Snapshot.load ~path ~magic:"m" with
  | Ok (_, p) -> Alcotest.(check string) "latest" "third" p
  | Error e -> Alcotest.failf "latest unreadable: %s" e);
  (match Snapshot.load ~path:prev ~magic:"m" with
  | Ok (_, p) -> Alcotest.(check string) "previous" "second" p
  | Error e -> Alcotest.failf "previous unreadable: %s" e);
  (* Without the flag, rotation stops and .prev goes stale. *)
  Snapshot.save ~path ~magic:"m" ~version:1 "fourth";
  (match Snapshot.load ~path:prev ~magic:"m" with
  | Ok (_, p) -> Alcotest.(check string) "untouched" "second" p
  | Error e -> Alcotest.failf "previous unreadable: %s" e);
  Sys.remove path;
  Sys.remove prev

(* --- fault plans ---------------------------------------------------------- *)

let test_fault_parse_roundtrip () =
  (match Fault.parse "crash@3:50,kill@17:0" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check int) "two faults" 2 (List.length plan);
      Alcotest.(check string) "roundtrip" "crash@3:50,kill@17:0"
        (Fault.to_string plan));
  (match Fault.parse "hang@0:10" with
  | Ok [ { Fault.f_iteration = 0; f_cycle = 10; f_action = Fault.Hang } ] -> ()
  | _ -> Alcotest.fail "hang parse");
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" bad)
    [ "explode@1:2"; "crash@1"; "crash"; "crash@-1:5"; "crash@a:b"; "" ]

let test_fault_plan_of_seed_deterministic () =
  let a = Fault.plan_of_seed ~seed:9 ~iterations:100 ~count:5 in
  let b = Fault.plan_of_seed ~seed:9 ~iterations:100 ~count:5 in
  Alcotest.(check string) "same plan" (Fault.to_string a) (Fault.to_string b);
  Alcotest.(check int) "count" 5 (List.length a);
  List.iter
    (fun f ->
      Alcotest.(check bool) "iteration in range" true
        (f.Fault.f_iteration >= 0 && f.Fault.f_iteration < 100))
    a

let test_fault_arm_tick_drain () =
  Fault.arm ~iteration:2
    [ { Fault.f_iteration = 2; f_cycle = 5; f_action = Fault.Hang };
      { Fault.f_iteration = 3; f_cycle = 0; f_action = Fault.Corrupt } ];
  Alcotest.(check bool) "armed" true (Fault.armed ());
  (match Fault.tick ~cycle:0 with
  | `Ok -> ()
  | _ -> Alcotest.fail "fired early");
  (match Fault.tick ~cycle:7 with
  | `Hang -> ()
  | _ -> Alcotest.fail "hang expected at cycle 7");
  (* The fault is consumed: later ticks are clean. *)
  (match Fault.tick ~cycle:8 with
  | `Ok -> ()
  | _ -> Alcotest.fail "fault not consumed");
  let fired = Fault.drain_fired () in
  Alcotest.(check int) "one fired" 1 (List.length fired);
  Alcotest.(check int) "drain clears" 0 (List.length (Fault.drain_fired ()));
  Fault.arm ~iteration:0
    [ { Fault.f_iteration = 0; f_cycle = 1; f_action = Fault.Crash "boom" } ];
  (match Fault.tick ~cycle:3 with
  | exception Fault.Injected { iteration = 0; cycle = 3; _ } -> ()
  | exception e -> raise e
  | _ -> Alcotest.fail "crash fault did not raise");
  ignore (Fault.drain_fired ());
  Fault.disarm ();
  Alcotest.(check bool) "disarmed" false (Fault.armed ())

(* --- Sim hooks and error messages ----------------------------------------- *)

let test_sim_on_cycle_hook () =
  let c = Dvz_ir.Circuits.counter ~width:4 in
  let sim = Dvz_ir.Sim.create c.Dvz_ir.Circuits.cnt_nl in
  Dvz_ir.Sim.set_input sim c.Dvz_ir.Circuits.cnt_en 1;
  let seen = ref [] in
  Dvz_ir.Sim.on_cycle sim (fun n -> seen := n :: !seen);
  Dvz_ir.Sim.cycle sim;
  Dvz_ir.Sim.cycle sim;
  Dvz_ir.Sim.cycle sim;
  Alcotest.(check (list int)) "hook sees cycle counts" [ 1; 2; 3 ]
    (List.rev !seen);
  Alcotest.(check int) "cycles" 3 (Dvz_ir.Sim.cycles sim);
  (* A raising hook escapes cycle — the fault-injection mechanism. *)
  Dvz_ir.Sim.on_cycle sim (Fault.raise_at ~cycle:5 ~message:"stop here");
  (match
     for _ = 1 to 10 do
       Dvz_ir.Sim.cycle sim
     done
   with
  | exception Fault.Injected { cycle = 5; _ } -> ()
  | exception e -> raise e
  | () -> Alcotest.fail "raising hook did not escape")

let test_sim_error_messages () =
  let c = Dvz_ir.Circuits.counter ~width:4 in
  let nl = c.Dvz_ir.Circuits.cnt_nl in
  let sim = Dvz_ir.Sim.create nl in
  (match Dvz_ir.Sim.set_input sim c.Dvz_ir.Circuits.cnt_q 1 with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the signal" true
        (contains msg (Dvz_ir.Netlist.name_of nl c.Dvz_ir.Circuits.cnt_q));
      Alcotest.(check bool) "says what it is" true (contains msg "register")
  | () -> Alcotest.fail "set_input on a register succeeded");
  (match Dvz_ir.Sim.poke_reg sim c.Dvz_ir.Circuits.cnt_en 1 with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the signal" true
        (contains msg (Dvz_ir.Netlist.name_of nl c.Dvz_ir.Circuits.cnt_en));
      Alcotest.(check bool) "says input" true (contains msg "input")
  | () -> Alcotest.fail "poke_reg on an input succeeded")

let test_dualcore_arity_message () =
  let tc = completed_tc 61 in
  let stim = Packet.stimulus ~secret tc in
  match Dualcore.create ~secret_b:(Array.make 1 0) boom stim with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "actual arity" true (contains msg "1 dwords");
      Alcotest.(check bool) "expected arity" true
        (contains msg (string_of_int (Array.length secret)))
  | _ -> Alcotest.fail "arity mismatch accepted"

(* --- supervised Parallel.map ---------------------------------------------- *)

exception Boom of int
exception Flaky
exception Fatal

let test_parallel_preserves_exception () =
  Alcotest.check_raises "original exception, lowest index" (Boom 3) (fun () ->
      ignore
        (Parallel.map ~domains:4
           (fun x -> if x >= 3 then raise (Boom x) else x)
           [ 0; 1; 2; 3; 4; 5; 6; 7 ]))

let test_parallel_retry_transient () =
  let attempts = ref 0 in
  let retry =
    Parallel.retry ~max_attempts:5 ~backoff_s:(fun _ -> 0.0) ()
  in
  let r =
    Parallel.map ~domains:1 ~retry
      (fun x ->
        incr attempts;
        if !attempts < 3 then raise Flaky else x)
      [ 42 ]
  in
  Alcotest.(check (list int)) "eventually succeeds" [ 42 ] r;
  Alcotest.(check int) "three attempts" 3 !attempts

let test_parallel_retry_exhaustion_and_fatal () =
  let retry =
    Parallel.retry ~max_attempts:3
      ~backoff_s:(fun _ -> 0.0)
      ~transient:(fun e -> e = Flaky)
      ()
  in
  let attempts = ref 0 in
  Alcotest.check_raises "exhausted retries re-raise" Flaky (fun () ->
      ignore
        (Parallel.map ~domains:1 ~retry
           (fun _ ->
             incr attempts;
             raise Flaky)
           [ () ]));
  Alcotest.(check int) "max attempts" 3 !attempts;
  attempts := 0;
  Alcotest.check_raises "non-transient fails fast" Fatal (fun () ->
      ignore
        (Parallel.map ~domains:1 ~retry
           (fun _ ->
             incr attempts;
             raise Fatal)
           [ () ]));
  Alcotest.(check int) "single attempt" 1 !attempts

let test_parallel_retry_counter () =
  let c = Metrics.counter Metrics.default "dvz_parallel_retries_total" in
  let before = Metrics.counter_value c in
  let attempts = ref 0 in
  let retry = Parallel.retry ~max_attempts:2 ~backoff_s:(fun _ -> 0.0) () in
  ignore
    (Parallel.map ~domains:1 ~retry
       (fun x ->
         incr attempts;
         if !attempts = 1 then raise Flaky else x)
       [ 1 ]);
  Alcotest.(check int) "one retry counted" (before + 1)
    (Metrics.counter_value c)

(* --- watchdog budgets ----------------------------------------------------- *)

let test_watchdog_slot_budget () =
  let tc = completed_tc 63 in
  let dc = Dualcore.create boom (Packet.stimulus ~secret tc) in
  let full = Dualcore.run (Dualcore.create boom (Packet.stimulus ~secret tc)) in
  Alcotest.(check bool) "full run unbudgeted" false full.Dualcore.r_timed_out;
  let r = Dualcore.run ~budget:(Dualcore.budget ~max_slots:5 ()) dc in
  Alcotest.(check bool) "timed out" true r.Dualcore.r_timed_out;
  Alcotest.(check int) "stopped at the budget" 5 r.Dualcore.r_slots

let test_watchdog_wall_budget () =
  let tc = completed_tc 63 in
  let dc = Dualcore.create boom (Packet.stimulus ~secret tc) in
  (* Fake clock ticking 1s per read: the 0.5s budget trips on the first
     poll, deterministically. *)
  let budget =
    Dualcore.budget ~max_wall_s:0.5 ~clock:(Dvz_obs.Clock.fake ()) ()
  in
  let r = Dualcore.run ~budget dc in
  Alcotest.(check bool) "timed out" true r.Dualcore.r_timed_out

let test_hang_fault_needs_watchdog () =
  let tc = completed_tc 63 in
  let dc = Dualcore.create boom (Packet.stimulus ~secret tc) in
  Fault.arm ~iteration:0
    [ { Fault.f_iteration = 0; f_cycle = 3; f_action = Fault.Hang } ];
  let r = Dualcore.run ~budget:(Dualcore.budget ~max_slots:500 ()) dc in
  ignore (Fault.drain_fired ());
  Fault.disarm ();
  (* The hang wedges the cores; only the watchdog ends the run. *)
  Alcotest.(check bool) "timed out" true r.Dualcore.r_timed_out;
  Alcotest.(check int) "ran to the budget" 500 r.Dualcore.r_slots

let test_corrupt_fault_skews_instance_b () =
  let tc = completed_tc 63 in
  let clean = Dualcore.run (Dualcore.create boom (Packet.stimulus ~secret tc)) in
  Fault.arm ~iteration:0
    [ { Fault.f_iteration = 0; f_cycle = 0; f_action = Fault.Corrupt } ];
  let bad = Dualcore.run (Dualcore.create boom (Packet.stimulus ~secret tc)) in
  ignore (Fault.drain_fired ());
  Fault.disarm ();
  Alcotest.(check int) "cycles_b skewed by 7"
    (clean.Dualcore.r_cycles_b + 7) bad.Dualcore.r_cycles_b;
  match (clean.Dualcore.r_windows_b, bad.Dualcore.r_windows_b) with
  | cw :: _, bw :: _ ->
      Alcotest.(check int) "first window skewed by 7"
        (cw.Dvz_uarch.Core.wr_cycles + 7) bw.Dvz_uarch.Core.wr_cycles
  | _ -> Alcotest.fail "expected window records"

let test_oracle_timeout_verdict () =
  let tc = completed_tc 63 in
  let a =
    Oracle.analyze boom ~secret
      ~budget:(Dualcore.budget ~max_slots:3 ())
      tc
  in
  Alcotest.(check bool) "timed out" true a.Oracle.a_timed_out;
  Alcotest.(check bool) "no leaks from partial evidence" true
    (a.Oracle.a_leaks = []);
  Alcotest.(check bool) "no attack classification" true
    (a.Oracle.a_attack = None)

(* --- serialization helpers ------------------------------------------------ *)

let test_rng_state_roundtrip () =
  let rng = Rng.create 99 in
  for _ = 1 to 17 do
    ignore (Rng.next rng)
  done;
  let restored = Rng.of_state (Rng.state rng) in
  let a = List.init 10 (fun _ -> Rng.next rng) in
  let b = List.init 10 (fun _ -> Rng.next restored) in
  Alcotest.(check (list int)) "stream continues identically" a b

let test_coverage_list_roundtrip () =
  let cov = Coverage.create () in
  ignore
    (Coverage.observe cov
       [ { Dualcore.le_slot = 0; le_total = 2;
           le_per_module = [ ("rob", 2); ("lsu.dcache", 1) ];
           le_in_window = true } ]);
  let restored = Coverage.of_list (Coverage.to_list cov) in
  Alcotest.(check int) "points survive" (Coverage.points cov)
    (Coverage.points restored);
  Alcotest.(check bool) "lists equal" true
    (Coverage.to_list cov = Coverage.to_list restored)

(* --- campaign-level resilience -------------------------------------------- *)

let base_options iterations rng_seed =
  { Campaign.default_options with Campaign.iterations; rng_seed }

let run_with_events ?resilience ?jobs options =
  let buf = Buffer.create 4096 in
  let telemetry =
    { Campaign.quiet with Campaign.t_events = Events.to_buffer buf }
  in
  let stats = Campaign.run ~telemetry ?resilience ?jobs boom options in
  let events =
    match Json.of_lines (Buffer.contents buf) with
    | Ok evs -> evs
    | Error e -> Alcotest.failf "bad event log: %s" e
  in
  (stats, events)

let jint key ev = Option.bind (Json.member key ev) Json.to_int
let jstr key ev = Option.bind (Json.member key ev) Json.to_str
let jbool key ev = Option.bind (Json.member key ev) Json.to_bool

let iteration_events events =
  List.filter (fun ev -> jstr "type" ev = Some "iteration") events

(* A triggered iteration that contributed nothing (no fresh coverage, no
   new findings) — crashing it must leave the campaign's stats unchanged. *)
let find_quiet_triggered ~min_iter events =
  let candidate ev =
    jbool "phase1_triggered" ev = Some true
    && jint "coverage_delta" ev = Some 0
    && jint "new_findings" ev = Some 0
    && match jint "iteration" ev with Some i -> i >= min_iter | None -> false
  in
  match List.find_opt candidate (iteration_events events) with
  | Some ev -> Option.get (jint "iteration" ev)
  | None -> Alcotest.fail "no quiet triggered iteration in the probe run"

let test_campaign_crash_isolation () =
  let options = base_options 25 3 in
  let reference, events = run_with_events options in
  let k = find_quiet_triggered ~min_iter:1 events in
  let resilience =
    { Campaign.no_resilience with
      Campaign.rz_fault_plan =
        [ { Fault.f_iteration = k; f_cycle = 5; f_action = Fault.Crash "boom" } ] }
  in
  let crashes_counter =
    Metrics.counter Metrics.default "dvz_harness_crashes_total"
  in
  let before = Metrics.counter_value crashes_counter in
  let faulted, fevents = run_with_events ~resilience options in
  (* The crashed iteration is isolated and every surviving iteration is
     bit-identical: all result-bearing stats fields match the reference. *)
  Alcotest.(check bool) "curve identical" true
    (faulted.Campaign.s_coverage_curve = reference.Campaign.s_coverage_curve);
  Alcotest.(check bool) "findings identical" true
    (faulted.Campaign.s_findings = reference.Campaign.s_findings);
  Alcotest.(check bool) "first bug identical" true
    (faulted.Campaign.s_first_bug = reference.Campaign.s_first_bug);
  Alcotest.(check int) "coverage identical" reference.Campaign.s_final_coverage
    faulted.Campaign.s_final_coverage;
  Alcotest.(check int) "triggered identical" reference.Campaign.s_triggered
    faulted.Campaign.s_triggered;
  (match faulted.Campaign.s_crashes with
  | [ c ] ->
      Alcotest.(check int) "crash at the faulted iteration" k
        c.Campaign.cr_iteration;
      Alcotest.(check bool) "crash names the exception" true
        (contains c.Campaign.cr_exn "boom");
      Alcotest.(check bool) "crash records the seed" true
        (c.Campaign.cr_seed <> None)
  | l -> Alcotest.failf "expected 1 crash, got %d" (List.length l));
  Alcotest.(check int) "always-on crash counter" (before + 1)
    (Metrics.counter_value crashes_counter);
  Alcotest.(check bool) "harness_crash event emitted" true
    (List.exists (fun ev -> jstr "type" ev = Some "harness_crash") fevents);
  Alcotest.(check bool) "fault_injected event emitted" true
    (List.exists (fun ev -> jstr "type" ev = Some "fault_injected") fevents)

let test_campaign_hang_becomes_timeout () =
  let options = base_options 25 3 in
  let _, events = run_with_events options in
  let k = find_quiet_triggered ~min_iter:1 events in
  let resilience =
    { Campaign.no_resilience with
      Campaign.rz_fault_plan =
        [ { Fault.f_iteration = k; f_cycle = 3; f_action = Fault.Hang } ];
      rz_budget = Some (Dualcore.budget ~max_slots:2000 ()) }
  in
  let stats, events = run_with_events ~resilience options in
  Alcotest.(check int) "one timeout verdict" 1 stats.Campaign.s_timeouts;
  Alcotest.(check int) "no crashes" 0 (List.length stats.Campaign.s_crashes);
  Alcotest.(check bool) "watchdog_timeout event" true
    (List.exists (fun ev -> jstr "type" ev = Some "watchdog_timeout") events);
  Alcotest.(check int) "campaign completed" options.Campaign.iterations
    (Array.length stats.Campaign.s_coverage_curve)

let test_campaign_kill_and_resume_bit_identical () =
  let options = base_options 30 3 in
  let reference, events = run_with_events options in
  (* Kill after at least one checkpoint (period 10) has been written. *)
  let k = find_quiet_triggered ~min_iter:11 events in
  let ck = temp_path "dvz_ck" in
  let kill_rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 10;
      rz_fault_plan =
        [ { Fault.f_iteration = k; f_cycle = 0; f_action = Fault.Kill "die" } ] }
  in
  (match Campaign.run ~resilience:kill_rz boom options with
  | _ -> Alcotest.fail "injected kill did not propagate"
  | exception Fault.Killed { iteration; _ } ->
      Alcotest.(check int) "killed at the planned iteration" k iteration);
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ck);
  let resume_rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 10;
      rz_resume = Some ck }
  in
  let resumed, revents = run_with_events ~resilience:resume_rz options in
  Alcotest.(check bool) "stats bit-identical after kill+resume" true
    (resumed = reference);
  Alcotest.(check string) "report byte-identical"
    (Dejavuzz.Report.summary reference)
    (Dejavuzz.Report.summary resumed);
  Alcotest.(check bool) "resume event emitted" true
    (List.exists (fun ev -> jstr "type" ev = Some "resume") revents);
  Alcotest.(check bool) "checkpoint events emitted" true
    (List.exists (fun ev -> jstr "type" ev = Some "checkpoint") revents);
  Sys.remove ck

let test_campaign_kill_and_resume_parallel () =
  (* Same discipline as above, but the batched engine runs on 3 jobs and
     the checkpoint is taken at a batch boundary; resuming on 1 job must
     reproduce the uninterrupted run exactly — checkpoints carry no trace
     of the domain count that wrote them. *)
  let options = { (base_options 30 3) with Campaign.batch = 4 } in
  let reference, events = run_with_events options in
  (* Batches end at 4,8,12,...,28,30; checkpoint period 10 fires at the
     boundaries 12, 20 and 30.  Kill past the first of those. *)
  let k = find_quiet_triggered ~min_iter:13 events in
  let ck = temp_path "dvz_pck" in
  let kill_rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 10;
      rz_fault_plan =
        [ { Fault.f_iteration = k; f_cycle = 0; f_action = Fault.Kill "die" } ] }
  in
  (match Campaign.run ~resilience:kill_rz ~jobs:3 boom options with
  | _ -> Alcotest.fail "injected kill did not propagate"
  | exception Fault.Killed { iteration; _ } ->
      Alcotest.(check int) "killed at the planned iteration" k iteration);
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ck);
  let resume_rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 10;
      rz_resume = Some ck }
  in
  let resumed, revents = run_with_events ~resilience:resume_rz ~jobs:1 options in
  Alcotest.(check bool) "stats bit-identical after parallel kill+resume" true
    (resumed = reference);
  Alcotest.(check bool) "resume event emitted" true
    (List.exists (fun ev -> jstr "type" ev = Some "resume") revents);
  Sys.remove ck

let test_campaign_kill_flushes_event_log () =
  (* A campaign killed mid-run must not lose the buffered tail of its
     JSONL event log: the abnormal-exit path flushes the sink before the
     fault propagates, so every folded iteration is on disk when the
     process dies.  Resume from the checkpoint afterwards to close the
     loop. *)
  let options = base_options 30 3 in
  let reference, events = run_with_events options in
  let k = find_quiet_triggered ~min_iter:11 events in
  let ck = temp_path "dvz_flush" in
  let log = Filename.temp_file "dvz_flush" ".jsonl" in
  let oc = open_out log in
  let telemetry =
    { Campaign.quiet with Campaign.t_events = Events.to_channel oc }
  in
  let kill_rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 10;
      rz_fault_plan =
        [ { Fault.f_iteration = k; f_cycle = 0; f_action = Fault.Kill "die" } ] }
  in
  (match Campaign.run ~telemetry ~resilience:kill_rz boom options with
  | _ -> Alcotest.fail "injected kill did not propagate"
  | exception Fault.Killed _ -> ());
  (* Read the file NOW, before closing the channel: only the flush on
     the campaign's abnormal-exit path can have written the tail. *)
  let written = In_channel.with_open_bin log In_channel.input_all in
  close_out oc;
  (match Json.of_lines written with
  | Error e -> Alcotest.failf "killed log not valid JSONL: %s" e
  | Ok evs ->
      let last_folded =
        List.fold_left
          (fun acc ev ->
            match (jstr "type" ev, jint "iteration" ev) with
            | Some "iteration", Some i -> max acc i
            | _ -> acc)
          0 evs
      in
      Alcotest.(check int) "every iteration before the kill is on disk"
        (k - 1) last_folded);
  let resume_rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 10;
      rz_resume = Some ck }
  in
  let resumed, _ = run_with_events ~resilience:resume_rz options in
  Alcotest.(check bool) "kill+resume still bit-identical" true
    (resumed = reference);
  Sys.remove ck;
  Sys.remove log

let test_campaign_resume_missing_file_starts_fresh () =
  let options = base_options 12 4 in
  let reference = Campaign.run boom options in
  let rz =
    { Campaign.no_resilience with
      Campaign.rz_resume = Some (temp_path "dvz_missing") }
  in
  let fresh = Campaign.run ~resilience:rz boom options in
  Alcotest.(check bool) "fresh run equals reference" true (fresh = reference)

let test_campaign_resume_rejects_mismatch () =
  let ck = temp_path "dvz_mismatch" in
  let options = base_options 10 5 in
  let rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 5 }
  in
  ignore (Campaign.run ~resilience:rz boom options);
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ck);
  let resume_rz = { Campaign.no_resilience with Campaign.rz_resume = Some ck } in
  (* Different options: the checkpoint must be refused, not half-used. *)
  (match Campaign.run ~resilience:resume_rz boom (base_options 10 6) with
  | _ -> Alcotest.fail "mismatched checkpoint accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "explains the mismatch" true
        (contains msg "different campaign options"));
  (match Campaign.run ~resilience:resume_rz Cfg.xiangshan_minimal options with
  | _ -> Alcotest.fail "wrong-core checkpoint accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the cores" true (contains msg "core"));
  Sys.remove ck

let test_campaign_bad_checkpoint_classified () =
  (* Corruption raises [Bad_checkpoint] (path + reason + advice, for the
     CLI's dedicated exit code and the fleet's .prev fallback) — a
     different failure class from the [Invalid_argument] flag
     mismatches above. *)
  let ck = temp_path "dvz_badck" in
  let options = base_options 10 5 in
  let rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some ck;
      rz_checkpoint_every = 5 }
  in
  ignore (Campaign.run ~resilience:rz boom options);
  let raw = In_channel.with_open_bin ck In_channel.input_all in
  Out_channel.with_open_bin ck (fun oc ->
      Out_channel.output_string oc ("XX" ^ String.sub raw 2 (String.length raw - 2)));
  let resume_rz = { Campaign.no_resilience with Campaign.rz_resume = Some ck } in
  (match Campaign.run ~resilience:resume_rz boom options with
  | _ -> Alcotest.fail "corrupt checkpoint accepted"
  | exception Campaign.Bad_checkpoint { bc_path; bc_reason; bc_advice } ->
      Alcotest.(check string) "names the file" ck bc_path;
      Alcotest.(check bool) "reason non-empty" true (bc_reason <> "");
      Alcotest.(check bool) "advice suggests recovery" true
        (contains bc_advice "delete" || contains bc_advice "--checkpoint");
      Alcotest.(check bool) "printable message" true
        (contains
           (Campaign.bad_checkpoint_message ~path:bc_path ~reason:bc_reason
              ~advice:bc_advice)
           "cannot resume"));
  Sys.remove ck

let test_campaign_crash_artifact_written () =
  let options = base_options 25 3 in
  let _, events = run_with_events options in
  let k = find_quiet_triggered ~min_iter:1 events in
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dvz_crashes_%d" (Unix.getpid ())) in
  let resilience =
    { Campaign.no_resilience with
      Campaign.rz_fault_plan =
        [ { Fault.f_iteration = k; f_cycle = 5; f_action = Fault.Crash "boom" } ];
      rz_crash_dir = Some dir }
  in
  ignore (Campaign.run ~resilience boom options);
  let artifact = Filename.concat dir (Printf.sprintf "crash-%04d.json" k) in
  Alcotest.(check bool) "artifact exists" true (Sys.file_exists artifact);
  let text = In_channel.with_open_text artifact In_channel.input_all in
  (match Json.of_string (String.trim text) with
  | Ok ev ->
      Alcotest.(check (option int)) "iteration recorded" (Some k)
        (jint "iteration" ev);
      Alcotest.(check bool) "exception recorded" true
        (match jstr "exn" ev with Some e -> contains e "boom" | None -> false)
  | Error e -> Alcotest.failf "artifact is not JSON: %s" e);
  Sys.remove artifact;
  Unix.rmdir dir

let test_with_suffix () =
  let rz =
    { Campaign.no_resilience with
      Campaign.rz_checkpoint = Some "/tmp/ck";
      rz_resume = Some "/tmp/ck" }
  in
  let rz' = Campaign.with_suffix rz "BOOM" in
  Alcotest.(check (option string)) "checkpoint suffixed" (Some "/tmp/ck.BOOM")
    rz'.Campaign.rz_checkpoint;
  Alcotest.(check (option string)) "resume suffixed" (Some "/tmp/ck.BOOM")
    rz'.Campaign.rz_resume;
  Alcotest.(check (option string)) "crash dir untouched" None
    rz'.Campaign.rz_crash_dir

let () =
  Alcotest.run "dvz_resilience"
    [ ( "snapshot",
        [ Alcotest.test_case "crc32 check value" `Quick test_crc32_check_value;
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_snapshot_detects_corruption;
          Alcotest.test_case "magic and truncation" `Quick
            test_snapshot_magic_and_truncation;
          Alcotest.test_case "structured errors and advice" `Quick
            test_snapshot_structured_errors;
          Alcotest.test_case "prev rotation" `Quick
            test_snapshot_prev_rotation ] );
      ( "fault",
        [ Alcotest.test_case "parse roundtrip" `Quick test_fault_parse_roundtrip;
          Alcotest.test_case "seeded plans deterministic" `Quick
            test_fault_plan_of_seed_deterministic;
          Alcotest.test_case "arm/tick/drain" `Quick test_fault_arm_tick_drain ] );
      ( "hooks",
        [ Alcotest.test_case "sim on_cycle" `Quick test_sim_on_cycle_hook;
          Alcotest.test_case "sim error messages" `Quick test_sim_error_messages;
          Alcotest.test_case "dualcore arity message" `Quick
            test_dualcore_arity_message ] );
      ( "parallel",
        [ Alcotest.test_case "exception propagation" `Quick
            test_parallel_preserves_exception;
          Alcotest.test_case "transient retry" `Quick test_parallel_retry_transient;
          Alcotest.test_case "exhaustion and fatal" `Quick
            test_parallel_retry_exhaustion_and_fatal;
          Alcotest.test_case "retry counter" `Quick test_parallel_retry_counter ] );
      ( "watchdog",
        [ Alcotest.test_case "slot budget" `Quick test_watchdog_slot_budget;
          Alcotest.test_case "wall budget" `Quick test_watchdog_wall_budget;
          Alcotest.test_case "hang fault" `Quick test_hang_fault_needs_watchdog;
          Alcotest.test_case "corrupt fault" `Quick
            test_corrupt_fault_skews_instance_b;
          Alcotest.test_case "oracle timeout verdict" `Quick
            test_oracle_timeout_verdict ] );
      ( "state",
        [ Alcotest.test_case "rng state roundtrip" `Quick test_rng_state_roundtrip;
          Alcotest.test_case "coverage list roundtrip" `Quick
            test_coverage_list_roundtrip ] );
      ( "campaign",
        [ Alcotest.test_case "crash isolation" `Quick test_campaign_crash_isolation;
          Alcotest.test_case "hang becomes timeout" `Quick
            test_campaign_hang_becomes_timeout;
          Alcotest.test_case "kill and resume bit-identical" `Quick
            test_campaign_kill_and_resume_bit_identical;
          Alcotest.test_case "kill and resume under jobs" `Quick
            test_campaign_kill_and_resume_parallel;
          Alcotest.test_case "kill flushes the event log" `Quick
            test_campaign_kill_flushes_event_log;
          Alcotest.test_case "resume missing file" `Quick
            test_campaign_resume_missing_file_starts_fresh;
          Alcotest.test_case "resume rejects mismatch" `Quick
            test_campaign_resume_rejects_mismatch;
          Alcotest.test_case "bad checkpoint classified" `Quick
            test_campaign_bad_checkpoint_classified;
          Alcotest.test_case "crash artifact" `Quick
            test_campaign_crash_artifact_written;
          Alcotest.test_case "with_suffix" `Quick test_with_suffix ] ) ]
