(* Tests for the Dejavuzz library itself: seeds, packets, the three fuzzing
   phases (trigger generation/reduction, window completion/coverage,
   oracles) and the campaign manager. *)

open Dvz_soc
module Rng = Dvz_util.Rng
module Cfg = Dvz_uarch.Config
module Core = Dvz_uarch.Core
module Dualcore = Dvz_uarch.Dualcore
module Elem = Dvz_uarch.Elem
module Seed = Dejavuzz.Seed
module Packet = Dejavuzz.Packet
module Genlib = Dejavuzz.Genlib
module Trigger_gen = Dejavuzz.Trigger_gen
module Trigger_opt = Dejavuzz.Trigger_opt
module Window_gen = Dejavuzz.Window_gen
module Coverage = Dejavuzz.Coverage
module Corpus = Dejavuzz.Corpus
module Oracle = Dejavuzz.Oracle
module Campaign = Dejavuzz.Campaign

let boom = Cfg.boom_small
let xs = Cfg.xiangshan_minimal
let secret = Array.make Layout.secret_dwords 0xFACE

(* --- seeds --------------------------------------------------------------- *)

let test_seed_mutation_preserves_trigger () =
  let rng = Rng.create 1 in
  let s = Seed.random rng in
  let s' = Seed.mutate_window rng s in
  Alcotest.(check bool) "same trigger" true
    (s.Seed.kind = s'.Seed.kind
    && s.Seed.trigger_entropy = s'.Seed.trigger_entropy);
  Alcotest.(check bool) "new window entropy" true
    (s.Seed.window_entropy <> s'.Seed.window_entropy)

let test_seed_kind_classification () =
  Alcotest.(check bool) "exceptions" true (Seed.is_exception Seed.T_page_fault);
  Alcotest.(check bool) "mispredictions" true
    (Seed.is_misprediction Seed.T_return);
  Alcotest.(check int) "eight kinds" 8 (Array.length Seed.all_kinds)

(* --- genlib -------------------------------------------------------------- *)

let test_genlib_li () =
  let check_li v =
    let insns = Genlib.li Dvz_isa.Reg.t0 v in
    let mem = Phys_mem.create () in
    Phys_mem.write_words mem 0x1000
      (Array.of_list (List.map Dvz_isa.Encode.encode insns));
    let g =
      Dvz_isa.Golden.create ~pc:0x1000 (Phys_mem.golden_memory mem)
    in
    List.iter (fun _ -> ignore (Dvz_isa.Golden.step g)) insns;
    Alcotest.(check int)
      (Printf.sprintf "li %d" v)
      v
      (Dvz_isa.Golden.reg g Dvz_isa.Reg.t0)
  in
  List.iter check_li [ 0; 1; -1; 2047; -2048; 0x1000; 0x5008; 0xF000; 123456 ]

let test_genlib_pad_to () =
  let insns = Genlib.pad_to [ Dvz_isa.Insn.Ebreak ] 5 in
  Alcotest.(check int) "padded" 5 (List.length insns);
  Alcotest.check_raises "too long"
    (Invalid_argument "Genlib.pad_to: sequence too long") (fun () ->
      ignore (Genlib.pad_to (Genlib.nops 6) 5))

let test_genlib_cond_operands () =
  let rng = Rng.create 3 in
  List.iter
    (fun cond ->
      List.iter
        (fun taken ->
          let v0, v1 = Genlib.random_cond_operands rng cond ~taken in
          Alcotest.(check bool)
            (Printf.sprintf "cond resolves to %b" taken)
            taken
            (Dvz_isa.Exec_alu.cond_holds cond v0 v1))
        [ true; false ])
    [ Dvz_isa.Insn.Eq; Dvz_isa.Insn.Ne; Dvz_isa.Insn.Lt; Dvz_isa.Insn.Ge;
      Dvz_isa.Insn.Ltu; Dvz_isa.Insn.Geu ]

let test_genlib_illegal_word () =
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    match Dvz_isa.Decode.decode (Genlib.illegal_word rng) with
    | Dvz_isa.Insn.Illegal _ -> ()
    | i -> Alcotest.failf "decodes: %s" (Dvz_isa.Insn.to_string i)
  done

(* --- packets ------------------------------------------------------------- *)

let test_packet_stimulus_schedule () =
  let rng = Rng.create 5 in
  let seed = Seed.random_of_kind rng Seed.T_return in
  let tc = Trigger_gen.generate boom seed in
  let tc = Window_gen.complete boom tc in
  let stim = Packet.stimulus ~secret tc in
  let blobs = Swapmem.blobs stim.Core.st_swapmem in
  (* window trainings first, then trigger trainings, transient last *)
  let last = List.nth blobs (List.length blobs - 1) in
  Alcotest.(check bool) "transient last" true last.Swapmem.is_transient;
  Alcotest.(check int) "one transient blob" 1
    (List.length (List.filter (fun b -> b.Swapmem.is_transient) blobs))

let test_training_overhead_counts () =
  let p1 =
    Packet.make ~name:"a" ~role:Packet.Trigger_training ~training_total:10
      ~training_effective:2 (Genlib.nops 10)
  in
  let p2 =
    Packet.make ~name:"b" ~role:Packet.Window_training ~training_total:3
      ~training_effective:3 (Genlib.nops 3)
  in
  let tr = Packet.make ~name:"t" ~role:Packet.Transient [ Dvz_isa.Insn.Ebreak ] in
  let tc =
    { Packet.seed = Seed.random (Rng.create 0); transient = tr;
      trigger_trainings = [ p1 ]; window_trainings = [ p2 ];
      trigger_addr = 0; window_addr = 0; window_words = 0; data = [];
      perms = []; tighten = false; gadget_tags = [] }
  in
  let total, eff = Packet.training_overhead tc in
  Alcotest.(check int) "total" 13 total;
  Alcotest.(check int) "effective" 5 eff

(* --- phase 1 ------------------------------------------------------------- *)

let trigger_rate ?(style = `Derived) cfg kind n =
  let rng = Rng.create 1234 in
  let hits = ref 0 in
  for _ = 1 to n do
    let seed = Seed.random_of_kind rng kind in
    let tc = Trigger_gen.generate ~style ~force_training:true cfg seed in
    if Trigger_opt.evaluate cfg tc then incr hits
  done;
  float_of_int !hits /. float_of_int n

let test_all_kinds_trigger_on_xiangshan () =
  Array.iter
    (fun kind ->
      Alcotest.(check bool)
        (Seed.kind_name kind ^ " triggers")
        true
        (trigger_rate xs kind 10 > 0.9))
    Seed.all_kinds

let test_boom_kinds () =
  Array.iter
    (fun kind ->
      let rate = trigger_rate boom kind 10 in
      if kind = Seed.T_illegal then
        Alcotest.(check (float 0.01)) "illegal never triggers on BOOM" 0.0 rate
      else
        Alcotest.(check bool) (Seed.kind_name kind ^ " triggers") true
          (rate > 0.9))
    Seed.all_kinds

let test_random_training_fails_tagged_btb () =
  (* DejaVuzz* cannot train XiangShan's tagged BTB (Table 3's x cell) *)
  Alcotest.(check (float 0.01)) "jump windows untriggerable" 0.0
    (trigger_rate ~style:`Random xs Seed.T_jump 10)

let test_reduction_keeps_triggering () =
  let rng = Rng.create 77 in
  for _ = 1 to 10 do
    let seed = Seed.random_of_kind rng Seed.T_branch in
    let tc = Trigger_gen.generate ~force_training:true boom seed in
    if Trigger_opt.evaluate boom tc then begin
      let reduced, removed = Trigger_opt.reduce boom tc in
      Alcotest.(check bool) "still triggers" true
        (Trigger_opt.evaluate boom reduced);
      Alcotest.(check bool) "junk packets removed" true (removed >= 2);
      Alcotest.(check bool) "shrunk" true
        (List.length reduced.Packet.trigger_trainings
        < List.length tc.Packet.trigger_trainings)
    end
  done

let test_reduction_zero_for_exceptions () =
  let rng = Rng.create 78 in
  let seed = Seed.random_of_kind rng Seed.T_page_fault in
  let tc = Trigger_gen.generate boom seed in
  Alcotest.(check bool) "triggers" true (Trigger_opt.evaluate boom tc);
  let reduced, _ = Trigger_opt.reduce boom tc in
  let total, eff = Packet.training_overhead reduced in
  Alcotest.(check int) "TO 0" 0 total;
  Alcotest.(check int) "ETO 0" 0 eff

let test_reduction_noop_when_untriggered () =
  let rng = Rng.create 79 in
  let seed = Seed.random_of_kind rng Seed.T_illegal in
  let tc = Trigger_gen.generate boom seed in
  let reduced, removed = Trigger_opt.reduce boom tc in
  Alcotest.(check int) "no removal" 0 removed;
  Alcotest.(check bool) "unchanged" true (reduced == tc)

(* The batched phase-1 evaluator is differentially pinned to the scalar
   one: element [i] of [evaluate_batch cfg tcs] must equal
   [evaluate cfg tcs.(i)].  Two rounds, so the second exercises the warm
   per-domain batch pool (in-place reset instead of fresh cores). *)
let test_evaluate_batch_matches_scalar () =
  let rng = Rng.create 4711 in
  for round = 1 to 2 do
    let tcs =
      Array.init 6 (fun i ->
          let kind = Seed.all_kinds.(i mod Array.length Seed.all_kinds) in
          let seed = Seed.random_of_kind rng kind in
          let force_training = i mod 2 = 0 in
          Trigger_gen.generate ~force_training boom seed)
    in
    let batched = Trigger_opt.evaluate_batch boom tcs in
    Array.iteri
      (fun i tc ->
        Alcotest.(check bool)
          (Printf.sprintf "round %d candidate %d" round i)
          (Trigger_opt.evaluate boom tc)
          batched.(i))
      tcs
  done

let test_expected_window_matcher () =
  Alcotest.(check bool) "access fault matches" true
    (Trigger_gen.expected_window
       { Seed.kind = Seed.T_access_fault; trigger_entropy = 0;
         window_entropy = 0; tighten = false; mask_high = false }
       (Dvz_uarch.Effect.W_exception Dvz_isa.Trap.Load_access_fault));
  Alcotest.(check bool) "kind mismatch rejected" false
    (Trigger_gen.expected_window
       { Seed.kind = Seed.T_branch; trigger_entropy = 0; window_entropy = 0;
         tighten = false; mask_high = false }
       Dvz_uarch.Effect.W_return_mispred)

(* --- phase 2 ------------------------------------------------------------- *)

let completed_tc ?(kind = Seed.T_page_fault) ?(cfg = boom) entropy =
  let rng = Rng.create entropy in
  let seed = Seed.random_of_kind rng kind in
  let tc = Trigger_gen.generate ~force_training:true cfg seed in
  Alcotest.(check bool) "triggers" true (Trigger_opt.evaluate cfg tc);
  Window_gen.complete cfg tc

let test_window_completion_replaces_nops () =
  let tc0_rng = Rng.create 7 in
  let seed = Seed.random_of_kind tc0_rng Seed.T_page_fault in
  let tc0 = Trigger_gen.generate boom seed in
  let tc = Window_gen.complete boom tc0 in
  let idx = (tc.Packet.window_addr - Layout.swap_base) / 4 in
  let insns = Array.of_list tc.Packet.transient.Packet.insns in
  Alcotest.(check bool) "first window insn is the secret access" true
    (match insns.(idx) with Dvz_isa.Insn.Load _ -> true | _ -> false);
  Alcotest.(check bool) "gadget tags recorded" true (tc.Packet.gadget_tags <> []);
  Alcotest.(check int) "window trainings attached" 2
    (List.length tc.Packet.window_trainings)

let test_window_completion_deterministic () =
  let tc1 = completed_tc 9 and tc2 = completed_tc 9 in
  Alcotest.(check bool) "same window from same entropy" true
    (tc1.Packet.transient.Packet.insns = tc2.Packet.transient.Packet.insns)

let test_sanitize_keeps_access_block () =
  let tc = completed_tc 11 in
  let san = Window_gen.sanitize boom tc in
  let idx = (tc.Packet.window_addr - Layout.swap_base) / 4 in
  let orig = Array.of_list tc.Packet.transient.Packet.insns in
  let sanitized = Array.of_list san.Packet.transient.Packet.insns in
  Alcotest.(check bool) "access block preserved" true
    (orig.(idx) = sanitized.(idx));
  (* everything after the access block is nops *)
  let all_nops = ref true in
  for i = idx + 1 to idx + tc.Packet.window_words - 1 do
    if sanitized.(i) <> Dvz_isa.Insn.nop then all_nops := false
  done;
  Alcotest.(check bool) "encoding block nop'd" true !all_nops

let test_disamb_window_uses_stale_pointer () =
  let tc = completed_tc ~kind:Seed.T_mem_disamb 13 in
  let idx = (tc.Packet.window_addr - Layout.swap_base) / 4 in
  let insns = Array.of_list tc.Packet.transient.Packet.insns in
  match insns.(idx) with
  | Dvz_isa.Insn.Load (_, _, _, rs1, _) ->
      Alcotest.(check bool) "reads via a2" true
        (Dvz_isa.Reg.equal rs1 Dvz_isa.Reg.a2)
  | i -> Alcotest.failf "unexpected %s" (Dvz_isa.Insn.to_string i)

(* --- coverage ------------------------------------------------------------ *)

let test_coverage_accumulates () =
  let cov = Coverage.create () in
  let tc = completed_tc 15 in
  let result = Dualcore.run (Dualcore.create boom (Packet.stimulus ~secret tc)) in
  let fresh1 = Coverage.observe_result cov result in
  Alcotest.(check bool) "first run covers points" true (fresh1 > 0);
  let fresh2 = Coverage.observe_result cov result in
  Alcotest.(check int) "identical run adds nothing" 0 fresh2;
  Alcotest.(check int) "points persist" fresh1 (Coverage.points cov)

let test_coverage_position_insensitive () =
  let cov = Coverage.create () in
  (* two log entries with the same per-module counts are the same point *)
  let entry total =
    { Dualcore.le_slot = 0; le_total = total;
      le_per_module = [ ("lsu.dcache", 2) ]; le_in_window = true }
  in
  ignore (Coverage.observe cov [ entry 2 ]);
  Alcotest.(check int) "one point" 1 (Coverage.points cov);
  ignore (Coverage.observe cov [ entry 2 ]);
  Alcotest.(check int) "still one" 1 (Coverage.points cov);
  ignore
    (Coverage.observe cov
       [ { Dualcore.le_slot = 1; le_total = 3;
           le_per_module = [ ("lsu.dcache", 3) ]; le_in_window = true } ]);
  Alcotest.(check int) "new count = new point" 2 (Coverage.points cov)

let test_coverage_copy () =
  let cov = Coverage.create () in
  ignore
    (Coverage.observe cov
       [ { Dualcore.le_slot = 0; le_total = 1;
           le_per_module = [ ("rob", 1) ]; le_in_window = true } ]);
  let snap = Coverage.copy cov in
  ignore
    (Coverage.observe cov
       [ { Dualcore.le_slot = 0; le_total = 2;
           le_per_module = [ ("rob", 2) ]; le_in_window = true } ]);
  Alcotest.(check int) "copy frozen" 1 (Coverage.points snap);
  Alcotest.(check int) "original grew" 2 (Coverage.points cov)

let test_coverage_merge_equals_sequential () =
  let result e =
    let tc = completed_tc e in
    Dualcore.run (Dualcore.create boom (Packet.stimulus ~secret tc))
  in
  let r1 = result 15 and r2 = result 23 in
  (* sequential observation into one matrix *)
  let seq = Coverage.create () in
  let f1 = Coverage.observe_result seq r1 in
  let f2 = Coverage.observe_result seq r2 in
  (* the same runs observed into per-shard matrices, then merged *)
  let s1 = Coverage.create () and s2 = Coverage.create () in
  ignore (Coverage.observe_result s1 r1);
  ignore (Coverage.observe_result s2 r2);
  let merged = Coverage.create () in
  Alcotest.(check int) "first shard all fresh" f1 (Coverage.merge merged s1);
  Alcotest.(check int) "second shard overlap discounted" f2
    (Coverage.merge merged s2);
  Alcotest.(check bool) "same point set" true
    (Coverage.to_list seq = Coverage.to_list merged);
  Alcotest.(check int) "re-merge adds nothing" 0 (Coverage.merge merged s1)

(* --- corpus -------------------------------------------------------------- *)

let corpus_tc entropy =
  let rng = Rng.create entropy in
  Trigger_gen.generate boom (Seed.random rng)

let corpus_of ~cap specs =
  let c = Corpus.create ~cap in
  List.iter
    (fun (b, r) -> Corpus.admit c ~birth:b ~reward:r (corpus_tc b))
    specs;
  c

let births c = List.map (fun e -> e.Corpus.en_birth) (Corpus.entries c)

let test_corpus_cap_eviction () =
  let c = corpus_of ~cap:3 [ (0, 5); (1, 1); (2, 7); (3, 1); (4, 3) ] in
  Alcotest.(check int) "capped" 3 (Corpus.size c);
  Alcotest.(check (list int)) "highest rewards survive" [ 0; 2; 4 ] (births c);
  (* reward ties break toward the youngest birth *)
  let t = corpus_of ~cap:2 [ (0, 4); (1, 4); (2, 4) ] in
  Alcotest.(check (list int)) "ties keep the young" [ 1; 2 ] (births t);
  (* blind policy: replace_all keeps exactly the latest seed *)
  Corpus.replace_all t ~birth:9 (corpus_tc 9);
  Alcotest.(check (list int)) "replace_all keeps one" [ 9 ] (births t)

let test_corpus_choose_weighted () =
  let c = Corpus.create ~cap:8 in
  let light = corpus_tc 0 and heavy = corpus_tc 1 in
  Corpus.admit c ~birth:0 ~reward:0 light;
  (* weight 1 *)
  Corpus.admit c ~birth:1 ~reward:19 heavy;
  (* weight 20 *)
  let rng = Rng.create 7 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Corpus.choose c rng == heavy then incr hits
  done;
  (* expectation 20/21 of 1000; anything over 850 is far from uniform *)
  Alcotest.(check bool) "picks follow reward weight" true (!hits > 850);
  Alcotest.check_raises "empty corpus refuses"
    (Invalid_argument "Corpus.choose: corpus is empty") (fun () ->
      ignore (Corpus.choose (Corpus.create ~cap:4) rng))

let test_corpus_merge_commutative () =
  let key c =
    List.map
      (fun e -> (e.Corpus.en_birth, e.Corpus.en_reward))
      (Corpus.entries c)
  in
  let a = corpus_of ~cap:4 [ (0, 2); (2, 9); (5, 1) ] in
  let b = corpus_of ~cap:4 [ (1, 4); (3, 9); (4, 0); (6, 2) ] in
  let ab = Corpus.merge a b and ba = Corpus.merge b a in
  Alcotest.(check bool) "commutative" true (key ab = key ba);
  Alcotest.(check int) "trimmed to cap" 4 (Corpus.size ab);
  (* colliding births resolve identically from either side *)
  let x = corpus_of ~cap:4 [ (0, 1) ] and y = corpus_of ~cap:4 [ (0, 6) ] in
  Alcotest.(check bool) "collision symmetric" true
    (key (Corpus.merge x y) = key (Corpus.merge y x));
  Alcotest.check_raises "cap mismatch refused"
    (Invalid_argument "Corpus.merge: caps differ (4 vs 2)") (fun () ->
      ignore (Corpus.merge a (Corpus.create ~cap:2)))

let test_corpus_entries_roundtrip () =
  let c = corpus_of ~cap:4 [ (3, 2); (7, 9); (11, 1); (12, 0) ] in
  (* of_entries accepts any order and restores the birth sort *)
  let c' = Corpus.of_entries ~cap:(Corpus.cap c) (List.rev (Corpus.entries c)) in
  Alcotest.(check bool) "roundtrip preserves entries" true
    (Corpus.entries c = Corpus.entries c');
  let snap = Corpus.snapshot c in
  Corpus.admit c ~birth:20 ~reward:50 (corpus_tc 20);
  Alcotest.(check bool) "snapshot frozen" false (List.mem 20 (births snap));
  Alcotest.(check bool) "original grew" true (List.mem 20 (births c))

(* --- phase 3 / oracle ---------------------------------------------------- *)

let test_oracle_detects_dcache_leak () =
  (* find a seed whose window contains the dcache gadget and no timing
     gadget, then the oracle must report an encode leak via dcache *)
  let rng = Rng.create 21 in
  let rec search tries =
    if tries = 0 then Alcotest.fail "no dcache-only window found"
    else begin
      let seed = Seed.random_of_kind rng Seed.T_page_fault in
      let seed = { seed with Seed.tighten = true; mask_high = false } in
      let tc = Trigger_gen.generate boom seed in
      if Trigger_opt.evaluate boom tc then begin
        let tc = Window_gen.complete boom tc in
        let tags = tc.Packet.gadget_tags in
        let timing_tags =
          List.filter (fun t -> List.mem t [ "fpu"; "lsu"; "refetch" ]) tags
        in
        if List.mem "dcache" tags && timing_tags = [] then begin
          let a = Oracle.analyze boom ~secret tc in
          Alcotest.(check bool) "leak found" true (Oracle.is_leak a);
          (* The secret-indexed probe loads may also produce a cache-timing
             difference, which the constant-time check reports first; keep
             searching until a pure encode-leak case appears. *)
          match a.Oracle.a_leaks with
          | [ Oracle.Encode { components; _ } ] ->
              Alcotest.(check bool) "dcache component" true
                (List.mem "dcache" components)
          | _ -> search (tries - 1)
        end
        else search (tries - 1)
      end
      else search (tries - 1)
    end
  in
  search 300

let test_oracle_attack_classification () =
  let rng = Rng.create 23 in
  let rec search tries =
    if tries = 0 then Alcotest.fail "no triggering meltdown seed"
    else begin
      let seed = Seed.random_of_kind rng Seed.T_access_fault in
      let seed = { seed with Seed.tighten = true; mask_high = false } in
      let tc = Trigger_gen.generate boom seed in
      if Trigger_opt.evaluate boom tc then begin
        let tc = Window_gen.complete boom tc in
        let a = Oracle.analyze boom ~secret tc in
        Alcotest.(check bool) "meltdown" true (a.Oracle.a_attack = Some `Meltdown)
      end
      else search (tries - 1)
    end
  in
  search 50

let test_oracle_liveness_filters_prf () =
  (* without liveness, residual speculative-register taints surface *)
  let tc = completed_tc 25 in
  let with_lv = Oracle.analyze boom ~secret tc in
  let without = Oracle.analyze ~use_liveness:false boom ~secret tc in
  Alcotest.(check bool) "all-sinks superset of live sinks" true
    (List.length without.Oracle.a_all_sinks
    >= List.length with_lv.Oracle.a_live_sinks)

let test_component_mapping () =
  Alcotest.(check (option string)) "dcache" (Some "dcache")
    (Oracle.component_of_module "lsu.dcache");
  Alcotest.(check (option string)) "arch excluded" None
    (Oracle.component_of_module "core.arf");
  Alcotest.(check (option string)) "mem excluded" None
    (Oracle.component_of_module "mem")

(* --- extensions (§7) ------------------------------------------------------ *)

let test_oracle_retries_deterministic () =
  let tc = completed_tc 31 in
  let a1 = Oracle.analyze_with_retries ~retries:3 boom ~secret tc in
  let a2 = Oracle.analyze_with_retries ~retries:3 boom ~secret tc in
  Alcotest.(check bool) "same verdict" (Oracle.is_leak a1) (Oracle.is_leak a2)

let test_oracle_retries_finds_at_least_single () =
  (* retries can only help: if a single attempt leaks, so does the retry
     wrapper *)
  let tc = completed_tc 33 in
  let single = Oracle.analyze boom ~secret tc in
  let retried = Oracle.analyze_with_retries ~retries:3 boom ~secret tc in
  if Oracle.is_leak single then
    Alcotest.(check bool) "retry preserves leak" true (Oracle.is_leak retried)

let test_migrate_layout () =
  let tc = completed_tc ~kind:Seed.T_page_fault 35 in
  let layout = Dejavuzz.Migrate.migrate tc in
  Alcotest.(check bool) "one base per packet" true
    (List.length layout.Dejavuzz.Migrate.lo_bases
    = List.length tc.Packet.window_trainings
      + List.length tc.Packet.trigger_trainings
      + 1);
  (* bases are alignment-preserving and inside the flat region *)
  List.iter
    (fun (_, b) ->
      Alcotest.(check int) "aligned" 0 (b mod 0x400);
      Alcotest.(check bool) "in region" true (b >= 0x2000 && b < 0x4000))
    layout.Dejavuzz.Migrate.lo_bases;
  let asm = Dejavuzz.Migrate.render_assembly layout in
  Alcotest.(check bool) "assembly rendered" true (String.length asm > 100)

let test_migrate_exception_windows_still_trigger () =
  let rng = Rng.create 41 in
  let hits = ref 0 and tot = ref 0 in
  for _ = 1 to 8 do
    let seed = Seed.random_of_kind rng Seed.T_page_fault in
    let tc = Trigger_gen.generate boom seed in
    if Trigger_opt.evaluate boom tc then begin
      incr tot;
      if Dejavuzz.Migrate.runs_on_flat_memory boom ~secret tc then incr hits
    end
  done;
  Alcotest.(check int) "all migrated page-fault windows trigger" !tot !hits

let test_migrate_branch_windows_still_trigger () =
  let rng = Rng.create 43 in
  let hits = ref 0 and tot = ref 0 in
  for _ = 1 to 8 do
    let seed = Seed.random_of_kind rng Seed.T_branch in
    let tc = Trigger_gen.generate ~force_training:true boom seed in
    if Trigger_opt.evaluate boom tc then begin
      incr tot;
      let tc, _ = Trigger_opt.reduce boom tc in
      if Dejavuzz.Migrate.runs_on_flat_memory boom ~secret tc then incr hits
    end
  done;
  Alcotest.(check int) "aligned relocation preserves branch training" !tot !hits

(* --- campaign ------------------------------------------------------------ *)

let test_campaign_smoke () =
  let options =
    { Campaign.default_options with Campaign.iterations = 40; rng_seed = 3 }
  in
  let stats = Campaign.run boom options in
  Alcotest.(check int) "curve length" 40
    (Array.length stats.Campaign.s_coverage_curve);
  Alcotest.(check bool) "coverage grew" true (stats.Campaign.s_final_coverage > 0);
  Alcotest.(check bool) "monotone curve" true
    (let ok = ref true in
     for i = 1 to 39 do
       if stats.Campaign.s_coverage_curve.(i)
          < stats.Campaign.s_coverage_curve.(i - 1)
       then ok := false
     done;
     !ok);
  Alcotest.(check bool) "found something" true
    (stats.Campaign.s_findings <> [])

let test_campaign_deterministic () =
  let options =
    { Campaign.default_options with Campaign.iterations = 15; rng_seed = 4 }
  in
  let a = Campaign.run boom options and b = Campaign.run boom options in
  Alcotest.(check bool) "same curve" true
    (a.Campaign.s_coverage_curve = b.Campaign.s_coverage_curve);
  Alcotest.(check int) "same findings"
    (List.length a.Campaign.s_findings)
    (List.length b.Campaign.s_findings)

let run_with_events ?jobs options =
  let buf = Buffer.create 4096 in
  let telemetry =
    { Campaign.quiet with Campaign.t_events = Dvz_obs.Events.to_buffer buf }
  in
  let stats = Campaign.run ~telemetry ?jobs boom options in
  match Dvz_obs.Json.of_lines (Buffer.contents buf) with
  | Ok events -> (stats, events)
  | Error e -> Alcotest.failf "unparseable event log: %s" e

(* Wall-clock fields are the only event payload allowed to vary with the
   execution resources. *)
let strip_timing = function
  | Dvz_obs.Json.Obj fields ->
      Dvz_obs.Json.Obj
        (List.filter
           (fun (k, _) ->
             not
               (List.mem k [ "phase1_s"; "phase2_s"; "phase3_s"; "elapsed_s" ]))
           fields)
  | ev -> ev

let test_campaign_jobs_invariant () =
  let options =
    { Campaign.default_options with
      Campaign.iterations = 24; rng_seed = 9; batch = 4 }
  in
  let a, ea = run_with_events ~jobs:1 options in
  let b, eb = run_with_events ~jobs:3 options in
  Alcotest.(check bool) "stats identical across jobs" true (a = b);
  Alcotest.(check bool) "event streams identical modulo timing" true
    (List.map strip_timing ea = List.map strip_timing eb)

let test_campaign_batch_deterministic () =
  let options =
    { Campaign.default_options with
      Campaign.iterations = 20; rng_seed = 11; batch = 5 }
  in
  let a = Campaign.run boom options and b = Campaign.run boom options in
  Alcotest.(check bool) "batched run deterministic" true (a = b);
  Alcotest.(check int) "curve covers every iteration" 20
    (Array.length a.Campaign.s_coverage_curve)

let test_campaign_tight_corpus_cap () =
  Alcotest.(check int) "default cap" 64
    Campaign.default_options.Campaign.corpus_cap;
  let options =
    { Campaign.default_options with
      Campaign.iterations = 20; rng_seed = 3; corpus_cap = 2 }
  in
  let a = Campaign.run boom options and b = Campaign.run boom options in
  Alcotest.(check bool) "deterministic under a tight cap" true (a = b);
  Alcotest.(check bool) "still covers points" true
    (a.Campaign.s_final_coverage > 0)

let test_campaign_engine_validation () =
  let options = { Campaign.default_options with Campaign.iterations = 1 } in
  Alcotest.check_raises "batch >= 1"
    (Invalid_argument "Campaign.run: options.batch must be at least 1")
    (fun () -> ignore (Campaign.run boom { options with Campaign.batch = 0 }));
  Alcotest.check_raises "corpus_cap >= 1"
    (Invalid_argument "Campaign.run: options.corpus_cap must be at least 1")
    (fun () ->
      ignore (Campaign.run boom { options with Campaign.corpus_cap = 0 }));
  Alcotest.check_raises "jobs >= 1"
    (Invalid_argument "Campaign.run: jobs must be at least 1") (fun () ->
      ignore (Campaign.run ~jobs:0 boom options))

let test_campaign_dedup () =
  let options =
    { Campaign.default_options with Campaign.iterations = 60; rng_seed = 5 }
  in
  let stats = Campaign.run boom options in
  let keys = List.map Campaign.dedup_key stats.Campaign.s_findings in
  Alcotest.(check int) "no duplicate findings" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_report_rendering () =
  let options =
    { Campaign.default_options with Campaign.iterations = 30; rng_seed = 6 }
  in
  let stats = Campaign.run boom options in
  let summary = Dejavuzz.Report.summary stats in
  Alcotest.(check bool) "summary nonempty" true (String.length summary > 0);
  let t5 =
    Dejavuzz.Report.table5 ~core_name:"BOOM" stats.Campaign.s_findings
  in
  Alcotest.(check bool) "table rendered" true (String.length t5 > 0)

let test_window_group () =
  Alcotest.(check string) "mem-excp" "mem-excp"
    (Dejavuzz.Report.window_group Seed.T_misalign);
  Alcotest.(check string) "mispred" "mispred"
    (Dejavuzz.Report.window_group Seed.T_jump);
  Alcotest.(check string) "illegal" "illegal"
    (Dejavuzz.Report.window_group Seed.T_illegal)

let test_oracle_deterministic () =
  let tc = completed_tc 51 in
  let a1 = Oracle.analyze boom ~secret tc in
  let a2 = Oracle.analyze boom ~secret tc in
  Alcotest.(check bool) "same verdict" (Oracle.is_leak a1) (Oracle.is_leak a2);
  Alcotest.(check int) "same live sinks"
    (List.length a1.Oracle.a_live_sinks)
    (List.length a2.Oracle.a_live_sinks)

let test_reduce_idempotent () =
  let rng = Rng.create 53 in
  let seed = Seed.random_of_kind rng Seed.T_jump in
  let tc = Trigger_gen.generate ~force_training:true boom seed in
  if Trigger_opt.evaluate boom tc then begin
    let once, _ = Trigger_opt.reduce boom tc in
    let twice, removed = Trigger_opt.reduce boom once in
    Alcotest.(check int) "second pass removes nothing" 0 removed;
    Alcotest.(check int) "same packet count"
      (List.length once.Packet.trigger_trainings)
      (List.length twice.Packet.trigger_trainings)
  end

let test_trainings_order_irrelevant_for_triggering () =
  (* a reduced test case must keep triggering if its (independent) training
     packets are reordered, since each is isolated by swapMem *)
  let rng = Rng.create 57 in
  let rec find tries =
    if tries = 0 then ()
    else begin
      let seed = Seed.random_of_kind rng Seed.T_branch in
      let tc = Trigger_gen.generate ~force_training:true boom seed in
      if Trigger_opt.evaluate boom tc then begin
        let reduced, _ = Trigger_opt.reduce boom tc in
        let reversed =
          Packet.with_trigger_trainings reduced
            (List.rev reduced.Packet.trigger_trainings)
        in
        Alcotest.(check bool) "reordered trainings still trigger" true
          (Trigger_opt.evaluate boom reversed)
      end
      else find (tries - 1)
    end
  in
  find 10

let test_campaign_cellift_mode_runs () =
  let options =
    { Campaign.default_options with
      Campaign.iterations = 20; rng_seed = 8;
      taint_mode = Dvz_ift.Policy.Cellift }
  in
  let stats = Campaign.run boom options in
  Alcotest.(check bool) "coverage measured" true
    (stats.Campaign.s_final_coverage > 0)

let prop_window_fits_budget =
  QCheck.Test.make ~name:"completed windows never exceed the window section"
    ~count:80 QCheck.small_int (fun e ->
      let rng = Rng.create e in
      let seed = Seed.random rng in
      let tc = Trigger_gen.generate boom seed in
      let completed = Window_gen.complete boom tc in
      List.length completed.Packet.transient.Packet.insns
      = List.length tc.Packet.transient.Packet.insns)

(* --- provenance explain (observability) ----------------------------------- *)

module Explain = Dejavuzz.Explain
module Provenance = Dvz_ift.Provenance

(* Search for a testcase whose oracle verdict matches [attack], like the
   campaign loop would. *)
let leaking_tc kind attack =
  let rec search entropy =
    if entropy > 300 then Alcotest.failf "no leaking %s testcase found" attack
    else begin
      let rng = Rng.create entropy in
      let seed = Seed.random_of_kind rng kind in
      let tc = Trigger_gen.generate ~force_training:true boom seed in
      if Trigger_opt.evaluate boom tc then begin
        let tc = Window_gen.complete boom tc in
        let a = Oracle.analyze boom ~secret tc in
        let matches =
          match (attack, a.Oracle.a_attack) with
          | "meltdown", Some `Meltdown -> Oracle.is_leak a
          | "spectre", Some `Spectre -> Oracle.is_leak a
          | _ -> false
        in
        if matches then tc else search (entropy + 1)
      end
      else search (entropy + 1)
    end
  in
  search 1

let secret_source = function
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "source %s is a secret word" s)
        true
        (String.length s > 4 && String.sub s 0 4 = "mem[")
  | None -> Alcotest.fail "no source attributed"

let check_explain attack kind =
  let tc = leaking_tc kind attack in
  let stim = Packet.stimulus ~secret tc in
  let x = Explain.explain ~attack boom stim in
  secret_source (Explain.source x);
  Alcotest.(check bool) "at least one slice" true (x.Explain.x_slices <> []);
  List.iter
    (fun sl ->
      match (sl.Explain.sl_edges, List.rev sl.Explain.sl_edges) with
      | first :: _, last :: _ ->
          Alcotest.(check string) "slice ends at its sink"
            sl.Explain.sl_sink last.Provenance.e_dst;
          Alcotest.(check bool) "slice starts at an origin" true
            (first.Provenance.e_srcs = [])
      | _ -> Alcotest.failf "empty slice for %s" sl.Explain.sl_sink)
    x.Explain.x_slices;
  (* replaying the same stimulus must reproduce the renders byte for byte *)
  let x2 = Explain.explain ~attack boom stim in
  Alcotest.(check string) "text render deterministic"
    (Explain.render_text x) (Explain.render_text x2);
  Alcotest.(check string) "dot render deterministic"
    (Explain.render_dot x) (Explain.render_dot x2)

let test_explain_meltdown () = check_explain "meltdown" Seed.T_page_fault
let test_explain_spectre () = check_explain "spectre" Seed.T_branch

let test_explain_artifact_roundtrip () =
  let tc = leaking_tc Seed.T_page_fault "meltdown" in
  let x = Explain.explain ~attack:"meltdown" boom (Packet.stimulus ~secret tc) in
  match Explain.replay_artifact (Explain.to_json x) with
  | Error e -> Alcotest.fail e
  | Ok x' ->
      Alcotest.(check string) "artifact replay reproduces the explanation"
        (Explain.render_text x) (Explain.render_text x');
      Alcotest.(check (option string)) "same source" (Explain.source x)
        (Explain.source x')

let test_explain_rejects_bad_artifact () =
  let j = Dvz_obs.Json.Obj [ ("schema", Dvz_obs.Json.Str "nope") ] in
  Alcotest.(check bool) "schema mismatch rejected" true
    (match Explain.replay_artifact j with Error _ -> true | Ok _ -> false)

let test_campaign_explain_dir () =
  let dir = Filename.temp_file "dvz_explain" "" in
  Sys.remove dir;
  let tel = { Campaign.quiet with Campaign.t_explain_dir = Some dir } in
  let options = { Campaign.default_options with Campaign.iterations = 12 } in
  let stats = Campaign.run ~telemetry:tel boom options in
  Alcotest.(check bool) "found something" true (stats.Campaign.s_findings <> []);
  List.iter
    (fun f -> secret_source f.Campaign.fd_source)
    stats.Campaign.s_findings;
  let artifacts =
    List.filter
      (fun f ->
        Filename.check_suffix f ".json"
        && String.length f >= 8 && String.sub f 0 8 = "finding-")
      (Array.to_list (Sys.readdir dir))
  in
  Alcotest.(check bool) "artifacts written" true (artifacts <> []);
  (* every artifact replays, and its source matches a recorded finding *)
  let sources =
    List.filter_map (fun f -> f.Campaign.fd_source) stats.Campaign.s_findings
  in
  List.iter
    (fun a ->
      let text =
        In_channel.with_open_text (Filename.concat dir a) In_channel.input_all
      in
      match Dvz_obs.Json.of_string text with
      | Error e -> Alcotest.fail e
      | Ok j -> (
          match Explain.replay_artifact j with
          | Error e -> Alcotest.fail e
          | Ok x ->
              Alcotest.(check bool)
                (Printf.sprintf "%s source matches a finding" a)
                true
                (match Explain.source x with
                | Some s -> List.mem s sources
                | None -> false)))
    artifacts;
  (* telemetry must stay neutral: same run without explain dir, same stats *)
  let plain = Campaign.run boom options in
  Alcotest.(check bool) "explain replay does not perturb fuzzing" true
    (plain.Campaign.s_coverage_curve = stats.Campaign.s_coverage_curve
    && List.map (fun f -> f.Campaign.fd_iteration) plain.Campaign.s_findings
       = List.map (fun f -> f.Campaign.fd_iteration) stats.Campaign.s_findings);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* properties *)

let prop_generate_never_raises =
  QCheck.Test.make ~name:"trigger generation is total" ~count:100
    QCheck.small_int (fun e ->
      let rng = Rng.create e in
      let seed = Seed.random rng in
      let tc = Trigger_gen.generate boom seed in
      List.length tc.Packet.transient.Packet.insns > 0)

let prop_stimulus_buildable =
  QCheck.Test.make ~name:"every generated testcase builds a stimulus"
    ~count:60 QCheck.small_int (fun e ->
      let rng = Rng.create e in
      let seed = Seed.random rng in
      let tc = Trigger_gen.generate xs seed in
      let tc = Window_gen.complete xs tc in
      let stim = Packet.stimulus ~secret tc in
      stim.Core.st_max_slots > 0)

(* --- instance pool (pooled-vs-fresh bit-identity) ------------------------- *)

module Simpool = Dejavuzz.Simpool

(* Structural equality over the whole [Dualcore.result] is the strongest
   cheap check: window records, the bounded taint log, slot/cycle/commit
   counts and all three sink partitions are plain data.  The final core
   state hashes close the loop on state the result doesn't carry. *)
let run_result dc =
  let r = Dualcore.run dc in
  ( r,
    Core.state_hash (Dualcore.core_a dc),
    Core.state_hash (Dualcore.core_b dc) )

let prop_pooled_reset_equals_fresh =
  QCheck.Test.make
    ~name:"reset instance bit-identical to fresh create (both modes)"
    ~count:15
    QCheck.(pair small_int bool)
    (fun (e, diffift) ->
      let mode =
        if diffift then Dvz_ift.Policy.Diffift else Dvz_ift.Policy.Cellift
      in
      let tc_of k =
        let rng = Rng.create k in
        Window_gen.complete boom (Trigger_gen.generate boom (Seed.random rng))
      in
      let tc_prime = tc_of (e + 1000) and tc = tc_of e in
      let fresh =
        run_result (Dualcore.create ~mode boom (Packet.stimulus ~secret tc))
      in
      (* Dirty an instance with a different stimulus first so the reset
         path has real state to clear, then re-arm it with the target. *)
      let dc =
        Dualcore.create ~mode boom (Packet.stimulus ~secret tc_prime)
      in
      ignore (Dualcore.run dc);
      Dualcore.reset dc (Packet.stimulus ~secret tc);
      run_result dc = fresh)

let prop_pooled_oracle_analysis_stable =
  QCheck.Test.make
    ~name:"oracle analysis identical from cold and warm pools (both modes)"
    ~count:10
    QCheck.(pair small_int bool)
    (fun (e, diffift) ->
      let mode =
        if diffift then Dvz_ift.Policy.Diffift else Dvz_ift.Policy.Cellift
      in
      let rng = Rng.create e in
      let tc =
        Window_gen.complete boom (Trigger_gen.generate boom (Seed.random rng))
      in
      Simpool.clear ();
      let cold = Oracle.analyze ~mode boom ~secret tc in
      let warm = Oracle.analyze ~mode boom ~secret tc in
      (* Prime the pool with a different key so the next analysis goes
         through a create-after-mismatch, then an in-analysis reset. *)
      let other = Oracle.analyze ~mode xs ~secret tc in
      ignore other.Oracle.a_timed_out;
      let recreated = Oracle.analyze ~mode boom ~secret tc in
      cold = warm && cold = recreated)

let test_simpool_identity_and_keys () =
  Simpool.clear ();
  Alcotest.(check bool) "empty after clear" true (Simpool.cached () = None);
  let tc = completed_tc 61 in
  let stim () = Packet.stimulus ~secret tc in
  let d1 = Simpool.acquire boom (stim ()) in
  let d2 = Simpool.acquire boom (stim ()) in
  Alcotest.(check bool) "same key reuses the instance" true (d1 == d2);
  let d3 = Simpool.acquire ~mode:Dvz_ift.Policy.Cellift boom (stim ()) in
  Alcotest.(check bool) "mode is part of the key" true (not (d1 == d3));
  (match Simpool.cached () with
  | Some (cfg, mode, _) ->
      Alcotest.(check string) "caches latest cfg" boom.Cfg.name cfg.Cfg.name;
      Alcotest.(check bool) "caches latest mode" true
        (mode = Dvz_ift.Policy.Cellift)
  | None -> Alcotest.fail "pool empty after acquire");
  Simpool.clear ()

(* The point of pooling is that re-arming is cheap: a reset must allocate
   orders of magnitude less than a create (which builds a 64 KiB memory,
   predictor/cache/queue arrays and taint tables for both instances).
   The residual allocation is the instance-B swapmem copy plus small
   closures — bounded well under a single create's memory alone. *)
let test_dualcore_reset_alloc_bound () =
  let tc = completed_tc 63 in
  let dc = Dualcore.create boom (Packet.stimulus ~secret tc) in
  ignore (Dualcore.run dc);
  (* Warm up one reset so one-time lazy setup stays out of the measure. *)
  Dualcore.reset dc (Packet.stimulus ~secret tc);
  let stim = Packet.stimulus ~secret tc in
  let before = Gc.minor_words () in
  Dualcore.reset dc stim;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "reset allocates < 4096 words (got %.0f)" delta)
    true (delta < 4096.0)

let () =
  Alcotest.run "dejavuzz"
    [ ( "seed",
        [ Alcotest.test_case "window mutation" `Quick
            test_seed_mutation_preserves_trigger;
          Alcotest.test_case "classification" `Quick test_seed_kind_classification ] );
      ( "genlib",
        [ Alcotest.test_case "li materialisation" `Quick test_genlib_li;
          Alcotest.test_case "pad_to" `Quick test_genlib_pad_to;
          Alcotest.test_case "cond operands" `Quick test_genlib_cond_operands;
          Alcotest.test_case "illegal words" `Quick test_genlib_illegal_word ] );
      ( "packet",
        [ Alcotest.test_case "schedule order" `Quick test_packet_stimulus_schedule;
          Alcotest.test_case "overhead counts" `Quick test_training_overhead_counts ] );
      ( "phase1",
        [ Alcotest.test_case "all kinds on XiangShan" `Quick
            test_all_kinds_trigger_on_xiangshan;
          Alcotest.test_case "BOOM kinds" `Quick test_boom_kinds;
          Alcotest.test_case "random training vs tagged BTB" `Quick
            test_random_training_fails_tagged_btb;
          Alcotest.test_case "reduction preserves trigger" `Quick
            test_reduction_keeps_triggering;
          Alcotest.test_case "reduction zero for exceptions" `Quick
            test_reduction_zero_for_exceptions;
          Alcotest.test_case "reduction noop untriggered" `Quick
            test_reduction_noop_when_untriggered;
          Alcotest.test_case "batched evaluation matches scalar" `Quick
            test_evaluate_batch_matches_scalar;
          Alcotest.test_case "window matcher" `Quick test_expected_window_matcher;
          QCheck_alcotest.to_alcotest prop_generate_never_raises ] );
      ( "phase2",
        [ Alcotest.test_case "completion replaces nops" `Quick
            test_window_completion_replaces_nops;
          Alcotest.test_case "completion deterministic" `Quick
            test_window_completion_deterministic;
          Alcotest.test_case "sanitize" `Quick test_sanitize_keeps_access_block;
          Alcotest.test_case "disamb stale pointer" `Quick
            test_disamb_window_uses_stale_pointer;
          QCheck_alcotest.to_alcotest prop_stimulus_buildable ] );
      ( "coverage",
        [ Alcotest.test_case "accumulates" `Quick test_coverage_accumulates;
          Alcotest.test_case "position insensitive" `Quick
            test_coverage_position_insensitive;
          Alcotest.test_case "copy" `Quick test_coverage_copy;
          Alcotest.test_case "shard merge = sequential" `Quick
            test_coverage_merge_equals_sequential ] );
      ( "corpus",
        [ Alcotest.test_case "cap eviction" `Quick test_corpus_cap_eviction;
          Alcotest.test_case "weighted choose" `Quick test_corpus_choose_weighted;
          Alcotest.test_case "merge commutative" `Quick
            test_corpus_merge_commutative;
          Alcotest.test_case "entries roundtrip" `Quick
            test_corpus_entries_roundtrip ] );
      ( "oracle",
        [ Alcotest.test_case "dcache leak" `Quick test_oracle_detects_dcache_leak;
          Alcotest.test_case "attack classification" `Quick
            test_oracle_attack_classification;
          Alcotest.test_case "liveness filtering" `Quick
            test_oracle_liveness_filters_prf;
          Alcotest.test_case "component mapping" `Quick test_component_mapping ] );
      ( "robustness",
        [ Alcotest.test_case "oracle deterministic" `Quick
            test_oracle_deterministic;
          Alcotest.test_case "reduction idempotent" `Quick test_reduce_idempotent;
          Alcotest.test_case "training order irrelevant" `Quick
            test_trainings_order_irrelevant_for_triggering;
          Alcotest.test_case "cellift campaign" `Quick
            test_campaign_cellift_mode_runs;
          QCheck_alcotest.to_alcotest prop_window_fits_budget ] );
      ( "extensions",
        [ Alcotest.test_case "retry determinism" `Quick
            test_oracle_retries_deterministic;
          Alcotest.test_case "retry preserves leaks" `Quick
            test_oracle_retries_finds_at_least_single;
          Alcotest.test_case "migrate layout" `Quick test_migrate_layout;
          Alcotest.test_case "migrate exception windows" `Quick
            test_migrate_exception_windows_still_trigger;
          Alcotest.test_case "migrate branch windows" `Quick
            test_migrate_branch_windows_still_trigger ] );
      ( "campaign",
        [ Alcotest.test_case "smoke" `Quick test_campaign_smoke;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "jobs invariant" `Quick test_campaign_jobs_invariant;
          Alcotest.test_case "batch deterministic" `Quick
            test_campaign_batch_deterministic;
          Alcotest.test_case "tight corpus cap" `Quick
            test_campaign_tight_corpus_cap;
          Alcotest.test_case "engine validation" `Quick
            test_campaign_engine_validation;
          Alcotest.test_case "dedup" `Quick test_campaign_dedup;
          Alcotest.test_case "report" `Quick test_report_rendering;
          Alcotest.test_case "window groups" `Quick test_window_group ] );
      ( "simpool",
        [ Alcotest.test_case "identity and keys" `Quick
            test_simpool_identity_and_keys;
          Alcotest.test_case "reset allocation bound" `Quick
            test_dualcore_reset_alloc_bound;
          QCheck_alcotest.to_alcotest prop_pooled_reset_equals_fresh;
          QCheck_alcotest.to_alcotest prop_pooled_oracle_analysis_stable ] );
      ( "explain",
        [ Alcotest.test_case "meltdown slice" `Quick test_explain_meltdown;
          Alcotest.test_case "spectre slice" `Quick test_explain_spectre;
          Alcotest.test_case "artifact roundtrip" `Quick
            test_explain_artifact_roundtrip;
          Alcotest.test_case "bad artifact rejected" `Quick
            test_explain_rejects_bad_artifact;
          Alcotest.test_case "campaign explain dir" `Quick
            test_campaign_explain_dir ] ) ]
